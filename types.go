package divexplorer

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fpm"
)

// Aliases re-exporting the data model so that callers interact with a
// single package.
type (
	// Data is a discrete tabular dataset (attributes with finite domains,
	// value-coded rows).
	Data = dataset.Dataset
	// Attribute is one column: a name and its ordered domain of values.
	Attribute = dataset.Attribute
	// DataBuilder incrementally assembles a Data from string records.
	DataBuilder = dataset.Builder
	// CSVOptions controls CSV parsing in ReadCSV.
	CSVOptions = dataset.CSVOptions

	// Item identifies one attribute=value pair.
	Item = fpm.Item
	// Itemset is a set of items over distinct attributes (a pattern).
	Itemset = fpm.Itemset

	// Metric is an outcome rate over itemset tallies (FPR, FNR, ...).
	Metric = core.Metric
	// Ranked is a pattern annotated with support, rate, divergence and
	// significance.
	Ranked = core.Ranked
	// Contribution is a (local or global) Shapley attribution to an item.
	Contribution = core.Contribution
	// Corrective records an item that reduces a pattern's divergence.
	Corrective = core.Corrective
	// ItemDivergenceComparison pairs an item's individual and global
	// divergence.
	ItemDivergenceComparison = core.ItemDivergenceComparison
	// RankOrder selects the TopK sort direction.
	RankOrder = core.RankOrder
	// Significant is a pattern surviving Benjamini–Hochberg FDR control.
	Significant = core.Significant
	// DivergenceCredible annotates a pattern with Bayesian credible
	// bounds and the posterior sign probability.
	DivergenceCredible = core.DivergenceCredible
	// ApproxShapleyConfig controls the Monte Carlo Shapley estimator.
	ApproxShapleyConfig = core.ApproxShapleyConfig
	// PatternShift records how a pattern's rate moved between two
	// explorations (drift detection / model comparison).
	PatternShift = core.PatternShift
	// FairnessReport summarizes group-fairness metrics and gaps for one
	// protected attribute.
	FairnessReport = core.FairnessReport
	// GroupMetrics holds one protected group's confusion metrics.
	GroupMetrics = core.GroupMetrics
)

// Ranking orders for TopK.
const (
	ByDivergence    = core.ByDivergence
	ByAbsDivergence = core.ByAbsDivergence
	ByNegDivergence = core.ByNegDivergence
)

// Built-in metrics over the classifier confusion matrix.
var (
	FPR                   = core.FPR
	FNR                   = core.FNR
	ErrorRate             = core.ErrorRate
	Accuracy              = core.Accuracy
	PPV                   = core.PPV
	TPR                   = core.TPR
	TNR                   = core.TNR
	FDR                   = core.FDR
	FOR                   = core.FOR
	PredictedPositiveRate = core.PredictedPositiveRate
	TruePositiveShare     = core.TruePositiveShare
	// OutcomeRate is the positive rate of a generic Boolean outcome
	// function (use with NewOutcomeExplorer).
	OutcomeRate = core.OutcomeRate
)

// Metrics lists all built-in confusion-matrix metrics.
func Metrics() []Metric { return core.ConfusionMetrics() }

// MetricByName resolves a metric by name ("FPR", "FNR", "ER", "ACC", ...).
func MetricByName(name string) (Metric, error) { return core.MetricByName(name) }

// Outcome is the value of a Boolean outcome function o : D → {T, F, ⊥}
// (paper Def. 3.2) for one instance.
type Outcome uint8

// Outcome values.
const (
	OutcomeTrue   = Outcome(core.OutcomeT)
	OutcomeFalse  = Outcome(core.OutcomeF)
	OutcomeBottom = Outcome(core.OutcomeBot)
)
