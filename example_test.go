package divexplorer_test

import (
	"fmt"
	"log"
	"strings"

	divexplorer "repro"
)

const exampleCSV = `plan,channel,truth,pred
basic,web,0,1
basic,web,0,1
basic,web,0,1
basic,web,0,0
basic,phone,0,0
basic,phone,0,0
basic,phone,0,1
premium,web,0,0
premium,web,0,0
premium,web,0,0
premium,phone,1,1
premium,phone,1,1
premium,phone,1,0
premium,phone,1,0
`

// Example demonstrates the core workflow: load a CSV, explore, and list
// the most FPR-divergent subgroups.
func Example() {
	data, err := divexplorer.ReadCSV(strings.NewReader(exampleCSV), divexplorer.CSVOptions{})
	if err != nil {
		log.Fatal(err)
	}
	truth, _ := divexplorer.ParseBoolColumn(data, "truth")
	pred, _ := divexplorer.ParseBoolColumn(data, "pred")
	data, _ = data.DropAttrs("truth", "pred")

	exp, err := divexplorer.NewClassifierExplorer(data, truth, pred)
	if err != nil {
		log.Fatal(err)
	}
	res, err := exp.Explore(0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overall FPR %.2f\n", res.GlobalRate(divexplorer.FPR))
	for _, p := range res.TopK(divexplorer.FPR, 2, divexplorer.ByDivergence) {
		fmt.Printf("%s: Δ=%+.2f\n", res.Format(p.Items), p.Divergence)
	}
	// Output:
	// overall FPR 0.40
	// plan=basic, channel=web: Δ=+0.35
	// plan=basic: Δ=+0.17
}

// ExampleResult_LocalShapley attributes a pattern's divergence to its
// items with Shapley values.
func ExampleResult_LocalShapley() {
	data, _ := divexplorer.ReadCSV(strings.NewReader(exampleCSV), divexplorer.CSVOptions{})
	truth, _ := divexplorer.ParseBoolColumn(data, "truth")
	pred, _ := divexplorer.ParseBoolColumn(data, "pred")
	data, _ = data.DropAttrs("truth", "pred")
	exp, _ := divexplorer.NewClassifierExplorer(data, truth, pred)
	res, _ := exp.Explore(0.1)

	is, _ := res.Itemset("plan=basic", "channel=web")
	contributions, _ := res.LocalShapley(is, divexplorer.FPR)
	var sum float64
	for _, c := range contributions {
		sum += c.Value
	}
	div, _ := res.Divergence(is, divexplorer.FPR)
	fmt.Printf("contributions sum to divergence: %v\n", almostEqual(sum, div))
	// Output:
	// contributions sum to divergence: true
}

func almostEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

// ExampleExplorer_ExploreTopK shows the memory-bounded leaderboard path.
func ExampleExplorer_ExploreTopK() {
	data, _ := divexplorer.ReadCSV(strings.NewReader(exampleCSV), divexplorer.CSVOptions{})
	truth, _ := divexplorer.ParseBoolColumn(data, "truth")
	pred, _ := divexplorer.ParseBoolColumn(data, "pred")
	data, _ = data.DropAttrs("truth", "pred")
	exp, _ := divexplorer.NewClassifierExplorer(data, truth, pred)

	top, _ := exp.ExploreTopK(0.1, divexplorer.FPR, 1, divexplorer.ByDivergence)
	fmt.Println(len(top) == 1 && top[0].Divergence > 0)
	// Output:
	// true
}
