// Package htmlreport renders a self-contained HTML report of one
// exploration: overall rates, the most divergent patterns with
// significance, global vs individual item divergence, corrective items,
// and the ε-pruned summary. The output is a single document with inline
// CSS (no external assets), suitable for emailing or archiving next to a
// model-validation run.
package htmlreport

import (
	"bytes"
	"fmt"
	"html/template"
	"math"

	"repro/internal/core"
)

// Config selects what the report contains.
type Config struct {
	// Title heads the report (default "DivExplorer report").
	Title string
	// Metrics to include (default FPR, FNR).
	Metrics []core.Metric
	// TopK divergent patterns per metric (default 10).
	TopK int
	// Epsilon for the pruned summary section; 0 disables the section.
	Epsilon float64
	// FDRLevel for the significance section; 0 disables the section.
	FDRLevel float64
	// GlobalItems caps the global-divergence bar list (default 15).
	GlobalItems int
}

func (c *Config) setDefaults() {
	if c.Title == "" {
		c.Title = "DivExplorer report"
	}
	if len(c.Metrics) == 0 {
		c.Metrics = []core.Metric{core.FPR, core.FNR}
	}
	if c.TopK <= 0 {
		c.TopK = 10
	}
	if c.GlobalItems <= 0 {
		c.GlobalItems = 15
	}
}

type patternRow struct {
	Itemset    string
	Support    string
	Rate       string
	Divergence string
	T          string
	BarWidth   int  // percent of the max |Δ|
	Negative   bool // direction for coloring
}

type itemRow struct {
	Name               string
	Global, Individual string
	GlobalBar, IndBar  int
	GlobalNeg, IndNeg  bool
}

type correctiveRow struct {
	Base, Item              string
	BaseDiv, ExtDiv, Factor string
	T                       string
}

type significantRow struct {
	Itemset, Divergence, P, AdjP string
}

type metricSection struct {
	Metric      string
	OverallRate string
	Patterns    []patternRow
	Items       []itemRow
	Corrective  []correctiveRow
	Significant []significantRow
	Pruned      []patternRow
	PrunedNote  string
}

type reportData struct {
	Title    string
	Rows     int
	Attrs    int
	Patterns int
	MinSup   string
	Miner    string
	Sections []metricSection
}

// Render produces the HTML report.
func Render(res *core.Result, cfg Config) ([]byte, error) {
	cfg.setDefaults()
	data := reportData{
		Title:    cfg.Title,
		Rows:     res.DB.NumRows(),
		Attrs:    res.DB.Catalog.NumAttrs(),
		Patterns: res.NumPatterns(),
		MinSup:   fmt.Sprintf("%g", res.MinSup),
		Miner:    res.Miner,
	}
	for _, m := range cfg.Metrics {
		sec := metricSection{
			Metric:      m.Name,
			OverallRate: f3(res.GlobalRate(m)),
		}
		top := res.TopK(m, cfg.TopK, core.ByAbsDivergence)
		maxAbs := 1e-12
		for _, rk := range top {
			if v := math.Abs(rk.Divergence); v > maxAbs {
				maxAbs = v
			}
		}
		for _, rk := range top {
			sec.Patterns = append(sec.Patterns, patternRow{
				Itemset:    res.DB.Catalog.Format(rk.Items),
				Support:    f3(rk.Support),
				Rate:       f3(rk.Rate),
				Divergence: f3(rk.Divergence),
				T:          f1(rk.T),
				BarWidth:   int(math.Abs(rk.Divergence) / maxAbs * 100),
				Negative:   rk.Divergence < 0,
			})
		}
		cmp := res.CompareItemDivergence(m)
		if len(cmp) > cfg.GlobalItems {
			cmp = cmp[:cfg.GlobalItems]
		}
		maxItem := 1e-12
		for _, c := range cmp {
			for _, v := range []float64{math.Abs(c.Global), math.Abs(c.Individual)} {
				if !math.IsNaN(v) && v > maxItem {
					maxItem = v
				}
			}
		}
		for _, c := range cmp {
			row := itemRow{
				Name:      res.DB.Catalog.Name(c.Item),
				Global:    f4(c.Global),
				GlobalBar: barPct(c.Global, maxItem),
				GlobalNeg: c.Global < 0,
			}
			if math.IsNaN(c.Individual) {
				row.Individual = "n/a"
			} else {
				row.Individual = f4(c.Individual)
				row.IndBar = barPct(c.Individual, maxItem)
				row.IndNeg = c.Individual < 0
			}
			sec.Items = append(sec.Items, row)
		}
		for _, c := range res.TopCorrective(m, 5, 2.0) {
			sec.Corrective = append(sec.Corrective, correctiveRow{
				Base:    res.DB.Catalog.Format(c.Base),
				Item:    res.DB.Catalog.Name(c.Item),
				BaseDiv: f3(c.BaseDiv),
				ExtDiv:  f3(c.ExtDiv),
				Factor:  f3(c.Factor),
				T:       f1(c.T),
			})
		}
		if cfg.FDRLevel > 0 {
			for i, s := range res.SignificantPatterns(m, cfg.FDRLevel, core.ByAbsDivergence) {
				if i == cfg.TopK {
					break
				}
				sec.Significant = append(sec.Significant, significantRow{
					Itemset:    res.DB.Catalog.Format(s.Items),
					Divergence: f3(s.Divergence),
					P:          fmt.Sprintf("%.2g", s.P),
					AdjP:       fmt.Sprintf("%.2g", s.AdjP),
				})
			}
		}
		if cfg.Epsilon > 0 {
			pruned := res.TopKPruned(m, cfg.Epsilon, cfg.TopK, core.ByAbsDivergence)
			for _, rk := range pruned {
				sec.Pruned = append(sec.Pruned, patternRow{
					Itemset:    res.DB.Catalog.Format(rk.Items),
					Support:    f3(rk.Support),
					Rate:       f3(rk.Rate),
					Divergence: f3(rk.Divergence),
					T:          f1(rk.T),
				})
			}
			sec.PrunedNote = fmt.Sprintf("ε = %g keeps %d of %d itemsets",
				cfg.Epsilon, res.PrunedCount(m, cfg.Epsilon), res.NumPatterns())
		}
		data.Sections = append(data.Sections, sec)
	}
	var buf bytes.Buffer
	if err := reportTemplate.Execute(&buf, data); err != nil {
		return nil, fmt.Errorf("htmlreport: %w", err)
	}
	return buf.Bytes(), nil
}

func barPct(v, max float64) int {
	if math.IsNaN(v) || max <= 0 {
		return 0
	}
	return int(math.Abs(v) / max * 100)
}

func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func f4(x float64) string { return fmt.Sprintf("%+.4f", x) }

var reportTemplate = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{{.Title}}</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 70rem; color: #1c2733; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.2rem; margin-top: 2rem; } h3 { font-size: 1rem; }
table { border-collapse: collapse; width: 100%; margin: .5rem 0 1.5rem; font-size: .9rem; }
th, td { text-align: left; padding: .3rem .6rem; border-bottom: 1px solid #e2e8f0; }
th { background: #f5f7fa; }
.bar { display: inline-block; height: .7rem; background: #4477aa; border-radius: 2px; vertical-align: middle; }
.bar.neg { background: #ee6677; }
.meta { color: #5a6b7b; font-size: .9rem; }
.num { font-variant-numeric: tabular-nums; }
</style></head><body>
<h1>{{.Title}}</h1>
<p class="meta">{{.Rows}} rows · {{.Attrs}} attributes · {{.Patterns}} frequent itemsets at support ≥ {{.MinSup}} (miner: {{.Miner}})</p>
{{range .Sections}}
<h2>Metric {{.Metric}} <span class="meta">(overall rate {{.OverallRate}})</span></h2>
<h3>Most divergent patterns</h3>
<table><tr><th>Itemset</th><th>Sup</th><th>Rate</th><th>Δ</th><th>t</th><th></th></tr>
{{range .Patterns}}<tr><td>{{.Itemset}}</td><td class="num">{{.Support}}</td><td class="num">{{.Rate}}</td><td class="num">{{.Divergence}}</td><td class="num">{{.T}}</td>
<td><span class="bar{{if .Negative}} neg{{end}}" style="width:{{.BarWidth}}px"></span></td></tr>
{{end}}</table>
<h3>Global vs individual item divergence</h3>
<table><tr><th>Item</th><th>Global Δ<sup>g</sup></th><th></th><th>Individual Δ</th><th></th></tr>
{{range .Items}}<tr><td>{{.Name}}</td><td class="num">{{.Global}}</td>
<td><span class="bar{{if .GlobalNeg}} neg{{end}}" style="width:{{.GlobalBar}}px"></span></td>
<td class="num">{{.Individual}}</td>
<td><span class="bar{{if .IndNeg}} neg{{end}}" style="width:{{.IndBar}}px"></span></td></tr>
{{end}}</table>
{{if .Corrective}}<h3>Corrective items</h3>
<table><tr><th>Base pattern</th><th>Corrective item</th><th>Δ(I)</th><th>Δ(I∪α)</th><th>Factor</th><th>t</th></tr>
{{range .Corrective}}<tr><td>{{.Base}}</td><td>{{.Item}}</td><td class="num">{{.BaseDiv}}</td><td class="num">{{.ExtDiv}}</td><td class="num">{{.Factor}}</td><td class="num">{{.T}}</td></tr>
{{end}}</table>{{end}}
{{if .Significant}}<h3>FDR-significant patterns</h3>
<table><tr><th>Itemset</th><th>Δ</th><th>p</th><th>adjusted p</th></tr>
{{range .Significant}}<tr><td>{{.Itemset}}</td><td class="num">{{.Divergence}}</td><td class="num">{{.P}}</td><td class="num">{{.AdjP}}</td></tr>
{{end}}</table>{{end}}
{{if .Pruned}}<h3>Redundancy-pruned summary <span class="meta">({{.PrunedNote}})</span></h3>
<table><tr><th>Itemset</th><th>Sup</th><th>Rate</th><th>Δ</th><th>t</th></tr>
{{range .Pruned}}<tr><td>{{.Itemset}}</td><td class="num">{{.Support}}</td><td class="num">{{.Rate}}</td><td class="num">{{.Divergence}}</td><td class="num">{{.T}}</td></tr>
{{end}}</table>{{end}}
{{end}}
</body></html>
`))
