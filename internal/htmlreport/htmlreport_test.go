package htmlreport

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fpm"
)

func buildResult(t testing.TB) *core.Result {
	t.Helper()
	b := dataset.NewBuilder("grp", "reg")
	var truth, pred []bool
	add := func(g, r string, tv, pv bool, n int) {
		for i := 0; i < n; i++ {
			if err := b.Add(g, r); err != nil {
				t.Fatal(err)
			}
			truth = append(truth, tv)
			pred = append(pred, pv)
		}
	}
	add("hi", "n", false, true, 9)
	add("hi", "n", false, false, 1)
	add("hi", "s", false, true, 2)
	add("hi", "s", false, false, 8)
	add("lo", "n", false, true, 1)
	add("lo", "n", false, false, 9)
	add("lo", "s", true, true, 5)
	add("lo", "s", true, false, 5)
	d, err := b.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	classes, err := core.ConfusionClasses(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	db, err := fpm.NewTxDB(d, classes, core.NumConfusionClasses)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Explore(db, 0.05, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRenderBasic(t *testing.T) {
	res := buildResult(t)
	out, err := Render(res, Config{})
	if err != nil {
		t.Fatal(err)
	}
	html := string(out)
	for _, want := range []string{
		"<!DOCTYPE html>", "DivExplorer report", "Metric FPR", "Metric FNR",
		"grp=hi", "Most divergent patterns", "Global vs individual",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Optional sections disabled by default.
	if strings.Contains(html, "FDR-significant") || strings.Contains(html, "Redundancy-pruned") {
		t.Error("optional sections rendered without being requested")
	}
}

func TestRenderFullConfig(t *testing.T) {
	res := buildResult(t)
	out, err := Render(res, Config{
		Title:    "Audit of model v7",
		Metrics:  []core.Metric{core.FPR},
		TopK:     5,
		Epsilon:  0.02,
		FDRLevel: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	html := string(out)
	for _, want := range []string{
		"Audit of model v7", "FDR-significant", "Redundancy-pruned", "ε = 0.02",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(html, "Metric FNR") {
		t.Error("unrequested metric rendered")
	}
}

func TestRenderEscapesValues(t *testing.T) {
	// Attribute values containing HTML must be escaped by the template.
	b := dataset.NewBuilder("x")
	var truth, pred []bool
	for i := 0; i < 10; i++ {
		v := "<script>alert(1)</script>"
		if i%2 == 0 {
			v = "ok"
		}
		if err := b.Add(v); err != nil {
			t.Fatal(err)
		}
		truth = append(truth, false)
		pred = append(pred, i%3 == 0)
	}
	d, err := b.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	classes, err := core.ConfusionClasses(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	db, err := fpm.NewTxDB(d, classes, core.NumConfusionClasses)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Explore(db, 0.05, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Render(res, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out), "<script>alert") {
		t.Error("unescaped attribute value in HTML output")
	}
	if !strings.Contains(string(out), "&lt;script&gt;") {
		t.Error("escaped value missing entirely")
	}
}
