// Package slicefinder reimplements the Slice Finder baseline (Chung,
// Kraska, Polyzotis, Tae, Whang — ICDE'19 / TKDE'19) that the paper
// compares against in Sec. 6.5. Slice Finder searches the literal
// lattice breadth-first for "problematic" slices: subsets where the
// model's loss is significantly higher than on the rest of the data,
// with a large effect size. Crucially — and this is the behavior the
// DivExplorer paper contrasts with — the search is NOT exhaustive: a
// slice found problematic is reported and never expanded, and the whole
// search stops once k slices have been found. On the paper's artificial
// dataset this makes Slice Finder return the six degree-2 subsets of the
// true degree-3 sources under default parameters.
package slicefinder

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/fpm"
	"repro/internal/stats"
)

// Config parameterizes the search. Zero values select the defaults of the
// original implementation as used in Sec. 6.5.
type Config struct {
	// K is the number of problematic slices to find (default 10).
	K int
	// EffectSize is the minimum effect size φ for a slice to count as
	// problematic (default 0.4). φ is the loss-mean difference between
	// the slice and its counter-slice, normalized by the counter-slice
	// standard deviation.
	EffectSize float64
	// CriticalT is the minimum |t| (Welch two-sample) for statistical
	// significance (default 1.96, the α=0.05 two-sided normal critical
	// value).
	CriticalT float64
	// MaxDegree bounds the number of literals per slice (default 3).
	MaxDegree int
	// MinSize is the minimum number of instances in a slice (default 50,
	// large interpretable slices being Slice Finder's stated goal).
	MinSize int
}

func (c *Config) setDefaults() {
	if c.K <= 0 {
		c.K = 10
	}
	if c.EffectSize <= 0 {
		c.EffectSize = 0.4
	}
	if c.CriticalT <= 0 {
		c.CriticalT = 1.96
	}
	if c.MaxDegree <= 0 {
		c.MaxDegree = 3
	}
	if c.MinSize <= 0 {
		c.MinSize = 50
	}
}

// Slice is one problematic slice found by the search.
type Slice struct {
	Items      fpm.Itemset
	Size       int
	AvgLoss    float64
	EffectSize float64
	T          float64
	Degree     int
}

// Finder runs Slice Finder searches over a fixed dataset and loss vector.
type Finder struct {
	cat  *fpm.Catalog
	d    *dataset.Dataset
	loss []float64
	cfg  Config

	lossSum   float64
	lossSqSum float64
}

// New builds a Finder for the dataset and per-instance loss (e.g. 0/1
// misclassification loss).
func New(d *dataset.Dataset, loss []float64, cfg Config) (*Finder, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(loss) != d.NumRows() {
		return nil, fmt.Errorf("slicefinder: %d losses for %d rows", len(loss), d.NumRows())
	}
	cfg.setDefaults()
	f := &Finder{cat: fpm.NewCatalog(d), d: d, loss: loss, cfg: cfg}
	for _, l := range loss {
		f.lossSum += l
		f.lossSqSum += l * l
	}
	return f, nil
}

// candidate is a slice under consideration, with its covered rows.
type candidate struct {
	items fpm.Itemset
	rows  []int
}

// Find runs the breadth-first lattice search and returns up to K
// problematic slices, sorted by decreasing size (Slice Finder recommends
// large slices first).
func (f *Finder) Find() []Slice {
	cfg := f.cfg
	var found []Slice

	// Degree 1 candidates: one per item, with covered rows.
	level := f.degreeOneCandidates()
	for degree := 1; degree <= cfg.MaxDegree && len(found) < cfg.K; degree++ {
		var expandable []candidate
		// Deterministic evaluation order: lexicographic by itemset.
		sort.Slice(level, func(i, j int) bool { return lessItemsets(level[i].items, level[j].items) })
		for _, cand := range level {
			if len(found) >= cfg.K {
				break
			}
			if len(cand.rows) < cfg.MinSize {
				continue // too small, and all extensions are smaller
			}
			phi, t, avg := f.score(cand.rows)
			if phi >= cfg.EffectSize && math.Abs(t) >= cfg.CriticalT {
				found = append(found, Slice{
					Items:      cand.items.Clone(),
					Size:       len(cand.rows),
					AvgLoss:    avg,
					EffectSize: phi,
					T:          t,
					Degree:     degree,
				})
				continue // problematic: report, do NOT expand (the pruning)
			}
			expandable = append(expandable, cand)
		}
		if degree == cfg.MaxDegree {
			break
		}
		level = f.expand(expandable)
	}
	sort.Slice(found, func(i, j int) bool {
		if found[i].Size != found[j].Size {
			return found[i].Size > found[j].Size
		}
		return lessItemsets(found[i].Items, found[j].Items)
	})
	if len(found) > cfg.K {
		found = found[:cfg.K]
	}
	return found
}

func (f *Finder) degreeOneCandidates() []candidate {
	byItem := make([][]int, f.cat.NumItems())
	for r, row := range f.d.Rows {
		for a, v := range row {
			it := f.cat.ItemFor(a, v)
			byItem[it] = append(byItem[it], r)
		}
	}
	out := make([]candidate, 0, f.cat.NumItems())
	for it, rows := range byItem {
		if len(rows) == 0 {
			continue
		}
		out = append(out, candidate{items: fpm.Itemset{fpm.Item(it)}, rows: rows})
	}
	return out
}

// expand extends each non-problematic candidate by one literal of a
// strictly later attribute (avoiding duplicate slices).
func (f *Finder) expand(cands []candidate) []candidate {
	var out []candidate
	for _, c := range cands {
		maxAttr := f.cat.Attr(c.items[len(c.items)-1])
		counts := make(map[fpm.Item][]int)
		for _, r := range c.rows {
			row := f.d.Rows[r]
			for a := maxAttr + 1; a < f.cat.NumAttrs(); a++ {
				it := f.cat.ItemFor(a, row[a])
				counts[it] = append(counts[it], r)
			}
		}
		items := make([]fpm.Item, 0, len(counts))
		for it := range counts {
			items = append(items, it)
		}
		sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
		for _, it := range items {
			rows := counts[it]
			if len(rows) < f.cfg.MinSize {
				continue
			}
			out = append(out, candidate{
				items: append(c.items.Clone(), it),
				rows:  rows,
			})
		}
	}
	return out
}

// score computes the effect size φ, Welch t-statistic and mean loss for a
// slice versus its counter-slice, using the precomputed global sums so no
// pass over the complement is needed.
func (f *Finder) score(rows []int) (phi, t, avg float64) {
	n := float64(len(rows))
	rest := float64(len(f.loss)) - n
	if n < 2 || rest < 2 {
		return 0, 0, 0
	}
	var sum, sqSum float64
	for _, r := range rows {
		sum += f.loss[r]
		sqSum += f.loss[r] * f.loss[r]
	}
	muS := sum / n
	muR := (f.lossSum - sum) / rest
	varS := (sqSum - n*muS*muS) / (n - 1)
	varR := ((f.lossSqSum - sqSum) - rest*muR*muR) / (rest - 1)
	if varS < 0 {
		varS = 0
	}
	if varR < 0 {
		varR = 0
	}
	if varR > 0 {
		phi = (muS - muR) / math.Sqrt(varR)
	} else if muS > muR {
		phi = math.Inf(1)
	}
	t = stats.WelchT(muS, varS/n, muR, varR/rest)
	if muS < muR {
		t = -t
	}
	return phi, t, muS
}

func lessItemsets(a, b fpm.Itemset) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Catalog exposes the item catalog for formatting slices.
func (f *Finder) Catalog() *fpm.Catalog { return f.cat }

// ZeroOneLoss builds the 0/1 misclassification loss vector from truth and
// predictions.
func ZeroOneLoss(truth, pred []bool) ([]float64, error) {
	if len(truth) != len(pred) {
		return nil, fmt.Errorf("slicefinder: %d truth labels vs %d predictions", len(truth), len(pred))
	}
	loss := make([]float64, len(truth))
	for i := range truth {
		if truth[i] != pred[i] {
			loss[i] = 1
		}
	}
	return loss, nil
}

// LogLoss builds the logarithmic (cross-entropy) loss vector from truth
// and predicted positive-class probabilities — the classifier loss the
// original Slice Finder consumes (Sec. 6.5 contrasts this with
// DivExplorer's Boolean outcome functions). Probabilities are clamped to
// [eps, 1−eps] with eps = 1e-4 to keep losses finite.
func LogLoss(truth []bool, proba []float64) ([]float64, error) {
	if len(truth) != len(proba) {
		return nil, fmt.Errorf("slicefinder: %d truth labels vs %d probabilities", len(truth), len(proba))
	}
	const eps = 1e-4
	loss := make([]float64, len(truth))
	for i, p := range truth {
		q := proba[i]
		if q < eps {
			q = eps
		} else if q > 1-eps {
			q = 1 - eps
		}
		if p {
			loss[i] = -math.Log(q)
		} else {
			loss[i] = -math.Log(1 - q)
		}
	}
	return loss, nil
}
