package slicefinder

import (
	"strings"
	"testing"

	"repro/internal/datagen"
)

func TestZeroOneLoss(t *testing.T) {
	loss, err := ZeroOneLoss([]bool{true, false, true}, []bool{true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 1}
	for i, w := range want {
		if loss[i] != w {
			t.Errorf("loss[%d] = %v, want %v", i, loss[i], w)
		}
	}
	if _, err := ZeroOneLoss([]bool{true}, nil); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestNewValidation(t *testing.T) {
	g := datagen.COMPAS(1)
	if _, err := New(g.Data, []float64{1, 2}, Config{}); err == nil {
		t.Error("short loss vector accepted")
	}
}

// On the artificial dataset with default parameters, Slice Finder stops
// at the six degree-2 subsets of (a,b,c) — the non-exhaustive behavior
// Sec. 6.5 documents. With the effect-size threshold raised to 1.65 it
// reaches the two true degree-3 sources.
func TestArtificialSec65Behavior(t *testing.T) {
	g := datagen.Artificial(2)
	loss, err := ZeroOneLoss(g.Truth, g.Pred)
	if err != nil {
		t.Fatal(err)
	}

	// Default parameters (effect size 0.4).
	f, err := New(g.Data, loss, Config{MaxDegree: 3})
	if err != nil {
		t.Fatal(err)
	}
	slices := f.Find()
	if len(slices) == 0 {
		t.Fatal("no problematic slices found")
	}
	abc := map[string]bool{"a": true, "b": true, "c": true}
	degree2 := 0
	for _, s := range slices {
		if s.Degree == 3 {
			t.Errorf("default run reached degree 3: %v", f.Catalog().Format(s.Items))
		}
		if s.Degree != 2 {
			continue
		}
		degree2++
		for _, it := range s.Items {
			attr := f.Catalog().AttrName(f.Catalog().Attr(it))
			if !abc[attr] {
				t.Errorf("degree-2 slice %s uses attribute outside {a,b,c}",
					f.Catalog().Format(s.Items))
			}
		}
		// Both literals agree in value (subsets of a=b=c=0 / a=b=c=1).
		v0 := f.Catalog().Value(s.Items[0])
		v1 := f.Catalog().Value(s.Items[1])
		if v0 != v1 {
			t.Errorf("degree-2 slice %s mixes values", f.Catalog().Format(s.Items))
		}
	}
	if degree2 != 6 {
		t.Errorf("found %d degree-2 slices, want the 6 subsets", degree2)
	}

	// Raised threshold: the true degree-3 sources emerge. With our 0/1
	// loss the two cells score φ ≈ 1.64 and 1.66 — the paper's 1.65 sits
	// exactly at the knife edge — so at 1.65 we require every degree-3
	// finding to be a true cell and at least one to be found, and at 1.60
	// we require both.
	for _, tc := range []struct {
		phi     float64
		minDeg3 int
	}{
		{1.65, 1},
		{1.60, 2},
	} {
		fRaised, err := New(g.Data, loss, Config{MaxDegree: 3, EffectSize: tc.phi})
		if err != nil {
			t.Fatal(err)
		}
		deg3 := 0
		for _, s := range fRaised.Find() {
			if s.Degree != 3 {
				continue
			}
			deg3++
			name := fRaised.Catalog().Format(s.Items)
			if !(strings.Contains(name, "a=") && strings.Contains(name, "b=") && strings.Contains(name, "c=")) {
				t.Errorf("φ=%v: degree-3 slice %s is not over a,b,c", tc.phi, name)
			}
			v := fRaised.Catalog().Value(s.Items[0])
			for _, it := range s.Items[1:] {
				if fRaised.Catalog().Value(it) != v {
					t.Errorf("φ=%v: degree-3 slice %s mixes values", tc.phi, name)
				}
			}
		}
		if deg3 < tc.minDeg3 || deg3 > 2 {
			t.Errorf("φ=%v: found %d true degree-3 sources, want in [%d, 2]", tc.phi, deg3, tc.minDeg3)
		}
	}
}

func TestFindRespectsK(t *testing.T) {
	g := datagen.COMPAS(3)
	loss, err := ZeroOneLoss(g.Truth, g.Pred)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(g.Data, loss, Config{K: 3, EffectSize: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	slices := f.Find()
	if len(slices) > 3 {
		t.Errorf("returned %d slices, K=3", len(slices))
	}
}

func TestFindSortsBySize(t *testing.T) {
	g := datagen.COMPAS(4)
	loss, err := ZeroOneLoss(g.Truth, g.Pred)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(g.Data, loss, Config{K: 20, EffectSize: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	slices := f.Find()
	for i := 1; i < len(slices); i++ {
		if slices[i].Size > slices[i-1].Size {
			t.Errorf("slices not sorted by size at %d", i)
		}
	}
}

func TestMinSizeFiltersSmallSlices(t *testing.T) {
	g := datagen.Heart(5)
	loss, err := ZeroOneLoss(g.Truth, g.Pred)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(g.Data, loss, Config{MinSize: 100, EffectSize: 0.05, K: 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Find() {
		if s.Size < 100 {
			t.Errorf("slice %v has size %d < MinSize", s.Items, s.Size)
		}
	}
}

// Problematic slices always have positive effect size and significant t.
func TestProblematicSlicesSatisfyThresholds(t *testing.T) {
	g := datagen.COMPAS(6)
	loss, err := ZeroOneLoss(g.Truth, g.Pred)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{K: 25, EffectSize: 0.2}
	f, err := New(g.Data, loss, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Find() {
		if s.EffectSize < 0.2 {
			t.Errorf("slice %v effect size %v below threshold", s.Items, s.EffectSize)
		}
		if s.T < 1.96 {
			t.Errorf("slice %v t=%v below critical", s.Items, s.T)
		}
		if s.AvgLoss <= 0 {
			t.Errorf("slice %v has zero loss but was reported", s.Items)
		}
	}
}
