package faultfs

import (
	"fmt"
	"io/fs"
	"math/rand"
	"sync"
	"time"
)

// Op classifies one filesystem operation for fault matching.
type Op string

// The operation classes an Injector can target.
const (
	OpMkdir    Op = "mkdir"
	OpOpen     Op = "open"
	OpRead     Op = "read"
	OpReadFile Op = "readfile"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpClose    Op = "close"
	OpSeek     Op = "seek"
	OpTruncate Op = "truncate"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpStat     Op = "stat"
	OpReadDir  Op = "readdir"
)

// Fault is one injection rule. The zero value of each field widens the
// match: an empty Op matches every operation class, an empty Path every
// path. Matching operations are counted; the fault arms after the
// After-th match and then fires Times times (0 means once, -1 forever).
// When Prob is set the armed fault fires probabilistically instead,
// drawn from the injector's seeded generator — still deterministic for
// a fixed seed and operation sequence.
type Fault struct {
	// Op restricts the fault to one operation class ("" = any).
	Op Op
	// Path restricts the fault to paths containing this substring.
	Path string
	// After skips the first After matching operations before arming.
	After int
	// Times bounds how often the armed fault fires: 0 = once, -1 = every
	// match, n > 0 = n times.
	Times int
	// Prob, when > 0, makes each armed match fire with this probability
	// using the injector's seeded RNG, instead of unconditionally.
	Prob float64
	// Err is the error returned by a firing fault. A nil Err with a
	// non-zero Delay is a pure latency fault: the operation slows down
	// but succeeds.
	Err error
	// Short, for write faults, is how many bytes reach the file before
	// Err is returned — a torn write. Negative means none.
	Short int
	// Delay is added latency before the fault's verdict (and before the
	// operation itself when Err is nil).
	Delay time.Duration
}

// armedFault tracks one rule's match and fire counts.
type armedFault struct {
	Fault
	seen  int
	fired int
}

// Injector is a fault-injecting FS decorator. All faults are evaluated
// in injection order on every operation; the first firing fault wins.
// It is safe for concurrent use, and — given a fixed seed and a fixed
// operation sequence — fully deterministic.
type Injector struct {
	base FS

	mu     sync.Mutex
	rng    *rand.Rand
	faults []*armedFault
	ops    map[Op]int64
}

// NewInjector wraps base with a fault layer seeded with seed.
func NewInjector(base FS, seed int64) *Injector {
	return &Injector{
		base: base,
		rng:  rand.New(rand.NewSource(seed)),
		ops:  make(map[Op]int64),
	}
}

// Inject adds a fault rule. Rules accumulate; each is matched
// independently in injection order.
func (in *Injector) Inject(f Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.faults = append(in.faults, &armedFault{Fault: f})
}

// OpCount returns how many operations of class op have been observed.
func (in *Injector) OpCount(op Op) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops[op]
}

// hit records one operation and returns the firing fault, if any. The
// returned Fault is a copy; Delay has already been slept.
func (in *Injector) hit(op Op, path string) *Fault {
	in.mu.Lock()
	in.ops[op]++
	var fired *Fault
	var delay time.Duration
	for _, af := range in.faults {
		if af.Op != "" && af.Op != op {
			continue
		}
		if af.Path != "" && !contains(path, af.Path) {
			continue
		}
		af.seen++
		if af.seen <= af.After {
			continue
		}
		times := af.Times
		if times == 0 {
			times = 1
		}
		if times >= 0 && af.fired >= times {
			continue
		}
		if af.Prob > 0 && in.rng.Float64() >= af.Prob {
			continue
		}
		af.fired++
		f := af.Fault
		fired = &f
		delay = f.Delay
		break
	}
	in.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return fired
}

// contains is strings.Contains without the import (keeps the hot check
// allocation-free and trivially inlinable).
func contains(s, sub string) bool {
	if len(sub) == 0 {
		return true
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// faultErr wraps an injected error so messages identify the injection
// site while errors.Is still matches the underlying errno.
func faultErr(op Op, path string, err error) error {
	return fmt.Errorf("faultfs: injected fault on %s %s: %w", op, path, err)
}

// MkdirAll implements FS.
func (in *Injector) MkdirAll(path string, perm fs.FileMode) error {
	if f := in.hit(OpMkdir, path); f != nil && f.Err != nil {
		return faultErr(OpMkdir, path, f.Err)
	}
	return in.base.MkdirAll(path, perm)
}

// OpenFile implements FS; the returned File routes every read, write,
// sync, seek, truncate and close back through the injector.
func (in *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if f := in.hit(OpOpen, name); f != nil && f.Err != nil {
		return nil, faultErr(OpOpen, name, f.Err)
	}
	file, err := in.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: file, path: name}, nil
}

// ReadFile implements FS.
func (in *Injector) ReadFile(name string) ([]byte, error) {
	if f := in.hit(OpReadFile, name); f != nil && f.Err != nil {
		return nil, faultErr(OpReadFile, name, f.Err)
	}
	return in.base.ReadFile(name)
}

// Rename implements FS. The fault matches on the destination path.
func (in *Injector) Rename(oldpath, newpath string) error {
	if f := in.hit(OpRename, newpath); f != nil && f.Err != nil {
		return faultErr(OpRename, newpath, f.Err)
	}
	return in.base.Rename(oldpath, newpath)
}

// Remove implements FS.
func (in *Injector) Remove(name string) error {
	if f := in.hit(OpRemove, name); f != nil && f.Err != nil {
		return faultErr(OpRemove, name, f.Err)
	}
	return in.base.Remove(name)
}

// Stat implements FS.
func (in *Injector) Stat(name string) (fs.FileInfo, error) {
	if f := in.hit(OpStat, name); f != nil && f.Err != nil {
		return nil, faultErr(OpStat, name, f.Err)
	}
	return in.base.Stat(name)
}

// ReadDir implements FS.
func (in *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	if f := in.hit(OpReadDir, name); f != nil && f.Err != nil {
		return nil, faultErr(OpReadDir, name, f.Err)
	}
	return in.base.ReadDir(name)
}

// injFile decorates an open file with the injector's fault rules.
type injFile struct {
	in   *Injector
	f    File
	path string
}

func (fl *injFile) Name() string { return fl.f.Name() }

func (fl *injFile) Read(p []byte) (int, error) {
	if f := fl.in.hit(OpRead, fl.path); f != nil && f.Err != nil {
		return 0, faultErr(OpRead, fl.path, f.Err)
	}
	return fl.f.Read(p)
}

// Write honors Short on firing faults: that many bytes reach the
// underlying file before the error returns — the torn-write simulation
// the WAL's rollback path exists for.
func (fl *injFile) Write(p []byte) (int, error) {
	f := fl.in.hit(OpWrite, fl.path)
	if f == nil || f.Err == nil {
		return fl.f.Write(p)
	}
	n := 0
	if f.Short > 0 {
		short := f.Short
		if short > len(p) {
			short = len(p)
		}
		var werr error
		n, werr = fl.f.Write(p[:short])
		if werr != nil {
			return n, werr
		}
	}
	return n, faultErr(OpWrite, fl.path, f.Err)
}

func (fl *injFile) Sync() error {
	if f := fl.in.hit(OpSync, fl.path); f != nil && f.Err != nil {
		return faultErr(OpSync, fl.path, f.Err)
	}
	return fl.f.Sync()
}

func (fl *injFile) Close() error {
	if f := fl.in.hit(OpClose, fl.path); f != nil && f.Err != nil {
		return faultErr(OpClose, fl.path, f.Err)
	}
	return fl.f.Close()
}

func (fl *injFile) Seek(offset int64, whence int) (int64, error) {
	if f := fl.in.hit(OpSeek, fl.path); f != nil && f.Err != nil {
		return 0, faultErr(OpSeek, fl.path, f.Err)
	}
	return fl.f.Seek(offset, whence)
}

func (fl *injFile) Truncate(size int64) (err error) {
	if f := fl.in.hit(OpTruncate, fl.path); f != nil && f.Err != nil {
		return faultErr(OpTruncate, fl.path, f.Err)
	}
	return fl.f.Truncate(size)
}
