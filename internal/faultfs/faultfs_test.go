package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestOSPassthroughRoundTrip(t *testing.T) {
	fsys := OS()
	dir := filepath.Join(t.TempDir(), "a", "b")
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "f.txt")
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := fsys.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	moved := filepath.Join(dir, "g.txt")
	if err := fsys.Rename(path, moved); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Stat(moved); err != nil {
		t.Fatal(err)
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil || len(ents) != 1 || ents[0].Name() != "g.txt" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := fsys.Remove(moved); err != nil {
		t.Fatal(err)
	}
}

// TestInjectorNthOperation pins the core counting contract: the fault
// skips After matches, then fires exactly Times times.
func TestInjectorNthOperation(t *testing.T) {
	in := NewInjector(OS(), 1)
	in.Inject(Fault{Op: OpWrite, After: 2, Times: 2, Err: syscall.EIO})
	path := filepath.Join(t.TempDir(), "f")
	f, err := in.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var errs []bool
	for i := 0; i < 6; i++ {
		_, werr := f.Write([]byte("x"))
		errs = append(errs, werr != nil)
		if werr != nil && !errors.Is(werr, syscall.EIO) {
			t.Fatalf("write %d: error %v does not unwrap to EIO", i, werr)
		}
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if errs[i] != want[i] {
			t.Fatalf("write error pattern = %v, want %v", errs, want)
		}
	}
	if got := in.OpCount(OpWrite); got != 6 {
		t.Errorf("OpCount(write) = %d, want 6", got)
	}
}

// TestInjectorShortWrite asserts torn-write simulation: Short bytes land
// in the file before the error surfaces.
func TestInjectorShortWrite(t *testing.T) {
	in := NewInjector(OS(), 1)
	in.Inject(Fault{Op: OpWrite, Err: syscall.ENOSPC, Short: 3})
	path := filepath.Join(t.TempDir(), "f")
	f, err := in.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, werr := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(werr, syscall.ENOSPC) {
		t.Fatalf("short write = (%d, %v), want (3, ENOSPC)", n, werr)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "abc" {
		t.Fatalf("file contents after torn write = %q, %v", got, err)
	}
}

// TestInjectorPathFilter verifies path-substring scoping: only the
// matching file sees the fault.
func TestInjectorPathFilter(t *testing.T) {
	in := NewInjector(OS(), 1)
	in.Inject(Fault{Op: OpOpen, Path: "victim", Times: -1, Err: syscall.EIO})
	dir := t.TempDir()
	if _, err := in.OpenFile(filepath.Join(dir, "bystander"), os.O_CREATE|os.O_RDWR, 0o644); err != nil {
		t.Fatalf("bystander open failed: %v", err)
	}
	if _, err := in.OpenFile(filepath.Join(dir, "victim"), os.O_CREATE|os.O_RDWR, 0o644); !errors.Is(err, syscall.EIO) {
		t.Fatalf("victim open = %v, want EIO", err)
	}
}

// TestInjectorProbDeterministic fixes the seeded probabilistic mode:
// the same seed and op sequence produce the same firing pattern.
func TestInjectorProbDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		in := NewInjector(OS(), seed)
		in.Inject(Fault{Op: OpReadFile, Times: -1, Prob: 0.5, Err: syscall.EIO})
		path := filepath.Join(t.TempDir(), "f")
		if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		var out []bool
		for i := 0; i < 32; i++ {
			_, err := in.ReadFile(path)
			out = append(out, err != nil)
		}
		return out
	}
	a, b := pattern(7), pattern(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d: %v vs %v", i, a, b)
		}
	}
	fired := 0
	for _, v := range a {
		if v {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Errorf("prob=0.5 fired %d/%d times; want a mix", fired, len(a))
	}
}

// TestInjectorLatencyOnly: a nil-Err fault slows the op but lets it
// succeed.
func TestInjectorLatencyOnly(t *testing.T) {
	in := NewInjector(OS(), 1)
	in.Inject(Fault{Op: OpStat, Delay: 20 * time.Millisecond})
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := in.Stat(path); err != nil {
		t.Fatalf("latency-only fault failed the op: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("stat took %v, want >= 20ms of injected latency", d)
	}
}

func TestTransientClassification(t *testing.T) {
	for _, err := range []error{syscall.EINTR, syscall.EAGAIN, syscall.ETIMEDOUT} {
		if !Transient(faultErr(OpWrite, "x", err)) {
			t.Errorf("Transient(%v) = false, want true", err)
		}
	}
	for _, err := range []error{syscall.ENOSPC, syscall.EIO, os.ErrPermission, errors.New("other")} {
		if Transient(err) {
			t.Errorf("Transient(%v) = true, want false", err)
		}
	}
}

// TestRetryTransientThenSuccess: a transient error is retried within the
// attempt budget; a permanent one fails fast on first sight.
func TestRetryTransientThenSuccess(t *testing.T) {
	calls := 0
	err := Retry(3, 0, func() error {
		calls++
		if calls < 3 {
			return syscall.EAGAIN
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Retry = %v after %d calls, want success on the 3rd", err, calls)
	}

	calls = 0
	err = Retry(5, 0, func() error {
		calls++
		return syscall.ENOSPC
	})
	if !errors.Is(err, syscall.ENOSPC) || calls != 1 {
		t.Fatalf("permanent error: Retry = %v after %d calls, want ENOSPC after exactly 1", err, calls)
	}

	calls = 0
	err = Retry(3, 0, func() error {
		calls++
		return syscall.EAGAIN
	})
	if !errors.Is(err, syscall.EAGAIN) || calls != 3 {
		t.Fatalf("exhausted retries: Retry = %v after %d calls, want EAGAIN after 3", err, calls)
	}
}

// TestFaultDefaultsFireOnce: the zero Times fires exactly once.
func TestFaultDefaultsFireOnce(t *testing.T) {
	in := NewInjector(OS(), 1)
	in.Inject(Fault{Op: OpRemove, Err: syscall.EIO})
	dir := t.TempDir()
	for i := 0; i < 2; i++ {
		path := filepath.Join(dir, "f")
		if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		err := in.Remove(path)
		if i == 0 && !errors.Is(err, syscall.EIO) {
			t.Fatalf("first remove = %v, want EIO", err)
		}
		if i == 1 && err != nil {
			t.Fatalf("second remove = %v, want success (fault fires once)", err)
		}
	}
}
