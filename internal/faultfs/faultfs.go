// Package faultfs is the filesystem seam for every piece of durable
// state in this repository: the dataset registry's disk-spill tier and
// the job engine's write-ahead log perform all file I/O through the FS
// interface instead of calling package os directly. In production the
// seam is a zero-cost passthrough (OS); in tests it is an Injector — a
// deterministic, seedable fault layer that can return ENOSPC, EIO,
// short writes, or added latency at exactly the Nth matching operation,
// so crash-safety claims ("no ack without a durable record", "a failed
// spill never loses the in-memory copy") are proved against real
// failures instead of asserted in comments.
//
// The package also fixes the retry policy for the whole repository:
// Transient classifies an I/O error as worth retrying (EINTR, EAGAIN,
// ETIMEDOUT), and Retry runs an operation with bounded exponential
// backoff, failing fast and loudly on the first permanent error — a
// full disk does not heal by waiting.
package faultfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"syscall"
	"time"
)

// FS is the set of filesystem operations the durable-state layers use.
// Implementations must be safe for concurrent use.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(path string, perm fs.FileMode) error
	// OpenFile opens name with the given flags, wrapping the handle so
	// per-operation faults apply to reads, writes, syncs and closes too.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath (POSIX semantics).
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// Stat describes name.
	Stat(name string) (fs.FileInfo, error)
	// ReadDir lists name, sorted by filename.
	ReadDir(name string) ([]fs.DirEntry, error)
}

// File is the open-file surface the seam exposes; *os.File satisfies it
// directly.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	// Name returns the path the file was opened under.
	Name() string
	// Sync flushes the file to stable storage.
	Sync() error
	// Truncate resizes the file.
	Truncate(size int64) error
}

// osFS is the production passthrough to package os.
type osFS struct{}

// OS returns the real filesystem. The zero-allocation passthrough is
// shared; callers must not assume a distinct instance per call.
func OS() FS { return osFS{} }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

// Transient reports whether err is a plausibly transient I/O failure
// worth retrying: EINTR, EAGAIN, or ETIMEDOUT, possibly wrapped.
// Everything else — ENOSPC, EIO, permission errors, missing files — is
// permanent: retrying cannot help and must not hide it.
func Transient(err error) bool {
	return errors.Is(err, syscall.EINTR) ||
		errors.Is(err, syscall.EAGAIN) ||
		errors.Is(err, syscall.ETIMEDOUT)
}

// Retry runs op, retrying transient failures (per Transient) up to
// attempts total runs with doubling backoff starting at base. The first
// permanent error is returned immediately — fail fast, fail loud — and
// a transient error that survives every attempt is returned as-is so
// callers can still classify it.
func Retry(attempts int, base time.Duration, op func() error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if err = op(); err == nil || !Transient(err) {
			return err
		}
		if i < attempts-1 && base > 0 {
			// lint:ignore ctxflow bounded backoff (attempts*base is milliseconds total) on crash-safety paths; callers must finish the write even during shutdown
			time.Sleep(base << uint(i))
		}
	}
	return err
}
