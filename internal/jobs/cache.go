package jobs

import (
	"container/list"
	"sync"

	"repro/internal/core"
)

// CacheStats is a point-in-time snapshot of the result-cache counters.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// resultCache is an entry-count-bounded LRU from Spec.CacheKey to the
// mined *core.Result. Results are immutable once mined, so one entry can
// serve any number of concurrent readers.
type resultCache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	entries   map[string]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key string
	res *core.Result
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
	}
}

func (c *resultCache) get(key string) (*core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *resultCache) put(key string, res *core.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
		c.evictions++
	}
}

func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.ll.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
