package jobs

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/registry"
)

// The checked-in fixture testdata/v1_jobs.wal was written by the v1
// record format, whose done records carried only the result summary —
// no spec, no dataset hash. These tests pin the migration contract: a
// v1 log replays cleanly under the v2 reader, its done jobs fold to
// summary-only (never a hard failure, never an accidental recompute),
// and new appends to the same log are written as v2.

// stageV1Fixture copies the fixture log into a fresh store directory.
func stageV1Fixture(t *testing.T) string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "v1_jobs.wal"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, WALName), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRecoverReplaysV1Log(t *testing.T) {
	dir := stageV1Fixture(t)
	e, n := recoveredEngine(t, dir)
	if n != 2 {
		t.Fatalf("Recover returned %d jobs from the v1 fixture, want 2", n)
	}

	done, ok := e.Get("legacy-done")
	if !ok {
		t.Fatal("v1 done job not recovered")
	}
	st := done.Snapshot()
	if st.State != StateDone || !st.Recovered {
		t.Fatalf("v1 done job status = %+v, want done+recovered", st)
	}
	sum := done.Summary()
	if sum == nil || sum.Rows != 14 || len(sum.Metrics) != 1 || sum.Metrics[0].Metric != "FPR" {
		t.Fatalf("v1 summary = %+v, want the durable digest from the log", sum)
	}
	if snap := done.Partial(); snap == nil || snap.Seq != 3 {
		t.Errorf("v1 partial snapshot = %+v, want reattached with seq 3", snap)
	}

	failed, ok := e.Get("legacy-failed")
	if !ok {
		t.Fatal("v1 failed job not recovered")
	}
	if fst := failed.Snapshot(); fst.State != StateFailed || fst.Err == "" {
		t.Errorf("v1 failed job status = %+v, want failed with its recorded error", fst)
	}
}

func TestV1DoneRecordFoldsToSummaryOnly(t *testing.T) {
	dir := stageV1Fixture(t)
	// Even with a registry that could serve the mine, a v1 done record
	// must not recompute: it never recorded what to recompute from.
	reg := registry.New(0)
	if _, _, err := reg.Register([]byte(sampleCSV), dataset.CSVOptions{TrimSpace: true}); err != nil {
		t.Fatal(err)
	}
	e, _ := recoveredEngineWith(t, dir, reg)
	job, _ := e.Get("legacy-done")
	if job.Recomputable() {
		t.Fatal("v1 done record reported recomputable")
	}
	if _, err := job.Result(); !errors.Is(err, ErrNoResult) {
		t.Errorf("Result() err = %v, want ErrNoResult", err)
	}
	if _, err := e.Rehydrate(context.Background(), job); !errors.Is(err, ErrNoResult) {
		t.Errorf("Rehydrate err = %v, want ErrNoResult (summary-only fold)", err)
	}
	if job.Summary() == nil {
		t.Error("summary-only fold lost the summary")
	}
}

// TestV1LogUpgradesInPlace recovers a v1 log, runs a new job through the
// same store, and asserts the mixed-version log replays again with the
// new done record carrying its spec — the in-place upgrade path of a
// long-lived store directory.
func TestV1LogUpgradesInPlace(t *testing.T) {
	dir := stageV1Fixture(t)
	reg := registry.New(0)
	entry, _, err := reg.Register([]byte(sampleCSV), dataset.CSVOptions{TrimSpace: true})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Registry: reg, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Recover(dir); err != nil {
		t.Fatal(err)
	}
	job, err := e.Submit(sampleSpec(entry.Hash))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, job); st.State != StateDone {
		t.Fatalf("new job on a v1 store: %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir)
	defer func() {
		if err := st2.Close(); err != nil {
			t.Error(err)
		}
	}()
	recs := st2.Replay()
	var v1done, v2done *Record
	for i := range recs {
		if recs[i].Type != RecDone {
			continue
		}
		switch recs[i].Job {
		case "legacy-done":
			v1done = &recs[i]
		case job.ID():
			v2done = &recs[i]
		}
	}
	if v1done == nil || v1done.Spec != nil || v1done.V != 1 {
		t.Errorf("v1 done record = %+v, want spec-less v1", v1done)
	}
	if v2done == nil || v2done.Spec == nil || v2done.V != storeVersion {
		t.Fatalf("new done record = %+v, want v%d with a spec", v2done, storeVersion)
	}
	if v2done.Spec.Dataset != entry.Hash || v2done.Spec.TruthCol != "truth" {
		t.Errorf("new done record spec = %+v, want the submitted spec", v2done.Spec)
	}
}
