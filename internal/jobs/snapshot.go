package jobs

import (
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fpm"
)

// PartialPattern is one itemset in a snapshot or result summary, fully
// rendered (item names, not dense ids) so it stays meaningful after a
// restart, when the dataset may no longer be registered.
type PartialPattern struct {
	Items      []string `json:"itemset"`
	Support    float64  `json:"support"`
	Rate       float64  `json:"rate"`
	Divergence float64  `json:"divergence"`
}

// Snapshot is one partial-result snapshot of a running mine: the top-K
// itemsets by |divergence| among everything mined so far, plus counters.
// Seq increases with every update, so pollers of /jobs/{id}/partial can
// detect growth, and Done/Total/Patterns are monotone over a job's life.
type Snapshot struct {
	Seq      int64            `json:"seq"`
	Done     int              `json:"done"`
	Total    int              `json:"total"`
	Patterns int64            `json:"patterns"`
	Metric   string           `json:"metric,omitempty"`
	Top      []PartialPattern `json:"top"`
	Updated  time.Time        `json:"updated"`
	// Reason is set only by the final snapshot of an anytime exploration:
	// "exhausted", "deadline" or "budget". Empty on mid-stream snapshots
	// and on full-analysis jobs.
	Reason string `json:"reason,omitempty"`
}

// MetricSummary is the per-metric slice of a durable result summary.
type MetricSummary struct {
	Metric      string           `json:"metric"`
	OverallRate float64          `json:"overall_rate"`
	Top         []PartialPattern `json:"top_divergent"`
}

// ResultSummary is the durable, self-contained digest of a completed
// analysis that the store persists with the done record. Unlike the full
// *core.Result it does not reference the transaction database, so it
// survives a restart (and registry eviction) and is what the server
// serves for recovered jobs.
type ResultSummary struct {
	Rows     int             `json:"rows"`
	Attrs    int             `json:"attributes"`
	Patterns int             `json:"frequent_itemsets"`
	Support  float64         `json:"min_support"`
	Miner    string          `json:"miner"`
	Metrics  []MetricSummary `json:"metrics"`
}

// summarize digests a mined result into its durable summary: the top-K
// patterns by |divergence| for each requested metric. Metrics undefined
// on the whole dataset (all-⊥) are skipped — their divergence has no
// reference point, and NaN cannot survive JSON encoding anyway.
func summarize(res *core.Result, spec Spec) *ResultSummary {
	topK := spec.TopK
	if topK <= 0 {
		topK = 10
	}
	sum := &ResultSummary{
		Rows:     res.DB.NumRows(),
		Attrs:    res.DB.Catalog.NumAttrs(),
		Patterns: res.NumPatterns(),
		Support:  res.MinSup,
		Miner:    res.Miner,
	}
	for _, name := range spec.Metrics {
		m, err := core.MetricByName(name)
		if err != nil {
			continue // validated at submission; stale names are skipped
		}
		rate := res.GlobalRate(m)
		if math.IsNaN(rate) {
			continue
		}
		ms := MetricSummary{Metric: m.Name, OverallRate: rate}
		for _, rk := range res.TopK(m, topK, core.ByAbsDivergence) {
			ms.Top = append(ms.Top, PartialPattern{
				Items:      itemNameList(res.DB.Catalog, rk.Items),
				Support:    rk.Support,
				Rate:       rk.Rate,
				Divergence: rk.Divergence,
			})
		}
		sum.Metrics = append(sum.Metrics, ms)
	}
	return sum
}

func itemNameList(cat *fpm.Catalog, is fpm.Itemset) []string {
	out := make([]string, len(is))
	for i, it := range is {
		out[i] = cat.Name(it)
	}
	return out
}

// Tracker carries a running job's live telemetry out of the analysis
// function: progress counters and partial-result snapshots. The engine
// builds one per job run; a nil Tracker (the synchronous /analyze path,
// or tests) turns every method into a no-op. Methods are safe for
// concurrent use — the parallel miner calls them from several workers.
type Tracker struct {
	job     *Job
	every   time.Duration   // persistence cadence; <= 0 persists every update
	persist func(*Snapshot) // write-through to the store; may be nil

	mu          sync.Mutex
	seq         int64
	lastPersist time.Time
}

// Progress records mining-subproblem completion counts on the job. It
// has the signature fpm.Parallel.Progress expects.
func (t *Tracker) Progress(done, total int) {
	if t == nil || t.job == nil {
		return
	}
	t.job.progressDone.Store(int64(done))
	t.job.progressTotal.Store(int64(total))
}

// Partial publishes a new partial-result snapshot: it is stamped with
// the next sequence number, made visible to pollers immediately, and
// written through to the store at the configured cadence (terminal
// persistence is the engine's job, so a rate-limited snapshot lost in a
// crash costs only staleness, never correctness).
func (t *Tracker) Partial(snap Snapshot) {
	if t == nil || t.job == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	snap.Seq = t.seq
	snap.Updated = time.Now()
	due := t.persist != nil &&
		(t.every <= 0 || t.lastPersist.IsZero() || time.Since(t.lastPersist) >= t.every)
	if due {
		t.lastPersist = snap.Updated
	}
	t.mu.Unlock()

	t.job.partial.Store(&snap)
	if due {
		t.persist(&snap)
	}
}

// partialAccum folds per-subproblem pattern batches into a running
// top-K-by-|divergence| leaderboard for one metric. It is the bridge
// between fpm.Parallel.Emit and Tracker.Partial.
type partialAccum struct {
	metric  core.Metric
	defined bool // false when the metric is all-⊥ on the whole dataset
	global  float64
	rows    float64
	cat     *fpm.Catalog
	topK    int

	mu       sync.Mutex
	patterns int64
	top      []scoredPattern // descending |divergence|, len <= topK
}

type scoredPattern struct {
	items      fpm.Itemset
	support    float64
	rate       float64
	divergence float64
}

// newPartialAccum prepares an accumulator for the spec's first metric
// (the leaderboard metric for partial snapshots; the full result covers
// all metrics at completion).
func newPartialAccum(db *fpm.TxDB, spec Spec) *partialAccum {
	topK := spec.TopK
	if topK <= 0 {
		topK = 10
	}
	acc := &partialAccum{
		rows: float64(db.NumRows()),
		cat:  db.Catalog,
		topK: topK,
	}
	if len(spec.Metrics) > 0 {
		if m, err := core.MetricByName(spec.Metrics[0]); err == nil {
			acc.metric = m
			kp, kn := m.Counts(db.TotalTally())
			if kp+kn > 0 {
				acc.defined = true
				acc.global = float64(kp) / float64(kp+kn)
			}
		}
	}
	return acc
}

// add folds one emitted batch and returns the snapshot reflecting it.
func (a *partialAccum) add(batch []fpm.FrequentPattern, done, total int) Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.patterns += int64(len(batch))
	if a.defined {
		for _, p := range batch {
			kp, kn := a.metric.Counts(p.Tally)
			if kp+kn == 0 {
				continue
			}
			rate := float64(kp) / float64(kp+kn)
			a.insert(scoredPattern{
				items:      p.Items,
				support:    float64(p.Tally.Total()) / a.rows,
				rate:       rate,
				divergence: rate - a.global,
			})
		}
	}
	snap := Snapshot{
		Done:     done,
		Total:    total,
		Patterns: a.patterns,
		Metric:   a.metric.Name,
		Top:      make([]PartialPattern, len(a.top)),
	}
	for i, sp := range a.top {
		snap.Top[i] = PartialPattern{
			Items:      itemNameList(a.cat, sp.items),
			Support:    sp.support,
			Rate:       sp.rate,
			Divergence: sp.divergence,
		}
	}
	return snap
}

// insert places sp into the descending-|divergence| leaderboard,
// dropping the weakest entry when over capacity. K is small (the
// request's top-k), so insertion sort beats a heap here.
func (a *partialAccum) insert(sp scoredPattern) {
	abs := math.Abs(sp.divergence)
	if len(a.top) == a.topK && abs <= math.Abs(a.top[len(a.top)-1].divergence) {
		return
	}
	pos := len(a.top)
	for pos > 0 && abs > math.Abs(a.top[pos-1].divergence) {
		pos--
	}
	a.top = append(a.top, scoredPattern{})
	copy(a.top[pos+1:], a.top[pos:])
	a.top[pos] = sp
	if len(a.top) > a.topK {
		a.top = a.top[:a.topK]
	}
}
