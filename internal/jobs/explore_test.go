package jobs

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/registry"
)

func sampleExploreSpec(h registry.Hash) ExploreSpec {
	return ExploreSpec{
		Dataset:  h,
		TruthCol: "truth",
		PredCol:  "pred",
		Support:  0.05,
		Metric:   "ER",
		TopK:     10,
	}
}

// TestExploreMatchesFullAnalysis: an unbudgeted explore must agree with
// the exhaustive analysis pipeline's |Δ| leaderboard exactly.
func TestExploreMatchesFullAnalysis(t *testing.T) {
	e, h := testEngine(t, Config{Workers: 1})
	out, err := e.Explore(context.Background(), sampleExploreSpec(h))
	if err != nil {
		t.Fatal(err)
	}
	if out.Reason != "exhausted" || out.Partial || out.CacheHit || out.Sampled {
		t.Fatalf("unbudgeted explore outcome: %+v", out)
	}
	if out.Metric != "ER" || len(out.Top) == 0 {
		t.Fatalf("outcome: %+v", out)
	}

	res, err := e.Analyze(context.Background(), Spec{
		Dataset: h, TruthCol: "truth", PredCol: "pred", Support: 0.05, Metrics: []string{"ER"},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := core.MetricByName("ER")
	want := res.TopK(m, 10, core.ByAbsDivergence)
	if len(out.Top) != len(want) {
		t.Fatalf("%d patterns, full analysis ranks %d", len(out.Top), len(want))
	}
	for i, p := range out.Top {
		wantNames := make([]string, len(want[i].Items))
		for j, it := range want[i].Items {
			wantNames[j] = res.DB.Catalog.Name(it)
		}
		if !reflect.DeepEqual(p.Items, wantNames) ||
			p.Support != want[i].Support || p.Rate != want[i].Rate ||
			p.Divergence != want[i].Divergence || p.T != want[i].T {
			t.Fatalf("rank %d: %+v, full analysis %+v (%v)", i, p, want[i], wantNames)
		}
		if p.SupportLo != p.Support || p.DivergenceHi != p.Divergence {
			t.Fatalf("rank %d: exact run has non-degenerate bounds: %+v", i, p)
		}
	}
}

// TestExploreCacheAndBudgets: complete outcomes are cached (budgets
// excluded from the key), budgeted/partial outcomes are not, and a
// cached complete outcome truthfully serves a budgeted re-ask.
func TestExploreCacheAndBudgets(t *testing.T) {
	e, h := testEngine(t, Config{Workers: 1})
	spec := sampleExploreSpec(h)

	first, err := e.Explore(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	mines := e.ExploreStatsSnapshot().Mines

	again, err := e.Explore(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.Partial {
		t.Fatalf("repeat explore: cache_hit=%v partial=%v", again.CacheHit, again.Partial)
	}
	if !reflect.DeepEqual(again.Top, first.Top) {
		t.Fatal("cached outcome differs from the original")
	}
	if got := e.ExploreStatsSnapshot().Mines; got != mines {
		t.Fatalf("cache hit ran a mine: %d -> %d", mines, got)
	}

	// A budgeted re-ask of the same (cached, complete) question is a
	// cache hit too — and is NOT partial, because the cached answer is
	// complete.
	budgeted := spec
	budgeted.MaxPatterns = 1
	b, err := e.Explore(context.Background(), budgeted)
	if err != nil {
		t.Fatal(err)
	}
	if !b.CacheHit || b.Partial {
		t.Fatalf("budgeted re-ask of cached question: %+v", b)
	}

	// A budgeted first-ask of a NEW question mines, truncates, and must
	// not be cached.
	fresh := spec
	fresh.Support = 0.25
	fresh.MaxPatterns = 1
	p1, err := e.Explore(context.Background(), fresh)
	if err != nil {
		t.Fatal(err)
	}
	if p1.CacheHit || !p1.Partial || p1.Reason != "budget" || p1.Visited != 1 {
		t.Fatalf("budgeted first ask: %+v", p1)
	}
	p2, err := e.Explore(context.Background(), fresh)
	if err != nil {
		t.Fatal(err)
	}
	if p2.CacheHit {
		t.Fatal("a partial outcome was served from the cache")
	}
}

// TestExpandPerformsNoMine is the no-re-mine guarantee: navigation
// moves the expand counters, never the mine counter, and each
// refinement carries exact statistics.
func TestExpandPerformsNoMine(t *testing.T) {
	e, h := testEngine(t, Config{Workers: 1})
	spec := sampleExploreSpec(h)
	out, err := e.Explore(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	mines := e.ExploreStatsSnapshot().Mines

	// Expand the root, then drill the top pattern's first refinement.
	root, err := e.Expand(ExpandSpec{
		Dataset: h, TruthCol: "truth", PredCol: "pred", Support: 0.05, Metric: "ER",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Refinements) == 0 {
		t.Fatal("root expand found no singletons")
	}
	drill, err := e.Expand(ExpandSpec{
		Dataset: h, TruthCol: "truth", PredCol: "pred", Support: 0.05, Metric: "ER",
		Pattern: root.Refinements[0].Items, Attr: "region",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range drill.Refinements {
		if len(r.Items) != 2 {
			t.Fatalf("drill refinement %v is not parent+1", r.Items)
		}
	}

	st := e.ExploreStatsSnapshot()
	if st.Mines != mines {
		t.Fatalf("expand/drill ran a mine: %d -> %d", mines, st.Mines)
	}
	if st.Expands != 2 {
		t.Fatalf("expand counter = %d, want 2", st.Expands)
	}
	if st.Sessions < 1 || st.Navigation.RowsScanned == 0 {
		t.Fatalf("navigation stats not accounted: %+v", st)
	}

	// Cross-check a refinement against the explore leaderboard: the
	// root singletons include every size-1 leaderboard pattern with the
	// same statistics.
	byName := map[string]ExplorePattern{}
	for _, r := range root.Refinements {
		byName[r.Items[0]] = r
	}
	for _, p := range out.Top {
		if len(p.Items) != 1 {
			continue
		}
		r, ok := byName[p.Items[0]]
		if !ok {
			t.Fatalf("leaderboard singleton %v missing from root expand", p.Items)
		}
		if r.Support != p.Support || r.Rate != p.Rate || r.Divergence != p.Divergence || r.T != p.T {
			t.Fatalf("singleton %v: expand %+v, explore %+v", p.Items, r, p)
		}
	}
}

// TestSubmitExploreStreams: the async path runs an exploration through
// the job lifecycle, and the final partial-result snapshot carries the
// completion reason.
func TestSubmitExploreStreams(t *testing.T) {
	e, h := testEngine(t, Config{Workers: 1})
	job, err := e.SubmitExplore(sampleExploreSpec(h))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, job)
	if st.State != StateDone {
		t.Fatalf("explore job ended %s (%s)", st.State, st.Err)
	}
	out, err := job.Explore()
	if err != nil {
		t.Fatal(err)
	}
	if out.Reason != "exhausted" || len(out.Top) == 0 {
		t.Fatalf("async outcome: %+v", out)
	}
	snap := job.Partial()
	if snap == nil {
		t.Fatal("explore job published no snapshot")
	}
	if snap.Reason != "exhausted" {
		t.Fatalf("final snapshot reason %q, want exhausted", snap.Reason)
	}
	if len(snap.Top) == 0 || snap.Patterns != out.Visited {
		t.Fatalf("final snapshot: %+v", snap)
	}
	if _, err := job.Result(); err == nil {
		t.Fatal("explore job served a full analysis result")
	}
}

func TestExploreValidation(t *testing.T) {
	e, h := testEngine(t, Config{Workers: 1})
	ctx := context.Background()
	bad := func(mutate func(*ExploreSpec)) error {
		s := sampleExploreSpec(h)
		mutate(&s)
		_, err := e.Explore(ctx, s)
		return err
	}
	cases := map[string]func(*ExploreSpec){
		"support":  func(s *ExploreSpec) { s.Support = 1.5 },
		"metric":   func(s *ExploreSpec) { s.Metric = "nope" },
		"budget":   func(s *ExploreSpec) { s.BudgetMS = -1 },
		"conf":     func(s *ExploreSpec) { s.Confidence = 1 },
		"dataset":  func(s *ExploreSpec) { s.Dataset = "missing" },
		"truthcol": func(s *ExploreSpec) { s.TruthCol = "ghost" },
	}
	for name, mutate := range cases {
		if err := bad(mutate); !errors.Is(err, ErrBadInput) {
			t.Errorf("%s: error %v, want ErrBadInput", name, err)
		}
	}
	if _, err := e.Expand(ExpandSpec{
		Dataset: h, TruthCol: "truth", PredCol: "pred", Support: 0.05,
		Pattern: []string{"group=A", "group=B"},
	}); !errors.Is(err, ErrBadInput) {
		t.Errorf("doubly-bound expand: %v", err)
	}
}
