// Package jobs is the asynchronous analysis-job engine: a bounded worker
// pool runs DivExplorer explorations (via the parallel FP-growth path)
// off the request goroutine, with a full job lifecycle
//
//	queued → running → done | failed | canceled
//
// per-job context cancellation and deadline, a bounded queue with
// explicit backpressure (ErrQueueFull instead of unbounded growth), an
// LRU result cache keyed by the analysis inputs, and graceful drain on
// shutdown. Datasets are referenced by content hash through
// internal/registry, so identical uploads mine at most once and repeat
// requests are served from the cache.
package jobs

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/registry"
)

// Typed errors surfaced to the HTTP layer.
var (
	// ErrQueueFull is returned by Submit when the bounded queue is at
	// capacity; the server maps it to HTTP 429. Callers should retry
	// later rather than block.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrShuttingDown is returned by Submit after Shutdown started.
	ErrShuttingDown = errors.New("jobs: engine shutting down")
	// ErrUnknownJob is returned for job ids the engine has never seen.
	ErrUnknownJob = errors.New("jobs: unknown job")
	// ErrBadInput wraps analysis failures caused by the request itself
	// (unknown columns, non-Boolean labels, bad support) as opposed to
	// internal faults; the server maps it to HTTP 400.
	ErrBadInput = errors.New("jobs: bad input")
	// ErrInterrupted marks a job that was queued or running when the
	// previous process died; Recover re-marks such jobs failed rather
	// than letting them vanish silently.
	ErrInterrupted = errors.New("jobs: interrupted by engine restart")
	// ErrNoResult is returned by Result for done jobs recovered from the
	// store: the full in-memory result is gone. Engine.Rehydrate re-mines
	// it when the job's done record carries a spec (schema v2) and the
	// dataset is still resident; otherwise only the durable summary
	// (Job.Summary) survives a restart.
	ErrNoResult = errors.New("jobs: full result not in memory (job recovered from store); use the summary")
	// ErrDatasetGone marks an analysis or rehydration whose dataset is no
	// longer resident in the registry (never registered, evicted, or lost
	// to a restart). The server maps it to the degraded-summary fallback
	// on the result endpoint.
	ErrDatasetGone = errors.New("jobs: dataset not resident in the registry")
)

// State is a job lifecycle state.
type State int

const (
	StateQueued State = iota
	StateRunning
	StateDone
	StateFailed
	StateCanceled
)

// String returns the wire name of the state.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCanceled:
		return "canceled"
	default:
		return "unknown"
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Spec describes one analysis: which dataset (by content hash), which
// label columns, and the exploration parameters. Metrics, TopK, Epsilon
// and Alpha shape the rendered report; the mined result depends only on
// the dataset, the label columns and the support threshold.
type Spec struct {
	Dataset  registry.Hash
	TruthCol string
	PredCol  string
	Support  float64
	Metrics  []string // metric names, e.g. "FPR"; validated by the caller
	Epsilon  float64
	TopK     int
	Alpha    float64
	// Timeout overrides the engine's default per-job deadline when > 0.
	Timeout time.Duration
	// Tenant is the admission identity the submission arrived under. It
	// shapes queueing and quotas only — never the mined result — so it is
	// excluded from CacheKey: two tenants analyzing the same dataset share
	// one cache entry.
	Tenant string `json:",omitempty"`
}

// CacheKey identifies the cached mining result for a spec. It covers
// every input the mined lattice depends on — dataset hash, label
// columns, support — plus the metric list and epsilon so a cached entry
// always reproduces the full request byte-for-byte. Render-only knobs
// (TopK, Alpha, Timeout) and the admission identity (Tenant) are
// deliberately excluded.
func (s Spec) CacheKey() string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	parts := []string{
		string(s.Dataset), s.TruthCol, s.PredCol,
		f(s.Support), strings.Join(s.Metrics, ","), f(s.Epsilon),
	}
	return strings.Join(parts, "\x1f")
}

// Job is one submitted analysis. All exported access goes through
// Snapshot; the engine owns the mutable state.
type Job struct {
	id   string
	spec Spec
	// explore, when non-nil, marks an anytime exploration job
	// (SubmitExplore); run() routes it to the explore path instead of a
	// full analysis. sig does the same for significance jobs
	// (SubmitSignificance).
	explore *ExploreSpec
	sig     *SignificanceSpec

	mu         sync.Mutex
	state      State
	err        error
	result     *core.Result
	exploreOut *ExploreOutcome
	sigOut     *SignificanceOutcome
	summary    *ResultSummary
	recovered  bool
	cacheHit   bool
	created    time.Time
	started    time.Time
	finished   time.Time
	cancel     func() // non-nil only while running

	// recompute, set during recovery from a v2 done record, is the spec
	// to re-mine the full result from; rehydrateMu single-flights that
	// re-mine so concurrent result fetches do not each run it.
	// rehydrateCancel, non-nil only while that re-mine is in flight,
	// aborts it — Cancel on a recovered done job must stop the re-mine
	// instead of letting it complete and repopulate caches.
	recompute       *Spec
	rehydrateMu     sync.Mutex
	rehydrateCancel func()

	partial       atomic.Pointer[Snapshot]
	progressDone  atomic.Int64
	progressTotal atomic.Int64

	canceledByUser atomic.Bool
}

// ID returns the job's opaque identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the submitted spec.
func (j *Job) Spec() Spec { return j.spec }

// Result returns the mined result once the job is done. For done jobs
// recovered from the store only the summary survives; Result returns
// ErrNoResult and callers fall back to Summary.
func (j *Job) Result() (*core.Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone:
		if j.result == nil {
			return nil, fmt.Errorf("%w: job %s", ErrNoResult, j.id)
		}
		return j.result, nil
	case StateFailed:
		return nil, j.err
	default:
		return nil, fmt.Errorf("jobs: job %s is %s, not done", j.id, j.state)
	}
}

// Explore returns the anytime-exploration outcome of a done explore
// job (SubmitExplore). Analysis jobs and unfinished jobs have none.
func (j *Job) Explore() (*ExploreOutcome, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone:
		if j.exploreOut == nil {
			return nil, fmt.Errorf("jobs: job %s is not an explore job", j.id)
		}
		return j.exploreOut, nil
	case StateFailed:
		return nil, j.err
	default:
		return nil, fmt.Errorf("jobs: job %s is %s, not done", j.id, j.state)
	}
}

// Significance returns the significance outcome of a done significance
// job (SubmitSignificance). Other job kinds and unfinished jobs have
// none.
func (j *Job) Significance() (*SignificanceOutcome, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone:
		if j.sigOut == nil {
			return nil, fmt.Errorf("jobs: job %s is not a significance job", j.id)
		}
		return j.sigOut, nil
	case StateFailed:
		return nil, j.err
	default:
		return nil, fmt.Errorf("jobs: job %s is %s, not done", j.id, j.state)
	}
}

// Summary returns the durable result digest, nil until the job is done.
// It is the only result representation that survives a restart.
func (j *Job) Summary() *ResultSummary {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.summary
}

// Partial returns the latest partial-result snapshot, nil before the
// first one. For jobs recovered from the store this is the last
// snapshot the previous process persisted.
func (j *Job) Partial() *Snapshot { return j.partial.Load() }

// Recomputable reports whether the job's full result can in principle be
// re-mined after recovery: its done record carried a spec (schema v2).
// Whether the re-mine succeeds still depends on the dataset being
// resident when Engine.Rehydrate runs.
func (j *Job) Recomputable() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recompute != nil
}

// Recovered reports whether the job was reconstructed from the store by
// Recover rather than run by this process.
func (j *Job) Recovered() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recovered
}

// Status is an immutable snapshot of a job's externally visible state.
type Status struct {
	ID        string
	Spec      Spec
	State     State
	Err       string
	CacheHit  bool
	Recovered bool
	Created   time.Time
	Started   time.Time
	Finished  time.Time
	// ProgressDone/ProgressTotal count completed mining subproblems;
	// both are zero until the first subproblem finishes.
	ProgressDone  int64
	ProgressTotal int64
}

// Snapshot returns the job's current status.
func (j *Job) Snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:            j.id,
		Spec:          j.spec,
		State:         j.state,
		CacheHit:      j.cacheHit,
		Recovered:     j.recovered,
		Created:       j.created,
		Started:       j.started,
		Finished:      j.finished,
		ProgressDone:  j.progressDone.Load(),
		ProgressTotal: j.progressTotal.Load(),
	}
	if j.err != nil {
		st.Err = j.err.Error()
	}
	return st
}

// NewID mints a job identifier in the engine's format. The cluster
// forwarding layer mints IDs before a submission leaves the ingress
// node, so hedged and retried forwards land idempotently under one ID.
func NewID() (string, error) { return newJobID() }

// newJobID returns a 16-hex-character random identifier.
func newJobID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("jobs: generating id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}
