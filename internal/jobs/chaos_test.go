package jobs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"repro/internal/faultfs"
)

// chaosSeed keeps the fault-injection arms deterministic; the
// fault-injection verify tier overrides it via DIVEX_FAULT_SEED to walk
// different schedules across runs while staying reproducible.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	if s := os.Getenv("DIVEX_FAULT_SEED"); s != "" {
		var seed int64
		for _, c := range s {
			if c < '0' || c > '9' {
				t.Fatalf("DIVEX_FAULT_SEED=%q is not a positive integer", s)
			}
			seed = seed*10 + int64(c-'0')
		}
		return seed
	}
	return 1
}

// openChaosStore opens a store whose file I/O runs through a seeded
// injector, registering cleanup.
func openChaosStore(t *testing.T, dir string, inj *faultfs.Injector) *Store {
	t.Helper()
	st, err := OpenStoreFS(dir, inj)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	return st
}

// reopenClean re-opens the WAL on the real filesystem and returns its
// replayed records — the "restart after the fault" arm every chaos test
// ends with: whatever the faults did, the log must replay cleanly.
func reopenClean(t *testing.T, dir string) []Record {
	t.Helper()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("log does not reopen cleanly after faults: %v", err)
	}
	defer st.Close()
	return st.Replay()
}

// TestChaosSubmitNoAckWithoutDurableRecord is the write-ahead contract
// under a failing disk: when the submitted record cannot be persisted,
// Submit must refuse the job — no ack without a durable record — and a
// restart must not surface any trace of it.
func TestChaosSubmitNoAckWithoutDurableRecord(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(faultfs.OS(), chaosSeed(t))
	inj.Inject(faultfs.Fault{Op: faultfs.OpWrite, Path: WALName, Times: -1, Err: syscall.ENOSPC})
	st := openChaosStore(t, dir, inj)
	e, h := testEngine(t, Config{Workers: 1, Store: st})

	job, err := e.Submit(sampleSpec(h))
	if err == nil {
		t.Fatalf("Submit acked job %s with an unwritable WAL", job.ID())
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Errorf("Submit error %v does not surface the disk fault", err)
	}
	if got := e.Stats(); got.Submitted != 0 || got.Rejected != 1 {
		t.Errorf("stats = %+v, want 0 submitted / 1 rejected", got)
	}
	if recs := reopenClean(t, dir); len(recs) != 0 {
		t.Fatalf("restart replayed %d records from a never-acked submit: %+v", len(recs), recs)
	}
}

// TestChaosTornAppendRolledBack: a short write followed by a transient
// error is rolled back in place and retried; the record lands intact
// and the log stays parseable.
func TestChaosTornAppendRolledBack(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(faultfs.OS(), chaosSeed(t))
	inj.Inject(faultfs.Fault{Op: faultfs.OpWrite, Path: WALName, Err: syscall.EINTR, Short: 7})
	st := openChaosStore(t, dir, inj)

	if err := st.Append(Record{Type: RecSubmitted, Job: "torn-1"}); err != nil {
		t.Fatalf("transient torn append not absorbed: %v", err)
	}
	if err := st.Append(Record{Type: RecDone, Job: "torn-1"}); err != nil {
		t.Fatal(err)
	}
	if st.Rollbacks() != 1 {
		t.Errorf("rollbacks = %d, want 1", st.Rollbacks())
	}
	recs := reopenClean(t, dir)
	if len(recs) != 2 || recs[0].Type != RecSubmitted || recs[1].Type != RecDone {
		t.Fatalf("replay after torn append = %+v, want clean submitted+done", recs)
	}
}

// TestChaosPermanentShortWriteLeavesNoGarbage: ENOSPC halfway through a
// record surfaces to the caller, but the half-written bytes are
// truncated away — the next append and the next open both see a
// consistent log. Without the rollback, the interior garbage would
// poison every record after it and fail the next open.
func TestChaosPermanentShortWriteLeavesNoGarbage(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(faultfs.OS(), chaosSeed(t))
	inj.Inject(faultfs.Fault{Op: faultfs.OpWrite, Path: WALName, Err: syscall.ENOSPC, Short: 11})
	st := openChaosStore(t, dir, inj)

	if err := st.Append(Record{Type: RecSubmitted, Job: "nospc-1"}); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append = %v, want ENOSPC", err)
	}
	// The disk "recovers" (fault fired once); the store must still work.
	if err := st.Append(Record{Type: RecSubmitted, Job: "nospc-2"}); err != nil {
		t.Fatalf("append after recovered disk: %v", err)
	}
	recs := reopenClean(t, dir)
	if len(recs) != 1 || recs[0].Job != "nospc-2" {
		t.Fatalf("replay = %+v, want exactly the second record", recs)
	}
	raw, err := os.ReadFile(filepath.Join(dir, WALName))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(string(raw), "\n") != 1 {
		t.Errorf("log holds stray bytes beyond the one good record:\n%q", raw)
	}
}

// TestChaosSyncFailureWithholdsAck: when the fsync of a submitted
// record fails, the bytes may be in the page cache but are not durable
// — the append must fail AND the record must be rolled back so it
// cannot reappear after a restart as an acked job.
func TestChaosSyncFailureWithholdsAck(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(faultfs.OS(), chaosSeed(t))
	inj.Inject(faultfs.Fault{Op: faultfs.OpSync, Path: WALName, Err: syscall.EIO})
	st := openChaosStore(t, dir, inj)

	if err := st.Append(Record{Type: RecSubmitted, Job: "sync-1"}); !errors.Is(err, syscall.EIO) {
		t.Fatalf("append = %v, want EIO from the failed sync", err)
	}
	if recs := reopenClean(t, dir); len(recs) != 0 {
		t.Fatalf("unacked record survived the sync failure: %+v", recs)
	}
}

// TestChaosWedgedStoreFailsFastAndRestartRepairs: when the rollback of
// a torn append itself fails, the log tail is in an unknown state; the
// store must wedge — refusing every further append loudly instead of
// stacking garbage — and the next process's open must repair the tail
// and keep the records from before the fault.
func TestChaosWedgedStoreFailsFastAndRestartRepairs(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(faultfs.OS(), chaosSeed(t))
	st := openChaosStore(t, dir, inj)
	if err := st.Append(Record{Type: RecSubmitted, Job: "pre-fault"}); err != nil {
		t.Fatal(err)
	}
	inj.Inject(faultfs.Fault{Op: faultfs.OpWrite, Path: WALName, Err: syscall.EIO, Short: 5})
	inj.Inject(faultfs.Fault{Op: faultfs.OpTruncate, Path: WALName, Err: syscall.EIO})

	err := st.Append(Record{Type: RecSubmitted, Job: "wedge-1"})
	if !errors.Is(err, ErrStoreWedged) {
		t.Fatalf("append with failing rollback = %v, want ErrStoreWedged", err)
	}
	if !st.Wedged() {
		t.Fatal("store not wedged after failed rollback")
	}
	if err := st.Append(Record{Type: RecSubmitted, Job: "wedge-2"}); !errors.Is(err, ErrStoreWedged) {
		t.Fatalf("append on wedged store = %v, want fail-fast ErrStoreWedged", err)
	}

	recs := reopenClean(t, dir)
	if len(recs) != 1 || recs[0].Job != "pre-fault" {
		t.Fatalf("restart replay = %+v, want only the pre-fault record", recs)
	}
}

// TestChaosRecoveryUnderReadLatency: recovery against a slow disk is
// just slow, not wrong — the injector adds latency to every WAL read
// and replay still reconstructs the same jobs.
func TestChaosRecoveryUnderReadLatency(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} {
		if err := st.Append(Record{Type: RecSubmitted, Job: id}); err != nil {
			t.Fatal(err)
		}
		if err := st.Append(Record{Type: RecDone, Job: id}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	inj := faultfs.NewInjector(faultfs.OS(), chaosSeed(t))
	inj.Inject(faultfs.Fault{Op: faultfs.OpReadFile, Times: -1, Delay: 5 * 1e6}) // 5ms per read
	e, _ := testEngine(t, Config{Workers: 1})
	n, err := e.RecoverFS(dir, inj)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("recovered %d jobs under read latency, want 3", n)
	}
}
