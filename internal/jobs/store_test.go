package jobs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Type: RecSubmitted, Job: "a", Spec: &Spec{TruthCol: "truth", Support: 0.1}},
		{Type: RecRunning, Job: "a"},
		{Type: RecSnapshot, Job: "a", Snapshot: &Snapshot{Seq: 1, Done: 2, Total: 5}},
		{Type: RecDone, Job: "a", Result: &ResultSummary{Rows: 14, Patterns: 3}, CacheHit: true},
	}
	for _, r := range recs {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Appends(); got != int64(len(recs)) {
		t.Errorf("Appends() = %d, want %d", got, len(recs))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st2.Close(); err != nil {
			t.Error(err)
		}
	}()
	got := st2.Replay()
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	if st2.Repaired() != 0 {
		t.Errorf("clean log reported %d repaired bytes", st2.Repaired())
	}
	for i, r := range got {
		if r.Type != recs[i].Type || r.Job != recs[i].Job {
			t.Errorf("record %d = %s/%s, want %s/%s", i, r.Type, r.Job, recs[i].Type, recs[i].Job)
		}
		if r.V != storeVersion {
			t.Errorf("record %d version = %d, want %d", i, r.V, storeVersion)
		}
		if r.Time.IsZero() {
			t.Errorf("record %d has no timestamp", i)
		}
	}
	if got[0].Spec == nil || got[0].Spec.Support != 0.1 {
		t.Errorf("submitted spec did not round-trip: %+v", got[0].Spec)
	}
	if got[2].Snapshot == nil || got[2].Snapshot.Done != 2 {
		t.Errorf("snapshot did not round-trip: %+v", got[2].Snapshot)
	}
	if got[3].Result == nil || got[3].Result.Rows != 14 || !got[3].CacheHit {
		t.Errorf("done record did not round-trip: %+v", got[3])
	}
}

func TestStoreTornTailRepaired(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(Record{Type: RecSubmitted, Job: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(Record{Type: RecDone, Job: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a partial JSON line with no newline.
	path := filepath.Join(dir, WALName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"type":"subm`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("torn tail must be repaired, got %v", err)
	}
	if got := len(st2.Replay()); got != 2 {
		t.Errorf("replayed %d records after repair, want 2", got)
	}
	if st2.Repaired() == 0 {
		t.Error("Repaired() = 0 after a torn tail")
	}
	// The repaired store must accept appends cleanly on the truncated file.
	if err := st2.Append(Record{Type: RecSubmitted, Job: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st3.Close(); err != nil {
			t.Error(err)
		}
	}()
	if got := len(st3.Replay()); got != 3 {
		t.Errorf("replayed %d records after repair+append, want 3", got)
	}
}

// TestStoreUnterminatedFinalRecordIsTorn: a final record that parses
// but lacks its trailing newline is torn, not valid — the newline is
// written in the same Write call as the record and the ack-gating fsync
// comes after it, so such a record was never acknowledged. Accepting it
// would position the next append mid-line, gluing two records onto one
// line that a later open must reject as interior corruption.
func TestStoreUnterminatedFinalRecordIsTorn(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(Record{Type: RecSubmitted, Job: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(Record{Type: RecDone, Job: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// A complete, parseable record with its trailing newline sheared off
	// — the crash landing exactly one byte short.
	path := filepath.Join(dir, WALName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := `{"v":2,"type":"submitted","job":"b","time":"2026-01-01T00:00:00Z"}`
	if _, err := f.WriteString(torn); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("unterminated final record must be repaired, got %v", err)
	}
	if got := len(st2.Replay()); got != 2 {
		t.Errorf("replayed %d records, want 2 — the unacked tail must not replay", got)
	}
	if got := st2.Repaired(); got != int64(len(torn)) {
		t.Errorf("Repaired() = %d, want %d", got, len(torn))
	}
	// The next append must land on a fresh line, not glued to the tail.
	if err := st2.Append(Record{Type: RecSubmitted, Job: "c"}); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("reopen after repair+append failed: %v", err)
	}
	defer func() {
		if err := st3.Close(); err != nil {
			t.Error(err)
		}
	}()
	got := st3.Replay()
	if len(got) != 3 || got[2].Job != "c" {
		t.Errorf("replay after repair+append = %d records (last job %q), want 3 ending in c",
			len(got), got[len(got)-1].Job)
	}
}

func TestStoreInteriorCorruptionFailsOpen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, WALName)
	log := `{"v":1,"type":"submitted","job":"a","time":"2026-01-01T00:00:00Z"}
not json at all
{"v":1,"type":"done","job":"a","time":"2026-01-01T00:00:01Z"}
`
	if err := os.WriteFile(path, []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenStore(dir)
	if err == nil || !strings.Contains(err.Error(), "corrupt record at line 2") {
		t.Fatalf("OpenStore err = %v, want interior-corruption error at line 2", err)
	}
}

func TestStoreAppendAfterCloseFails(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil { // idempotent
		t.Errorf("second Close err = %v", err)
	}
	if err := st.Append(Record{Type: RecSubmitted, Job: "x"}); err == nil {
		t.Error("Append after Close succeeded")
	}
}

func TestStoreEmptyAndBlankLines(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, WALName)
	log := "\n{\"v\":1,\"type\":\"submitted\",\"job\":\"a\",\"time\":\"2026-01-01T00:00:00Z\"}\n\n"
	if err := os.WriteFile(path, []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st.Close(); err != nil {
			t.Error(err)
		}
	}()
	if got := len(st.Replay()); got != 1 {
		t.Errorf("replayed %d records, want 1 (blank lines skipped)", got)
	}
	if st.Repaired() != 0 {
		t.Errorf("blank lines counted as torn bytes: %d", st.Repaired())
	}
}

func TestRecordErrorRoundTripsInterrupted(t *testing.T) {
	if err := recordError(ErrInterrupted.Error()); !errors.Is(err, ErrInterrupted) {
		t.Errorf("recordError did not rehydrate ErrInterrupted: %v", err)
	}
	if err := recordError("boom"); err == nil || err.Error() != "boom" {
		t.Errorf("recordError(boom) = %v", err)
	}
	if err := recordError(""); err == nil {
		t.Error("recordError(\"\") = nil, want a placeholder error")
	}
}
