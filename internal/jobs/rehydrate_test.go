package jobs

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/registry"
)

// recoveredEngineWith builds a fresh engine over reg (the restarted
// process's registry — empty, or re-populated by client re-uploads) and
// recovers dir into it.
func recoveredEngineWith(t *testing.T, dir string, reg *registry.Registry) (*Engine, int) {
	t.Helper()
	e, err := New(Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := e.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	n, err := e.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	return e, n
}

// runDurableJob runs one sampleSpec job to completion against a durable
// engine rooted at dir and shuts the engine down cleanly, returning the
// job id and the live full result for later comparison.
func runDurableJob(t *testing.T, dir string) (string, *core.Result) {
	t.Helper()
	e1, h := testEngine(t, Config{Workers: 1, Store: openTestStore(t, dir)})
	job, err := e1.Submit(sampleSpec(h))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, job); st.State != StateDone {
		t.Fatalf("job state = %s (err %q), want done", st.State, st.Err)
	}
	res, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	return job.ID(), res
}

func TestRehydrateFullResultAfterRestart(t *testing.T) {
	dir := t.TempDir()
	id, live := runDurableJob(t, dir)

	// The restarted process's registry holds the dataset again (the
	// client re-uploaded it, or an operator re-pinned it).
	reg := registry.New(0)
	if _, _, err := reg.Register([]byte(sampleCSV), dataset.CSVOptions{TrimSpace: true}); err != nil {
		t.Fatal(err)
	}
	e2, n := recoveredEngineWith(t, dir, reg)
	if n != 1 {
		t.Fatalf("Recover returned %d jobs, want 1", n)
	}
	job, ok := e2.Get(id)
	if !ok {
		t.Fatal("job vanished across the restart")
	}
	if !job.Recomputable() {
		t.Fatal("v2-recovered done job is not recomputable")
	}
	// The full result is not in memory until the first fetch asks for it.
	if _, err := job.Result(); !errors.Is(err, ErrNoResult) {
		t.Fatalf("Result() before rehydration err = %v, want ErrNoResult", err)
	}

	res, err := e2.Rehydrate(context.Background(), job)
	if err != nil {
		t.Fatalf("Rehydrate: %v", err)
	}
	if res.NumPatterns() != live.NumPatterns() || res.MinSup != live.MinSup {
		t.Errorf("rehydrated result has %d patterns at support %v, want %d at %v",
			res.NumPatterns(), res.MinSup, live.NumPatterns(), live.MinSup)
	}
	// The re-mine pins the result back onto the job: Result works again
	// and a second Rehydrate is free.
	if again, err := job.Result(); err != nil || again != res {
		t.Errorf("Result() after rehydration = (%p, %v), want the pinned result", again, err)
	}
	if again, err := e2.Rehydrate(context.Background(), job); err != nil || again != res {
		t.Errorf("second Rehydrate = (%p, %v), want the pinned result", again, err)
	}
	if s := e2.Stats(); s.Rehydrated != 1 {
		t.Errorf("stats.Rehydrated = %d, want 1 (pinned result served from memory)", s.Rehydrated)
	}
}

func TestRehydrateDatasetGoneFallsToSummary(t *testing.T) {
	dir := t.TempDir()
	id, _ := runDurableJob(t, dir)

	// Empty registry: the dataset did not survive the restart.
	e2, _ := recoveredEngineWith(t, dir, registry.New(0))
	job, _ := e2.Get(id)
	if _, err := e2.Rehydrate(context.Background(), job); !errors.Is(err, ErrDatasetGone) {
		t.Fatalf("Rehydrate err = %v, want ErrDatasetGone", err)
	}
	if job.Summary() == nil {
		t.Error("durable summary lost alongside the dataset")
	}
	if s := e2.Stats(); s.Rehydrated != 0 {
		t.Errorf("stats.Rehydrated = %d after a failed rehydration, want 0", s.Rehydrated)
	}
}

// TestRehydrateConcurrentSingleFlight issues many concurrent result
// fetches against a freshly recovered job: exactly one re-mine runs and
// every caller gets the same pinned result. Run under -race this audits
// the rehydration locking.
func TestRehydrateConcurrentSingleFlight(t *testing.T) {
	dir := t.TempDir()
	id, _ := runDurableJob(t, dir)

	reg := registry.New(0)
	if _, _, err := reg.Register([]byte(sampleCSV), dataset.CSVOptions{TrimSpace: true}); err != nil {
		t.Fatal(err)
	}
	e2, _ := recoveredEngineWith(t, dir, reg)
	job, _ := e2.Get(id)

	const fetchers = 8
	results := make([]*core.Result, fetchers)
	var wg sync.WaitGroup
	for i := 0; i < fetchers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := e2.Rehydrate(context.Background(), job)
			if err != nil {
				t.Errorf("fetcher %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i := 1; i < fetchers; i++ {
		if results[i] != results[0] {
			t.Fatalf("fetcher %d got a different result object", i)
		}
	}
	if s := e2.Stats(); s.Rehydrated != 1 {
		t.Errorf("stats.Rehydrated = %d, want exactly 1 re-mine", s.Rehydrated)
	}
}

func TestRehydrateNonRecoveredJobIsFree(t *testing.T) {
	e, h := testEngine(t, Config{Workers: 1})
	job, err := e.Submit(sampleSpec(h))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job)
	live, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	// Rehydrate on a job whose result is still in memory is a no-op.
	res, err := e.Rehydrate(context.Background(), job)
	if err != nil || res != live {
		t.Errorf("Rehydrate of a live job = (%p, %v), want the in-memory result", res, err)
	}
	if s := e.Stats(); s.Rehydrated != 0 {
		t.Errorf("stats.Rehydrated = %d for a live job, want 0", s.Rehydrated)
	}
}
