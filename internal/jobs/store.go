package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/faultfs"
)

// Record types, in lifecycle order. Every transition the engine makes is
// written through to the store as one JSON line, so replaying the log
// reconstructs the externally visible history of every job.
const (
	// RecSubmitted opens a job's history and carries its spec.
	RecSubmitted = "submitted"
	// RecRejected closes the history of a submission that never ran
	// (queue full while the submitted record was already written).
	// Replay drops the job entirely: the client was told no.
	RecRejected = "rejected"
	// RecRunning marks the hand-off to a worker.
	RecRunning = "running"
	// RecSnapshot carries a partial-result snapshot of a running mine.
	RecSnapshot = "snapshot"
	// RecDone closes a successful job and carries its result summary.
	RecDone = "done"
	// RecFailed and RecCanceled close unsuccessful jobs.
	RecFailed   = "failed"
	RecCanceled = "canceled"
)

// Monitor record types. The streaming-monitor subsystem shares the job
// WAL for spec durability: a created record carries the validated spec
// (in Record.Monitor, with the monitor id in Record.Job), a deleted
// record retires it. Both are fsynced before the client is acknowledged.
// Job replay (Engine.RecoverFS) skips them; monitor.Manager.Recover
// folds them.
const (
	RecMonitorCreated = "monitor_created"
	RecMonitorDeleted = "monitor_deleted"
)

// storeVersion is the record format version written by this build.
//
//   - v1 (the original format): done records carried only the durable
//     ResultSummary, so recovery could never serve more than a digest.
//   - v2: done records additionally carry the job's Spec — the dataset
//     content hash plus every mining parameter — making each one a
//     self-contained recipe for re-mining the full result after a
//     restart (Engine.Rehydrate). v1 logs replay unchanged: their done
//     records have no spec, so those jobs fold to summary-only exactly
//     as before, and unknown future record types are skipped.
const storeVersion = 2

// Record is one write-ahead log entry. Spec is set on submitted records
// and (since v2) on done records; at most one of Snapshot and Result is
// set, depending on Type.
type Record struct {
	V        int            `json:"v"`
	Type     string         `json:"type"`
	Job      string         `json:"job"`
	Time     time.Time      `json:"time"`
	Spec     *Spec          `json:"spec,omitempty"`
	Snapshot *Snapshot      `json:"snapshot,omitempty"`
	Result   *ResultSummary `json:"result,omitempty"`
	Error    string         `json:"error,omitempty"`
	CacheHit bool           `json:"cache_hit,omitempty"`
	// Monitor carries the validated monitor spec on monitor_created
	// records (opaque to this package; owned by internal/monitor).
	Monitor json.RawMessage `json:"monitor,omitempty"`
}

// MonitorRecord reports whether the record belongs to the monitor
// subsystem rather than the job lifecycle.
func (r Record) MonitorRecord() bool {
	return r.Type == RecMonitorCreated || r.Type == RecMonitorDeleted
}

// terminal reports whether the record closes a job's history. Terminal
// records (and submitted ones — the durability ack) are fsynced.
func (r Record) terminal() bool {
	switch r.Type {
	case RecDone, RecFailed, RecCanceled, RecRejected:
		return true
	}
	return false
}

// WALName is the log file name inside a store directory.
const WALName = "jobs.wal"

// Store is a write-ahead, file-backed job store: an append-only file of
// JSON-line records under a directory. Opening the store replays the
// existing log (repairing a torn final line left by a crash mid-write)
// and positions the file for appends. All file I/O goes through a
// faultfs.FS, so the failure paths — a torn append rolled back by
// truncate, a wedged store after a failed rollback — are exercised by
// injected faults, not just reasoned about. All methods are safe for
// concurrent use.
type Store struct {
	mu       sync.Mutex
	f        faultfs.File
	path     string
	replayed []Record
	repaired int64 // bytes dropped from a torn tail at open
	off      int64 // end of the last durably-consistent record
	appends  int64
	rollbks  int64 // torn appends rolled back in place
	closed   bool
	wedged   bool
}

// storeRetries / storeBackoff bound the retry-with-backoff loop around
// each append: transient errors (EINTR, EAGAIN, ETIMEDOUT) are retried
// after rolling the torn bytes back, permanent ones (ENOSPC, EIO) fail
// fast to the caller — which refuses the ack.
const (
	storeRetries = 3
	storeBackoff = 2 * time.Millisecond
)

// OpenStore opens (creating if needed) the job store rooted at dir on
// the real filesystem. See OpenStoreFS.
func OpenStore(dir string) (*Store, error) { return OpenStoreFS(dir, nil) }

// OpenStoreFS opens (creating if needed) the job store rooted at dir,
// with all file I/O routed through fsys (the real filesystem when nil).
// The existing log is read and validated: a final line that does not
// parse — the signature of a crash mid-append — is truncated away, while
// garbage anywhere else fails the open, because silently skipping
// interior records would un-happen acknowledged jobs.
func OpenStoreFS(dir string, fsys faultfs.FS) (*Store, error) {
	if fsys == nil {
		fsys = faultfs.OS()
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: creating store dir: %w", err)
	}
	path := filepath.Join(dir, WALName)
	raw, err := fsys.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("jobs: reading store log: %w", err)
	}
	records, validLen, err := scanLog(raw)
	if err != nil {
		return nil, fmt.Errorf("jobs: store log %s: %w", path, err)
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: opening store log: %w", err)
	}
	if validLen < int64(len(raw)) {
		if err := f.Truncate(validLen); err != nil {
			_ = f.Close() // the truncate error is the one worth reporting
			return nil, fmt.Errorf("jobs: repairing torn store log: %w", err)
		}
	}
	if _, err := f.Seek(validLen, 0); err != nil {
		_ = f.Close() // the seek error is the one worth reporting
		return nil, fmt.Errorf("jobs: seeking store log: %w", err)
	}
	return &Store{
		f:        f,
		path:     path,
		replayed: records,
		repaired: int64(len(raw)) - validLen,
		off:      validLen,
	}, nil
}

// scanLog parses the raw log bytes into records and returns the length
// of the valid prefix. A trailing line that fails to parse (torn write)
// is excluded from the valid prefix, and so is a final line with no
// terminating newline even when it parses: the newline is part of the
// same write as the record and the ack-gating fsync comes after it, so
// an unterminated record was never acknowledged — while accepting it
// would leave the valid prefix ending mid-line, and the next append
// would glue its record onto that line, which a later open could only
// read as interior corruption (or repair by truncating an acknowledged
// record). A malformed interior line is an error.
func scanLog(raw []byte) ([]Record, int64, error) {
	var records []Record
	var valid int64
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		consumed := valid + int64(len(b)) + 1 // +1 for the newline
		if consumed > int64(len(raw)) {
			// Unterminated final line: torn by definition, parseable or not.
			return records, valid, nil
		}
		if len(b) == 0 {
			valid = consumed
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil || rec.Type == "" || rec.Job == "" {
			// Only a torn tail is repairable: an unparseable line is
			// tolerated (and truncated away) only as the very last one.
			if consumed == int64(len(raw)) {
				return records, valid, nil
			}
			return nil, 0, fmt.Errorf("corrupt record at line %d", line)
		}
		records = append(records, rec)
		valid = consumed
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("scanning log: %w", err)
	}
	return records, valid, nil
}

// Replay returns the records read when the store was opened, in log
// order. The caller must not modify the returned slice.
func (s *Store) Replay() []Record { return s.replayed }

// Repaired returns the number of torn-tail bytes dropped at open (zero
// for a cleanly closed log).
func (s *Store) Repaired() int64 { return s.repaired }

// Path returns the log file path.
func (s *Store) Path() string { return s.path }

// ErrStoreWedged marks a store whose rollback of a torn append failed:
// the log tail is in an unknown state, so every further append is
// refused rather than risk writing interior garbage after it. A restart
// recovers — the open-time scan repairs the torn tail.
var ErrStoreWedged = errors.New("jobs: store wedged by a failed append rollback (restart repairs the log)")

// Append writes one record to the log. Submitted and terminal records
// are fsynced before Append returns — the write-ahead contract: no job
// the client was told about can vanish in a crash.
//
// Failure discipline: a failed or short write is rolled back in place
// (truncate + seek to the last consistent offset) so the log never
// accumulates interior garbage — which the next open would rightly
// refuse to skip. Transient errors are then retried with backoff;
// permanent ones propagate, and the caller withholds the ack. If the
// rollback itself fails the store wedges (ErrStoreWedged): it stops
// accepting appends entirely, because the only safe repair for an
// unknown tail is the open-time torn-tail scan of the next process.
func (s *Store) Append(rec Record) error {
	if rec.V == 0 {
		rec.V = storeVersion
	}
	if rec.Time.IsZero() {
		rec.Time = time.Now()
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: encoding store record: %w", err)
	}
	b = append(b, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("jobs: store is closed")
	}
	if s.wedged {
		return ErrStoreWedged
	}
	err = faultfs.Retry(storeRetries, storeBackoff, func() error {
		if _, werr := s.f.Write(b); werr != nil {
			if rerr := s.rollbackLocked(); rerr != nil {
				return rerr // permanent by construction: ends the retry loop
			}
			return werr
		}
		return nil
	})
	if err != nil {
		if s.wedged {
			return err
		}
		return fmt.Errorf("jobs: appending store record: %w", err)
	}
	durable := rec.terminal() || rec.Type == RecSubmitted || rec.MonitorRecord()
	if durable {
		if err := faultfs.Retry(storeRetries, storeBackoff, func() error { return s.f.Sync() }); err != nil {
			// The bytes reached the file but not stable storage, so the
			// ack cannot be given. Roll the record back out: a record that
			// was never acknowledged must not reappear after a restart as
			// if it had been.
			if rerr := s.rollbackLocked(); rerr != nil {
				return rerr
			}
			return fmt.Errorf("jobs: syncing store log: %w", err)
		}
	}
	s.off += int64(len(b))
	s.appends++
	return nil
}

// rollbackLocked restores the log to the last consistent append offset
// after a torn write, wedging the store if the repair fails. Caller
// holds s.mu.
func (s *Store) rollbackLocked() error {
	if terr := s.f.Truncate(s.off); terr != nil {
		s.wedged = true
		return fmt.Errorf("%w: truncate to offset %d: %v", ErrStoreWedged, s.off, terr)
	}
	if _, serr := s.f.Seek(s.off, 0); serr != nil {
		s.wedged = true
		return fmt.Errorf("%w: seek to offset %d: %v", ErrStoreWedged, s.off, serr)
	}
	s.rollbks++
	return nil
}

// Wedged reports whether a failed rollback has wedged the store.
func (s *Store) Wedged() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wedged
}

// Rollbacks returns the number of torn appends rolled back in place.
func (s *Store) Rollbacks() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rollbks
}

// Appends returns the number of records appended since open.
func (s *Store) Appends() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appends
}

// Close syncs and closes the log file. Further appends fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.f.Sync(); err != nil {
		_ = s.f.Close() // the sync error is the one worth reporting
		return fmt.Errorf("jobs: syncing store log: %w", err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("jobs: closing store log: %w", err)
	}
	return nil
}
