package jobs

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/registry"
)

// openTestStore opens a store over dir, failing the test on error.
func openTestStore(t *testing.T, dir string) *Store {
	t.Helper()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// copyWAL snapshots the live log in srcDir into a fresh directory — the
// deterministic stand-in for a crash: the new directory holds exactly
// the bytes that had reached the file when the "process died".
func copyWAL(t *testing.T, srcDir string) string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(srcDir, WALName))
	if err != nil {
		t.Fatal(err)
	}
	dst := t.TempDir()
	if err := os.WriteFile(filepath.Join(dst, WALName), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return dst
}

// recoveredEngine builds a fresh engine (empty registry — a restarted
// process has nothing in memory) and recovers dir into it.
func recoveredEngine(t *testing.T, dir string) (*Engine, int) {
	t.Helper()
	e, err := New(Config{Registry: registry.New(0)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := e.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	n, err := e.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	return e, n
}

func TestRecoverCompletedJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	e1, h := testEngine(t, Config{Workers: 1, Store: openTestStore(t, dir)})
	job, err := e1.Submit(sampleSpec(h))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, job); st.State != StateDone {
		t.Fatalf("job state = %s (err %q), want done", st.State, st.Err)
	}
	wantSum := job.Summary()
	if wantSum == nil || len(wantSum.Metrics) == 0 {
		t.Fatalf("live job summary = %+v, want populated", wantSum)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e1.Shutdown(ctx); err != nil { // clean restart: close the log
		t.Fatal(err)
	}

	e2, n := recoveredEngine(t, dir)
	if n != 1 {
		t.Fatalf("Recover returned %d jobs, want 1", n)
	}
	got, ok := e2.Get(job.ID())
	if !ok {
		t.Fatal("completed job vanished across the restart")
	}
	st := got.Snapshot()
	if st.State != StateDone || !st.Recovered {
		t.Errorf("recovered status = %+v", st)
	}
	if !got.Recovered() {
		t.Error("Recovered() = false for a replayed job")
	}
	if _, err := got.Result(); !errors.Is(err, ErrNoResult) {
		t.Errorf("Result() err = %v, want ErrNoResult", err)
	}
	sum := got.Summary()
	if sum == nil {
		t.Fatal("recovered job has no summary")
	}
	if sum.Rows != wantSum.Rows || sum.Patterns != wantSum.Patterns ||
		len(sum.Metrics) != len(wantSum.Metrics) {
		t.Errorf("recovered summary %+v, want %+v", sum, wantSum)
	}
	if s := e2.Stats(); !s.Durable || s.Recovered != 1 {
		t.Errorf("stats = %+v, want durable with 1 recovered", s)
	}
}

func TestRecoverInterruptedJobMarkedFailed(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	started := make(chan string, 1)
	e1, h := testEngine(t, Config{Workers: 1, Store: st, Analyze: blockingAnalyze(started)})
	job, err := e1.Submit(sampleSpec(h))
	if err != nil {
		t.Fatal(err)
	}
	<-started // the worker is inside analyze
	// Wait for the running record to reach the file, then "crash".
	deadline := time.Now().Add(5 * time.Second)
	for st.Appends() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	crashDir := copyWAL(t, dir)
	if _, err := e1.Cancel(job.ID()); err != nil { // unblock for cleanup
		t.Fatal(err)
	}

	e2, n := recoveredEngine(t, crashDir)
	if n != 1 {
		t.Fatalf("Recover returned %d jobs, want 1", n)
	}
	got, ok := e2.Get(job.ID())
	if !ok {
		t.Fatal("interrupted job vanished across the restart")
	}
	snap := got.Snapshot()
	if snap.State != StateFailed {
		t.Fatalf("interrupted job state = %s, want failed", snap.State)
	}
	if _, err := got.Result(); !errors.Is(err, ErrInterrupted) {
		t.Errorf("Result() err = %v, want ErrInterrupted", err)
	}
	if snap.Finished.IsZero() {
		t.Error("interrupted job has no finished time")
	}

	// The re-mark must itself be durable: a second recovery of the same
	// directory sees a terminal job and changes nothing.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	st3 := openTestStore(t, crashDir)
	recs := st3.Replay()
	last := recs[len(recs)-1]
	if last.Type != RecFailed || last.Job != job.ID() || last.Error != ErrInterrupted.Error() {
		t.Errorf("last record after recovery = %+v, want the interrupted re-mark", last)
	}
	if err := st3.Close(); err != nil {
		t.Fatal(err)
	}
	e3, _ := recoveredEngine(t, crashDir)
	got3, _ := e3.Get(job.ID())
	if _, err := got3.Result(); !errors.Is(err, ErrInterrupted) {
		t.Errorf("second recovery err = %v, want ErrInterrupted preserved", err)
	}
}

func TestRecoverTornTailCrash(t *testing.T) {
	dir := t.TempDir()
	e1, h := testEngine(t, Config{Workers: 1, Store: openTestStore(t, dir)})
	job, err := e1.Submit(sampleSpec(h))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, job); st.State != StateDone {
		t.Fatalf("job state = %s, want done", st.State)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: append half a record, as a crash mid-write would.
	crashDir := copyWAL(t, dir)
	f, err := os.OpenFile(filepath.Join(crashDir, WALName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"type":"snapsho`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	e2, n := recoveredEngine(t, crashDir)
	if n != 1 {
		t.Fatalf("Recover over a torn log returned %d jobs, want 1", n)
	}
	got, _ := e2.Get(job.ID())
	if st := got.Snapshot(); st.State != StateDone {
		t.Errorf("state after torn-tail recovery = %s, want done", st.State)
	}
	if got.Summary() == nil {
		t.Error("summary lost to the torn tail")
	}
}

func TestRecoverReattachesPartialSnapshot(t *testing.T) {
	dir := t.TempDir()
	// SnapshotEvery 0 persists every partial update, so the last one the
	// previous process saw is exactly what recovery reattaches.
	e1, h := testEngine(t, Config{Workers: 1, Store: openTestStore(t, dir), SnapshotEvery: 0})
	job, err := e1.Submit(sampleSpec(h))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, job); st.State != StateDone {
		t.Fatalf("job state = %s, want done", st.State)
	}
	live := job.Partial()
	if live == nil || live.Seq == 0 {
		t.Fatalf("live partial = %+v, want snapshots emitted", live)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	e2, _ := recoveredEngine(t, dir)
	got, _ := e2.Get(job.ID())
	snap := got.Partial()
	if snap == nil {
		t.Fatal("recovered job lost its partial snapshot")
	}
	if snap.Seq != live.Seq || snap.Done != live.Done || snap.Total != live.Total {
		t.Errorf("recovered partial = %+v, want %+v", snap, live)
	}
	st := got.Snapshot()
	if st.ProgressDone != int64(snap.Done) || st.ProgressTotal != int64(snap.Total) {
		t.Errorf("recovered progress = %d/%d, want %d/%d",
			st.ProgressDone, st.ProgressTotal, snap.Done, snap.Total)
	}
}

func TestRecoverSkipsRejectedSubmissions(t *testing.T) {
	dir := t.TempDir()
	log := `{"v":1,"type":"submitted","job":"kept","time":"2026-01-01T00:00:00Z"}
{"v":1,"type":"done","job":"kept","time":"2026-01-01T00:00:01Z"}
{"v":1,"type":"submitted","job":"refused","time":"2026-01-01T00:00:02Z"}
{"v":1,"type":"rejected","job":"refused","time":"2026-01-01T00:00:02Z","error":"jobs: queue full"}
`
	if err := os.WriteFile(filepath.Join(dir, WALName), []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	e, n := recoveredEngine(t, dir)
	if n != 1 {
		t.Fatalf("Recover returned %d jobs, want 1 (rejected dropped)", n)
	}
	if _, ok := e.Get("refused"); ok {
		t.Error("rejected submission resurrected by recovery")
	}
	if j, ok := e.Get("kept"); !ok || j.Snapshot().State != StateDone {
		t.Error("terminal job not recovered alongside the rejected one")
	}
}

func TestRecoverSecondStoreRefused(t *testing.T) {
	e, _ := recoveredEngine(t, t.TempDir())
	if _, err := e.Recover(t.TempDir()); err == nil {
		t.Fatal("attaching a second store succeeded")
	}
}

func TestWriteAheadSubmitRecordedBeforeAck(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	started := make(chan string, 1)
	e, h := testEngine(t, Config{Workers: 1, Store: st, Analyze: blockingAnalyze(started)})
	job, err := e.Submit(sampleSpec(h))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// The submitted record is on disk before Submit returned: a copy of
	// the log taken right now must already contain it.
	crashDir := copyWAL(t, dir)
	if _, err := e.Cancel(job.ID()); err != nil {
		t.Fatal(err)
	}
	st2 := openTestStore(t, crashDir)
	defer func() {
		if err := st2.Close(); err != nil {
			t.Error(err)
		}
	}()
	recs := st2.Replay()
	if len(recs) == 0 || recs[0].Type != RecSubmitted || recs[0].Job != job.ID() {
		t.Fatalf("first record = %+v, want the write-ahead submitted record", recs)
	}
	if recs[0].Spec == nil || recs[0].Spec.TruthCol != "truth" {
		t.Errorf("submitted record carries no spec: %+v", recs[0])
	}
}

func TestQueueFullClosesWriteAheadRecord(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	started := make(chan string, 1)
	e, h := testEngine(t, Config{Workers: 1, QueueDepth: 1, Store: st, Analyze: blockingAnalyze(started)})
	s1 := sampleSpec(h)
	s1.TruthCol = "blocker"
	if _, err := e.Submit(s1); err != nil {
		t.Fatal(err)
	}
	<-started
	s2 := sampleSpec(h)
	s2.TruthCol = "queued"
	if _, err := e.Submit(s2); err != nil {
		t.Fatal(err)
	}
	s3 := sampleSpec(h)
	s3.TruthCol = "rejected"
	if _, err := e.Submit(s3); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit err = %v, want ErrQueueFull", err)
	}
	crashDir := copyWAL(t, dir)
	for _, j := range e.snapshotJobs() {
		if _, err := e.Cancel(j.ID()); err != nil {
			t.Fatal(err)
		}
	}

	// Recovery over that log must not resurrect the refused submission.
	e2, n := recoveredEngine(t, crashDir)
	if n != 2 {
		t.Fatalf("Recover returned %d jobs, want 2 (the refused one dropped)", n)
	}
	for _, j := range e2.snapshotJobs() {
		if j.Spec().TruthCol == "rejected" {
			t.Error("refused submission resurrected by recovery")
		}
	}
}
