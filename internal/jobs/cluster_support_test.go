package jobs

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/registry"
)

func TestSubmitAdoptedIsIdempotent(t *testing.T) {
	e, h := testEngine(t, Config{Workers: 1})
	j1, err := e.SubmitAdopted("forwarded-1", sampleSpec(h))
	if err != nil {
		t.Fatal(err)
	}
	// The hedged duplicate arrives while (or after) the first runs.
	j2, err := e.SubmitAdopted("forwarded-1", sampleSpec(h))
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j2 {
		t.Fatalf("duplicate adopted submit created a second job")
	}
	if st := waitTerminal(t, j1); st.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", st.State, st.Err)
	}
	if got := e.Stats().Submitted; got != 1 {
		t.Fatalf("submitted = %d, want 1 (duplicate must not enqueue)", got)
	}
	if _, err := e.SubmitAdopted("", sampleSpec(h)); err == nil {
		t.Fatalf("empty adopted id accepted")
	}
}

func TestSubmitRejectsDuplicateID(t *testing.T) {
	e, h := testEngine(t, Config{Workers: 1})
	if _, err := e.SubmitAdopted("dup", sampleSpec(h)); err != nil {
		t.Fatal(err)
	}
	// The non-adopted path must refuse to silently merge distinct
	// submissions under one ID.
	if _, err := e.submit("dup", sampleSpec(h), false); err == nil {
		t.Fatalf("duplicate non-adopted id accepted")
	}
}

func TestAdoptDoneServesSummaryAndRehydrates(t *testing.T) {
	e, h := testEngine(t, Config{Workers: 1})
	// Mine once on the "dead peer" side to get a real summary.
	donor, err := e.Submit(sampleSpec(h))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, donor)
	sum := donor.Summary()
	if sum == nil {
		t.Fatal("donor job has no summary")
	}

	// Adopt it on a second engine sharing the registry (the replica).
	e2, err := New(Config{Registry: e.reg})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = e2.Shutdown(ctx)
	}()
	job, err := e2.AdoptDone(donor.ID(), sampleSpec(h), sum)
	if err != nil {
		t.Fatal(err)
	}
	st := job.Snapshot()
	if st.State != StateDone || !st.Recovered {
		t.Fatalf("adopted job = %+v, want recovered done", st)
	}
	if job.Summary() != sum {
		t.Fatalf("adopted job lost the summary")
	}
	// Full result re-mines on demand through the standard path.
	res, err := e2.Rehydrate(context.Background(), job)
	if err != nil {
		t.Fatalf("Rehydrate of adopted job: %v", err)
	}
	if res.NumPatterns() == 0 {
		t.Fatalf("adopted rehydrate mined nothing")
	}
	// Adoption is idempotent.
	again, err := e2.AdoptDone(donor.ID(), sampleSpec(h), sum)
	if err != nil || again != job {
		t.Fatalf("re-adoption = (%p, %v), want the existing job", again, err)
	}
}

// countingQueue wraps the default FIFO to prove the engine drives the
// configured Queue implementation.
type countingQueue struct {
	inner  Queue
	pushes int64
	mu     sync.Mutex
}

func (q *countingQueue) Push(j *Job) bool {
	q.mu.Lock()
	q.pushes++
	q.mu.Unlock()
	return q.inner.Push(j)
}
func (q *countingQueue) Pop() (*Job, bool) { return q.inner.Pop() }
func (q *countingQueue) Len() int          { return q.inner.Len() }
func (q *countingQueue) Cap() int          { return q.inner.Cap() }
func (q *countingQueue) Close()            { q.inner.Close() }

func TestConfigQueueSeam(t *testing.T) {
	q := &countingQueue{inner: chanQueue{ch: make(chan *Job, 8)}}
	e, h := testEngine(t, Config{Workers: 1, Queue: q})
	job, err := e.Submit(sampleSpec(h))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job)
	q.mu.Lock()
	pushes := q.pushes
	q.mu.Unlock()
	if pushes != 1 {
		t.Fatalf("custom queue saw %d pushes, want 1", pushes)
	}
	if st := e.Stats(); st.QueueCap != 8 {
		t.Fatalf("stats read the default queue, not the configured one: %+v", st)
	}
}

func TestOnTerminalHookFires(t *testing.T) {
	var mu sync.Mutex
	var terminal []string
	hook := func(j *Job) {
		mu.Lock()
		terminal = append(terminal, j.ID()+":"+j.Snapshot().State.String())
		mu.Unlock()
	}
	e, h := testEngine(t, Config{Workers: 1, OnTerminal: hook})
	job, err := e.Submit(sampleSpec(h))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job)
	mu.Lock()
	got := append([]string(nil), terminal...)
	mu.Unlock()
	if len(got) != 1 || got[0] != job.ID()+":done" {
		t.Fatalf("terminal hook calls = %v, want one done for %s", got, job.ID())
	}
}

func TestOnTerminalHookFiresForQueuedCancel(t *testing.T) {
	var mu sync.Mutex
	var terminal []string
	hook := func(j *Job) {
		mu.Lock()
		terminal = append(terminal, j.Snapshot().State.String())
		mu.Unlock()
	}
	gate := make(chan struct{})
	block := func(ctx context.Context, _ *dataset.Dataset, _ Spec, _ *Tracker) (*core.Result, error) {
		<-gate
		return nil, ctx.Err()
	}
	e, h := testEngine(t, Config{Workers: 1, OnTerminal: hook, Analyze: block})
	// First job occupies the lone worker; the second stays queued.
	blocker, err := e.Submit(sampleSpec(h))
	if err != nil {
		t.Fatal(err)
	}
	spec2 := sampleSpec(h)
	spec2.Support = 0.1 // distinct cache key
	queued, err := e.Submit(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	close(gate)
	waitTerminal(t, blocker)
	waitTerminal(t, queued)
	mu.Lock()
	sawCanceled := false
	for _, s := range terminal {
		if s == "canceled" {
			sawCanceled = true
		}
	}
	mu.Unlock()
	if !sawCanceled {
		t.Fatalf("terminal hook never saw the queued cancel: %v", terminal)
	}
}

// TestCancelAbortsMidRehydrate is the regression test for DELETE on a
// recovered done job while its rehydration re-mine is in flight: the
// re-mine must be canceled, and neither the job nor the result cache
// may end up holding the full result.
func TestCancelAbortsMidRehydrate(t *testing.T) {
	dir := t.TempDir()
	id, _ := runDurableJob(t, dir)

	// Restarted process: dataset resident again, but analyses block on a
	// gate so the test controls when (whether) the re-mine finishes.
	reg := registry.New(0)
	if _, _, err := reg.Register([]byte(sampleCSV), dataset.CSVOptions{TrimSpace: true}); err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	var once sync.Once
	gated := func(ctx context.Context, data *dataset.Dataset, spec Spec, tr *Tracker) (*core.Result, error) {
		once.Do(func() { close(started) })
		<-ctx.Done() // only cancellation releases the miner
		return nil, ctx.Err()
	}
	e, err := New(Config{Registry: reg, Analyze: gated})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = e.Shutdown(ctx)
	})
	if _, err := e.Recover(dir); err != nil {
		t.Fatal(err)
	}
	job, ok := e.Get(id)
	if !ok {
		t.Fatal("job vanished across restart")
	}

	rehydrateErr := make(chan error, 1)
	go func() {
		_, err := e.Rehydrate(context.Background(), job)
		rehydrateErr <- err
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("rehydrate never started mining")
	}

	// DELETE arrives mid-re-mine.
	if _, err := e.Cancel(id); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-rehydrateErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("rehydrate err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled rehydrate never returned")
	}

	// The canceled re-mine must not have repopulated anything: the full
	// result is still absent and the result cache still empty.
	if _, err := job.Result(); !errors.Is(err, ErrNoResult) {
		t.Fatalf("Result() after canceled rehydrate err = %v, want ErrNoResult", err)
	}
	if st := e.Stats(); st.ResultCache.Entries != 0 {
		t.Fatalf("canceled rehydrate populated the result cache: %+v", st.ResultCache)
	}
	if st := e.Stats(); st.Rehydrated != 0 {
		t.Fatalf("canceled rehydrate counted as a rehydration: %+v", st)
	}
}
