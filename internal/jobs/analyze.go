package jobs

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fpm"
)

// AnalyzeFunc runs one analysis over an already-parsed dataset. tr may
// be nil (the synchronous path); when non-nil the analysis reports
// subproblem progress counts and partial-result snapshots through it,
// possibly from several goroutines at once. The default is RunAnalysis;
// tests and alternative backends substitute their own.
type AnalyzeFunc func(ctx context.Context, data *dataset.Dataset, spec Spec, tr *Tracker) (*core.Result, error)

// RunAnalysis is the built-in DivExplorer pipeline: extract the Boolean
// truth/prediction columns, derive confusion classes, and mine the full
// lattice with the parallel FP-growth miner under ctx. While mining,
// each completed subproblem's patterns are folded into a running top-K
// leaderboard and published through the tracker as a partial-result
// snapshot. Input-shaped failures wrap ErrBadInput so the HTTP layer can
// distinguish a bad request from an internal fault.
func RunAnalysis(ctx context.Context, data *dataset.Dataset, spec Spec, tr *Tracker) (*core.Result, error) {
	truth, pred, rest, err := extractLabels(data, spec.TruthCol, spec.PredCol)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	classes, err := core.ConfusionClasses(truth, pred)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	db, err := fpm.NewTxDB(rest, classes, core.NumConfusionClasses)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	if spec.Support < 0 || spec.Support > 1 {
		return nil, fmt.Errorf("%w: support %v out of [0,1]", ErrBadInput, spec.Support)
	}
	miner := fpm.Parallel{Progress: tr.Progress}
	if tr != nil {
		acc := newPartialAccum(db, spec)
		miner.Emit = func(batch []fpm.FrequentPattern, done, total int) {
			tr.Partial(acc.add(batch, done, total))
		}
	}
	return core.ExploreContext(ctx, db, spec.Support, core.Options{Miner: miner})
}

// extractLabels pulls and removes the Boolean label columns. The input
// dataset is not modified; mining runs on the returned copy.
func extractLabels(d *dataset.Dataset, truthCol, predCol string) (truth, pred []bool, out *dataset.Dataset, err error) {
	parse := func(col string) ([]bool, error) {
		idx := d.AttrIndex(col)
		if idx < 0 {
			return nil, fmt.Errorf("unknown column %q", col)
		}
		vals := make([]bool, d.NumRows())
		for r := range d.Rows {
			switch strings.ToLower(d.Value(r, idx)) {
			case "1", "true", "t", "yes", "y":
				vals[r] = true
			case "0", "false", "f", "no", "n":
				vals[r] = false
			default:
				return nil, fmt.Errorf("row %d: column %q value %q is not Boolean",
					r, col, d.Value(r, idx))
			}
		}
		return vals, nil
	}
	if truth, err = parse(truthCol); err != nil {
		return nil, nil, nil, err
	}
	if pred, err = parse(predCol); err != nil {
		return nil, nil, nil, err
	}
	out, err = d.DropAttrs(truthCol, predCol)
	return truth, pred, out, err
}
