package jobs

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fpm"
)

func TestTrackerNilSafe(t *testing.T) {
	var tr *Tracker
	tr.Progress(1, 2) // must not panic
	tr.Partial(Snapshot{Done: 1, Total: 2})
	tr = &Tracker{} // no job attached: also a no-op
	tr.Progress(1, 2)
	tr.Partial(Snapshot{Done: 1, Total: 2})
}

func TestTrackerSeqMonotonicUnderConcurrency(t *testing.T) {
	job := &Job{id: "x"}
	var persistMu sync.Mutex
	var persisted []int64
	tr := &Tracker{
		job: job,
		persist: func(s *Snapshot) {
			persistMu.Lock()
			persisted = append(persisted, s.Seq)
			persistMu.Unlock()
		},
	}

	// Writers publish concurrently while a poller checks that the seq it
	// observes through Job.Partial never goes backwards — the contract
	// the /jobs/{id}/partial endpoint exposes to clients.
	stop := make(chan struct{})
	var pollerErr error
	var pollerWG sync.WaitGroup
	pollerWG.Add(1)
	go func() {
		defer pollerWG.Done()
		var last int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			if s := job.Partial(); s != nil {
				if s.Seq < last {
					pollerErr = fmt.Errorf("seq went backwards: %d after %d", s.Seq, last)
					return
				}
				last = s.Seq
			}
		}
	}()

	const writers, perWriter = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr.Partial(Snapshot{Done: i, Total: perWriter})
			}
		}()
	}
	wg.Wait()
	close(stop)
	pollerWG.Wait()
	if pollerErr != nil {
		t.Fatal(pollerErr)
	}

	final := job.Partial()
	if final == nil || final.Seq != writers*perWriter {
		t.Fatalf("final seq = %+v, want %d", final, writers*perWriter)
	}
	// SnapshotEvery <= 0 persists every update, and each persisted seq is
	// distinct.
	if len(persisted) != writers*perWriter {
		t.Fatalf("persisted %d snapshots, want %d", len(persisted), writers*perWriter)
	}
	seen := make(map[int64]bool, len(persisted))
	for _, s := range persisted {
		if seen[s] {
			t.Fatalf("seq %d persisted twice", s)
		}
		seen[s] = true
	}
}

func TestTrackerPersistCadence(t *testing.T) {
	job := &Job{id: "x"}
	var persisted int
	tr := &Tracker{
		job:     job,
		every:   time.Hour,
		persist: func(*Snapshot) { persisted++ },
	}
	for i := 0; i < 10; i++ {
		tr.Partial(Snapshot{Done: i, Total: 10})
	}
	if persisted != 1 {
		t.Errorf("persisted %d snapshots under a 1h cadence, want 1 (the first)", persisted)
	}
	// The in-memory snapshot still advanced on every update.
	if s := job.Partial(); s == nil || s.Seq != 10 {
		t.Errorf("in-memory seq = %+v, want 10", s)
	}
}

// sampleTxDB builds the TxDB RunAnalysis would mine for sampleCSV.
func sampleTxDB(t *testing.T) *fpm.TxDB {
	t.Helper()
	d, err := dataset.ReadCSV(strings.NewReader(sampleCSV), dataset.CSVOptions{TrimSpace: true})
	if err != nil {
		t.Fatal(err)
	}
	truth, pred, rest, err := extractLabels(d, "truth", "pred")
	if err != nil {
		t.Fatal(err)
	}
	classes, err := core.ConfusionClasses(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	db, err := fpm.NewTxDB(rest, classes, core.NumConfusionClasses)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPartialAccumLeaderboard(t *testing.T) {
	db := sampleTxDB(t)
	spec := Spec{Metrics: []string{"FPR"}, TopK: 3}
	acc := newPartialAccum(db, spec)
	if !acc.defined {
		t.Fatal("FPR undefined on sample data")
	}

	// Mine the real patterns, then feed them through the accumulator in
	// two batches and check the leaderboard invariants after each.
	all, err := fpm.FPGrowth{}.Mine(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 4 {
		t.Fatalf("only %d patterns mined; the test needs more", len(all))
	}
	mid := len(all) / 2
	var prevPatterns int64
	for i, batch := range [][]fpm.FrequentPattern{all[:mid], all[mid:]} {
		snap := acc.add(batch, i+1, 2)
		if snap.Patterns <= prevPatterns {
			t.Errorf("batch %d: pattern count %d not increasing from %d", i, snap.Patterns, prevPatterns)
		}
		prevPatterns = snap.Patterns
		if len(snap.Top) > spec.TopK {
			t.Errorf("batch %d: leaderboard has %d entries, cap %d", i, len(snap.Top), spec.TopK)
		}
		for j := 1; j < len(snap.Top); j++ {
			if math.Abs(snap.Top[j].Divergence) > math.Abs(snap.Top[j-1].Divergence) {
				t.Errorf("batch %d: leaderboard not sorted by |divergence| at %d", i, j)
			}
		}
		if snap.Metric != "FPR" {
			t.Errorf("batch %d: metric = %q", i, snap.Metric)
		}
	}
	if prevPatterns != int64(len(all)) {
		t.Errorf("final pattern count %d, want %d", prevPatterns, len(all))
	}

	// After all batches the leaderboard head must agree with the full
	// result's top-1 by |divergence|.
	res, err := core.Explore(db, 0.0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.MetricByName("FPR")
	if err != nil {
		t.Fatal(err)
	}
	want := res.TopK(m, 1, core.ByAbsDivergence)
	gotTop := acc.top
	if len(want) == 0 || len(gotTop) == 0 {
		t.Fatal("no top pattern on either side")
	}
	// lint:ignore floatcmp both sides compute the same rate difference
	// from the same integer tallies, so exact equality is expected.
	if math.Abs(gotTop[0].divergence) != math.Abs(want[0].Divergence) {
		t.Errorf("leaderboard head |divergence| = %v, full result = %v",
			gotTop[0].divergence, want[0].Divergence)
	}
}

func TestPartialGrowsMonotonicallyDuringJob(t *testing.T) {
	// An analyze func that publishes a stream of snapshots while a
	// concurrent poller (standing in for GET /jobs/{id}/partial clients)
	// asserts seq, done and patterns never regress.
	const steps = 40
	analyze := func(ctx context.Context, _ *dataset.Dataset, _ Spec, tr *Tracker) (*core.Result, error) {
		for i := 1; i <= steps; i++ {
			tr.Partial(Snapshot{Done: i, Total: steps, Patterns: int64(i * 3)})
			tr.Progress(i, steps)
		}
		return nil, context.Canceled // terminal without needing a real result
	}
	e, h := testEngine(t, Config{Workers: 1, Analyze: analyze})
	job, err := e.Submit(sampleSpec(h))
	if err != nil {
		t.Fatal(err)
	}

	var last Snapshot
	observe := func() {
		if s := job.Partial(); s != nil {
			if s.Seq < last.Seq || s.Done < last.Done || s.Patterns < last.Patterns {
				t.Fatalf("partial regressed: %+v after %+v", s, last)
			}
			last = *s
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		observe()
		if job.Snapshot().State.Terminal() {
			break
		}
	}
	// One more read after the terminal state: the whole job may have run
	// between the last observation and the terminal check.
	observe()
	if last.Seq != steps || last.Done != steps {
		t.Errorf("final partial = %+v, want seq=done=%d", last, steps)
	}
}
