package jobs

import (
	"context"
	"errors"
	"testing"

	"repro/internal/registry"
)

func sigSpec(h registry.Hash) SignificanceSpec {
	return SignificanceSpec{
		Dataset:  h,
		TruthCol: "truth",
		PredCol:  "pred",
		Support:  0.1,
		Metric:   "FPR",
		Method:   MethodWY,
		Alpha:    0.1,
		// sampleCSV has 14 rows: small B keeps the suite fast.
		Permutations: 200,
		Seed:         5,
		TopK:         10,
	}
}

func TestSignificanceSync(t *testing.T) {
	e, h := testEngine(t, Config{Workers: 1})
	for _, method := range []string{MethodWY, MethodPermFDR, MethodBH} {
		spec := sigSpec(h)
		spec.Method = method
		out, err := e.Significance(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if out.Method != method || out.Metric != "FPR" || out.CacheHit {
			t.Fatalf("%s: outcome shape %+v", method, out)
		}
		if out.Hypotheses == 0 {
			t.Fatalf("%s: no hypotheses", method)
		}
		if method == MethodBH {
			if out.Permutations != 0 {
				t.Errorf("bh: permutations %d want 0", out.Permutations)
			}
		} else if out.Permutations != 200 {
			t.Errorf("%s: permutations %d want 200", method, out.Permutations)
		}
		if len(out.Top) > out.Rejected {
			t.Errorf("%s: reported %d of %d rejected", method, len(out.Top), out.Rejected)
		}
		for _, p := range out.Top {
			if p.AdjP < p.P-1e-15 || len(p.Items) == 0 {
				t.Errorf("%s: malformed pattern %+v", method, p)
			}
		}
	}
}

func TestSignificanceExhaustiveTinyDataset(t *testing.T) {
	// sampleCSV has 14 rows — over the exhaustive cap, so exhaustive mode
	// must be rejected as bad input, not crash.
	e, h := testEngine(t, Config{Workers: 1})
	spec := sigSpec(h)
	spec.Exhaustive = true
	spec.Permutations = 0
	if _, err := e.Significance(context.Background(), spec); !errors.Is(err, ErrBadInput) {
		t.Fatalf("exhaustive over the row cap: %v, want ErrBadInput", err)
	}
}

func TestSignificanceCacheHit(t *testing.T) {
	e, h := testEngine(t, Config{Workers: 1})
	spec := sigSpec(h)
	first, err := e.Significance(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Significance(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit || !second.CacheHit {
		t.Fatalf("cache hits: first=%v second=%v", first.CacheHit, second.CacheHit)
	}
	// The hit is a copy with only CacheHit flipped.
	second.CacheHit = false
	if second.Rejected != first.Rejected || second.Hypotheses != first.Hypotheses ||
		len(second.Top) != len(first.Top) {
		t.Fatalf("cache returned a different outcome: %+v vs %+v", second, first)
	}
	st := e.SignificanceStatsSnapshot()
	if st.Queries != 2 || st.Runs != 1 {
		t.Errorf("stats: %d queries %d runs, want 2/1", st.Queries, st.Runs)
	}
	if st.Permutations != 200 {
		t.Errorf("stats: %d permutations tallied, want 200", st.Permutations)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Errorf("cache stats: %+v", st.Cache)
	}
	// An equivalent analytic spec collapses its permutation knobs: two
	// bh specs differing only in seed share one cache entry.
	a, b := sigSpec(h), sigSpec(h)
	a.Method, b.Method = MethodBH, MethodBH
	b.Seed, b.Permutations = 999, 777
	if _, err := e.Significance(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	out, err := e.Significance(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if !out.CacheHit {
		t.Error("normalized bh specs did not share a cache entry")
	}
}

func TestSignificanceValidation(t *testing.T) {
	e, h := testEngine(t, Config{Workers: 1, MaxPermutations: 500})
	cases := []struct {
		name   string
		mutate func(*SignificanceSpec)
	}{
		{"bad support", func(s *SignificanceSpec) { s.Support = 1.5 }},
		{"bad alpha", func(s *SignificanceSpec) { s.Alpha = 1 }},
		{"negative permutations", func(s *SignificanceSpec) { s.Permutations = -1 }},
		{"over permutation limit", func(s *SignificanceSpec) { s.Permutations = 501 }},
		{"unknown method", func(s *SignificanceSpec) { s.Method = "bonferroni" }},
		{"unknown metric", func(s *SignificanceSpec) { s.Metric = "nope" }},
		{"unknown truth column", func(s *SignificanceSpec) { s.TruthCol = "missing" }},
	}
	for _, c := range cases {
		spec := sigSpec(h)
		c.mutate(&spec)
		if _, err := e.Significance(context.Background(), spec); !errors.Is(err, ErrBadInput) {
			t.Errorf("%s: err %v, want ErrBadInput", c.name, err)
		}
	}
	// Defaults: zero alpha, method, metric, topk and permutations all
	// resolve rather than error.
	spec := SignificanceSpec{Dataset: h, Support: 0.1, TruthCol: "truth", PredCol: "pred", Permutations: 100}
	out, err := e.Significance(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if out.Method != MethodWY || out.Metric != "ER" || out.Alpha != 0.05 {
		t.Errorf("defaults: %+v", out)
	}
}

func TestSignificanceUnknownDataset(t *testing.T) {
	e, _ := testEngine(t, Config{Workers: 1})
	spec := sigSpec(registry.Hash("sha256:deadbeef"))
	if _, err := e.Significance(context.Background(), spec); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestSubmitSignificanceLifecycle(t *testing.T) {
	e, h := testEngine(t, Config{Workers: 2})
	job, err := e.SubmitSignificance(sigSpec(h))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, job)
	if st.State != StateDone {
		t.Fatalf("state %s (err %q)", st.State, st.Err)
	}
	out, err := job.Significance()
	if err != nil {
		t.Fatal(err)
	}
	if out.Method != MethodWY || out.Permutations != 200 || out.Hypotheses == 0 {
		t.Fatalf("outcome: %+v", out)
	}
	// The final snapshot closes the stream.
	snap := job.Partial()
	if snap == nil || snap.Reason != "complete" {
		t.Fatalf("final snapshot: %+v", snap)
	}
	// A non-significance job refuses the accessor; a significance job
	// refuses Result().
	if _, err := job.Result(); err == nil {
		t.Error("Result() on a significance job returned no error")
	}
	plain, err := e.Submit(sampleSpec(h))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, plain)
	if _, err := plain.Significance(); err == nil {
		t.Error("Significance() on an analysis job returned no error")
	}
}

func TestSubmitSignificanceValidatesEarly(t *testing.T) {
	e, h := testEngine(t, Config{Workers: 1})
	spec := sigSpec(h)
	spec.Alpha = 2
	if _, err := e.SubmitSignificance(spec); !errors.Is(err, ErrBadInput) {
		t.Fatalf("bad alpha submitted: %v", err)
	}
}

func TestSignificanceStatsInEngineStats(t *testing.T) {
	e, h := testEngine(t, Config{Workers: 1})
	if _, err := e.Significance(context.Background(), sigSpec(h)); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Significance.Queries != 1 || s.Significance.Runs != 1 {
		t.Errorf("engine stats significance slice: %+v", s.Significance)
	}
}
