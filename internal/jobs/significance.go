package jobs

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/permtest"
	"repro/internal/registry"
)

// The permutation-grounded significance tier (DESIGN.md §15).
// Significance queries mine (or reuse) the full lattice through the
// engine's result cache, then run multiple-testing control over every
// pattern: Westfall–Young max-T permutation FWER control, permutation
// FDR (BH over raw permutation p-values), or the analytic BH pass.
// Permutation progress streams through the job tracker, and complete
// outcomes are LRU-cached — the whole computation is deterministic
// given the spec, so a cached outcome is always truthful.

// Significance-testing methods.
const (
	// MethodWY is Westfall–Young step-down max-T permutation testing:
	// family-wise error control at Alpha, valid under the dependence
	// between overlapping itemsets.
	MethodWY = "wy"
	// MethodPermFDR is Benjamini–Hochberg FDR control at Alpha over the
	// raw permutation p-values.
	MethodPermFDR = "perm-fdr"
	// MethodBH is the analytic path: BH over two-sided Welch p-values,
	// no resampling.
	MethodBH = "bh"
)

// SignificanceSpec describes one significance query.
type SignificanceSpec struct {
	Dataset  registry.Hash
	TruthCol string
	PredCol  string
	Support  float64
	// Metric is the divergence metric under test ("ER" when empty).
	Metric string
	// Method selects the multiple-testing procedure (MethodWY when
	// empty).
	Method string
	// Alpha is the FWER level (wy) or FDR level (perm-fdr, bh); 0.05
	// when zero.
	Alpha float64
	// Permutations is the sampled permutation count B;
	// permtest.DefaultPermutations when zero. Ignored by MethodBH and in
	// exhaustive mode.
	Permutations int
	// Seed drives the deterministic permutation stream.
	Seed int64
	// Exhaustive enumerates all n! label orderings (tiny datasets only).
	Exhaustive bool
	// TopK bounds the reported surviving patterns; 20 when zero.
	TopK int
	// Baseline additionally fits the max-entropy (independence-model)
	// support baseline for each reported pattern.
	Baseline bool
}

// CacheKey identifies the cached outcome for a spec. Every field
// changes the answer, so every field is included; validateSignificance
// normalizes the method-irrelevant permutation knobs first so
// equivalent analytic specs collapse to one entry.
func (s SignificanceSpec) CacheKey() string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	parts := []string{
		"significance", string(s.Dataset), s.TruthCol, s.PredCol,
		f(s.Support), s.Metric, s.Method, f(s.Alpha),
		strconv.Itoa(s.Permutations), strconv.FormatInt(s.Seed, 10),
		strconv.FormatBool(s.Exhaustive), strconv.Itoa(s.TopK),
		strconv.FormatBool(s.Baseline),
	}
	return strings.Join(parts, "\x1f")
}

// MaxEntInfo is the max-entropy baseline slice of a reported pattern.
type MaxEntInfo struct {
	ExpectedSupport float64 `json:"expected_support"`
	Observed        float64 `json:"observed_support"`
	Leverage        float64 `json:"leverage"`
	P               float64 `json:"p"`
	Iterations      int     `json:"iterations"`
}

// SignificantPattern is one surviving pattern on the wire.
type SignificantPattern struct {
	Items      []string    `json:"itemset"`
	Support    float64     `json:"support"`
	Rate       float64     `json:"rate"`
	Divergence float64     `json:"divergence"`
	T          float64     `json:"t"`
	P          float64     `json:"p"`
	AdjP       float64     `json:"adj_p"`
	MaxEnt     *MaxEntInfo `json:"maxent,omitempty"`
}

// SignificanceOutcome is the result of one significance query.
type SignificanceOutcome struct {
	Metric string  `json:"metric"`
	Method string  `json:"method"`
	Alpha  float64 `json:"alpha"`
	// Permutations is the number actually run (n! in exhaustive mode);
	// zero for the analytic method.
	Permutations int  `json:"permutations,omitempty"`
	Exhaustive   bool `json:"exhaustive,omitempty"`
	// Hypotheses counts every pattern under test; Rejected counts the
	// survivors (of which at most TopK are reported).
	Hypotheses int                  `json:"hypotheses"`
	Rejected   int                  `json:"rejected"`
	GlobalRate float64              `json:"global_rate"`
	Top        []SignificantPattern `json:"top"`
	CacheHit   bool                 `json:"cache_hit"`
}

// SignificanceStats is the /statsz slice for the significance tier.
type SignificanceStats struct {
	// Queries counts significance queries; Runs counts the ones that
	// actually computed (the rest were cache hits); Permutations totals
	// the label permutations executed.
	Queries      int64      `json:"queries"`
	Runs         int64      `json:"runs"`
	Permutations int64      `json:"permutations"`
	Cache        CacheStats `json:"cache"`
}

// validateSignificance normalizes and checks a spec, resolving the
// metric. Method-irrelevant knobs are zeroed so the cache key collapses
// equivalent specs.
func (e *Engine) validateSignificance(s *SignificanceSpec) (core.Metric, error) {
	if s.Support < 0 || s.Support > 1 {
		return core.Metric{}, fmt.Errorf("%w: support %v out of [0,1]", ErrBadInput, s.Support)
	}
	// lint:ignore floatcmp the zero value is the explicit "use the default" sentinel
	if s.Alpha == 0 {
		s.Alpha = 0.05
	}
	if s.Alpha <= 0 || s.Alpha >= 1 {
		return core.Metric{}, fmt.Errorf("%w: alpha %v out of (0,1)", ErrBadInput, s.Alpha)
	}
	if s.TopK <= 0 {
		s.TopK = 20
	}
	if s.Permutations < 0 {
		return core.Metric{}, fmt.Errorf("%w: negative permutation count", ErrBadInput)
	}
	if s.Method == "" {
		s.Method = MethodWY
	}
	switch s.Method {
	case MethodBH:
		// The analytic path draws no permutations; normalize the knobs so
		// equivalent specs share one cache entry.
		s.Permutations, s.Seed, s.Exhaustive = 0, 0, false
	case MethodWY, MethodPermFDR:
		if s.Exhaustive {
			s.Permutations = 0 // the schedule is n!, not B
		} else if s.Permutations == 0 {
			s.Permutations = permtest.DefaultPermutations
		}
		if max := e.maxPermutations(); s.Permutations > max {
			return core.Metric{}, fmt.Errorf("%w: %d permutations over the limit %d", ErrBadInput, s.Permutations, max)
		}
	default:
		return core.Metric{}, fmt.Errorf("%w: unknown significance method %q", ErrBadInput, s.Method)
	}
	if s.Metric == "" {
		s.Metric = "ER"
	}
	m, err := core.MetricByName(s.Metric)
	if err != nil {
		return core.Metric{}, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	s.Metric = m.Name
	return m, nil
}

// maxPermutations returns the configured permutation-count ceiling.
func (e *Engine) maxPermutations() int {
	if e.cfg.MaxPermutations > 0 {
		return e.cfg.MaxPermutations
	}
	return 100000
}

// Significance answers one significance query synchronously, consulting
// the outcome cache first.
func (e *Engine) Significance(ctx context.Context, spec SignificanceSpec) (*SignificanceOutcome, error) {
	return e.significance(ctx, spec, nil)
}

// significance is the shared sync/async implementation; tr may be nil.
func (e *Engine) significance(ctx context.Context, spec SignificanceSpec, tr *Tracker) (*SignificanceOutcome, error) {
	m, err := e.validateSignificance(&spec)
	if err != nil {
		return nil, err
	}
	e.sigQueries.Add(1)
	key := spec.CacheKey()
	e.sigMu.Lock()
	if v, ok := e.sigCache.get(key); ok {
		e.sigMu.Unlock()
		out := *v.(*SignificanceOutcome)
		out.CacheHit = true
		return &out, nil
	}
	e.sigMu.Unlock()

	// The mined lattice is shared with the analysis tier through the
	// result cache: a significance query after an /analyze of the same
	// dataset re-mines nothing.
	jspec := Spec{
		Dataset: spec.Dataset, TruthCol: spec.TruthCol, PredCol: spec.PredCol,
		Support: spec.Support, Metrics: []string{m.Name},
	}
	res, _, err := e.analyzeCached(ctx, jspec, nil)
	if err != nil {
		return nil, err
	}
	rate := res.GlobalRate(m)
	if math.IsNaN(rate) {
		return nil, fmt.Errorf("%w: metric %s undefined on the whole dataset", ErrBadInput, m.Name)
	}
	e.sigRuns.Add(1)

	out := &SignificanceOutcome{
		Metric:     m.Name,
		Method:     spec.Method,
		Alpha:      spec.Alpha,
		Hypotheses: len(res.RankAll(m, core.ByAbsDivergence)),
		GlobalRate: rate,
	}
	var sig []core.Significant
	if spec.Method == MethodBH {
		sig = res.SignificantPatterns(m, spec.Alpha, core.ByAbsDivergence)
	} else {
		cfg := permtest.Config{
			Permutations: spec.Permutations,
			Seed:         spec.Seed,
			Exhaustive:   spec.Exhaustive,
		}
		if tr != nil {
			cfg.Progress = tr.Progress
		}
		if spec.Method == MethodWY {
			sig, err = res.SignificantPatternsWY(ctx, m, spec.Alpha, core.ByAbsDivergence, cfg)
		} else {
			sig, err = res.SignificantPatternsPermFDR(ctx, m, spec.Alpha, core.ByAbsDivergence, cfg)
		}
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
		}
		out.Exhaustive = spec.Exhaustive
		out.Permutations = spec.Permutations
		if spec.Exhaustive {
			out.Permutations = 1
			for i := 2; i <= res.DB.NumRows(); i++ {
				out.Permutations *= i
			}
		}
		e.sigPerms.Add(int64(out.Permutations))
	}

	out.Rejected = len(sig)
	if len(sig) > spec.TopK {
		sig = sig[:spec.TopK]
	}
	out.Top = make([]SignificantPattern, 0, len(sig))
	for _, s := range sig {
		sp := SignificantPattern{
			Items:      itemNameList(res.DB.Catalog, s.Items),
			Support:    s.Support,
			Rate:       s.Rate,
			Divergence: s.Divergence,
			T:          s.T,
			P:          s.P,
			AdjP:       s.AdjP,
		}
		if spec.Baseline && len(s.Items) > 0 {
			if mb, err := res.MaxEntBaselineOf(s.Items); err == nil {
				sp.MaxEnt = &MaxEntInfo{
					ExpectedSupport: mb.ExpectedSupport,
					Observed:        mb.Observed,
					Leverage:        mb.Leverage,
					P:               mb.P,
					Iterations:      mb.Iterations,
				}
			}
		}
		out.Top = append(out.Top, sp)
	}

	if tr != nil {
		// Final snapshot: the surviving leaderboard plus the completion
		// marker, so pollers of the partial endpoint see closure.
		top := make([]PartialPattern, len(out.Top))
		for i, sp := range out.Top {
			top[i] = PartialPattern{
				Items: sp.Items, Support: sp.Support,
				Rate: sp.Rate, Divergence: sp.Divergence,
			}
		}
		tr.Partial(Snapshot{
			Patterns: int64(out.Hypotheses),
			Metric:   m.Name,
			Top:      top,
			Reason:   "complete",
		})
	}

	e.sigMu.Lock()
	e.sigCache.put(key, out)
	e.sigMu.Unlock()
	return out, nil
}

// SignificanceStatsSnapshot returns the significance-tier counters.
func (e *Engine) SignificanceStatsSnapshot() SignificanceStats {
	e.sigMu.Lock()
	defer e.sigMu.Unlock()
	return SignificanceStats{
		Queries:      e.sigQueries.Load(),
		Runs:         e.sigRuns.Load(),
		Permutations: e.sigPerms.Load(),
		Cache:        e.sigCache.stats(),
	}
}

// SubmitSignificance enqueues a significance query as an asynchronous
// job: it runs on the worker pool, streams permutation progress through
// the job's progress counters, and finishes with a final snapshot whose
// Reason is "complete". The job's Result() is never populated; the
// outcome is read with Job.Significance().
func (e *Engine) SubmitSignificance(spec SignificanceSpec) (*Job, error) {
	if _, err := e.validateSignificance(&spec); err != nil {
		return nil, err
	}
	id, err := newJobID()
	if err != nil {
		return nil, err
	}
	// The synthesized Spec keeps the WAL records and status endpoints
	// meaningful for significance jobs.
	jspec := Spec{
		Dataset: spec.Dataset, TruthCol: spec.TruthCol, PredCol: spec.PredCol,
		Support: spec.Support, Metrics: []string{spec.Metric}, TopK: spec.TopK,
		Alpha: spec.Alpha,
	}
	job := &Job{id: id, spec: jspec, sig: &spec, state: StateQueued, created: time.Now()}
	return e.enqueue(job, false)
}
