package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/registry"
)

// Config configures an Engine. The zero value of each field selects a
// sensible default; Registry is required.
type Config struct {
	// Registry resolves dataset hashes to parsed datasets. Required.
	Registry *registry.Registry
	// Workers bounds the worker pool; runtime.GOMAXPROCS(0) when <= 0.
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// 64 when <= 0. A full queue rejects with ErrQueueFull.
	QueueDepth int
	// ResultCacheEntries bounds the result LRU; 128 when <= 0.
	ResultCacheEntries int
	// DefaultTimeout is the per-job deadline applied when a Spec carries
	// none; 0 means no deadline.
	DefaultTimeout time.Duration
	// Analyze runs one analysis; RunAnalysis when nil. Tests substitute
	// controllable implementations, and it is the seam for alternative
	// mining backends.
	Analyze AnalyzeFunc
	// Store, when non-nil, receives a write-through record of every job
	// lifecycle transition, making the engine durable across restarts.
	// Engine.Recover opens and attaches one from a directory; supplying
	// it here is mainly for tests.
	Store *Store
	// SnapshotEvery rate-limits how often partial-result snapshots are
	// persisted to the store; <= 0 persists every update. The in-memory
	// snapshot served by the partial/events endpoints always updates on
	// every emission regardless.
	SnapshotEvery time.Duration
	// ExploreCacheEntries bounds the anytime-explore outcome LRU; 64
	// when <= 0.
	ExploreCacheEntries int
	// ExploreSessions bounds the per-dataset navigation-session LRU; 16
	// when <= 0.
	ExploreSessions int
	// SignificanceCacheEntries bounds the significance-outcome LRU; 64
	// when <= 0.
	SignificanceCacheEntries int
	// MaxPermutations caps the permutation count a significance spec may
	// request; 100000 when <= 0.
	MaxPermutations int
	// Queue replaces the default FIFO channel queue — the seam the
	// serving layer uses to install weighted fair queueing. When nil a
	// FIFO of QueueDepth is used; when non-nil QueueDepth is ignored.
	Queue Queue
	// OnTerminal, when non-nil, is called from the worker goroutine each
	// time a job reaches a terminal state (done, failed, canceled) —
	// after the terminal record is durably logged. The cluster layer uses
	// it to replicate completion records to the dataset's other owners.
	OnTerminal func(j *Job)
}

// Queue is the engine's pluggable job queue. Push never blocks (false
// sheds load — the ErrQueueFull contract); Pop blocks until an item or
// Close, then drains the backlog before reporting false. The engine
// guarantees no Push is issued after Close.
type Queue interface {
	Push(j *Job) bool
	Pop() (*Job, bool)
	Len() int
	Cap() int
	Close()
}

// chanQueue is the default FIFO queue: a plain bounded channel.
type chanQueue struct{ ch chan *Job }

func (q chanQueue) Push(j *Job) bool {
	select {
	case q.ch <- j:
		return true
	default:
		return false
	}
}

func (q chanQueue) Pop() (*Job, bool) {
	j, ok := <-q.ch
	return j, ok
}

func (q chanQueue) Len() int { return len(q.ch) }
func (q chanQueue) Cap() int { return cap(q.ch) }
func (q chanQueue) Close()   { close(q.ch) }

// Stats is a point-in-time snapshot of the engine counters for /statsz.
type Stats struct {
	Workers   int   `json:"workers"`
	Busy      int   `json:"busy"`
	QueueLen  int   `json:"queue_len"`
	QueueCap  int   `json:"queue_cap"`
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Rejected  int64 `json:"rejected"`
	// Durable reports whether a job store is attached; Recovered counts
	// jobs reconstructed from it at startup, Rehydrated counts recovered
	// jobs whose full result was re-mined on demand (Engine.Rehydrate),
	// and StoreErrors counts best-effort write-through appends that
	// failed.
	Durable     bool       `json:"durable"`
	Recovered   int64      `json:"recovered"`
	Rehydrated  int64      `json:"rehydrated"`
	StoreErrors int64      `json:"store_errors"`
	ResultCache CacheStats `json:"result_cache"`
	// Explore is the anytime exploration/navigation tier.
	Explore ExploreStats `json:"explore"`
	// Significance is the permutation-testing tier.
	Significance SignificanceStats `json:"significance"`
}

// Engine is the asynchronous analysis-job engine: a bounded worker pool
// consuming a bounded queue, with an LRU cache of mined results. All
// methods are safe for concurrent use.
type Engine struct {
	cfg     Config
	reg     *registry.Registry
	analyze AnalyzeFunc
	cache   *resultCache

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.RWMutex // guards queue-close vs. submit
	draining bool
	queue    Queue

	jobsMu sync.Mutex
	jobs   map[string]*Job

	workers int
	wg      sync.WaitGroup

	store atomic.Pointer[Store]

	// Anytime exploration tier: outcome cache and per-dataset
	// navigation sessions, both LRU-bounded under one lock.
	exploreMu sync.Mutex
	xcache    exploreCache
	sessions  *keyedLRU

	explores     atomic.Int64
	exploreMines atomic.Int64
	expands      atomic.Int64

	// Significance tier: outcome LRU under its own lock, plus counters.
	sigMu      sync.Mutex
	sigCache   *keyedLRU
	sigQueries atomic.Int64
	sigRuns    atomic.Int64
	sigPerms   atomic.Int64

	// onTerminal holds the terminal-state hook (Config.OnTerminal, or a
	// later SetOnTerminal) behind an atomic so the serving layer can
	// attach cluster replication after construction.
	onTerminal atomic.Pointer[func(j *Job)]

	busy       atomic.Int64
	submitted  atomic.Int64
	completed  atomic.Int64
	failed     atomic.Int64
	canceled   atomic.Int64
	rejected   atomic.Int64
	recovered  atomic.Int64
	rehydrated atomic.Int64
	storeErrs  atomic.Int64
}

// New starts an engine with cfg.Workers workers. Call Shutdown to drain.
func New(cfg Config) (*Engine, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("jobs: Config.Registry is required")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	cacheEntries := cfg.ResultCacheEntries
	if cacheEntries <= 0 {
		cacheEntries = 128
	}
	analyze := cfg.Analyze
	if analyze == nil {
		analyze = RunAnalysis
	}
	exploreEntries := cfg.ExploreCacheEntries
	if exploreEntries <= 0 {
		exploreEntries = 64
	}
	sessionEntries := cfg.ExploreSessions
	if sessionEntries <= 0 {
		sessionEntries = 16
	}
	sigEntries := cfg.SignificanceCacheEntries
	if sigEntries <= 0 {
		sigEntries = 64
	}
	queue := cfg.Queue
	if queue == nil {
		queue = chanQueue{ch: make(chan *Job, depth)}
	}
	// lint:ignore ctxflow the engine root context outlives any caller request; it is canceled by Engine.Close, not by whoever happened to construct the engine
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		cfg:        cfg,
		reg:        cfg.Registry,
		analyze:    analyze,
		cache:      newResultCache(cacheEntries),
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      queue,
		jobs:       make(map[string]*Job),
		workers:    workers,
		xcache:     exploreCache{c: newKeyedLRU(exploreEntries)},
		sessions:   newKeyedLRU(sessionEntries),
		sigCache:   newKeyedLRU(sigEntries),
	}
	if cfg.Store != nil {
		e.store.Store(cfg.Store)
	}
	if cfg.OnTerminal != nil {
		e.SetOnTerminal(cfg.OnTerminal)
	}
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e, nil
}

// Store returns the attached write-ahead store, or nil when the engine
// is not durable. The monitor subsystem shares it for spec durability.
func (e *Engine) Store() *Store { return e.store.Load() }

// worker consumes the queue until it is closed by Shutdown.
func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		job, ok := e.queue.Pop()
		if !ok {
			return
		}
		e.run(job)
	}
}

// Submit enqueues a job for spec. It never blocks: a full queue returns
// ErrQueueFull (the backpressure contract), a draining engine returns
// ErrShuttingDown. With a store attached the submission is written ahead
// — a submit the store cannot record is refused, so every acknowledged
// job survives a crash.
func (e *Engine) Submit(spec Spec) (*Job, error) {
	id, err := newJobID()
	if err != nil {
		return nil, err
	}
	return e.submit(id, spec, false)
}

// SubmitAdopted enqueues a job under an externally minted ID — the
// cluster layer mints IDs on the forwarding node so retried, hedged and
// failed-over submissions land idempotently. Resubmitting an ID the
// engine already holds returns the existing job unchanged.
func (e *Engine) SubmitAdopted(id string, spec Spec) (*Job, error) {
	if id == "" {
		return nil, fmt.Errorf("jobs: empty job id")
	}
	return e.submit(id, spec, true)
}

// submit builds a plain analysis job and hands it to the shared
// enqueue path.
func (e *Engine) submit(id string, spec Spec, adopted bool) (*Job, error) {
	job := &Job{id: id, spec: spec, state: StateQueued, created: time.Now()}
	return e.enqueue(job, adopted)
}

// enqueue is the shared enqueue path for every submission kind
// (analysis, explore, significance, adopted). The job is made visible
// in the job table before the write-ahead append so concurrent
// duplicate submissions under the same ID resolve to one winner under
// jobsMu; adopted re-submissions return the existing job unchanged.
func (e *Engine) enqueue(job *Job, adopted bool) (*Job, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.draining {
		e.rejected.Add(1)
		return nil, ErrShuttingDown
	}
	e.jobsMu.Lock()
	if existing, ok := e.jobs[job.id]; ok {
		e.jobsMu.Unlock()
		if adopted {
			return existing, nil
		}
		return nil, fmt.Errorf("jobs: duplicate job id %s", job.id)
	}
	e.jobs[job.id] = job
	e.jobsMu.Unlock()
	undo := func() {
		e.jobsMu.Lock()
		delete(e.jobs, job.id)
		e.jobsMu.Unlock()
	}
	if st := e.store.Load(); st != nil {
		rec := Record{Type: RecSubmitted, Job: job.id, Time: job.created, Spec: &job.spec}
		if err := st.Append(rec); err != nil {
			undo()
			e.storeErrs.Add(1)
			e.rejected.Add(1)
			return nil, fmt.Errorf("jobs: write-ahead submit: %w", err)
		}
	}
	if e.queue.Push(job) {
		e.submitted.Add(1)
		return job, nil
	}
	undo()
	e.rejected.Add(1)
	// Close out the already-written submitted record so recovery
	// does not resurrect a job the client was refused.
	e.logRecord(Record{Type: RecRejected, Job: job.id, Error: ErrQueueFull.Error()})
	return nil, ErrQueueFull
}

// AdoptDone installs a terminal done job reconstructed from a dead
// peer's replicated record: the durable summary is immediately
// servable, and the full result re-mines on demand through Rehydrate
// (recompute spec attached) once the dataset replica is resident.
// Idempotent: an ID the engine already holds is returned unchanged. The
// adoption is logged, so it survives this node's own restarts.
func (e *Engine) AdoptDone(id string, spec Spec, summary *ResultSummary) (*Job, error) {
	if id == "" {
		return nil, fmt.Errorf("jobs: empty job id")
	}
	now := time.Now()
	specCopy := spec
	job := &Job{
		id: id, spec: spec, state: StateDone, recovered: true,
		created: now, finished: now, summary: summary, recompute: &specCopy,
	}
	e.jobsMu.Lock()
	if existing, ok := e.jobs[id]; ok {
		e.jobsMu.Unlock()
		return existing, nil
	}
	e.jobs[id] = job
	e.jobsMu.Unlock()
	e.recovered.Add(1)
	e.logRecord(Record{Type: RecDone, Job: id, Result: summary, Spec: &specCopy})
	return job, nil
}

// logRecord is the best-effort write-through: failures are counted, not
// propagated — a sick disk must not take down in-flight analyses whose
// results are still servable from memory.
func (e *Engine) logRecord(rec Record) {
	st := e.store.Load()
	if st == nil {
		return
	}
	if err := st.Append(rec); err != nil {
		e.storeErrs.Add(1)
	}
}

// Get returns the job with the given id.
func (e *Engine) Get(id string) (*Job, bool) {
	e.jobsMu.Lock()
	defer e.jobsMu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a job. A queued job is canceled
// immediately; a running job has its context canceled and reaches the
// canceled state once the miner observes it. Terminal jobs keep their
// state, but a recovered done job with a rehydration re-mine in flight
// has that re-mine aborted — a deleted job must not repopulate caches
// from beyond the grave. The returned status reflects the state after
// the request.
func (e *Engine) Cancel(id string) (Status, error) {
	job, ok := e.Get(id)
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	job.canceledByUser.Store(true)
	job.mu.Lock()
	canceledWhileQueued := false
	switch job.state {
	case StateQueued:
		job.state = StateCanceled
		job.finished = time.Now()
		e.canceled.Add(1)
		canceledWhileQueued = true
	case StateRunning:
		if job.cancel != nil {
			job.cancel()
		}
	default:
		if job.rehydrateCancel != nil {
			job.rehydrateCancel()
		}
	}
	job.mu.Unlock()
	if canceledWhileQueued {
		// A canceled-while-queued job never reaches run(), so its
		// terminal record is written here.
		e.logRecord(Record{Type: RecCanceled, Job: job.id, Error: "canceled while queued"})
		e.notifyTerminal(job)
	}
	return job.Snapshot(), nil
}

// SetOnTerminal installs (or replaces) the terminal-state hook. The
// serving layer calls it after construction to wire admission release
// and cluster replication; a hook given in Config.OnTerminal is
// installed by New through the same path.
func (e *Engine) SetOnTerminal(fn func(j *Job)) {
	if fn == nil {
		e.onTerminal.Store(nil)
		return
	}
	e.onTerminal.Store(&fn)
}

// notifyTerminal invokes the OnTerminal hook, if configured.
func (e *Engine) notifyTerminal(job *Job) {
	if fn := e.onTerminal.Load(); fn != nil {
		(*fn)(job)
	}
}

// run executes one dequeued job through the full lifecycle.
func (e *Engine) run(job *Job) {
	job.mu.Lock()
	if job.state != StateQueued { // canceled while queued
		job.mu.Unlock()
		return
	}
	timeout := job.spec.Timeout
	if timeout <= 0 {
		timeout = e.cfg.DefaultTimeout
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(e.baseCtx, timeout)
	} else {
		ctx, cancel = context.WithCancel(e.baseCtx)
	}
	job.state = StateRunning
	job.started = time.Now()
	job.cancel = cancel
	job.mu.Unlock()
	defer cancel()

	e.busy.Add(1)
	defer e.busy.Add(-1)

	e.logRecord(Record{Type: RecRunning, Job: job.id, Time: job.started})
	tr := &Tracker{
		job:   job,
		every: e.cfg.SnapshotEvery,
		persist: func(snap *Snapshot) {
			e.logRecord(Record{Type: RecSnapshot, Job: job.id, Snapshot: snap})
		},
	}

	var res *core.Result
	var xout *ExploreOutcome
	var sout *SignificanceOutcome
	var cacheHit bool
	var err error
	switch {
	case job.explore != nil:
		xout, err = e.explore(ctx, *job.explore, tr)
		cacheHit = xout != nil && xout.CacheHit
	case job.sig != nil:
		sout, err = e.significance(ctx, *job.sig, tr)
		cacheHit = sout != nil && sout.CacheHit
	default:
		res, cacheHit, err = e.analyzeCached(ctx, job.spec, tr)
	}

	// Summarize outside the job lock: it ranks the whole lattice, and
	// status polls must not stall behind it.
	var sum *ResultSummary
	if err == nil && res != nil {
		sum = summarize(res, job.spec)
	}

	var rec Record
	job.mu.Lock()
	job.finished = time.Now()
	job.cancel = nil
	switch {
	case err == nil:
		job.state = StateDone
		job.result = res
		job.exploreOut = xout
		job.sigOut = sout
		job.summary = sum
		job.cacheHit = cacheHit
		e.completed.Add(1)
		// The done record carries the spec too (schema v2): together with
		// the summary it is a self-contained recipe for re-mining the full
		// result after a restart, as long as the dataset is resident.
		rec = Record{Type: RecDone, Job: job.id, Result: sum, CacheHit: cacheHit, Spec: &job.spec}
	case errors.Is(err, context.Canceled) || (job.canceledByUser.Load() && ctx.Err() != nil):
		job.state = StateCanceled
		job.err = err
		e.canceled.Add(1)
		rec = Record{Type: RecCanceled, Job: job.id, Error: err.Error()}
	default:
		// Deadline expiry and analysis errors are failures, not
		// user-requested cancellations.
		job.state = StateFailed
		job.err = err
		e.failed.Add(1)
		rec = Record{Type: RecFailed, Job: job.id, Error: err.Error()}
	}
	job.mu.Unlock()
	e.logRecord(rec)
	e.notifyTerminal(job)
}

// Analyze runs a spec synchronously through the same result cache the
// worker pool uses — the /analyze fast path. It does not consume a
// worker slot or a queue position.
func (e *Engine) Analyze(ctx context.Context, spec Spec) (*core.Result, error) {
	res, _, err := e.analyzeCached(ctx, spec, nil)
	return res, err
}

// analyzeCached consults the result cache, mining on a miss.
func (e *Engine) analyzeCached(ctx context.Context, spec Spec, tr *Tracker) (*core.Result, bool, error) {
	key := spec.CacheKey()
	if res, ok := e.cache.get(key); ok {
		return res, true, nil
	}
	entry, ok := e.reg.Get(spec.Dataset)
	if !ok {
		// Both sentinels apply: a submit referencing an unknown hash is bad
		// input (HTTP 400), while the rehydration path matches on
		// ErrDatasetGone to fall back to the durable summary.
		return nil, false, fmt.Errorf("%w: %w: %s", ErrBadInput, ErrDatasetGone, spec.Dataset)
	}
	res, err := e.analyze(ctx, entry.Data, spec, tr)
	if err != nil {
		return nil, false, err
	}
	e.cache.put(key, res)
	return res, false, nil
}

// Shutdown drains the engine: no new submissions are accepted, queued
// jobs are still executed, and the call returns once every worker has
// exited. If ctx expires first, in-flight jobs are canceled and awaited;
// the context error is returned. Shutdown is idempotent.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	alreadyDraining := e.draining
	if !alreadyDraining {
		e.draining = true
		e.queue.Close()
	}
	e.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		e.baseCancel()
		return e.closeStore()
	case <-ctx.Done():
		e.baseCancel() // abort in-flight jobs, then wait for workers
		<-drained
		_ = e.closeStore() // the deadline error takes precedence
		return fmt.Errorf("jobs: shutdown deadline: %w", ctx.Err())
	}
}

// closeStore detaches and closes the store, if any. Called after the
// drain so every worker's terminal record has been appended.
func (e *Engine) closeStore() error {
	st := e.store.Swap(nil)
	if st == nil {
		return nil
	}
	return st.Close()
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Workers:      e.workers,
		Busy:         int(e.busy.Load()),
		QueueLen:     e.queue.Len(),
		QueueCap:     e.queue.Cap(),
		Submitted:    e.submitted.Load(),
		Completed:    e.completed.Load(),
		Failed:       e.failed.Load(),
		Canceled:     e.canceled.Load(),
		Rejected:     e.rejected.Load(),
		Durable:      e.store.Load() != nil,
		Recovered:    e.recovered.Load(),
		Rehydrated:   e.rehydrated.Load(),
		StoreErrors:  e.storeErrs.Load(),
		ResultCache:  e.cache.stats(),
		Explore:      e.ExploreStatsSnapshot(),
		Significance: e.SignificanceStatsSnapshot(),
	}
}
