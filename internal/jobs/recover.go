package jobs

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faultfs"
)

// Recover opens the job store rooted at dir, replays its log into the
// engine's job table, and attaches the store for write-through — the
// startup path of a durable server. After Recover:
//
//   - jobs whose log reached a terminal state are visible with their
//     recorded outcome; done jobs carry the durable result summary and,
//     when their done record was written in schema v2, the spec needed
//     to re-mine the full result on demand (Rehydrate) — the last
//     persisted partial snapshot, if any, is reattached;
//   - jobs the previous process left queued or running are re-marked
//     failed with ErrInterrupted — visible and explained, never
//     silently lost — and the re-mark is itself written to the log so
//     the next recovery sees a terminal state;
//   - submissions the previous process refused (rejected records) are
//     dropped: the client was already told no.
//
// A torn final line (crash mid-append) is repaired by the store on
// open. Recover returns the number of jobs reconstructed. It is meant
// to run once, before the engine serves traffic; attaching a second
// store is an error.
func (e *Engine) Recover(dir string) (int, error) { return e.RecoverFS(dir, nil) }

// RecoverFS is Recover with the store's file I/O routed through fsys
// (the real filesystem when nil) — the seam chaos tests use to replay
// recovery against injected disk faults.
func (e *Engine) RecoverFS(dir string, fsys faultfs.FS) (int, error) {
	st, err := OpenStoreFS(dir, fsys)
	if err != nil {
		return 0, err
	}
	if !e.store.CompareAndSwap(nil, st) {
		closeErr := st.Close()
		return 0, errors.Join(fmt.Errorf("jobs: a store is already attached"), closeErr)
	}

	jobsByID := make(map[string]*Job)
	rejected := make(map[string]bool)
	var order []string // log order, for deterministic re-mark records
	for _, rec := range st.Replay() {
		if rec.MonitorRecord() {
			continue // monitor subsystem records; monitor.Manager.Recover folds them
		}
		j := jobsByID[rec.Job]
		if j == nil {
			j = &Job{id: rec.Job, state: StateQueued, created: rec.Time, recovered: true}
			jobsByID[rec.Job] = j
			order = append(order, rec.Job)
		}
		applyRecord(j, rec, rejected)
	}

	now := time.Now()
	var interrupted []string
	n := 0
	e.jobsMu.Lock()
	for _, id := range order {
		if rejected[id] {
			continue
		}
		j := jobsByID[id]
		if !j.state.Terminal() {
			j.state = StateFailed
			j.err = ErrInterrupted
			j.finished = now
			interrupted = append(interrupted, id)
		}
		if _, live := e.jobs[id]; live {
			continue // never clobber a job this process is running
		}
		e.jobs[id] = j
		n++
	}
	e.jobsMu.Unlock()
	e.recovered.Store(int64(n))

	// Re-mark interrupted jobs in the log, outside jobsMu: Append fsyncs.
	for _, id := range interrupted {
		e.logRecord(Record{Type: RecFailed, Job: id, Error: ErrInterrupted.Error()})
	}
	return n, nil
}

// applyRecord folds one log record into the job being reconstructed.
// Records arrive in log order, so the last state transition wins.
func applyRecord(j *Job, rec Record, rejected map[string]bool) {
	switch rec.Type {
	case RecSubmitted:
		if rec.Spec != nil {
			j.spec = *rec.Spec
		}
		j.created = rec.Time
	case RecRejected:
		rejected[rec.Job] = true
	case RecRunning:
		j.state = StateRunning
		j.started = rec.Time
	case RecSnapshot:
		if rec.Snapshot != nil {
			j.partial.Store(rec.Snapshot)
			j.progressDone.Store(int64(rec.Snapshot.Done))
			j.progressTotal.Store(int64(rec.Snapshot.Total))
		}
	case RecDone:
		j.state = StateDone
		j.summary = rec.Result
		j.cacheHit = rec.CacheHit
		j.finished = rec.Time
		// Schema v2 done records carry the spec; v1 records leave it nil
		// and the job folds to summary-only, the pre-v2 behavior.
		j.recompute = rec.Spec
	case RecFailed:
		j.state = StateFailed
		j.err = recordError(rec.Error)
		j.finished = rec.Time
	case RecCanceled:
		j.state = StateCanceled
		j.err = recordError(rec.Error)
		j.finished = rec.Time
	}
	// Unknown record types (a newer format) are skipped: replay is
	// forward-compatible with additive changes.
}

// Rehydrate re-mines the full result of a done job that was recovered
// from the store — the lazy half of full-result durability. The done
// record's spec (schema v2) names the dataset by content hash; if the
// registry still holds it, the exploration re-runs through the shared
// result cache and the result is pinned back onto the job, so the first
// GET /jobs/{id}/result after a restart pays the mine and every later
// one is free. Mining is deterministic (the parallel miner canonicalizes
// and sorts its output), so the rehydrated result renders byte-identical
// to the pre-crash response.
//
// Failure modes, in the order the server's fallback chain meets them:
// a job that is not done fails outright; a v1-format job (no spec on the
// done record) returns ErrNoResult; an evicted or never-re-registered
// dataset returns ErrDatasetGone. In the latter two cases the durable
// summary is still servable.
func (e *Engine) Rehydrate(ctx context.Context, job *Job) (*core.Result, error) {
	job.mu.Lock()
	state := job.state
	res := job.result
	spec := job.recompute
	job.mu.Unlock()
	if state != StateDone {
		return nil, fmt.Errorf("jobs: job %s is %s, not done", job.id, state)
	}
	if res != nil {
		return res, nil
	}
	if spec == nil {
		return nil, fmt.Errorf("%w: job %s has no recompute spec (v1 done record)", ErrNoResult, job.id)
	}

	job.rehydrateMu.Lock()
	defer job.rehydrateMu.Unlock()
	job.mu.Lock()
	res = job.result
	job.mu.Unlock()
	if res != nil { // a concurrent fetch already re-mined it
		return res, nil
	}
	// Expose a cancel handle while the re-mine is in flight: Cancel on a
	// recovered done job (DELETE mid-rehydrate) aborts the mine here
	// instead of letting it finish and repopulate caches.
	rctx, rcancel := context.WithCancel(ctx)
	job.mu.Lock()
	job.rehydrateCancel = rcancel
	job.mu.Unlock()
	res, _, err := e.analyzeCached(rctx, *spec, nil)
	job.mu.Lock()
	job.rehydrateCancel = nil
	job.mu.Unlock()
	rcancel()
	if err != nil {
		return nil, err
	}
	job.mu.Lock()
	job.result = res
	job.mu.Unlock()
	e.rehydrated.Add(1)
	return res, nil
}

// recordError rehydrates a persisted error string. The interrupted
// sentinel round-trips as ErrInterrupted so errors.Is keeps working
// across restarts.
func recordError(msg string) error {
	switch msg {
	case "":
		return errors.New("jobs: failed in a previous run (no recorded error)")
	case ErrInterrupted.Error():
		return ErrInterrupted
	}
	return errors.New(msg)
}
