package jobs

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/registry"
)

const sampleCSV = `group,region,truth,pred
A,n,0,1
A,n,0,1
A,n,0,1
A,n,0,0
A,s,0,1
A,s,0,0
A,s,0,0
B,n,0,0
B,n,0,0
B,n,0,1
B,s,1,1
B,s,1,0
B,s,1,1
B,s,1,0
`

// testEngine builds an engine over a fresh registry with sampleCSV
// registered, applying any config overrides.
func testEngine(t *testing.T, cfg Config) (*Engine, registry.Hash) {
	t.Helper()
	reg := registry.New(0)
	entry, _, err := reg.Register([]byte(sampleCSV), dataset.CSVOptions{TrimSpace: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Registry = reg
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := e.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return e, entry.Hash
}

func sampleSpec(h registry.Hash) Spec {
	return Spec{
		Dataset:  h,
		TruthCol: "truth",
		PredCol:  "pred",
		Support:  0.05,
		Metrics:  []string{"FPR"},
		TopK:     10,
	}
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, j *Job) Status {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := j.Snapshot(); st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not terminate: %s", j.ID(), j.Snapshot().State)
	return Status{}
}

func TestJobLifecycleDone(t *testing.T) {
	e, h := testEngine(t, Config{Workers: 2})
	job, err := e.Submit(sampleSpec(h))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, job)
	if st.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", st.State, st.Err)
	}
	if st.CacheHit {
		t.Error("first run reported a cache hit")
	}
	if st.ProgressTotal == 0 || st.ProgressDone != st.ProgressTotal {
		t.Errorf("progress %d/%d, want done == total > 0", st.ProgressDone, st.ProgressTotal)
	}
	res, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumPatterns() == 0 {
		t.Error("no frequent patterns mined")
	}
	if st.Started.Before(st.Created) || st.Finished.Before(st.Started) {
		t.Errorf("timestamps out of order: %+v", st)
	}
}

func TestResultCacheHit(t *testing.T) {
	e, h := testEngine(t, Config{Workers: 1})
	j1, err := e.Submit(sampleSpec(h))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j1)
	j2, err := e.Submit(sampleSpec(h))
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitTerminal(t, j2)
	if st2.State != StateDone || !st2.CacheHit {
		t.Fatalf("second run state=%s cacheHit=%v, want done via cache", st2.State, st2.CacheHit)
	}
	r1, _ := j1.Result()
	r2, _ := j2.Result()
	if r1 != r2 {
		t.Error("cache hit returned a different result object")
	}
	s := e.Stats()
	if s.ResultCache.Hits != 1 || s.ResultCache.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 hit 1 miss", s.ResultCache)
	}
	// A different support is a different key.
	spec3 := sampleSpec(h)
	spec3.Support = 0.2
	j3, err := e.Submit(spec3)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j3); st.CacheHit {
		t.Error("different support hit the cache")
	}
}

// blockingAnalyze returns an AnalyzeFunc that signals on started and
// blocks until its context is canceled.
func blockingAnalyze(started chan<- string) AnalyzeFunc {
	return func(ctx context.Context, _ *dataset.Dataset, spec Spec, _ *Tracker) (*core.Result, error) {
		if started != nil {
			started <- spec.TruthCol
		}
		<-ctx.Done()
		return nil, ctx.Err()
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	started := make(chan string, 4)
	e, h := testEngine(t, Config{Workers: 1, QueueDepth: 1, Analyze: blockingAnalyze(started)})

	// Occupy the single worker, then the single queue slot. Distinct
	// TruthCols keep the cache keys distinct.
	s1 := sampleSpec(h)
	s1.TruthCol = "blocker"
	if _, err := e.Submit(s1); err != nil {
		t.Fatal(err)
	}
	<-started // the worker is now inside analyze
	s2 := sampleSpec(h)
	s2.TruthCol = "queued"
	if _, err := e.Submit(s2); err != nil {
		t.Fatal(err)
	}
	s3 := sampleSpec(h)
	s3.TruthCol = "rejected"
	if _, err := e.Submit(s3); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit err = %v, want ErrQueueFull", err)
	}
	if s := e.Stats(); s.Rejected != 1 || s.QueueLen != 1 {
		t.Errorf("stats = %+v, want 1 rejected, queue len 1", s)
	}
	// Shutdown (in Cleanup) cancels the blocked jobs via baseCancel after
	// the drain deadline would hit — cancel them explicitly instead so the
	// drain is quick.
	for _, j := range e.snapshotJobs() {
		if _, err := e.Cancel(j.ID()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCancelQueuedJob(t *testing.T) {
	started := make(chan string, 4)
	e, h := testEngine(t, Config{Workers: 1, QueueDepth: 2, Analyze: blockingAnalyze(started)})
	blocker := sampleSpec(h)
	blocker.TruthCol = "blocker"
	jb, err := e.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued := sampleSpec(h)
	queued.TruthCol = "queued"
	jq, err := e.Submit(queued)
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.Cancel(jq.ID())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("queued job state after cancel = %s, want canceled", st.State)
	}
	if _, err := e.Cancel(jb.ID()); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, jb); st.State != StateCanceled {
		t.Errorf("blocker state = %s, want canceled", st.State)
	}
	// The canceled-while-queued job must never run.
	if s := e.Stats(); s.Canceled != 2 {
		t.Errorf("canceled count = %d, want 2", s.Canceled)
	}
}

func TestCancelRunningJobObservesContext(t *testing.T) {
	observed := make(chan struct{})
	analyze := func(ctx context.Context, _ *dataset.Dataset, _ Spec, _ *Tracker) (*core.Result, error) {
		<-ctx.Done()
		close(observed)
		return nil, ctx.Err()
	}
	e, h := testEngine(t, Config{Workers: 1, Analyze: analyze})
	job, err := e.Submit(sampleSpec(h))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the job to be running, then cancel it.
	deadline := time.Now().Add(5 * time.Second)
	for job.Snapshot().State != StateRunning && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, err := e.Cancel(job.ID()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-observed:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never observed cancellation")
	}
	st := waitTerminal(t, job)
	if st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled (not done)", st.State)
	}
	if _, err := job.Result(); err == nil {
		t.Error("canceled job returned a result")
	}
}

func TestJobDeadline(t *testing.T) {
	e, h := testEngine(t, Config{Workers: 1, DefaultTimeout: 10 * time.Millisecond, Analyze: blockingAnalyze(nil)})
	job, err := e.Submit(sampleSpec(h))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, job)
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed on deadline", st.State)
	}
}

func TestBadInputFailsJob(t *testing.T) {
	e, h := testEngine(t, Config{Workers: 1})
	spec := sampleSpec(h)
	spec.TruthCol = "no-such-column"
	job, err := e.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, job)
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if _, err := job.Result(); !errors.Is(err, ErrBadInput) {
		t.Errorf("err = %v, want ErrBadInput", err)
	}
}

func TestUnknownDatasetFailsJob(t *testing.T) {
	e, _ := testEngine(t, Config{Workers: 1})
	spec := sampleSpec(registry.Hash("0000000000000000000000000000000000000000000000000000000000000000"))
	job, err := e.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, job); st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
}

func TestSynchronousAnalyzeSharesCache(t *testing.T) {
	e, h := testEngine(t, Config{Workers: 1})
	spec := sampleSpec(h)
	r1, err := e.Analyze(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Analyze(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("second synchronous analyze missed the cache")
	}
	// An async job for the same spec also hits it.
	job, err := e.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, job); !st.CacheHit {
		t.Error("async job missed the cache warmed synchronously")
	}
}

func TestShutdownDrainsQueuedJobs(t *testing.T) {
	reg := registry.New(0)
	entry, _, err := reg.Register([]byte(sampleCSV), dataset.CSVOptions{TrimSpace: true})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Registry: reg, Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	var jobs []*Job
	for i := 0; i < 4; i++ {
		spec := sampleSpec(entry.Hash)
		spec.Support = 0.05 + float64(i)*0.01 // distinct cache keys: real work
		j, err := e.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if st := j.Snapshot(); st.State != StateDone {
			t.Errorf("job %s = %s after drain, want done", j.ID(), st.State)
		}
	}
	if _, err := e.Submit(sampleSpec(entry.Hash)); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("submit after shutdown err = %v, want ErrShuttingDown", err)
	}
	// Idempotent.
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestShutdownDeadlineCancelsInflight(t *testing.T) {
	reg := registry.New(0)
	entry, _, err := reg.Register([]byte(sampleCSV), dataset.CSVOptions{TrimSpace: true})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan string, 1)
	e, err := New(Config{Registry: reg, Workers: 1, Analyze: blockingAnalyze(started)})
	if err != nil {
		t.Fatal(err)
	}
	job, err := e.Submit(sampleSpec(entry.Hash))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := e.Shutdown(ctx); err == nil {
		t.Fatal("shutdown met its deadline despite a blocked job")
	}
	if st := job.Snapshot(); st.State != StateCanceled {
		t.Errorf("in-flight job state = %s, want canceled by shutdown", st.State)
	}
}

func TestCancelUnknownJob(t *testing.T) {
	e, _ := testEngine(t, Config{Workers: 1})
	if _, err := e.Cancel("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("err = %v, want ErrUnknownJob", err)
	}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		StateQueued: "queued", StateRunning: "running", StateDone: "done",
		StateFailed: "failed", StateCanceled: "canceled", State(99): "unknown",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), name)
		}
	}
	if StateRunning.Terminal() || !StateCanceled.Terminal() {
		t.Error("Terminal misclassifies states")
	}
}

// snapshotJobs returns all tracked jobs (test helper).
func (e *Engine) snapshotJobs() []*Job {
	e.jobsMu.Lock()
	defer e.jobsMu.Unlock()
	out := make([]*Job, 0, len(e.jobs))
	for _, j := range e.jobs {
		out = append(out, j)
	}
	return out
}
