package jobs

import (
	"container/list"
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fpm"
	"repro/internal/lattice"
	"repro/internal/registry"
	"repro/internal/stats"
)

// The anytime exploration tier (DESIGN.md §14). Explore queries run
// synchronously on the request goroutine — budgets keep them
// interactive — or asynchronously through the normal job lifecycle
// (SubmitExplore), in which case top-K refinements stream through the
// partial-result Tracker and the final snapshot carries the completion
// reason. Expand/Drill navigation never mines at all: it is served by a
// per-dataset lattice.Explorer whose conditional-tally cache turns a
// click on a pattern into one narrowed scan.

// ExploreSpec describes one anytime exploration.
type ExploreSpec struct {
	Dataset  registry.Hash
	TruthCol string
	PredCol  string
	Support  float64
	// Metric is the single divergence metric to rank by (|Δ| order).
	Metric string
	TopK   int
	// BudgetMS bounds wall-clock time; 0 means no deadline.
	BudgetMS int64
	// MaxPatterns bounds the number of patterns visited; 0 means all.
	MaxPatterns int64
	// SampleRows, when > 0, mines a uniform row sample of that size and
	// annotates every estimate with confidence intervals.
	SampleRows int
	SampleSeed int64
	// Confidence for the error bounds (core.DefaultConfidence when 0).
	Confidence float64
}

// CacheKey identifies the cached outcome for a spec. Budgets are
// deliberately excluded: they bound how much of the answer gets
// computed, not what the answer is, so a cached *complete* outcome can
// serve any budget. Sampling parameters change the answer and are
// included.
func (s ExploreSpec) CacheKey() string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	parts := []string{
		"explore", string(s.Dataset), s.TruthCol, s.PredCol,
		f(s.Support), s.Metric, strconv.Itoa(s.TopK),
		strconv.Itoa(s.SampleRows), strconv.FormatInt(s.SampleSeed, 10), f(s.Confidence),
	}
	return strings.Join(parts, "\x1f")
}

// ExplorePattern is one ranked pattern on the explore wire format. The
// *Lo/*Hi interval fields are meaningful only on sampled runs; on exact
// runs they collapse to the point estimates.
type ExplorePattern struct {
	Items      []string `json:"itemset"`
	Support    float64  `json:"support"`
	Rate       float64  `json:"rate"`
	Divergence float64  `json:"divergence"`
	T          float64  `json:"t"`

	SupportLo    float64 `json:"support_lo"`
	SupportHi    float64 `json:"support_hi"`
	RateLo       float64 `json:"rate_lo"`
	RateHi       float64 `json:"rate_hi"`
	DivergenceLo float64 `json:"divergence_lo"`
	DivergenceHi float64 `json:"divergence_hi"`
}

// ExploreOutcome is the result of one anytime exploration.
type ExploreOutcome struct {
	Reason     string           `json:"reason"` // exhausted | deadline | budget
	Partial    bool             `json:"partial"`
	Visited    int64            `json:"patterns_visited"`
	Metric     string           `json:"metric"`
	GlobalRate float64          `json:"global_rate"`
	Top        []ExplorePattern `json:"top"`
	Sampled    bool             `json:"sampled"`
	SampleSize int              `json:"sample_size,omitempty"`
	Confidence float64          `json:"confidence,omitempty"`
	SupportEps float64          `json:"support_eps,omitempty"`
	CacheHit   bool             `json:"cache_hit"`
}

// ExpandSpec describes one lattice-navigation step: the frequent
// refinements of Pattern, optionally restricted to one attribute
// (Attr non-empty = drill).
type ExpandSpec struct {
	Dataset  registry.Hash
	TruthCol string
	PredCol  string
	Support  float64
	Metric   string
	// Pattern names the parent pattern's items ("attr=value"); empty
	// expands the root into the frequent singletons.
	Pattern []string
	// Attr, when non-empty, drills along that attribute only.
	Attr string
}

// ExpandOutcome is the result of one navigation step. Refinement
// statistics are exact (navigation never samples), so the interval
// fields of each ExplorePattern are degenerate.
type ExpandOutcome struct {
	Parent      []string         `json:"parent"`
	Metric      string           `json:"metric"`
	GlobalRate  float64          `json:"global_rate"`
	Refinements []ExplorePattern `json:"refinements"`
}

// ExploreStats is the /statsz slice for the anytime tier.
type ExploreStats struct {
	// Explores counts explore queries; Mines counts the ones that
	// actually ran an anytime mine (the rest were cache hits). Expands
	// counts navigation steps, which never mine by construction.
	Explores int64      `json:"explores"`
	Mines    int64      `json:"mines"`
	Expands  int64      `json:"expands"`
	Cache    CacheStats `json:"cache"`
	// Sessions counts resident per-dataset navigation sessions;
	// Navigation aggregates their conditional-tally cache counters.
	Sessions   int                   `json:"sessions"`
	Navigation lattice.ExplorerStats `json:"navigation"`
}

// exploreCache is an LRU of complete explore outcomes. Outcomes are
// immutable once published.
type exploreCache struct {
	c *keyedLRU
}

// session is one per-(dataset, labels) exploration context: the
// transaction database and the navigation explorer sharing its
// conditional-tally cache across requests.
type session struct {
	db  *fpm.TxDB
	nav *lattice.Explorer
}

// keyedLRU is the engine's shared entry-bounded LRU shape.
type keyedLRU struct {
	capacity  int
	ll        *list.List
	entries   map[string]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type lruEntry struct {
	key string
	val interface{}
}

func newKeyedLRU(capacity int) *keyedLRU {
	return &keyedLRU{capacity: capacity, ll: list.New(), entries: make(map[string]*list.Element)}
}

func (c *keyedLRU) get(key string) (interface{}, bool) {
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *keyedLRU) put(key string, val interface{}) {
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.entries[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.entries, back.Value.(*lruEntry).key)
		c.evictions++
	}
}

func (c *keyedLRU) stats() CacheStats {
	return CacheStats{
		Entries:   c.ll.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// validateExplore normalizes and checks a spec, resolving the metric.
func (e *Engine) validateExplore(s *ExploreSpec) (core.Metric, error) {
	if s.Support < 0 || s.Support > 1 {
		return core.Metric{}, fmt.Errorf("%w: support %v out of [0,1]", ErrBadInput, s.Support)
	}
	if s.TopK <= 0 {
		s.TopK = 10
	}
	if s.BudgetMS < 0 || s.MaxPatterns < 0 || s.SampleRows < 0 {
		return core.Metric{}, fmt.Errorf("%w: negative budget", ErrBadInput)
	}
	if s.Confidence < 0 || s.Confidence >= 1 {
		return core.Metric{}, fmt.Errorf("%w: confidence %v out of [0,1)", ErrBadInput, s.Confidence)
	}
	if s.Metric == "" {
		s.Metric = "ER"
	}
	m, err := core.MetricByName(s.Metric)
	if err != nil {
		return core.Metric{}, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	s.Metric = m.Name
	return m, nil
}

// session returns the cached exploration context for a dataset and
// label-column pair, building the transaction database on first use.
func (e *Engine) session(ds registry.Hash, truthCol, predCol string) (*session, error) {
	key := string(ds) + "\x1f" + truthCol + "\x1f" + predCol
	e.exploreMu.Lock()
	if v, ok := e.sessions.get(key); ok {
		e.exploreMu.Unlock()
		return v.(*session), nil
	}
	e.exploreMu.Unlock()

	entry, ok := e.reg.Get(ds)
	if !ok {
		return nil, fmt.Errorf("%w: %w: %s", ErrBadInput, ErrDatasetGone, ds)
	}
	truth, pred, rest, err := extractLabels(entry.Data, truthCol, predCol)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	classes, err := core.ConfusionClasses(truth, pred)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	db, err := fpm.NewTxDB(rest, classes, core.NumConfusionClasses)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	s := &session{db: db, nav: lattice.NewExplorer(db, 0)}

	e.exploreMu.Lock()
	defer e.exploreMu.Unlock()
	if v, ok := e.sessions.get(key); ok { // raced with another builder
		return v.(*session), nil
	}
	e.sessions.put(key, s)
	return s, nil
}

// Explore answers one anytime exploration synchronously, consulting the
// outcome cache first. Only complete (exhausted) outcomes are cached —
// and because budgets only truncate, a cached complete outcome
// truthfully serves any budgeted re-ask of the same question, marked
// cache_hit with partial=false.
func (e *Engine) Explore(ctx context.Context, spec ExploreSpec) (*ExploreOutcome, error) {
	return e.explore(ctx, spec, nil)
}

// explore is the shared sync/async implementation; tr may be nil.
func (e *Engine) explore(ctx context.Context, spec ExploreSpec, tr *Tracker) (*ExploreOutcome, error) {
	m, err := e.validateExplore(&spec)
	if err != nil {
		return nil, err
	}
	e.explores.Add(1)
	key := spec.CacheKey()
	e.exploreMu.Lock()
	if v, ok := e.xcache.c.get(key); ok {
		e.exploreMu.Unlock()
		out := *v.(*ExploreOutcome)
		out.CacheHit = true
		return &out, nil
	}
	e.exploreMu.Unlock()

	sess, err := e.session(spec.Dataset, spec.TruthCol, spec.PredCol)
	if err != nil {
		return nil, err
	}

	budget := fpm.AnytimeBudget{MaxPatterns: spec.MaxPatterns}
	if spec.BudgetMS > 0 {
		budget.Deadline = time.Now().Add(time.Duration(spec.BudgetMS) * time.Millisecond)
	}
	// The surrounding context's deadline (job timeout, client timeout)
	// tightens the budget; explicit cancellation between deadlines is not
	// observed by the mine — budgets bound it already.
	if d, ok := ctx.Deadline(); ok && (budget.Deadline.IsZero() || d.Before(budget.Deadline)) {
		budget.Deadline = d
	}

	opts := core.AnytimeOptions{
		Budget:     budget,
		SampleRows: spec.SampleRows,
		SampleSeed: spec.SampleSeed,
		Confidence: spec.Confidence,
	}
	if tr != nil {
		opts.OnUpdate = func(top []core.RankedEstimate, visited int64) {
			tr.Partial(Snapshot{
				Patterns: visited,
				Metric:   m.Name,
				Top:      partialPatterns(sess.db.Catalog, top),
			})
		}
	}
	e.exploreMines.Add(1)
	res, err := core.ExploreTopKAnytime(sess.db, spec.Support, m, spec.TopK, core.ByAbsDivergence, opts)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}

	kp, kn := m.Counts(sess.db.TotalTally())
	out := &ExploreOutcome{
		Reason:     res.Reason.String(),
		Partial:    res.Partial(),
		Visited:    res.Visited,
		Metric:     m.Name,
		GlobalRate: float64(kp) / float64(kp+kn),
		Top:        explorePatterns(sess.db.Catalog, res.Top),
		Sampled:    res.Sampled,
		Confidence: res.Confidence,
	}
	if res.Sampled {
		out.SampleSize = res.SampleSize
		out.SupportEps = res.SupportEps
	}
	if tr != nil {
		// Final snapshot: the settled leaderboard plus the completion
		// reason, the signal pollers key off to stop.
		tr.Partial(Snapshot{
			Patterns: res.Visited,
			Metric:   m.Name,
			Top:      partialPatterns(sess.db.Catalog, res.Top),
			Reason:   out.Reason,
		})
	}
	if res.Reason == fpm.ReasonExhausted {
		e.exploreMu.Lock()
		e.xcache.c.put(key, out)
		e.exploreMu.Unlock()
	}
	return out, nil
}

// Expand answers one navigation step from the per-dataset explorer —
// cached conditional tallies, no mining.
func (e *Engine) Expand(spec ExpandSpec) (*ExpandOutcome, error) {
	xs := ExploreSpec{
		Dataset: spec.Dataset, TruthCol: spec.TruthCol, PredCol: spec.PredCol,
		Support: spec.Support, Metric: spec.Metric,
	}
	m, err := e.validateExplore(&xs)
	if err != nil {
		return nil, err
	}
	sess, err := e.session(spec.Dataset, spec.TruthCol, spec.PredCol)
	if err != nil {
		return nil, err
	}
	pattern, err := sess.db.Catalog.ItemsetByNames(spec.Pattern...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	minCount := fpm.MinCount(sess.db.NumRows(), xs.Support)

	var refs []lattice.Refinement
	if spec.Attr != "" {
		attr := -1
		for a := 0; a < sess.db.Catalog.NumAttrs(); a++ {
			if sess.db.Catalog.AttrName(a) == spec.Attr {
				attr = a
				break
			}
		}
		if attr < 0 {
			return nil, fmt.Errorf("%w: unknown attribute %q", ErrBadInput, spec.Attr)
		}
		refs, err = sess.nav.Drill(pattern, attr, minCount)
	} else {
		refs, err = sess.nav.Expand(pattern, minCount)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	e.expands.Add(1)

	total := sess.db.TotalTally()
	kp, kn := m.Counts(total)
	if kp+kn == 0 {
		return nil, fmt.Errorf("%w: metric %s undefined on the whole dataset", ErrBadInput, m.Name)
	}
	globalRate := float64(kp) / float64(kp+kn)
	globalPost := stats.NewPosteriorRate(float64(kp), float64(kn))
	rows := float64(sess.db.NumRows())

	out := &ExpandOutcome{
		Parent:     itemNameList(sess.db.Catalog, pattern),
		Metric:     m.Name,
		GlobalRate: globalRate,
	}
	for _, r := range refs {
		p := exactPattern(sess.db.Catalog, r.Items, r.Tally, rows, globalRate, globalPost, m)
		if p != nil {
			out.Refinements = append(out.Refinements, *p)
		}
	}
	return out, nil
}

// ExploreStatsSnapshot returns the anytime-tier counters.
func (e *Engine) ExploreStatsSnapshot() ExploreStats {
	e.exploreMu.Lock()
	defer e.exploreMu.Unlock()
	st := ExploreStats{
		Explores: e.explores.Load(),
		Mines:    e.exploreMines.Load(),
		Expands:  e.expands.Load(),
		Cache:    e.xcache.c.stats(),
		Sessions: e.sessions.ll.Len(),
	}
	for el := e.sessions.ll.Front(); el != nil; el = el.Next() {
		ns := el.Value.(*lruEntry).val.(*session).nav.Stats()
		st.Navigation.Entries += ns.Entries
		st.Navigation.Hits += ns.Hits
		st.Navigation.Misses += ns.Misses
		st.Navigation.Evictions += ns.Evictions
		st.Navigation.RowsScanned += ns.RowsScanned
		st.Navigation.Expands += ns.Expands
		st.Navigation.Capacity = ns.Capacity
	}
	return st
}

// exactPattern renders one exactly-tallied pattern (navigation and
// unsampled paths); nil when the metric is undefined on it.
func exactPattern(cat *fpm.Catalog, items fpm.Itemset, t fpm.Tally, rows, globalRate float64, globalPost stats.PosteriorRate, m core.Metric) *ExplorePattern {
	kp, kn := m.Counts(t)
	if kp+kn == 0 {
		return nil
	}
	rate := float64(kp) / float64(kp+kn)
	sup := float64(t.Total()) / rows
	div := rate - globalRate
	return &ExplorePattern{
		Items:      itemNameList(cat, items),
		Support:    sup,
		Rate:       rate,
		Divergence: div,
		T:          stats.WelchTPosterior(stats.NewPosteriorRate(float64(kp), float64(kn)), globalPost),
		SupportLo:  sup, SupportHi: sup,
		RateLo: rate, RateHi: rate,
		DivergenceLo: div, DivergenceHi: div,
	}
}

// explorePatterns converts ranked estimates to the wire format.
func explorePatterns(cat *fpm.Catalog, top []core.RankedEstimate) []ExplorePattern {
	out := make([]ExplorePattern, len(top))
	for i, e := range top {
		out[i] = ExplorePattern{
			Items:        itemNameList(cat, e.Items),
			Support:      e.Support,
			Rate:         e.Rate,
			Divergence:   e.Divergence,
			T:            e.T,
			SupportLo:    e.SupportLo,
			SupportHi:    e.SupportHi,
			RateLo:       e.RateLo,
			RateHi:       e.RateHi,
			DivergenceLo: e.DivergenceLo,
			DivergenceHi: e.DivergenceHi,
		}
	}
	return out
}

// partialPatterns converts ranked estimates to snapshot entries.
func partialPatterns(cat *fpm.Catalog, top []core.RankedEstimate) []PartialPattern {
	out := make([]PartialPattern, len(top))
	for i, e := range top {
		out[i] = PartialPattern{
			Items:      itemNameList(cat, e.Items),
			Support:    e.Support,
			Rate:       e.Rate,
			Divergence: e.Divergence,
		}
	}
	return out
}

// SubmitExplore enqueues an anytime exploration as an asynchronous job:
// it runs on the worker pool, streams top-K refinements through the
// job's partial-result snapshots, and finishes with a final snapshot
// whose Reason field carries the completion reason. The job's Result()
// is never populated; the outcome is read with Job.Explore().
func (e *Engine) SubmitExplore(spec ExploreSpec) (*Job, error) {
	if _, err := e.validateExplore(&spec); err != nil {
		return nil, err
	}
	id, err := newJobID()
	if err != nil {
		return nil, err
	}
	// The synthesized Spec keeps the WAL records and status endpoints
	// meaningful for explore jobs.
	jspec := Spec{
		Dataset: spec.Dataset, TruthCol: spec.TruthCol, PredCol: spec.PredCol,
		Support: spec.Support, Metrics: []string{spec.Metric}, TopK: spec.TopK,
	}
	job := &Job{id: id, spec: jspec, explore: &spec, state: StateQueued, created: time.Now()}
	return e.enqueue(job, false)
}
