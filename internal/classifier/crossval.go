package classifier

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
)

// Trainer abstracts model training for cross-validation.
type Trainer func(d *dataset.Dataset, labels []bool) (Classifier, error)

// CrossValPredictions produces out-of-fold predictions for every row: the
// data is split into k folds, a model is trained on each k−1-fold
// complement and predicts its held-out fold. The result is a
// full-coverage prediction vector in which no instance was scored by a
// model that saw it — the methodologically sound input for auditing a
// *training procedure* with DivExplorer (auditing a fixed model's
// training-set predictions conflates memorization with behavior).
func CrossValPredictions(d *dataset.Dataset, labels []bool, k int, seed int64, train Trainer) ([]bool, error) {
	if err := checkTrainingInput(d, labels); err != nil {
		return nil, err
	}
	if k < 2 || k > d.NumRows() {
		return nil, fmt.Errorf("classifier: fold count %d out of [2, %d]", k, d.NumRows())
	}
	if train == nil {
		return nil, fmt.Errorf("classifier: nil trainer")
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(d.NumRows())
	pred := make([]bool, d.NumRows())
	for fold := 0; fold < k; fold++ {
		var trainIdx, testIdx []int
		for pos, r := range perm {
			if pos%k == fold {
				testIdx = append(testIdx, r)
			} else {
				trainIdx = append(trainIdx, r)
			}
		}
		trainData := d.Subset(trainIdx)
		trainLabels := dataset.SelectLabels(labels, trainIdx)
		model, err := train(trainData, trainLabels)
		if err != nil {
			return nil, fmt.Errorf("classifier: fold %d: %w", fold, err)
		}
		for _, r := range testIdx {
			pred[r] = model.Predict(d.Rows[r])
		}
	}
	return pred, nil
}
