package classifier

import (
	"math"

	"repro/internal/dataset"
)

// NaiveBayes is a categorical naive Bayes classifier with Laplace
// smoothing — the cheapest reasonable black box to audit, and a useful
// contrast to the tree ensemble in the examples: its independence
// assumption produces characteristic error pockets on correlated
// subgroups, exactly the kind of structure DivExplorer surfaces.
type NaiveBayes struct {
	logPrior [2]float64
	// logCond[c][attr][value] = log P(value | class c), Laplace smoothed.
	logCond [2][][]float64
}

// NaiveBayesConfig controls training.
type NaiveBayesConfig struct {
	// Alpha is the Laplace smoothing pseudo-count (default 1).
	Alpha float64
}

// TrainNaiveBayes fits the classifier.
func TrainNaiveBayes(d *dataset.Dataset, labels []bool, cfg NaiveBayesConfig) (*NaiveBayes, error) {
	if err := checkTrainingInput(d, labels); err != nil {
		return nil, err
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 1
	}
	var classCount [2]float64
	counts := [2][][]float64{}
	for c := 0; c < 2; c++ {
		counts[c] = make([][]float64, d.NumAttrs())
		for a := range counts[c] {
			counts[c][a] = make([]float64, d.Attrs[a].Cardinality())
		}
	}
	for r, row := range d.Rows {
		c := 0
		if labels[r] {
			c = 1
		}
		classCount[c]++
		for a, v := range row {
			counts[c][a][v]++
		}
	}
	nb := &NaiveBayes{}
	total := classCount[0] + classCount[1]
	for c := 0; c < 2; c++ {
		nb.logPrior[c] = math.Log((classCount[c] + cfg.Alpha) / (total + 2*cfg.Alpha))
		nb.logCond[c] = make([][]float64, d.NumAttrs())
		for a := range counts[c] {
			card := float64(len(counts[c][a]))
			nb.logCond[c][a] = make([]float64, len(counts[c][a]))
			for v := range counts[c][a] {
				nb.logCond[c][a][v] = math.Log(
					(counts[c][a][v] + cfg.Alpha) / (classCount[c] + cfg.Alpha*card))
			}
		}
	}
	return nb, nil
}

func (nb *NaiveBayes) logPosterior(row []int32, c int) float64 {
	s := nb.logPrior[c]
	for a, v := range row {
		s += nb.logCond[c][a][v]
	}
	return s
}

// Predict implements Classifier.
func (nb *NaiveBayes) Predict(row []int32) bool {
	return nb.logPosterior(row, 1) >= nb.logPosterior(row, 0)
}

// PredictProba returns the posterior probability of the positive class.
func (nb *NaiveBayes) PredictProba(row []int32) float64 {
	l0, l1 := nb.logPosterior(row, 0), nb.logPosterior(row, 1)
	// Normalize in log space for stability.
	m := math.Max(l0, l1)
	e0, e1 := math.Exp(l0-m), math.Exp(l1-m)
	return e1 / (e0 + e1)
}
