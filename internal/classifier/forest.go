package classifier

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// ForestConfig controls random-forest training. Zero values select
// defaults comparable to the scikit-learn defaults the paper used:
// 100 trees, sqrt(#attributes) features per split, unbounded depth.
type ForestConfig struct {
	NumTrees    int
	MaxDepth    int
	MaxFeatures int // 0: sqrt of the attribute count
	Seed        int64
}

// Forest is a bagged ensemble of decision trees with per-node feature
// sub-sampling, deciding by majority vote.
type Forest struct {
	trees []*Tree
}

// TrainForest trains a random forest on Boolean labels.
func TrainForest(d *dataset.Dataset, labels []bool, cfg ForestConfig) (*Forest, error) {
	if err := checkTrainingInput(d, labels); err != nil {
		return nil, err
	}
	if cfg.NumTrees <= 0 {
		cfg.NumTrees = 100
	}
	if cfg.MaxFeatures <= 0 {
		cfg.MaxFeatures = int(math.Max(1, math.Round(math.Sqrt(float64(d.NumAttrs())))))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Forest{trees: make([]*Tree, cfg.NumTrees)}
	n := d.NumRows()
	for ti := 0; ti < cfg.NumTrees; ti++ {
		// Bootstrap sample.
		sample := &dataset.Dataset{Attrs: d.Attrs, Rows: make([][]int32, n)}
		sampleLabels := make([]bool, n)
		for i := 0; i < n; i++ {
			r := rng.Intn(n)
			sample.Rows[i] = d.Rows[r]
			sampleLabels[i] = labels[r]
		}
		tree, err := TrainTree(sample, sampleLabels, TreeConfig{
			MaxDepth:    cfg.MaxDepth,
			MaxFeatures: cfg.MaxFeatures,
			Rand:        rand.New(rand.NewSource(rng.Int63())),
		})
		if err != nil {
			return nil, fmt.Errorf("classifier: tree %d: %w", ti, err)
		}
		f.trees[ti] = tree
	}
	return f, nil
}

// Predict implements Classifier by majority vote.
func (f *Forest) Predict(row []int32) bool {
	votes := 0
	for _, t := range f.trees {
		if t.Predict(row) {
			votes++
		}
	}
	return 2*votes >= len(f.trees)
}

// PredictProba returns the fraction of trees voting positive — a crude
// probability estimate used by the Slice Finder baseline's loss.
func (f *Forest) PredictProba(row []int32) float64 {
	votes := 0
	for _, t := range f.trees {
		if t.Predict(row) {
			votes++
		}
	}
	return float64(votes) / float64(len(f.trees))
}

// NumTrees reports the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }
