// Package classifier provides from-scratch classification models used as
// the analyzed black boxes in the experiments: a CART-style decision
// tree, a random forest (the paper's default model for adult/bank/german/
// heart), logistic regression, and a one-hidden-layer MLP (the model used
// in the user study's bias-injection experiment). All models consume the
// discrete value-coded rows of package dataset, are deterministic given a
// seed, and expose only a Predict method — DivExplorer treats them as
// black boxes.
package classifier

import (
	"fmt"

	"repro/internal/dataset"
)

// Classifier predicts a Boolean label for a value-coded row.
type Classifier interface {
	Predict(row []int32) bool
}

// PredictAll applies the classifier to every row of a dataset.
func PredictAll(c Classifier, d *dataset.Dataset) []bool {
	out := make([]bool, d.NumRows())
	for i, row := range d.Rows {
		out[i] = c.Predict(row)
	}
	return out
}

// Accuracy returns the fraction of rows where pred matches truth.
func Accuracy(truth, pred []bool) float64 {
	if len(truth) == 0 {
		return 0
	}
	n := 0
	for i := range truth {
		if truth[i] == pred[i] {
			n++
		}
	}
	return float64(n) / float64(len(truth))
}

// ConfusionRates returns the overall FPR and FNR of predictions against
// ground truth. A rate with an empty denominator is reported as 0.
func ConfusionRates(truth, pred []bool) (fpr, fnr float64) {
	var fp, tn, fn, tp int
	for i := range truth {
		switch {
		case pred[i] && truth[i]:
			tp++
		case pred[i] && !truth[i]:
			fp++
		case !pred[i] && truth[i]:
			fn++
		default:
			tn++
		}
	}
	if fp+tn > 0 {
		fpr = float64(fp) / float64(fp+tn)
	}
	if fn+tp > 0 {
		fnr = float64(fn) / float64(fn+tp)
	}
	return fpr, fnr
}

// checkTrainingInput validates the common training preconditions.
func checkTrainingInput(d *dataset.Dataset, labels []bool) error {
	if d.NumRows() == 0 {
		return fmt.Errorf("classifier: empty training set")
	}
	if len(labels) != d.NumRows() {
		return fmt.Errorf("classifier: %d labels for %d rows", len(labels), d.NumRows())
	}
	return nil
}

// oneHot encodes a value-coded row into a dense one-hot float vector laid
// out attribute by attribute, given the per-attribute offsets.
type oneHotEncoder struct {
	offsets []int
	size    int
}

func newOneHotEncoder(d *dataset.Dataset) *oneHotEncoder {
	e := &oneHotEncoder{offsets: make([]int, d.NumAttrs())}
	n := 0
	for i := range d.Attrs {
		e.offsets[i] = n
		n += d.Attrs[i].Cardinality()
	}
	e.size = n
	return e
}

// encodeInto writes the one-hot encoding of row into dst (which must be
// zeroed and of length e.size) and returns dst.
func (e *oneHotEncoder) encodeInto(dst []float64, row []int32) []float64 {
	for a, v := range row {
		dst[e.offsets[a]+int(v)] = 1
	}
	return dst
}

func (e *oneHotEncoder) encode(row []int32) []float64 {
	return e.encodeInto(make([]float64, e.size), row)
}
