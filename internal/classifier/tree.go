package classifier

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// TreeConfig controls decision-tree induction.
type TreeConfig struct {
	// MaxDepth bounds tree depth; 0 means unbounded.
	MaxDepth int
	// MinSamplesSplit is the minimum node size to attempt a split
	// (default 2).
	MinSamplesSplit int
	// MaxFeatures, when positive, samples that many candidate attributes
	// per node (random-forest style). 0 considers all attributes.
	MaxFeatures int
	// Rand supplies the attribute-sampling randomness; only needed when
	// MaxFeatures > 0.
	Rand *rand.Rand
}

// treeNode is either a leaf (children nil) or a multiway split on one
// attribute, with one child per attribute value.
type treeNode struct {
	attr     int
	children []*treeNode
	leafPred bool
}

// Tree is a CART-style decision tree over categorical attributes, using
// Gini impurity and multiway splits on attribute values.
type Tree struct {
	root  *treeNode
	attrs int
}

// TrainTree grows a decision tree on the dataset with Boolean labels.
func TrainTree(d *dataset.Dataset, labels []bool, cfg TreeConfig) (*Tree, error) {
	if err := checkTrainingInput(d, labels); err != nil {
		return nil, err
	}
	if cfg.MinSamplesSplit < 2 {
		cfg.MinSamplesSplit = 2
	}
	if cfg.MaxFeatures > 0 && cfg.Rand == nil {
		return nil, fmt.Errorf("classifier: MaxFeatures set without Rand")
	}
	idx := make([]int, d.NumRows())
	for i := range idx {
		idx[i] = i
	}
	used := make([]bool, d.NumAttrs())
	t := &Tree{attrs: d.NumAttrs()}
	t.root = growTree(d, labels, idx, used, 0, cfg)
	return t, nil
}

// Predict implements Classifier.
func (t *Tree) Predict(row []int32) bool {
	n := t.root
	for n.children != nil {
		child := n.children[row[n.attr]]
		if child == nil {
			// Value unseen on this path during training: fall back to the
			// node's majority.
			return n.leafPred
		}
		n = child
	}
	return n.leafPred
}

func growTree(d *dataset.Dataset, labels []bool, idx []int, used []bool, depth int, cfg TreeConfig) *treeNode {
	pos := 0
	for _, r := range idx {
		if labels[r] {
			pos++
		}
	}
	node := &treeNode{leafPred: 2*pos >= len(idx)}
	if pos == 0 || pos == len(idx) ||
		len(idx) < cfg.MinSamplesSplit ||
		(cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) {
		return node
	}

	candidates := candidateAttrs(d, used, cfg)
	bestAttr, bestGini := -1, math.Inf(1)
	for _, a := range candidates {
		g := splitGini(d, labels, idx, a)
		if g < bestGini-1e-12 {
			bestGini, bestAttr = g, a
		}
	}
	if bestAttr < 0 || bestGini >= nodeGini(pos, len(idx))-1e-12 {
		return node // no improving split
	}

	card := d.Attrs[bestAttr].Cardinality()
	buckets := make([][]int, card)
	for _, r := range idx {
		v := d.Rows[r][bestAttr]
		buckets[v] = append(buckets[v], r)
	}
	node.attr = bestAttr
	node.children = make([]*treeNode, card)
	used[bestAttr] = true
	for v, bucket := range buckets {
		if len(bucket) == 0 {
			continue // unseen value: Predict falls back to node majority
		}
		node.children[v] = growTree(d, labels, bucket, used, depth+1, cfg)
	}
	used[bestAttr] = false
	return node
}

// candidateAttrs lists the attributes eligible for splitting at a node,
// optionally sub-sampled (random forest).
func candidateAttrs(d *dataset.Dataset, used []bool, cfg TreeConfig) []int {
	var avail []int
	for a := 0; a < d.NumAttrs(); a++ {
		if !used[a] && d.Attrs[a].Cardinality() > 1 {
			avail = append(avail, a)
		}
	}
	if cfg.MaxFeatures <= 0 || cfg.MaxFeatures >= len(avail) {
		return avail
	}
	cfg.Rand.Shuffle(len(avail), func(i, j int) { avail[i], avail[j] = avail[j], avail[i] })
	return avail[:cfg.MaxFeatures]
}

func nodeGini(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

// splitGini returns the size-weighted Gini impurity after a multiway
// split on attribute a.
func splitGini(d *dataset.Dataset, labels []bool, idx []int, a int) float64 {
	card := d.Attrs[a].Cardinality()
	count := make([]int, card)
	posCount := make([]int, card)
	for _, r := range idx {
		v := d.Rows[r][a]
		count[v]++
		if labels[r] {
			posCount[v]++
		}
	}
	var g float64
	for v := 0; v < card; v++ {
		if count[v] == 0 {
			continue
		}
		g += float64(count[v]) / float64(len(idx)) * nodeGini(posCount[v], count[v])
	}
	return g
}

// Depth returns the depth of the trained tree (a single leaf has depth 0).
func (t *Tree) Depth() int { return depthOf(t.root) }

func depthOf(n *treeNode) int {
	if n == nil || n.children == nil {
		return 0
	}
	best := 0
	for _, c := range n.children {
		if d := depthOf(c); d > best {
			best = d
		}
	}
	return best + 1
}
