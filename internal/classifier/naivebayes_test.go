package classifier

import (
	"testing"
)

func TestNaiveBayesLearnsLinear(t *testing.T) {
	d, labels := linearDataset(t, 500, 21)
	nb, err := TrainNaiveBayes(d, labels, NaiveBayesConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(labels, PredictAll(nb, d)); acc < 0.98 {
		t.Errorf("naive Bayes accuracy = %v, want >= 0.98", acc)
	}
}

func TestNaiveBayesProbabilities(t *testing.T) {
	d, labels := linearDataset(t, 500, 22)
	nb, err := TrainNaiveBayes(d, labels, NaiveBayesConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range d.Rows[:50] {
		p := nb.PredictProba(row)
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
		if (p >= 0.5) != nb.Predict(row) {
			t.Fatal("Predict inconsistent with PredictProba")
		}
	}
}

func TestNaiveBayesCannotSolveXOR(t *testing.T) {
	// XOR violates conditional independence; naive Bayes must fail,
	// confirming it's a genuinely different model class.
	d, labels := xorDataset(t, 600, 23)
	nb, err := TrainNaiveBayes(d, labels, NaiveBayesConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(labels, PredictAll(nb, d)); acc > 0.7 {
		t.Errorf("naive Bayes XOR accuracy = %v, want near chance", acc)
	}
}

func TestNaiveBayesValidation(t *testing.T) {
	d, labels := linearDataset(t, 10, 24)
	if _, err := TrainNaiveBayes(d, labels[:3], NaiveBayesConfig{}); err == nil {
		t.Error("mismatched labels accepted")
	}
}

func TestNaiveBayesSmoothingHandlesUnseen(t *testing.T) {
	// Train where one (class, value) pair never occurs; prediction on it
	// must not produce -Inf log-probabilities (Laplace smoothing).
	d, labels := linearDataset(t, 200, 25)
	nb, err := TrainNaiveBayes(d, labels, NaiveBayesConfig{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range d.Rows {
		p := nb.PredictProba(row)
		if p != p || p < 0 || p > 1 { // NaN or out of range
			t.Fatalf("unstable probability %v", p)
		}
	}
}
