package classifier

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// xorDataset builds a dataset whose label is the XOR of two binary
// attributes plus noise attributes — learnable by trees/forests/MLPs but
// not by a linear model.
func xorDataset(t testing.TB, n int, seed int64) (*dataset.Dataset, []bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := dataset.NewBuilder("a", "b", "noise1", "noise2")
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		av, bv := rng.Intn(2), rng.Intn(2)
		rec := []string{
			fmt.Sprint(av), fmt.Sprint(bv),
			fmt.Sprint(rng.Intn(3)), fmt.Sprint(rng.Intn(3)),
		}
		if err := b.Add(rec...); err != nil {
			t.Fatal(err)
		}
		labels[i] = av != bv
	}
	d, err := b.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	return d, labels
}

// linearDataset: label depends monotonically on a single attribute.
func linearDataset(t testing.TB, n int, seed int64) (*dataset.Dataset, []bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := dataset.NewBuilder("x", "junk")
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		x := rng.Intn(4)
		if err := b.Add(fmt.Sprint(x), fmt.Sprint(rng.Intn(2))); err != nil {
			t.Fatal(err)
		}
		labels[i] = x >= 2
	}
	d, err := b.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	return d, labels
}

func TestTreeLearnsXOR(t *testing.T) {
	d, labels := xorDataset(t, 400, 1)
	tree, err := TrainTree(d, labels, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(labels, PredictAll(tree, d)); acc < 0.99 {
		t.Errorf("tree XOR accuracy = %v, want ~1", acc)
	}
	if tree.Depth() < 2 {
		t.Errorf("tree depth = %d, want >= 2 for XOR", tree.Depth())
	}
}

func TestTreeDepthLimit(t *testing.T) {
	d, labels := xorDataset(t, 400, 2)
	tree, err := TrainTree(d, labels, TreeConfig{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 1 {
		t.Errorf("depth = %d exceeds MaxDepth 1", tree.Depth())
	}
}

func TestTreeInputValidation(t *testing.T) {
	d, labels := xorDataset(t, 10, 3)
	if _, err := TrainTree(d, labels[:5], TreeConfig{}); err == nil {
		t.Error("mismatched labels accepted")
	}
	empty := &dataset.Dataset{Attrs: d.Attrs}
	if _, err := TrainTree(empty, nil, TreeConfig{}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := TrainTree(d, labels, TreeConfig{MaxFeatures: 2}); err == nil {
		t.Error("MaxFeatures without Rand accepted")
	}
}

func TestTreePredictUnseenValue(t *testing.T) {
	// Train on rows where attribute takes codes {0,1}; predict with a row
	// whose bucket was empty: must fall back to the node majority, not
	// panic. Build domain of 3 values but only use two in training paths.
	b := dataset.NewBuilder("x")
	for _, v := range []string{"0", "0", "0", "1", "1", "2"} {
		if err := b.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	d, err := b.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	labels := []bool{true, true, true, false, false, false}
	// Train only on the first five rows (value 2 never seen).
	sub := d.Subset([]int{0, 1, 2, 3, 4})
	tree, err := TrainTree(sub, labels[:5], TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_ = tree.Predict(d.Rows[5]) // must not panic
}

func TestForestLearnsXORAndBeatsStump(t *testing.T) {
	d, labels := xorDataset(t, 500, 4)
	f, err := TrainForest(d, labels, ForestConfig{NumTrees: 30, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(labels, PredictAll(f, d)); acc < 0.95 {
		t.Errorf("forest XOR accuracy = %v, want >= 0.95", acc)
	}
	if f.NumTrees() != 30 {
		t.Errorf("NumTrees = %d", f.NumTrees())
	}
	p := f.PredictProba(d.Rows[0])
	if p < 0 || p > 1 {
		t.Errorf("PredictProba = %v out of [0,1]", p)
	}
}

func TestForestDeterministicGivenSeed(t *testing.T) {
	d, labels := xorDataset(t, 200, 5)
	f1, err := TrainForest(d, labels, ForestConfig{NumTrees: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := TrainForest(d, labels, ForestConfig{NumTrees: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range d.Rows {
		if f1.Predict(row) != f2.Predict(row) {
			t.Fatalf("row %d: same-seed forests disagree", i)
		}
	}
}

func TestLogisticLearnsLinear(t *testing.T) {
	d, labels := linearDataset(t, 400, 6)
	m, err := TrainLogistic(d, labels, LogisticConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(labels, PredictAll(m, d)); acc < 0.98 {
		t.Errorf("logistic accuracy = %v, want >= 0.98", acc)
	}
	p := m.PredictProba(d.Rows[0])
	if p < 0 || p > 1 {
		t.Errorf("proba = %v", p)
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	d, labels := xorDataset(t, 500, 8)
	m, err := TrainMLP(d, labels, MLPConfig{Hidden: 8, Epochs: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(labels, PredictAll(m, d)); acc < 0.95 {
		t.Errorf("MLP XOR accuracy = %v, want >= 0.95", acc)
	}
}

func TestMLPValidation(t *testing.T) {
	d, labels := xorDataset(t, 20, 9)
	if _, err := TrainMLP(d, labels[:3], MLPConfig{}); err == nil {
		t.Error("mismatched labels accepted")
	}
}

func TestAccuracyAndConfusionRates(t *testing.T) {
	truth := []bool{true, true, false, false}
	pred := []bool{true, false, true, false}
	if got := Accuracy(truth, pred); got != 0.5 {
		t.Errorf("Accuracy = %v, want 0.5", got)
	}
	fpr, fnr := ConfusionRates(truth, pred)
	if fpr != 0.5 || fnr != 0.5 {
		t.Errorf("rates = %v, %v, want 0.5, 0.5", fpr, fnr)
	}
	if got := Accuracy(nil, nil); got != 0 {
		t.Errorf("Accuracy(empty) = %v", got)
	}
	fpr, fnr = ConfusionRates([]bool{true}, []bool{true})
	if fpr != 0 {
		t.Errorf("FPR with empty denominator = %v, want 0", fpr)
	}
}

func TestOneHotEncoder(t *testing.T) {
	d, _ := xorDataset(t, 10, 10)
	e := newOneHotEncoder(d)
	if e.size != 2+2+3+3 {
		t.Fatalf("size = %d, want 10", e.size)
	}
	v := e.encode(d.Rows[0])
	ones := 0
	for _, x := range v {
		if x == 1 {
			ones++
		} else if x != 0 {
			t.Fatalf("non-binary encoding value %v", x)
		}
	}
	if ones != d.NumAttrs() {
		t.Errorf("%d active features, want %d", ones, d.NumAttrs())
	}
}

// Logistic regression cannot solve XOR (sanity check that the models are
// genuinely different in capacity).
func TestLogisticCannotSolveXOR(t *testing.T) {
	d, labels := xorDataset(t, 600, 11)
	m, err := TrainLogistic(d, labels, LogisticConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(labels, PredictAll(m, d)); acc > 0.7 {
		t.Errorf("logistic XOR accuracy = %v; expected near-chance (< 0.7)", acc)
	}
}
