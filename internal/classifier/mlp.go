package classifier

import (
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// MLPConfig controls the multi-layer perceptron used in the user-study
// bias-injection experiment (Sec. 6.6).
type MLPConfig struct {
	Hidden       int     // hidden units, default 16
	Epochs       int     // default 60
	LearningRate float64 // default 0.05
	Seed         int64
}

// MLP is a one-hidden-layer perceptron with tanh activations and a
// sigmoid output, trained by plain backpropagation over one-hot features.
type MLP struct {
	enc *oneHotEncoder
	// w1[h*size+j]: input j -> hidden h; b1[h]; w2[h]: hidden h -> output.
	w1, b1, w2 []float64
	b2         float64
	hidden     int
}

// TrainMLP fits the perceptron with stochastic gradient descent.
func TrainMLP(d *dataset.Dataset, labels []bool, cfg MLPConfig) (*MLP, error) {
	if err := checkTrainingInput(d, labels); err != nil {
		return nil, err
	}
	if cfg.Hidden <= 0 {
		cfg.Hidden = 16
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 60
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.05
	}
	enc := newOneHotEncoder(d)
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &MLP{
		enc:    enc,
		w1:     make([]float64, cfg.Hidden*enc.size),
		b1:     make([]float64, cfg.Hidden),
		w2:     make([]float64, cfg.Hidden),
		hidden: cfg.Hidden,
	}
	scale := 1 / math.Sqrt(float64(enc.size))
	for i := range m.w1 {
		m.w1[i] = rng.NormFloat64() * scale
	}
	for i := range m.w2 {
		m.w2[i] = rng.NormFloat64() / math.Sqrt(float64(cfg.Hidden))
	}

	order := rng.Perm(d.NumRows())
	hid := make([]float64, cfg.Hidden)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		lr := cfg.LearningRate / (1 + 0.02*float64(epoch))
		for _, r := range order {
			row := d.Rows[r]
			p := m.forward(row, hid)
			y := 0.0
			if labels[r] {
				y = 1
			}
			gOut := p - y // dLoss/dz2 for logistic loss
			// Output layer.
			for h := 0; h < m.hidden; h++ {
				gHid := gOut * m.w2[h] * (1 - hid[h]*hid[h]) // tanh'
				m.w2[h] -= lr * gOut * hid[h]
				// Hidden layer: only active one-hot inputs have gradient.
				for a, v := range row {
					j := m.enc.offsets[a] + int(v)
					m.w1[h*m.enc.size+j] -= lr * gHid
				}
				m.b1[h] -= lr * gHid
			}
			m.b2 -= lr * gOut
		}
	}
	return m, nil
}

// forward computes the output probability, storing hidden activations in
// hid (length m.hidden).
func (m *MLP) forward(row []int32, hid []float64) float64 {
	for h := 0; h < m.hidden; h++ {
		z := m.b1[h]
		base := h * m.enc.size
		for a, v := range row {
			z += m.w1[base+m.enc.offsets[a]+int(v)]
		}
		hid[h] = math.Tanh(z)
	}
	z := m.b2
	for h := 0; h < m.hidden; h++ {
		z += m.w2[h] * hid[h]
	}
	return sigmoid(z)
}

// Predict implements Classifier.
func (m *MLP) Predict(row []int32) bool {
	hid := make([]float64, m.hidden)
	return m.forward(row, hid) >= 0.5
}

// PredictProba returns the estimated probability of the positive class.
func (m *MLP) PredictProba(row []int32) float64 {
	hid := make([]float64, m.hidden)
	return m.forward(row, hid)
}
