package classifier

import (
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// LogisticConfig controls logistic-regression training over one-hot
// encoded categorical features.
type LogisticConfig struct {
	Epochs       int     // default 50
	LearningRate float64 // default 0.1
	L2           float64 // ridge penalty, default 1e-4
	Seed         int64
}

// Logistic is an L2-regularized logistic regression classifier.
type Logistic struct {
	enc     *oneHotEncoder
	weights []float64
	bias    float64
	buf     []float64
}

// TrainLogistic fits logistic regression with SGD.
func TrainLogistic(d *dataset.Dataset, labels []bool, cfg LogisticConfig) (*Logistic, error) {
	if err := checkTrainingInput(d, labels); err != nil {
		return nil, err
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 50
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.1
	}
	if cfg.L2 <= 0 {
		cfg.L2 = 1e-4
	}
	enc := newOneHotEncoder(d)
	m := &Logistic{
		enc:     enc,
		weights: make([]float64, enc.size),
		buf:     make([]float64, enc.size),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(d.NumRows())
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		lr := cfg.LearningRate / (1 + 0.05*float64(epoch))
		for _, r := range order {
			row := d.Rows[r]
			p := m.proba(row)
			y := 0.0
			if labels[r] {
				y = 1
			}
			g := p - y
			// One-hot gradient: only the active features move.
			for a, v := range row {
				j := enc.offsets[a] + int(v)
				m.weights[j] -= lr * (g + cfg.L2*m.weights[j])
			}
			m.bias -= lr * g
		}
	}
	return m, nil
}

func (m *Logistic) proba(row []int32) float64 {
	z := m.bias
	for a, v := range row {
		z += m.weights[m.enc.offsets[a]+int(v)]
	}
	return sigmoid(z)
}

// Predict implements Classifier.
func (m *Logistic) Predict(row []int32) bool { return m.proba(row) >= 0.5 }

// PredictProba returns the estimated probability of the positive class.
func (m *Logistic) PredictProba(row []int32) float64 { return m.proba(row) }

func sigmoid(z float64) float64 {
	if z >= 0 {
		e := math.Exp(-z)
		return 1 / (1 + e)
	}
	e := math.Exp(z)
	return e / (1 + e)
}
