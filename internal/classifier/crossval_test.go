package classifier

import (
	"errors"
	"testing"

	"repro/internal/dataset"
)

func TestCrossValPredictionsLearnableSignal(t *testing.T) {
	d, labels := linearDataset(t, 600, 31)
	pred, err := CrossValPredictions(d, labels, 5, 1, func(td *dataset.Dataset, tl []bool) (Classifier, error) {
		return TrainTree(td, tl, TreeConfig{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(labels, pred); acc < 0.95 {
		t.Errorf("out-of-fold accuracy = %v, want >= 0.95 on a learnable signal", acc)
	}
}

// Every row is predicted exactly once, by a model that never saw it:
// with a memorizing trainer and pure-noise labels, out-of-fold accuracy
// must sit near chance (a leaky split would score near 1).
func TestCrossValPredictionsNoLeakage(t *testing.T) {
	d, _ := linearDataset(t, 400, 32)
	// Noise labels uncorrelated with features.
	labels := make([]bool, d.NumRows())
	for i := range labels {
		labels[i] = (i*2654435761)%7 < 3
	}
	pred, err := CrossValPredictions(d, labels, 4, 2, func(td *dataset.Dataset, tl []bool) (Classifier, error) {
		return TrainTree(td, tl, TreeConfig{}) // memorizes what it can
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(labels, pred); acc > 0.75 {
		t.Errorf("out-of-fold accuracy %v on noise labels suggests leakage", acc)
	}
}

func TestCrossValPredictionsValidation(t *testing.T) {
	d, labels := linearDataset(t, 20, 33)
	trainer := func(td *dataset.Dataset, tl []bool) (Classifier, error) {
		return TrainTree(td, tl, TreeConfig{})
	}
	if _, err := CrossValPredictions(d, labels, 1, 1, trainer); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := CrossValPredictions(d, labels, 21, 1, trainer); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := CrossValPredictions(d, labels, 5, 1, nil); err == nil {
		t.Error("nil trainer accepted")
	}
	sentinel := errors.New("boom")
	if _, err := CrossValPredictions(d, labels, 5, 1, func(*dataset.Dataset, []bool) (Classifier, error) {
		return nil, sentinel
	}); !errors.Is(err, sentinel) {
		t.Errorf("trainer error not propagated: %v", err)
	}
}

func TestCrossValPredictionsDeterministic(t *testing.T) {
	d, labels := linearDataset(t, 200, 34)
	trainer := func(td *dataset.Dataset, tl []bool) (Classifier, error) {
		return TrainTree(td, tl, TreeConfig{})
	}
	a, err := CrossValPredictions(d, labels, 5, 9, trainer)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValPredictions(d, labels, 5, 9, trainer)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed cross-validation differs")
		}
	}
}
