package permtest

import (
	"context"
	"math"
	"sort"
	"testing"

	"repro/internal/fpm"
	"repro/internal/stats"
)

// oracleWY is an independent brute-force Westfall–Young implementation
// for tiny n: it enumerates all n! label arrangements with Heap's
// algorithm (a different enumeration order than the engine's Lehmer
// decoding — only the counts must agree), computes every statistic
// through its own cover scan (db.Covers row checks, no CoverIndex), and
// folds raw and step-down exceedance counts the slow, obvious way.
type oracleWY struct {
	rawP, adjP []float64
}

func bruteForceWY(t *testing.T, db *fpm.TxDB, itemsets []fpm.Itemset, pos, neg uint16) oracleWY {
	t.Helper()
	n := db.NumRows()
	m := len(itemsets)

	var posOf, negOf [fpm.MaxClasses]int64
	for c := 0; c < fpm.MaxClasses; c++ {
		if pos&(1<<c) != 0 {
			posOf[c] = 1
		}
		if neg&(1<<c) != 0 {
			negOf[c] = 1
		}
	}
	total := db.TotalTally()
	globalPost := stats.NewPosteriorRate(float64(total.Masked(pos)), float64(total.Masked(neg)))

	statOf := func(labels []uint8) []float64 {
		out := make([]float64, m)
		for i, is := range itemsets {
			var kp, kn int64
			for r := 0; r < n; r++ {
				if db.Covers(r, is) {
					kp += posOf[labels[r]]
					kn += negOf[labels[r]]
				}
			}
			out[i] = stats.WelchTPosterior(stats.NewPosteriorRate(float64(kp), float64(kn)), globalPost)
		}
		return out
	}

	base := append([]uint8(nil), db.Classes...)
	obs := statOf(base)
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		// lint:ignore floatcmp the oracle must replicate the engine's exact tie-break
		if obs[ia] != obs[ib] {
			return obs[ia] > obs[ib]
		}
		return ia < ib
	})

	rawCount := make([]int64, m)
	wyCount := make([]int64, m)
	perms := 0
	score := func(labels []uint8) {
		perms++
		st := statOf(labels)
		for i := range st {
			if st[i] >= obs[i] {
				rawCount[i]++
			}
		}
		u := math.Inf(-1)
		for j := m - 1; j >= 0; j-- {
			if s := st[order[j]]; s > u {
				u = s
			}
			if u >= obs[order[j]] {
				wyCount[j]++
			}
		}
	}

	// Heap's algorithm over the label slice.
	var heap func(k int, a []uint8)
	heap = func(k int, a []uint8) {
		if k == 1 {
			score(a)
			return
		}
		for i := 0; i < k; i++ {
			heap(k-1, a)
			if k%2 == 0 {
				a[i], a[k-1] = a[k-1], a[i]
			} else {
				a[0], a[k-1] = a[k-1], a[0]
			}
		}
	}
	heap(n, base)

	o := oracleWY{rawP: make([]float64, m), adjP: make([]float64, m)}
	den := float64(perms)
	for i := range o.rawP {
		o.rawP[i] = float64(rawCount[i]) / den
	}
	prev := 0.0
	for j := 0; j < m; j++ {
		p := float64(wyCount[j]) / den
		if p < prev {
			p = prev
		}
		prev = p
		o.adjP[order[j]] = p
	}
	return o
}

// TestExhaustiveMatchesBruteForceOracle is the small-N differential
// oracle: the engine's exhaustive mode must reproduce the brute-force
// enumeration's raw and adjusted p-values exactly — bit for bit — on
// several dataset shapes.
func TestExhaustiveMatchesBruteForceOracle(t *testing.T) {
	shapes := []struct {
		seed           int64
		n, attrs, card int
	}{
		{21, 6, 2, 2},
		{22, 7, 3, 2},
		{23, 8, 2, 3},
	}
	for _, s := range shapes {
		db := nullDB(t, s.seed, s.n, s.attrs, s.card)
		itemsets := mine(t, db, 1)
		if len(itemsets) == 0 {
			t.Fatalf("seed %d: no itemsets", s.seed)
		}
		e := newEngine(t, db, itemsets)
		res, err := e.Run(context.Background(), Config{Exhaustive: true, Workers: 4})
		if err != nil {
			t.Fatalf("seed %d: %v", s.seed, err)
		}
		oracle := bruteForceWY(t, db, itemsets, posMask, negMask)

		fact := factorials(s.n)
		if res.Permutations != int(fact[s.n]) {
			t.Fatalf("seed %d: ran %d permutations, want %d", s.seed, res.Permutations, fact[s.n])
		}
		for i := range itemsets {
			if math.Float64bits(res.RawP[i]) != math.Float64bits(oracle.rawP[i]) {
				t.Errorf("seed %d hypothesis %d: raw p %v, oracle %v",
					s.seed, i, res.RawP[i], oracle.rawP[i])
			}
			if math.Float64bits(res.AdjP[i]) != math.Float64bits(oracle.adjP[i]) {
				t.Errorf("seed %d hypothesis %d: adjusted p %v, oracle %v",
					s.seed, i, res.AdjP[i], oracle.adjP[i])
			}
		}
		// The identity arrangement is always enumerated, so every exact
		// p-value is strictly positive and the strongest hypothesis's raw
		// p-value is at least 1/n!.
		for i := range res.RawP {
			if res.RawP[i] < 1/float64(fact[s.n]) {
				t.Errorf("seed %d: exact p %v below 1/n!", s.seed, res.RawP[i])
			}
		}
	}
}
