package permtest

import (
	"math"
	"sync"
)

// permWorker is one pool worker: a private label buffer, decode
// scratch, and exceedance-count accumulators, all allocated once at
// construction and reused for every claimed permutation so the warm
// per-permutation pass allocates nothing.
type permWorker struct {
	e    *Engine
	seed int64
	fact []uint64 // non-nil selects exhaustive Lehmer decoding

	labels   []uint8 // permuted labels, len n
	idxBuf   []int32 // Lehmer decode scratch, len n
	wyCount  []int64 // step-down exceedances, indexed by rank
	rawCount []int64 // raw exceedances, indexed by hypothesis
}

func newPermWorker(e *Engine, seed int64, fact []uint64) *permWorker {
	return &permWorker{
		e:        e,
		seed:     seed,
		fact:     fact,
		labels:   make([]uint8, e.n),
		idxBuf:   make([]int32, e.n),
		wyCount:  make([]int64, e.m),
		rawCount: make([]int64, e.m),
	}
}

// run claims permutation indexes off the shared atomic work index until
// the schedule drains or the context is canceled — the fpm
// parallel-mine worker pattern. Because the shuffle for index b depends
// only on (seed, b), the claim order is irrelevant to the result.
//
// lint:hot
func (w *permWorker) run(r *permRun, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		b := int(r.next.Add(1)) - 1
		if b >= r.total || r.ctx.Err() != nil {
			return
		}
		w.pass(b)
		if r.progress != nil {
			r.progress(int(r.done.Add(1)), r.total)
		}
	}
}

// pass runs one full permutation: relabel, then a single sweep over the
// hypotheses from weakest to strongest observed statistic, maintaining
// the running successive maximum u_j = max over ranks >= j of the
// permuted statistic. u_j >= T_obs at rank j is one step-down (WY)
// exceedance; the per-hypothesis raw exceedance is counted in the same
// sweep. Warm passes are allocation-free: every buffer is reused.
//
// lint:hot
func (w *permWorker) pass(b int) {
	if w.fact != nil {
		w.decode(uint64(b))
	} else {
		w.shuffle(b)
	}
	e := w.e
	u := math.Inf(-1)
	for j := e.m - 1; j >= 0; j-- {
		i := e.order[j]
		stat := e.statOf(int(i), w.labels)
		if stat > u {
			u = stat
		}
		if u >= e.obsT[i] {
			w.wyCount[j]++
		}
		if stat >= e.obsT[i] {
			w.rawCount[i]++
		}
	}
}

// shuffle writes the b-th sampled label permutation into the buffer: a
// Fisher–Yates pass driven by a splitmix64 stream seeded from
// (seed, b), so the draw is a pure function of the permutation index.
//
// lint:hot
func (w *permWorker) shuffle(b int) {
	copy(w.labels, w.e.base)
	rng := splitmix{s: permSeed(w.seed, b)}
	for i := len(w.labels) - 1; i > 0; i-- {
		j := rng.intn(i + 1)
		w.labels[i], w.labels[j] = w.labels[j], w.labels[i]
	}
}

// decode writes the b-th lexicographic arrangement of the base labels
// by factorial-number-system (Lehmer code) decoding, so exhaustive mode
// enumerates each of the n! label orderings exactly once. Index 0 is
// the identity arrangement; its pass therefore always scores one
// exceedance at every rank, which is what makes count/B a valid exact
// p-value.
//
// lint:hot
func (w *permWorker) decode(b uint64) {
	n := len(w.labels)
	for i := range w.idxBuf {
		w.idxBuf[i] = int32(i)
	}
	remaining := n
	for i := 0; i < n; i++ {
		f := w.fact[remaining-1]
		k := int(b / f)
		b %= f
		w.labels[i] = w.e.base[w.idxBuf[k]]
		copy(w.idxBuf[k:], w.idxBuf[k+1:remaining])
		remaining--
	}
}

// splitmix is the splitmix64 generator: tiny state, cheap enough to
// reseed per permutation, which is what decouples the shuffle schedule
// from worker scheduling.
type splitmix struct{ s uint64 }

func (r *splitmix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform draw from [0, n). The modulo bias is bounded
// by n/2^64 — immaterial against Monte-Carlo error at any feasible
// permutation count.
func (r *splitmix) intn(n int) int { return int(r.next() % uint64(n)) }

// permSeed derives the stream seed for permutation b from the engine
// seed: one mixing step over the seed, then one over the permutation
// index, decorrelating consecutive indexes.
func permSeed(seed int64, b int) uint64 {
	r := splitmix{s: uint64(seed)}
	x := r.next()
	r.s = x ^ (uint64(b)+1)*0x9e3779b97f4a7c15
	return r.next()
}
