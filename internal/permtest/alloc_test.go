package permtest

import "testing"

// TestPermutationPassAllocs pins the warm-loop allocation contract: a
// permutation pass — shuffle (sampled) or Lehmer decode (exhaustive)
// plus the full statistic sweep — performs zero heap allocations. All
// buffers are sized once in newPermWorker.
func TestPermutationPassAllocs(t *testing.T) {
	db := nullDB(t, 8, 100, 4, 2)
	e := newEngine(t, db, mine(t, db, 5))
	w := newPermWorker(e, 99, nil)
	var b int
	if got := testing.AllocsPerRun(100, func() {
		w.pass(b)
		b++
	}); got != 0 {
		t.Errorf("sampled pass allocates %v per run, want 0", got)
	}

	dbx := nullDB(t, 9, 8, 3, 2)
	ex := newEngine(t, dbx, mine(t, dbx, 2))
	wx := newPermWorker(ex, 0, factorials(8))
	b = 0
	if got := testing.AllocsPerRun(100, func() {
		wx.pass(b)
		b++
	}); got != 0 {
		t.Errorf("exhaustive pass allocates %v per run, want 0", got)
	}
}

// BenchmarkPermutationPass measures one full permutation: a seeded
// Fisher–Yates shuffle of the labels plus the reverse-rank sweep that
// refolds every hypothesis's tally through the cover index and updates
// the raw and max-T exceedance counts.
func BenchmarkPermutationPass(b *testing.B) {
	db := nullDB(b, 10, 2000, 5, 3)
	e := newEngine(b, db, mine(b, db, 40))
	w := newPermWorker(e, 7, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.pass(i)
	}
}

// BenchmarkWYAdjust measures the step-down adjustment fold alone:
// counts to monotone adjusted p-values for 10k hypotheses.
func BenchmarkWYAdjust(b *testing.B) {
	counts := make([]int64, 10000)
	for i := range counts {
		counts[i] = int64(i % 997)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wyAdjust(counts, 1, 1001)
	}
}
