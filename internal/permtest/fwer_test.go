package permtest

import (
	"fmt"
	"math"
	"testing"
)

// TestFWERControlledOnNull is the seeded family-wise-error simulation:
// across many independent complete-null datasets, a Westfall–Young run
// at alpha = 0.05 should reject *any* hypothesis in at most ~5% of the
// families. The bound is checked with a Monte-Carlo tolerance of three
// binomial standard deviations; on failure the per-seed rejection map is
// printed so the offending draws can be replayed directly.
func TestFWERControlledOnNull(t *testing.T) {
	const (
		seeds = 40
		alpha = 0.05
		perms = 1000
	)
	rejected := make(map[int64]float64) // seed -> min adjusted p of a rejecting family
	hypotheses := 0
	for s := int64(0); s < seeds; s++ {
		db := nullDB(t, 1000+s, 120, 4, 2)
		itemsets := mine(t, db, 8)
		if len(itemsets) == 0 {
			t.Fatalf("seed %d: no hypotheses", s)
		}
		hypotheses += len(itemsets)
		e := newEngine(t, db, itemsets)
		res := run(t, e, Config{Permutations: perms, Seed: s})
		minP := math.Inf(1)
		for _, p := range res.AdjP {
			if p < minP {
				minP = p
			}
		}
		if minP <= alpha {
			rejected[1000+s] = minP
		}
	}
	// Monte-Carlo tolerance: the family rejection indicator is Bernoulli
	// with mean <= alpha under the null, so over `seeds` independent
	// families the count stays within alpha*seeds + 3*sqrt(var) whp.
	limit := alpha*seeds + 3*math.Sqrt(alpha*(1-alpha)*seeds)
	if float64(len(rejected)) > limit {
		var lines string
		for seed, p := range rejected {
			lines += fmt.Sprintf("  seed %d: min adjusted p %v\n", seed, p)
		}
		t.Fatalf("FWER breached: %d/%d null families rejected (limit %.1f, %d hypotheses total):\n%s",
			len(rejected), seeds, limit, hypotheses, lines)
	}
	t.Logf("null families rejected: %d/%d (limit %.1f, %d hypotheses screened)",
		len(rejected), seeds, limit, hypotheses)
}

// TestRawPValuesSuperUniformOnNull checks the marginal estimator is
// valid (super-uniform under the null): pooling raw p-values across
// null families, the empirical CDF at each threshold must not exceed
// the threshold by more than Monte-Carlo noise. Hypotheses within a
// family are dependent, so the tolerance is computed per family, not
// per hypothesis.
func TestRawPValuesSuperUniformOnNull(t *testing.T) {
	const (
		families = 25
		perms    = 400
	)
	thresholds := []float64{0.01, 0.05, 0.1, 0.25, 0.5}
	hits := make([]float64, len(thresholds))
	var total float64
	for s := int64(0); s < families; s++ {
		db := nullDB(t, 2000+s, 100, 3, 2)
		e := newEngine(t, db, mine(t, db, 8))
		res := run(t, e, Config{Permutations: perms, Seed: s})
		for _, p := range res.RawP {
			total++
			for k, thr := range thresholds {
				if p <= thr {
					hits[k]++
				}
			}
		}
	}
	for k, thr := range thresholds {
		rate := hits[k] / total
		// Worst case all hypotheses in a family move together: the
		// effective sample size is the family count.
		tol := 3 * math.Sqrt(thr*(1-thr)/families)
		if rate > thr+tol {
			t.Errorf("P(p <= %.2f) = %.3f exceeds %.2f + %.3f over %d null families",
				thr, rate, thr, tol, families)
		}
	}
}
