package permtest

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fpm"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildDB assembles a TxDB with two outcome classes (0 and 1) from
// explicit attribute rows and binary labels.
func buildDB(t testing.TB, names []string, rows [][]string, labels []bool) *fpm.TxDB {
	t.Helper()
	b := dataset.NewBuilder(names...)
	for _, r := range rows {
		if err := b.Add(r...); err != nil {
			t.Fatal(err)
		}
	}
	b.SortDomains()
	d, err := b.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	classes := make([]uint8, len(labels))
	for i, l := range labels {
		if l {
			classes[i] = 1
		}
	}
	db, err := fpm.NewTxDB(d, classes, 2)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// nullDB draws attributes and labels independently — the complete null:
// no pattern's outcome rate differs from the global one except by
// chance.
func nullDB(t testing.TB, seed int64, n, attrs, card int) *fpm.TxDB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, attrs)
	for i := range names {
		names[i] = fmt.Sprintf("a%d", i)
	}
	rows := make([][]string, n)
	labels := make([]bool, n)
	for r := range rows {
		rows[r] = make([]string, attrs)
		for a := range rows[r] {
			rows[r][a] = fmt.Sprintf("v%d", rng.Intn(card))
		}
		labels[r] = rng.Float64() < 0.3
	}
	return buildDB(t, names, rows, labels)
}

// mine returns the frequent itemsets of db at minCount.
func mine(t testing.TB, db *fpm.TxDB, minCount int64) []fpm.Itemset {
	t.Helper()
	mined, err := fpm.MineWith(context.Background(), fpm.FPGrowth{}, db, minCount)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]fpm.Itemset, len(mined))
	for i, p := range mined {
		out[i] = p.Items
	}
	return out
}

const posMask, negMask = uint16(1 << 1), uint16(1 << 0)

func newEngine(t testing.TB, db *fpm.TxDB, itemsets []fpm.Itemset) *Engine {
	t.Helper()
	e, err := New(db, itemsets, posMask, negMask)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func run(t testing.TB, e *Engine, cfg Config) *Result {
	t.Helper()
	res, err := e.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNewRejectsBadInputs(t *testing.T) {
	db := nullDB(t, 1, 40, 3, 2)
	itemsets := mine(t, db, 2)
	cases := []struct {
		name     string
		pos, neg uint16
	}{
		{"empty pos", 0, 1},
		{"empty neg", 1, 0},
		{"overlapping", 3, 1},
	}
	for _, c := range cases {
		if _, err := New(db, itemsets, c.pos, c.neg); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
	// Masks selecting only classes absent from the data leave the metric
	// undefined globally.
	if _, err := New(db, itemsets, 1<<5, 1<<6); err == nil {
		t.Error("undefined metric: no error")
	}
}

func TestRunDefaultsAndShape(t *testing.T) {
	db := nullDB(t, 2, 50, 3, 2)
	itemsets := mine(t, db, 3)
	e := newEngine(t, db, itemsets)
	res := run(t, e, Config{Permutations: 200, Seed: 9})
	if res.Permutations != 200 || res.Exhaustive {
		t.Fatalf("run shape: %+v", res)
	}
	if len(res.T) != len(itemsets) || len(res.RawP) != len(itemsets) || len(res.AdjP) != len(itemsets) {
		t.Fatalf("misaligned result slices")
	}
	lo, hi := 1.0/201, 1.0
	for i := range itemsets {
		if res.RawP[i] < lo || res.RawP[i] > hi {
			t.Errorf("raw p %v outside [%v, 1]", res.RawP[i], lo)
		}
		if res.AdjP[i] < res.RawP[i]-1e-15 {
			t.Errorf("hypothesis %d: adjusted p %v below raw %v", i, res.AdjP[i], res.RawP[i])
		}
	}
	// Monotonicity along the observed-statistic ranking: a weaker
	// hypothesis never carries a smaller adjusted p-value.
	for j := 1; j < e.m; j++ {
		if res.AdjP[e.order[j]] < res.AdjP[e.order[j-1]] {
			t.Fatalf("adjusted p not monotone at rank %d", j)
		}
	}
}

func TestRunCanceled(t *testing.T) {
	db := nullDB(t, 3, 50, 3, 2)
	e := newEngine(t, db, mine(t, db, 3))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Run(ctx, Config{Permutations: 1000}); err == nil {
		t.Fatal("canceled run returned no error")
	}
}

func TestRunNoHypotheses(t *testing.T) {
	db := nullDB(t, 4, 30, 3, 2)
	e := newEngine(t, db, nil)
	res := run(t, e, Config{Permutations: 50})
	if len(res.AdjP) != 0 || res.Permutations != 50 {
		t.Fatalf("empty engine run: %+v", res)
	}
}

// TestDeterminismAcrossWorkers is the parallel-determinism regression:
// the same seed must give byte-identical p-values regardless of worker
// count, because permutation b's shuffle depends only on (seed, b) and
// integer counts merge by addition.
func TestDeterminismAcrossWorkers(t *testing.T) {
	db := nullDB(t, 5, 80, 4, 3)
	e := newEngine(t, db, mine(t, db, 4))
	base := run(t, e, Config{Permutations: 300, Seed: 42, Workers: 1})
	for _, workers := range []int{2, 3, 7} {
		got := run(t, e, Config{Permutations: 300, Seed: 42, Workers: workers})
		for i := range base.AdjP {
			if math.Float64bits(got.AdjP[i]) != math.Float64bits(base.AdjP[i]) ||
				math.Float64bits(got.RawP[i]) != math.Float64bits(base.RawP[i]) {
				t.Fatalf("workers=%d: hypothesis %d diverged: adj %v vs %v, raw %v vs %v",
					workers, i, got.AdjP[i], base.AdjP[i], got.RawP[i], base.RawP[i])
			}
		}
	}
	// A different seed must actually change the draw (sanity that the
	// determinism above is not vacuous).
	other := run(t, e, Config{Permutations: 300, Seed: 43})
	same := true
	for i := range base.RawP {
		// lint:ignore floatcmp exact comparison is the point: different seeds should differ somewhere
		if base.RawP[i] != other.RawP[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical raw p-values everywhere")
	}
}

// TestGoldenAdjustedPValues pins one fixed spec's full output so any
// change to the shuffle stream, the statistic, or the step-down fold
// shows up as a diff. Regenerate with -update.
func TestGoldenAdjustedPValues(t *testing.T) {
	db := nullDB(t, 11, 60, 4, 3)
	itemsets := mine(t, db, 3)
	e := newEngine(t, db, itemsets)
	res := run(t, e, Config{Permutations: 500, Seed: 7})

	var sb strings.Builder
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i, is := range itemsets {
		fmt.Fprintf(&sb, "%s\t%s\t%s\t%s\n",
			db.Catalog.Format(is), f(res.T[i]), f(res.RawP[i]), f(res.AdjP[i]))
	}
	golden := filepath.Join("testdata", "wy_golden.tsv")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if sb.String() != string(want) {
		t.Errorf("golden mismatch (run with -update to regenerate):\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestWYAdjustMonotoneEnforcement(t *testing.T) {
	// Counts that would produce a non-monotone raw sequence: the
	// enforcement must carry the running maximum forward.
	adj := wyAdjust([]int64{10, 5, 20, 15}, 1, 101)
	want := []float64{11.0 / 101, 11.0 / 101, 21.0 / 101, 21.0 / 101}
	for i := range adj {
		if math.Abs(adj[i]-want[i]) > 1e-15 {
			t.Fatalf("rank %d: adj %v want %v", i, adj[i], want[i])
		}
	}
}

func TestFactorials(t *testing.T) {
	f := factorials(10)
	if f[0] != 1 || f[1] != 1 || f[5] != 120 || f[10] != 3628800 {
		t.Fatalf("factorials: %v", f)
	}
}

// TestExhaustiveDecodeEnumeratesAllArrangements checks the Lehmer
// decoding visits each of the n! arrangements exactly once, and that
// index 0 is the identity arrangement (the property making count/B an
// exact p-value).
func TestExhaustiveDecodeEnumeratesAllArrangements(t *testing.T) {
	labels := []bool{true, false, true, false}
	names := []string{"x"}
	rows := [][]string{{"u"}, {"u"}, {"u"}, {"u"}}
	db := buildDB(t, names, rows, labels)
	e := newEngine(t, db, []fpm.Itemset{{0}})
	w := newPermWorker(e, 0, factorials(4))

	seen := make(map[string]int)
	for b := 0; b < 24; b++ {
		w.decode(uint64(b))
		seen[string(w.labels)]++
	}
	// 4 labels with two duplicated values: 24 arrangements collapse to
	// C(4,2)=6 distinct label vectors, each hit 2!·2! = 4 times.
	if len(seen) != 6 {
		t.Fatalf("distinct label vectors: %d want 6", len(seen))
	}
	for v, c := range seen {
		if c != 4 {
			t.Fatalf("vector %q visited %d times, want 4", v, c)
		}
	}
	w.decode(0)
	for i := range w.labels {
		if w.labels[i] != e.base[i] {
			t.Fatal("index 0 is not the identity arrangement")
		}
	}
}

func TestExhaustiveRejectsLargeN(t *testing.T) {
	db := nullDB(t, 6, MaxExhaustiveRows+1, 2, 2)
	e := newEngine(t, db, mine(t, db, 2))
	if _, err := e.Run(context.Background(), Config{Exhaustive: true}); err == nil {
		t.Fatal("exhaustive run over the row cap returned no error")
	}
}

func TestProgressReachesTotal(t *testing.T) {
	db := nullDB(t, 7, 40, 3, 2)
	e := newEngine(t, db, mine(t, db, 2))
	var last int64
	res, err := e.Run(context.Background(), Config{
		Permutations: 64,
		Workers:      3,
		Progress: func(done, total int) {
			if total != 64 {
				t.Errorf("progress total %d want 64", total)
			}
			last = int64(done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Permutations != 64 || last != 64 {
		t.Fatalf("final progress %d want 64", last)
	}
}
