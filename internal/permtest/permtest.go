// Package permtest implements Westfall–Young max-T permutation testing
// over the Welch statistics of mined itemsets (DESIGN.md §15).
//
// The engine permutes outcome labels only. Itemset covers and supports
// depend on attribute values alone, so a label permutation changes no
// cover: every permutation is one tally re-fold through the flat
// fpm.CoverIndex arena — no re-mining, no allocation on the warm path.
// Per permutation the engine computes every hypothesis's Welch statistic
// under the permuted labels and folds the successive maxima (over the
// hypotheses ranked by observed statistic, weakest to strongest) into
// step-down exceedance counts; those counts become monotone
// family-wise-error-controlling adjusted p-values. Per-hypothesis raw
// exceedance counts are tracked in the same sweep for the
// permutation-FDR variant.
//
// Determinism: permutation b always draws the same label shuffle,
// seeded from (Config.Seed, b), regardless of which worker claims it,
// and per-worker integer counts merge by addition — so results are
// byte-identical across runs and across any worker count.
package permtest

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/fpm"
	"repro/internal/stats"
)

// DefaultPermutations is the sampled-mode permutation count when the
// config leaves it zero.
const DefaultPermutations = 1000

// MaxExhaustiveRows bounds exhaustive enumeration: n! label orderings
// are enumerated, so n must stay tiny (10! ≈ 3.6M is the ceiling).
const MaxExhaustiveRows = 10

// Config shapes one permutation run.
type Config struct {
	// Permutations is the number B of sampled label permutations;
	// DefaultPermutations when <= 0. Ignored in exhaustive mode.
	Permutations int
	// Seed drives the deterministic shuffle stream. The same seed gives
	// byte-identical p-values for any worker count.
	Seed int64
	// Workers bounds the worker pool; runtime.GOMAXPROCS(0) when <= 0.
	Workers int
	// Exhaustive enumerates all n! label orderings instead of sampling;
	// requires n <= MaxExhaustiveRows. Adjusted p-values are then exact
	// (the small-N oracle regime), not Monte-Carlo estimates.
	Exhaustive bool
	// Progress, when non-nil, is called after each completed permutation
	// with (done, total). It may be called concurrently from several
	// workers and must be cheap and non-blocking.
	Progress func(done, total int)
}

// Result carries the permutation outcome, every slice aligned with the
// itemset list the engine was built over.
type Result struct {
	// Permutations is the number of permutations actually run (n! in
	// exhaustive mode); Exhaustive records which estimator applies.
	Permutations int
	Exhaustive   bool
	// T is the observed Welch statistic of each hypothesis.
	T []float64
	// RawP is the per-hypothesis raw permutation p-value: the fraction
	// of permutations whose statistic reaches the observed one. Sampled
	// runs use the add-one estimator (1+count)/(B+1); exhaustive runs
	// count/B exactly (the identity arrangement is enumerated).
	RawP []float64
	// AdjP is the Westfall–Young step-down adjusted p-value, monotone
	// along the observed-statistic ranking. Rejecting AdjP <= alpha
	// controls the family-wise error rate at alpha under the complete
	// null, accounting for the dependence between overlapping itemsets.
	AdjP []float64
}

// Engine is an immutable prepared permutation test: the cover arena,
// the observed statistics and the step-down ranking. Build once with
// New, run any number of times with Run.
type Engine struct {
	covers     *fpm.CoverIndex
	base       []uint8 // observed labels (private copy)
	posOf      [fpm.MaxClasses]int64
	negOf      [fpm.MaxClasses]int64
	globalPost stats.PosteriorRate
	obsT       []float64 // observed statistics, input order
	order      []int32   // hypothesis indexes, descending obsT
	n, m       int
}

// New prepares a permutation test for the given itemsets over db. The
// pos/neg masks select the outcome classes forming the metric's
// positive and negative counts (core.Metric's representation); they
// must be non-empty and disjoint, and the metric must be defined on the
// whole dataset. The label total is permutation-invariant, so the
// global posterior is fixed here once.
func New(db *fpm.TxDB, itemsets []fpm.Itemset, pos, neg uint16) (*Engine, error) {
	if db.NumRows() == 0 {
		return nil, fmt.Errorf("permtest: empty database")
	}
	if pos == 0 || neg == 0 || pos&neg != 0 {
		return nil, fmt.Errorf("permtest: class masks must be non-empty and disjoint (pos=%#x neg=%#x)", pos, neg)
	}
	total := db.TotalTally()
	gp, gn := total.Masked(pos), total.Masked(neg)
	if gp+gn == 0 {
		return nil, fmt.Errorf("permtest: metric undefined on the whole dataset (every outcome ⊥)")
	}
	e := &Engine{
		covers:     fpm.BuildCoverIndex(db, itemsets),
		base:       append([]uint8(nil), db.Classes...),
		globalPost: stats.NewPosteriorRate(float64(gp), float64(gn)),
		n:          db.NumRows(),
		m:          len(itemsets),
	}
	for c := 0; c < fpm.MaxClasses; c++ {
		if pos&(1<<c) != 0 {
			e.posOf[c] = 1
		}
		if neg&(1<<c) != 0 {
			e.negOf[c] = 1
		}
	}
	e.obsT = make([]float64, e.m)
	for i := range e.obsT {
		e.obsT[i] = e.statOf(i, e.base)
	}
	e.order = make([]int32, e.m)
	for i := range e.order {
		e.order[i] = int32(i)
	}
	sort.Slice(e.order, func(a, b int) bool {
		ia, ib := e.order[a], e.order[b]
		// lint:ignore floatcmp exact tie-break on computed sort keys keeps ordering deterministic
		if e.obsT[ia] != e.obsT[ib] {
			return e.obsT[ia] > e.obsT[ib]
		}
		return ia < ib
	})
	return e, nil
}

// Hypotheses returns the number of itemsets under test.
func (e *Engine) Hypotheses() int { return e.m }

// ObservedT returns the observed Welch statistic of hypothesis i.
func (e *Engine) ObservedT(i int) float64 { return e.obsT[i] }

// statOf computes the Welch statistic of hypothesis i under the given
// labels: one sequential fold over the flat cover arena, then the
// posterior comparison against the (permutation-invariant) global rate.
// This is the exact computation core.Result.TStat performs, so observed
// statistics and permuted ones are bit-for-bit comparable.
//
// lint:hot
func (e *Engine) statOf(i int, labels []uint8) float64 {
	var kp, kn int64
	for _, r := range e.covers.Cover(i) {
		c := labels[r]
		kp += e.posOf[c]
		kn += e.negOf[c]
	}
	return stats.WelchTPosterior(stats.NewPosteriorRate(float64(kp), float64(kn)), e.globalPost)
}

// Run executes the permutation schedule across a bounded worker pool.
// Workers claim permutation indexes off a shared atomic work index (the
// fpm parallel-mine pattern) and fold exceedance counts into private
// reusable buffers, merged by addition at the end — deterministic for
// any worker count. A canceled context aborts within one permutation
// per worker and returns an error wrapping ctx.Err().
func (e *Engine) Run(ctx context.Context, cfg Config) (*Result, error) {
	b := cfg.Permutations
	if b <= 0 {
		b = DefaultPermutations
	}
	var fact []uint64
	if cfg.Exhaustive {
		if e.n > MaxExhaustiveRows {
			return nil, fmt.Errorf("permtest: exhaustive enumeration needs <= %d rows, database has %d", MaxExhaustiveRows, e.n)
		}
		fact = factorials(e.n)
		b = int(fact[e.n])
	}
	res := &Result{
		Permutations: b,
		Exhaustive:   cfg.Exhaustive,
		T:            append([]float64(nil), e.obsT...),
		RawP:         make([]float64, e.m),
		AdjP:         make([]float64, e.m),
	}
	if e.m == 0 {
		return res, nil
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > b {
		workers = b
	}

	run := &permRun{ctx: ctx, total: b, progress: cfg.Progress}
	ws := make([]*permWorker, workers)
	var wg sync.WaitGroup
	for i := range ws {
		ws[i] = newPermWorker(e, cfg.Seed, fact)
		wg.Add(1)
		go ws[i].run(run, &wg)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("permtest: run canceled: %w", err)
	}

	wyCount := make([]int64, e.m)
	rawCount := make([]int64, e.m)
	for _, w := range ws {
		for j := 0; j < e.m; j++ {
			wyCount[j] += w.wyCount[j]
			rawCount[j] += w.rawCount[j]
		}
	}
	add, den := 1.0, float64(b)+1
	if cfg.Exhaustive {
		add, den = 0, float64(b)
	}
	for i := 0; i < e.m; i++ {
		res.RawP[i] = (add + float64(rawCount[i])) / den
	}
	for j, p := range wyAdjust(wyCount, add, den) {
		res.AdjP[e.order[j]] = p
	}
	return res, nil
}

// permRun is the shared state of one run: the atomic work index workers
// claim permutations from, and the completion counter feeding Progress.
type permRun struct {
	ctx      context.Context
	total    int
	next     atomic.Int64
	done     atomic.Int64
	progress func(done, total int)
}

// wyAdjust converts per-rank step-down exceedance counts into adjusted
// p-values: the estimator (add+count)/den per rank, then the monotone
// enforcement max over all stronger ranks, so a weaker hypothesis can
// never carry a smaller adjusted p-value than a stronger one.
func wyAdjust(wyCount []int64, add, den float64) []float64 {
	adj := make([]float64, len(wyCount))
	prev := 0.0
	for j, c := range wyCount {
		p := (add + float64(c)) / den
		if p < prev {
			p = prev
		}
		prev = p
		adj[j] = p
	}
	return adj
}

// factorials returns [0!, 1!, ..., n!]; n <= MaxExhaustiveRows keeps
// every entry well inside uint64.
func factorials(n int) []uint64 {
	f := make([]uint64, n+1)
	f[0] = 1
	for i := 1; i <= n; i++ {
		f[i] = f[i-1] * uint64(i)
	}
	return f
}
