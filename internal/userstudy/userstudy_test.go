package userstudy

import (
	"math/rand"
	"strings"
	"testing"
)

func TestScoreSelection(t *testing.T) {
	target := newPattern("age=>45", "charge=M")
	hit, partial := scoreSelection([]pattern{newPattern("charge=M", "age=>45")}, target)
	if !hit {
		t.Error("exact selection not scored as hit")
	}
	hit, partial = scoreSelection([]pattern{newPattern("age=>45")}, target)
	if hit || !partial {
		t.Errorf("single item scored hit=%v partial=%v, want partial only", hit, partial)
	}
	hit, partial = scoreSelection([]pattern{newPattern("race=Cauc")}, target)
	if hit || partial {
		t.Error("unrelated selection scored")
	}
	// A superset pattern is neither hit nor partial under the paper's
	// metric definitions.
	hit, partial = scoreSelection([]pattern{newPattern("age=>45", "charge=M", "sex=Male")}, target)
	if hit || partial {
		t.Error("superset scored")
	}
}

func TestSimulateUserProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cands := []pattern{
		newPattern("a=1"), newPattern("b=1"), newPattern("c=1"),
		newPattern("d=1"), newPattern("e=1"), newPattern("f=1"),
	}
	sel := simulateUser(rng, cands, 5)
	if len(sel) != 5 {
		t.Fatalf("selected %d, want 5", len(sel))
	}
	seen := map[string]bool{}
	for _, s := range sel {
		if seen[s.String()] {
			t.Error("duplicate selection")
		}
		seen[s.String()] = true
	}
	// Fewer candidates than k: all returned.
	sel = simulateUser(rng, cands[:2], 5)
	if len(sel) != 2 {
		t.Errorf("selected %d from 2 candidates", len(sel))
	}
	if got := simulateUser(rng, nil, 5); got != nil {
		t.Errorf("selection from empty list = %v", got)
	}
	// Rank weighting: over many trials, the first candidate is selected
	// first most often.
	firstCount := 0
	for i := 0; i < 300; i++ {
		s := simulateUser(rng, cands, 1)
		if s[0].equal(cands[0]) {
			firstCount++
		}
	}
	if firstCount < 90 {
		t.Errorf("top candidate picked first only %d/300 times", firstCount)
	}
}

func TestRunStudyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full study is expensive")
	}
	res, err := Run(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 4 {
		t.Fatalf("groups = %d, want 4", len(res.Groups))
	}
	byGroup := map[Group]GroupResult{}
	for _, g := range res.Groups {
		byGroup[g.Group] = g
		if g.Users <= 0 || g.Hits+g.PartialHits > g.Users {
			t.Errorf("%s: inconsistent counts %+v", g.Group, g)
		}
	}
	div := byGroup[GroupDivExplorer]
	// The injected pattern must appear in DivExplorer's candidate list —
	// the tool-quality claim underlying Fig. 12.
	found := false
	for _, c := range div.Candidates {
		if c == res.InjectedPattern {
			found = true
		}
	}
	if !found {
		t.Errorf("DivExplorer candidates %v lack injected pattern %q",
			div.Candidates, res.InjectedPattern)
	}
	// Ordering claim of Fig. 12: DivExplorer's combined hit rate tops all
	// other groups, and its full-hit rate is the highest.
	for _, g := range res.Groups {
		if g.Group == GroupDivExplorer {
			continue
		}
		if g.HitRate() > div.HitRate() {
			t.Errorf("%s full-hit rate %v exceeds DivExplorer %v",
				g.Group, g.HitRate(), div.HitRate())
		}
	}
	if div.HitRate() < 0.5 {
		t.Errorf("DivExplorer hit rate = %v, want >= 0.5", div.HitRate())
	}
	// Slice Finder under defaults prunes before the pair: mostly partial.
	sf := byGroup[GroupSliceFinder]
	if sf.HitRate() > div.HitRate() {
		t.Errorf("SliceFinder hit rate %v above DivExplorer %v", sf.HitRate(), div.HitRate())
	}
}

func TestGroupString(t *testing.T) {
	cases := map[Group]string{
		GroupControl:     "control",
		GroupDivExplorer: "DivExplorer",
		GroupSliceFinder: "SliceFinder",
		GroupLIME:        "LIME",
		Group(9):         "group9",
	}
	for g, want := range cases {
		if got := g.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(g), got, want)
		}
	}
}

func TestPatternHelpers(t *testing.T) {
	p := newPattern("b=2", "a=1")
	if p.String() != "a=1, b=2" {
		t.Errorf("String = %q", p.String())
	}
	if !p.equal(newPattern("a=1", "b=2")) {
		t.Error("equal failed on permuted construction")
	}
	if p.equal(newPattern("a=1")) {
		t.Error("equal matched different lengths")
	}
	if !strings.Contains(p.String(), ", ") {
		t.Error("String missing separator")
	}
}

func TestRunReplicated(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated study is expensive")
	}
	res, err := RunReplicated(Config{Seed: 11, UsersPerGroup: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Groups {
		if g.Users != 15 {
			t.Errorf("%s users = %d, want 15 (3 replicates x 5)", g.Group, g.Users)
		}
		if g.Hits+g.PartialHits > g.Users {
			t.Errorf("%s counts inconsistent: %+v", g.Group, g)
		}
	}
	// The headline ordering must survive averaging: DivExplorer leads
	// full hits.
	var div, sf GroupResult
	for _, g := range res.Groups {
		switch g.Group {
		case GroupDivExplorer:
			div = g
		case GroupSliceFinder:
			sf = g
		}
	}
	if div.HitRate() <= sf.HitRate() {
		t.Errorf("replicated DivExplorer hit rate %v not above SliceFinder %v",
			div.HitRate(), sf.HitRate())
	}
	if _, err := RunReplicated(Config{}, 0); err == nil {
		t.Error("n=0 accepted")
	}
}
