// Package userstudy reproduces the controlled experiment of Sec. 6.6:
// bias is injected into a COMPAS training subgroup ({age>45, charge=M} —
// all outcomes changed to "recidivate"), a multi-layer perceptron is
// trained on the modified data, and the misclassifications of the biased
// model on an unmodified test set are analyzed with DivExplorer, Slice
// Finder and LIME.
//
// The original study measured how well 35 undergraduate participants
// identified the injected subgroup from each tool's output. Human
// participants cannot be part of a library, so this package substitutes
// simulated respondents: each tool's REAL output is turned into a ranked
// candidate-pattern list (the information a participant would scan), and
// a simulated user samples five candidates with rank-weighted noise, as
// documented in DESIGN.md §4. Hits and partial hits are scored exactly
// as in the paper: a hit selects the injected itemset itself, a partial
// hit selects one of its two items alone.
package userstudy

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/fpm"
	"repro/internal/lime"
	"repro/internal/slicefinder"
)

// Group identifies one arm of the study.
type Group int

// Study arms, matching the paper's groups 1-4.
const (
	GroupControl Group = iota + 1 // random (mis)classified examples only
	GroupDivExplorer
	GroupSliceFinder
	GroupLIME
)

func (g Group) String() string {
	switch g {
	case GroupControl:
		return "control"
	case GroupDivExplorer:
		return "DivExplorer"
	case GroupSliceFinder:
		return "SliceFinder"
	case GroupLIME:
		return "LIME"
	default:
		return fmt.Sprintf("group%d", int(g))
	}
}

// Config parameterizes the study.
type Config struct {
	Seed int64
	// UsersPerGroup defaults to 9 (35 participants over 4 groups).
	UsersPerGroup int
	// Support threshold for the DivExplorer arm (paper: 0.05).
	Support float64
	// TestFraction of the data held out for analysis (default 0.3).
	TestFraction float64
	// epochsOverride tunes MLP training in tests; 0 uses the default.
	epochsOverride int
}

func (c *Config) setDefaults() {
	if c.UsersPerGroup <= 0 {
		c.UsersPerGroup = 9
	}
	if c.Support <= 0 {
		c.Support = 0.05
	}
	if c.TestFraction <= 0 {
		c.TestFraction = 0.3
	}
	if c.epochsOverride <= 0 {
		c.epochsOverride = 40
	}
}

// GroupResult aggregates simulated-respondent outcomes for one arm.
type GroupResult struct {
	Group       Group
	Users       int
	Hits        int // selected the injected pattern itself
	PartialHits int // selected exactly one of the two injected items
	// Candidates is the ranked pattern list derived from the tool output
	// (for reporting).
	Candidates []string
}

// HitRate returns the full-hit fraction.
func (g GroupResult) HitRate() float64 { return float64(g.Hits) / float64(g.Users) }

// PartialRate returns the partial-hit fraction (exclusive of full hits).
func (g GroupResult) PartialRate() float64 { return float64(g.PartialHits) / float64(g.Users) }

// Result is the full study outcome.
type Result struct {
	Groups []GroupResult
	// InjectedPattern is the ground-truth biased subgroup.
	InjectedPattern string
	// BiasedAccuracy is the biased model's test accuracy, for context.
	BiasedAccuracy float64
}

// Run executes the study end to end.
func Run(cfg Config) (*Result, error) {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// 1. Data: synthetic COMPAS, split into train and test.
	g := datagen.COMPAS(cfg.Seed + 1)
	n := g.Data.NumRows()
	perm := rng.Perm(n)
	nTest := int(float64(n) * cfg.TestFraction)
	testRows, trainRows := perm[:nTest], perm[nTest:]

	train := g.Data.Subset(trainRows)
	test := g.Data.Subset(testRows)
	trainTruth := make([]bool, len(trainRows))
	for i, r := range trainRows {
		trainTruth[i] = g.Truth[r]
	}
	testTruth := make([]bool, len(testRows))
	for i, r := range testRows {
		testTruth[i] = g.Truth[r]
	}

	// 2. Inject bias: all training instances in {age=>45, charge=M} are
	// labelled recidivist.
	ageIdx := g.Data.AttrIndex("age")
	chargeIdx := g.Data.AttrIndex("charge")
	if ageIdx < 0 || chargeIdx < 0 {
		return nil, fmt.Errorf("userstudy: COMPAS schema missing age/charge")
	}
	injected := 0
	for i := range train.Rows {
		if train.Value(i, ageIdx) == ">45" && train.Value(i, chargeIdx) == "M" {
			trainTruth[i] = true
			injected++
		}
	}
	if injected == 0 {
		return nil, fmt.Errorf("userstudy: no instances matched the injection pattern")
	}

	// 3. Train the biased MLP and classify the unmodified test set.
	mlp, err := classifier.TrainMLP(train, trainTruth, classifier.MLPConfig{
		Hidden: 16, Epochs: cfg.epochsOverride, Seed: cfg.Seed + 2,
	})
	if err != nil {
		return nil, fmt.Errorf("userstudy: training biased model: %w", err)
	}
	testPred := classifier.PredictAll(mlp, test)

	// 4. Tool outputs → ranked candidate lists.
	divCands, err := divExplorerCandidates(test, testTruth, testPred, cfg.Support)
	if err != nil {
		return nil, err
	}
	sfCands, err := sliceFinderCandidates(test, testTruth, mlp)
	if err != nil {
		return nil, err
	}
	limeCands, err := limeCandidates(test, testTruth, testPred, mlp, rng)
	if err != nil {
		return nil, err
	}
	careful, casual := controlCandidates(test, testTruth, testPred, rng)

	// 5. Simulated respondents. Control users are heterogeneous: a
	// minority inspect the shown examples carefully (comparing error and
	// non-error value frequencies), the rest skim raw frequencies — this
	// mirrors the paper's finding that only 20% of group 1 identified the
	// bias from raw examples.
	target := pattern{"age=>45", "charge=M"}
	res := &Result{
		InjectedPattern: target.String(),
		BiasedAccuracy:  classifier.Accuracy(testTruth, testPred),
	}
	for _, arm := range []struct {
		group Group
		cands func(u int) []pattern
		shown []pattern
	}{
		{GroupControl, func(int) []pattern {
			if rng.Float64() < 1.0/3 {
				return careful
			}
			return casual
		}, careful},
		{GroupDivExplorer, func(int) []pattern { return divCands }, divCands},
		{GroupSliceFinder, func(int) []pattern { return sfCands }, sfCands},
		{GroupLIME, func(int) []pattern { return limeCands }, limeCands},
	} {
		gr := GroupResult{Group: arm.group, Users: cfg.UsersPerGroup}
		for _, c := range arm.shown {
			gr.Candidates = append(gr.Candidates, c.String())
		}
		for u := 0; u < cfg.UsersPerGroup; u++ {
			sel := simulateUser(rng, arm.cands(u), 5)
			hit, partial := scoreSelection(sel, target)
			if hit {
				gr.Hits++
			} else if partial {
				gr.PartialHits++
			}
		}
		res.Groups = append(res.Groups, gr)
	}
	return res, nil
}

// RunReplicated repeats the study n times with derived seeds and
// averages the per-group hit and partial-hit counts, reducing the
// variance of any single draw (data split, model initialization,
// simulated-respondent noise). The returned Result carries the summed
// counts with Users scaled accordingly, so HitRate/PartialRate are the
// replication means; Candidates and InjectedPattern come from the first
// replicate.
func RunReplicated(cfg Config, n int) (*Result, error) {
	if n < 1 {
		return nil, fmt.Errorf("userstudy: replication count %d < 1", n)
	}
	var agg *Result
	for rep := 0; rep < n; rep++ {
		c := cfg
		c.Seed = cfg.Seed + int64(rep)*7919
		res, err := Run(c)
		if err != nil {
			return nil, fmt.Errorf("userstudy: replicate %d: %w", rep, err)
		}
		if agg == nil {
			agg = res
			continue
		}
		agg.BiasedAccuracy += res.BiasedAccuracy
		for i := range agg.Groups {
			agg.Groups[i].Users += res.Groups[i].Users
			agg.Groups[i].Hits += res.Groups[i].Hits
			agg.Groups[i].PartialHits += res.Groups[i].PartialHits
		}
	}
	agg.BiasedAccuracy /= float64(n)
	return agg, nil
}

// pattern is a canonical (sorted) list of "attr=value" strings.
type pattern []string

func newPattern(items ...string) pattern {
	p := append(pattern(nil), items...)
	sort.Strings(p)
	return p
}

func (p pattern) String() string {
	out := ""
	for i, s := range p {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out
}

func (p pattern) equal(q pattern) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// scoreSelection implements the paper's metrics: hit if the injected
// itemset is among the selections; partial hit if a selection is exactly
// one of the two injected items.
func scoreSelection(sel []pattern, target pattern) (hit, partial bool) {
	for _, s := range sel {
		if s.equal(target) {
			hit = true
		}
		if len(s) == 1 {
			for _, item := range target {
				if s[0] == item {
					partial = true
				}
			}
		}
	}
	return hit, partial
}

// simulateUser samples k distinct candidates with probability decaying in
// rank (a participant is most likely to report the top items of the
// information shown, with some noise).
func simulateUser(rng *rand.Rand, cands []pattern, k int) []pattern {
	if len(cands) == 0 {
		return nil
	}
	idx := make([]int, len(cands))
	w := make([]float64, len(cands))
	for i := range cands {
		idx[i] = i
		w[i] = math.Exp(-float64(i) / 2.5)
	}
	var out []pattern
	for len(out) < k && len(idx) > 0 {
		var total float64
		for _, i := range idx {
			total += w[i]
		}
		x := rng.Float64() * total
		pick := len(idx) - 1
		for pos, i := range idx {
			x -= w[i]
			if x < 0 {
				pick = pos
				break
			}
		}
		out = append(out, cands[idx[pick]])
		idx = append(idx[:pick], idx[pick+1:]...)
	}
	return out
}

// divExplorerCandidates runs the real DivExplorer pipeline: top FPR- and
// FNR-divergent itemsets (the paper showed the top 6 plus global item
// divergence).
func divExplorerCandidates(test *dataset.Dataset, testTruth, testPred []bool, support float64) ([]pattern, error) {
	classes, err := core.ConfusionClasses(testTruth, testPred)
	if err != nil {
		return nil, err
	}
	db, err := fpm.NewTxDB(test, classes, core.NumConfusionClasses)
	if err != nil {
		return nil, err
	}
	r, err := core.Explore(db, support, core.Options{})
	if err != nil {
		return nil, err
	}
	var out []pattern
	seen := map[string]bool{}
	appendTop := func(rs []core.Ranked) {
		for _, rk := range rs {
			p := newPattern(splitNames(db.Catalog, rk.Items)...)
			if key := p.String(); !seen[key] {
				seen[key] = true
				out = append(out, p)
			}
		}
	}
	// The injected bias turns the subgroup's labels positive in training,
	// so on clean test data the model produces false positives there:
	// FPR divergence leads, FNR shown as well. The top-6 list is the
	// ε-pruned summary (Sec. 3.5) — the tool's intended presentation —
	// so one saturated pattern family cannot crowd out the others.
	appendTop(r.TopKPruned(core.FPR, 0.02, 6, core.ByDivergence))
	appendTop(r.TopKPruned(core.FNR, 0.02, 3, core.ByDivergence))
	// Group 2 was also shown the global item divergence chart; a
	// participant reads its leading items as suspects — alone, and as the
	// combination of the top two.
	global := r.CompareItemDivergence(core.FPR)
	if len(global) >= 2 && db.Catalog.Attr(global[0].Item) != db.Catalog.Attr(global[1].Item) {
		p := newPattern(db.Catalog.Name(global[0].Item), db.Catalog.Name(global[1].Item))
		if key := p.String(); !seen[key] {
			seen[key] = true
			out = append(out, p)
		}
	}
	for i := 0; i < 3 && i < len(global); i++ {
		p := newPattern(db.Catalog.Name(global[i].Item))
		if key := p.String(); !seen[key] {
			seen[key] = true
			out = append(out, p)
		}
	}
	return out, nil
}

// sliceFinderCandidates runs the real Slice Finder baseline with its
// defaults and degree 3, as in the study, on the model's log loss (the
// classifier loss the original tool consumes).
func sliceFinderCandidates(test *dataset.Dataset, testTruth []bool, model *classifier.MLP) ([]pattern, error) {
	proba := make([]float64, test.NumRows())
	for i, row := range test.Rows {
		proba[i] = model.PredictProba(row)
	}
	loss, err := slicefinder.LogLoss(testTruth, proba)
	if err != nil {
		return nil, err
	}
	f, err := slicefinder.New(test, loss, slicefinder.Config{MaxDegree: 3})
	if err != nil {
		return nil, err
	}
	var out []pattern
	for _, s := range f.Find() {
		out = append(out, newPattern(splitNames(f.Catalog(), s.Items)...))
	}
	return out, nil
}

// limeCandidates explains 8 misclassified and 8 correctly classified test
// instances (as shown to group 4) and derives the candidate list a
// participant would: attribute values ranked by aggregate weight over the
// misclassified explanations, with pairs of the top values interleaved
// (a participant combining recurring factors).
func limeCandidates(test *dataset.Dataset, testTruth, testPred []bool, model *classifier.MLP, rng *rand.Rand) ([]pattern, error) {
	e, err := lime.New(test, model.PredictProba, lime.Config{Samples: 400, Seed: rng.Int63()})
	if err != nil {
		return nil, err
	}
	var mis, cor []int
	for i := range testTruth {
		if testTruth[i] != testPred[i] {
			mis = append(mis, i)
		} else {
			cor = append(cor, i)
		}
	}
	rng.Shuffle(len(mis), func(i, j int) { mis[i], mis[j] = mis[j], mis[i] })
	rng.Shuffle(len(cor), func(i, j int) { cor[i], cor[j] = cor[j], cor[i] })
	var misEx []lime.Explanation
	for _, i := range firstN(mis, 8) {
		ex, err := e.Explain(test.Rows[i])
		if err != nil {
			return nil, err
		}
		misEx = append(misEx, ex)
	}
	// Correct explanations are shown too but a participant hunting for
	// error patterns keys on the misclassified stack; we still compute a
	// few to mirror the information volume.
	for _, i := range firstN(cor, 8) {
		if _, err := e.Explain(test.Rows[i]); err != nil {
			return nil, err
		}
	}
	// A participant scanning the stack of per-instance explanations keys
	// on (a) attribute values recurring with large weights and (b) the
	// combinations of the two strongest features within one explanation —
	// the most natural pattern hypothesis LIME output suggests.
	agg := lime.AggregateWeights(misEx)
	pairPat := map[string]pattern{}
	pairWeight := map[string]float64{}
	for _, ex := range misEx {
		if len(ex.Features) >= 2 {
			a, b := ex.Features[0], ex.Features[1]
			if a.Attr != b.Attr {
				p := newPattern(a.Name, b.Name)
				pairPat[p.String()] = p
				pairWeight[p.String()] += math.Abs(a.Weight) + math.Abs(b.Weight)
			}
		}
	}
	type scoredPair struct {
		p pattern
		w float64
	}
	var pairs []scoredPair
	for k, w := range pairWeight {
		pairs = append(pairs, scoredPair{pairPat[k], w})
	}
	sort.Slice(pairs, func(i, j int) bool {
		// lint:ignore floatcmp exact tie-break on computed sort keys keeps ordering deterministic
		if pairs[i].w != pairs[j].w {
			return pairs[i].w > pairs[j].w
		}
		return pairs[i].p.String() < pairs[j].p.String()
	})
	// Singles first (the immediate reading of the aggregate weights),
	// then the loudest top-2 feature pairs: forming combinations is the
	// less obvious second step for a participant, so pairs rank lower.
	var out []pattern
	for rank := 0; rank < len(agg) && rank < 6; rank++ {
		out = append(out, newPattern(agg[rank].Name))
	}
	for rank := 0; rank < len(pairs) && rank < 6; rank++ {
		out = append(out, pairs[rank].p)
	}
	return out, nil
}

// controlCandidates simulates group 1 and returns two candidate lists.
// The careful list compares how often each attribute value appears among
// a small random sample of misclassified examples against a comparable
// sample of correctly classified ones, ranking values (and value pairs)
// most over-represented in the errors. The casual list ranks raw
// frequencies among the misclassified sample only, which is dominated by
// marginally common values and rarely surfaces the bias.
func controlCandidates(test *dataset.Dataset, testTruth, testPred []bool, rng *rand.Rand) (careful, casual []pattern) {
	var mis, cor []int
	for i := range testTruth {
		if testTruth[i] != testPred[i] {
			mis = append(mis, i)
		} else {
			cor = append(cor, i)
		}
	}
	rng.Shuffle(len(mis), func(i, j int) { mis[i], mis[j] = mis[j], mis[i] })
	rng.Shuffle(len(cor), func(i, j int) { cor[i], cor[j] = cor[j], cor[i] })
	misSample := firstN(mis, 16)
	corSample := firstN(cor, 16)

	nameOf := func(r, a int) string {
		return test.Attrs[a].Name + "=" + test.Attrs[a].Values[test.Rows[r][a]]
	}
	misCount := map[string]int{}
	corCount := map[string]int{}
	pairMis := map[string]int{}
	pairPat := map[string]pattern{}
	for _, r := range misSample {
		names := make([]string, test.NumAttrs())
		for a := 0; a < test.NumAttrs(); a++ {
			names[a] = nameOf(r, a)
			misCount[names[a]]++
		}
		for a := 0; a < len(names); a++ {
			for b := a + 1; b < len(names); b++ {
				p := newPattern(names[a], names[b])
				pairPat[p.String()] = p
				pairMis[p.String()]++
			}
		}
	}
	for _, r := range corSample {
		for a := 0; a < test.NumAttrs(); a++ {
			corCount[nameOf(r, a)]++
		}
	}
	type scored struct {
		p    pattern
		lift float64
	}
	var singles []scored
	for name, n := range misCount {
		lift := float64(n) / float64(corCount[name]+1)
		singles = append(singles, scored{newPattern(name), lift})
	}
	sort.Slice(singles, func(i, j int) bool {
		// lint:ignore floatcmp exact tie-break on computed sort keys keeps ordering deterministic
		if singles[i].lift != singles[j].lift {
			return singles[i].lift > singles[j].lift
		}
		return singles[i].p.String() < singles[j].p.String()
	})
	// Pairs among the over-represented singles, ranked by error count.
	topSingle := map[string]bool{}
	for i := 0; i < 4 && i < len(singles); i++ {
		topSingle[singles[i].p[0]] = true
	}
	var pairs []scored
	for k, n := range pairMis {
		p := pairPat[k]
		if topSingle[p[0]] && topSingle[p[1]] {
			pairs = append(pairs, scored{p, float64(n)})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		// lint:ignore floatcmp exact tie-break on computed sort keys keeps ordering deterministic
		if pairs[i].lift != pairs[j].lift {
			return pairs[i].lift > pairs[j].lift
		}
		return pairs[i].p.String() < pairs[j].p.String()
	})
	for i := 0; i < 6 && i < len(singles); i++ {
		careful = append(careful, singles[i].p)
		if i < len(pairs) {
			careful = append(careful, pairs[i].p)
		}
	}

	// Casual inspection: raw value frequency among the errors.
	type counted struct {
		p pattern
		n int
	}
	var freq []counted
	for name, n := range misCount {
		freq = append(freq, counted{newPattern(name), n})
	}
	sort.Slice(freq, func(i, j int) bool {
		if freq[i].n != freq[j].n {
			return freq[i].n > freq[j].n
		}
		return freq[i].p.String() < freq[j].p.String()
	})
	for i := 0; i < 10 && i < len(freq); i++ {
		casual = append(casual, freq[i].p)
	}
	return careful, casual
}

func firstN(xs []int, n int) []int {
	if len(xs) < n {
		return xs
	}
	return xs[:n]
}

func splitNames(cat *fpm.Catalog, is fpm.Itemset) []string {
	out := make([]string, len(is))
	for i, it := range is {
		out[i] = cat.Name(it)
	}
	return out
}
