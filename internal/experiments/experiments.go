// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 6) on the synthetic stand-in datasets, printing
// paper-style tables and ASCII bar charts. Each experiment is registered
// under the paper's identifier (table1..table6, fig1..fig12, sec6.5) and
// is runnable individually via cmd/experiments or as a benchmark in
// bench_test.go. Generated datasets and explorations are cached per
// process so running the full suite stays fast.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/fpm"
)

// Seed fixes all experiment randomness for reproducibility.
const Seed = 2021

// Experiment is one reproducible unit: a table or figure of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer) error
}

var registry []Experiment

func register(id, title string, run func(w io.Writer) error) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns every registered experiment in paper order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return orderOf(out[i].ID) < orderOf(out[j].ID) })
	return out
}

// orderOf fixes the presentation order (tables first is not paper order;
// interleave as the paper does).
func orderOf(id string) int {
	order := []string{
		"table1", "fig1", "table2", "fig2", "table3", "fig3", "fig4",
		"fig5", "table4", "fig6", "fig7", "table5", "fig8", "fig9",
		"table6", "fig10", "fig11", "sec6.5", "fig12",
	}
	for i, x := range order {
		if x == id {
			return i
		}
	}
	return len(order)
}

// ByID finds one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
}

// IDs lists all experiment identifiers in presentation order.
func IDs() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.ID
	}
	return out
}

// ---------------------------------------------------------------------
// Shared dataset/exploration caches.

type analyzed struct {
	gen *datagen.Generated
	db  *fpm.TxDB
	res map[float64]*core.Result
}

var cache = map[string]*analyzed{}

// analyzedDataset returns the (cached) transaction database for one of
// the Table 4 datasets, with confusion-class outcomes.
func analyzedDataset(name string) (*analyzed, error) {
	if a, ok := cache[name]; ok {
		return a, nil
	}
	gen, err := datagen.ByName(name, Seed)
	if err != nil {
		return nil, err
	}
	classes, err := core.ConfusionClasses(gen.Truth, gen.Pred)
	if err != nil {
		return nil, err
	}
	db, err := fpm.NewTxDB(gen.Data, classes, core.NumConfusionClasses)
	if err != nil {
		return nil, err
	}
	a := &analyzed{gen: gen, db: db, res: map[float64]*core.Result{}}
	cache[name] = a
	return a, nil
}

// exploreAt returns the (cached) exploration of a dataset at a support
// threshold.
func exploreAt(name string, minSup float64) (*analyzed, *core.Result, error) {
	a, err := analyzedDataset(name)
	if err != nil {
		return nil, nil, err
	}
	if r, ok := a.res[minSup]; ok {
		return a, r, nil
	}
	r, err := core.Explore(a.db, minSup, core.Options{})
	if err != nil {
		return nil, nil, err
	}
	a.res[minSup] = r
	return a, r, nil
}

// ResetCache clears all cached datasets and explorations (used by the
// runtime benchmarks, which must measure cold runs).
func ResetCache() { cache = map[string]*analyzed{} }
