package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/report"
)

func init() {
	register("table1", "Table 1: example COMPAS patterns with FPR/FNR", runTable1)
	register("table2", "Table 2: top-3 divergent COMPAS patterns per metric (s=0.1)", runTable2)
	register("table3", "Table 3: top corrective items for FPR and FNR on COMPAS", runTable3)
	register("table4", "Table 4: dataset characteristics", runTable4)
	register("table5", "Table 5: top-3 divergent itemsets for FPR and FNR on adult (s=0.05)", runTable5)
	register("table6", "Table 6: top-3 FPR itemsets on adult after redundancy pruning (ε=0.05)", runTable6)
}

// runTable1 reproduces Table 1: a handful of COMPAS patterns with their
// raw FPR or FNR, against the overall rates.
func runTable1(w io.Writer) error {
	a, r, err := exploreAt("COMPAS", 0.05)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "overall FPR = %s (paper: 0.088), overall FNR = %s (paper: 0.698)\n\n",
		report.FormatFloat(r.GlobalRate(core.FPR)), report.FormatFloat(r.GlobalRate(core.FNR))); err != nil {
		return err
	}

	rows := []struct {
		items  []string
		metric core.Metric
		paper  float64
	}{
		{[]string{"age=25-45", "prior=>3", "race=Afr-Am", "sex=Male"}, core.FPR, 0.308},
		{[]string{"age=>45", "race=Cauc"}, core.FNR, 0.929},
		{[]string{"race=Afr-Am", "sex=Male"}, core.FPR, 0.150},
		{[]string{"race=Afr-Am", "sex=Male", "prior=>3"}, core.FPR, 0.267},
		{[]string{"race=Afr-Am", "sex=Male", "prior=0"}, core.FPR, 0.097},
	}
	tbl := report.NewTable("", "Itemset", "Metric", "Rate", "Paper")
	for _, row := range rows {
		is, err := a.db.Catalog.ItemsetByNames(row.items...)
		if err != nil {
			return err
		}
		rk, err := r.Describe(is, row.metric)
		if err != nil {
			if _, err := fmt.Fprintf(w, "(skipping %v: %v)\n", row.items, err); err != nil {
				return err
			}
			continue
		}
		tbl.AddRow(a.db.Catalog.Format(is), row.metric.Name, rk.Rate, row.paper)
	}
	_, err = io.WriteString(w, tbl.String())
	return err
}

// runTable2 reproduces Table 2: top-3 divergent COMPAS patterns for FPR,
// FNR, error rate and accuracy at s = 0.1.
func runTable2(w io.Writer) error {
	a, r, err := exploreAt("COMPAS", 0.1)
	if err != nil {
		return err
	}
	for _, m := range []core.Metric{core.FPR, core.FNR, core.ErrorRate, core.Accuracy} {
		tbl := report.NewTable(fmt.Sprintf("Δ_%s", m.Name), "Itemset", "Sup", "Δ", "t")
		for _, rk := range r.TopK(m, 3, core.ByDivergence) {
			tbl.AddRow(a.db.Catalog.Format(rk.Items), rk.Support, rk.Divergence, rk.T)
		}
		if _, err := io.WriteString(w, tbl.String()+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// runTable3 reproduces Table 3: strongest corrective items for FPR and
// FNR divergence on COMPAS.
func runTable3(w io.Writer) error {
	a, r, err := exploreAt("COMPAS", 0.05)
	if err != nil {
		return err
	}
	for _, m := range []core.Metric{core.FPR, core.FNR} {
		tbl := report.NewTable(fmt.Sprintf("%s corrective items", m.Name),
			"I", "corr. item", "Δ(I)", "Δ(I∪α)", "c_f", "t")
		for _, c := range r.TopCorrective(m, 3, 2.0) {
			tbl.AddRow(a.db.Catalog.Format(c.Base), a.db.Catalog.Name(c.Item),
				c.BaseDiv, c.ExtDiv, c.Factor, c.T)
		}
		if _, err := io.WriteString(w, tbl.String()+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// runTable4 reproduces Table 4: dataset characteristics of all six
// generators, against the paper's published cardinalities.
func runTable4(w io.Writer) error {
	paper := map[string][2]int{
		"adult": {45222, 11}, "bank": {11162, 15}, "COMPAS": {6172, 6},
		"german": {1000, 21}, "heart": {296, 13}, "artificial": {50000, 10},
	}
	tbl := report.NewTable("", "dataset", "|D|", "|A|", "paper |D|", "paper |A|")
	for _, name := range datagen.Names() {
		a, err := analyzedDataset(name)
		if err != nil {
			return err
		}
		p := paper[name]
		tbl.AddRow(name, a.gen.Data.NumRows(), a.gen.Data.NumAttrs(), p[0], p[1])
	}
	_, err := io.WriteString(w, tbl.String())
	return err
}

// runTable5 reproduces Table 5: top-3 divergent adult itemsets for FPR
// and FNR at s = 0.05.
func runTable5(w io.Writer) error {
	a, r, err := exploreAt("adult", 0.05)
	if err != nil {
		return err
	}
	for _, m := range []core.Metric{core.FPR, core.FNR} {
		tbl := report.NewTable(fmt.Sprintf("Δ_%s", m.Name), "Itemset", "Sup", "Δ", "t")
		for _, rk := range r.TopK(m, 3, core.ByDivergence) {
			tbl.AddRow(a.db.Catalog.Format(rk.Items), rk.Support, rk.Divergence, rk.T)
		}
		if _, err := io.WriteString(w, tbl.String()+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// runTable6 reproduces Table 6: top-3 FPR-divergent adult itemsets after
// redundancy pruning with ε = 0.05, plus the itemset-count reduction the
// paper reports (4534 → 40).
func runTable6(w io.Writer) error {
	a, r, err := exploreAt("adult", 0.05)
	if err != nil {
		return err
	}
	const eps = 0.05
	tbl := report.NewTable("pruned Δ_FPR (ε=0.05)", "Itemset", "Sup", "Δ", "t")
	for _, rk := range r.TopKPruned(core.FPR, eps, 3, core.ByDivergence) {
		tbl.AddRow(a.db.Catalog.Format(rk.Items), rk.Support, rk.Divergence, rk.T)
	}
	if _, err := io.WriteString(w, tbl.String()); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "\nitemsets: %d total -> %d after pruning (paper: 4534 -> 40)\n",
		r.NumPatterns(), r.PrunedCount(core.FPR, eps))
	return err
}
