package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper must be registered.
	want := []string{
		"table1", "table2", "table3", "table4", "table5", "table6",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "sec6.5",
	}
	ids := map[string]bool{}
	for _, e := range All() {
		ids[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, w := range want {
		if !ids[w] {
			t.Errorf("experiment %s not registered", w)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("registered %d experiments, want %d", len(ids), len(want))
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("table2")
	if err != nil || e.ID != "table2" {
		t.Errorf("ByID(table2) = %v, %v", e.ID, err)
	}
	if _, err := ByID("table99"); err == nil {
		t.Error("unknown id accepted")
	}
	if got := len(IDs()); got != len(All()) {
		t.Errorf("IDs() length %d != All() length %d", got, len(All()))
	}
}

// Fast experiments must run cleanly and produce non-trivial output. The
// expensive sweeps (fig6, fig7 over german at s=0.01; fig4/sec6.5 over
// the 50k-row artificial dataset) are exercised by the benchmarks and in
// non-short mode.
func TestFastExperimentsRun(t *testing.T) {
	fast := []string{"table1", "table2", "table3", "table4", "table5", "table6",
		"fig1", "fig2", "fig3", "fig5", "fig8", "fig9", "fig10", "fig11", "fig12"}
	for _, id := range fast {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.Run(&buf); err != nil {
			t.Errorf("%s failed: %v", id, err)
			continue
		}
		if buf.Len() < 50 {
			t.Errorf("%s produced only %d bytes", id, buf.Len())
		}
	}
}

func TestSlowExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiments skipped in short mode")
	}
	for _, id := range []string{"fig4", "sec6.5"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.Run(&buf); err != nil {
			t.Errorf("%s failed: %v", id, err)
		}
	}
}

// Reproduction assertions: the headline claims of the paper hold on the
// synthetic data.
func TestTable2TopPatternShape(t *testing.T) {
	a, r, err := exploreAt("COMPAS", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	top := r.TopK(core.FPR, 1, core.ByDivergence)
	if len(top) == 0 {
		t.Fatal("no FPR pattern")
	}
	label := a.db.Catalog.Format(top[0].Items)
	for _, want := range []string{"prior=>3", "race=Afr-Am"} {
		if !strings.Contains(label, want) {
			t.Errorf("top FPR pattern %q missing item %s", label, want)
		}
	}
	// Divergence magnitude comparable to the paper's 0.22.
	if top[0].Divergence < 0.12 || top[0].Divergence > 0.35 {
		t.Errorf("top FPR divergence %v far from paper's 0.22", top[0].Divergence)
	}
	topFNR := r.TopK(core.FNR, 1, core.ByDivergence)
	if len(topFNR) == 0 || topFNR[0].Divergence < 0.12 {
		t.Errorf("FNR top divergence %v too small vs paper's 0.236", topFNR[0].Divergence)
	}
}

func TestTable6PruningShape(t *testing.T) {
	_, r, err := exploreAt("adult", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	before := r.NumPatterns()
	after := r.PrunedCount(core.FPR, 0.05)
	// The paper reports 4534 -> 40: a two-orders-of-magnitude collapse.
	if after == 0 || before/after < 20 {
		t.Errorf("pruning %d -> %d lacks the paper's collapse", before, after)
	}
	top := r.TopKPruned(core.FPR, 0.05, 1, core.ByDivergence)
	if len(top) == 0 {
		t.Fatal("no pruned pattern")
	}
	// The paper's top pruned pattern is (status=Married, occup=Prof).
	a, err := analyzedDataset("adult")
	if err != nil {
		t.Fatal(err)
	}
	label := a.db.Catalog.Format(top[0].Items)
	if !strings.Contains(label, "status=Married") {
		t.Errorf("top pruned pattern %q does not feature status=Married", label)
	}
}

// Figure 9's key observation: on adult, edu=Masters has top-tier
// individual FPR divergence but markedly lower global divergence.
func TestFigure9MastersInversion(t *testing.T) {
	a, r, err := exploreAt("adult", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cmp := r.CompareItemDivergence(core.FPR)
	masters, err := a.db.Catalog.ItemByName("edu=Masters")
	if err != nil {
		t.Fatal(err)
	}
	globalRank, indRank := -1, -1
	// Rank positions among the top-12 global items (as the figure shows).
	top := cmp
	if len(top) > 12 {
		top = top[:12]
	}
	byInd := append([]core.ItemDivergenceComparison(nil), top...)
	for i := 1; i < len(byInd); i++ {
		for j := i; j > 0 && byInd[j].Individual > byInd[j-1].Individual; j-- {
			byInd[j], byInd[j-1] = byInd[j-1], byInd[j]
		}
	}
	for i, c := range top {
		if c.Item == masters {
			globalRank = i
		}
	}
	for i, c := range byInd {
		if c.Item == masters {
			indRank = i
		}
	}
	if globalRank < 0 || indRank < 0 {
		t.Skip("edu=Masters not among the top-12 global items in this draw")
	}
	if !(indRank < globalRank) {
		t.Errorf("edu=Masters ranks: individual %d, global %d; want the paper's inversion (individual rank better)",
			indRank, globalRank)
	}
}

// Figure 4's headline on the artificial dataset: the six a/b/c items top
// the global ranking with a clear margin over every other item.
func TestFigure4GlobalSeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-row artificial dataset")
	}
	_, r, err := exploreAt("artificial", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	a, err := analyzedDataset("artificial")
	if err != nil {
		t.Fatal(err)
	}
	cmp := r.CompareItemDivergence(core.FPR)
	abc := map[string]bool{"a": true, "b": true, "c": true}
	for i, c := range cmp {
		attr := a.db.Catalog.AttrName(a.db.Catalog.Attr(c.Item))
		if i < 6 && !abc[attr] {
			t.Errorf("rank %d global item is %s, want an a/b/c item",
				i, a.db.Catalog.Name(c.Item))
		}
		if i >= 6 && abc[attr] {
			t.Errorf("a/b/c item %s fell to rank %d", a.db.Catalog.Name(c.Item), i)
		}
	}
	// Margin: weakest a/b/c global divergence at least 5x the strongest
	// non-abc item.
	if len(cmp) > 6 && cmp[5].Global < 5*cmp[6].Global {
		t.Errorf("separation too weak: %v vs %v", cmp[5].Global, cmp[6].Global)
	}
}
