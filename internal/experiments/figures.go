package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/discretize"
	"repro/internal/fpm"
	"repro/internal/lattice"
	"repro/internal/report"
	"repro/internal/userstudy"
)

func init() {
	register("fig1", "Figure 1: individual FPR divergence of prior under 3- vs 6-interval discretization (s=0.05)", runFig1)
	register("fig2", "Figure 2: local Shapley contributions for the most divergent COMPAS patterns (s=0.1)", runFig2)
	register("fig3", "Figure 3: an itemset with a negative (corrective) item contribution", runFig3)
	register("fig4", "Figure 4: global vs individual FPR item divergence on artificial (s=0.01)", runFig4)
	register("fig5", "Figure 5: global vs individual FPR item divergence on COMPAS (s=0.1)", runFig5)
	register("fig6", "Figure 6: execution time vs minimum support threshold", runFig6)
	register("fig7", "Figure 7: number of frequent itemsets vs minimum support threshold", runFig7)
	register("fig8", "Figure 8: local Shapley contributions for the top adult patterns (s=0.05)", runFig8)
	register("fig9", "Figure 9: global vs individual FPR item divergence on adult, top 12 (s=0.05)", runFig9)
	register("fig10", "Figure 10: itemset count vs redundancy-pruning threshold ε (COMPAS & adult)", runFig10)
	register("fig11", "Figure 11: lattice with corrective phenomenon (adult FNR)", runFig11)
	register("fig12", "Figure 12: user study — hit rates per tool", runFig12)
}

// runFig1 re-discretizes the raw COMPAS prior counts at two
// granularities and shows the individual FPR divergence per interval;
// finer intervals never hide divergence (Property 3.1).
func runFig1(w io.Writer) error {
	gen, raw := datagen.COMPASWithPriors(Seed)
	classes, err := core.ConfusionClasses(gen.Truth, gen.Pred)
	if err != nil {
		return err
	}
	for _, variant := range []struct {
		name string
		cuts []float64
	}{
		{"(a) 3 intervals", []float64{0, 3}},
		{"(b) 6 intervals", []float64{0, 1, 3, 5, 7}},
	} {
		binner, err := discretize.NewCutPoints(variant.cuts)
		if err != nil {
			return err
		}
		// Rebuild the dataset with prior re-discretized from raw counts.
		names := make([]string, gen.Data.NumAttrs())
		for i := range gen.Data.Attrs {
			names[i] = gen.Data.Attrs[i].Name
		}
		priorIdx := gen.Data.AttrIndex("prior")
		b := newBuilderFrom(gen.Data, names)
		rec := make([]string, len(names))
		for r := range gen.Data.Rows {
			for j := range names {
				if j == priorIdx {
					rec[j] = binner.Bin(raw[r])
				} else {
					rec[j] = gen.Data.Value(r, j)
				}
			}
			if err := b.Add(rec...); err != nil {
				return err
			}
		}
		b.SortDomains()
		d, err := b.Dataset()
		if err != nil {
			return err
		}
		db, err := fpm.NewTxDB(d, classes, core.NumConfusionClasses)
		if err != nil {
			return err
		}
		res, err := core.Explore(db, 0.05, core.Options{})
		if err != nil {
			return err
		}
		chart := report.NewBarChart(variant.name + " — individual Δ_FPR of prior items")
		ind := res.IndividualDivergence(core.FPR)
		// Chart the prior items in bin order.
		pIdx := d.AttrIndex("prior")
		for v := 0; v < d.Attrs[pIdx].Cardinality(); v++ {
			it := db.Catalog.ItemFor(pIdx, int32(v))
			if div, ok := ind[it]; ok && !math.IsNaN(div) {
				chart.Add(db.Catalog.Name(it), div)
			}
		}
		if _, err := io.WriteString(w, chart.String()+"\n"); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintln(w, "paper: splitting prior>3 exposes a finer interval (>7) with greater divergence")
	return err
}

// runFig2 shows the local Shapley decomposition of the most FPR- and
// FNR-divergent COMPAS patterns at s = 0.1.
func runFig2(w io.Writer) error {
	return shapleyOfTopPatterns(w, "COMPAS", 0.1)
}

// runFig8 is the adult analogue of Figure 2 at s = 0.05.
func runFig8(w io.Writer) error {
	return shapleyOfTopPatterns(w, "adult", 0.05)
}

func shapleyOfTopPatterns(w io.Writer, name string, s float64) error {
	a, r, err := exploreAt(name, s)
	if err != nil {
		return err
	}
	for _, m := range []core.Metric{core.FPR, core.FNR} {
		top := r.TopK(m, 1, core.ByDivergence)
		if len(top) == 0 {
			return fmt.Errorf("no %s-divergent pattern", m.Name)
		}
		cs, err := r.LocalShapley(top[0].Items, m)
		if err != nil {
			return err
		}
		core.SortContributions(cs)
		chart := report.NewBarChart(fmt.Sprintf("top Δ_%s pattern: %s (Δ=%s)",
			m.Name, a.db.Catalog.Format(top[0].Items), report.FormatFloat(top[0].Divergence)))
		for _, c := range cs {
			chart.Add(a.db.Catalog.Name(c.Item), c.Value)
		}
		if _, err := io.WriteString(w, chart.String()+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// runFig3 finds the strongest corrective pair on COMPAS and shows the
// Shapley decomposition of the corrected itemset, where the corrective
// item receives a negative contribution.
func runFig3(w io.Writer) error {
	a, r, err := exploreAt("COMPAS", 0.05)
	if err != nil {
		return err
	}
	corr := r.TopCorrective(core.FPR, 1, 2.0)
	if len(corr) == 0 {
		return fmt.Errorf("no corrective items found")
	}
	c := corr[0]
	full := c.Base.Union(fpm.Itemset{c.Item})
	cs, err := r.LocalShapley(full, core.FPR)
	if err != nil {
		return err
	}
	core.SortContributions(cs)
	if _, err := fmt.Fprintf(w, "corrective item %s for %s: Δ drops %s -> %s\n\n",
		a.db.Catalog.Name(c.Item), a.db.Catalog.Format(c.Base),
		report.FormatFloat(c.BaseDiv), report.FormatFloat(c.ExtDiv)); err != nil {
		return err
	}
	chart := report.NewBarChart("item contributions to Δ_FPR of " + a.db.Catalog.Format(full))
	negative := false
	for _, x := range cs {
		chart.Add(a.db.Catalog.Name(x.Item), x.Value)
		if x.Item == c.Item && x.Value < 0 {
			negative = true
		}
	}
	if _, err := io.WriteString(w, chart.String()); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "\ncorrective item has negative contribution: %v (paper: yes)\n", negative)
	return err
}

// runFig4 contrasts global and individual FPR item divergence on the
// artificial dataset: only the global measure surfaces a, b, c.
func runFig4(w io.Writer) error {
	return globalVsIndividual(w, "artificial", 0.01, 20)
}

// runFig5 is the COMPAS analogue at s = 0.1.
func runFig5(w io.Writer) error {
	return globalVsIndividual(w, "COMPAS", 0.1, 0)
}

// runFig9 is the adult analogue at s = 0.05, top-12 items by global
// divergence as in the paper.
func runFig9(w io.Writer) error {
	return globalVsIndividual(w, "adult", 0.05, 12)
}

func globalVsIndividual(w io.Writer, name string, s float64, topN int) error {
	a, r, err := exploreAt(name, s)
	if err != nil {
		return err
	}
	cmp := r.CompareItemDivergence(core.FPR)
	if topN > 0 && len(cmp) > topN {
		cmp = cmp[:topN]
	}
	gc := report.NewBarChart("global Δ^g_FPR")
	ic := report.NewBarChart("individual Δ_FPR")
	for _, c := range cmp {
		label := a.db.Catalog.Name(c.Item)
		gc.Add(label, c.Global)
		if !math.IsNaN(c.Individual) {
			ic.Add(label, c.Individual)
		}
	}
	if _, err := io.WriteString(w, gc.String()+"\n"); err != nil {
		return err
	}
	_, err = io.WriteString(w, ic.String())
	return err
}

// Fig6Supports is the support-threshold sweep of Figures 6 and 7.
var Fig6Supports = []float64{0.01, 0.02, 0.05, 0.1, 0.15, 0.2}

// sweepStat records one (dataset, support) measurement shared between
// Figures 6 and 7. Only the scalar statistics are retained; the mined
// patterns themselves (millions for german at s = 0.01) are transient.
type sweepStat struct {
	secs  float64
	count int
}

var sweepCache = map[string]map[float64]sweepStat{}

func sweepAt(name string, s float64) (sweepStat, error) {
	if st, ok := sweepCache[name][s]; ok {
		return st, nil
	}
	a, err := analyzedDataset(name)
	if err != nil {
		return sweepStat{}, err
	}
	secs, count, err := TimeExploration(a.db, s)
	if err != nil {
		return sweepStat{}, err
	}
	if sweepCache[name] == nil {
		sweepCache[name] = map[float64]sweepStat{}
	}
	st := sweepStat{secs: secs, count: count}
	sweepCache[name][s] = st
	return st, nil
}

// runFig6 measures the DivExplorer execution time (mining with tallies +
// divergence + significance of every frequent itemset) per dataset and
// support threshold.
func runFig6(w io.Writer) error {
	tbl := report.NewTable("execution time (seconds)",
		append([]string{"dataset"}, formatSupports()...)...)
	for _, name := range datagen.Names() {
		row := make([]interface{}, 0, len(Fig6Supports)+1)
		row = append(row, name)
		for _, s := range Fig6Supports {
			st, err := sweepAt(name, s)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.3f", st.secs))
		}
		tbl.AddRow(row...)
	}
	if _, err := io.WriteString(w, tbl.String()); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "\npaper (Python/i7): all datasets < 20 s at s >= 0.01 except german (< 150 s)")
	return err
}

// TimeExploration runs one full cold exploration (mining, divergence and
// significance for every frequent itemset) and reports the wall-clock
// seconds and the number of frequent itemsets. Exposed for the Figure 6
// benchmark.
func TimeExploration(db *fpm.TxDB, s float64) (float64, int, error) {
	start := time.Now()
	r, err := core.Explore(db, s, core.Options{})
	if err != nil {
		return 0, 0, err
	}
	// Evaluate divergence and significance for every pattern (the paper
	// includes this in its timing; it reports it as < 7% of the total).
	rs := r.RankAll(core.FPR, core.ByDivergence)
	_ = rs
	return time.Since(start).Seconds(), r.NumPatterns(), nil
}

// runFig7 reports the number of frequent itemsets per dataset and
// support threshold.
func runFig7(w io.Writer) error {
	tbl := report.NewTable("number of frequent itemsets",
		append([]string{"dataset"}, formatSupports()...)...)
	for _, name := range datagen.Names() {
		row := make([]interface{}, 0, len(Fig6Supports)+1)
		row = append(row, name)
		for _, s := range Fig6Supports {
			st, err := sweepAt(name, s)
			if err != nil {
				return err
			}
			row = append(row, st.count)
		}
		tbl.AddRow(row...)
	}
	_, err := io.WriteString(w, tbl.String())
	return err
}

func formatSupports() []string {
	out := make([]string, len(Fig6Supports))
	for i, s := range Fig6Supports {
		out[i] = fmt.Sprintf("s=%g", s)
	}
	return out
}

// runFig10 sweeps the redundancy-pruning threshold ε and reports the
// surviving FPR itemset counts for COMPAS and adult at two supports.
func runFig10(w io.Writer) error {
	epsilons := []float64{0, 0.01, 0.02, 0.03, 0.05, 0.075, 0.1}
	for _, spec := range []struct {
		name     string
		supports []float64
	}{
		{"COMPAS", []float64{0.05, 0.1}},
		{"adult", []float64{0.05, 0.1}},
	} {
		headers := []string{"ε"}
		for _, s := range spec.supports {
			headers = append(headers, fmt.Sprintf("s=%g", s))
		}
		tbl := report.NewTable(spec.name+" — FPR itemsets surviving pruning", headers...)
		for _, eps := range epsilons {
			row := []interface{}{fmt.Sprintf("%g", eps)}
			for _, s := range spec.supports {
				_, r, err := exploreAt(spec.name, s)
				if err != nil {
					return err
				}
				row = append(row, r.PrunedCount(core.FPR, eps))
			}
			tbl.AddRow(row...)
		}
		if _, err := io.WriteString(w, tbl.String()+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// runFig11 renders the lattice of the adult pattern exhibiting the
// strongest FNR corrective phenomenon, with divergence threshold
// T = 0.15, as in the paper's example.
func runFig11(w io.Writer) error {
	a, r, err := exploreAt("adult", 0.05)
	if err != nil {
		return err
	}
	// Pick the strongest corrective pair with a 3-item base, mirroring
	// the structure of the paper's example lattice.
	var chosen *core.Corrective
	for _, c := range r.TopCorrective(core.FNR, 50, 2.0) {
		if len(c.Base) == 3 {
			cc := c
			chosen = &cc
			break
		}
	}
	if chosen == nil {
		return fmt.Errorf("no 3-item corrective base found")
	}
	target := chosen.Base.Union(fpm.Itemset{chosen.Item})
	l, err := lattice.Build(r, target, core.FNR, 0.15)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "corrective item %s for %s: Δ_FNR %s -> %s\n\n",
		a.db.Catalog.Name(chosen.Item), a.db.Catalog.Format(chosen.Base),
		report.FormatFloat(chosen.BaseDiv), report.FormatFloat(chosen.ExtDiv)); err != nil {
		return err
	}
	if _, err := io.WriteString(w, l.ASCII()); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "\nGraphviz DOT:\n%s", l.DOT())
	return err
}

// runFig12 runs the simulated user study and charts hit / partial-hit
// percentages per group, as in Figure 12. Three independent replicates
// of 3 users per group give 36 simulated participants (the paper had
// 35), averaging out split/model/respondent noise.
func runFig12(w io.Writer) error {
	res, err := userstudy.RunReplicated(userstudy.Config{Seed: Seed, UsersPerGroup: 3}, 3)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "injected bias: {%s}; biased model test accuracy %.3f\n\n",
		res.InjectedPattern, res.BiasedAccuracy); err != nil {
		return err
	}
	groups := append([]userstudy.GroupResult(nil), res.Groups...)
	sort.Slice(groups, func(i, j int) bool { return groups[i].Group < groups[j].Group })
	hit := report.NewBarChart("full hit rate")
	part := report.NewBarChart("partial hit rate")
	comb := report.NewBarChart("combined (hit + partial)")
	for _, g := range groups {
		hit.Add(g.Group.String(), g.HitRate())
		part.Add(g.Group.String(), g.PartialRate())
		comb.Add(g.Group.String(), g.HitRate()+g.PartialRate())
	}
	for _, c := range []*report.BarChart{hit, part, comb} {
		if _, err := io.WriteString(w, c.String()+"\n"); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintln(w, "paper: DivExplorer combined 88.9%; Slice Finder mostly partial; LIME 37.5%; control 20%")
	return err
}
