package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/report"
	"repro/internal/slicefinder"
)

func init() {
	register("sec6.5", "Sec. 6.5: DivExplorer vs Slice Finder on the artificial dataset", runSec65)
}

// newBuilderFrom creates a dataset builder with the same attribute names
// as an existing dataset.
func newBuilderFrom(d *dataset.Dataset, names []string) *dataset.Builder {
	return dataset.NewBuilder(names...)
}

// runSec65 reproduces the comparison of Sec. 6.5 on the artificial
// dataset: DivExplorer (s = 0.01) finds the two true degree-3 sources of
// divergence; Slice Finder under default parameters stops at their six
// degree-2 subsets and needs the effect-size threshold raised to ≈ 1.65
// to reach them. Wall-clock times for both tools are reported (the paper
// measured DivExplorer 4.5× faster single-threaded).
func runSec65(w io.Writer) error {
	a, err := analyzedDataset("artificial")
	if err != nil {
		return err
	}

	// DivExplorer at s = 0.01.
	startDiv := time.Now()
	r, err := core.Explore(a.db, 0.01, core.Options{})
	if err != nil {
		return err
	}
	top := r.TopK(core.FPR, 2, core.ByDivergence)
	divSecs := time.Since(startDiv).Seconds()

	tbl := report.NewTable("DivExplorer top-2 Δ_FPR (s=0.01)", "Itemset", "Sup", "Δ", "t")
	for _, rk := range top {
		tbl.AddRow(a.db.Catalog.Format(rk.Items), rk.Support, rk.Divergence, rk.T)
	}
	if _, err := io.WriteString(w, tbl.String()+"\n"); err != nil {
		return err
	}

	// Slice Finder, default parameters (degree 3 as in the paper).
	loss, err := slicefinder.ZeroOneLoss(a.gen.Truth, a.gen.Pred)
	if err != nil {
		return err
	}
	startSF := time.Now()
	f, err := slicefinder.New(a.gen.Data, loss, slicefinder.Config{MaxDegree: 3})
	if err != nil {
		return err
	}
	found := f.Find()
	sfSecs := time.Since(startSF).Seconds()
	tbl = report.NewTable("Slice Finder, default parameters (φ>=0.4, degree<=3)",
		"Slice", "Size", "φ", "t", "degree")
	for _, s := range found {
		tbl.AddRow(f.Catalog().Format(s.Items), s.Size, s.EffectSize, s.T, s.Degree)
	}
	if _, err := io.WriteString(w, tbl.String()+"\n"); err != nil {
		return err
	}

	// Slice Finder with the raised effect-size threshold.
	f165, err := slicefinder.New(a.gen.Data, loss, slicefinder.Config{MaxDegree: 3, EffectSize: 1.65})
	if err != nil {
		return err
	}
	tbl = report.NewTable("Slice Finder, effect size raised to 1.65", "Slice", "Size", "φ", "degree")
	for _, s := range f165.Find() {
		tbl.AddRow(f165.Catalog().Format(s.Items), s.Size, s.EffectSize, s.Degree)
	}
	if _, err := io.WriteString(w, tbl.String()+"\n"); err != nil {
		return err
	}

	ratio := sfSecs / divSecs
	_, err = fmt.Fprintf(w,
		"timing: DivExplorer %.3fs, Slice Finder %.3fs (ratio %.1fx; paper: 4.5x single-threaded)\n",
		divSecs, sfSecs, ratio)
	return err
}
