package registry

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dataset"
)

const csvA = "a,b\nx,1\ny,2\n"

func TestHashCanonicalization(t *testing.T) {
	want := HashBytes([]byte(csvA))
	variants := []string{
		"a,b\r\nx,1\r\ny,2\r\n", // CRLF
		"a,b\nx,1\ny,2",         // no trailing newline
		"a,b\rx,1\ry,2\r",       // bare CR
	}
	for _, v := range variants {
		if got := HashBytes([]byte(v)); got != want {
			t.Errorf("hash(%q) = %s, want %s", v, got, want)
		}
	}
	if HashBytes([]byte("a,b\nx,2\n")) == want {
		t.Error("different content hashed equal")
	}
}

func TestRegisterDedup(t *testing.T) {
	r := New(0)
	e1, existed, err := r.Register([]byte(csvA), dataset.CSVOptions{})
	if err != nil || existed {
		t.Fatalf("first register: entry=%v existed=%v err=%v", e1, existed, err)
	}
	e2, existed, err := r.Register([]byte("a,b\r\nx,1\r\ny,2"), dataset.CSVOptions{})
	if err != nil || !existed {
		t.Fatalf("second register: existed=%v err=%v", existed, err)
	}
	if e1 != e2 {
		t.Error("dedup returned a different entry")
	}
	s := r.Stats()
	if s.Entries != 1 || s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 1 entry, 1 hit, 1 miss", s)
	}
}

func TestGetCountsAndLRU(t *testing.T) {
	r := New(0)
	e, _, err := r.Register([]byte(csvA), dataset.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := r.Get(e.Hash); !ok || got != e {
		t.Fatalf("Get(%s) = %v, %v", e.Hash, got, ok)
	}
	if _, ok := r.Get(Hash("deadbeef")); ok {
		t.Fatal("Get of unknown hash succeeded")
	}
	s := r.Stats()
	if s.Hits != 1 || s.Misses != 2 { // register miss + unknown-hash miss
		t.Errorf("hits=%d misses=%d, want 1 and 2", s.Hits, s.Misses)
	}
}

// uniqueCSV builds a parseable CSV with a distinguishable payload.
func uniqueCSV(i int) []byte {
	return []byte(fmt.Sprintf("a,b\nv%d,%s\n", i, strings.Repeat("x", 64)))
}

func TestEviction(t *testing.T) {
	// Each entry is ~a few hundred bytes; a 1 KiB budget holds only a few.
	r := New(1024)
	var hashes []Hash
	for i := 0; i < 10; i++ {
		e, _, err := r.Register(uniqueCSV(i), dataset.CSVOptions{})
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, e.Hash)
	}
	s := r.Stats()
	if s.Evictions == 0 {
		t.Fatalf("no evictions under a 1 KiB budget: %+v", s)
	}
	if s.Bytes > 1024 && s.Entries > 1 {
		t.Errorf("size %d exceeds budget with %d entries", s.Bytes, s.Entries)
	}
	// The oldest entry must be gone, the newest present.
	if _, ok := r.Get(hashes[0]); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := r.Get(hashes[len(hashes)-1]); !ok {
		t.Error("most recent entry was evicted")
	}
}

func TestEvictionKeepsNewestEvenOverBudget(t *testing.T) {
	r := New(1) // absurdly small: every entry alone exceeds the budget
	e, _, err := r.Register([]byte(csvA), dataset.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(e.Hash); !ok {
		t.Fatal("sole over-budget entry was evicted")
	}
	if _, _, err := r.Register(uniqueCSV(1), dataset.CSVOptions{}); err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if s.Entries != 1 || s.Evictions != 1 {
		t.Errorf("stats = %+v, want exactly the newest entry retained", s)
	}
}

func TestRegisterParseError(t *testing.T) {
	r := New(0)
	if _, _, err := r.Register([]byte("a,b\nonly-one-field\n"), dataset.CSVOptions{}); err == nil {
		t.Fatal("malformed CSV registered without error")
	}
	if s := r.Stats(); s.Entries != 0 {
		t.Errorf("failed parse left %d entries", s.Entries)
	}
}

func TestConcurrentRegister(t *testing.T) {
	r := New(0)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, _, err := r.Register([]byte(csvA), dataset.CSVOptions{})
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if s := r.Stats(); s.Entries != 1 {
		t.Errorf("concurrent identical registers left %d entries", s.Entries)
	}
}
