package registry

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/faultfs"
)

// spilledRegistry builds a small sharded registry with a spill tier in a
// temp dir, tight enough that registering several datasets forces
// evictions through the disk tier.
func spilledRegistry(t *testing.T, memBudget, diskBudget int64, fsys faultfs.FS) (*Registry, *Spill) {
	t.Helper()
	sp, err := OpenSpill(t.TempDir(), diskBudget, fsys)
	if err != nil {
		t.Fatal(err)
	}
	r := NewSharded(memBudget, 4)
	r.AttachSpill(sp, dataset.CSVOptions{})
	return r, sp
}

// spillFiles lists the content addresses with a spill file on disk.
func spillFiles(t *testing.T, dir string) []Hash {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []Hash
	for _, ent := range ents {
		if strings.HasSuffix(ent.Name(), SpillExt) {
			out = append(out, Hash(strings.TrimSuffix(ent.Name(), SpillExt)))
		}
	}
	return out
}

// TestSpillOnEvictServesEveryDataset is the headline ladder property:
// with a spill tier attached, a byte-budget eviction is not data loss —
// every registered dataset remains retrievable, the evicted ones via a
// verified disk load that promotes them back into memory.
func TestSpillOnEvictServesEveryDataset(t *testing.T) {
	r, sp := spilledRegistry(t, 1024, 0, nil)
	const n = 12
	var hashes []Hash
	for i := 0; i < n; i++ {
		e, _, err := r.Register(uniqueCSV(i), dataset.CSVOptions{})
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, e.Hash)
	}
	st := r.Stats()
	if st.Evictions == 0 {
		t.Fatal("budget produced no evictions; test needs a tighter budget")
	}
	if st.Spill == nil || st.Spill.Writes == 0 {
		t.Fatalf("evictions spilled nothing: %+v", st.Spill)
	}
	if got := spillFiles(t, sp.Dir()); len(got) == 0 {
		t.Fatal("no spill files on disk after evictions")
	}
	for i, h := range hashes {
		e, ok := r.Get(h)
		if !ok {
			t.Fatalf("dataset %d (%s) lost after eviction", i, h)
		}
		if e.Hash != h || e.Data.NumRows() != 1 {
			t.Fatalf("dataset %d came back wrong: hash=%s rows=%d", i, e.Hash, e.Data.NumRows())
		}
	}
	st = r.Stats()
	if st.Spill.Loads == 0 {
		t.Error("retrieval loop never fell through to disk")
	}
	// The counter invariant survives the extra tier: every Get and
	// Register charged exactly one of hits/misses.
	lookups := int64(2 * n) // n Registers + n Gets
	if st.Hits+st.Misses != lookups {
		t.Errorf("hits(%d) + misses(%d) = %d, want %d lookups",
			st.Hits, st.Misses, st.Hits+st.Misses, lookups)
	}
}

// TestSpillSurvivesRestart: a fresh registry over the same spill dir
// serves datasets spilled by the previous one — the disk tier is the
// crash-durable rung of the ladder.
func TestSpillSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	sp, err := OpenSpill(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := NewSharded(512, 2)
	r.AttachSpill(sp, dataset.CSVOptions{})
	var hashes []Hash
	for i := 0; i < 8; i++ {
		e, _, err := r.Register(uniqueCSV(i), dataset.CSVOptions{})
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, e.Hash)
	}
	if len(spillFiles(t, dir)) == 0 {
		t.Fatal("nothing spilled before the restart")
	}

	// "Restart": new registry, new spill index over the same directory.
	sp2, err := OpenSpill(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewSharded(0, 2)
	r2.AttachSpill(sp2, dataset.CSVOptions{})
	served := 0
	for _, h := range hashes {
		if e, ok := r2.Get(h); ok {
			if e.Hash != h {
				t.Fatalf("restart served wrong dataset for %s", h)
			}
			served++
		}
	}
	if want := len(spillFiles(t, dir)); served < want {
		t.Errorf("restart served %d datasets, want at least the %d on disk", served, want)
	}
}

// TestSpillChecksumMismatchQuarantines: a spill file whose bytes no
// longer hash to its name is never served — the Get misses, the file
// moves to quarantine/, and the counter records it.
func TestSpillChecksumMismatchQuarantines(t *testing.T) {
	r, sp := spilledRegistry(t, 512, 0, nil)
	for i := 0; i < 8; i++ {
		if _, _, err := r.Register(uniqueCSV(i), dataset.CSVOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	onDisk := spillFiles(t, sp.Dir())
	if len(onDisk) == 0 {
		t.Fatal("nothing spilled")
	}
	victim := onDisk[0]
	if err := os.WriteFile(sp.path(victim), []byte("rotten,bits\nx,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := r.Get(victim); ok {
		t.Fatal("corrupt spill file was served")
	}
	if st := sp.Stats(); st.Quarantined != 1 {
		t.Errorf("quarantined = %d, want 1", st.Quarantined)
	}
	qpath := filepath.Join(sp.Dir(), QuarantineDir, SpillFileName(victim))
	if _, err := os.Stat(qpath); err != nil {
		t.Errorf("corrupt file not in quarantine: %v", err)
	}
	if _, err := os.Stat(sp.path(victim)); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("corrupt file still in serving position: %v", err)
	}
	// The hash is gone from every serving tier; a second Get is a plain
	// miss, not a second quarantine.
	if _, ok := r.Get(victim); ok {
		t.Fatal("quarantined dataset re-served")
	}
	if st := sp.Stats(); st.Quarantined != 1 {
		t.Errorf("second miss re-quarantined: %d", st.Quarantined)
	}
}

// TestSpillENOSPCKeepsServingFromMemory is the chaos arm the ladder's
// "no tier transition loses data" claim rests on: when every spill
// write fails with ENOSPC, eviction is refused, the registry runs over
// budget, and all datasets keep being served from memory.
func TestSpillENOSPCKeepsServingFromMemory(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS(), 1)
	inj.Inject(faultfs.Fault{Op: faultfs.OpWrite, Path: ".tmp-", Times: -1, Err: syscall.ENOSPC})
	r, sp := spilledRegistry(t, 512, 0, inj)
	var hashes []Hash
	for i := 0; i < 8; i++ {
		e, _, err := r.Register(uniqueCSV(i), dataset.CSVOptions{})
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, e.Hash)
	}
	st := r.Stats()
	if st.Spill.WriteErrors == 0 {
		t.Fatal("no spill attempt hit the injected ENOSPC; budget too loose")
	}
	if st.Spill.Writes != 0 {
		t.Errorf("writes = %d under permanent ENOSPC, want 0", st.Spill.Writes)
	}
	if st.Evictions != 0 {
		t.Errorf("evictions = %d, want 0 — an unspillable victim must stay resident", st.Evictions)
	}
	if st.Bytes <= 512 {
		t.Errorf("bytes = %d, expected over-budget residency to be visible", st.Bytes)
	}
	if files := spillFiles(t, sp.Dir()); len(files) != 0 {
		t.Errorf("spill files appeared despite ENOSPC: %v", files)
	}
	for i, h := range hashes {
		if _, ok := r.Get(h); !ok {
			t.Fatalf("dataset %d lost during ENOSPC — eviction dropped the only copy", i)
		}
	}
}

// TestSpillTransientWriteRetries: EINTR during the spill write is
// retried with a fresh temp file and the spill ultimately lands.
func TestSpillTransientWriteRetries(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS(), 1)
	inj.Inject(faultfs.Fault{Op: faultfs.OpWrite, Path: ".tmp-", Times: 2, Err: syscall.EINTR})
	r, sp := spilledRegistry(t, 512, 0, inj)
	for i := 0; i < 8; i++ {
		if _, _, err := r.Register(uniqueCSV(i), dataset.CSVOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	st := sp.Stats()
	if st.Writes == 0 {
		t.Fatal("no spill completed despite transient-only faults")
	}
	if st.WriteErrors != 0 {
		t.Errorf("write_errors = %d, want 0 — EINTR must be absorbed by retry", st.WriteErrors)
	}
	// No torn temp files left behind by the failed attempts.
	ents, err := os.ReadDir(sp.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if strings.HasPrefix(ent.Name(), ".tmp-") {
			t.Errorf("stale temp file %s after retried spill", ent.Name())
		}
	}
}

// TestRemoveIsTotal: Remove purges memory, the spill file, and any
// quarantined copy; nothing can re-materialize the dataset afterwards.
func TestRemoveIsTotal(t *testing.T) {
	r, sp := spilledRegistry(t, 512, 0, nil)
	var hashes []Hash
	for i := 0; i < 8; i++ {
		e, _, err := r.Register(uniqueCSV(i), dataset.CSVOptions{})
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, e.Hash)
	}
	if len(spillFiles(t, sp.Dir())) == 0 {
		t.Fatal("nothing spilled")
	}
	for _, h := range hashes {
		if !r.Remove(h) {
			t.Errorf("Remove(%s) = false for a registered dataset", h)
		}
	}
	if got := spillFiles(t, sp.Dir()); len(got) != 0 {
		t.Fatalf("spill files survive Remove: %v", got)
	}
	for _, h := range hashes {
		if _, ok := r.Get(h); ok {
			t.Fatalf("dataset %s re-materialized after Remove", h)
		}
		if r.Remove(h) {
			t.Errorf("second Remove(%s) = true", h)
		}
	}

	// A quarantined copy is also part of the dataset's footprint.
	e, _, err := r.Register(uniqueCSV(99), dataset.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	qpath := filepath.Join(sp.Dir(), QuarantineDir, SpillFileName(e.Hash))
	if err := os.WriteFile(qpath, []byte("rot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if !r.Remove(e.Hash) {
		t.Fatal("Remove of dataset with quarantined copy = false")
	}
	if _, err := os.Stat(qpath); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("quarantined copy survives Remove: %v", err)
	}
}

// TestSpillDiskBudget: the disk tier has its own LRU — oldest spill
// files are deleted once the disk byte budget is exceeded, sparing the
// file just written.
func TestSpillDiskBudget(t *testing.T) {
	sp, err := OpenSpill(t.TempDir(), 200, nil)
	if err != nil {
		t.Fatal(err)
	}
	var hashes []Hash
	for i := 0; i < 6; i++ {
		raw := Canonicalize(uniqueCSV(i))
		h := HashBytes(raw)
		if err := sp.store(h, raw); err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, h)
	}
	st := sp.Stats()
	if st.Evictions == 0 {
		t.Fatal("disk budget produced no evictions")
	}
	if st.Bytes > 200 {
		t.Errorf("disk tier at %d bytes, budget 200", st.Bytes)
	}
	if len(spillFiles(t, sp.Dir())) != st.Files {
		t.Errorf("index says %d files, disk disagrees", st.Files)
	}
	// The newest spill survives; the oldest is gone.
	if _, err := sp.load(hashes[len(hashes)-1]); err != nil {
		t.Errorf("newest spill evicted: %v", err)
	}
	if _, err := sp.load(hashes[0]); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("oldest spill still loadable: %v", err)
	}
}

// TestOpenSpillSweepsTempFiles: temp files left by a crash mid-spill
// are garbage by construction and are swept at open.
func TestOpenSpillSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, ".tmp-deadbeef-3")
	if err := os.WriteFile(stale, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	raw := Canonicalize(uniqueCSV(0))
	if err := os.WriteFile(filepath.Join(dir, SpillFileName(HashBytes(raw))), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	sp, err := OpenSpill(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("stale temp file survived open: %v", err)
	}
	if st := sp.Stats(); st.Files != 1 {
		t.Errorf("scan indexed %d files, want 1", st.Files)
	}
	if _, err := sp.load(HashBytes(raw)); err != nil {
		t.Errorf("pre-existing spill file not loadable: %v", err)
	}
}

// TestSpillReadErrorIsCountedMiss: an EIO on the spill read is a miss
// plus a load_errors tick — never a crash, never stale data.
func TestSpillReadErrorIsCountedMiss(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS(), 1)
	r, sp := spilledRegistry(t, 512, 0, inj)
	var hashes []Hash
	for i := 0; i < 8; i++ {
		e, _, err := r.Register(uniqueCSV(i), dataset.CSVOptions{})
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, e.Hash)
	}
	onDisk := spillFiles(t, sp.Dir())
	if len(onDisk) == 0 {
		t.Fatal("nothing spilled")
	}
	inj.Inject(faultfs.Fault{Op: faultfs.OpReadFile, Path: SpillExt, Times: -1, Err: syscall.EIO})
	if _, ok := r.Get(onDisk[0]); ok {
		t.Fatal("Get served a dataset whose spill read failed")
	}
	if st := sp.Stats(); st.LoadErrors == 0 {
		t.Error("EIO read not counted in load_errors")
	}
	_ = hashes
}

// TestConcurrentEvictorsNeverLoseData: concurrent Registers over a
// tight budget run budget enforcement from several goroutines at once.
// Each victim's spill-then-evict cycle holds the hash's key lock, so
// two evictors can never double-peek one victim and have the loser —
// finding the entry already evicted — delete the spill file the winner
// just wrote. The observable property: no dataset is ever silently
// lost; every registered hash stays retrievable from some tier.
func TestConcurrentEvictorsNeverLoseData(t *testing.T) {
	r, _ := spilledRegistry(t, 1024, 0, nil)
	const workers, each = 8, 16
	hashes := make([][]Hash, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				e, _, err := r.Register(uniqueCSV(w*each+i), dataset.CSVOptions{})
				if err != nil {
					t.Error(err)
					return
				}
				hashes[w] = append(hashes[w], e.Hash)
			}
		}(w)
	}
	wg.Wait()
	if st := r.Stats(); st.Evictions == 0 {
		t.Fatal("budget produced no evictions; test needs a tighter budget")
	}
	for w := range hashes {
		for i, h := range hashes[w] {
			if _, ok := r.Get(h); !ok {
				t.Fatalf("worker %d dataset %d (%s) lost under concurrent eviction", w, i, h)
			}
		}
	}
}

// TestRemoveDuringPromotionStaysRemoved: a Remove that lands in the
// middle of a disk promotion must still be total. The injected read
// latency holds the promotion open while Remove arrives; the per-hash
// lock makes Remove wait for the promotion and then delete its result,
// instead of letting the promotion re-insert a dataset whose deletion
// was already acknowledged.
func TestRemoveDuringPromotionStaysRemoved(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS(), 1)
	inj.Inject(faultfs.Fault{Op: faultfs.OpReadFile, Path: SpillExt, Times: -1, Delay: 50 * time.Millisecond})
	// A 1-byte budget evicts everything except the newest insert, so
	// after the second Register the first dataset lives on disk only.
	r, sp := spilledRegistry(t, 1, 0, inj)
	a, _, err := r.Register(uniqueCSV(0), dataset.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Register(uniqueCSV(1), dataset.CSVOptions{}); err != nil {
		t.Fatal(err)
	}
	if len(spillFiles(t, sp.Dir())) == 0 {
		t.Fatal("setup: nothing spilled")
	}

	promoted := make(chan struct{})
	go func() {
		defer close(promoted)
		r.Get(a.Hash) // promotion, held open by the injected read latency
	}()
	time.Sleep(10 * time.Millisecond) // let the promotion reach the slow read
	if !r.Remove(a.Hash) {
		t.Error("Remove = false for a dataset resident on disk")
	}
	<-promoted

	if _, ok := r.Get(a.Hash); ok {
		t.Fatal("dataset re-materialized after Remove raced a promotion")
	}
	for _, h := range spillFiles(t, sp.Dir()) {
		if h == a.Hash {
			t.Fatal("spill file survives a Remove that raced a promotion")
		}
	}
}

// TestNoSpillBehaviorUnchanged pins that a registry without a spill
// tier carries no raw bytes: the Entry budget charge is identical to
// the pre-spill implementation.
func TestNoSpillBehaviorUnchanged(t *testing.T) {
	plain := New(0)
	e, _, err := plain.Register([]byte(csvA), dataset.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if e.raw != nil {
		t.Error("registry without spill tier retained raw bytes")
	}
	if want := datasetBytes(e.Data); e.Bytes != want {
		t.Errorf("entry charged %d bytes, want %d (no raw overhead)", e.Bytes, want)
	}

	withSpill, _ := spilledRegistry(t, 0, 0, nil)
	e2, _, err := withSpill.Register([]byte(csvA), dataset.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e2.raw, Canonicalize([]byte(csvA))) {
		t.Error("spill-attached entry must retain the canonical bytes")
	}
	if want := datasetBytes(e2.Data) + int64(len(e2.raw)); e2.Bytes != want {
		t.Errorf("entry charged %d bytes, want %d (dataset + raw)", e2.Bytes, want)
	}
}
