package registry

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultfs"
)

// SpillExt is the filename extension of spilled datasets. A spill file
// holds exactly the canonicalized CSV bytes of one dataset, stored
// under its content address: the path is the checksum, so verification
// on read is re-hashing the contents and comparing against the name.
const SpillExt = ".spill"

// QuarantineDir is the subdirectory (inside the spill directory) that
// corrupt spill files are moved into. A quarantined file keeps its
// content-address name so operators can inspect what rotted, and so
// DELETE /datasets/{hash} can purge it.
const QuarantineDir = "quarantine"

// ErrCorrupt marks a spill file whose contents no longer hash to its
// content address. The file has been quarantined; callers treat the
// dataset as absent from the disk tier.
var ErrCorrupt = errors.New("registry: spill file corrupt (checksum mismatch)")

// spillRetries / spillBackoff bound the retry-with-backoff loop around
// each spill write: transient errors (EINTR, EAGAIN, ETIMEDOUT) are
// retried a few times, permanent ones (ENOSPC, EIO) fail fast.
const (
	spillRetries = 3
	spillBackoff = 2 * time.Millisecond
)

// SpillFileName returns the on-disk file name (not path) for a spilled
// dataset.
func SpillFileName(h Hash) string { return string(h) + SpillExt }

// SpillStats is the /statsz slice of the disk tier, the middle rung of
// the degradation ladder (memory hit → disk hit → durable summary →
// gone).
type SpillStats struct {
	Files  int   `json:"files"`
	Bytes  int64 `json:"bytes"`
	Budget int64 `json:"budget_bytes"`
	// Writes counts datasets spilled on eviction; WriteErrors counts
	// spill attempts that failed (the dataset stayed in memory).
	Writes      int64 `json:"writes"`
	WriteErrors int64 `json:"write_errors"`
	// Loads counts disk fall-through hits (a registry Get served by
	// re-parsing a spill file); LoadErrors counts unreadable files.
	Loads      int64 `json:"loads"`
	LoadErrors int64 `json:"load_errors"`
	// Quarantined counts checksum mismatches: the file was moved to the
	// quarantine directory instead of being served.
	Quarantined int64 `json:"quarantined"`
	// Evictions counts spill files removed by the disk byte budget.
	Evictions int64 `json:"evictions"`
}

// spillFile is one resident disk entry in the spill index.
type spillFile struct {
	hash Hash
	size int64
}

// Spill is the disk tier beneath the in-memory registry: a directory of
// canonicalized CSV files named by content address, with its own byte
// budget and LRU eviction. Writes are crash-safe (temp file + fsync +
// rename), reads are verified (re-hash and compare against the name;
// mismatches are quarantined, never served). All file I/O goes through
// a faultfs.FS so the failure behavior is testable.
//
// All methods are safe for concurrent use.
type Spill struct {
	dir    string
	fs     faultfs.FS
	budget int64 // <= 0 means unlimited

	mu    sync.Mutex
	ll    *list.List // front = most recently written/loaded
	files map[Hash]*list.Element
	bytes int64

	writes      atomic.Int64
	writeErrors atomic.Int64
	loads       atomic.Int64
	loadErrors  atomic.Int64
	quarantined atomic.Int64
	evictions   atomic.Int64
	tmpSeq      atomic.Int64
}

// OpenSpill opens (creating if needed) the spill tier rooted at dir,
// bounded by budgetBytes (<= 0 for unlimited), with all file I/O routed
// through fsys (faultfs.OS() in production). Spill files already in the
// directory — survivors of a previous process — are indexed by
// modification time, oldest first, so the disk LRU resumes where it
// left off.
func OpenSpill(dir string, budgetBytes int64, fsys faultfs.FS) (*Spill, error) {
	if fsys == nil {
		fsys = faultfs.OS()
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: creating spill dir: %w", err)
	}
	if err := fsys.MkdirAll(filepath.Join(dir, QuarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("registry: creating quarantine dir: %w", err)
	}
	s := &Spill{
		dir:    dir,
		fs:     fsys,
		budget: budgetBytes,
		ll:     list.New(),
		files:  make(map[Hash]*list.Element),
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

// scan rebuilds the index from the directory contents at open.
func (s *Spill) scan() error {
	ents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("registry: scanning spill dir: %w", err)
	}
	type aged struct {
		h    Hash
		size int64
		mod  time.Time
	}
	var found []aged
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, SpillExt) {
			// Leftover temp files from a crash mid-spill are garbage by
			// construction (the rename never happened); sweep them.
			if strings.HasPrefix(name, ".tmp-") {
				_ = s.fs.Remove(filepath.Join(s.dir, name)) // best-effort cleanup
			}
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue // raced with a concurrent delete; skip
		}
		found = append(found, aged{
			h:    Hash(strings.TrimSuffix(name, SpillExt)),
			size: info.Size(),
			mod:  info.ModTime(),
		})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mod.Before(found[j].mod) })
	for _, f := range found {
		// Oldest first: each PushFront leaves the newest at the front.
		s.files[f.h] = s.ll.PushFront(&spillFile{hash: f.h, size: f.size})
		s.bytes += f.size
	}
	return nil
}

// Dir returns the spill directory.
func (s *Spill) Dir() string { return s.dir }

// path returns the final on-disk path for h.
func (s *Spill) path(h Hash) string { return filepath.Join(s.dir, SpillFileName(h)) }

// store writes the canonicalized CSV bytes of h crash-safely: a unique
// temp file is written and fsynced, then renamed over the final
// content-addressed name, so a reader never observes a partial spill
// file. Transient write errors are retried with backoff (a fresh temp
// file per attempt keeps the sequence idempotent); permanent errors
// clean up the temp file and fail loudly. A failed store leaves the
// disk tier exactly as it was.
func (s *Spill) store(h Hash, raw []byte) error {
	err := faultfs.Retry(spillRetries, spillBackoff, func() error {
		return s.writeOnce(h, raw)
	})
	if err != nil {
		s.writeErrors.Add(1)
		return err
	}
	s.writes.Add(1)

	s.mu.Lock()
	if el, ok := s.files[h]; ok {
		// Re-spill of a resident hash: same content, refresh recency.
		s.ll.MoveToFront(el)
		s.mu.Unlock()
		return nil
	}
	s.files[h] = s.ll.PushFront(&spillFile{hash: h, size: int64(len(raw))})
	s.bytes += int64(len(raw))
	s.enforceBudgetLocked(h)
	s.mu.Unlock()
	return nil
}

// writeOnce is one attempt of the temp + fsync + rename protocol.
func (s *Spill) writeOnce(h Hash, raw []byte) error {
	tmp := filepath.Join(s.dir, fmt.Sprintf(".tmp-%s-%d", h, s.tmpSeq.Add(1)))
	f, err := s.fs.OpenFile(tmp, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("registry: creating spill temp file: %w", err)
	}
	cleanup := func() { _ = s.fs.Remove(tmp) } // best-effort: scan sweeps stragglers
	if _, err := f.Write(raw); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		cleanup()
		return fmt.Errorf("registry: writing spill file: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // the sync error is the one worth reporting
		cleanup()
		return fmt.Errorf("registry: syncing spill file: %w", err)
	}
	if err := f.Close(); err != nil {
		cleanup()
		return fmt.Errorf("registry: closing spill file: %w", err)
	}
	if err := s.fs.Rename(tmp, s.path(h)); err != nil {
		cleanup()
		return fmt.Errorf("registry: publishing spill file: %w", err)
	}
	return nil
}

// load reads the spilled bytes for h, verifying the checksum: the
// contents must hash back to h. On mismatch the file is quarantined and
// ErrCorrupt is returned — corrupt data is reported, never served. A
// missing file is a plain miss (fs.ErrNotExist).
func (s *Spill) load(h Hash) ([]byte, error) {
	raw, err := s.fs.ReadFile(s.path(h))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, err
		}
		s.loadErrors.Add(1)
		return nil, fmt.Errorf("registry: reading spill file: %w", err)
	}
	sum := sha256.Sum256(raw)
	if Hash(hex.EncodeToString(sum[:])) != h {
		s.quarantine(h)
		return nil, fmt.Errorf("%w: %s", ErrCorrupt, h)
	}
	s.mu.Lock()
	if el, ok := s.files[h]; ok {
		s.ll.MoveToFront(el)
	}
	s.mu.Unlock()
	s.loads.Add(1)
	return raw, nil
}

// quarantine moves a corrupt spill file out of serving position. The
// move keeps the content-address name so the evidence is inspectable
// and deletable; if even the move fails the file is removed outright —
// a corrupt file must never be served again.
func (s *Spill) quarantine(h Hash) {
	s.quarantined.Add(1)
	if err := s.fs.Rename(s.path(h), filepath.Join(s.dir, QuarantineDir, SpillFileName(h))); err != nil {
		_ = s.fs.Remove(s.path(h)) // last resort: drop it
	}
	s.dropIndex(h)
}

// dropIndex forgets h in the in-memory index (the file itself has
// already been moved or removed).
func (s *Spill) dropIndex(h Hash) {
	s.mu.Lock()
	if el, ok := s.files[h]; ok {
		s.bytes -= el.Value.(*spillFile).size
		s.ll.Remove(el)
		delete(s.files, h)
	}
	s.mu.Unlock()
}

// remove deletes the spill file and any quarantined copy of h,
// reporting whether either existed — the disk half of a total
// DELETE /datasets/{hash}.
func (s *Spill) remove(h Hash) bool {
	existed := false
	s.mu.Lock()
	if el, ok := s.files[h]; ok {
		s.bytes -= el.Value.(*spillFile).size
		s.ll.Remove(el)
		delete(s.files, h)
		existed = true
	}
	s.mu.Unlock()
	if err := s.fs.Remove(s.path(h)); err == nil {
		existed = true
	}
	if err := s.fs.Remove(filepath.Join(s.dir, QuarantineDir, SpillFileName(h))); err == nil {
		existed = true
	}
	return existed
}

// enforceBudgetLocked evicts the least-recently-used spill files until
// the disk tier fits its budget, sparing justAdded (mirroring the
// memory tier's sole-entry carve-out: one dataset larger than the whole
// disk budget still spills). Caller holds s.mu.
func (s *Spill) enforceBudgetLocked(justAdded Hash) {
	if s.budget <= 0 {
		return
	}
	for s.bytes > s.budget && s.ll.Len() > 1 {
		el := s.ll.Back()
		sf := el.Value.(*spillFile)
		if sf.hash == justAdded {
			if el = el.Prev(); el == nil {
				return
			}
			sf = el.Value.(*spillFile)
		}
		s.ll.Remove(el)
		delete(s.files, sf.hash)
		s.bytes -= sf.size
		_ = s.fs.Remove(s.path(sf.hash)) // best-effort: scan reconciles at next open
		s.evictions.Add(1)
	}
}

// Stats snapshots the disk-tier counters.
func (s *Spill) Stats() SpillStats {
	s.mu.Lock()
	files, bytes := s.ll.Len(), s.bytes
	s.mu.Unlock()
	return SpillStats{
		Files:       files,
		Bytes:       bytes,
		Budget:      s.budget,
		Writes:      s.writes.Load(),
		WriteErrors: s.writeErrors.Load(),
		Loads:       s.loads.Load(),
		LoadErrors:  s.loadErrors.Load(),
		Quarantined: s.quarantined.Load(),
		Evictions:   s.evictions.Load(),
	}
}
