package registry

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/dataset"
)

// BenchmarkRegistryParallelGet measures Get throughput under concurrent
// load for the single-lock layout versus the sharded one — the number
// that motivated lock striping. Every Get takes its shard's mutex (LRU
// refresh is a write), so with one shard all goroutines serialize on one
// lock while sixteen stripes let them proceed mostly independently; the
// gap widens with core count. SetParallelism(8) keeps at least eight
// goroutines contending even on small CI machines. Wired into the
// verify.sh benchmark-smoke tier like every other benchmark, so the
// ratio lands in the perf trajectory on each run.
func BenchmarkRegistryParallelGet(b *testing.B) {
	const entries = 64
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			r := NewSharded(0, shards)
			hashes := make([]Hash, entries)
			for i := range hashes {
				e, _, err := r.Register(uniqueCSV(i), dataset.CSVOptions{})
				if err != nil {
					b.Fatal(err)
				}
				hashes[i] = e.Hash
			}
			var next atomic.Int64
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Distinct starting offsets spread goroutines over the key
				// space (and therefore over the shards).
				i := int(next.Add(1)) * 7
				for pb.Next() {
					if _, ok := r.Get(hashes[i%entries]); !ok {
						b.Error("resident entry missed")
					}
					i++
				}
			})
		})
	}
}

// BenchmarkRegistryGetDiskFallthrough prices the rungs of the lookup
// ladder: a memory hit (LRU refresh under a shard lock), versus a disk
// fall-through (read the spill file, re-hash it for verification,
// re-parse the CSV, promote into the shard). The gap is the budget
// question -spill-dir answers: how much slower is the second rung that
// replaces data loss. Wired into the verify.sh benchmark-smoke tier.
func BenchmarkRegistryGetDiskFallthrough(b *testing.B) {
	setup := func(b *testing.B) (*Registry, Hash) {
		sp, err := OpenSpill(b.TempDir(), 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		r := NewSharded(0, 4)
		r.AttachSpill(sp, dataset.CSVOptions{})
		e, _, err := r.Register(uniqueCSV(0), dataset.CSVOptions{})
		if err != nil {
			b.Fatal(err)
		}
		// Pre-spill so the fall-through arm has a file to load without
		// waiting for a budget eviction.
		if err := sp.store(e.Hash, Canonicalize(uniqueCSV(0))); err != nil {
			b.Fatal(err)
		}
		return r, e.Hash
	}
	b.Run("memory-hit", func(b *testing.B) {
		r, h := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := r.Get(h); !ok {
				b.Fatal("resident entry missed")
			}
		}
	})
	b.Run("disk-fallthrough", func(b *testing.B) {
		r, h := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Evict between iterations (uncounted bookkeeping is the
			// shard-map delete; the measured work is the verified load).
			r.shardFor(h).remove(h)
			if _, ok := r.Get(h); !ok {
				b.Fatal("spilled entry missed")
			}
		}
	})
}

// BenchmarkRegistryRegister prices registration's two rungs: a fresh
// dataset (canonicalize, hash, parse, shard insert) versus the dedup
// fast path (canonicalize, hash, shard hit). The fresh arm cycles a
// fixed pool of unique CSVs and evicts each entry right after inserting
// it so the registry stays small at any b.N; the in-loop shard-map
// delete is bookkeeping noise next to the measured parse+hash. Wired
// into the verify.sh benchmark-smoke tier and the scripts/bench.sh
// perf-trajectory snapshot.
func BenchmarkRegistryRegister(b *testing.B) {
	const pool = 512
	b.Run("fresh", func(b *testing.B) {
		csvs := make([][]byte, pool)
		for i := range csvs {
			csvs[i] = uniqueCSV(i)
		}
		r := NewSharded(0, 16)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e, _, err := r.Register(csvs[i%pool], dataset.CSVOptions{})
			if err != nil {
				b.Fatal(err)
			}
			r.shardFor(e.Hash).remove(e.Hash)
		}
	})
	b.Run("dedup", func(b *testing.B) {
		r := NewSharded(0, 16)
		csv := uniqueCSV(0)
		if _, _, err := r.Register(csv, dataset.CSVOptions{}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := r.Register(csv, dataset.CSVOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRegistryParallelMixed adds registration traffic (90% Get /
// 10% Register of an already-resident dataset) — the dedup fast path
// also takes the shard lock, so this is the contention profile of a
// server whose clients re-upload data they already pinned.
func BenchmarkRegistryParallelMixed(b *testing.B) {
	const entries = 64
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			r := NewSharded(0, shards)
			csvs := make([][]byte, entries)
			hashes := make([]Hash, entries)
			for i := range hashes {
				csvs[i] = uniqueCSV(i)
				e, _, err := r.Register(csvs[i], dataset.CSVOptions{})
				if err != nil {
					b.Fatal(err)
				}
				hashes[i] = e.Hash
			}
			var next atomic.Int64
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int(next.Add(1)) * 7
				for pb.Next() {
					if i%10 == 0 {
						if _, _, err := r.Register(csvs[i%entries], dataset.CSVOptions{}); err != nil {
							b.Error(err)
						}
					} else {
						r.Get(hashes[i%entries])
					}
					i++
				}
			})
		})
	}
}
