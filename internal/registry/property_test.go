package registry

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/dataset"
)

// The property suite drives seeded random Put/Get/Remove interleavings
// against registries with different shard counts and checks three
// invariants the sharding refactor must preserve:
//
//	(a) observable contents (and every operation's return values) are
//	    identical to the single-shard oracle for the same op sequence;
//	(b) total resident bytes never exceed the budget, except for the
//	    carve-out both implementations share: a sole entry larger than
//	    the whole budget stays resident;
//	(c) the counters reconcile — every Get and Register moves exactly
//	    one of hits/misses, so hits+misses equals the number of lookups.
//
// Sequentially, eviction order is exact global LRU (recency stamps), so
// (a) is checked after every single operation; the concurrent test
// checks (b) and (c) at quiescence, and exists chiefly to give -race
// real interleavings to chew on.

// propCSV builds the i-th distinct dataset of the key pool, with a
// payload size that varies by key so evictions free uneven byte counts.
func propCSV(i int) []byte {
	var rows []byte
	for r := 0; r <= i%7; r++ {
		rows = append(rows, []byte(fmt.Sprintf("k%d-%d,v%d\n", i, r, r))...)
	}
	return append([]byte("a,b\n"), rows...)
}

// residentHashes walks every shard and returns the resident content
// addresses, sorted. Unlike Get it does not touch LRU state, so oracle
// comparisons do not perturb what they observe.
func (r *Registry) residentHashes() []string {
	var out []string
	for _, sh := range r.shards {
		sh.mu.Lock()
		for h := range sh.entries {
			out = append(out, string(h))
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// lookups returns hits+misses across shards.
func lookups(s Stats) int64 { return s.Hits + s.Misses }

func TestPropertyShardedMatchesSingleShardOracle(t *testing.T) {
	const (
		poolSize = 24
		numOps   = 600
	)
	pool := make([][]byte, poolSize)
	hashes := make([]Hash, poolSize)
	var poolBytes int64
	for i := range pool {
		pool[i] = propCSV(i)
		hashes[i] = HashBytes(pool[i])
		d, _, err := New(0).Register(pool[i], dataset.CSVOptions{})
		if err != nil {
			t.Fatal(err)
		}
		poolBytes += d.Bytes
	}
	// A budget around a third of the pool forces steady eviction traffic.
	budget := poolBytes / 3

	for _, shards := range []int{4, 16} {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				oracle := NewSharded(budget, 1)
				sharded := NewSharded(budget, shards)
				var wantLookups int64
				for op := 0; op < numOps; op++ {
					i := rng.Intn(poolSize)
					switch rng.Intn(10) {
					case 0, 1, 2, 3: // Put
						_, e1, err1 := oracle.Register(pool[i], dataset.CSVOptions{})
						_, e2, err2 := sharded.Register(pool[i], dataset.CSVOptions{})
						if e1 != e2 || (err1 == nil) != (err2 == nil) {
							t.Fatalf("op %d: Register(%d) diverged: oracle (%v,%v) vs sharded (%v,%v)",
								op, i, e1, err1, e2, err2)
						}
						wantLookups++
					case 4, 5, 6, 7: // Get
						_, ok1 := oracle.Get(hashes[i])
						_, ok2 := sharded.Get(hashes[i])
						if ok1 != ok2 {
							t.Fatalf("op %d: Get(%d) diverged: oracle %v vs sharded %v", op, i, ok1, ok2)
						}
						wantLookups++
					default: // Remove
						ok1 := oracle.Remove(hashes[i])
						ok2 := sharded.Remove(hashes[i])
						if ok1 != ok2 {
							t.Fatalf("op %d: Remove(%d) diverged: oracle %v vs sharded %v", op, i, ok1, ok2)
						}
					}

					want, got := oracle.residentHashes(), sharded.residentHashes()
					if fmt.Sprint(want) != fmt.Sprint(got) {
						t.Fatalf("op %d: resident sets diverged:\noracle  %v\nsharded %v", op, want, got)
					}
					so, ss := oracle.Stats(), sharded.Stats()
					if so.Bytes != ss.Bytes || so.Entries != ss.Entries {
						t.Fatalf("op %d: stats diverged: oracle %d entries/%d B vs sharded %d entries/%d B",
							op, so.Entries, so.Bytes, ss.Entries, ss.Bytes)
					}
					for _, s := range []Stats{so, ss} {
						if s.Bytes > budget && s.Entries > 1 {
							t.Fatalf("op %d: %d resident bytes exceed the %d budget with %d entries",
								op, s.Bytes, budget, s.Entries)
						}
					}
				}
				for name, s := range map[string]Stats{"oracle": oracle.Stats(), "sharded": sharded.Stats()} {
					if lookups(s) != wantLookups {
						t.Errorf("%s: hits(%d)+misses(%d) = %d, want %d lookups",
							name, s.Hits, s.Misses, lookups(s), wantLookups)
					}
				}
			})
		}
	}
}

// TestPropertyConcurrentInvariants hammers one sharded registry from
// several goroutines with seeded per-goroutine op streams, then checks
// the byte-budget and counter invariants at quiescence. Run under -race
// this doubles as the shard-layer data-race audit.
func TestPropertyConcurrentInvariants(t *testing.T) {
	const (
		goroutines = 8
		opsEach    = 400
		poolSize   = 24
	)
	pool := make([][]byte, poolSize)
	hashes := make([]Hash, poolSize)
	var poolBytes int64
	for i := range pool {
		pool[i] = propCSV(i)
		hashes[i] = HashBytes(pool[i])
		d, _, err := New(0).Register(pool[i], dataset.CSVOptions{})
		if err != nil {
			t.Fatal(err)
		}
		poolBytes += d.Bytes
	}
	budget := poolBytes / 3

	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			r := NewSharded(budget, shards)
			var wantLookups int64 // exact: computed from the fixed op mix below
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wantLookups += opsEach
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for op := 0; op < opsEach; op++ {
						i := rng.Intn(poolSize)
						if rng.Intn(2) == 0 {
							if _, _, err := r.Register(pool[i], dataset.CSVOptions{}); err != nil {
								t.Errorf("Register(%d): %v", i, err)
							}
						} else {
							r.Get(hashes[i])
						}
					}
				}(int64(g + 1))
			}
			wg.Wait()

			s := r.Stats()
			if s.Bytes > budget && s.Entries > 1 {
				t.Errorf("%d resident bytes exceed the %d budget with %d entries", s.Bytes, budget, s.Entries)
			}
			if lookups(s) != wantLookups {
				t.Errorf("hits(%d)+misses(%d) = %d, want %d lookups", s.Hits, s.Misses, lookups(s), wantLookups)
			}
			// Aggregates must equal the per-shard breakdown and the actual
			// resident set.
			var perShard ShardStats
			for _, ss := range s.Shards {
				perShard.Entries += ss.Entries
				perShard.Bytes += ss.Bytes
			}
			if perShard.Entries != s.Entries || perShard.Bytes != s.Bytes {
				t.Errorf("per-shard totals %d entries/%d B disagree with aggregate %d/%d",
					perShard.Entries, perShard.Bytes, s.Entries, s.Bytes)
			}
			if got := len(r.residentHashes()); got != s.Entries {
				t.Errorf("resident set has %d hashes, stats report %d entries", got, s.Entries)
			}
		})
	}
}
