// Package registry is a content-addressed store of parsed datasets: the
// key of a dataset is the SHA-256 of its canonicalized CSV bytes, so the
// same upload — regardless of line endings or a missing trailing newline
// — always resolves to the same entry and is parsed exactly once. The
// store is bounded by a byte budget with LRU eviction and keeps
// hit/miss/eviction counters for /statsz.
//
// The registry is the "mine once, serve many" seam of the service: jobs
// reference datasets by hash, repeated uploads of the same CSV are free,
// and the result cache in package jobs keys on the same hash.
//
// Internally the store is lock-striped into shards (see shard.go): a
// key's shard is fixed by a hash of its content address, each shard has
// its own mutex, LRU list and counters, and the byte budget is global —
// an insert that pushes total residency over budget evicts the globally
// least-recently-used entries regardless of which shard holds them, so
// the observable contents match a single-shard store exactly while
// unrelated Get/Register traffic no longer serializes on one lock.
//
// With a disk-spill tier attached (AttachSpill), eviction is no longer
// data loss: the victim's canonicalized CSV bytes are written
// crash-safely to disk *before* the in-memory entry is dropped, and a
// Get that misses memory falls through to a checksum-verified disk load
// that re-parses and promotes the dataset back into memory. The
// observable ladder is memory hit → disk hit → miss; a spill file whose
// contents no longer hash to its name is quarantined, never served.
package registry

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync/atomic"

	"repro/internal/dataset"
)

// DefaultShards is the shard count used by New. Sixteen stripes keep
// lock hold times short at high request concurrency without measurable
// overhead at low concurrency; NewSharded overrides it.
const DefaultShards = 16

// Hash is the content address of a dataset: the lower-case hex SHA-256
// of its canonicalized CSV bytes.
type Hash string

// HashBytes computes the content address of raw CSV bytes.
func HashBytes(csv []byte) Hash {
	sum := sha256.Sum256(Canonicalize(csv))
	return Hash(hex.EncodeToString(sum[:]))
}

// Canonicalize normalizes CSV bytes before hashing: CRLF and lone CR
// line endings become LF, and a missing final newline is added. Parsing
// is unaffected (encoding/csv already accepts all three), so two uploads
// that parse identically hash identically.
func Canonicalize(csv []byte) []byte {
	out := make([]byte, 0, len(csv)+1)
	for i := 0; i < len(csv); i++ {
		c := csv[i]
		if c == '\r' {
			if i+1 < len(csv) && csv[i+1] == '\n' {
				i++
			}
			c = '\n'
		}
		out = append(out, c)
	}
	if len(out) > 0 && out[len(out)-1] != '\n' {
		out = append(out, '\n')
	}
	return out
}

// Entry is one registered dataset. Entries are immutable once created:
// eviction only drops the registry's reference, so an Entry held by a
// running job stays valid after eviction.
type Entry struct {
	Hash  Hash
	Data  *dataset.Dataset
	Bytes int64 // estimated resident size, charged against the budget

	// raw holds the canonicalized CSV bytes when a spill tier is
	// attached — the payload a byte-budget eviction writes to disk.
	// Registries without a spill tier leave it nil (no memory overhead).
	raw []byte
}

// ShardStats is the per-shard slice of the registry counters.
type ShardStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Stats is a point-in-time snapshot of the registry counters. The
// top-level counters aggregate across shards; Shards carries the
// per-shard breakdown for /statsz, and Spill the disk-tier counters
// when one is attached.
type Stats struct {
	Entries   int          `json:"entries"`
	Bytes     int64        `json:"bytes"`
	Budget    int64        `json:"budget_bytes"`
	Hits      int64        `json:"hits"`
	Misses    int64        `json:"misses"`
	Evictions int64        `json:"evictions"`
	Shards    []ShardStats `json:"shards,omitempty"`
	Spill     *SpillStats  `json:"spill,omitempty"`
}

// Registry is a byte-budgeted, content-addressed, lock-striped LRU store
// of parsed datasets, optionally backed by a disk-spill tier. All
// methods are safe for concurrent use.
type Registry struct {
	budget int64 // <= 0 means unlimited
	shards []*shard
	size   atomic.Int64 // total resident bytes across shards
	clock  atomic.Int64 // global recency stamp source (see shard.go)

	// spill, when non-nil, is the disk tier beneath the memory LRU;
	// spillOpts are the CSV options disk fall-through re-parses with
	// (they must match what Register was called with, or the promoted
	// dataset would differ from the original). Set once by AttachSpill
	// before the registry serves traffic.
	spill     *Spill
	spillOpts dataset.CSVOptions

	// locks serializes the spill tier's multi-step transitions per
	// content address (see keylock.go): spill-then-evict, disk
	// promotion, and Remove each hold the hash's lock end to end, so no
	// two of them can interleave on one dataset. Unused without a spill
	// tier.
	locks keyLocks
}

// New returns a registry bounded by budgetBytes (<= 0 for unlimited)
// with DefaultShards lock stripes.
func New(budgetBytes int64) *Registry {
	return NewSharded(budgetBytes, DefaultShards)
}

// NewSharded returns a registry bounded by budgetBytes (<= 0 for
// unlimited) striped into shards locks (values < 1 are clamped to 1,
// which reproduces the original single-lock store).
func NewSharded(budgetBytes int64, shards int) *Registry {
	if shards < 1 {
		shards = 1
	}
	r := &Registry{budget: budgetBytes, shards: make([]*shard, shards)}
	for i := range r.shards {
		r.shards[i] = newShard()
	}
	return r
}

// NumShards returns the number of lock stripes.
func (r *Registry) NumShards() int { return len(r.shards) }

// AttachSpill wires the disk tier beneath the memory LRU: evictions
// spill the canonicalized CSV to sp before dropping the in-memory
// entry, and Get misses fall through to a verified disk load that is
// re-parsed with opts and promoted back into memory. Attach before the
// registry serves traffic — entries registered earlier carry no raw
// bytes and evict without spilling (they predate the tier, so nothing
// is lost that was ever on it).
func (r *Registry) AttachSpill(sp *Spill, opts dataset.CSVOptions) {
	r.spill = sp
	r.spillOpts = opts
}

// Spill returns the attached disk tier, nil if none.
func (r *Registry) Spill() *Spill { return r.spill }

// shardFor maps a content address onto its stripe with FNV-1a, inlined
// (hash/fnv's New32a allocates per call, which would dominate the Get
// fast path). The key is already a SHA-256 hex string, but re-hashing
// keeps the mapping well distributed for arbitrary Hash values too
// (tests use short fakes).
func (r *Registry) shardFor(h Hash) *shard {
	if len(r.shards) == 1 {
		return r.shards[0]
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	// 16 hex chars = 64 bits of the underlying SHA-256 — ample stripe
	// entropy; hashing the full 64-char key would triple Get's cost.
	n := len(h)
	if n > 16 {
		n = 16
	}
	x := uint32(offset32)
	for i := 0; i < n; i++ {
		x ^= uint32(h[i])
		x *= prime32
	}
	return r.shards[x%uint32(len(r.shards))]
}

// Register stores the dataset parsed from csv under its content address.
// When the hash is already present the existing entry is returned with
// existed == true and nothing is re-parsed — that dedup is the cache hit
// the counters record. A parse failure stores nothing.
func (r *Registry) Register(csv []byte, opts dataset.CSVOptions) (*Entry, bool, error) {
	canon := Canonicalize(csv)
	sum := sha256.Sum256(canon)
	h := Hash(hex.EncodeToString(sum[:]))
	sh := r.shardFor(h)
	if e, ok := sh.get(h, r.clock.Add(1)); ok {
		return e, true, nil
	}

	// Parse outside the lock: CSV parsing dominates registration cost and
	// must not serialize unrelated requests. A concurrent duplicate upload
	// may parse twice; the second insert below discards its copy.
	data, err := dataset.ReadCSV(bytes.NewReader(csv), opts)
	if err != nil {
		sh.miss()
		return nil, false, fmt.Errorf("registry: parsing CSV: %w", err)
	}
	e := r.newEntry(h, data, canon)

	e, existed := sh.put(e, r.clock.Add(1))
	if !existed {
		r.size.Add(e.Bytes)
		r.enforceBudget(h)
	}
	return e, existed, nil
}

// newEntry builds an Entry, retaining (and charging for) the canonical
// bytes only when a spill tier needs them at eviction time.
func (r *Registry) newEntry(h Hash, data *dataset.Dataset, canon []byte) *Entry {
	e := &Entry{Hash: h, Data: data, Bytes: datasetBytes(data)}
	if r.spill != nil {
		e.raw = canon
		e.Bytes += int64(len(canon))
	}
	return e
}

// Get looks up a dataset by hash, refreshing its LRU recency. With a
// spill tier attached, a memory miss falls through to a verified disk
// load: the spill file is re-hashed (a mismatch quarantines it and
// reports a miss — corruption is never served), re-parsed, and promoted
// back into the memory tier. Exactly one of hits/misses moves per call:
// a disk hit charges the miss through the promotion insert, keeping the
// hits+misses == lookups invariant intact across tiers.
func (r *Registry) Get(h Hash) (*Entry, bool) {
	sh := r.shardFor(h)
	if e, ok := sh.get(h, r.clock.Add(1)); ok {
		return e, true
	}
	if e, ok := r.promoteFromSpill(sh, h); ok {
		return e, true
	}
	sh.miss()
	return nil, false
}

// promoteFromSpill serves a memory miss from the disk tier: load and
// verify the spilled bytes, re-parse, insert into the shard (charging
// the miss the lookup owes), and re-enforce the memory budget — which
// may in turn spill something else.
//
// The whole load→parse→insert sequence runs under the hash's key lock,
// which excludes Remove for its duration: a DELETE either completes
// before the promotion starts (the spill file is gone, the lookup is a
// plain miss) or blocks until the promotion finishes and then removes
// the freshly promoted entry — it can never land in the middle and have
// the insert resurrect a dataset whose deletion was already
// acknowledged. The lock is released before budget enforcement, which
// may acquire another hash's lock (never two at once — see keylock.go).
func (r *Registry) promoteFromSpill(sh *shard, h Hash) (*Entry, bool) {
	if r.spill == nil {
		return nil, false
	}
	r.locks.lock(h)
	// Re-probe memory under the lock: a concurrent promotion of the
	// same hash may have landed while we waited.
	if e, ok := sh.get(h, r.clock.Add(1)); ok {
		r.locks.unlock(h)
		return e, true
	}
	raw, err := r.spill.load(h)
	if err != nil {
		r.locks.unlock(h)
		return nil, false // missing, unreadable, or quarantined: a plain miss
	}
	data, err := dataset.ReadCSV(bytes.NewReader(raw), r.spillOpts)
	if err != nil {
		// The bytes hash correctly, so they are exactly what was once
		// parsed successfully; a parse failure here means the options
		// changed between runs. Treat as a miss rather than serve a
		// dataset parsed differently than the original.
		r.spill.loadErrors.Add(1)
		r.locks.unlock(h)
		return nil, false
	}
	e, existed := sh.put(r.newEntry(h, data, raw), r.clock.Add(1))
	r.locks.unlock(h)
	if !existed {
		r.size.Add(e.Bytes)
		r.enforceBudget(h)
	}
	return e, true
}

// Remove drops the entry for h across every tier — memory, spill file,
// and any quarantined copy — reporting whether any of them held it.
// Deletion must be total: after Remove, no tier may re-materialize the
// dataset, which is why (with a spill tier attached) Remove holds the
// hash's key lock across both tiers — an in-flight disk promotion or
// spill-on-evict of the same hash finishes first and its result is then
// deleted here, instead of re-materializing the dataset afterwards.
// Explicit removal is a delete, not an eviction: it does not move the
// hit/miss/eviction counters.
func (r *Registry) Remove(h Hash) bool {
	if r.spill != nil {
		r.locks.lock(h)
		defer r.locks.unlock(h)
	}
	freed, ok := r.shardFor(h).remove(h)
	if ok {
		r.size.Add(-freed)
	}
	if r.spill != nil && r.spill.remove(h) {
		ok = true
	}
	return ok
}

// enforceBudget evicts globally least-recently-used entries until total
// residency fits the budget, sparing justAdded (the entry whose insert
// triggered enforcement) so a single dataset larger than the whole
// budget is still usable — it evicts everything else instead, exactly as
// the single-lock store did. Shard locks are only ever taken one at a
// time, so enforcement cannot deadlock against Register/Get traffic; the
// per-pass rescan makes cross-shard eviction an approximation of global
// LRU under concurrent touches and exact under sequential operation.
func (r *Registry) enforceBudget(justAdded Hash) {
	if r.budget <= 0 {
		return
	}
	for r.size.Load() > r.budget {
		if !r.evictGlobalLRU(justAdded) {
			return
		}
	}
}

// evictGlobalLRU removes the resident entry with the oldest recency
// stamp, skipping spare. It reports false when nothing is evictable —
// spare is the only entry left, or a spill tier is attached and the
// victim cannot be spilled — which ends budget enforcement.
//
// With a spill tier the protocol is spill-then-evict: peek the victim,
// take its key lock, re-confirm it is still the untouched LRU tail,
// write its spill file outside every shard lock, then evict only if its
// recency stamp is unchanged (compare-and-evict). Eviction never
// precedes a durable copy, so a crash or write failure at any point
// leaves the dataset resident in exactly one tier. The key lock held
// across the whole cycle excludes Remove, disk promotion, and every
// other evictor of the same hash: two concurrent over-budget inserts
// can no longer both peek one victim and have the loser — finding the
// entry gone — delete the spill file the winner just wrote. A permanent
// spill failure aborts enforcement entirely: the registry stays over
// budget and keeps serving from memory — counted, not hidden
// (write_errors in /statsz) — because dropping the only copy to honor a
// byte budget would turn a disk error into data loss.
func (r *Registry) evictGlobalLRU(spare Hash) bool {
	for {
		victim, entries := r.oldestShard(spare)
		if victim == nil || entries <= 1 {
			return false
		}
		if r.spill == nil {
			freed, evicted := victim.evictOldest(spare)
			if evicted {
				r.size.Add(-freed)
				return true
			}
			// The scanned tail moved (a concurrent touch or removal): rescan.
			// Progress is guaranteed — either some pass evicts, or the store
			// drains to a single entry and oldestShard returns nil.
			continue
		}
		e, stamp, ok := victim.peekOldest(spare)
		if !ok {
			continue // tail moved since the scan: rescan
		}
		r.locks.lock(e.Hash)
		if s, ok := victim.stampOf(e.Hash); !ok || s != stamp {
			// Evicted, removed, or touched while we waited for the lock:
			// it is no longer the victim we peeked. Rescan.
			r.locks.unlock(e.Hash)
			continue
		}
		// Entries registered before AttachSpill carry no raw bytes and
		// evict without spilling — they predate the disk tier.
		if e.raw != nil {
			if err := r.spill.store(e.Hash, e.raw); err != nil {
				r.locks.unlock(e.Hash)
				return false
			}
		}
		freed, status := victim.evictIfUnchanged(e.Hash, stamp)
		switch status {
		case evictOK:
			r.size.Add(-freed)
			r.locks.unlock(e.Hash)
			return true
		case evictGone:
			// Unreachable while the key lock is held — Remove and
			// promotion both serialize on it, and the stamp re-check
			// above filtered rival evictors — but handled defensively:
			// deletion must stay total, so drop the spill file.
			if e.raw != nil {
				r.spill.remove(e.Hash)
			}
			r.locks.unlock(e.Hash)
		case evictTouched:
			// A concurrent Get refreshed the entry; it is no longer the
			// LRU victim. The spill file stays — it is correct by
			// content address and pre-pays a future eviction.
			r.locks.unlock(e.Hash)
		}
	}
}

// oldestShard scans all stripes for the one whose LRU tail carries the
// globally oldest recency stamp, ignoring spare, and counts resident
// entries along the way. Each shard is locked only for its own scan.
func (r *Registry) oldestShard(spare Hash) (*shard, int) {
	var victim *shard
	oldest := int64(0)
	entries := 0
	for _, sh := range r.shards {
		n, stamp, ok := sh.oldest(spare)
		entries += n
		if ok && (victim == nil || stamp < oldest) {
			victim = sh
			oldest = stamp
		}
	}
	return victim, entries
}

// Stats returns a snapshot of the counters, aggregated and per shard.
func (r *Registry) Stats() Stats {
	s := Stats{Budget: r.budget, Shards: make([]ShardStats, len(r.shards))}
	for i, sh := range r.shards {
		ss := sh.stats()
		s.Shards[i] = ss
		s.Entries += ss.Entries
		s.Bytes += ss.Bytes
		s.Hits += ss.Hits
		s.Misses += ss.Misses
		s.Evictions += ss.Evictions
	}
	if r.spill != nil {
		sp := r.spill.Stats()
		s.Spill = &sp
	}
	return s
}

// datasetBytes estimates the resident size of a parsed dataset: 4 bytes
// per value code plus the schema strings with per-string overhead. An
// estimate is enough — the budget bounds order of magnitude, not pages.
func datasetBytes(d *dataset.Dataset) int64 {
	const strOverhead = 16
	var n int64
	for i := range d.Attrs {
		n += int64(len(d.Attrs[i].Name)) + strOverhead
		for _, v := range d.Attrs[i].Values {
			n += int64(len(v)) + strOverhead
		}
	}
	n += int64(d.NumRows()) * int64(d.NumAttrs()) * 4
	return n
}
