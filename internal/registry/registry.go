// Package registry is a content-addressed store of parsed datasets: the
// key of a dataset is the SHA-256 of its canonicalized CSV bytes, so the
// same upload — regardless of line endings or a missing trailing newline
// — always resolves to the same entry and is parsed exactly once. The
// store is bounded by a byte budget with LRU eviction and keeps
// hit/miss/eviction counters for /statsz.
//
// The registry is the "mine once, serve many" seam of the service: jobs
// reference datasets by hash, repeated uploads of the same CSV are free,
// and the result cache in package jobs keys on the same hash.
//
// Internally the store is lock-striped into shards (see shard.go): a
// key's shard is fixed by a hash of its content address, each shard has
// its own mutex, LRU list and counters, and the byte budget is global —
// an insert that pushes total residency over budget evicts the globally
// least-recently-used entries regardless of which shard holds them, so
// the observable contents match a single-shard store exactly while
// unrelated Get/Register traffic no longer serializes on one lock.
package registry

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync/atomic"

	"repro/internal/dataset"
)

// DefaultShards is the shard count used by New. Sixteen stripes keep
// lock hold times short at high request concurrency without measurable
// overhead at low concurrency; NewSharded overrides it.
const DefaultShards = 16

// Hash is the content address of a dataset: the lower-case hex SHA-256
// of its canonicalized CSV bytes.
type Hash string

// HashBytes computes the content address of raw CSV bytes.
func HashBytes(csv []byte) Hash {
	sum := sha256.Sum256(Canonicalize(csv))
	return Hash(hex.EncodeToString(sum[:]))
}

// Canonicalize normalizes CSV bytes before hashing: CRLF and lone CR
// line endings become LF, and a missing final newline is added. Parsing
// is unaffected (encoding/csv already accepts all three), so two uploads
// that parse identically hash identically.
func Canonicalize(csv []byte) []byte {
	out := make([]byte, 0, len(csv)+1)
	for i := 0; i < len(csv); i++ {
		c := csv[i]
		if c == '\r' {
			if i+1 < len(csv) && csv[i+1] == '\n' {
				i++
			}
			c = '\n'
		}
		out = append(out, c)
	}
	if len(out) > 0 && out[len(out)-1] != '\n' {
		out = append(out, '\n')
	}
	return out
}

// Entry is one registered dataset. Entries are immutable once created:
// eviction only drops the registry's reference, so an Entry held by a
// running job stays valid after eviction.
type Entry struct {
	Hash  Hash
	Data  *dataset.Dataset
	Bytes int64 // estimated resident size, charged against the budget
}

// ShardStats is the per-shard slice of the registry counters.
type ShardStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Stats is a point-in-time snapshot of the registry counters. The
// top-level counters aggregate across shards; Shards carries the
// per-shard breakdown for /statsz.
type Stats struct {
	Entries   int          `json:"entries"`
	Bytes     int64        `json:"bytes"`
	Budget    int64        `json:"budget_bytes"`
	Hits      int64        `json:"hits"`
	Misses    int64        `json:"misses"`
	Evictions int64        `json:"evictions"`
	Shards    []ShardStats `json:"shards,omitempty"`
}

// Registry is a byte-budgeted, content-addressed, lock-striped LRU store
// of parsed datasets. All methods are safe for concurrent use.
type Registry struct {
	budget int64 // <= 0 means unlimited
	shards []*shard
	size   atomic.Int64 // total resident bytes across shards
	clock  atomic.Int64 // global recency stamp source (see shard.go)
}

// New returns a registry bounded by budgetBytes (<= 0 for unlimited)
// with DefaultShards lock stripes.
func New(budgetBytes int64) *Registry {
	return NewSharded(budgetBytes, DefaultShards)
}

// NewSharded returns a registry bounded by budgetBytes (<= 0 for
// unlimited) striped into shards locks (values < 1 are clamped to 1,
// which reproduces the original single-lock store).
func NewSharded(budgetBytes int64, shards int) *Registry {
	if shards < 1 {
		shards = 1
	}
	r := &Registry{budget: budgetBytes, shards: make([]*shard, shards)}
	for i := range r.shards {
		r.shards[i] = newShard()
	}
	return r
}

// NumShards returns the number of lock stripes.
func (r *Registry) NumShards() int { return len(r.shards) }

// shardFor maps a content address onto its stripe with FNV-1a, inlined
// (hash/fnv's New32a allocates per call, which would dominate the Get
// fast path). The key is already a SHA-256 hex string, but re-hashing
// keeps the mapping well distributed for arbitrary Hash values too
// (tests use short fakes).
func (r *Registry) shardFor(h Hash) *shard {
	if len(r.shards) == 1 {
		return r.shards[0]
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	// 16 hex chars = 64 bits of the underlying SHA-256 — ample stripe
	// entropy; hashing the full 64-char key would triple Get's cost.
	n := len(h)
	if n > 16 {
		n = 16
	}
	x := uint32(offset32)
	for i := 0; i < n; i++ {
		x ^= uint32(h[i])
		x *= prime32
	}
	return r.shards[x%uint32(len(r.shards))]
}

// Register stores the dataset parsed from csv under its content address.
// When the hash is already present the existing entry is returned with
// existed == true and nothing is re-parsed — that dedup is the cache hit
// the counters record. A parse failure stores nothing.
func (r *Registry) Register(csv []byte, opts dataset.CSVOptions) (*Entry, bool, error) {
	h := HashBytes(csv)
	sh := r.shardFor(h)
	if e, ok := sh.get(h, r.clock.Add(1)); ok {
		return e, true, nil
	}

	// Parse outside the lock: CSV parsing dominates registration cost and
	// must not serialize unrelated requests. A concurrent duplicate upload
	// may parse twice; the second insert below discards its copy.
	data, err := dataset.ReadCSV(bytes.NewReader(csv), opts)
	if err != nil {
		sh.miss()
		return nil, false, fmt.Errorf("registry: parsing CSV: %w", err)
	}
	e := &Entry{Hash: h, Data: data, Bytes: datasetBytes(data)}

	e, existed := sh.put(e, r.clock.Add(1))
	if !existed {
		r.size.Add(e.Bytes)
		r.enforceBudget(h)
	}
	return e, existed, nil
}

// Get looks up a dataset by hash, refreshing its LRU recency.
func (r *Registry) Get(h Hash) (*Entry, bool) {
	sh := r.shardFor(h)
	if e, ok := sh.get(h, r.clock.Add(1)); ok {
		return e, true
	}
	sh.miss()
	return nil, false
}

// Remove drops the entry for h, reporting whether it was resident.
// Explicit removal is a delete, not an eviction: it does not move the
// hit/miss/eviction counters.
func (r *Registry) Remove(h Hash) bool {
	freed, ok := r.shardFor(h).remove(h)
	if ok {
		r.size.Add(-freed)
	}
	return ok
}

// enforceBudget evicts globally least-recently-used entries until total
// residency fits the budget, sparing justAdded (the entry whose insert
// triggered enforcement) so a single dataset larger than the whole
// budget is still usable — it evicts everything else instead, exactly as
// the single-lock store did. Shard locks are only ever taken one at a
// time, so enforcement cannot deadlock against Register/Get traffic; the
// per-pass rescan makes cross-shard eviction an approximation of global
// LRU under concurrent touches and exact under sequential operation.
func (r *Registry) enforceBudget(justAdded Hash) {
	if r.budget <= 0 {
		return
	}
	for r.size.Load() > r.budget {
		if !r.evictGlobalLRU(justAdded) {
			return
		}
	}
}

// evictGlobalLRU removes the resident entry with the oldest recency
// stamp, skipping spare. It reports false when nothing is evictable —
// spare is the only entry left — which ends budget enforcement.
func (r *Registry) evictGlobalLRU(spare Hash) bool {
	for {
		victim, entries := r.oldestShard(spare)
		if victim == nil || entries <= 1 {
			return false
		}
		freed, evicted := victim.evictOldest(spare)
		if evicted {
			r.size.Add(-freed)
			return true
		}
		// The scanned tail moved (a concurrent touch or removal): rescan.
		// Progress is guaranteed — either some pass evicts, or the store
		// drains to a single entry and oldestShard returns nil.
	}
}

// oldestShard scans all stripes for the one whose LRU tail carries the
// globally oldest recency stamp, ignoring spare, and counts resident
// entries along the way. Each shard is locked only for its own scan.
func (r *Registry) oldestShard(spare Hash) (*shard, int) {
	var victim *shard
	oldest := int64(0)
	entries := 0
	for _, sh := range r.shards {
		n, stamp, ok := sh.oldest(spare)
		entries += n
		if ok && (victim == nil || stamp < oldest) {
			victim = sh
			oldest = stamp
		}
	}
	return victim, entries
}

// Stats returns a snapshot of the counters, aggregated and per shard.
func (r *Registry) Stats() Stats {
	s := Stats{Budget: r.budget, Shards: make([]ShardStats, len(r.shards))}
	for i, sh := range r.shards {
		ss := sh.stats()
		s.Shards[i] = ss
		s.Entries += ss.Entries
		s.Bytes += ss.Bytes
		s.Hits += ss.Hits
		s.Misses += ss.Misses
		s.Evictions += ss.Evictions
	}
	return s
}

// datasetBytes estimates the resident size of a parsed dataset: 4 bytes
// per value code plus the schema strings with per-string overhead. An
// estimate is enough — the budget bounds order of magnitude, not pages.
func datasetBytes(d *dataset.Dataset) int64 {
	const strOverhead = 16
	var n int64
	for i := range d.Attrs {
		n += int64(len(d.Attrs[i].Name)) + strOverhead
		for _, v := range d.Attrs[i].Values {
			n += int64(len(v)) + strOverhead
		}
	}
	n += int64(d.NumRows()) * int64(d.NumAttrs()) * 4
	return n
}
