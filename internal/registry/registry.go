// Package registry is a content-addressed store of parsed datasets: the
// key of a dataset is the SHA-256 of its canonicalized CSV bytes, so the
// same upload — regardless of line endings or a missing trailing newline
// — always resolves to the same entry and is parsed exactly once. The
// store is bounded by a byte budget with LRU eviction and keeps
// hit/miss/eviction counters for /statsz.
//
// The registry is the "mine once, serve many" seam of the service: jobs
// reference datasets by hash, repeated uploads of the same CSV are free,
// and the result cache in package jobs keys on the same hash.
package registry

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/dataset"
)

// Hash is the content address of a dataset: the lower-case hex SHA-256
// of its canonicalized CSV bytes.
type Hash string

// HashBytes computes the content address of raw CSV bytes.
func HashBytes(csv []byte) Hash {
	sum := sha256.Sum256(Canonicalize(csv))
	return Hash(hex.EncodeToString(sum[:]))
}

// Canonicalize normalizes CSV bytes before hashing: CRLF and lone CR
// line endings become LF, and a missing final newline is added. Parsing
// is unaffected (encoding/csv already accepts all three), so two uploads
// that parse identically hash identically.
func Canonicalize(csv []byte) []byte {
	out := make([]byte, 0, len(csv)+1)
	for i := 0; i < len(csv); i++ {
		c := csv[i]
		if c == '\r' {
			if i+1 < len(csv) && csv[i+1] == '\n' {
				i++
			}
			c = '\n'
		}
		out = append(out, c)
	}
	if len(out) > 0 && out[len(out)-1] != '\n' {
		out = append(out, '\n')
	}
	return out
}

// Entry is one registered dataset.
type Entry struct {
	Hash  Hash
	Data  *dataset.Dataset
	Bytes int64 // estimated resident size, charged against the budget
}

// Stats is a point-in-time snapshot of the registry counters.
type Stats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Budget    int64 `json:"budget_bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Registry is a byte-budgeted, content-addressed LRU store of parsed
// datasets. All methods are safe for concurrent use.
type Registry struct {
	mu        sync.Mutex
	budget    int64 // <= 0 means unlimited
	size      int64
	ll        *list.List // front = most recently used; values are *Entry
	entries   map[Hash]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

// New returns a registry bounded by budgetBytes (<= 0 for unlimited).
func New(budgetBytes int64) *Registry {
	return &Registry{
		budget:  budgetBytes,
		ll:      list.New(),
		entries: make(map[Hash]*list.Element),
	}
}

// Register stores the dataset parsed from csv under its content address.
// When the hash is already present the existing entry is returned with
// existed == true and nothing is re-parsed — that dedup is the cache hit
// the counters record. A parse failure stores nothing.
func (r *Registry) Register(csv []byte, opts dataset.CSVOptions) (*Entry, bool, error) {
	h := HashBytes(csv)
	r.mu.Lock()
	if el, ok := r.entries[h]; ok {
		r.ll.MoveToFront(el)
		r.hits++
		e := el.Value.(*Entry)
		r.mu.Unlock()
		return e, true, nil
	}
	r.mu.Unlock()

	// Parse outside the lock: CSV parsing dominates registration cost and
	// must not serialize unrelated requests. A concurrent duplicate upload
	// may parse twice; the second insert below discards its copy.
	data, err := dataset.ReadCSV(bytes.NewReader(csv), opts)
	if err != nil {
		r.mu.Lock()
		r.misses++
		r.mu.Unlock()
		return nil, false, fmt.Errorf("registry: parsing CSV: %w", err)
	}
	e := &Entry{Hash: h, Data: data, Bytes: datasetBytes(data)}

	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.entries[h]; ok { // lost the race to an identical upload
		r.ll.MoveToFront(el)
		r.hits++
		return el.Value.(*Entry), true, nil
	}
	r.misses++
	r.entries[h] = r.ll.PushFront(e)
	r.size += e.Bytes
	r.evictLocked()
	return e, false, nil
}

// Get looks up a dataset by hash, refreshing its LRU position.
func (r *Registry) Get(h Hash) (*Entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.entries[h]
	if !ok {
		r.misses++
		return nil, false
	}
	r.hits++
	r.ll.MoveToFront(el)
	return el.Value.(*Entry), true
}

// evictLocked drops least-recently-used entries until the budget is met.
// The most recent entry is never evicted, so a single dataset larger than
// the whole budget is still usable (and evicts everything else).
func (r *Registry) evictLocked() {
	if r.budget <= 0 {
		return
	}
	for r.size > r.budget && r.ll.Len() > 1 {
		el := r.ll.Back()
		e := el.Value.(*Entry)
		r.ll.Remove(el)
		delete(r.entries, e.Hash)
		r.size -= e.Bytes
		r.evictions++
	}
}

// Stats returns a snapshot of the counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Entries:   r.ll.Len(),
		Bytes:     r.size,
		Budget:    r.budget,
		Hits:      r.hits,
		Misses:    r.misses,
		Evictions: r.evictions,
	}
}

// datasetBytes estimates the resident size of a parsed dataset: 4 bytes
// per value code plus the schema strings with per-string overhead. An
// estimate is enough — the budget bounds order of magnitude, not pages.
func datasetBytes(d *dataset.Dataset) int64 {
	const strOverhead = 16
	var n int64
	for i := range d.Attrs {
		n += int64(len(d.Attrs[i].Name)) + strOverhead
		for _, v := range d.Attrs[i].Values {
			n += int64(len(v)) + strOverhead
		}
	}
	n += int64(d.NumRows()) * int64(d.NumAttrs()) * 4
	return n
}
