package registry

import "sync"

// keyLocks is a refcounted set of per-hash mutexes serializing the
// registry's slow paths — disk promotion, the spill-then-evict cycle,
// and Remove — per content address. The fast paths (memory-hit Get,
// Register's probe and insert) never touch it, so lock striping still
// governs steady-state throughput; what the per-hash lock buys is that
// the multi-step tier transitions, each of which reads or writes the
// spill file outside any shard lock, cannot interleave for the same
// dataset. Without it, two evictors can double-spill one victim and the
// loser — seeing the entry gone and assuming a concurrent Remove —
// deletes the spill file the winner just wrote (silent data loss), and
// a promotion racing a Remove can re-insert a dataset after its DELETE
// was acknowledged.
//
// A lock exists only while held or contended: lock refcounts the entry
// under the table mutex, unlock drops it and deletes the entry at zero,
// so the table is bounded by in-flight operations, not by history.
type keyLocks struct {
	mu sync.Mutex
	m  map[Hash]*keyLock
}

type keyLock struct {
	refs int
	mu   sync.Mutex
}

// lock acquires the mutex for h, creating it on first use. It must not
// be called while holding any shard mutex, and a goroutine must never
// hold two key locks at once (the callers in registry.go release theirs
// before budget enforcement can acquire another) — both rules together
// make deadlock impossible.
func (k *keyLocks) lock(h Hash) {
	k.mu.Lock()
	if k.m == nil {
		k.m = make(map[Hash]*keyLock)
	}
	kl := k.m[h]
	if kl == nil {
		kl = &keyLock{}
		k.m[h] = kl
	}
	kl.refs++
	k.mu.Unlock()
	kl.mu.Lock()
}

// unlock releases the mutex for h, discarding it once no goroutine
// holds or waits on it.
func (k *keyLocks) unlock(h Hash) {
	k.mu.Lock()
	kl := k.m[h]
	kl.refs--
	if kl.refs == 0 {
		delete(k.m, h)
	}
	k.mu.Unlock()
	kl.mu.Unlock()
}
