package registry

import (
	"container/list"
	"sync"
)

// shard is one lock stripe of the registry: its own mutex, LRU list,
// hash index and counters. Shards know nothing of the global budget —
// Registry.enforceBudget drives cross-shard eviction through oldest and
// evictOldest, locking one shard at a time.
type shard struct {
	mu        sync.Mutex
	ll        *list.List // front = most recently used within this shard
	entries   map[Hash]*list.Element
	size      int64
	hits      int64
	misses    int64
	evictions int64
}

// shardEntry is one resident dataset plus its global recency stamp. The
// stamp comes from the registry-wide clock and is refreshed on every
// touch, so comparing the tail stamps of all shards identifies the
// globally least-recently-used entry even though each shard orders only
// its own list.
type shardEntry struct {
	e     *Entry
	stamp int64
}

func newShard() *shard {
	return &shard{ll: list.New(), entries: make(map[Hash]*list.Element)}
}

// get looks up h, refreshing its recency with stamp on a hit. A miss
// moves no counter — Registry.Get and Register decide whether a miss is
// chargeable (a failed parse during Register is, a pre-parse probe is
// not), via miss.
func (s *shard) get(h Hash, stamp int64) (*Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[h]
	if !ok {
		return nil, false
	}
	s.hits++
	s.ll.MoveToFront(el)
	se := el.Value.(*shardEntry)
	se.stamp = stamp
	return se.e, true
}

// miss charges one miss to the shard's counters.
func (s *shard) miss() {
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
}

// put inserts e with the given recency stamp, charging a miss. When the
// hash is already resident — a concurrent identical Register won the
// race — the incumbent is refreshed and returned with existed == true
// and a hit is charged instead; the caller discards its parse.
func (s *shard) put(e *Entry, stamp int64) (*Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[e.Hash]; ok {
		s.hits++
		s.ll.MoveToFront(el)
		se := el.Value.(*shardEntry)
		se.stamp = stamp
		return se.e, true
	}
	s.misses++
	s.entries[e.Hash] = s.ll.PushFront(&shardEntry{e: e, stamp: stamp})
	s.size += e.Bytes
	return e, false
}

// remove drops h, returning the bytes freed.
func (s *shard) remove(h Hash) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[h]
	if !ok {
		return 0, false
	}
	se := el.Value.(*shardEntry)
	s.ll.Remove(el)
	delete(s.entries, h)
	s.size -= se.e.Bytes
	return se.e.Bytes, true
}

// oldest reports the shard's entry count and the recency stamp of its
// LRU tail. A tail equal to spare is not a candidate (ok == false): the
// entry whose insert triggered enforcement is never the victim.
func (s *shard) oldest(spare Hash) (entries int, stamp int64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries = s.ll.Len()
	el := s.ll.Back()
	if el == nil {
		return entries, 0, false
	}
	se := el.Value.(*shardEntry)
	if se.e.Hash == spare {
		return entries, 0, false
	}
	return entries, se.stamp, true
}

// evictStatus classifies the outcome of evictIfUnchanged.
type evictStatus int

const (
	evictOK      evictStatus = iota // the entry was evicted
	evictTouched                    // recency moved since the peek; entry kept
	evictGone                       // the entry is no longer resident
)

// peekOldest returns the shard's LRU-tail entry and its recency stamp
// without evicting, skipping spare the same way evictOldest does. The
// spill-then-evict protocol peeks, writes the spill file outside all
// shard locks, then confirms with evictIfUnchanged.
func (s *shard) peekOldest(spare Hash) (*Entry, int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el := s.ll.Back()
	if el == nil {
		return nil, 0, false
	}
	if el.Value.(*shardEntry).e.Hash == spare {
		if el = el.Prev(); el == nil {
			return nil, 0, false
		}
	}
	se := el.Value.(*shardEntry)
	return se.e, se.stamp, true
}

// stampOf returns h's current recency stamp without refreshing it. The
// eviction cycle calls it after acquiring the victim's key lock to
// confirm the peeked entry is still resident and untouched before
// paying for the spill write; stamps are globally unique per touch, so
// an equal stamp proves nothing happened to the entry in between.
func (s *shard) stampOf(h Hash) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[h]
	if !ok {
		return 0, false
	}
	return el.Value.(*shardEntry).stamp, true
}

// evictIfUnchanged evicts h only if its recency stamp still equals the
// stamp observed at peek time — a compare-and-evict. A stamp mismatch
// means a concurrent Get touched the entry (it is no longer LRU; keep
// it); a missing entry means a concurrent Remove beat us (the caller
// must undo its just-written spill file, or Remove's totality breaks).
func (s *shard) evictIfUnchanged(h Hash, stamp int64) (int64, evictStatus) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[h]
	if !ok {
		return 0, evictGone
	}
	se := el.Value.(*shardEntry)
	if se.stamp != stamp {
		return 0, evictTouched
	}
	s.ll.Remove(el)
	delete(s.entries, h)
	s.size -= se.e.Bytes
	s.evictions++
	return se.e.Bytes, evictOK
}

// evictOldest removes the shard's LRU tail unless it is spare, returning
// the bytes freed. When the tail is spare but older entries sit above it
// (possible only under concurrent touches), the entry just ahead of the
// tail is evicted instead so enforcement still progresses.
func (s *shard) evictOldest(spare Hash) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el := s.ll.Back()
	if el == nil {
		return 0, false
	}
	if el.Value.(*shardEntry).e.Hash == spare {
		if el = el.Prev(); el == nil {
			return 0, false
		}
	}
	se := el.Value.(*shardEntry)
	s.ll.Remove(el)
	delete(s.entries, se.e.Hash)
	s.size -= se.e.Bytes
	s.evictions++
	return se.e.Bytes, true
}

// stats snapshots the shard counters.
func (s *shard) stats() ShardStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ShardStats{
		Entries:   s.ll.Len(),
		Bytes:     s.size,
		Hits:      s.hits,
		Misses:    s.misses,
		Evictions: s.evictions,
	}
}
