package benchfmt

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMineFPGrowthCompas-8   	     244	   4889021 ns/op	 3094016 B/op	   22481 allocs/op
PASS
ok  	repro	2.1s
goos: linux
goarch: amd64
pkg: repro/internal/registry
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRegistryRegister/fresh         	  150000	      7638 ns/op
BenchmarkRegistryRegister/dedup         	 3500000	       339.3 ns/op
BenchmarkRegistryGetDiskFallthrough/memory-hit-8 	 9000000	       133.5 ns/op	      24 B/op	       1 allocs/op
PASS
ok  	repro/internal/registry	4.0s
`

func TestParseMultiPackage(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput), "2026-08-08")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema || rep.Date != "2026-08-08" {
		t.Errorf("header = %q/%q, want %q/2026-08-08", rep.Schema, rep.Date, Schema)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("environment header not captured: %+v", rep)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}

	// Canonical order: package, then name.
	first := rep.Benchmarks[0]
	if first.Package != "repro" || first.Name != "MineFPGrowthCompas" {
		t.Errorf("first benchmark = %s %s, want repro MineFPGrowthCompas", first.Package, first.Name)
	}
	if first.Procs != 8 || first.Iterations != 244 || first.NsPerOp != 4889021 ||
		first.BytesPerOp != 3094016 || first.AllocsPerOp != 22481 {
		t.Errorf("measurements mis-parsed: %+v", first)
	}

	// Without -benchmem the memory columns are explicit absences, and a
	// suffix-free name (GOMAXPROCS=1) parses with procs 1.
	for _, b := range rep.Benchmarks {
		if b.Name == "RegistryRegister/dedup" {
			if b.Procs != 1 || b.NsPerOp != 339.3 || b.BytesPerOp != -1 || b.AllocsPerOp != -1 {
				t.Errorf("dedup arm mis-parsed: %+v", b)
			}
		}
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok  \trepro\t1.0s\n"), "2026-08-08"); err == nil {
		t.Error("want error for input with no benchmark lines")
	}
}

// TestWriteDeterministic pins the committed-bytes contract: same input,
// same output, ending in exactly one newline, with benchmarks sorted
// regardless of input order.
func TestWriteDeterministic(t *testing.T) {
	shuffled := `pkg: z/pkg
BenchmarkZeta-2 	 100	 10 ns/op
pkg: a/pkg
BenchmarkBeta-2 	 100	 20 ns/op
BenchmarkAlpha-2 	 100	 30 ns/op
`
	rep, err := Parse(strings.NewReader(shuffled), "2026-08-08")
	if err != nil {
		t.Fatal(err)
	}
	var w1, w2 strings.Builder
	if err := Write(&w1, rep); err != nil {
		t.Fatal(err)
	}
	if err := Write(&w2, rep); err != nil {
		t.Fatal(err)
	}
	if w1.String() != w2.String() {
		t.Error("two writes of one report differ")
	}
	if !strings.HasSuffix(w1.String(), "}\n") || strings.HasSuffix(w1.String(), "\n\n") {
		t.Errorf("output must end in exactly one newline, got %q tail", w1.String()[len(w1.String())-3:])
	}
	order := []string{"Alpha", "Beta", "Zeta"}
	for i, b := range rep.Benchmarks {
		if b.Name != order[i] {
			t.Errorf("benchmark %d = %s, want %s", i, b.Name, order[i])
		}
	}
}

func TestSplitProcs(t *testing.T) {
	cases := []struct {
		in    string
		name  string
		procs int
	}{
		{"Mine-8", "Mine", 8},
		{"Mine", "Mine", 1},
		{"Registry/disk-fallthrough", "Registry/disk-fallthrough", 1},
		{"Registry/disk-fallthrough-16", "Registry/disk-fallthrough", 16},
	}
	for _, c := range cases {
		name, procs := splitProcs(c.in)
		if name != c.name || procs != c.procs {
			t.Errorf("splitProcs(%q) = %q,%d, want %q,%d", c.in, name, procs, c.name, c.procs)
		}
	}
}
