package discretize

import (
	"fmt"
	"math"
	"sort"
)

// NewEntropyMDLP builds a supervised Binner using the Fayyad–Irani
// entropy minimization heuristic with the MDL stopping criterion
// (Fayyad & Irani, IJCAI'93): cut points are chosen recursively to
// minimize class-label entropy, and a split is accepted only when its
// information gain exceeds the minimum-description-length cost of
// encoding it. This produces bins aligned with label behavior — the
// right default when discretizing continuous attributes for divergence
// analysis of a classifier.
//
// If no cut passes the MDL criterion the attribute carries no label
// signal at any threshold; an error is returned so the caller can fall
// back to unsupervised binning.
func NewEntropyMDLP(xs []float64, labels []bool) (Binner, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("discretize: empty column")
	}
	if len(xs) != len(labels) {
		return nil, fmt.Errorf("discretize: %d values vs %d labels", len(xs), len(labels))
	}
	ps := make([]labeledValue, len(xs))
	for i := range xs {
		if math.IsNaN(xs[i]) {
			return nil, fmt.Errorf("discretize: NaN in column")
		}
		ps[i] = labeledValue{xs[i], labels[i]}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].x < ps[j].x })

	var cuts []float64
	var split func(lo, hi int)
	split = func(lo, hi int) {
		cut, ok := bestMDLPCut(ps, lo, hi)
		if !ok {
			return
		}
		cuts = append(cuts, cut)
		// Partition at the cut (values <= cut go left).
		mid := lo
		for mid < hi && ps[mid].x <= cut {
			mid++
		}
		split(lo, mid)
		split(mid, hi)
	}
	split(0, len(ps))
	if len(cuts) == 0 {
		return nil, fmt.Errorf("discretize: MDLP found no informative cut")
	}
	sort.Float64s(cuts)
	return NewCutPoints(cuts)
}

// labeledValue is one (value, label) observation sorted for cutting.
type labeledValue struct {
	x float64
	y bool
}

// bestMDLPCut finds the boundary cut minimizing weighted entropy in
// ps[lo:hi], and accepts it only if the Fayyad–Irani MDL criterion holds.
func bestMDLPCut(ps []labeledValue, lo, hi int) (float64, bool) {
	n := hi - lo
	if n < 4 {
		return 0, false
	}
	totalPos := 0
	for i := lo; i < hi; i++ {
		if ps[i].y {
			totalPos++
		}
	}
	baseEnt := binaryEntropy(totalPos, n)
	// lint:ignore floatcmp binary entropy is exactly 0 iff the labels are pure
	if baseEnt == 0 {
		return 0, false // pure segment
	}

	bestEnt := math.Inf(1)
	bestIdx := -1
	leftPos := 0
	for i := lo; i < hi-1; i++ {
		if ps[i].y {
			leftPos++
		}
		// Candidate boundaries only between distinct values.
		// lint:ignore floatcmp cut candidates lie between distinct values; exact duplicate test intended
		if ps[i].x == ps[i+1].x {
			continue
		}
		nl := i - lo + 1
		nr := n - nl
		ent := float64(nl)/float64(n)*binaryEntropy(leftPos, nl) +
			float64(nr)/float64(n)*binaryEntropy(totalPos-leftPos, nr)
		if ent < bestEnt {
			bestEnt = ent
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return 0, false
	}

	// MDL acceptance: gain > (log2(n-1) + log2(3^k - 2) - k*E + ...)/n
	// with k classes = 2 on each side.
	gain := baseEnt - bestEnt
	nl := bestIdx - lo + 1
	nr := n - nl
	leftP := 0
	for i := lo; i <= bestIdx; i++ {
		if ps[i].y {
			leftP++
		}
	}
	entL := binaryEntropy(leftP, nl)
	entR := binaryEntropy(totalPos-leftP, nr)
	k := classesIn(totalPos, n)
	kl := classesIn(leftP, nl)
	kr := classesIn(totalPos-leftP, nr)
	delta := math.Log2(math.Pow(3, float64(k))-2) -
		(float64(k)*baseEnt - float64(kl)*entL - float64(kr)*entR)
	threshold := (math.Log2(float64(n-1)) + delta) / float64(n)
	if gain <= threshold {
		return 0, false
	}
	return ps[bestIdx].x, true
}

// classesIn counts the distinct binary classes present.
func classesIn(pos, n int) int {
	switch {
	case pos == 0 || pos == n:
		return 1
	default:
		return 2
	}
}

func binaryEntropy(pos, n int) float64 {
	if n == 0 || pos == 0 || pos == n {
		return 0
	}
	p := float64(pos) / float64(n)
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}
