package discretize

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func TestCutPointsBinning(t *testing.T) {
	b, err := NewCutPoints([]float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x    float64
		want string
	}{
		{2, "<=3"}, {3, "<=3"}, {3.5, "(3-7]"}, {7, "(3-7]"}, {8, ">7"},
	}
	for _, c := range cases {
		if got := b.Bin(c.x); got != c.want {
			t.Errorf("Bin(%v) = %q, want %q", c.x, got, c.want)
		}
	}
	if got := b.Labels(); len(got) != 3 {
		t.Errorf("Labels = %v, want 3 entries", got)
	}
}

func TestCutPointsErrors(t *testing.T) {
	if _, err := NewCutPoints(nil); err == nil {
		t.Error("NewCutPoints(nil) succeeded, want error")
	}
	if _, err := NewCutPoints([]float64{5, 5}); err == nil {
		t.Error("NewCutPoints(non-increasing) succeeded, want error")
	}
}

func TestEqualWidth(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	b, err := NewEqualWidth(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(b.Labels()); got != 5 {
		t.Fatalf("bins = %d, want 5", got)
	}
	// Every value falls in some bin and bins are used in order.
	labels := b.Labels()
	lastIdx := -1
	for _, x := range xs {
		l := b.Bin(x)
		idx := -1
		for i, ll := range labels {
			if ll == l {
				idx = i
			}
		}
		if idx < 0 {
			t.Fatalf("Bin(%v) = %q not among labels", x, l)
		}
		if idx < lastIdx {
			t.Fatalf("bin order regressed at %v", x)
		}
		lastIdx = idx
	}
}

func TestEqualWidthErrors(t *testing.T) {
	if _, err := NewEqualWidth([]float64{1, 2}, 1); err == nil {
		t.Error("n=1 succeeded, want error")
	}
	if _, err := NewEqualWidth([]float64{5, 5, 5}, 3); err == nil {
		t.Error("constant column succeeded, want error")
	}
	if _, err := NewEqualWidth(nil, 3); err == nil {
		t.Error("empty column succeeded, want error")
	}
}

func TestEqualFrequencyBalance(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	b, err := NewEqualFrequency(xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, x := range xs {
		counts[b.Bin(x)]++
	}
	if len(counts) != 4 {
		t.Fatalf("got %d bins, want 4: %v", len(counts), counts)
	}
	for l, c := range counts {
		if c < 200 || c > 300 {
			t.Errorf("bin %q has %d values, want ~250", l, c)
		}
	}
}

func TestEqualFrequencySkewedDuplicates(t *testing.T) {
	// Heavily skewed: most values identical. Bins must merge rather than
	// produce empty or duplicate-labelled bins.
	xs := make([]float64, 100)
	for i := range xs {
		if i < 90 {
			xs[i] = 0
		} else {
			xs[i] = float64(i)
		}
	}
	b, err := NewEqualFrequency(xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(b.Labels()); got < 2 {
		t.Errorf("bins = %d, want >= 2", got)
	}
	// All-constant column: impossible.
	if _, err := NewEqualFrequency([]float64{2, 2, 2}, 3); err == nil {
		t.Error("constant column succeeded, want error")
	}
}

func TestColumnHelper(t *testing.T) {
	b, err := NewCutPoints([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	got := Column([]float64{-1, 1}, b)
	if got[0] != "<=0" || got[1] != ">0" {
		t.Errorf("Column = %v", got)
	}
}

func TestNumericDetection(t *testing.T) {
	b := dataset.NewBuilder("num", "cat")
	for _, rec := range [][]string{{"1", "x"}, {"2.5", "y"}, {"3", "x"}} {
		if err := b.Add(rec...); err != nil {
			t.Fatal(err)
		}
	}
	d, err := b.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if !Numeric(d, 0) {
		t.Error("Numeric(num) = false, want true")
	}
	if Numeric(d, 1) {
		t.Error("Numeric(cat) = true, want false")
	}
}

func TestApplyRediscretizes(t *testing.T) {
	b := dataset.NewBuilder("prior", "sex")
	for _, rec := range [][]string{
		{"0", "M"}, {"1", "F"}, {"4", "M"}, {"9", "M"}, {"2", "F"},
	} {
		if err := b.Add(rec...); err != nil {
			t.Fatal(err)
		}
	}
	d, err := b.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	bin, err := NewCutPoints([]float64{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Apply(d, "prior", bin)
	if err != nil {
		t.Fatal(err)
	}
	idx := out.AttrIndex("prior")
	want := []string{"<=0", "(0-3]", ">3", ">3", "(0-3]"}
	for r, w := range want {
		if got := out.Value(r, idx); got != w {
			t.Errorf("row %d = %q, want %q", r, got, w)
		}
	}
	// Untouched column preserved.
	sIdx := out.AttrIndex("sex")
	if got := out.Value(0, sIdx); got != "M" {
		t.Errorf("sex column altered: %q", got)
	}
	// Errors: unknown attribute, non-numeric attribute.
	if _, err := Apply(d, "ghost", bin); err == nil {
		t.Error("Apply(ghost) succeeded, want error")
	}
	if _, err := Apply(d, "sex", bin); err == nil {
		t.Error("Apply(sex) succeeded, want error")
	}
}

// Property: cut-point binning is monotone — larger values never map to an
// earlier bin — and total: every float maps to exactly one known label.
func TestCutBinnerMonotoneProperty(t *testing.T) {
	f := func(rawCuts []int8, rawXs []int16) bool {
		cutSet := map[float64]bool{}
		for _, c := range rawCuts {
			cutSet[float64(c)] = true
		}
		if len(cutSet) == 0 {
			return true
		}
		cuts := make([]float64, 0, len(cutSet))
		for c := range cutSet {
			cuts = append(cuts, c)
		}
		sort.Float64s(cuts)
		b, err := NewCutPoints(cuts)
		if err != nil {
			return false
		}
		labels := b.Labels()
		rank := map[string]int{}
		for i, l := range labels {
			rank[l] = i
		}
		xs := make([]float64, len(rawXs))
		for i, x := range rawXs {
			xs[i] = float64(x)
		}
		sort.Float64s(xs)
		last := -1
		for _, x := range xs {
			r, ok := rank[b.Bin(x)]
			if !ok || r < last {
				return false
			}
			last = r
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
