package discretize

import (
	"encoding/binary"
	"math"
	"testing"
)

// floatsFromBytes reinterprets fuzz bytes as float64s, so NaN, the
// infinities, subnormals and negative zero all occur naturally.
func floatsFromBytes(data []byte) []float64 {
	xs := make([]float64, 0, len(data)/8)
	for len(data) >= 8 {
		xs = append(xs, math.Float64frombits(binary.LittleEndian.Uint64(data)))
		data = data[8:]
	}
	return xs
}

// FuzzDiscretize hammers every binning strategy with arbitrary float
// columns and bin counts. The invariants: constructors never panic
// (returning an error for degenerate input is fine), an accepted binner
// assigns every input value a label from Labels(), and labels are
// distinct — a duplicate label would silently merge two bins and change
// divergence results downstream.
func FuzzDiscretize(f *testing.F) {
	le := func(vals ...float64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
		}
		return b
	}
	f.Add(le(1, 2, 3, 4, 5), uint8(3))
	f.Add(le(0, 0, 0), uint8(2))
	f.Add(le(math.NaN(), 1, 2), uint8(2))
	f.Add(le(math.Inf(1), math.Inf(-1), 0), uint8(4))
	f.Add(le(-0.0, 0.0, math.SmallestNonzeroFloat64), uint8(2))
	f.Add(le(1e300, -1e300, 1e-300), uint8(5))
	f.Add([]byte{}, uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, nBins uint8) {
		xs := floatsFromBytes(data)
		n := int(nBins%16) + 2 // [2,17]: the constructors' accepted range

		check := func(name string, b Binner, err error) {
			if err != nil {
				return // degenerate input rejected, not panicked
			}
			labels := b.Labels()
			if len(labels) < 2 {
				t.Fatalf("%s: accepted binner has %d labels", name, len(labels))
			}
			known := make(map[string]bool, len(labels))
			for _, l := range labels {
				if known[l] {
					t.Fatalf("%s: duplicate bin label %q", name, l)
				}
				known[l] = true
			}
			for _, x := range xs {
				if math.IsNaN(x) {
					continue // NaN columns are rejected by the constructors
				}
				if l := b.Bin(x); !known[l] {
					t.Fatalf("%s: Bin(%v) = %q, not in Labels() %v", name, x, l, labels)
				}
			}
		}

		ew, err := NewEqualWidth(xs, n)
		check("equal-width", ew, err)
		ef, err := NewEqualFrequency(xs, n)
		check("equal-frequency", ef, err)

		// Explicit cut points derived from the input floats themselves.
		var cuts []float64
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			if len(cuts) == 0 || x > cuts[len(cuts)-1] {
				cuts = append(cuts, x)
			}
			if len(cuts) == n {
				break
			}
		}
		cp, err := NewCutPoints(cuts)
		check("cut-points", cp, err)
	})
}
