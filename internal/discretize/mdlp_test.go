package discretize

import (
	"math/rand"
	"testing"
)

func TestMDLPFindsPlantedThreshold(t *testing.T) {
	// Labels flip at x = 50 with mild noise: MDLP must place a cut near
	// 50 and not fragment the rest.
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 2000)
	labels := make([]bool, 2000)
	for i := range xs {
		xs[i] = rng.Float64() * 100
		labels[i] = xs[i] > 50
		if rng.Float64() < 0.05 {
			labels[i] = !labels[i]
		}
	}
	b, err := NewEntropyMDLP(xs, labels)
	if err != nil {
		t.Fatal(err)
	}
	bins := b.Labels()
	if len(bins) < 2 || len(bins) > 4 {
		t.Fatalf("bins = %v, want 2-4 around one real threshold", bins)
	}
	// The dominant boundary separates the label regimes: points at 40 and
	// 60 land in different bins.
	if b.Bin(40) == b.Bin(60) {
		t.Errorf("40 and 60 share bin %q; cut at 50 missed", b.Bin(40))
	}
}

func TestMDLPTwoThresholds(t *testing.T) {
	// Positive only inside (30, 70): two informative cuts.
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 3000)
	labels := make([]bool, 3000)
	for i := range xs {
		xs[i] = rng.Float64() * 100
		labels[i] = xs[i] > 30 && xs[i] < 70
	}
	b, err := NewEntropyMDLP(xs, labels)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(b.Labels()); got != 3 {
		t.Fatalf("bins = %d (%v), want 3", got, b.Labels())
	}
	if b.Bin(10) == b.Bin(50) || b.Bin(50) == b.Bin(90) || b.Bin(10) != b.Bin(20) {
		t.Errorf("bin structure wrong: %q %q %q", b.Bin(10), b.Bin(50), b.Bin(90))
	}
}

func TestMDLPRejectsNoise(t *testing.T) {
	// Labels independent of x: no cut passes MDL.
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 1000)
	labels := make([]bool, 1000)
	for i := range xs {
		xs[i] = rng.Float64()
		labels[i] = rng.Intn(2) == 0
	}
	if _, err := NewEntropyMDLP(xs, labels); err == nil {
		t.Error("MDLP cut pure noise")
	}
}

func TestMDLPValidation(t *testing.T) {
	if _, err := NewEntropyMDLP(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := NewEntropyMDLP([]float64{1, 2}, []bool{true}); err == nil {
		t.Error("mismatched labels accepted")
	}
	// Pure labels: nothing to split.
	if _, err := NewEntropyMDLP([]float64{1, 2, 3, 4, 5}, []bool{true, true, true, true, true}); err == nil {
		t.Error("pure segment split")
	}
}

func TestBinaryEntropy(t *testing.T) {
	if got := binaryEntropy(5, 10); !almostF(got, 1) {
		t.Errorf("H(0.5) = %v, want 1", got)
	}
	if binaryEntropy(0, 10) != 0 || binaryEntropy(10, 10) != 0 || binaryEntropy(0, 0) != 0 {
		t.Error("degenerate entropies wrong")
	}
}

func almostF(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-12
}
