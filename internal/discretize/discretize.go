// Package discretize converts continuous attributes into the discrete,
// finite domains required by frequent pattern mining (paper Sec. 3.1 and
// Sec. 5). Three strategies are provided: equal-width bins,
// equal-frequency (quantile) bins, and explicit cut points. Property 3.1
// of the paper guarantees that refining a discretization never hides
// divergence; Figure 1 exercises this through the CutPoints strategy.
package discretize

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dataset"
)

// Binner maps float64 values to bin labels.
type Binner interface {
	// Bin returns the label of the bin containing x.
	Bin(x float64) string
	// Labels returns all bin labels in ascending bin order.
	Labels() []string
}

// cutBinner bins by a sorted list of interior cut points: bin i holds
// values in (cuts[i-1], cuts[i]], with open-ended first and last bins.
type cutBinner struct {
	cuts   []float64
	labels []string
}

// NewCutPoints builds a Binner from explicit interior cut points. With k
// cut points there are k+1 bins labelled, e.g. for cuts [3, 7]:
// "<=3.0", "(3.0-7.0]", ">7.0". Cut points must be strictly increasing.
func NewCutPoints(cuts []float64) (Binner, error) {
	if len(cuts) == 0 {
		return nil, fmt.Errorf("discretize: no cut points")
	}
	for i, c := range cuts {
		// NaN compares false against everything, so it would slip past
		// the ordering check below and poison the bin labels.
		if math.IsNaN(c) {
			return nil, fmt.Errorf("discretize: cut point %d is NaN", i)
		}
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			return nil, fmt.Errorf("discretize: cut points not strictly increasing at %d", i)
		}
	}
	strs := make([]string, len(cuts))
	for i, c := range cuts {
		strs[i] = formatCut(c)
	}
	// The compact 6-digit format can render two close cut points
	// identically, which would merge distinct bins under one label. Fall
	// back to the shortest round-trip format, which is injective.
	for i := 1; i < len(strs); i++ {
		if strs[i] == strs[i-1] {
			for j, c := range cuts {
				strs[j] = strconv.FormatFloat(c, 'g', -1, 64)
			}
			break
		}
	}
	labels := make([]string, len(cuts)+1)
	labels[0] = fmt.Sprintf("<=%s", strs[0])
	for i := 1; i < len(cuts); i++ {
		labels[i] = fmt.Sprintf("(%s-%s]", strs[i-1], strs[i])
	}
	labels[len(cuts)] = fmt.Sprintf(">%s", strs[len(cuts)-1])
	return &cutBinner{cuts: append([]float64(nil), cuts...), labels: labels}, nil
}

func formatCut(x float64) string {
	// lint:ignore floatcmp exact integrality test only picks a print format
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return strconv.FormatFloat(x, 'f', 0, 64)
	}
	return strconv.FormatFloat(x, 'g', 6, 64)
}

func (b *cutBinner) Bin(x float64) string {
	// First bin whose cut is >= x.
	i := sort.SearchFloat64s(b.cuts, x)
	// SearchFloat64s returns first index with cuts[i] >= x; values equal to
	// a cut belong to the lower bin (interval closed on the right).
	return b.labels[i]
}

func (b *cutBinner) Labels() []string { return append([]string(nil), b.labels...) }

// NewEqualWidth builds a Binner with n bins of equal width spanning the
// observed range of xs. Requires n >= 2 and a non-degenerate range.
func NewEqualWidth(xs []float64, n int) (Binner, error) {
	if n < 2 {
		return nil, fmt.Errorf("discretize: need at least 2 bins, got %d", n)
	}
	lo, hi, err := minMax(xs)
	if err != nil {
		return nil, err
	}
	// lint:ignore floatcmp exact min==max detects a constant column; no tolerance wanted
	if lo == hi {
		return nil, fmt.Errorf("discretize: constant column cannot be equal-width binned")
	}
	if math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return nil, fmt.Errorf("discretize: infinite range [%v, %v] cannot be equal-width binned", lo, hi)
	}
	cuts := make([]float64, n-1)
	width := (hi - lo) / float64(n)
	for i := range cuts {
		cuts[i] = lo + width*float64(i+1)
	}
	return NewCutPoints(cuts)
}

// NewEqualFrequency builds a Binner with up to n bins containing roughly
// equal numbers of observations (quantile binning). Duplicate quantiles
// are merged, so the result may have fewer than n bins; an error is
// returned if fewer than 2 distinct bins remain.
func NewEqualFrequency(xs []float64, n int) (Binner, error) {
	if n < 2 {
		return nil, fmt.Errorf("discretize: need at least 2 bins, got %d", n)
	}
	if _, _, err := minMax(xs); err != nil {
		return nil, err
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var cuts []float64
	for i := 1; i < n; i++ {
		pos := float64(i) * float64(len(sorted)-1) / float64(n)
		c := sorted[int(math.Round(pos))]
		if len(cuts) == 0 || c > cuts[len(cuts)-1] {
			cuts = append(cuts, c)
		}
	}
	// Drop a trailing cut equal to the maximum, which would create an
	// empty last bin.
	for len(cuts) > 0 && cuts[len(cuts)-1] >= sorted[len(sorted)-1] {
		cuts = cuts[:len(cuts)-1]
	}
	if len(cuts) == 0 {
		return nil, fmt.Errorf("discretize: not enough distinct values for %d bins", n)
	}
	return NewCutPoints(cuts)
}

func minMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, fmt.Errorf("discretize: empty column")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs {
		if math.IsNaN(x) {
			return 0, 0, fmt.Errorf("discretize: NaN in column")
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Column applies a Binner to a float column, producing string labels
// suitable for dataset.Builder.
func Column(xs []float64, b Binner) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = b.Bin(x)
	}
	return out
}

// Numeric reports whether every value of the attribute parses as a
// number, i.e. whether the column is a candidate for discretization.
func Numeric(d *dataset.Dataset, attr int) bool {
	for _, v := range d.Attrs[attr].Values {
		if _, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err != nil {
			return false
		}
	}
	return true
}

// Apply rebuilds a dataset with the named attribute re-discretized using
// the given binner. The attribute's current values must all be numeric.
func Apply(d *dataset.Dataset, attrName string, b Binner) (*dataset.Dataset, error) {
	idx := d.AttrIndex(attrName)
	if idx < 0 {
		return nil, fmt.Errorf("discretize: unknown attribute %q", attrName)
	}
	parsed := make([]float64, d.Attrs[idx].Cardinality())
	for code, v := range d.Attrs[idx].Values {
		x, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return nil, fmt.Errorf("discretize: attribute %q value %q is not numeric: %w",
				attrName, v, err)
		}
		parsed[code] = x
	}
	names := make([]string, d.NumAttrs())
	for i := range d.Attrs {
		names[i] = d.Attrs[i].Name
	}
	nb := dataset.NewBuilder(names...)
	rec := make([]string, d.NumAttrs())
	for r := range d.Rows {
		for j := range d.Attrs {
			if j == idx {
				rec[j] = b.Bin(parsed[d.Rows[r][j]])
			} else {
				rec[j] = d.Value(r, j)
			}
		}
		if err := nb.Add(rec...); err != nil {
			return nil, err
		}
	}
	nb.SortDomains()
	return nb.Dataset()
}
