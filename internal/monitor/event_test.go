package monitor

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func testParser(t *testing.T) *Parser {
	t.Helper()
	s, err := validSpec().Validate()
	if err != nil {
		t.Fatal(err)
	}
	return NewParser(s)
}

func TestParseEvent(t *testing.T) {
	p := testParser(t)
	ev, err := p.Parse([]byte(`{"t": 1500, "attrs": {"color": "green", "size": "l", "age": 30}, "truth": false, "pred": true}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if ev.T != 1500 {
		t.Errorf("T = %d", ev.T)
	}
	if ev.Vals[0] != 1 || ev.Vals[1] != 1 || ev.Vals[2] != 1 {
		t.Errorf("Vals = %v, want [1 1 1]", ev.Vals)
	}
	if ev.Class != core.ClassFP {
		t.Errorf("Class = %d, want FP", ev.Class)
	}
}

func TestParseEventOutcomeForms(t *testing.T) {
	p := testParser(t)
	for _, tc := range []struct {
		truth, pred string
		want        uint8
	}{
		{"true", "true", core.ClassTP},
		{"1", "0", core.ClassFN},
		{"0", "0", core.ClassTN},
		{"false", "1", core.ClassFP},
	} {
		line := `{"t": 0, "attrs": {"color": "red", "size": "s", "age": 1}, "truth": ` + tc.truth + `, "pred": ` + tc.pred + `}`
		ev, err := p.Parse([]byte(line))
		if err != nil {
			t.Fatalf("Parse(%s/%s): %v", tc.truth, tc.pred, err)
		}
		if ev.Class != tc.want {
			t.Errorf("truth=%s pred=%s: class %d, want %d", tc.truth, tc.pred, ev.Class, tc.want)
		}
	}
}

func TestParseEventRejects(t *testing.T) {
	p := testParser(t)
	cases := []struct {
		name, line, want string
	}{
		{"garbage", `nope`, "decoding"},
		{"negative time", `{"t": -1, "attrs": {"color":"red","size":"s","age":1}, "truth": 1, "pred": 0}`, "negative"},
		{"missing attr", `{"t": 0, "attrs": {"color":"red","size":"s"}, "truth": 1, "pred": 0}`, "missing 1"},
		{"unknown value", `{"t": 0, "attrs": {"color":"mauve","size":"s","age":1}, "truth": 1, "pred": 0}`, "no value"},
		{"string for numeric", `{"t": 0, "attrs": {"color":"red","size":"s","age":"old"}, "truth": 1, "pred": 0}`, "wants a number"},
		{"number for categorical", `{"t": 0, "attrs": {"color":3,"size":"s","age":1}, "truth": 1, "pred": 0}`, "wants a string"},
		{"non-finite age", `{"t": 0, "attrs": {"color":"red","size":"s","age":1e999}, "truth": 1, "pred": 0}`, ""},
		{"missing truth", `{"t": 0, "attrs": {"color":"red","size":"s","age":1}, "pred": 0}`, "truth"},
		{"outcome 2", `{"t": 0, "attrs": {"color":"red","size":"s","age":1}, "truth": 2, "pred": 0}`, "0/1"},
		{"outcome string", `{"t": 0, "attrs": {"color":"red","size":"s","age":1}, "truth": "yes", "pred": 0}`, "0/1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := p.Parse([]byte(tc.line)); err == nil {
				t.Fatalf("accepted %s", tc.line)
			} else if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestParseEventIgnoresUnknownAttrs(t *testing.T) {
	p := testParser(t)
	_, err := p.Parse([]byte(`{"t": 0, "attrs": {"color":"red","size":"s","age":1,"extra":"x"}, "truth": 1, "pred": 1}`))
	if err != nil {
		t.Fatalf("unknown attribute should be ignored, got %v", err)
	}
}

func TestParseBatch(t *testing.T) {
	p := testParser(t)
	body := []byte(`{"t": 0, "attrs": {"color":"red","size":"s","age":1}, "truth": 1, "pred": 1}

garbage line
{"t": 10, "attrs": {"color":"blue","size":"l","age":60}, "truth": 0, "pred": 0}
`)
	b := p.ParseBatch(body)
	if len(b.Events) != 2 || b.Invalid != 1 {
		t.Fatalf("got %d events, %d invalid; want 2, 1", len(b.Events), b.Invalid)
	}
	if b.FirstErr == nil {
		t.Fatal("no FirstErr sampled")
	}
	if b.Events[1].Vals[2] != 2 {
		t.Errorf("age 60 binned to %d, want 2", b.Events[1].Vals[2])
	}
}
