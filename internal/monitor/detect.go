package monitor

import "math"

// AlertState is one subgroup's position in the alert lifecycle.
//
// The machine is ok → warning → firing → resolved → (ok | firing), with
// hysteresis on both edges: firing requires FiringStreak consecutive
// exceedances of the CUSUM threshold H, and a firing alert resolves only
// after ResolveStreak consecutive observations below ResolveRatio×H.
// resolved is a one-evaluation notification state that decays to ok.
type AlertState uint8

const (
	StateOK AlertState = iota
	StateWarning
	StateFiring
	StateResolved
)

// String names the state for JSON payloads and logs.
func (s AlertState) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateWarning:
		return "warning"
	case StateFiring:
		return "firing"
	case StateResolved:
		return "resolved"
	}
	return "unknown"
}

// zGate bounds how surprising an observation may be and still update the
// EW baseline: beyond this many sigmas the sample is treated as part of
// a potential shift and excluded, so the baseline cannot chase the very
// drift it is supposed to expose.
const zGate = 3.0

// minSigma floors the standard-deviation estimate so a perfectly flat
// warmup (variance zero) does not turn the first wiggle into an infinite
// z-score.
const minSigma = 1e-6

// cusumCap clamps the CUSUM accumulators to cusumCap×H. Because the
// z-gate keeps the baseline from chasing a shift, a long-lived shift
// would otherwise grow the accumulator without bound and the alert could
// never resolve; the cap bounds recovery latency after the shift ends.
const cusumCap = 4.0

// detector tracks one subgroup's divergence series: a Welford warmup to
// seed the baseline, an exponentially-weighted mean/variance baseline
// with a z-gate, a two-sided CUSUM on the standardized residuals, and
// the alert state machine. One detector per tracked pattern key.
type detector struct {
	cfg DetectionConfig

	n        int     // observations consumed
	mean     float64 // baseline mean (Welford during warmup, then EW)
	m2       float64 // Welford sum of squared deviations (warmup only)
	variance float64 // EW variance after warmup

	sPos, sNeg float64 // CUSUM accumulators, upward and downward

	state         AlertState
	fireStreak    int
	resolveStreak int

	lastDiv, lastZ, lastStat float64
}

// update consumes one divergence observation and returns the state
// transition it caused, if any.
func (d *detector) update(x float64) (from, to AlertState, changed bool) {
	from = d.state
	d.lastDiv = x
	d.n++
	if d.n <= d.cfg.MinSamples {
		// Warmup: establish the baseline before judging anything.
		delta := x - d.mean
		d.mean += delta / float64(d.n)
		d.m2 += delta * (x - d.mean)
		if d.n == d.cfg.MinSamples {
			d.variance = d.m2 / math.Max(1, float64(d.n-1))
		}
		d.lastZ, d.lastStat = 0, 0
		return from, d.state, false
	}

	sigma := math.Sqrt(d.variance)
	if sigma < minSigma {
		sigma = minSigma
	}
	z := (x - d.mean) / sigma
	d.lastZ = z

	// The baseline only absorbs unsurprising samples; shifted ones feed
	// the CUSUM instead of re-centering it.
	if math.Abs(z) <= zGate {
		delta := x - d.mean
		d.mean += d.cfg.Lambda * delta
		d.variance = (1 - d.cfg.Lambda) * (d.variance + d.cfg.Lambda*delta*delta)
	}

	d.sPos = math.Min(math.Max(0, d.sPos+z-d.cfg.K), cusumCap*d.cfg.H)
	d.sNeg = math.Min(math.Max(0, d.sNeg-z-d.cfg.K), cusumCap*d.cfg.H)
	stat := math.Max(d.sPos, d.sNeg)
	d.lastStat = stat

	d.step(stat)
	return from, d.state, d.state != from
}

// step advances the alert state machine on the current CUSUM statistic.
func (d *detector) step(stat float64) {
	switch d.state {
	case StateOK, StateWarning, StateResolved:
		switch {
		case stat >= d.cfg.H:
			d.fireStreak++
			if d.fireStreak >= d.cfg.FiringStreak {
				d.state = StateFiring
				d.fireStreak = 0
				d.resolveStreak = 0
			} else if d.state != StateFiring {
				d.state = StateWarning
			}
		case stat >= d.cfg.WarnRatio*d.cfg.H:
			d.fireStreak = 0
			d.state = StateWarning
		default:
			d.fireStreak = 0
			d.state = StateOK
		}
	case StateFiring:
		if stat < d.cfg.ResolveRatio*d.cfg.H {
			d.resolveStreak++
			if d.resolveStreak >= d.cfg.ResolveStreak {
				d.state = StateResolved
				d.resolveStreak = 0
				// A resolved alert starts clean: the shift is over, so
				// accumulated evidence for it must not linger.
				d.sPos, d.sNeg = 0, 0
			}
		} else {
			d.resolveStreak = 0
		}
	}
}
