package monitor

import "testing"

func testDetCfg() DetectionConfig { return DetectionConfig{}.withDefaults() }

// feed pushes xs through the detector and returns every transition.
func feed(d *detector, xs []float64) [][2]AlertState {
	var out [][2]AlertState
	for _, x := range xs {
		if from, to, changed := d.update(x); changed {
			out = append(out, [2]AlertState{from, to})
		}
	}
	return out
}

func repeat(x float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = x
	}
	return out
}

func TestDetectorWarmupNeverAlerts(t *testing.T) {
	d := &detector{cfg: testDetCfg()}
	// Wildly varying values, but all within warmup: no transitions.
	if trs := feed(d, []float64{0, 1, -1, 2, -2, 3, -3, 4}); len(trs) != 0 {
		t.Fatalf("transitions during warmup: %v", trs)
	}
	if d.state != StateOK {
		t.Fatalf("state after warmup = %v", d.state)
	}
}

func TestDetectorShiftFiresWithHysteresis(t *testing.T) {
	cfg := testDetCfg()
	d := &detector{cfg: cfg}
	feed(d, repeat(0, cfg.MinSamples)) // flat baseline
	// A sustained upward shift. The first exceedance may only warn
	// (FiringStreak = 2); the second must fire.
	trs := feed(d, repeat(0.2, 4))
	if len(trs) < 2 {
		t.Fatalf("transitions = %v, want warning then firing", trs)
	}
	if trs[0] != [2]AlertState{StateOK, StateWarning} {
		t.Fatalf("first transition %v, want ok->warning", trs[0])
	}
	if trs[1] != [2]AlertState{StateWarning, StateFiring} {
		t.Fatalf("second transition %v, want warning->firing", trs[1])
	}
	if d.state != StateFiring {
		t.Fatalf("state = %v, want firing", d.state)
	}
	// One quiet sample must NOT resolve (ResolveStreak = 3).
	feed(d, []float64{0})
	if d.state != StateFiring {
		t.Fatalf("single quiet sample resolved the alert (state %v)", d.state)
	}
}

func TestDetectorResolvesAfterShiftEnds(t *testing.T) {
	cfg := testDetCfg()
	d := &detector{cfg: cfg}
	feed(d, repeat(0, cfg.MinSamples))
	feed(d, repeat(0.2, 5)) // drive to firing (accumulator capped at 4H)
	if d.state != StateFiring {
		t.Fatalf("setup: state %v", d.state)
	}
	// Back to baseline: the capped accumulator decays by K per step, so
	// the alert resolves within a bounded number of quiet evaluations.
	maxSteps := int(cusumCap*cfg.H/cfg.K) + cfg.ResolveStreak + 2
	resolved := false
	for i := 0; i < maxSteps; i++ {
		if _, to, changed := d.update(0); changed && to == StateResolved {
			resolved = true
			break
		}
	}
	if !resolved {
		t.Fatalf("alert did not resolve within %d quiet evaluations (state %v, stat %v)", maxSteps, d.state, d.lastStat)
	}
	// The resolved state decays to ok on the next quiet sample, with
	// CUSUM evidence cleared.
	d.update(0)
	if d.state != StateOK {
		t.Fatalf("resolved did not decay to ok (state %v)", d.state)
	}
	if d.sPos != 0 && d.lastStat >= cfg.ResolveRatio*cfg.H {
		t.Fatalf("CUSUM evidence not reset after resolve: sPos %v", d.sPos)
	}
}

func TestDetectorDownwardShiftFiresToo(t *testing.T) {
	cfg := testDetCfg()
	d := &detector{cfg: cfg}
	feed(d, repeat(0.5, cfg.MinSamples))
	feed(d, repeat(0.1, 4))
	if d.state != StateFiring {
		t.Fatalf("two-sided CUSUM missed a downward shift (state %v)", d.state)
	}
}

func TestDetectorStationarySeriesStaysOK(t *testing.T) {
	d := &detector{cfg: testDetCfg()}
	// A gently oscillating series around a fixed mean: no alerts.
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 0.3
		if i%2 == 0 {
			xs[i] = 0.31
		}
	}
	if trs := feed(d, xs); len(trs) != 0 {
		t.Fatalf("stationary series produced transitions: %v", trs)
	}
}
