package monitor

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/datagen"
)

// driftSpec matches the datagen.Drift default schema: three categorical
// attributes attr0..attr2 with values aN_v0..aN_v2.
func driftSpec() Spec {
	return Spec{
		Name: "drift",
		Attributes: []AttrSpec{
			{Name: "attr0", Values: []string{"a0_v0", "a0_v1", "a0_v2"}},
			{Name: "attr1", Values: []string{"a1_v0", "a1_v1", "a1_v2"}},
			{Name: "attr2", Values: []string{"a2_v0", "a2_v1", "a2_v2"}},
		},
		Metric: "FPR",
		// Singletons only (the planted subgroup is one attribute) and a
		// tumbling window: sliding evaluations overlap, so their divergence
		// observations are autocorrelated and noise streaks inflate CUSUM;
		// tumbles give the detector the independent samples it assumes.
		MaxLen:     1,
		Window:     WindowConfig{BucketMs: 500, Buckets: 8, Tumbling: true},
		Detection:  DetectionConfig{MinSamples: 10, H: 8},
		MinSupport: 0.05,
	}
}

// awaitEvents polls until the monitor's worker has folded in n events.
func awaitEvents(t *testing.T, m *Monitor, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m.Counters().Events >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("worker processed %d of %d events before timeout", m.Counters().Events, n)
}

// ingestStream feeds a drift stream to the monitor in per-bucket batches,
// retrying on backpressure, and waits for the worker to drain.
func ingestStream(t *testing.T, m *Monitor, s *datagen.DriftStream, batch int) {
	t.Helper()
	accepted := int64(0)
	for from := 0; from < len(s.Events); from += batch {
		to := from + batch
		if to > len(s.Events) {
			to = len(s.Events)
		}
		body := s.Body(from, to)
		for {
			res, err := m.Ingest(body)
			if errors.Is(err, ErrIngestBackpressure) {
				time.Sleep(time.Millisecond)
				continue
			}
			if err != nil {
				t.Fatalf("Ingest: %v", err)
			}
			if res.Invalid != 0 {
				t.Fatalf("generator produced invalid lines: %+v", res)
			}
			accepted += int64(res.Accepted)
			break
		}
	}
	awaitEvents(t, m, accepted)
}

func hasSubgroup(itemset []string, want string) bool {
	for _, it := range itemset {
		if it == want {
			return true
		}
	}
	return false
}

// TestMonitorDetectsPlantedDrift is the package-level end-to-end check:
// a seeded stream whose attr0=a0_v0 subgroup's FPR jumps mid-stream must
// raise a firing alert on that subgroup, and the matching control stream
// (same seed, no shift) must stay silent.
func TestMonitorDetectsPlantedDrift(t *testing.T) {
	const (
		seed   = 42
		events = 12000
		batch  = 100 // one bucket's worth per body (StepMs 10 × 100 = BucketMs)
	)
	gen := func(shiftAt int) *datagen.DriftStream {
		s, err := datagen.Drift(seed, datagen.DriftConfig{
			Events:  events,
			ShiftAt: shiftAt,
		})
		if err != nil {
			t.Fatalf("Drift: %v", err)
		}
		return s
	}

	mgr := NewManager(Config{})
	defer mgr.Close()

	drifted, err := mgr.Create(driftSpec())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	control, err := mgr.Create(driftSpec())
	if err != nil {
		t.Fatalf("Create control: %v", err)
	}

	ingestStream(t, drifted, gen(events/2), batch)
	ingestStream(t, control, gen(events), batch) // ShiftAt == Events: no drift

	// The drifted monitor must have fired on the planted subgroup.
	fired := false
	for _, tr := range drifted.TransitionsSince(0) {
		if tr.To == "firing" && hasSubgroup(tr.Itemset, "attr0=a0_v0") {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatalf("no firing transition on attr0=a0_v0; transitions: %+v, counters: %+v",
			drifted.TransitionsSince(0), drifted.Counters())
	}

	// The planted subgroup must surface in the snapshot's top list with a
	// positive FPR divergence.
	snap := drifted.Snapshot()
	found := false
	for _, sg := range snap.Top {
		if len(sg.Itemset) == 1 && sg.Itemset[0] == "attr0=a0_v0" {
			found = true
			if sg.Divergence <= 0 {
				t.Errorf("planted subgroup divergence %v, want > 0", sg.Divergence)
			}
		}
	}
	if !found {
		t.Errorf("planted subgroup missing from snapshot top: %+v", snap.Top)
	}

	// The control stream must never fire, on any subgroup.
	for _, tr := range control.TransitionsSince(0) {
		if tr.To == "firing" {
			t.Fatalf("control stream fired: %+v", tr)
		}
	}
	if c := control.Counters(); c.AlertsFired != 0 {
		t.Fatalf("control alerts_fired = %d, want 0", c.AlertsFired)
	}
}

func TestMonitorBackpressure(t *testing.T) {
	mgr := NewManager(Config{QueueDepth: 1})
	defer mgr.Close()
	m, err := mgr.Create(driftSpec())
	if err != nil {
		t.Fatal(err)
	}
	line := []byte(`{"t":0,"attrs":{"attr0":"a0_v0","attr1":"a1_v0","attr2":"a2_v0"},"truth":0,"pred":0}`)

	// Stall the worker by holding mu (process() needs it), leaving the
	// 1-slot queue as the only buffer. The ingest side runs in a separate
	// goroutine because the backpressure accounting takes mu too.
	m.mu.Lock()
	done := make(chan bool, 1)
	go func() {
		// Attempt 1 fills the queue (or hands straight to the stalled
		// worker); by attempt 3 the queue must be full.
		for i := 0; i < 3; i++ {
			if _, err := m.Ingest(line); errors.Is(err, ErrIngestBackpressure) {
				done <- true
				return
			}
		}
		done <- false
	}()
	// Give the goroutine time to hit the full queue (it then blocks on mu
	// inside the backpressure branch until we release it).
	time.Sleep(50 * time.Millisecond)
	m.mu.Unlock()
	if !<-done {
		t.Fatal("queue depth 1 with a stalled worker never returned ErrIngestBackpressure")
	}
	if m.Counters().DroppedFull == 0 {
		t.Error("backpressure did not count dropped events")
	}
}

func TestMonitorIngestInvalidLines(t *testing.T) {
	mgr := NewManager(Config{})
	defer mgr.Close()
	m, err := mgr.Create(driftSpec())
	if err != nil {
		t.Fatal(err)
	}
	body := []byte("not json\n" +
		`{"t":0,"attrs":{"attr0":"a0_v0","attr1":"a1_v0","attr2":"a2_v0"},"truth":1,"pred":1}` + "\n")
	res, err := m.Ingest(body)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if res.Accepted != 1 || res.Invalid != 1 || res.Error == "" {
		t.Fatalf("result %+v, want 1 accepted, 1 invalid, sampled error", res)
	}
	awaitEvents(t, m, 1)
	if c := m.Counters(); c.EventsInvalid != 1 {
		t.Fatalf("events_invalid = %d, want 1", c.EventsInvalid)
	}
}

func TestMonitorIngestAfterDelete(t *testing.T) {
	mgr := NewManager(Config{})
	defer mgr.Close()
	m, err := mgr.Create(driftSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Delete(m.ID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	line := []byte(`{"t":0,"attrs":{"attr0":"a0_v0","attr1":"a1_v0","attr2":"a2_v0"},"truth":0,"pred":0}`)
	if _, err := m.Ingest(line); !errors.Is(err, ErrMonitorStopped) {
		t.Fatalf("Ingest after delete: %v, want ErrMonitorStopped", err)
	}
}

// TestMonitorConcurrentIngestSnapshotDelete exercises ingest, snapshot
// reads, SSE-style transition polling, and deletion all racing — the
// -race tier's main course.
func TestMonitorConcurrentIngestSnapshotDelete(t *testing.T) {
	s, err := datagen.Drift(7, datagen.DriftConfig{Events: 4000, ShiftAt: 1000})
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(Config{})
	defer mgr.Close()
	m, err := mgr.Create(driftSpec())
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Two ingest goroutines racing over disjoint halves of the stream.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(from, to int) {
			defer wg.Done()
			for i := from; i < to; i += 50 {
				end := i + 50
				if end > to {
					end = to
				}
				if _, err := m.Ingest(s.Body(i, end)); err != nil {
					return // stopped or backpressured: both fine here
				}
			}
		}(g*2000, (g+1)*2000)
	}
	// A reader hammering the serving surface.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var seq int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = m.Snapshot()
			_ = m.Counters()
			for _, tr := range m.TransitionsSince(seq) {
				if tr.Seq <= seq {
					t.Error("TransitionsSince returned a stale seq")
					return
				}
				seq = tr.Seq
			}
		}
	}()
	// Delete mid-flight.
	time.Sleep(5 * time.Millisecond)
	if err := mgr.Delete(m.ID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	close(stop)
	wg.Wait()

	if _, ok := mgr.Get(m.ID); ok {
		t.Fatal("deleted monitor still listed")
	}
	// Post-delete reads must still be safe (deleted monitors keep
	// serving their final state to in-flight handlers).
	_ = m.Snapshot()
	if _, err := m.Ingest(s.Body(0, 1)); !errors.Is(err, ErrMonitorStopped) {
		t.Fatalf("ingest after delete: %v", err)
	}
}

func TestTransitionsSinceSeqWindow(t *testing.T) {
	mgr := NewManager(Config{})
	defer mgr.Close()
	m, err := mgr.Create(driftSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Fabricate transitions through the internal recorder to check ring
	// trimming and resumption without driving real detections.
	m.mu.Lock()
	d := &detector{cfg: m.spec.Detection}
	for i := 0; i < maxTransitions+10; i++ {
		m.record(int64(i), nil, d, StateOK, StateWarning)
	}
	m.mu.Unlock()

	all := m.TransitionsSince(0)
	if len(all) != maxTransitions {
		t.Fatalf("ring holds %d, want %d", len(all), maxTransitions)
	}
	if all[0].Seq != 11 {
		t.Fatalf("oldest retained seq = %d, want 11", all[0].Seq)
	}
	tail := m.TransitionsSince(all[len(all)-1].Seq - 2)
	if len(tail) != 2 {
		t.Fatalf("resumption returned %d transitions, want 2", len(tail))
	}
	if got := m.TransitionsSince(all[len(all)-1].Seq); got != nil {
		t.Fatalf("caught-up subscriber got %d transitions, want none", len(got))
	}
}

func TestSnapshotTopKOrderedByAbsDivergence(t *testing.T) {
	mgr := NewManager(Config{})
	defer mgr.Close()
	m, err := mgr.Create(driftSpec())
	if err != nil {
		t.Fatal(err)
	}
	s, err := datagen.Drift(11, datagen.DriftConfig{Events: 6000, ShiftAt: 2000})
	if err != nil {
		t.Fatal(err)
	}
	ingestStream(t, m, s, 100)
	snap := m.Snapshot()
	if len(snap.Top) == 0 {
		t.Fatal("empty top list after 6000 events")
	}
	if len(snap.Top) > m.spec.TopK {
		t.Fatalf("top has %d entries, spec.TopK is %d", len(snap.Top), m.spec.TopK)
	}
	for i := 1; i < len(snap.Top); i++ {
		a, b := snap.Top[i-1], snap.Top[i]
		if abs(a.Divergence) < abs(b.Divergence) {
			t.Fatalf("top not sorted by |divergence|: %v before %v", a.Divergence, b.Divergence)
		}
	}
	for _, sg := range snap.Top {
		for _, it := range sg.Itemset {
			if !strings.Contains(it, "=") {
				t.Fatalf("itemset entry %q not in attr=value form", it)
			}
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
