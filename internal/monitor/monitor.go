package monitor

import (
	"errors"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fpm"
)

// maxTransitions bounds the per-monitor transition log. SSE subscribers
// poll faster than buckets close, so a short ring is plenty; a subscriber
// that falls further behind than this simply misses the oldest
// transitions.
const maxTransitions = 256

// latencyEwmaLambda smooths the detection-latency counter (the time from
// batch arrival to the batch being folded into the window).
const latencyEwmaLambda = 0.2

// ErrMonitorStopped is returned for ingest into a deleted monitor.
var ErrMonitorStopped = errors.New("monitor: monitor is deleted")

// ingestBatch is one accepted ingest body on its way to the worker.
type ingestBatch struct {
	events []Event
	at     time.Time
}

// Transition is one alert state change, seq-stamped for SSE resumption.
type Transition struct {
	Seq        int64    `json:"seq"`
	TimeMs     int64    `json:"time_ms"` // event-time end of the closing bucket
	Itemset    []string `json:"itemset"`
	Metric     string   `json:"metric"`
	From       string   `json:"from"`
	To         string   `json:"to"`
	Divergence float64  `json:"divergence"`
	Z          float64  `json:"z"`
	Cusum      float64  `json:"cusum"`
}

// SubgroupStatus is one tracked subgroup in a snapshot.
type SubgroupStatus struct {
	Itemset    []string `json:"itemset"`
	Support    float64  `json:"support"`
	Rate       float64  `json:"rate"`
	Divergence float64  `json:"divergence"`
	Z          float64  `json:"z"`
	Cusum      float64  `json:"cusum"`
	State      string   `json:"state"`
}

// Counters are one monitor's observability counters.
type Counters struct {
	Events             int64   `json:"events"`
	EventsInvalid      int64   `json:"events_invalid"`
	DroppedFull        int64   `json:"events_dropped_full"`
	DroppedLate        int64   `json:"events_dropped_late"`
	Advances           int64   `json:"windows_advanced"`
	Remines            int64   `json:"remines"`
	Resets             int64   `json:"window_resets"`
	TrackedPatterns    int     `json:"tracked_patterns"`
	AlertsFiring       int     `json:"alerts_firing"`
	AlertsFired        int64   `json:"alerts_fired"`
	Transitions        int64   `json:"alert_transitions"`
	MineErrors         int64   `json:"mine_errors"`
	DetectionLatencyMs float64 `json:"detection_latency_ms"`
	QueueLen           int     `json:"queue_len"`
	QueueCap           int     `json:"queue_cap"`
}

// Snapshot is the serving view of one monitor: window position, the
// top-K divergent subgroups with their alert states, and counters.
type Snapshot struct {
	ID            string           `json:"id"`
	Name          string           `json:"name,omitempty"`
	CreatedAt     time.Time        `json:"created_at"`
	Spec          Spec             `json:"spec"`
	WindowRows    int              `json:"window_rows"`
	BucketsFilled int              `json:"window_buckets_filled"`
	WindowStartMs int64            `json:"window_start_ms"`
	BucketStartMs int64            `json:"current_bucket_start_ms"`
	GlobalRate    float64          `json:"global_rate"`
	Top           []SubgroupStatus `json:"top"`
	Counters      Counters         `json:"counters"`
}

// IngestResult reports what one ingest body yielded: events accepted
// into the buffer, lines rejected by validation, and a sample error.
type IngestResult struct {
	Accepted int    `json:"accepted"`
	Invalid  int    `json:"invalid"`
	Error    string `json:"error,omitempty"`
}

// Monitor is one live monitor: an immutable spec and parser, a bounded
// ingest queue drained by a single worker goroutine, and the mu-guarded
// window + detection state the worker and snapshot readers share.
type Monitor struct {
	ID        string
	CreatedAt time.Time

	spec   Spec
	parser *Parser
	metric core.Metric

	queue    chan ingestBatch
	stopc    chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	mu          sync.Mutex
	win         *window
	detectors   map[string]*detector
	transitions []Transition
	nextSeq     int64

	events      int64
	invalid     int64
	droppedFull int64
	alertsFired int64
	transCount  int64
	mineErrs    int64
	latEwmaNs   float64
}

// newMonitor builds a monitor for a validated spec and starts its worker.
func newMonitor(id string, spec Spec, queueDepth int, created time.Time) *Monitor {
	metric, err := core.MetricByName(spec.Metric)
	if err != nil {
		// Validate resolved the metric already; reaching here is a bug.
		// lint:ignore libprint invariant: Validate resolved the metric before the spec could reach newMonitor
		panic("monitor: spec with unresolvable metric: " + spec.Metric)
	}
	m := &Monitor{
		ID:        id,
		CreatedAt: created,
		spec:      spec,
		parser:    NewParser(spec),
		metric:    metric,
		queue:     make(chan ingestBatch, queueDepth),
		stopc:     make(chan struct{}),
		done:      make(chan struct{}),
		win:       newWindow(spec),
		detectors: make(map[string]*detector),
	}
	go m.run()
	return m
}

// Spec returns the monitor's validated spec.
func (m *Monitor) Spec() Spec { return m.spec }

// run drains the ingest queue until the monitor is stopped. Batches
// still queued at stop are dropped: window contents are lossy by
// contract, and deletion is terminal.
func (m *Monitor) run() {
	defer close(m.done)
	for {
		select {
		case <-m.stopc:
			return
		case b := <-m.queue:
			m.process(b)
		}
	}
}

// stop terminates the worker and waits for it to exit.
func (m *Monitor) stop() {
	m.stopOnce.Do(func() { close(m.stopc) })
	<-m.done
}

// Ingest validates one JSON-lines body and enqueues its events. Invalid
// lines are counted and skipped. A full queue rejects the whole batch
// with ErrIngestBackpressure; a deleted monitor with ErrMonitorStopped.
func (m *Monitor) Ingest(body []byte) (IngestResult, error) {
	b := m.parser.ParseBatch(body)
	res := IngestResult{Accepted: len(b.Events), Invalid: b.Invalid}
	if b.FirstErr != nil {
		res.Error = b.FirstErr.Error()
	}
	if b.Invalid > 0 {
		m.mu.Lock()
		m.invalid += int64(b.Invalid)
		m.mu.Unlock()
	}
	if len(b.Events) == 0 {
		select {
		case <-m.stopc:
			return res, ErrMonitorStopped
		default:
			return res, nil
		}
	}
	select {
	case <-m.stopc:
		res.Accepted = 0
		return res, ErrMonitorStopped
	default:
	}
	select {
	case m.queue <- ingestBatch{events: b.Events, at: time.Now()}:
		return res, nil
	case <-m.stopc:
		res.Accepted = 0
		return res, ErrMonitorStopped
	default:
		m.mu.Lock()
		m.droppedFull += int64(len(b.Events))
		m.mu.Unlock()
		res.Accepted = 0
		return res, ErrIngestBackpressure
	}
}

// process folds one batch into the window, evaluating detection at every
// bucket the batch closes.
func (m *Monitor) process(b ingestBatch) {
	m.mu.Lock()
	for i := range b.events {
		m.win.ingest(b.events[i], m)
	}
	m.events += int64(len(b.events))
	lat := float64(time.Since(b.at).Nanoseconds())
	// lint:ignore floatcmp exact zero marks "no sample yet"; the EWMA seeds from the first one
	if m.latEwmaNs == 0 {
		m.latEwmaNs = lat
	} else {
		m.latEwmaNs = (1-latencyEwmaLambda)*m.latEwmaNs + latencyEwmaLambda*lat
	}
	m.mu.Unlock()
}

// evaluate implements the window's evaluator callback: re-mine if the
// frequent set may have shifted, then push each tracked subgroup's
// divergence through its detector. Called with mu held (from process).
func (m *Monitor) evaluate(endMs int64) {
	w := m.win
	if w.rowsIn == 0 {
		return
	}
	minCount := w.minCount()
	if w.needRemine(minCount) {
		if err := w.remine(minCount); err != nil {
			m.mineErrs++
			return
		}
		m.pruneDetectors(endMs)
	}
	overall, ok := rate(m.metric.Pos, m.metric.Neg, w.total)
	if !ok {
		return
	}
	for i := range w.tracked {
		t := &w.tracked[i]
		if t.tally.Total() < minCount {
			continue
		}
		r, ok := rate(m.metric.Pos, m.metric.Neg, t.tally)
		if !ok {
			continue
		}
		div := r - overall
		d := m.detectors[t.key]
		if d == nil {
			d = &detector{cfg: m.spec.Detection}
			m.detectors[t.key] = d
		}
		if from, to, changed := d.update(div); changed {
			m.record(endMs, t.items, d, from, to)
		}
	}
}

// pruneDetectors drops detectors whose subgroup is no longer tracked
// after a re-mine. A firing detector resolves on the way out so
// subscribers see the alert close rather than vanish.
func (m *Monitor) pruneDetectors(endMs int64) {
	tracked := make(map[string]bool, len(m.win.tracked))
	for i := range m.win.tracked {
		tracked[m.win.tracked[i].key] = true
	}
	var stale []string
	for k := range m.detectors {
		if !tracked[k] {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale) // deterministic transition order
	for _, k := range stale {
		d := m.detectors[k]
		if d.state == StateFiring || d.state == StateWarning {
			from := d.state
			d.state = StateResolved
			d.lastStat = 0
			m.record(endMs, fpm.ParseKey(k), d, from, StateResolved)
		}
		delete(m.detectors, k)
	}
}

// record appends one transition to the seq-stamped ring, dropping the
// oldest entries past maxTransitions. Called with mu held.
func (m *Monitor) record(endMs int64, items fpm.Itemset, d *detector, from, to AlertState) {
	m.nextSeq++
	m.transCount++
	if to == StateFiring {
		m.alertsFired++
	}
	m.transitions = append(m.transitions, Transition{
		Seq:        m.nextSeq,
		TimeMs:     endMs,
		Itemset:    m.win.names(items),
		Metric:     m.spec.Metric,
		From:       from.String(),
		To:         to.String(),
		Divergence: d.lastDiv,
		Z:          d.lastZ,
		Cusum:      d.lastStat,
	})
	if n := len(m.transitions); n > maxTransitions {
		copy(m.transitions, m.transitions[n-maxTransitions:])
		m.transitions = m.transitions[:maxTransitions]
	}
}

// Snapshot assembles the serving view: window position, the top-K
// tracked subgroups by absolute divergence, and counters.
func (m *Monitor) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.win
	s := Snapshot{
		ID:            m.ID,
		Name:          m.spec.Name,
		CreatedAt:     m.CreatedAt,
		Spec:          m.spec,
		WindowRows:    w.rowsIn,
		BucketsFilled: w.count,
		BucketStartMs: w.curStart,
		WindowStartMs: w.curStart - int64(w.count-1)*w.cfg.BucketMs,
		Counters:      m.countersLocked(),
	}
	if overall, ok := rate(m.metric.Pos, m.metric.Neg, w.total); ok {
		s.GlobalRate = overall
		minCount := w.minCount()
		total := float64(w.rowsIn)
		for i := range w.tracked {
			t := &w.tracked[i]
			sup := t.tally.Total()
			if sup < minCount {
				continue
			}
			r, ok := rate(m.metric.Pos, m.metric.Neg, t.tally)
			if !ok {
				continue
			}
			st := SubgroupStatus{
				Itemset:    w.names(t.items),
				Support:    float64(sup) / total,
				Rate:       r,
				Divergence: r - overall,
				State:      StateOK.String(),
			}
			if d := m.detectors[t.key]; d != nil {
				st.Z, st.Cusum, st.State = d.lastZ, d.lastStat, d.state.String()
			}
			s.Top = append(s.Top, st)
		}
		sort.Slice(s.Top, func(i, j int) bool {
			di, dj := math.Abs(s.Top[i].Divergence), math.Abs(s.Top[j].Divergence)
			// lint:ignore floatcmp exact tie-break; equal divergences fall through to the name order
			if di != dj {
				return di > dj
			}
			return lessNames(s.Top[i].Itemset, s.Top[j].Itemset)
		})
		if len(s.Top) > m.spec.TopK {
			s.Top = s.Top[:m.spec.TopK]
		}
	}
	return s
}

// lessNames orders itemset name slices lexicographically (tie-break for
// deterministic snapshots).
func lessNames(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Counters returns the monitor's counters.
func (m *Monitor) Counters() Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.countersLocked()
}

// countersLocked assembles Counters; mu must be held.
func (m *Monitor) countersLocked() Counters {
	firing := 0
	for _, d := range m.detectors {
		if d.state == StateFiring {
			firing++
		}
	}
	return Counters{
		Events:             m.events,
		EventsInvalid:      m.invalid,
		DroppedFull:        m.droppedFull,
		DroppedLate:        m.win.lateDrops,
		Advances:           m.win.advances,
		Remines:            m.win.remines,
		Resets:             m.win.resetJumps,
		TrackedPatterns:    len(m.win.tracked),
		AlertsFiring:       firing,
		AlertsFired:        m.alertsFired,
		Transitions:        m.transCount,
		MineErrors:         m.mineErrs,
		DetectionLatencyMs: m.latEwmaNs / 1e6,
		QueueLen:           len(m.queue),
		QueueCap:           cap(m.queue),
	}
}

// TransitionsSince returns the logged transitions with Seq > seq, oldest
// first — the SSE poll read.
func (m *Monitor) TransitionsSince(seq int64) []Transition {
	m.mu.Lock()
	defer m.mu.Unlock()
	i := sort.Search(len(m.transitions), func(i int) bool {
		return m.transitions[i].Seq > seq
	})
	if i == len(m.transitions) {
		return nil
	}
	out := make([]Transition, len(m.transitions)-i)
	copy(out, m.transitions[i:])
	return out
}
