package monitor

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/datagen"
)

// BenchmarkMonitorIngest measures the full ingest path — JSON-lines
// parsing, queue handoff, and the worker folding events into the window —
// in events per op (one op = one 100-event batch).
func BenchmarkMonitorIngest(b *testing.B) {
	s, err := datagen.Drift(1, datagen.DriftConfig{Events: 100, StepMs: 1})
	if err != nil {
		b.Fatal(err)
	}
	body := s.Body(0, 100)

	mgr := NewManager(Config{QueueDepth: 256})
	defer mgr.Close()
	spec := driftSpec()
	spec.Window.BucketMs = 100 // one advance per ingested body
	m, err := mgr.Create(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			if _, err := m.Ingest(body); !errors.Is(err, ErrIngestBackpressure) {
				break
			}
			time.Sleep(10 * time.Microsecond)
		}
	}
	b.StopTimer()
	awaitDrained(b, m)
}

func awaitDrained(b *testing.B, m *Monitor) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if m.Counters().QueueLen == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	b.Fatal("worker never drained")
}

// BenchmarkWindowAdvance measures the raw window engine: steady-state
// ingest at a fixed per-bucket row count across window lengths. The
// advance is O(bucket), so ns/op must stay flat as the window grows —
// the acceptance criterion for the incremental design.
func BenchmarkWindowAdvance(b *testing.B) {
	const rowsPerBucket = 200
	for _, buckets := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("win=%d", buckets), func(b *testing.B) {
			spec := driftSpec()
			spec.Window = WindowConfig{BucketMs: 100, Buckets: buckets}
			vs, err := spec.Validate()
			if err != nil {
				b.Fatal(err)
			}
			w := newWindow(vs)
			rng := rand.New(rand.NewSource(9))
			events := make([]Event, rowsPerBucket)
			for i := range events {
				events[i] = randomDriftEvent(rng)
			}
			// Prefill the full ring and mine once so the steady-state loop
			// pays the real apply cost: total + per-item + tracked tallies.
			tms := int64(0)
			for f := 0; f < buckets; f++ {
				for r := range events {
					ev := events[r]
					ev.T = tms
					w.ingest(ev, nopEval{})
				}
				tms += vs.Window.BucketMs
			}
			if err := w.remine(w.minCount()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := events[i%rowsPerBucket]
				ev.T = tms
				w.ingest(ev, nopEval{})
				if (i+1)%rowsPerBucket == 0 {
					tms += vs.Window.BucketMs
				}
			}
		})
	}
}

// randomDriftEvent draws a valid event for the driftSpec schema.
func randomDriftEvent(rng *rand.Rand) Event {
	return Event{
		Vals:  []uint8{uint8(rng.Intn(3)), uint8(rng.Intn(3)), uint8(rng.Intn(3))},
		Class: uint8(rng.Intn(4)),
	}
}
