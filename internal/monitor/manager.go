package monitor

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/jobs"
)

// Errors the manager surfaces to the serving layer.
var (
	// ErrNotFound reports an unknown monitor id.
	ErrNotFound = errors.New("monitor: no such monitor")
	// ErrTooManyMonitors is the create-side capacity bound.
	ErrTooManyMonitors = errors.New("monitor: monitor limit reached")
	// ErrManagerClosed rejects operations after Close.
	ErrManagerClosed = errors.New("monitor: manager is closed")
)

// Config shapes a Manager.
type Config struct {
	// QueueDepth is each monitor's ingest buffer in batches (default 64).
	QueueDepth int
	// MaxMonitors bounds concurrently live monitors (default 32).
	MaxMonitors int
	// Store, when non-nil, makes monitor specs durable: create and delete
	// append fsynced WAL records, and Recover rebuilds the live set from
	// the log. Window contents are not persisted (lossy by contract).
	Store *jobs.Store
}

// Stats aggregates monitor counters for /statsz. Lifetime counters
// (events, alerts, ...) include monitors that have since been deleted.
type Stats struct {
	Active             int     `json:"active"`
	Created            int64   `json:"created"`
	Deleted            int64   `json:"deleted"`
	Durable            bool    `json:"durable"`
	Recovered          int64   `json:"recovered"`
	Events             int64   `json:"events_ingested"`
	EventsInvalid      int64   `json:"events_invalid"`
	DroppedFull        int64   `json:"events_dropped_full"`
	DroppedLate        int64   `json:"events_dropped_late"`
	Advances           int64   `json:"windows_advanced"`
	Remines            int64   `json:"remines"`
	AlertsFiring       int     `json:"alerts_firing"`
	AlertsFired        int64   `json:"alerts_fired"`
	Transitions        int64   `json:"alert_transitions"`
	MineErrors         int64   `json:"mine_errors"`
	DetectionLatencyMs float64 `json:"detection_latency_ms"` // max over live monitors
}

// retired accumulates the final counters of deleted monitors so the
// manager's lifetime stats stay monotonic across deletions.
type retired struct {
	events, invalid, droppedFull, droppedLate int64
	advances, remines                         int64
	alertsFired, transitions, mineErrs        int64
}

// Manager owns the live monitor set: create/get/list/delete, WAL
// durability for specs, and aggregated stats. All methods are safe for
// concurrent use.
type Manager struct {
	cfg Config

	mu        sync.Mutex
	monitors  map[string]*Monitor
	retiring  map[string]*Monitor
	closed    bool
	created   int64
	deleted   int64
	recovered int64
	ret       retired
}

// NewManager builds a manager. Call Recover before serving if a store
// is attached, and Close on shutdown.
func NewManager(cfg Config) *Manager {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxMonitors <= 0 {
		cfg.MaxMonitors = 32
	}
	return &Manager{
		cfg:      cfg,
		monitors: make(map[string]*Monitor),
		retiring: make(map[string]*Monitor),
	}
}

// newMonitorID mints a random 16-hex-char monitor id, prefixed so ids
// are recognizable in logs shared with jobs.
func newMonitorID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; surface loudly.
		// lint:ignore libprint crypto/rand failure means the platform is unusable; no caller can act on an id error
		panic("monitor: reading random bytes: " + err.Error())
	}
	return "mon-" + hex.EncodeToString(b[:])
}

// Create validates spec, persists it (when durable), and starts the
// monitor. The WAL append is the acknowledgment gate: a spec the store
// cannot record is refused, exactly like job submission.
func (g *Manager) Create(spec Spec) (*Monitor, error) {
	spec, err := spec.Validate()
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, ErrManagerClosed
	}
	if len(g.monitors) >= g.cfg.MaxMonitors {
		return nil, fmt.Errorf("%w (max %d)", ErrTooManyMonitors, g.cfg.MaxMonitors)
	}
	id := newMonitorID()
	if g.cfg.Store != nil {
		raw, err := json.Marshal(spec)
		if err != nil {
			return nil, fmt.Errorf("monitor: encoding spec: %w", err)
		}
		if err := g.cfg.Store.Append(jobs.Record{Type: jobs.RecMonitorCreated, Job: id, Monitor: raw}); err != nil {
			return nil, fmt.Errorf("monitor: persisting create: %w", err)
		}
	}
	m := newMonitor(id, spec, g.cfg.QueueDepth, time.Now())
	g.monitors[id] = m
	g.created++
	return m, nil
}

// Get returns the monitor with the given id.
func (g *Manager) Get(id string) (*Monitor, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	m, ok := g.monitors[id]
	return m, ok
}

// List returns the live monitors, oldest first (id tie-break).
func (g *Manager) List() []*Monitor {
	g.mu.Lock()
	out := make([]*Monitor, 0, len(g.monitors))
	for _, m := range g.monitors {
		out = append(out, m)
	}
	g.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].CreatedAt.Equal(out[j].CreatedAt) {
			return out[i].CreatedAt.Before(out[j].CreatedAt)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Delete retires a monitor: the deletion is persisted first (when
// durable; a delete the store cannot record is refused), then the worker
// is stopped and the monitor's final counters fold into the lifetime
// stats. Queued-but-unprocessed events are dropped — window contents are
// lossy.
func (g *Manager) Delete(id string) error {
	g.mu.Lock()
	m, ok := g.monitors[id]
	if !ok {
		g.mu.Unlock()
		return ErrNotFound
	}
	if g.cfg.Store != nil {
		if err := g.cfg.Store.Append(jobs.Record{Type: jobs.RecMonitorDeleted, Job: id}); err != nil {
			g.mu.Unlock()
			return fmt.Errorf("monitor: persisting delete: %w", err)
		}
	}
	// Keep the monitor visible to Stats while its worker drains: between
	// map removal and the fold below, its counters live nowhere else and
	// a concurrent sampler would watch the lifetime totals dip.
	delete(g.monitors, id)
	g.retiring[id] = m
	g.deleted++
	g.mu.Unlock()

	m.stop()
	c := m.Counters()
	g.mu.Lock()
	g.foldLocked(c)
	delete(g.retiring, id)
	g.mu.Unlock()
	return nil
}

// foldLocked accumulates a retiring monitor's counters; g.mu held.
func (g *Manager) foldLocked(c Counters) {
	g.ret.events += c.Events
	g.ret.invalid += c.EventsInvalid
	g.ret.droppedFull += c.DroppedFull
	g.ret.droppedLate += c.DroppedLate
	g.ret.advances += c.Advances
	g.ret.remines += c.Remines
	g.ret.alertsFired += c.AlertsFired
	g.ret.transitions += c.Transitions
	g.ret.mineErrs += c.MineErrors
}

// Recover rebuilds the live monitor set from the attached store's
// replayed log: created records introduce a spec, deleted records retire
// it, last writer wins in log order. Monitors come back with their
// original ids and empty windows (the documented lossy restart). Specs
// that no longer validate are skipped with an error, not fatal — one bad
// historic record must not block startup. Returns the number of monitors
// restored.
func (g *Manager) Recover() (int, error) {
	if g.cfg.Store == nil {
		return 0, nil
	}
	type entry struct {
		raw  json.RawMessage
		at   time.Time
		seq  int
		live bool
	}
	byID := make(map[string]*entry)
	seq := 0
	for _, rec := range g.cfg.Store.Replay() {
		switch rec.Type {
		case jobs.RecMonitorCreated:
			seq++
			byID[rec.Job] = &entry{raw: rec.Monitor, at: rec.Time, seq: seq, live: true}
		case jobs.RecMonitorDeleted:
			if e := byID[rec.Job]; e != nil {
				e.live = false
			}
		}
	}
	ids := make([]string, 0, len(byID))
	for id, e := range byID {
		if e.live {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return byID[ids[i]].seq < byID[ids[j]].seq })

	var firstErr error
	n := 0
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return 0, ErrManagerClosed
	}
	for _, id := range ids {
		e := byID[id]
		var spec Spec
		err := json.Unmarshal(e.raw, &spec)
		if err == nil {
			spec, err = spec.Validate()
		}
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("monitor: recovering %s: %w", id, err)
			}
			continue
		}
		if _, dup := g.monitors[id]; dup {
			continue
		}
		created := e.at
		if created.IsZero() {
			created = time.Now()
		}
		g.monitors[id] = newMonitor(id, spec, g.cfg.QueueDepth, created)
		g.created++
		n++
	}
	g.recovered = int64(n)
	return n, firstErr
}

// Stats aggregates counters over live monitors plus retired totals.
// Retiring monitors (deleted, worker still draining) count via their
// live counters until the fold lands — ret and the retiring set are
// snapshotted under one lock, so each monitor is counted exactly once
// and the lifetime totals never move backwards.
func (g *Manager) Stats() Stats {
	g.mu.Lock()
	live := make([]*Monitor, 0, len(g.monitors)+len(g.retiring))
	for _, m := range g.monitors {
		live = append(live, m)
	}
	for _, m := range g.retiring {
		live = append(live, m)
	}
	s := Stats{
		Active:        len(g.monitors),
		Created:       g.created,
		Deleted:       g.deleted,
		Durable:       g.cfg.Store != nil,
		Recovered:     g.recovered,
		Events:        g.ret.events,
		EventsInvalid: g.ret.invalid,
		DroppedFull:   g.ret.droppedFull,
		DroppedLate:   g.ret.droppedLate,
		Advances:      g.ret.advances,
		Remines:       g.ret.remines,
		AlertsFired:   g.ret.alertsFired,
		Transitions:   g.ret.transitions,
		MineErrors:    g.ret.mineErrs,
	}
	g.mu.Unlock()
	for _, m := range live {
		c := m.Counters()
		s.Events += c.Events
		s.EventsInvalid += c.EventsInvalid
		s.DroppedFull += c.DroppedFull
		s.DroppedLate += c.DroppedLate
		s.Advances += c.Advances
		s.Remines += c.Remines
		s.AlertsFiring += c.AlertsFiring
		s.AlertsFired += c.AlertsFired
		s.Transitions += c.Transitions
		s.MineErrors += c.MineErrors
		if c.DetectionLatencyMs > s.DetectionLatencyMs {
			s.DetectionLatencyMs = c.DetectionLatencyMs
		}
	}
	return s
}

// Close stops every monitor worker. The store is owned by the jobs
// engine and is not closed here. Idempotent.
func (g *Manager) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	live := make([]*Monitor, 0, len(g.monitors))
	for id, m := range g.monitors {
		live = append(live, m)
		g.retiring[id] = m
	}
	g.monitors = make(map[string]*Monitor)
	g.mu.Unlock()
	for _, m := range live {
		m.stop()
	}
	// Fold the final counters so lifetime totals survive shutdown (and
	// stay visible through the drain via the retiring set, as in Delete).
	// Only the monitors retired above: one retired by a concurrent Delete
	// is still draining and will be folded, once, by that Delete.
	g.mu.Lock()
	for _, m := range live {
		g.foldLocked(m.Counters())
		delete(g.retiring, m.ID)
	}
	g.mu.Unlock()
}
