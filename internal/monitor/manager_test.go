package monitor

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/registry"
)

func TestManagerCreateGetListDelete(t *testing.T) {
	mgr := NewManager(Config{})
	defer mgr.Close()

	a, err := mgr.Create(driftSpec())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	b, err := mgr.Create(validSpec())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if a.ID == b.ID {
		t.Fatalf("duplicate monitor ids: %s", a.ID)
	}
	if got, ok := mgr.Get(a.ID); !ok || got != a {
		t.Fatalf("Get(%s) = %v, %v", a.ID, got, ok)
	}
	if l := mgr.List(); len(l) != 2 {
		t.Fatalf("List has %d monitors, want 2", len(l))
	}
	if err := mgr.Delete(a.ID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, ok := mgr.Get(a.ID); ok {
		t.Fatal("deleted monitor still gettable")
	}
	if err := mgr.Delete(a.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second Delete: %v, want ErrNotFound", err)
	}
	st := mgr.Stats()
	if st.Active != 1 || st.Created != 2 || st.Deleted != 1 || st.Durable {
		t.Fatalf("stats %+v", st)
	}
}

func TestManagerLimit(t *testing.T) {
	mgr := NewManager(Config{MaxMonitors: 1})
	defer mgr.Close()
	if _, err := mgr.Create(driftSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Create(driftSpec()); !errors.Is(err, ErrTooManyMonitors) {
		t.Fatalf("over-limit Create: %v, want ErrTooManyMonitors", err)
	}
}

func TestManagerClosed(t *testing.T) {
	mgr := NewManager(Config{})
	m, err := mgr.Create(driftSpec())
	if err != nil {
		t.Fatal(err)
	}
	mgr.Close()
	mgr.Close() // idempotent
	if _, err := mgr.Create(driftSpec()); !errors.Is(err, ErrManagerClosed) {
		t.Fatalf("Create after Close: %v, want ErrManagerClosed", err)
	}
	if _, err := m.Ingest([]byte(`{}`)); !errors.Is(err, ErrMonitorStopped) {
		t.Fatalf("ingest after Close: %v, want ErrMonitorStopped", err)
	}
}

func TestManagerRejectsInvalidSpec(t *testing.T) {
	mgr := NewManager(Config{})
	defer mgr.Close()
	if _, err := mgr.Create(Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}

// TestManagerWALRecovery is the durability contract end to end: specs
// survive a restart with their ids, deletions are honored in log order,
// and windows come back empty.
func TestManagerWALRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := jobs.OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}

	mgr := NewManager(Config{Store: st})
	keep1, err := mgr.Create(driftSpec())
	if err != nil {
		t.Fatal(err)
	}
	doomed, err := mgr.Create(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	keep2, err := mgr.Create(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Fold some events into a window: they must NOT survive the restart.
	if _, err := keep1.Ingest([]byte(`{"t":0,"attrs":{"attr0":"a0_v0","attr1":"a1_v0","attr2":"a2_v0"},"truth":1,"pred":1}`)); err != nil {
		t.Fatal(err)
	}
	awaitEvents(t, keep1, 1)
	if err := mgr.Delete(doomed.ID); err != nil {
		t.Fatal(err)
	}
	mgr.Close()
	if err := st.Close(); err != nil {
		t.Fatalf("Close store: %v", err)
	}

	// Restart: a fresh store replays the log, a fresh manager recovers.
	st2, err := jobs.OpenStore(dir)
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	defer st2.Close()
	mgr2 := NewManager(Config{Store: st2})
	defer mgr2.Close()
	n, err := mgr2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if n != 2 {
		t.Fatalf("recovered %d monitors, want 2", n)
	}
	for _, want := range []*Monitor{keep1, keep2} {
		got, ok := mgr2.Get(want.ID)
		if !ok {
			t.Fatalf("monitor %s not recovered", want.ID)
		}
		if !reflect.DeepEqual(got.Spec(), want.Spec()) {
			t.Fatalf("recovered spec for %s differs:\n got %+v\nwant %+v", want.ID, got.Spec(), want.Spec())
		}
		if got.Snapshot().WindowRows != 0 {
			t.Fatalf("recovered monitor %s has a non-empty window", want.ID)
		}
	}
	if _, ok := mgr2.Get(doomed.ID); ok {
		t.Fatal("deleted monitor resurrected by recovery")
	}
	if st := mgr2.Stats(); st.Recovered != 2 || !st.Durable {
		t.Fatalf("stats after recovery: %+v", st)
	}

	// A recovered monitor must accept ingest immediately.
	rec, _ := mgr2.Get(keep1.ID)
	if res, err := rec.Ingest([]byte(`{"t":0,"attrs":{"attr0":"a0_v1","attr1":"a1_v1","attr2":"a2_v1"},"truth":0,"pred":1}`)); err != nil || res.Accepted != 1 {
		t.Fatalf("ingest into recovered monitor: %+v, %v", res, err)
	}
}

// TestJobRecoveryIgnoresMonitorRecords guards the shared-WAL seam: a log
// full of monitor records must not produce phantom jobs when the jobs
// engine replays it.
func TestJobRecoveryIgnoresMonitorRecords(t *testing.T) {
	dir := t.TempDir()
	st, err := jobs.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(Config{Store: st})
	if _, err := mgr.Create(driftSpec()); err != nil {
		t.Fatal(err)
	}
	mgr.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	eng, err := jobs.New(jobs.Config{Registry: registry.New(0)})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := eng.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	n, err := eng.Recover(dir)
	if err != nil {
		t.Fatalf("job recovery over monitor records: %v", err)
	}
	if n != 0 {
		t.Fatalf("monitor records produced %d phantom jobs", n)
	}
}
