// Package monitor turns the batch divergence auditor into a live
// classifier-behavior monitor: a stream of per-decision events (attribute
// values plus the classifier's outcome) is bucketed into event-time
// windows, per-subgroup outcome tallies are maintained incrementally, and
// each subgroup's divergence series is watched with EWMA smoothing and
// two-sided CUSUM change detection. A subgroup whose divergence shifts
// significantly walks an alert state machine (ok → warning → firing →
// resolved) with hysteresis on both edges, and every transition is pushed
// to subscribers over SSE.
//
// The architecture has four layers (DESIGN.md §13):
//
//   - ingest: batches of JSON-line events are validated against the
//     monitor's declared schema and enqueued on a bounded per-monitor
//     buffer; a full buffer is explicit backpressure
//     (ErrIngestBackpressure), mirroring the job queue's ErrQueueFull.
//   - windowing: a ring of event-time buckets. Tallies for the window's
//     tracked subgroups are incremented as events arrive and decremented
//     as buckets expire, so advancing the window is O(bucket), not
//     O(window). The frequent-pattern set itself is re-mined through
//     fpm's streaming pattern seam only when it may have shifted.
//   - detection: per-subgroup divergence series with EWMA baselines,
//     z-scores and two-sided CUSUM statistics, feeding the alert state
//     machine.
//   - serving: the Manager exposes create/get/delete plus snapshots and
//     a seq-stamped transition log that internal/server rides for SSE.
//
// Monitor specs are durable when a jobs.Store is attached: creation and
// deletion append WAL records, so monitors survive a restart with fresh
// (empty) windows — in-flight window contents are declared lossy.
package monitor

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/dataset"
)

// Bounds on a monitor spec. Attribute domains are capped at 255 values
// so window rows can store one byte per attribute.
const (
	MaxAttrs       = 64
	MaxCardinality = 255
	MaxBuckets     = 4096
	MaxPatternLen  = 6
)

// AttrSpec declares one attribute of the event schema: categorical
// (Values lists the domain) or numeric (Cuts gives ascending bin
// boundaries; values are discretized into len(Cuts)+1 bins). Exactly one
// of Values and Cuts must be set.
type AttrSpec struct {
	Name   string    `json:"name"`
	Values []string  `json:"values,omitempty"`
	Cuts   []float64 `json:"cuts,omitempty"`
}

// numeric reports whether the attribute discretizes numbers.
func (a *AttrSpec) numeric() bool { return len(a.Cuts) > 0 }

// cardinality returns the attribute's domain size.
func (a *AttrSpec) cardinality() int {
	if a.numeric() {
		return len(a.Cuts) + 1
	}
	return len(a.Values)
}

// bin returns the bin code for a numeric value: the number of cuts <= v.
func (a *AttrSpec) bin(v float64) uint8 {
	lo, hi := 0, len(a.Cuts)
	for lo < hi {
		mid := (lo + hi) / 2
		if v >= a.Cuts[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint8(lo)
}

// binLabels renders the numeric bins as half-open interval labels, the
// value names a mined subgroup reports.
func (a *AttrSpec) binLabels() []string {
	labels := make([]string, len(a.Cuts)+1)
	prev := "-inf"
	for i, c := range a.Cuts {
		cs := strconv.FormatFloat(c, 'g', -1, 64)
		labels[i] = "[" + prev + "," + cs + ")"
		prev = cs
	}
	labels[len(a.Cuts)] = "[" + prev + ",+inf)"
	return labels
}

// WindowConfig shapes the event-time window. A sliding window evaluates
// on every bucket close over the most recent Buckets buckets; a tumbling
// window evaluates once every Buckets buckets and then starts empty.
type WindowConfig struct {
	// BucketMs is the event-time width of one bucket in milliseconds.
	BucketMs int64 `json:"bucket_ms"`
	// Buckets is the window length in buckets.
	Buckets int `json:"buckets"`
	// Tumbling selects tumbling semantics (default sliding).
	Tumbling bool `json:"tumbling,omitempty"`
}

// DetectionConfig tunes the change detector. Zero values select the
// defaults noted on each field.
type DetectionConfig struct {
	// Lambda is the EWMA weight for the divergence baseline (default 0.2).
	Lambda float64 `json:"lambda,omitempty"`
	// K is the CUSUM slack in standard deviations (default 0.5).
	K float64 `json:"k,omitempty"`
	// H is the CUSUM alarm threshold (default 5).
	H float64 `json:"h,omitempty"`
	// WarnRatio scales H down to the warning threshold (default 0.6).
	WarnRatio float64 `json:"warn_ratio,omitempty"`
	// ResolveRatio scales H down to the resolve threshold (default 0.5).
	ResolveRatio float64 `json:"resolve_ratio,omitempty"`
	// MinSamples is the warmup length: evaluations that only feed the
	// baseline before any alerting starts (default 8).
	MinSamples int `json:"min_samples,omitempty"`
	// FiringStreak is how many consecutive evaluations must exceed H
	// before warning escalates to firing (default 2) — the rising-edge
	// hysteresis.
	FiringStreak int `json:"firing_streak,omitempty"`
	// ResolveStreak is how many consecutive evaluations must sit below
	// ResolveRatio*H before firing resolves (default 3) — the
	// falling-edge hysteresis.
	ResolveStreak int `json:"resolve_streak,omitempty"`
}

// withDefaults fills zero fields with the documented defaults.
func (d DetectionConfig) withDefaults() DetectionConfig {
	// lint:ignore floatcmp exact zero means "unset, take the default"
	if d.Lambda == 0 {
		d.Lambda = 0.2
	}
	// lint:ignore floatcmp exact zero means "unset, take the default"
	if d.K == 0 {
		d.K = 0.5
	}
	// lint:ignore floatcmp exact zero means "unset, take the default"
	if d.H == 0 {
		d.H = 5
	}
	// lint:ignore floatcmp exact zero means "unset, take the default"
	if d.WarnRatio == 0 {
		d.WarnRatio = 0.6
	}
	// lint:ignore floatcmp exact zero means "unset, take the default"
	if d.ResolveRatio == 0 {
		d.ResolveRatio = 0.5
	}
	if d.MinSamples == 0 {
		d.MinSamples = 8
	}
	if d.FiringStreak == 0 {
		d.FiringStreak = 2
	}
	if d.ResolveStreak == 0 {
		d.ResolveStreak = 3
	}
	return d
}

// Spec declares a monitor: the event schema, the mining parameters of the
// windowed divergence analysis, and the detection tuning.
type Spec struct {
	// Name is a human label; it need not be unique.
	Name string `json:"name,omitempty"`
	// Attributes declares the event schema.
	Attributes []AttrSpec `json:"attributes"`
	// Metric names the divergence metric (core.MetricByName; default FPR).
	Metric string `json:"metric,omitempty"`
	// MinSupport is the relative support threshold for tracked subgroups
	// within the window (default 0.05).
	MinSupport float64 `json:"min_support,omitempty"`
	// MaxLen caps tracked subgroup size in items (default 3).
	MaxLen int `json:"max_len,omitempty"`
	// TopK bounds the divergent-subgroup list in snapshots (default 10).
	TopK int `json:"top_k,omitempty"`
	// Window configures bucketing.
	Window WindowConfig `json:"window"`
	// Detection configures the change detector.
	Detection DetectionConfig `json:"detection,omitempty"`
}

// withDefaults returns the spec with zero fields defaulted.
func (s Spec) withDefaults() Spec {
	if s.Metric == "" {
		s.Metric = "FPR"
	}
	// lint:ignore floatcmp exact zero means "unset, take the default"
	if s.MinSupport == 0 {
		s.MinSupport = 0.05
	}
	if s.MaxLen == 0 {
		s.MaxLen = 3
	}
	if s.TopK == 0 {
		s.TopK = 10
	}
	s.Detection = s.Detection.withDefaults()
	return s
}

// Validate checks the spec after defaulting. The returned spec is the
// defaulted form; Manager.Create persists and uses it.
func (s Spec) Validate() (Spec, error) {
	s = s.withDefaults()
	if len(s.Attributes) == 0 || len(s.Attributes) > MaxAttrs {
		return s, fmt.Errorf("monitor: %d attributes (want 1..%d)", len(s.Attributes), MaxAttrs)
	}
	seen := make(map[string]bool, len(s.Attributes))
	for i := range s.Attributes {
		a := &s.Attributes[i]
		if a.Name == "" {
			return s, fmt.Errorf("monitor: attribute %d has no name", i)
		}
		if seen[a.Name] {
			return s, fmt.Errorf("monitor: duplicate attribute %q", a.Name)
		}
		seen[a.Name] = true
		if (len(a.Values) == 0) == (len(a.Cuts) == 0) {
			return s, fmt.Errorf("monitor: attribute %q must set exactly one of values and cuts", a.Name)
		}
		if a.numeric() {
			for j := 1; j < len(a.Cuts); j++ {
				if !(a.Cuts[j-1] < a.Cuts[j]) {
					return s, fmt.Errorf("monitor: attribute %q cuts must be strictly ascending", a.Name)
				}
			}
			for _, c := range a.Cuts {
				if math.IsNaN(c) || math.IsInf(c, 0) {
					return s, fmt.Errorf("monitor: attribute %q has a non-finite cut", a.Name)
				}
			}
		} else {
			vals := make(map[string]bool, len(a.Values))
			for _, v := range a.Values {
				if v == "" {
					return s, fmt.Errorf("monitor: attribute %q has an empty value", a.Name)
				}
				if vals[v] {
					return s, fmt.Errorf("monitor: attribute %q has duplicate value %q", a.Name, v)
				}
				vals[v] = true
			}
		}
		if c := a.cardinality(); c < 2 || c > MaxCardinality {
			return s, fmt.Errorf("monitor: attribute %q cardinality %d (want 2..%d)", a.Name, c, MaxCardinality)
		}
	}
	if _, err := core.MetricByName(s.Metric); err != nil {
		return s, fmt.Errorf("monitor: %w", err)
	}
	if s.MinSupport <= 0 || s.MinSupport > 1 {
		return s, fmt.Errorf("monitor: min_support %v out of (0,1]", s.MinSupport)
	}
	if s.MaxLen < 1 || s.MaxLen > MaxPatternLen {
		return s, fmt.Errorf("monitor: max_len %d (want 1..%d)", s.MaxLen, MaxPatternLen)
	}
	if s.TopK < 1 {
		return s, fmt.Errorf("monitor: top_k %d < 1", s.TopK)
	}
	if s.Window.BucketMs < 1 {
		return s, fmt.Errorf("monitor: window.bucket_ms %d < 1", s.Window.BucketMs)
	}
	if s.Window.Buckets < 1 || s.Window.Buckets > MaxBuckets {
		return s, fmt.Errorf("monitor: window.buckets %d (want 1..%d)", s.Window.Buckets, MaxBuckets)
	}
	d := s.Detection
	switch {
	case d.Lambda <= 0 || d.Lambda > 1:
		return s, fmt.Errorf("monitor: detection.lambda %v out of (0,1]", d.Lambda)
	case d.K < 0 || math.IsNaN(d.K) || math.IsInf(d.K, 0):
		return s, fmt.Errorf("monitor: detection.k %v must be finite and >= 0", d.K)
	case d.H <= 0 || math.IsNaN(d.H) || math.IsInf(d.H, 0):
		return s, fmt.Errorf("monitor: detection.h %v must be finite and > 0", d.H)
	case d.WarnRatio <= 0 || d.WarnRatio > 1:
		return s, fmt.Errorf("monitor: detection.warn_ratio %v out of (0,1]", d.WarnRatio)
	case d.ResolveRatio <= 0 || d.ResolveRatio > 1:
		return s, fmt.Errorf("monitor: detection.resolve_ratio %v out of (0,1]", d.ResolveRatio)
	case d.MinSamples < 1:
		return s, fmt.Errorf("monitor: detection.min_samples %d < 1", d.MinSamples)
	case d.FiringStreak < 1 || d.ResolveStreak < 1:
		return s, fmt.Errorf("monitor: detection streaks must be >= 1")
	}
	return s, nil
}

// ParseSpec decodes and validates a JSON monitor spec.
func ParseSpec(raw []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(raw, &s); err != nil {
		return s, fmt.Errorf("monitor: decoding spec: %w", err)
	}
	return s.Validate()
}

// schema materializes the spec's attribute declarations as the dataset
// schema backing the monitor's item catalog and its re-mines: numeric
// attributes contribute their bin labels, categorical ones their values
// in the declared order (codes are positional, so the order is part of
// the monitor's identity and is never re-sorted).
func (s Spec) schema() []dataset.Attribute {
	attrs := make([]dataset.Attribute, len(s.Attributes))
	for i := range s.Attributes {
		a := &s.Attributes[i]
		attrs[i] = dataset.Attribute{Name: a.Name}
		if a.numeric() {
			attrs[i].Values = a.binLabels()
		} else {
			attrs[i].Values = append([]string(nil), a.Values...)
		}
	}
	return attrs
}

// attrIndexes returns a name → position map for event validation.
func (s Spec) attrIndexes() map[string]int {
	idx := make(map[string]int, len(s.Attributes))
	for i := range s.Attributes {
		idx[s.Attributes[i].Name] = i
	}
	return idx
}

// sortedAttrNames lists the schema's attribute names in sorted order
// (diagnostics only).
func (s Spec) sortedAttrNames() []string {
	names := make([]string, 0, len(s.Attributes))
	for i := range s.Attributes {
		names = append(names, s.Attributes[i].Name)
	}
	sort.Strings(names)
	return names
}
