package monitor

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/fpm"
)

// remineEvery is the backstop re-mine cadence: even when no conditional
// trigger fires, the tracked pattern set is refreshed after this many
// window advances, bounding how stale it can get (a pattern composed of
// already-frequent items that *became* frequent between mines is picked
// up here at the latest).
const remineEvery = 16

// remineLowFactor is the falling-edge hysteresis on tracking: a tracked
// pattern triggers a re-mine only when its window support drops below
// this fraction of the mining threshold, so patterns oscillating around
// the threshold do not force a re-mine per advance.
const remineLowFactor = 0.8

// maxTracked bounds the tracked pattern set per monitor. A window whose
// mine yields more keeps the highest-support patterns and counts the
// truncation, so memory stays bounded under adversarial cardinality.
const maxTracked = 4096

// trackedPattern is one subgroup the window maintains an exact tally
// for: the itemset, its decomposed (attribute, value-code) pairs for the
// allocation-free coverage test, and its current window tally.
type trackedPattern struct {
	items fpm.Itemset
	key   string  // Itemset.Key, the detector identity
	attrs []int32 // parallel to vals: attribute position per item
	vals  []uint8 // value code per item
	tally fpm.Tally
}

// bucketData is one event-time bucket: its start time and the rows that
// landed in it, stored flat (nAttrs value codes per row) so a bucket is
// two slices regardless of row count.
type bucketData struct {
	start   int64
	rows    []uint8
	classes []uint8
}

// window is the incremental tally engine. Events are applied to the
// current bucket and to the window aggregate as they arrive; when a
// bucket expires its rows are re-scanned once to decrement the same
// aggregate, so the cost of an advance is proportional to the expiring
// bucket, never to the window. The aggregate consists of the window
// total, exact per-item (singleton) tallies, and exact tallies for every
// tracked pattern. The tracked set comes from re-mining the window
// through fpm's streaming seam, triggered only when the frequent-pattern
// set may have shifted (needRemine).
//
// The window is not safe for concurrent use; the owning Monitor
// serializes access.
type window struct {
	cfg        WindowConfig
	attrs      []dataset.Attribute
	cat        *fpm.Catalog
	itemBase   []int32 // attribute -> first item id (mirror of the catalog's layout)
	nAttrs     int
	minSupport float64
	maxLen     int

	buckets  []bucketData
	head     int  // slot of the bucket currently filling
	count    int  // filled slots, including the current one
	started  bool // first event seen
	curStart int64
	closed   int // buckets closed since the last tumble reset

	rowsIn  int
	total   fpm.Tally
	items   []fpm.Tally // dense, indexed by catalog item id
	tracked []trackedPattern

	mined      bool
	mineItems  []bool // item was frequent at the last mine
	sinceMine  int
	advances   int64
	remines    int64
	lateDrops  int64
	capped     int64 // tracked-set truncations
	resetJumps int64 // whole-window resets from event-time gaps
}

// evaluator receives one callback per closed bucket, after the aggregate
// reflects exactly the window ending at endMs. The Monitor implements it
// with the detection layer.
type evaluator interface {
	evaluate(endMs int64)
}

// newWindow builds the window for a validated spec.
func newWindow(spec Spec) *window {
	attrs := spec.schema()
	cat := fpm.NewCatalog(&dataset.Dataset{Attrs: attrs})
	base := make([]int32, len(attrs))
	n := int32(0)
	for i := range attrs {
		base[i] = n
		n += int32(attrs[i].Cardinality())
	}
	return &window{
		cfg:        spec.Window,
		attrs:      attrs,
		cat:        cat,
		itemBase:   base,
		nAttrs:     len(attrs),
		minSupport: spec.MinSupport,
		maxLen:     spec.MaxLen,
		buckets:    make([]bucketData, spec.Window.Buckets),
		items:      make([]fpm.Tally, cat.NumItems()),
		mineItems:  make([]bool, cat.NumItems()),
	}
}

// align floors t to its bucket start.
func (w *window) align(t int64) int64 { return t - t%w.cfg.BucketMs }

// ingest routes one event into its bucket, advancing the window first if
// the event's time has moved past the current bucket. Each boundary
// crossed closes a bucket and calls ev.evaluate once.
func (w *window) ingest(e Event, ev evaluator) {
	if !w.started {
		w.started = true
		w.curStart = w.align(e.T)
		w.count = 1
		w.head = 0
		w.buckets[0].start = w.curStart
	}
	n := int64(len(w.buckets))
	if gap := (e.T - w.curStart) / w.cfg.BucketMs; gap >= n {
		// The event-time jump empties the entire window: close the
		// current bucket for a final evaluation, then reset in O(window)
		// once instead of advancing bucket-by-bucket across the gap.
		ev.evaluate(w.curStart + w.cfg.BucketMs)
		w.reset(w.align(e.T))
	} else {
		for e.T >= w.curStart+w.cfg.BucketMs {
			w.closeAdvance(ev)
		}
	}
	// Place the event: the current bucket, or a still-live earlier one.
	delta := (w.curStart - w.align(e.T)) / w.cfg.BucketMs
	if delta >= int64(w.count) {
		w.lateDrops++
		return
	}
	slot := (w.head - int(delta) + len(w.buckets)) % len(w.buckets)
	b := &w.buckets[slot]
	b.rows = append(b.rows, e.Vals...)
	b.classes = append(b.classes, e.Class)
	w.rowsIn++
	w.apply(e.Vals, e.Class, 1)
}

// closeAdvance closes the current bucket (evaluating the window that
// ends with it) and opens the next one, expiring the oldest bucket when
// the ring is full. For a tumbling window the evaluation only happens at
// the tumble boundary, where the whole window then resets.
func (w *window) closeAdvance(ev evaluator) {
	end := w.curStart + w.cfg.BucketMs
	w.closed++
	w.advances++
	w.sinceMine++
	if w.cfg.Tumbling {
		if w.closed >= len(w.buckets) {
			ev.evaluate(end)
			w.reset(end)
			return
		}
	} else {
		ev.evaluate(end)
	}
	next := (w.head + 1) % len(w.buckets)
	if w.count == len(w.buckets) {
		w.foldOut(&w.buckets[next])
	} else {
		w.count++
	}
	w.head = next
	w.curStart = end
	w.buckets[next].start = end
	w.buckets[next].rows = w.buckets[next].rows[:0]
	w.buckets[next].classes = w.buckets[next].classes[:0]
}

// reset empties the window and restarts it at the bucket containing
// startMs. Tracked patterns survive with zeroed tallies so detector
// identities persist across tumbles and gaps.
func (w *window) reset(startMs int64) {
	for i := range w.buckets {
		w.buckets[i].rows = w.buckets[i].rows[:0]
		w.buckets[i].classes = w.buckets[i].classes[:0]
	}
	w.total = fpm.Tally{}
	for i := range w.items {
		w.items[i] = fpm.Tally{}
	}
	for i := range w.tracked {
		w.tracked[i].tally = fpm.Tally{}
	}
	w.rowsIn = 0
	w.head = 0
	w.count = 1
	w.closed = 0
	w.curStart = startMs
	w.buckets[0].start = startMs
	w.resetJumps++
}

// apply folds one row into (sign +1) or out of (sign -1) the window
// aggregate: the window total, the per-item singleton tallies, and every
// tracked pattern covering the row. This is the ingest/advance hot path;
// it must not allocate.
//
// lint:hot
func (w *window) apply(vals []uint8, class uint8, sign int64) {
	w.total[class] += sign
	for a := 0; a < len(vals); a++ {
		w.items[w.itemBase[a]+int32(vals[a])][class] += sign
	}
	for i := range w.tracked {
		t := &w.tracked[i]
		covered := true
		for j := 0; j < len(t.attrs); j++ {
			if vals[t.attrs[j]] != t.vals[j] {
				covered = false
				break
			}
		}
		if covered {
			t.tally[class] += sign
		}
	}
}

// foldOut decrements an expiring bucket's rows from the aggregate and
// recycles its storage — the O(bucket) half of the advance contract.
//
// lint:hot
func (w *window) foldOut(b *bucketData) {
	for r := 0; r < len(b.classes); r++ {
		w.apply(b.rows[r*w.nAttrs:(r+1)*w.nAttrs], b.classes[r], -1)
	}
	w.rowsIn -= len(b.classes)
	b.rows = b.rows[:0]
	b.classes = b.classes[:0]
}

// minCount is the absolute support threshold over the current window.
func (w *window) minCount() int64 {
	return fpm.MinCount(w.rowsIn, w.minSupport)
}

// needRemine decides whether the frequent-pattern set may have shifted
// since the last mine. Triggers:
//
//   - no mine has happened yet;
//   - a tracked pattern's support fell below remineLowFactor of the
//     threshold (the frequent set shrank; the hysteresis band keeps
//     borderline patterns from re-mining every advance);
//   - a singleton item crossed the threshold that was not frequent at
//     the last mine (new patterns over it may now be frequent);
//   - the backstop cadence (remineEvery advances) expired.
func (w *window) needRemine(minCount int64) bool {
	if !w.mined {
		return true
	}
	if w.sinceMine >= remineEvery {
		return true
	}
	low := int64(remineLowFactor * float64(minCount))
	for i := range w.tracked {
		if w.tracked[i].tally.Total() < low {
			return true
		}
	}
	for i := range w.items {
		if !w.mineItems[i] && w.items[i].Total() >= minCount {
			return true
		}
	}
	return false
}

// remine rebuilds the tracked pattern set by mining the window's rows
// through fpm's streaming pattern seam. The visitor's tallies are exact
// over the window, so the aggregate is rebuilt in the same pass. Cost is
// O(window); the conditional triggers keep it off the steady-state path.
func (w *window) remine(minCount int64) error {
	rows := make([][]int32, 0, w.rowsIn)
	classes := make([]uint8, 0, w.rowsIn)
	for i := range w.buckets {
		b := &w.buckets[i]
		for r := 0; r < len(b.classes); r++ {
			row := make([]int32, w.nAttrs)
			for a := 0; a < w.nAttrs; a++ {
				row[a] = int32(b.rows[r*w.nAttrs+a])
			}
			rows = append(rows, row)
			classes = append(classes, b.classes[r])
		}
	}
	db, err := fpm.NewTxDB(&dataset.Dataset{Attrs: w.attrs, Rows: rows}, classes, fpm.MaxClasses)
	if err != nil {
		return fmt.Errorf("monitor: building window transaction db: %w", err)
	}
	tracked := w.tracked[:0]
	err = fpm.FPGrowth{}.MineVisit(db, minCount, func(p fpm.FrequentPattern) error {
		if len(p.Items) > w.maxLen {
			return nil
		}
		items := p.Items.Clone()
		attrs := make([]int32, len(items))
		vals := make([]uint8, len(items))
		for j, it := range items {
			attrs[j] = int32(w.cat.Attr(it))
			vals[j] = uint8(w.cat.Value(it))
		}
		tracked = append(tracked, trackedPattern{
			items: items,
			key:   items.Key(),
			attrs: attrs,
			vals:  vals,
			tally: p.Tally,
		})
		return nil
	})
	if err != nil {
		return fmt.Errorf("monitor: re-mining window: %w", err)
	}
	if len(tracked) > maxTracked {
		sort.Slice(tracked, func(i, j int) bool {
			return tracked[i].tally.Total() > tracked[j].tally.Total()
		})
		tracked = tracked[:maxTracked]
		w.capped++
	}
	w.tracked = tracked
	for i := range w.items {
		w.mineItems[i] = w.items[i].Total() >= minCount
	}
	w.mined = true
	w.sinceMine = 0
	w.remines++
	return nil
}

// names renders an itemset as "attr=value" strings via the catalog.
func (w *window) names(is fpm.Itemset) []string {
	out := make([]string, len(is))
	for i, it := range is {
		out[i] = w.cat.Name(it)
	}
	return out
}

// rate computes a metric's positive rate over a tally; ok is false when
// the metric's observation count is zero.
func rate(pos, neg uint16, t fpm.Tally) (float64, bool) {
	kPos, kNeg := t.Masked(pos), t.Masked(neg)
	if kPos+kNeg == 0 {
		return 0, false
	}
	return float64(kPos) / float64(kPos+kNeg), true
}
