package monitor

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
)

// Event is one validated classifier decision, compiled to the monitor's
// schema: an event-time millisecond timestamp, one value code per
// declared attribute, and the confusion cell of the decision.
type Event struct {
	T     int64
	Vals  []uint8
	Class uint8
}

// wireEvent is the JSON-line shape of one decision event:
//
//	{"t": 1723000000000, "attrs": {"sex": "male", "age": 34.5},
//	 "truth": true, "pred": false}
//
// Attribute values are strings for categorical attributes and numbers
// for numeric ones (discretized by the spec's cuts). truth and pred
// accept booleans or the numbers 0/1.
type wireEvent struct {
	T     int64                      `json:"t"`
	Attrs map[string]json.RawMessage `json:"attrs"`
	Truth json.RawMessage            `json:"truth"`
	Pred  json.RawMessage            `json:"pred"`
}

// Parser validates and compiles JSON-line events against one monitor
// spec. A Parser is immutable after construction and safe for concurrent
// use; the Events it produces own their Vals storage.
type Parser struct {
	spec  Spec
	index map[string]int
}

// NewParser compiles a validated spec into an event parser.
func NewParser(spec Spec) *Parser {
	return &Parser{spec: spec, index: spec.attrIndexes()}
}

// Parse decodes one JSON-line event. Every declared attribute must be
// present with a value in its domain; attributes the spec does not
// declare are ignored (schema-evolution tolerance). Timestamps must be
// non-negative, numeric values finite.
func (p *Parser) Parse(line []byte) (Event, error) {
	var w wireEvent
	dec := json.NewDecoder(bytes.NewReader(line))
	if err := dec.Decode(&w); err != nil {
		return Event{}, fmt.Errorf("monitor: decoding event: %w", err)
	}
	if w.T < 0 {
		return Event{}, fmt.Errorf("monitor: event time %d is negative", w.T)
	}
	truth, err := parseOutcome(w.Truth, "truth")
	if err != nil {
		return Event{}, err
	}
	pred, err := parseOutcome(w.Pred, "pred")
	if err != nil {
		return Event{}, err
	}
	ev := Event{T: w.T, Vals: make([]uint8, len(p.spec.Attributes)), Class: confusionCell(truth, pred)}
	found := 0
	for name, raw := range w.Attrs {
		i, ok := p.index[name]
		if !ok {
			continue
		}
		code, err := p.spec.Attributes[i].valueCode(raw)
		if err != nil {
			return Event{}, err
		}
		ev.Vals[i] = code
		found++
	}
	if found != len(p.spec.Attributes) {
		return Event{}, fmt.Errorf("monitor: event is missing %d of the declared attributes (%v)",
			len(p.spec.Attributes)-found, p.spec.sortedAttrNames())
	}
	return ev, nil
}

// valueCode validates one raw attribute value against its declaration
// and returns its domain code.
func (a *AttrSpec) valueCode(raw json.RawMessage) (uint8, error) {
	if a.numeric() {
		var v float64
		if err := json.Unmarshal(raw, &v); err != nil {
			return 0, fmt.Errorf("monitor: attribute %q wants a number, got %s", a.Name, clip(raw))
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("monitor: attribute %q value is not finite", a.Name)
		}
		return a.bin(v), nil
	}
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		return 0, fmt.Errorf("monitor: attribute %q wants a string, got %s", a.Name, clip(raw))
	}
	for i, v := range a.Values {
		if v == s {
			return uint8(i), nil
		}
	}
	return 0, fmt.Errorf("monitor: attribute %q has no value %q", a.Name, s)
}

// parseOutcome reads a truth/pred field: a JSON boolean, or the numbers
// 0 and 1. Anything else — including NaN/Inf encodings and other numbers
// — is invalid.
func parseOutcome(raw json.RawMessage, field string) (bool, error) {
	if len(raw) == 0 {
		return false, fmt.Errorf("monitor: event is missing %q", field)
	}
	var b bool
	if err := json.Unmarshal(raw, &b); err == nil {
		return b, nil
	}
	var v float64
	if err := json.Unmarshal(raw, &v); err != nil {
		return false, fmt.Errorf("monitor: %q wants a boolean or 0/1, got %s", field, clip(raw))
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, fmt.Errorf("monitor: %q wants a boolean or 0/1, got %s", field, clip(raw))
}

// confusionCell maps a (truth, pred) pair to its confusion class.
func confusionCell(truth, pred bool) uint8 {
	switch {
	case pred && truth:
		return core.ClassTP
	case pred && !truth:
		return core.ClassFP
	case !pred && truth:
		return core.ClassFN
	default:
		return core.ClassTN
	}
}

// clip bounds a raw JSON fragment for an error message.
func clip(raw json.RawMessage) string {
	const max = 32
	if len(raw) > max {
		return string(raw[:max]) + "..."
	}
	return string(raw)
}

// Batch is the result of parsing one ingest body: the valid events plus
// per-line rejection bookkeeping.
type Batch struct {
	Events  []Event
	Invalid int
	// FirstErr samples the first rejection so clients can see why lines
	// were dropped without the server echoing every bad line.
	FirstErr error
}

// ParseBatch splits body into JSON lines and parses each. Blank lines
// are skipped. Invalid lines are counted, never fatal: a stream ingests
// what it can and reports the rest.
func (p *Parser) ParseBatch(body []byte) Batch {
	var b Batch
	for len(body) > 0 {
		line := body
		if i := bytes.IndexByte(body, '\n'); i >= 0 {
			line, body = body[:i], body[i+1:]
		} else {
			body = nil
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		ev, err := p.Parse(line)
		if err != nil {
			b.Invalid++
			if b.FirstErr == nil {
				b.FirstErr = err
			}
			continue
		}
		b.Events = append(b.Events, ev)
	}
	return b
}

// ErrIngestBackpressure is returned when a monitor's bounded ingest
// buffer is full — the streaming sibling of jobs.ErrQueueFull. Clients
// should back off and retry.
var ErrIngestBackpressure = errors.New("monitor: ingest buffer full")
