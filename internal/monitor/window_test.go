package monitor

import (
	"math/rand"
	"testing"

	"repro/internal/fpm"
)

// nopEval ignores bucket closes.
type nopEval struct{}

func (nopEval) evaluate(int64) {}

// miningEval mirrors the monitor's evaluation: re-mine whenever the
// window says the frequent set may have shifted, so the tracked pattern
// set stays live during the property test.
type miningEval struct {
	w *window
	t *testing.T
}

func (e *miningEval) evaluate(int64) {
	if e.w.rowsIn == 0 {
		return
	}
	if mc := e.w.minCount(); e.w.needRemine(mc) {
		if err := e.w.remine(mc); err != nil {
			e.t.Fatalf("remine: %v", err)
		}
	}
}

// recount recomputes the window aggregate from the raw bucket rows — the
// from-scratch truth the incremental tallies must match.
func recount(w *window) (total fpm.Tally, tracked []fpm.Tally, rows int) {
	tracked = make([]fpm.Tally, len(w.tracked))
	for i := range w.buckets {
		b := &w.buckets[i]
		for r := 0; r < len(b.classes); r++ {
			vals := b.rows[r*w.nAttrs : (r+1)*w.nAttrs]
			total[b.classes[r]]++
			rows++
			for ti := range w.tracked {
				t := &w.tracked[ti]
				covered := true
				for j := range t.attrs {
					if vals[t.attrs[j]] != t.vals[j] {
						covered = false
						break
					}
				}
				if covered {
					tracked[ti][b.classes[r]]++
				}
			}
		}
	}
	return total, tracked, rows
}

func checkAggregate(t *testing.T, w *window, at string) {
	t.Helper()
	total, tracked, rows := recount(w)
	if w.total != total {
		t.Fatalf("%s: incremental total %v != recount %v", at, w.total, total)
	}
	if w.rowsIn != rows {
		t.Fatalf("%s: rowsIn %d != recount %d", at, w.rowsIn, rows)
	}
	for i := range w.tracked {
		if w.tracked[i].tally != tracked[i] {
			t.Fatalf("%s: tracked[%d] (%s) incremental %v != recount %v",
				at, i, w.cat.Format(w.tracked[i].items), w.tracked[i].tally, tracked[i])
		}
	}
}

// randomEvent draws a valid event for the validSpec schema.
func randomEvent(rng *rand.Rand, tms int64) Event {
	return Event{
		T:     tms,
		Vals:  []uint8{uint8(rng.Intn(3)), uint8(rng.Intn(2)), uint8(rng.Intn(3))},
		Class: uint8(rng.Intn(4)),
	}
}

// TestWindowIncrementalTalliesExact drives thousands of events through
// a sliding window — fold-ins, fold-outs, late events, re-mines — and
// checks after every bucket's worth that the incremental aggregate
// equals a from-scratch recount.
func TestWindowIncrementalTalliesExact(t *testing.T) {
	spec, err := validSpec().Validate()
	if err != nil {
		t.Fatal(err)
	}
	w := newWindow(spec)
	ev := &miningEval{w: w, t: t}
	rng := rand.New(rand.NewSource(7))
	tms := int64(0)
	for i := 0; i < 5000; i++ {
		// Mostly forward motion, occasionally a late or repeated time.
		switch rng.Intn(10) {
		case 0:
			tms -= int64(rng.Intn(300)) // late event (possibly beyond the window)
			if tms < 0 {
				tms = 0
			}
		case 1: // stall
		default:
			tms += int64(rng.Intn(40))
		}
		w.ingest(randomEvent(rng, tms), ev)
		if i%97 == 0 {
			checkAggregate(t, w, "mid-stream")
		}
	}
	checkAggregate(t, w, "final")
	if w.remines == 0 {
		t.Fatal("property test never re-mined; tracked set was never exercised")
	}
	if len(w.tracked) == 0 {
		t.Fatal("no tracked patterns after 5000 events at 5% support")
	}
}

func TestWindowAdvanceExpiresOldBuckets(t *testing.T) {
	spec, err := validSpec().Validate()
	if err != nil {
		t.Fatal(err)
	}
	w := newWindow(spec)
	// One event per bucket for 3 windows' worth: rowsIn must plateau at
	// the window length.
	for i := 0; i < 3*spec.Window.Buckets; i++ {
		w.ingest(Event{T: int64(i) * spec.Window.BucketMs, Vals: []uint8{0, 0, 0}, Class: 0}, nopEval{})
	}
	if w.rowsIn != spec.Window.Buckets {
		t.Fatalf("rowsIn = %d, want the window length %d", w.rowsIn, spec.Window.Buckets)
	}
	checkAggregate(t, w, "after expiry")
}

func TestWindowGapResets(t *testing.T) {
	spec, err := validSpec().Validate()
	if err != nil {
		t.Fatal(err)
	}
	w := newWindow(spec)
	evals := 0
	countEval := evalFunc(func(int64) { evals++ })
	for i := 0; i < 10; i++ {
		w.ingest(Event{T: int64(i) * 10, Vals: []uint8{0, 0, 0}, Class: 0}, countEval)
	}
	// Jump far past the window: one evaluation, one reset — not one
	// advance per skipped bucket.
	w.ingest(Event{T: 1e9, Vals: []uint8{1, 1, 1}, Class: 1}, countEval)
	if w.resetJumps != 1 {
		t.Fatalf("resetJumps = %d, want 1", w.resetJumps)
	}
	if evals != 1 {
		t.Fatalf("gap crossing evaluated %d times, want exactly 1", evals)
	}
	if w.rowsIn != 1 {
		t.Fatalf("rowsIn after reset = %d, want 1", w.rowsIn)
	}
	checkAggregate(t, w, "after gap reset")
}

func TestWindowLateDrops(t *testing.T) {
	spec, err := validSpec().Validate()
	if err != nil {
		t.Fatal(err)
	}
	w := newWindow(spec)
	// Open three buckets: 10000, 10100, 10200.
	w.ingest(Event{T: 10_000, Vals: []uint8{0, 0, 0}, Class: 0}, nopEval{})
	w.ingest(Event{T: 10_200, Vals: []uint8{0, 0, 0}, Class: 0}, nopEval{})
	// Late but within a filled bucket: accepted.
	w.ingest(Event{T: 10_050, Vals: []uint8{0, 0, 0}, Class: 0}, nopEval{})
	if w.lateDrops != 0 || w.rowsIn != 3 {
		t.Fatalf("in-window late event dropped (drops %d, rows %d)", w.lateDrops, w.rowsIn)
	}
	// Before the earliest filled bucket: dropped and counted.
	w.ingest(Event{T: 9_900, Vals: []uint8{0, 0, 0}, Class: 0}, nopEval{})
	if w.lateDrops != 1 || w.rowsIn != 3 {
		t.Fatalf("too-late event not dropped (drops %d, rows %d)", w.lateDrops, w.rowsIn)
	}
}

func TestTumblingWindowEvaluatesOncePerTumble(t *testing.T) {
	spec := validSpec()
	spec.Window.Tumbling = true
	spec.Window.Buckets = 4
	vs, err := spec.Validate()
	if err != nil {
		t.Fatal(err)
	}
	w := newWindow(vs)
	evals := 0
	rowsAtEval := 0
	countEval := evalFunc(func(int64) { evals++; rowsAtEval = w.rowsIn })
	// One event per bucket, no event-time gaps wide enough to reset:
	// tumbles complete as events cross t=400, 800 and 1200.
	for i := 0; i < 14; i++ {
		w.ingest(Event{T: int64(i) * vs.Window.BucketMs, Vals: []uint8{0, 0, 0}, Class: 0}, countEval)
	}
	if evals != 3 {
		t.Fatalf("evals = %d, want 3", evals)
	}
	if rowsAtEval != 4 {
		t.Fatalf("evaluation saw %d rows, want the full tumble of 4", rowsAtEval)
	}
	if w.rowsIn != 2 {
		t.Fatalf("rows after the last tumble = %d, want 2", w.rowsIn)
	}
}

// evalFunc adapts a function to the evaluator interface.
type evalFunc func(int64)

func (f evalFunc) evaluate(endMs int64) { f(endMs) }

func TestRemineHysteresis(t *testing.T) {
	spec, err := validSpec().Validate()
	if err != nil {
		t.Fatal(err)
	}
	w := newWindow(spec)
	rng := rand.New(rand.NewSource(3))
	ev := &miningEval{w: w, t: t}
	for i := 0; i < 2000; i++ {
		w.ingest(randomEvent(rng, int64(i)*5), ev)
	}
	// With a stationary distribution the backstop should dominate: far
	// fewer re-mines than advances.
	if w.remines == 0 {
		t.Fatal("never re-mined")
	}
	if w.advances > 0 && w.remines*2 > w.advances {
		t.Fatalf("re-mined %d times in %d advances; conditional triggers are not suppressing re-mines", w.remines, w.advances)
	}
}
