package monitor

import (
	"strings"
	"testing"
)

// validSpec is the baseline used across the package tests: two
// categorical attributes and one numeric, a small sliding window.
func validSpec() Spec {
	return Spec{
		Name: "t",
		Attributes: []AttrSpec{
			{Name: "color", Values: []string{"red", "green", "blue"}},
			{Name: "size", Values: []string{"s", "l"}},
			{Name: "age", Cuts: []float64{25, 50}},
		},
		Window: WindowConfig{BucketMs: 100, Buckets: 8},
	}
}

func TestSpecDefaults(t *testing.T) {
	s, err := validSpec().Validate()
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.Metric != "FPR" || s.MinSupport != 0.05 || s.MaxLen != 3 || s.TopK != 10 {
		t.Errorf("unexpected defaults: %+v", s)
	}
	d := s.Detection
	if d.Lambda != 0.2 || d.K != 0.5 || d.H != 5 || d.MinSamples != 8 ||
		d.FiringStreak != 2 || d.ResolveStreak != 3 || d.WarnRatio != 0.6 || d.ResolveRatio != 0.5 {
		t.Errorf("unexpected detection defaults: %+v", d)
	}
}

func TestSpecValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no attrs", func(s *Spec) { s.Attributes = nil }, "attributes"},
		{"dup attr", func(s *Spec) { s.Attributes[1].Name = "color" }, "duplicate"},
		{"unnamed attr", func(s *Spec) { s.Attributes[0].Name = "" }, "no name"},
		{"both values and cuts", func(s *Spec) { s.Attributes[0].Cuts = []float64{1} }, "exactly one"},
		{"neither values nor cuts", func(s *Spec) { s.Attributes[0].Values = nil }, "exactly one"},
		{"descending cuts", func(s *Spec) { s.Attributes[2].Cuts = []float64{50, 25} }, "ascending"},
		{"single value", func(s *Spec) { s.Attributes[1].Values = []string{"s"} }, "cardinality"},
		{"dup value", func(s *Spec) { s.Attributes[1].Values = []string{"s", "s"} }, "duplicate value"},
		{"empty value", func(s *Spec) { s.Attributes[1].Values = []string{"s", ""} }, "empty value"},
		{"bad metric", func(s *Spec) { s.Metric = "nope" }, "nope"},
		{"bad support", func(s *Spec) { s.MinSupport = 1.5 }, "min_support"},
		{"bad maxlen", func(s *Spec) { s.MaxLen = MaxPatternLen + 1 }, "max_len"},
		{"no bucket width", func(s *Spec) { s.Window.BucketMs = -5 }, "bucket_ms"},
		{"too many buckets", func(s *Spec) { s.Window.Buckets = MaxBuckets + 1 }, "buckets"},
		{"bad lambda", func(s *Spec) { s.Detection.Lambda = 2 }, "lambda"},
		{"bad h", func(s *Spec) { s.Detection.H = -1 }, "detection.h"},
		{"bad warn ratio", func(s *Spec) { s.Detection.WarnRatio = 1.5 }, "warn_ratio"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mut(&s)
			if _, err := s.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestParseSpecBadJSON(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"attributes": `)); err == nil {
		t.Fatal("truncated JSON accepted")
	}
}

func TestNumericBinning(t *testing.T) {
	a := AttrSpec{Name: "age", Cuts: []float64{25, 50}}
	for _, tc := range []struct {
		v    float64
		want uint8
	}{{-1000, 0}, {24.9, 0}, {25, 1}, {49.9, 1}, {50, 2}, {1e9, 2}} {
		if got := a.bin(tc.v); got != tc.want {
			t.Errorf("bin(%v) = %d, want %d", tc.v, got, tc.want)
		}
	}
	labels := a.binLabels()
	want := []string{"[-inf,25)", "[25,50)", "[50,+inf)"}
	for i := range want {
		if labels[i] != want[i] {
			t.Errorf("label %d = %q, want %q", i, labels[i], want[i])
		}
	}
}

func TestSchemaIsPositional(t *testing.T) {
	s, err := validSpec().Validate()
	if err != nil {
		t.Fatal(err)
	}
	attrs := s.schema()
	if attrs[0].Name != "color" || attrs[1].Name != "size" || attrs[2].Name != "age" {
		t.Fatalf("schema reordered: %+v", attrs)
	}
	if attrs[2].Values[0] != "[-inf,25)" {
		t.Fatalf("numeric schema values = %v", attrs[2].Values)
	}
}
