package monitor

import (
	"bytes"
	"testing"
)

// FuzzParseEvent throws arbitrary bytes at the ingest parser. The
// invariants: never panic, and an accepted event is always in-schema —
// every value index inside its attribute's cardinality, the class a
// valid confusion-matrix cell, the timestamp non-negative.
func FuzzParseEvent(f *testing.F) {
	f.Add([]byte(`{"t": 1500, "attrs": {"color": "green", "size": "l", "age": 30}, "truth": false, "pred": true}`))
	f.Add([]byte(`{"t": 0, "attrs": {"color": "red", "size": "s", "age": 0}, "truth": 1, "pred": 0}`))
	f.Add([]byte(`{"t": 0, "attrs": {"color": "red", "size": "s", "age": -1e308}, "truth": 0, "pred": 0}`))
	f.Add([]byte(`{"t": 9007199254740993, "attrs": {"color": "blue", "size": "l", "age": 1e999}, "truth": true, "pred": false}`))
	f.Add([]byte(`{"attrs": {}}`))
	f.Add([]byte(`{"t": -5}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"t": 0, "attrs": {"color": "red", "size": "s", "age": 1, "color": "blue"}, "truth": 1, "pred": 1}`))
	f.Add([]byte(``))
	f.Add([]byte("{\"t\":0,\"attrs\":{\"color\":\"red\",\"size\":\"s\",\"age\":1},\"truth\":1,\"pred\":1}\n{\"t\":1}"))

	spec, err := validSpec().Validate()
	if err != nil {
		f.Fatal(err)
	}
	p := NewParser(spec)
	cards := make([]int, len(spec.Attributes))
	for i, a := range spec.Attributes {
		if len(a.Values) > 0 {
			cards[i] = len(a.Values)
		} else {
			cards[i] = len(a.Cuts) + 1
		}
	}

	f.Fuzz(func(t *testing.T, line []byte) {
		ev, err := p.Parse(line)
		if err != nil {
			return
		}
		if ev.T < 0 {
			t.Fatalf("accepted negative timestamp %d from %q", ev.T, line)
		}
		if len(ev.Vals) != len(spec.Attributes) {
			t.Fatalf("accepted event with %d values for %d attributes", len(ev.Vals), len(spec.Attributes))
		}
		for i, v := range ev.Vals {
			if int(v) >= cards[i] {
				t.Fatalf("value %d out of cardinality %d for attribute %d (%q)", v, cards[i], i, line)
			}
		}
		if ev.Class > 3 {
			t.Fatalf("class %d outside the confusion matrix (%q)", ev.Class, line)
		}
		// ParseBatch must agree with Parse on a single line. Interior
		// newlines are legal JSON whitespace to Parse but line breaks to
		// ParseBatch, so only newline-free lines round-trip.
		if bytes.IndexByte(line, '\n') < 0 {
			b := p.ParseBatch(append(line, '\n'))
			if len(b.Events) != 1 || b.Invalid != 0 {
				t.Fatalf("ParseBatch disagrees with Parse on %q: %+v", line, b)
			}
		}
	})
}
