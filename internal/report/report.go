// Package report renders experiment output: fixed-width text tables
// (mirroring the paper's tables) and horizontal ASCII bar charts
// (mirroring its figures), plus small formatting helpers shared by the
// CLI and the experiments runner.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = FormatFloat(x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = runeLen(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && runeLen(cell) > widths[i] {
				widths[i] = runeLen(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-runeLen(c)))
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

func runeLen(s string) int { return len([]rune(s)) }

// FormatFloat renders floats compactly with three decimals, trimming
// trailing zeros but keeping at least one decimal digit.
func FormatFloat(x float64) string {
	if math.IsNaN(x) {
		return "NaN"
	}
	if math.IsInf(x, 0) {
		if x > 0 {
			return "+Inf"
		}
		return "-Inf"
	}
	s := fmt.Sprintf("%.3f", x)
	for strings.HasSuffix(s, "0") && !strings.HasSuffix(s, ".0") {
		s = s[:len(s)-1]
	}
	return s
}

// BarChart renders labelled horizontal bars scaled to a shared maximum —
// the textual analogue of the paper's bar figures. Negative values grow
// leftward from the axis.
type BarChart struct {
	Title string
	Width int // bar area width in characters (default 40)
	bars  []bar
}

type bar struct {
	label string
	value float64
}

// NewBarChart creates a chart.
func NewBarChart(title string) *BarChart { return &BarChart{Title: title, Width: 40} }

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) { c.bars = append(c.bars, bar{label, value}) }

// String renders the chart.
func (c *BarChart) String() string {
	width := c.Width
	if width <= 0 {
		width = 40
	}
	labelW := 0
	maxAbs := 0.0
	hasNeg := false
	for _, b := range c.bars {
		if runeLen(b.label) > labelW {
			labelW = runeLen(b.label)
		}
		if math.Abs(b.value) > maxAbs {
			maxAbs = math.Abs(b.value)
		}
		if b.value < 0 {
			hasNeg = true
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title)
		sb.WriteString("\n")
	}
	for _, b := range c.bars {
		n := 0
		if maxAbs > 0 {
			n = int(math.Round(math.Abs(b.value) / maxAbs * float64(width)))
		}
		pad := strings.Repeat(" ", labelW-runeLen(b.label))
		if hasNeg {
			left := strings.Repeat(" ", width)
			if b.value < 0 {
				left = strings.Repeat(" ", width-n) + strings.Repeat("▒", n)
			}
			right := ""
			if b.value >= 0 {
				right = strings.Repeat("█", n)
			}
			fmt.Fprintf(&sb, "%s%s %s|%-*s %+.4f\n", b.label, pad, left, width, right, b.value)
		} else {
			fmt.Fprintf(&sb, "%s%s %-*s %.4f\n", b.label, pad, width, strings.Repeat("█", n), b.value)
		}
	}
	return sb.String()
}

// Section renders a titled separator for multi-part reports.
func Section(title string) string {
	line := strings.Repeat("=", runeLen(title)+4)
	return fmt.Sprintf("%s\n| %s |\n%s\n", line, title, line)
}
