package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Demo", "Itemset", "Sup", "Δ")
	tbl.AddRow("a=1, b=2", 0.125, 0.3456789)
	tbl.AddRow("c=3", 0.5, -0.01)
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
	s := tbl.String()
	for _, want := range []string{"Demo", "Itemset", "a=1, b=2", "0.346", "-0.01", "---"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	// Columns aligned: header row and data rows have matching widths.
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title + header + separator + 2 rows
		t.Errorf("table has %d lines, want 5:\n%s", len(lines), s)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0.5:      "0.5",
		0.346:    "0.346",
		1:        "1.0",
		-0.01:    "-0.01",
		0.100001: "0.1",
	}
	for x, want := range cases {
		if got := FormatFloat(x); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", x, got, want)
		}
	}
	if got := FormatFloat(math.NaN()); got != "NaN" {
		t.Errorf("NaN = %q", got)
	}
	if got := FormatFloat(math.Inf(1)); got != "+Inf" {
		t.Errorf("+Inf = %q", got)
	}
	if got := FormatFloat(math.Inf(-1)); got != "-Inf" {
		t.Errorf("-Inf = %q", got)
	}
}

func TestBarChartPositive(t *testing.T) {
	c := NewBarChart("bars")
	c.Add("alpha", 1.0)
	c.Add("beta", 0.5)
	s := c.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("chart lines = %d:\n%s", len(lines), s)
	}
	alphaBars := strings.Count(lines[1], "█")
	betaBars := strings.Count(lines[2], "█")
	if alphaBars != 40 {
		t.Errorf("alpha bar = %d chars, want 40 (full width)", alphaBars)
	}
	if betaBars != 20 {
		t.Errorf("beta bar = %d chars, want 20 (half width)", betaBars)
	}
}

func TestBarChartNegative(t *testing.T) {
	c := NewBarChart("")
	c.Add("up", 0.4)
	c.Add("down", -0.4)
	s := c.String()
	if !strings.Contains(s, "▒") {
		t.Errorf("negative bar glyph missing:\n%s", s)
	}
	if !strings.Contains(s, "|") {
		t.Errorf("axis missing in diverging chart:\n%s", s)
	}
	if !strings.Contains(s, "+0.4000") || !strings.Contains(s, "-0.4000") {
		t.Errorf("signed values missing:\n%s", s)
	}
}

func TestBarChartAllZero(t *testing.T) {
	c := NewBarChart("z")
	c.Add("x", 0)
	s := c.String()
	if strings.Count(s, "█") != 0 {
		t.Errorf("zero-value chart drew bars:\n%s", s)
	}
}

func TestSection(t *testing.T) {
	s := Section("Table 2")
	if !strings.Contains(s, "| Table 2 |") {
		t.Errorf("Section = %q", s)
	}
}
