package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Name  string // package name
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of a single module from source.
// Imports within the module are resolved recursively by the loader itself;
// standard-library imports are type-checked from GOROOT source via
// go/importer, so no compiled export data, network access, or external
// tooling is required. Loads are memoized per import path.
//
// The loader registers parsed files under module-relative file names, so
// every position it reports is stable regardless of working directory.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string

	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a loader for the module rooted at moduleDir, which must
// contain a go.mod file.
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: module root %s: %w", abs, err)
	}
	modPath, err := modulePathFromGoMod(data)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s/go.mod: %w", abs, err)
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer does not support ImporterFrom")
	}
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		ModuleDir:  abs,
		std:        std,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// modulePathFromGoMod extracts the module path from go.mod contents.
func modulePathFromGoMod(data []byte) (string, error) {
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) >= 2 && fields[0] == "module" {
			return strings.Trim(fields[1], `"`), nil
		}
	}
	return "", fmt.Errorf("no module directive found")
}

// LoadDir loads the package in dir, which must be inside the module.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return nil, fmt.Errorf("analysis: %s is outside module %s", abs, l.ModuleDir)
	}
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs, rel)
}

func (l *Loader) load(path, dir, rel string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	name := ""
	for _, e := range entries {
		fn := e.Name()
		if e.IsDir() || !strings.HasSuffix(fn, ".go") || strings.HasSuffix(fn, "_test.go") ||
			strings.HasPrefix(fn, ".") || strings.HasPrefix(fn, "_") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, fn))
		if err != nil {
			return nil, err
		}
		relName := fn
		if rel != "." {
			relName = filepath.ToSlash(rel) + "/" + fn
		}
		f, err := parser.ParseFile(l.Fset, relName, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if name == "" {
			name = f.Name.Name
		} else if f.Name.Name != name {
			return nil, fmt.Errorf("analysis: %s: multiple package names %q and %q", dir, name, f.Name.Name)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}

	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		msgs := make([]string, 0, len(typeErrs))
		for _, te := range typeErrs {
			msgs = append(msgs, te.Error())
		}
		sort.Strings(msgs)
		return nil, fmt.Errorf("analysis: type-checking %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	pkg := &Package{Path: path, Dir: dir, Name: name, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// ModulePackages returns every module package this loader has parsed so
// far — the analyzed packages plus their module-internal import closure
// — in deterministic import-path order. The facts engine builds its
// call graph over exactly this set.
func (l *Loader) ModulePackages() []*Package {
	paths := make([]string, 0, len(l.pkgs))
	for path := range l.pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	out := make([]*Package, len(paths))
	for i, path := range paths {
		out[i] = l.pkgs[path]
	}
	return out
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleDir, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal import paths
// are loaded from source by this loader; everything else is delegated to
// the GOROOT source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		if rel == "" {
			rel = "."
		}
		pkg, err := l.load(path, filepath.Join(l.ModuleDir, filepath.FromSlash(rel)), rel)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// PackageDirs walks root and returns every directory containing at least
// one buildable (non-test) Go file, in sorted order. Directories named
// "testdata" or "vendor" and directories whose name starts with "." or
// "_" are skipped, mirroring the go tool's package-walking rules.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			n := d.Name()
			if p != root && (n == "testdata" || n == "vendor" || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		fn := d.Name()
		if strings.HasSuffix(fn, ".go") && !strings.HasSuffix(fn, "_test.go") &&
			!strings.HasPrefix(fn, ".") && !strings.HasPrefix(fn, "_") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}
