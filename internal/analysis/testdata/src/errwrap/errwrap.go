// Package errwrap exercises the errwrap analyzer: errors built inside
// exported functions, exported methods on exported types, and exported
// Err* sentinels must start with the "errwrap: " package prefix;
// verb-led formats, unexported helpers, and unexported receivers pass.
package errwrap

import (
	"errors"
	"fmt"
)

// ErrBad is flagged: an exported sentinel without the package prefix.
var ErrBad = errors.New("something went wrong")

// ErrGood carries the prefix and passes.
var ErrGood = errors.New("errwrap: resource exhausted")

// errInternal is unexported, so its spelling is its own business.
var errInternal = errors.New("internal bookkeeping")

// Exported is flagged twice: both constructors lack the prefix.
func Exported(x int) error {
	if x < 0 {
		return errors.New("negative input")
	}
	return fmt.Errorf("bad value %d", x)
}

// ExportedOK shows the accepted spellings: prefixed text, a verb-led
// format (the wrapped error supplies identity), and a dynamic format.
func ExportedOK(x int, cause error, format string) error {
	if x == 0 {
		return errors.New("errwrap: zero input")
	}
	if x < 0 {
		return fmt.Errorf("%w: value %d", cause, x)
	}
	return fmt.Errorf(format, x)
}

// helper is unexported: its callers wrap and prefix.
func helper() error { return errors.New("raw detail") }

// T is an exported receiver type.
type T struct{}

// Check is flagged: exported method on an exported type.
func (*T) Check() error { return errors.New("check failed") }

// u is unexported, so its exported-looking methods are not API.
type u struct{}

// Check passes: the receiver type is unexported.
func (u) Check() error { return errors.New("not api") }

// Suppressed shows the escape hatch for intentional bare messages.
func Suppressed() error {
	// lint:ignore errwrap message intentionally bare for wire compatibility
	return errors.New("legacy spelling")
}
