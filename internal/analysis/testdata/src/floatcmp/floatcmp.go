// Package floatcmp exercises the floatcmp analyzer: every flagged line
// appears in the golden file; everything else must stay silent.
package floatcmp

func bad(a, b float64) bool { return a == b }

func bad32(a float32, b float64) bool { return float64(a) != b }

func badLiteral(a float64) bool { return a == 0 }

func nanIdiomAllowed(x float64) bool { return x != x }

func intsAllowed(a, b int) bool { return a == b }

func orderingAllowed(a, b float64) bool { return a < b }
