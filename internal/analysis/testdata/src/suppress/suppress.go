// Package suppress exercises lint:ignore handling: a well-formed
// directive above or trailing the offending line silences that analyzer
// only; naming the wrong analyzer leaves the finding; omitting the
// reason is itself reported.
package suppress

func suppressedAbove(a, b float64) bool {
	// lint:ignore floatcmp fixture: exactness is deliberate here
	return a == b
}

func suppressedTrailing(a, b float64) bool {
	return a != b // lint:ignore floatcmp fixture: trailing directives work too
}

func suppressedMulti(a, b float64) bool {
	// lint:ignore floatcmp,errcheck fixture: multiple analyzers at once
	return a == b
}

func wrongName(a, b float64) bool {
	// lint:ignore errcheck fixture: names the wrong analyzer, finding survives
	return a == b
}

func missingReason(a, b float64) bool {
	// lint:ignore floatcmp
	return a == b
}
