// Package ctxflow exercises the ctxflow analyzer: conjured contexts
// are flagged anywhere in internal packages, exported functions that
// call context-taking callees (or blocking stdlib I/O) without
// accepting a context are flagged, and contexts derived from the
// function's own parameters are recognized as proper threading.
package ctxflow

import (
	"context"
	"time"
)

func work(ctx context.Context) error { return ctx.Err() }

// Conjured builds its own root context: flagged.
func Conjured() error {
	return work(context.Background())
}

// conjuredHelper shows rule 1 applies to unexported functions too.
func conjuredHelper() error {
	return work(context.TODO())
}

// Store keeps a context in a field — the storage antipattern.
type Store struct {
	ctx context.Context
}

// Stored calls a context-taking callee with the stored field: flagged.
func (s *Store) Stored() error {
	return work(s.ctx)
}

// Threaded accepts and threads the caller's context: clean.
func Threaded(ctx context.Context) error {
	return work(context.WithoutCancel(ctx))
}

// Request mimics *http.Request: a parameter that can derive a context.
type Request struct {
	ctx context.Context
}

// Context returns the request-scoped context.
func (r *Request) Context() context.Context { return r.ctx }

// Derived threads a context derived from its own parameter: clean.
func Derived(r *Request) error {
	return work(r.Context())
}

// Blocking sleeps without giving its caller a way to cancel: flagged.
func Blocking() {
	time.Sleep(time.Millisecond)
}

// BlockingCtx shows the fix for Blocking: accept a context and use a
// cancelable wait.
func BlockingCtx(ctx context.Context) error {
	t := time.NewTimer(time.Millisecond)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

var _ = conjuredHelper
