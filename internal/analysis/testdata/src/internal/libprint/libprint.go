// Package libprint exercises the libprint analyzer: because this fixture
// package lives under internal/, stdout prints and process-control calls
// are flagged; writes to an injected writer are not.
package libprint

import (
	"fmt"
	"io"
	"log"
	"os"
)

func bad(condition bool) {
	fmt.Println("to stdout")
	fmt.Printf("%d\n", 1)
	if condition {
		panic("boom")
	}
	log.Fatalf("dead %d", 2)
	os.Exit(1)
}

func allowed(w io.Writer) error {
	_, err := fmt.Fprintf(w, "injected writer is fine %d\n", 3)
	return err
}
