// Package clean has no findings; the driver must exit 0 on it.
package clean

import "sort"

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
