// Package stale exercises the stale-suppression audit: a directive that
// suppressed a finding once but whose code has since been fixed is
// itself reported, as is a directive naming an unregistered analyzer.
package stale

// live still suppresses a real floatcmp finding: no audit report.
func live(a, b float64) bool {
	// lint:ignore floatcmp fixture: exactness is deliberate here
	return a == b
}

// dead carries a justification whose finding was fixed (the operands
// became ints): the directive is reported as stale.
func dead(a, b int) bool {
	// lint:ignore floatcmp fixture: this comparison used to be on floats
	return a == b
}

// typo misspells the analyzer: the floatcmp finding survives and the
// directive is reported as naming an unknown analyzer.
func typo(a, b float64) bool {
	// lint:ignore floatcmpx fixture: misspelled analyzer name
	return a == b
}

// deadDecl carries the declaration form of a directive whose findings
// were all fixed (no float comparison remains anywhere in the body):
// the whole-function directive is reported stale too.
//
// lint:ignore floatcmp fixture: this function used to compare floats throughout
func deadDecl(a, b int) bool {
	if a > b {
		return false
	}
	return a == b
}

var _, _, _, _ = live, dead, typo, deadDecl
