// Package maporder exercises the maporder analyzer: slices appended to
// under a map range and escaping unsorted are flagged; sorting anywhere
// in the function, or keeping the slice local, silences the check.
package maporder

import "sort"

type holder struct{ keys []string }

func escapesUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func storedUnsorted(h *holder, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	h.keys = keys
}

func passedUnsorted(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	consume(keys)
}

func sortedAllowed(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortSliceAllowed(m map[string]float64) []float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func localAllowed(m map[string]int) int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	n := 0
	for _, v := range vals {
		n += v
	}
	return n
}

func sliceRangeAllowed(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

func consume([]string) {}
