// Package atomicmix exercises the atomicmix analyzer: a variable whose
// address reaches sync/atomic anywhere must never be read or written
// plainly elsewhere. Composite-literal initialization and typed atomic
// wrappers stay silent.
package atomicmix

import "sync/atomic"

type counters struct {
	hits  int64
	drops int64
	safe  atomic.Int64
}

// NewCounters initializes by composite literal: exempt (initialization
// before publication).
func NewCounters() *counters {
	return &counters{hits: 0, drops: 0}
}

// Hit and Drop establish the atomic discipline for both fields.
func (c *counters) Hit()  { atomic.AddInt64(&c.hits, 1) }
func (c *counters) Drop() { atomic.AddInt64(&c.drops, 1) }

// Snapshot reads hits plainly: flagged.
func (c *counters) Snapshot() int64 {
	return c.hits
}

// Reset writes drops plainly: flagged.
func (c *counters) Reset() {
	c.drops = 0
}

// Consistent reads through the atomic API and the typed wrapper: clean.
func (c *counters) Consistent() int64 {
	return atomic.LoadInt64(&c.hits) + atomic.LoadInt64(&c.drops) + c.safe.Load()
}

var flag uint32

// Raise flips the package-level flag atomically.
func Raise() { atomic.StoreUint32(&flag, 1) }

// Raised reads it plainly: flagged.
func Raised() bool { return flag == 1 }
