// Package errcheck exercises the errcheck analyzer: bare calls and go
// statements that drop an error are flagged; explicit discards, defers,
// terminal prints, and infallible writers are not.
package errcheck

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func twoResults() (int, error) { return 0, nil }

func bad() {
	mayFail()
	twoResults()
	go mayFail()
}

func allowed(f *os.File) {
	_ = mayFail()
	defer f.Close()
	fmt.Println("best-effort terminal output")
	fmt.Fprintf(os.Stderr, "best-effort %d\n", 1)
	var buf bytes.Buffer
	buf.WriteString("infallible")
	fmt.Fprintf(&buf, "also infallible %d\n", 2)
	var sb strings.Builder
	sb.WriteString("infallible")
}
