// Package goleak exercises the goleak analyzer: goroutines with no
// visible shutdown path are flagged; goroutines that mention a channel,
// context, or WaitGroup — in their body, arguments, or same-package
// callee — are not.
package goleak

import (
	"context"
	"sync"
	"time"
)

func spin() {
	for {
		time.Sleep(time.Second)
	}
}

func bad() {
	go spin()
	go func() {
		for {
			time.Sleep(time.Millisecond)
		}
	}()
}

func allowed(ctx context.Context, done chan struct{}) {
	go func() {
		<-ctx.Done()
	}()
	go func() {
		close(done)
	}()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		spin()
	}()
	go waiter(done)
	go watcher(ctx)
}

// waiter blocks on its channel argument; the channel in the call's
// arguments is the visible shutdown path.
func waiter(done chan struct{}) { <-done }

// watcher takes a context, visible both in the argument and in the
// same-package body.
func watcher(ctx context.Context) { <-ctx.Done() }

// justified is a provably-terminating goroutine: the loop is bounded, so
// the finding is suppressed with the reason.
func justified() {
	// lint:ignore goleak bounded loop, terminates after ten iterations
	go func() {
		for i := 0; i < 10; i++ {
			time.Sleep(time.Millisecond)
		}
	}()
}
