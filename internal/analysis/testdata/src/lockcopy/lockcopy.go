// Package lockcopy exercises the lockcopy analyzer: sync primitives (and
// structs containing them) passed, returned, assigned, or ranged-over by
// value are flagged; pointers and fresh composite literals are not.
package lockcopy

import "sync"

type Guarded struct {
	mu sync.Mutex
	n  int
}

func byValueParam(g Guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func byValueResult(p *Guarded) Guarded { return *p }

func assignCopy(src *Guarded) int {
	c := *src
	return c.n
}

func rangeCopy(gs []Guarded) int {
	total := 0
	for _, g := range gs {
		total += g.n
	}
	return total
}

func wgByValue(wg sync.WaitGroup) { wg.Wait() }

func pointerAllowed(g *Guarded) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func freshAllowed() *Guarded {
	g := Guarded{n: 1}
	return &g
}

func indexAllowed(gs []Guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}
