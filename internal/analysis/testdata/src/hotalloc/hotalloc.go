// Package hotalloc exercises the hotalloc analyzer: allocations inside
// loops of lint:hot functions are flagged, the closure makes loop
// callees loop-hot (whole body flagged), and preallocated or explicitly
// reused buffers are exempt. Cold duplicates the hot path without the
// annotation and must produce nothing.
package hotalloc

import "fmt"

type node struct{ v int }

// Mine is a seeded hot entry point with one of each allocation kind in
// its loop.
// lint:hot
func Mine(rows [][]int, names []string) []int {
	var out []int
	joined := ""
	for i, row := range rows {
		buf := make([]int, len(row))
		copy(buf, row)
		out = append(out, buf...)
		n := &node{v: i}
		pair := []int{n.v, len(row)}
		out = append(out, pair...)
		joined += names[i%len(names)]
		raw := []byte(joined)
		_ = fmt.Sprintf("%d", len(raw))
		sum := 0
		cmp := func(a int) bool { return a < n.v }
		for _, v := range row {
			if cmp(v) {
				sum += v
			}
		}
		sum = guarded(sum)
		pool = grow(pool, i%4)
		out = append(out, helper(sum))
	}
	return out
}

var pool [][]int

// helper is called from Mine's loop, so the closure makes it loop-hot:
// its whole body counts as inside a hot loop, even outside its own
// loops.
func helper(n int) int {
	m := map[int]int{n: n}
	return len(m)
}

// guarded is loop-hot via Mine's loop, but its only allocation feeds
// the panic builtin: a death path is not a steady-state cost and stays
// silent.
func guarded(n int) int {
	if n < -1000 {
		panic(fmt.Sprintf("hotalloc: implausible sum %d", n))
	}
	return n
}

// grow is a pool's growth path: every allocation in it is one-time
// capacity acquisition, exempted wholesale by the declaration form of
// the directive.
//
// lint:ignore hotalloc fixture: one-time pool growth, amortized across reuse
func grow(p [][]int, n int) [][]int {
	for len(p) <= n {
		p = append(p, make([]int, 8))
	}
	return p
}

// MineReused shows the exemptions: capacity-preallocated buffers,
// buf = buf[:0] resets, and the inline append(buf[:0], ...) idiom stay
// silent.
// lint:hot
func MineReused(rows [][]int) []int {
	out := make([]int, 0, 64)
	buf := make([]int, 0, 8)
	var scratch []int
	for _, row := range rows {
		buf = buf[:0]
		for _, v := range row {
			buf = append(buf, v)
		}
		scratch = append(scratch[:0], buf...)
		out = append(out, scratch...)
	}
	return out
}

// Cold is Mine without the annotation and outside the hot closure: the
// same allocations produce no findings.
func Cold(rows [][]int) []int {
	var out []int
	for _, row := range rows {
		buf := make([]int, len(row))
		copy(buf, row)
		out = append(out, buf...)
	}
	return out
}
