package analysis

import (
	"go/ast"
	"go/token"
)

// AtomicMix flags variables that are accessed through sync/atomic in
// one place and read or written plainly in another. Mixed access is a
// data race the race detector only catches when both sides execute in
// the same run; the sharded registry's recency stamps and the
// degradation ladder's counters are one careless refactor away from
// exactly this bug class, so the suite rejects it statically.
//
// The facts engine records, module-wide, every variable whose address
// is passed to a sync/atomic function; this analyzer then reports every
// plain use of those variables. Composite-literal field keys and
// declarations are exempt (initialization before publication is safe by
// convention); the typed wrappers (atomic.Int64 and friends) are immune
// by construction and therefore the recommended fix.
type AtomicMix struct{}

// Name implements Analyzer.
func (AtomicMix) Name() string { return "atomicmix" }

// Doc implements Analyzer.
func (AtomicMix) Doc() string {
	return "flags plain reads/writes of variables that are elsewhere accessed via sync/atomic; " +
		"mixed access races — migrate to the typed atomic wrappers"
}

// Run implements Analyzer.
func (a AtomicMix) Run(pass *Pass) {
	if pass.Facts == nil {
		return
	}
	for _, file := range pass.Files {
		exempt := atomicExemptIdents(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || exempt[id] {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				return true
			}
			use, atomic := pass.Facts.AtomicUseOf(obj)
			if !atomic {
				return true
			}
			pass.Reportf(id.Pos(), "%s is accessed via sync/atomic at %s:%d but read/written plainly here; mixed access races — use the atomic API everywhere or a typed atomic wrapper",
				id.Name, use.Pos.Filename, use.Pos.Line)
			return true
		})
	}
}

// atomicExemptIdents collects the identifiers in file that are
// legitimate non-plain uses of atomically-accessed variables: the
// address operand of a sync/atomic call itself, and &x arguments in
// general (passing the address on is how helpers share the atomic
// variable; the callee's accesses are checked wherever they occur).
func atomicExemptIdents(pass *Pass, file *ast.File) map[*ast.Ident]bool {
	exempt := make(map[*ast.Ident]bool)
	markLeaf := func(e ast.Expr) {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			exempt[x] = true
		case *ast.SelectorExpr:
			exempt[x.Sel] = true
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				markLeaf(x.X)
			}
		case *ast.CompositeLit:
			// Field keys in a literal are initialization before
			// publication, not a racing access.
			for _, elt := range x.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					markLeaf(kv.Key)
				}
			}
		}
		return true
	})
	return exempt
}
