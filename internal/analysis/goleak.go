package analysis

import (
	"go/ast"
	"go/types"
)

// GoLeak flags `go` statements that start a goroutine with no visible
// shutdown path. The job engine and the HTTP server promise a graceful
// drain — Shutdown returns only after every worker has exited — and that
// promise holds only if every goroutine is reachable by a cancellation
// signal. A goroutine counts as shutdown-aware when its body or its
// arguments mention an expression typed as a channel, a context.Context,
// or a sync.WaitGroup (directly or through a pointer): those are the
// three ways this codebase wires termination. For a named callee the
// analyzer looks through same-package function bodies; for callees
// defined elsewhere it falls back to the signature.
//
// The check is a heuristic. A goroutine that provably terminates on
// its own (a bounded loop doing pure computation) should carry a
// goleak lint:ignore directive saying why it cannot leak.
type GoLeak struct{}

// Name implements Analyzer.
func (GoLeak) Name() string { return "goleak" }

// Doc implements Analyzer.
func (GoLeak) Doc() string {
	return "flags go statements with no visible shutdown path (no channel, context.Context, or sync.WaitGroup " +
		"in the goroutine's body or arguments); protects the engine's graceful-drain contract"
}

// Run implements Analyzer.
func (g GoLeak) Run(pass *Pass) {
	decls := packageFuncDecls(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !g.hasShutdownPath(pass, decls, gs.Call) {
				pass.Reportf(gs.Pos(), "goroutine has no visible shutdown path (no channel, context, or WaitGroup in body or arguments) "+
					"and can outlive its owner; wire a cancellation signal, or lint:ignore with why it terminates")
			}
			return true
		})
	}
}

// packageFuncDecls indexes the package's function and method declarations
// by their type-checker objects, so named go-callees can be resolved to
// their bodies.
func packageFuncDecls(pass *Pass) map[types.Object]*ast.FuncDecl {
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := pass.Info.ObjectOf(fd.Name); obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	return decls
}

// hasShutdownPath reports whether the spawned call is reachable by a
// termination signal: a signal-typed expression in its arguments, in its
// function-literal body, or — for a named same-package callee — in that
// function's body. Unknown callees are judged by their parameter types.
func (g GoLeak) hasShutdownPath(pass *Pass, decls map[types.Object]*ast.FuncDecl, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if mentionsSignalType(pass, arg) {
			return true
		}
	}
	switch fun := unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return mentionsSignalType(pass, fun.Body)
	case *ast.Ident:
		return calleeHasShutdownPath(pass, decls, pass.Info.ObjectOf(fun))
	case *ast.SelectorExpr:
		// A method value `go e.worker()` can also receive its signal
		// through the receiver expression (e.g. a struct holding the
		// queue channel is still opaque here, but `go ch.drain()` on a
		// channel-typed receiver is visible).
		if mentionsSignalType(pass, fun.X) {
			return true
		}
		return calleeHasShutdownPath(pass, decls, pass.Info.ObjectOf(fun.Sel))
	}
	return false
}

// calleeHasShutdownPath inspects a resolved callee: its body when it is
// declared in this package, its signature otherwise.
func calleeHasShutdownPath(pass *Pass, decls map[types.Object]*ast.FuncDecl, obj types.Object) bool {
	if obj == nil {
		return false
	}
	if fd, ok := decls[obj]; ok && fd.Body != nil {
		return mentionsSignalType(pass, fd.Body)
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isSignalType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// mentionsSignalType reports whether any expression under n has a
// channel, context.Context, or sync.WaitGroup type.
func mentionsSignalType(pass *Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if e, ok := c.(ast.Expr); ok && isSignalType(pass.TypeOf(e)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isSignalType recognizes the three termination-signal types, through
// pointers.
func isSignalType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch {
	case obj.Pkg().Path() == "context" && obj.Name() == "Context":
		return true
	case obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup":
		return true
	}
	return false
}
