package analysis

import (
	"go/ast"
	"go/types"
)

// LockCopy flags values of sync primitive types (Mutex, RWMutex,
// WaitGroup, Once, Cond, Pool, Map) — or of structs/arrays containing one
// — being copied: passed or returned by value in a function signature,
// copied in an assignment from an existing value, or copied per-iteration
// by a range clause. A copied lock guards nothing; in the parallel miner
// this is exactly the bug class that would let two workers enter a
// critical section at once while each holds its own private mutex.
type LockCopy struct{}

// Name implements Analyzer.
func (LockCopy) Name() string { return "lockcopy" }

// Doc implements Analyzer.
func (LockCopy) Doc() string {
	return "flags sync.Mutex/RWMutex/WaitGroup/Once/Cond/Pool/Map (or structs containing them) " +
		"passed, returned, assigned, or ranged-over by value"
}

// Run implements Analyzer.
func (l LockCopy) Run(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				l.checkSignature(pass, n.Type)
			case *ast.FuncLit:
				l.checkSignature(pass, n.Type)
			case *ast.AssignStmt:
				l.checkAssign(pass, n)
			case *ast.RangeStmt:
				l.checkRange(pass, n)
			}
			return true
		})
	}
}

// checkSignature flags by-value parameters and results that carry a lock.
func (l LockCopy) checkSignature(pass *Pass, ft *ast.FuncType) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.TypeOf(field.Type)
			if sync, ok := containsLock(t); ok {
				pass.Reportf(field.Type.Pos(), "%s of type %s passes %s by value; use a pointer",
					what, types.TypeString(t, types.RelativeTo(pass.Pkg)), sync)
			}
		}
	}
	check(ft.Params, "parameter")
	check(ft.Results, "result")
}

// checkAssign flags assignments that copy a lock out of an existing
// value. Fresh values (composite literals, new calls) are fine — only
// copying something already addressable elsewhere duplicates lock state.
func (l LockCopy) checkAssign(pass *Pass, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		if !isExistingValue(rhs) {
			continue
		}
		t := pass.TypeOf(rhs)
		if sync, ok := containsLock(t); ok {
			pass.Reportf(as.Pos(), "assignment copies %s (via %s of type %s); copy a pointer instead",
				sync, types.ExprString(rhs), types.TypeString(t, types.RelativeTo(pass.Pkg)))
		}
	}
}

// checkRange flags `for _, v := range xs` where the element copy carries
// a lock.
func (l LockCopy) checkRange(pass *Pass, rs *ast.RangeStmt) {
	if rs.Value == nil {
		return
	}
	t := pass.TypeOf(rs.Value)
	if sync, ok := containsLock(t); ok {
		pass.Reportf(rs.Value.Pos(), "range clause copies %s into %s (type %s); iterate by index or over pointers",
			sync, types.ExprString(rs.Value), types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}
}

// isExistingValue reports whether e denotes a value that already lives
// somewhere (identifier, field, element, or dereference), as opposed to a
// freshly constructed one.
func isExistingValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return isExistingValue(e.X)
	}
	return false
}

// containsLock reports whether t is, or transitively contains by value, a
// sync primitive; it returns the name of the first one found.
func containsLock(t types.Type) (string, bool) {
	return lockIn(t, make(map[types.Type]bool))
}

func lockIn(t types.Type, seen map[types.Type]bool) (string, bool) {
	if t == nil || seen[t] {
		return "", false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return "sync." + obj.Name(), true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name, ok := lockIn(u.Field(i).Type(), seen); ok {
				return name, true
			}
		}
	case *types.Array:
		return lockIn(u.Elem(), seen)
	}
	return "", false
}
