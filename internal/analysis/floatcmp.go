package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point (or complex) operands.
//
// The Bayesian significance layer (Beta posteriors, Welch t-statistics)
// and the divergence metrics are float pipelines; exact equality on their
// intermediate values is almost always a bug that rounding turns into a
// heisen-result. The one idiomatic exception, the `x != x` NaN test, is
// recognized and allowed. Intentional exact comparisons — e.g. a guard
// against division by literal zero — must carry a lint:ignore directive
// stating why exactness is wanted.
type FloatCmp struct{}

// Name implements Analyzer.
func (FloatCmp) Name() string { return "floatcmp" }

// Doc implements Analyzer.
func (FloatCmp) Doc() string {
	return "flags ==/!= on floating-point operands (except the x != x NaN idiom); " +
		"protects the stats/metric code from rounding-dependent equality"
}

// Run implements Analyzer.
func (f FloatCmp) Run(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypeOf(be.X)) && !isFloat(pass.TypeOf(be.Y)) {
				return true
			}
			// Allow the NaN self-comparison idiom.
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true
			}
			pass.Reportf(be.OpPos, "floating-point %s comparison (%s %s %s); compare with a tolerance or justify with lint:ignore",
				be.Op, types.ExprString(be.X), be.Op, types.ExprString(be.Y))
			return true
		})
	}
}

// isFloat reports whether t's underlying type is a float or complex kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
