package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// hotDirective marks a function declaration as a mining hot-path entry
// point:
//
//	// lint:hot
//
// placed in the declaration's doc comment. The facts engine seeds the
// hot set with every annotated function and closes it transitively over
// same-module callees, so annotating the three mining entry points is
// enough to make every helper they reach a hot function too.
const hotDirective = "lint:hot"

// CallFact is one statically-resolved call from a module function to
// another module function. LoopDepth counts the for/range statements
// enclosing the call site within the caller's body (function literals do
// not reset the depth: a closure declared inside a loop is conservatively
// assumed to run inside it, which is exactly how sort.Slice comparators
// and per-item goroutines behave).
type CallFact struct {
	Callee    *types.Func
	LoopDepth int
}

// FuncFacts collects what the facts engine knows about one declared
// function: its AST, its package, and its static module-internal calls.
type FuncFacts struct {
	Decl    *ast.FuncDecl
	PkgPath string
	Calls   []CallFact
}

// AtomicUse records where an address was first handed to a sync/atomic
// function, so a plain access elsewhere can name the conflicting site.
type AtomicUse struct {
	Pos token.Position
}

// Facts is the shared, module-wide fact base computed once per suite run
// and handed to every analyzer through the Pass. It carries the
// intra-module call graph, the lint:hot closure, and the set of
// variables accessed through sync/atomic anywhere in the loaded
// packages. Analyzers that do not need facts simply ignore the field.
type Facts struct {
	ModulePath string

	funcs   map[*types.Func]*FuncFacts
	hot     map[*types.Func]bool
	loopHot map[*types.Func]bool
	atomics map[types.Object]AtomicUse
}

// BuildFacts computes the fact base over the given packages (normally
// every module package the loader has seen). The call graph keeps only
// statically-resolved callees declared inside the module: interface
// method calls and function values are opaque, so hotness never
// propagates through them — a documented soundness limit, not a bug.
func BuildFacts(fset *token.FileSet, modulePath string, pkgs []*Package) *Facts {
	f := &Facts{
		ModulePath: modulePath,
		funcs:      make(map[*types.Func]*FuncFacts),
		hot:        make(map[*types.Func]bool),
		loopHot:    make(map[*types.Func]bool),
		atomics:    make(map[types.Object]AtomicUse),
	}
	var seeds []*types.Func
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				ff := &FuncFacts{Decl: fd, PkgPath: pkg.Path}
				f.collectCalls(pkg, fd, ff)
				f.funcs[fn] = ff
				if hasHotDirective(fd) {
					seeds = append(seeds, fn)
				}
			}
			f.collectAtomics(fset, pkg, file)
		}
	}
	f.closeHot(seeds)
	return f
}

// hasHotDirective reports whether the declaration's doc comment carries
// a lint:hot line.
func hasHotDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == hotDirective || strings.HasPrefix(text, hotDirective+" ") {
			return true
		}
	}
	return false
}

// collectCalls records every statically-resolved call to a module
// function inside fd's body, with the enclosing loop depth.
func (f *Facts) collectCalls(pkg *Package, fd *ast.FuncDecl, ff *FuncFacts) {
	loops := loopRanges(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := staticCallee(pkg.Info, call); callee != nil && f.inModule(callee) {
			ff.Calls = append(ff.Calls, CallFact{Callee: callee, LoopDepth: loopDepthAt(loops, call.Pos())})
		}
		return true
	})
}

// posRange is the source extent of one loop statement.
type posRange struct{ from, to token.Pos }

// loopRanges collects the extents of every for/range statement under
// root. Function literals do not cut the nesting: a closure declared
// inside a loop is conservatively assumed to execute inside it, which
// is exactly how sort comparators and per-item goroutines behave.
func loopRanges(root ast.Node) []posRange {
	var out []posRange
	ast.Inspect(root, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			out = append(out, posRange{n.Pos(), n.End()})
		}
		return true
	})
	return out
}

// loopDepthAt counts the loops whose extent contains pos.
func loopDepthAt(loops []posRange, pos token.Pos) int {
	depth := 0
	for _, r := range loops {
		if r.from <= pos && pos < r.to {
			depth++
		}
	}
	return depth
}

// inModule reports whether fn is declared in a package of this module.
func (f *Facts) inModule(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == f.ModulePath || strings.HasPrefix(path, f.ModulePath+"/")
}

// staticCallee resolves a call expression to the named function or
// method it invokes, or nil for builtins, type conversions, function
// values, and interface method calls.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		// Interface method calls resolve to *types.Func too, but their
		// receiver is an interface: exclude them, the target is dynamic.
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				return nil
			}
		}
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// closeHot seeds the hot set and computes its transitive closure over
// module callees, then derives the loop-hot set: a function called from
// inside a loop of a hot function — or called, at any depth, from a
// loop-hot function — has its whole body treated as running inside a
// hot loop.
func (f *Facts) closeHot(seeds []*types.Func) {
	var work []*types.Func
	for _, fn := range seeds {
		if !f.hot[fn] {
			f.hot[fn] = true
			work = append(work, fn)
		}
	}
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		ff := f.funcs[fn]
		if ff == nil {
			continue
		}
		for _, c := range ff.Calls {
			if !f.hot[c.Callee] {
				f.hot[c.Callee] = true
				work = append(work, c.Callee)
			}
		}
	}
	// Loop-hot propagation: seed from in-loop calls of hot functions,
	// then close over all calls of loop-hot functions.
	for fn := range f.hot {
		ff := f.funcs[fn]
		if ff == nil {
			continue
		}
		for _, c := range ff.Calls {
			if c.LoopDepth > 0 && !f.loopHot[c.Callee] {
				f.loopHot[c.Callee] = true
				work = append(work, c.Callee)
			}
		}
	}
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		ff := f.funcs[fn]
		if ff == nil {
			continue
		}
		for _, c := range ff.Calls {
			if !f.loopHot[c.Callee] {
				f.loopHot[c.Callee] = true
				work = append(work, c.Callee)
			}
		}
	}
}

// collectAtomics records every variable whose address is passed to a
// package-level sync/atomic function in file. Only plain pointer-based
// atomics matter: the typed wrappers (atomic.Int64 &c.) make mixed
// access impossible by construction, and their methods are excluded
// here too — atomic.Pointer[T].Store(&v) publishes v's address as a
// value, it does not access v through the atomic API, so plain writes
// to v before publication are the normal init-then-publish idiom.
func (f *Facts) collectAtomics(fset *token.FileSet, pkg *Package, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := staticCallee(pkg.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true
		}
		unary, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
		if !ok || unary.Op != token.AND {
			return true
		}
		if obj := addressedObject(pkg.Info, unary.X); obj != nil {
			if _, seen := f.atomics[obj]; !seen {
				f.atomics[obj] = AtomicUse{Pos: fset.Position(unary.Pos())}
			}
		}
		return true
	})
}

// addressedObject resolves &expr's operand to the variable (or struct
// field) it names; index expressions and other derived addresses return
// nil — per-element atomics cannot be tracked by object identity.
func addressedObject(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.ObjectOf(x).(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := info.ObjectOf(x.Sel).(*types.Var); ok {
			return v
		}
	}
	return nil
}

// IsHot reports whether fn is in the lint:hot closure.
func (f *Facts) IsHot(fn *types.Func) bool { return f != nil && f.hot[fn] }

// IsLoopHot reports whether fn's whole body runs inside a hot loop.
func (f *Facts) IsLoopHot(fn *types.Func) bool { return f != nil && f.loopHot[fn] }

// AtomicUseOf returns where obj was first passed to sync/atomic, if it
// ever was.
func (f *Facts) AtomicUseOf(obj types.Object) (AtomicUse, bool) {
	if f == nil {
		return AtomicUse{}, false
	}
	u, ok := f.atomics[obj]
	return u, ok
}

// FuncFactsOf returns the recorded facts for fn, or nil.
func (f *Facts) FuncFactsOf(fn *types.Func) *FuncFacts {
	if f == nil {
		return nil
	}
	return f.funcs[fn]
}

// HotFuncNames returns the sorted full names of the hot closure —
// exposed for the facts-engine unit tests.
func (f *Facts) HotFuncNames() []string {
	return sortedFuncNames(f.hot)
}

// LoopHotFuncNames returns the sorted full names of the loop-hot set.
func (f *Facts) LoopHotFuncNames() []string {
	return sortedFuncNames(f.loopHot)
}

func sortedFuncNames(set map[*types.Func]bool) []string {
	out := make([]string, 0, len(set))
	for fn := range set {
		out = append(out, fn.FullName())
	}
	sort.Strings(out)
	return out
}
