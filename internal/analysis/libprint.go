package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LibPrint forbids process-control and stdout calls in internal library
// packages: fmt.Print/Printf/Println, os.Exit, log.Fatal* (which exits),
// and the panic builtin. Library code must return errors and write to
// injected io.Writers; terminating the process or printing to stdout is
// reserved for cmd/ drivers and generated reports. Invariant-violation
// panics that are part of a function's documented contract must carry
// a libprint lint:ignore directive stating the invariant.
type LibPrint struct{}

// Name implements Analyzer.
func (LibPrint) Name() string { return "libprint" }

// Doc implements Analyzer.
func (LibPrint) Doc() string {
	return "forbids fmt.Print*, os.Exit, log.Fatal*, and panic in internal/* library packages; " +
		"process control and stdout belong to cmd/"
}

// Run implements Analyzer.
func (l LibPrint) Run(pass *Pass) {
	if !isInternalPath(pass.Path) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isB := pass.Info.ObjectOf(id).(*types.Builtin); isB {
					pass.Reportf(call.Pos(), "panic in internal library package; return an error, or lint:ignore with the invariant it guards")
				}
				return true
			}
			if pkg, name, ok := pkgLevelCallee(pass, call); ok {
				switch {
				case pkg == "fmt" && (name == "Print" || name == "Printf" || name == "Println"):
					pass.Reportf(call.Pos(), "fmt.%s writes to stdout from an internal library package; take an io.Writer or move to cmd/", name)
				case pkg == "os" && name == "Exit":
					pass.Reportf(call.Pos(), "os.Exit in internal library package; return an error and let cmd/ decide the exit code")
				case pkg == "log" && strings.HasPrefix(name, "Fatal"):
					pass.Reportf(call.Pos(), "log.%s exits the process from an internal library package; return an error instead", name)
				}
			}
			return true
		})
	}
}

// isInternalPath reports whether the import path has an "internal" element.
func isInternalPath(path string) bool {
	for _, part := range strings.Split(path, "/") {
		if part == "internal" {
			return true
		}
	}
	return false
}

// pkgLevelCallee resolves call's callee when it is a package-level
// function selected off an imported package, returning the package path
// and function name.
func pkgLevelCallee(pass *Pass, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := pass.Info.ObjectOf(sel.Sel).(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", "", false
	}
	if id, isID := sel.X.(*ast.Ident); isID {
		if _, isPkg := pass.Info.ObjectOf(id).(*types.PkgName); isPkg {
			return fn.Pkg().Path(), fn.Name(), true
		}
	}
	return "", "", false
}
