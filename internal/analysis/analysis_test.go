package analysis_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/golden")

// fixtureSuite loads the fixture mini-module under testdata/src.
func fixtureSuite(t *testing.T) *analysis.Suite {
	t.Helper()
	suite, err := analysis.NewSuite(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return suite
}

// runFixture analyzes one fixture package and returns its diagnostics.
func runFixture(t *testing.T, suite *analysis.Suite, name string) []analysis.Diagnostic {
	t.Helper()
	diags, err := suite.RunDirs([]string{filepath.Join("testdata", "src", filepath.FromSlash(name))})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return diags
}

// checkGolden compares got against the named golden file, rewriting it
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/analysis -run TestFixture -update`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("diagnostics differ from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestFixtureDiagnostics runs the full suite over each fixture package
// and compares the human-readable output against expected-diagnostic
// golden files. Every analyzer has a fixture that must produce findings;
// the clean fixture must produce none.
func TestFixtureDiagnostics(t *testing.T) {
	suite := fixtureSuite(t)
	cases := []struct {
		name         string
		wantFindings bool
	}{
		{"floatcmp", true},
		{"errcheck", true},
		{"lockcopy", true},
		{"maporder", true},
		{"internal/libprint", true},
		{"goleak", true},
		{"errwrap", true},
		{"hotalloc", true},
		{"internal/ctxflow", true},
		{"atomicmix", true},
		{"stale", true},
		{"suppress", true},
		{"clean", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := runFixture(t, suite, tc.name)
			if got := len(diags) > 0; got != tc.wantFindings {
				t.Errorf("findings present = %v, want %v (diags: %v)", got, tc.wantFindings, diags)
			}
			var buf bytes.Buffer
			if err := analysis.Format(&buf, diags); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, strings.ReplaceAll(tc.name, "/", "_")+".txt", buf.Bytes())
		})
	}
}

// TestFixtureJSON pins the machine-readable output shape for CI
// consumers against a golden JSON file.
func TestFixtureJSON(t *testing.T) {
	suite := fixtureSuite(t)
	diags := runFixture(t, suite, "errcheck")
	var buf bytes.Buffer
	if err := analysis.FormatJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "errcheck.json", buf.Bytes())
}

// TestFormatJSONEmpty guarantees an empty run serializes as [], not null.
func TestFormatJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := analysis.FormatJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty diagnostics serialize as %q, want []", got)
	}
}

// TestSuppressionSemantics asserts the load-bearing properties of
// lint:ignore handling directly, independent of the golden file: the
// wrong-analyzer case survives, the missing-reason case is reported as
// malformed, properly suppressed lines are absent, and directives (or
// names within multi-name directives) that suppress nothing are
// reported as stale.
func TestSuppressionSemantics(t *testing.T) {
	suite := fixtureSuite(t)
	diags := runFixture(t, suite, "suppress")
	var analyzers []string
	stale := 0
	for _, d := range diags {
		analyzers = append(analyzers, d.Analyzer)
		if d.Analyzer == "floatcmp" && d.Line < 20 {
			t.Errorf("suppressed finding leaked through: %s", d)
		}
		if d.Analyzer == "lint" && strings.Contains(d.Message, "stale suppression") {
			stale++
			if !strings.Contains(d.Message, "errcheck") {
				t.Errorf("unexpected stale analyzer in %s", d)
			}
		}
	}
	// The errcheck half of the multi-name directive and the wrong-name
	// directive are both dead: two stale reports. The used floatcmp
	// directives must produce none.
	if stale != 2 {
		t.Errorf("stale reports = %d, want 2 (diags: %v)", stale, diags)
	}
	want := []string{"lint", "lint", "floatcmp", "lint", "floatcmp"}
	if strings.Join(analyzers, ",") != strings.Join(want, ",") {
		t.Errorf("analyzers = %v, want %v (diags: %v)", analyzers, want, diags)
	}
}

// TestPackageDirsSkipsTestdata keeps the walker honest: fixture packages
// must never leak into a ./... run.
func TestPackageDirsSkipsTestdata(t *testing.T) {
	dirs, err := analysis.PackageDirs(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("PackageDirs descended into %s", d)
		}
	}
}
