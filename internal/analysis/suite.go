package analysis

// DefaultAnalyzers returns the project suite, in the order findings are
// attributed. Each analyzer guards one invariant the divergence engine's
// correctness story depends on; see DESIGN.md ("Static analysis").
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		FloatCmp{},
		ErrCheck{},
		LockCopy{},
		MapOrder{},
		LibPrint{},
		GoLeak{},
		ErrWrap{},
	}
}

// Suite runs a set of analyzers over packages loaded by a single Loader.
type Suite struct {
	Loader    *Loader
	Analyzers []Analyzer
}

// NewSuite builds a suite with the default analyzers over the module
// rooted at moduleDir.
func NewSuite(moduleDir string) (*Suite, error) {
	l, err := NewLoader(moduleDir)
	if err != nil {
		return nil, err
	}
	return &Suite{Loader: l, Analyzers: DefaultAnalyzers()}, nil
}

// RunDirs loads every directory as a package, runs all analyzers, applies
// lint:ignore suppressions, and returns the surviving diagnostics in
// deterministic order. Duplicate directories are analyzed once.
func (s *Suite) RunDirs(dirs []string) ([]Diagnostic, error) {
	var diags []Diagnostic
	seen := make(map[string]bool)
	for _, dir := range dirs {
		pkg, err := s.Loader.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if seen[pkg.Path] {
			continue
		}
		seen[pkg.Path] = true
		diags = append(diags, s.RunPackage(pkg)...)
	}
	SortDiagnostics(diags)
	return diags, nil
}

// RunPackage runs every analyzer over one loaded package and filters the
// findings through the package's lint:ignore directives. Malformed
// directives are reported as diagnostics of the pseudo-analyzer "lint".
func (s *Suite) RunPackage(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, a := range s.Analyzers {
		pass := &Pass{
			Fset:     s.Loader.Fset,
			Path:     pkg.Path,
			Pkg:      pkg.Types,
			Files:    pkg.Files,
			Info:     pkg.Info,
			analyzer: a,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		a.Run(pass)
	}
	index, malformed := collectSuppressions(s.Loader.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !index.suppressed(d) {
			kept = append(kept, d)
		}
	}
	return append(kept, malformed...)
}
