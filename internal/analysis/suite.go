package analysis

// DefaultAnalyzers returns the project suite, in the order findings are
// attributed. Each analyzer guards one invariant the divergence engine's
// correctness story depends on; see DESIGN.md ("Static analysis").
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		FloatCmp{},
		ErrCheck{},
		LockCopy{},
		MapOrder{},
		LibPrint{},
		GoLeak{},
		ErrWrap{},
		HotAlloc{},
		CtxFlow{},
		AtomicMix{},
	}
}

// Suite runs a set of analyzers over packages loaded by a single Loader.
type Suite struct {
	Loader    *Loader
	Analyzers []Analyzer
}

// NewSuite builds a suite with the default analyzers over the module
// rooted at moduleDir.
func NewSuite(moduleDir string) (*Suite, error) {
	l, err := NewLoader(moduleDir)
	if err != nil {
		return nil, err
	}
	return &Suite{Loader: l, Analyzers: DefaultAnalyzers()}, nil
}

// RunDirs loads every directory as a package, builds the module-wide
// fact base (call graph, lint:hot closure, atomic-access sites) over
// everything that got loaded, runs all analyzers, applies lint:ignore
// suppressions, audits the suppressions for staleness, and returns the
// surviving diagnostics in deterministic order. Duplicate directories
// are analyzed once.
//
// Loading happens in full before any analyzer runs: the facts engine
// must see every package of the run, or the hot closure and the
// atomic-access map would depend on analysis order.
func (s *Suite) RunDirs(dirs []string) ([]Diagnostic, error) {
	var pkgs []*Package
	seen := make(map[string]bool)
	for _, dir := range dirs {
		pkg, err := s.Loader.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if seen[pkg.Path] {
			continue
		}
		seen[pkg.Path] = true
		pkgs = append(pkgs, pkg)
	}
	facts := BuildFacts(s.Loader.Fset, s.Loader.ModulePath, s.Loader.ModulePackages())

	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, s.runPackage(pkg, facts)...)
	}
	SortDiagnostics(diags)
	return diags, nil
}

// RunPackage runs every analyzer over one loaded package with facts
// built from that package's import closure alone. RunDirs is the
// normal entry point; this exists for callers that hold a single
// package.
func (s *Suite) RunPackage(pkg *Package) []Diagnostic {
	facts := BuildFacts(s.Loader.Fset, s.Loader.ModulePath, s.Loader.ModulePackages())
	diags := s.runPackage(pkg, facts)
	SortDiagnostics(diags)
	return diags
}

// runPackage runs every analyzer over one loaded package, filters the
// findings through the package's lint:ignore directives, and audits the
// directives: malformed ones and ones that suppressed nothing are
// reported as diagnostics of the pseudo-analyzer "lint".
func (s *Suite) runPackage(pkg *Package, facts *Facts) []Diagnostic {
	var diags []Diagnostic
	for _, a := range s.Analyzers {
		pass := &Pass{
			Fset:     s.Loader.Fset,
			Path:     pkg.Path,
			Pkg:      pkg.Types,
			Files:    pkg.Files,
			Info:     pkg.Info,
			Facts:    facts,
			analyzer: a,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		a.Run(pass)
	}
	index, malformed := collectSuppressions(s.Loader.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !index.suppressed(d) {
			kept = append(kept, d)
		}
	}
	known := make(map[string]bool, len(s.Analyzers))
	for _, a := range s.Analyzers {
		known[a.Name()] = true
	}
	kept = append(kept, malformed...)
	return append(kept, index.stale(known)...)
}
