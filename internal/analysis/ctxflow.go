package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces context threading through the library packages. The
// job engine's cancellation story (a canceled job stops actual mining
// work, not just bookkeeping) only holds if every layer passes the
// caller's context down instead of conjuring a fresh one, so in
// internal/* packages:
//
//  1. context.Background() and context.TODO() are flagged wherever they
//     appear — a library has a caller, and the caller owns the context;
//  2. an exported function without a context parameter that calls a
//     context-taking callee is flagged, unless the context argument is
//     derived from one of the function's own parameters (r.Context()
//     on an *http.Request parameter is threading, s.ctx from a struct
//     field is storage — the antipattern);
//  3. an exported function without a context parameter that calls
//     known blocking stdlib operations (time.Sleep, net dials, the
//     package-level net/http helpers) is flagged — those waits are
//     exactly what a caller needs to be able to cancel.
//
// Interface-compat shims (Miner.Mine over MineContext) and
// process-lifetime roots carry lint:ignore justifications.
type CtxFlow struct{}

// Name implements Analyzer.
func (CtxFlow) Name() string { return "ctxflow" }

// Doc implements Analyzer.
func (CtxFlow) Doc() string {
	return "flags context.Background()/TODO() in internal packages and exported functions that call " +
		"context-taking callees or blocking stdlib I/O without accepting and threading a context"
}

// blockingCalls are package-level stdlib calls that block without a
// context and have context-aware alternatives. File I/O is deliberately
// absent: Go file operations are not context-cancelable, so demanding a
// context there would be theater.
var blockingCalls = map[string]map[string]bool{
	"time":     {"Sleep": true},
	"net":      {"Dial": true, "DialTimeout": true, "Listen": true, "LookupHost": true, "LookupAddr": true, "LookupIP": true},
	"net/http": {"Get": true, "Head": true, "Post": true, "PostForm": true},
}

// Run implements Analyzer.
func (c CtxFlow) Run(pass *Pass) {
	if pass.Pkg == nil || pass.Pkg.Name() == "main" || !isInternalPath(pass.Path) {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(pass, fd)
		}
	}
}

// checkFunc applies all three rules to one declared function.
func (c CtxFlow) checkFunc(pass *Pass, fd *ast.FuncDecl) {
	ownObjs, hasCtx := funcOwnObjects(pass, fd)
	checkThreading := exportedAPI(fd) && !hasCtx

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name, isPkgCall := pkgLevelCallee(pass, call)

		// Rule 1: no conjured contexts anywhere in library code.
		if isPkgCall && pkg == "context" && (name == "Background" || name == "TODO") {
			pass.Reportf(call.Pos(), "context.%s() in internal package: libraries thread the caller's context, they do not conjure one", name)
			return true
		}
		if !checkThreading {
			return true
		}

		// Rule 3: blocking stdlib calls need a cancelable caller.
		if isPkgCall {
			if fns, ok := blockingCalls[pkg]; ok && fns[name] {
				pass.Reportf(call.Pos(), "exported %s calls blocking %s.%s but accepts no context.Context; accept one and use a context-aware wait", fd.Name.Name, pkg, name)
				return true
			}
		}

		// Rule 2: calling a context-taking callee from a context-less
		// exported function.
		idx := ctxParamIndex(calleeSignature(pass, call))
		if idx < 0 || idx >= len(call.Args) {
			return true
		}
		arg := ast.Unparen(call.Args[idx])
		if isConjuredCtx(pass, arg) {
			return true // rule 1 already reported the conjured context itself
		}
		if !ctxDerivedFrom(pass, arg, ownObjs) {
			pass.Reportf(call.Pos(), "exported %s calls context-taking %s but accepts no context.Context; thread the caller's context through %s", fd.Name.Name, calleeLabel(call), fd.Name.Name)
		}
		return true
	})
}

// funcOwnObjects collects the function's parameter and receiver
// objects and reports whether any parameter is a context.Context.
func funcOwnObjects(pass *Pass, fd *ast.FuncDecl) (map[types.Object]bool, bool) {
	own := make(map[types.Object]bool)
	hasCtx := false
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.Info.ObjectOf(name); obj != nil {
					own[obj] = true
					if isContextType(obj.Type()) {
						hasCtx = true
					}
				}
			}
			if len(f.Names) == 0 { // unnamed parameter still satisfies "accepts a context"
				if t := pass.TypeOf(f.Type); isContextType(t) {
					hasCtx = true
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	return own, hasCtx
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// calleeSignature returns the called function's signature, or nil.
func calleeSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	t := pass.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

// ctxParamIndex returns the index of the first context.Context
// parameter of sig, or -1.
func ctxParamIndex(sig *types.Signature) int {
	if sig == nil {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return i
		}
	}
	return -1
}

// isConjuredCtx reports whether e is a direct context.Background() or
// context.TODO() call.
func isConjuredCtx(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	pkg, name, ok := pkgLevelCallee(pass, call)
	return ok && pkg == "context" && (name == "Background" || name == "TODO")
}

// ctxDerivedFrom reports whether the context expression is derived from
// one of the function's own parameters: the parameter itself, a method
// call rooted at a parameter (r.Context()), or a context.With* call
// whose parent is itself derived. A struct-field context (s.ctx) is
// storage, not derivation, and returns false.
func ctxDerivedFrom(pass *Pass, e ast.Expr, own map[types.Object]bool) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return own[pass.Info.ObjectOf(x)]
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			// context.With*(parent, ...): derived iff any argument is.
			if pkg, _, ok := pkgLevelCallee(pass, x); ok && pkg == "context" {
				for _, arg := range x.Args {
					if ctxDerivedFrom(pass, arg, own) {
						return true
					}
				}
				return false
			}
			// Method call: derived iff its receiver chain roots at an own
			// object (r.Context() on a request parameter).
			return ctxDerivedFrom(pass, sel.X, own)
		}
		return false
	case *ast.SelectorExpr:
		// Plain field access (s.ctx): stored context, not derivation.
		return false
	}
	return false
}

// calleeLabel renders a short name for the called function for use in
// diagnostics.
func calleeLabel(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "callee"
}
