package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// SortDiagnostics orders diagnostics by file, line, column, analyzer, and
// message so that output is deterministic — the same contract the miner
// itself honors for pattern output.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Format writes diagnostics in the conventional compiler style,
// one "file:line:col: [analyzer] message" per line.
func Format(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// FormatJSON writes diagnostics as an indented JSON array (an empty array,
// not null, when there are no findings) for machine consumption by CI.
func FormatJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}
