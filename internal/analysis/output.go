package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// SortDiagnostics orders diagnostics by file, line, column, analyzer, and
// message so that output is deterministic — the same contract the miner
// itself honors for pattern output.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Format writes diagnostics in the conventional compiler style,
// one "file:line:col: [analyzer] message" per line. The input is
// re-sorted (on a copy) before emission, so output is deterministic
// regardless of how the caller assembled the slice.
func Format(w io.Writer, diags []Diagnostic) error {
	for _, d := range sortedCopy(diags) {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// FormatJSON writes diagnostics as an indented JSON array (an empty array,
// not null, when there are no findings) for machine consumption by CI.
// Like Format, the emitted order is always the canonical sort order —
// CI diffs and golden files must never depend on analyzer scheduling.
func FormatJSON(w io.Writer, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sortedCopy(diags))
}

// sortedCopy returns the diagnostics in canonical order without
// mutating the caller's slice. A nil input becomes an empty, non-nil
// slice so JSON output is [] rather than null.
func sortedCopy(diags []Diagnostic) []Diagnostic {
	out := make([]Diagnostic, len(diags))
	copy(out, diags)
	SortDiagnostics(out)
	return out
}
