package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
)

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// TestRepositoryLintClean runs the full divlint suite over every package
// in this repository as part of `go test ./...`, so the tier-1 gate
// itself enforces the project invariants (deterministic miner output,
// no float equality without justification, no discarded errors, no lock
// copies, no process control in library code). A failure here is exactly
// what `go run ./cmd/divlint ./...` would report.
func TestRepositoryLintClean(t *testing.T) {
	root := moduleRoot(t)
	suite, err := analysis.NewSuite(root)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := analysis.PackageDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := suite.RunDirs(dirs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
