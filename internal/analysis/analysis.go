// Package analysis is a small, dependency-free static-analysis framework
// for this repository, built directly on go/ast, go/parser, and go/types.
//
// It exists to mechanically enforce project invariants that the divergence
// engine's correctness arguments rely on (deterministic miner output
// ordering, careful float handling in the Bayesian significance layer,
// no lock copying in the parallel miner, no process-control calls in
// library packages). The cmd/divlint driver runs every registered
// analyzer over every package in the module and fails the build on any
// finding; lint_test.go does the same under `go test ./...` so the tier-1
// gate enforces the invariants too.
//
// A finding can be suppressed, with a mandatory justification, by a
// comment of the form
//
//	// lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the offending line or the line directly above it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Diagnostic is a single finding at a resolved source position. File is
// module-relative (the loader parses files under module-relative names),
// which keeps output stable across working directories and makes golden
// files portable.
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the conventional compiler-style one-line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named check. Run inspects a single type-checked package
// and reports findings through the pass; it must not retain the pass.
type Analyzer interface {
	// Name is the short identifier used in output and in lint:ignore
	// comments. It must be a single lower-case word.
	Name() string
	// Doc is a one-paragraph description of the invariant the analyzer
	// protects, shown by `divlint -list`.
	Doc() string
	// Run analyzes one package.
	Run(*Pass)
}

// Pass carries everything an Analyzer needs to inspect one package.
type Pass struct {
	Fset  *token.FileSet
	Path  string // import path, e.g. "repro/internal/stats"
	Pkg   *types.Package
	Files []*ast.File
	Info  *types.Info

	// Facts is the module-wide fact base (call graph, lint:hot closure,
	// atomic-access sites) shared by every pass of a run. Analyzers that
	// need no cross-package facts ignore it; it is nil only when a Pass
	// is constructed by hand outside the Suite.
	Facts *Facts

	analyzer Analyzer
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.analyzer.Name(),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if the type checker did not record
// one (for example in code that failed to type-check).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}
