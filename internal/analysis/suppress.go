package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is the comment prefix that suppresses a finding:
//
//	// lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The directive applies to diagnostics on its own line (trailing comment)
// and on the line immediately below (standalone comment above the
// offending statement). The reason is mandatory: a directive without one
// is itself reported as a malformed-suppression diagnostic, so every
// silenced finding carries a recorded justification.
const ignoreDirective = "lint:ignore"

// suppressionIndex maps file -> line -> set of suppressed analyzer names.
type suppressionIndex map[string]map[int]map[string]bool

// collectSuppressions scans the comments of files for lint:ignore
// directives. It returns the suppression index plus diagnostics for any
// malformed directives (missing analyzer list or missing reason).
func collectSuppressions(fset *token.FileSet, files []*ast.File) (suppressionIndex, []Diagnostic) {
	index := make(suppressionIndex)
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(text, ignoreDirective)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. "lint:ignoreXYZ" is not the directive
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Analyzer: "lint",
						Message:  `malformed suppression: want "lint:ignore <analyzer>[,<analyzer>] <reason>"`,
					})
					continue
				}
				byLine := index[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					index[pos.Filename] = byLine
				}
				for _, name := range strings.Split(fields[0], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					for _, line := range []int{pos.Line, pos.Line + 1} {
						if byLine[line] == nil {
							byLine[line] = make(map[string]bool)
						}
						byLine[line][name] = true
					}
				}
			}
		}
	}
	return index, malformed
}

// suppressed reports whether d is covered by a lint:ignore directive.
func (s suppressionIndex) suppressed(d Diagnostic) bool {
	byLine, ok := s[d.File]
	if !ok {
		return false
	}
	names, ok := byLine[d.Line]
	if !ok {
		return false
	}
	return names[d.Analyzer]
}
