package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is the comment prefix that suppresses a finding:
//
//	// lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The directive applies to diagnostics on its own line (trailing comment)
// and on the line immediately below (standalone comment above the
// offending statement). Placed in a function's doc comment, it instead
// covers the whole function — the declaration form, for functions whose
// entire purpose is the exempted behavior (a pool's growth path, a
// state constructor). The reason is mandatory: a directive without one
// is itself reported as a malformed-suppression diagnostic, so every
// silenced finding carries a recorded justification.
//
// Suppressions are audited for staleness: a directive (or one analyzer
// name within a multi-name directive) that suppressed no finding during
// the run is reported by the "lint" pseudo-analyzer. Justifications rot
// when the code under them changes; the audit forces dead directives out
// of the tree instead of letting them imply invariants that no longer
// hold.
const ignoreDirective = "lint:ignore"

// suppression is one parsed lint:ignore directive.
type suppression struct {
	file  string
	line  int
	col   int
	decl  bool // sits in a function doc comment: covers the whole function
	names []string
	used  map[string]bool
}

// suppressionIndex holds every directive of a package, addressable by
// the two lines each directive covers.
type suppressionIndex struct {
	directives []*suppression
	byLine     map[string]map[int][]*suppression
}

// collectSuppressions scans the comments of files for lint:ignore
// directives. It returns the suppression index plus diagnostics for any
// malformed directives (missing analyzer list or missing reason).
func collectSuppressions(fset *token.FileSet, files []*ast.File) (*suppressionIndex, []Diagnostic) {
	index := &suppressionIndex{byLine: make(map[string]map[int][]*suppression)}
	var malformed []Diagnostic
	for _, f := range files {
		// Map each doc comment to the line extent of the function it
		// documents, for the declaration form of the directive.
		declExtent := make(map[*ast.Comment][2]int)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			extent := [2]int{fset.Position(fd.Pos()).Line, fset.Position(fd.End()).Line}
			for _, c := range fd.Doc.List {
				declExtent[c] = extent
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(text, ignoreDirective)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. "lint:ignoreXYZ" is not the directive
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Analyzer: "lint",
						Message:  `malformed suppression: want "lint:ignore <analyzer>[,<analyzer>] <reason>"`,
					})
					continue
				}
				s := &suppression{
					file: pos.Filename,
					line: pos.Line,
					col:  pos.Column,
					used: make(map[string]bool),
				}
				for _, name := range strings.Split(fields[0], ",") {
					if name = strings.TrimSpace(name); name != "" {
						s.names = append(s.names, name)
					}
				}
				index.directives = append(index.directives, s)
				byLine := index.byLine[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]*suppression)
					index.byLine[pos.Filename] = byLine
				}
				from, to := pos.Line, pos.Line+1
				if extent, ok := declExtent[c]; ok {
					s.decl = true
					from, to = extent[0], extent[1]
				}
				for line := from; line <= to; line++ {
					byLine[line] = append(byLine[line], s)
				}
			}
		}
	}
	return index, malformed
}

// suppressed reports whether d is covered by a lint:ignore directive,
// and records the directive (and name) that earned its keep.
func (idx *suppressionIndex) suppressed(d Diagnostic) bool {
	byLine, ok := idx.byLine[d.File]
	if !ok {
		return false
	}
	hit := false
	for _, s := range byLine[d.Line] {
		for _, name := range s.names {
			if name == d.Analyzer {
				s.used[name] = true
				hit = true
			}
		}
	}
	return hit
}

// stale reports every analyzer name in every directive that suppressed
// nothing during this run. Placeholder names (anything that is not a
// plausible analyzer identifier — analyzer names are single lower-case
// words) are skipped so prose and documentation examples never trip the
// audit.
func (idx *suppressionIndex) stale(known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, s := range idx.directives {
		for _, name := range s.names {
			if s.used[name] || !plausibleAnalyzerName(name) {
				continue
			}
			scope := "on this or the next line"
			if s.decl {
				scope = "in the function it documents"
			}
			msg := "stale suppression: lint:ignore " + name + " no longer suppresses any finding " + scope + "; delete it so the recorded justification cannot rot"
			if !known[name] {
				msg = "stale suppression: no analyzer named " + name + " is registered; fix the name or delete the directive"
			}
			out = append(out, Diagnostic{
				File:     s.file,
				Line:     s.line,
				Col:      s.col,
				Analyzer: "lint",
				Message:  msg,
			})
		}
	}
	return out
}

// plausibleAnalyzerName reports whether name could be an analyzer name:
// a non-empty, all-lower-case ASCII word.
func plausibleAnalyzerName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		if r < 'a' || r > 'z' {
			return false
		}
	}
	return true
}
