package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc flags heap allocations reachable inside the loops of the
// mining hot path. The hot path is declared, not guessed: a
// `// lint:hot` directive on a function's doc comment seeds the facts
// engine's hot set, which closes transitively over same-module callees.
// Within a hot function, every allocation site lexically inside a
// for/range statement is flagged; a function called from inside such a
// loop (directly or transitively) is "loop-hot" and has its whole body
// treated as running inside a hot loop.
//
// Flagged allocation kinds: make, new, composite literals that reach
// the heap (&T{...}, slice and map literals), growing append (appends
// into provably reused or capacity-preallocated buffers are exempt —
// a `make` with an explicit capacity or a `buf = buf[:0]` reset in the
// same function), string concatenation, string<->[]byte/[]rune
// conversions, fmt.* calls (interface boxing), and function literals
// (closure capture). Allocations that only feed a panic call are exempt:
// a death path runs at most once per process, so formatting the panic
// message is not a steady-state allocation. The zero-allocation contract
// these checks enforce is locked in by the testing.AllocsPerRun guards
// in internal/fpm.
type HotAlloc struct{}

// Name implements Analyzer.
func (HotAlloc) Name() string { return "hotalloc" }

// Doc implements Analyzer.
func (HotAlloc) Doc() string {
	return "flags heap allocations (make/new/composite literals/growing append/string concatenation/" +
		"fmt boxing/closures) inside loops of functions on the lint:hot closure; " +
		"preallocated and explicitly reused buffers are exempt"
}

// Run implements Analyzer.
func (h HotAlloc) Run(pass *Pass) {
	if pass.Facts == nil {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			hot, loopHot := pass.Facts.IsHot(fn), pass.Facts.IsLoopHot(fn)
			if !hot && !loopHot {
				continue
			}
			h.checkFunc(pass, fd, loopHot)
		}
	}
}

// checkFunc walks one hot function body and reports in-loop allocation
// sites. When wholeBody is true the entire body counts as inside a hot
// loop (the function is loop-hot).
func (h HotAlloc) checkFunc(pass *Pass, fd *ast.FuncDecl, wholeBody bool) {
	loops := loopRanges(fd.Body)
	death := panicArgRanges(pass, fd.Body)
	reused := reusedBuffers(pass, fd)
	name := fd.Name.Name
	consumed := make(map[*ast.CompositeLit]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		inLoop := wholeBody || loopDepthAt(loops, n.Pos()) > 0
		if !inLoop || loopDepthAt(death, n.Pos()) > 0 {
			return true
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			h.checkCall(pass, x, name, reused)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					markConsumed(lit, consumed)
					pass.Reportf(x.Pos(), "hot-loop allocation in %s: &composite literal escapes to the heap; allocate from a pooled arena instead", name)
				}
			}
		case *ast.CompositeLit:
			if consumed[x] {
				return true
			}
			if t := pass.TypeOf(x); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					markConsumed(x, consumed)
					pass.Reportf(x.Pos(), "hot-loop allocation in %s: %s literal allocates its backing store; hoist it out of the loop or reuse a buffer", name, kindOf(t))
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(pass.TypeOf(x)) {
				pass.Reportf(x.Pos(), "hot-loop allocation in %s: string concatenation allocates; build into a reused []byte instead", name)
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isString(pass.TypeOf(x.Lhs[0])) {
				pass.Reportf(x.Pos(), "hot-loop allocation in %s: string += allocates; build into a reused []byte instead", name)
			}
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "hot-loop allocation in %s: function literal allocates a closure per iteration; hoist it or use a named function", name)
		}
		return true
	})
}

// checkCall reports allocating calls: the make/new/append builtins,
// allocating string conversions, and fmt calls (which box every
// argument into an interface).
func (h HotAlloc) checkCall(pass *Pass, call *ast.CallExpr, fname string, reused map[types.Object]bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "hot-loop allocation in %s: make allocates per iteration; hoist the buffer into reusable state", fname)
			case "new":
				pass.Reportf(call.Pos(), "hot-loop allocation in %s: new allocates per iteration; allocate from a pooled arena instead", fname)
			case "append":
				if !appendExempt(pass, call, reused) {
					pass.Reportf(call.Pos(), "hot-loop allocation in %s: append may grow its backing array; preallocate with capacity or reset with buf = buf[:0]", fname)
				}
			}
			return
		}
	}
	// Allocating conversions: string <-> []byte / []rune.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, pass.TypeOf(call.Args[0])
		if allocConversion(dst, src) {
			pass.Reportf(call.Pos(), "hot-loop allocation in %s: %s(%s) conversion copies its operand; reuse a buffer or restructure", fname, kindOf(dst), kindOf(src))
		}
		return
	}
	if pkg, fn, ok := pkgLevelCallee(pass, call); ok && pkg == "fmt" {
		pass.Reportf(call.Pos(), "hot-loop allocation in %s: fmt.%s boxes its arguments; hot paths must not format per iteration", fname, fn)
	}
}

// panicArgRanges collects the extents of every argument to the panic
// builtin: an allocation there runs at most once, on a death path, and
// is therefore never a steady-state hot-loop cost.
func panicArgRanges(pass *Pass, body ast.Node) []posRange {
	var out []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
			return true
		}
		for _, arg := range call.Args {
			out = append(out, posRange{arg.Pos(), arg.End()})
		}
		return true
	})
	return out
}

// appendExempt reports whether an append call is provably amortized:
// the destination is an explicit reslice (buf[:0] and friends), or a
// buffer this function preallocates with capacity or resets for reuse.
func appendExempt(pass *Pass, call *ast.CallExpr, reused map[types.Object]bool) bool {
	if len(call.Args) == 0 {
		return true
	}
	switch dst := ast.Unparen(call.Args[0]).(type) {
	case *ast.SliceExpr:
		return true // append(buf[:0], ...) — the canonical reuse idiom
	case *ast.Ident:
		return reused[pass.Info.ObjectOf(dst)]
	case *ast.SelectorExpr:
		return reused[pass.Info.ObjectOf(dst.Sel)]
	}
	return false
}

// reusedBuffers collects the variables this function either
// preallocates with an explicit capacity (3-argument make) or resets
// via a self-reslice (buf = buf[:0]); appends into them are amortized
// and therefore exempt.
func reusedBuffers(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		var obj types.Object
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj = pass.Info.ObjectOf(l)
		case *ast.SelectorExpr:
			obj = pass.Info.ObjectOf(l.Sel)
		}
		if obj == nil {
			return
		}
		switch r := ast.Unparen(rhs).(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(r.Fun).(*ast.Ident); ok {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "make" && len(r.Args) >= 3 {
					out[obj] = true
				}
			}
		case *ast.SliceExpr:
			// A reslice of the same variable (buf = buf[:0]) marks reuse.
			switch x := ast.Unparen(r.X).(type) {
			case *ast.Ident:
				if pass.Info.ObjectOf(x) == obj {
					out[obj] = true
				}
			case *ast.SelectorExpr:
				if pass.Info.ObjectOf(x.Sel) == obj {
					out[obj] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i := range s.Lhs {
				if i < len(s.Rhs) {
					record(s.Lhs[i], s.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i := range s.Names {
				if i < len(s.Values) {
					record(s.Names[i], s.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// markConsumed records lit and every composite literal nested inside it
// so one allocation is reported once, at its outermost site.
func markConsumed(lit *ast.CompositeLit, consumed map[*ast.CompositeLit]bool) {
	ast.Inspect(lit, func(n ast.Node) bool {
		if l, ok := n.(*ast.CompositeLit); ok {
			consumed[l] = true
		}
		return true
	})
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// allocConversion reports whether a conversion from src to dst copies
// its operand: string <-> byte/rune slice in either direction.
func allocConversion(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

// isByteOrRuneSlice reports whether t is a []byte or []rune variant.
func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// kindOf renders a short, deterministic description of a type for
// diagnostics.
func kindOf(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	if isString(t) {
		return "string"
	}
	return t.String()
}
