package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrder flags slices that are appended to while ranging over a map and
// then escape the function (returned, stored, sent, or passed on) without
// ever being handed to a sort. Go randomizes map iteration order, so such
// a slice has a different order on every run — precisely the bug class
// that would silently break the miner-output ordering contract that
// Parallel.Mine preserves today (Thm. 5.1's soundness/completeness
// argument assumes deterministic, identically-ordered miner output).
//
// The check is a heuristic: any call into the sort or slices packages
// that mentions the slice anywhere in the function counts as sorting it,
// and local aggregation (summing, counting) never triggers it because the
// slice must escape to be reported. Order-insensitive escapes (e.g.
// feeding a mean) should carry a lint:ignore maporder directive saying so.
type MapOrder struct{}

// Name implements Analyzer.
func (MapOrder) Name() string { return "maporder" }

// Doc implements Analyzer.
func (MapOrder) Doc() string {
	return "flags slices filled from a map range that escape the function without a deterministic sort; " +
		"protects the miner's identically-ordered-output contract"
}

// Run implements Analyzer.
func (m MapOrder) Run(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					m.checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				m.checkFunc(pass, fn.Body)
			}
			return true
		})
	}
}

// mapAppend is one `s = append(s, ...)` inside a map-range body.
type mapAppend struct {
	obj types.Object
	pos ast.Node
}

func (m MapOrder) checkFunc(pass *Pass, body *ast.BlockStmt) {
	candidates := m.collectMapAppends(pass, body)
	if len(candidates) == 0 {
		return
	}
	sorted := make(map[types.Object]bool)
	escaped := make(map[types.Object]bool)
	objs := make(map[types.Object]bool, len(candidates))
	for _, c := range candidates {
		objs[c.obj] = true
	}
	m.classifyUses(pass, body, objs, sorted, escaped)
	for _, c := range candidates {
		if escaped[c.obj] && !sorted[c.obj] {
			pass.Reportf(c.pos.Pos(), "%s is appended to while ranging over a map and escapes without a deterministic sort; "+
				"sort it (or lint:ignore with why order cannot matter)", c.obj.Name())
		}
	}
}

// collectMapAppends finds appends to named slices inside map-range bodies
// belonging to this function (nested function literals are analyzed on
// their own).
func (m MapOrder) collectMapAppends(pass *Pass, body *ast.BlockStmt) []mapAppend {
	var out []mapAppend
	var walk func(n ast.Node, inMapRange bool)
	walk = func(n ast.Node, inMapRange bool) {
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			switch c := c.(type) {
			case *ast.FuncLit:
				return false
			case *ast.RangeStmt:
				_, isMap := typeUnder(pass.TypeOf(c.X)).(*types.Map)
				walk(c.Body, inMapRange || isMap)
				return false
			case *ast.AssignStmt:
				if inMapRange {
					for i, rhs := range c.Rhs {
						if i >= len(c.Lhs) {
							break
						}
						if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(pass, call.Fun, "append") {
							if id, ok := c.Lhs[i].(*ast.Ident); ok {
								if obj := pass.Info.ObjectOf(id); obj != nil {
									out = append(out, mapAppend{obj: obj, pos: c})
								}
							}
						}
					}
				}
			}
			return true
		})
	}
	walk(body, false)
	return out
}

// classifyUses walks the whole function body (including nested closures,
// which share the enclosing scope) deciding, for each candidate slice,
// whether it was sorted and whether it escapes.
func (m MapOrder) classifyUses(pass *Pass, body *ast.BlockStmt, objs, sorted, escaped map[types.Object]bool) {
	usesObj := func(n ast.Node, obj types.Object) bool {
		found := false
		ast.Inspect(n, func(c ast.Node) bool {
			if id, ok := c.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
				found = true
			}
			return !found
		})
		return found
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for obj := range objs {
				if usesObj(n, obj) {
					escaped[obj] = true
				}
			}
		case *ast.SendStmt:
			for obj := range objs {
				if usesObj(n.Value, obj) {
					escaped[obj] = true
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if id, ok := unparen(elt).(*ast.Ident); ok {
					if obj := pass.Info.ObjectOf(id); objs[obj] {
						escaped[obj] = true
					}
				}
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := unparen(kv.Value).(*ast.Ident); ok {
						if obj := pass.Info.ObjectOf(id); objs[obj] {
							escaped[obj] = true
						}
					}
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				id, ok := unparen(rhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.ObjectOf(id)
				if !objs[obj] {
					continue
				}
				switch n.Lhs[i].(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					escaped[obj] = true
				}
			}
		case *ast.CallExpr:
			if isSortCall(pass, n) {
				for obj := range objs {
					for _, arg := range n.Args {
						if usesObj(arg, obj) {
							sorted[obj] = true
						}
					}
				}
				return true
			}
			if fn, ok := unparen(n.Fun).(*ast.Ident); ok {
				if _, isB := pass.Info.ObjectOf(fn).(*types.Builtin); isB {
					return true // append/len/cap/copy/delete never publish the slice
				}
			}
			for _, arg := range n.Args {
				if id, ok := unparen(arg).(*ast.Ident); ok {
					if obj := pass.Info.ObjectOf(id); objs[obj] {
						escaped[obj] = true
					}
				}
			}
		}
		return true
	})
}

// isSortCall reports whether call invokes a function from package sort or
// slices.
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.Info.ObjectOf(id).(*types.PkgName)
	if !ok {
		return false
	}
	path := pkg.Imported().Path()
	return path == "sort" || path == "slices"
}

// isBuiltin reports whether e names the given builtin function.
func isBuiltin(pass *Pass, e ast.Expr, name string) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := pass.Info.ObjectOf(id).(*types.Builtin)
	return isB
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// typeUnder is Underlying with a nil guard.
func typeUnder(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}
