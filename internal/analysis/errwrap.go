package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// ErrWrap enforces the error-identity convention on exported APIs: an
// error constructed inside an exported function (or method on an
// exported type), and every exported Err* sentinel, must start its
// message with the package name — `fmt.Errorf("registry: ...: %w", err)`
// — so a failure that crosses a package boundary still says where it
// came from. Formats that open with a verb ("%w: ...") are exempt: the
// wrapped error supplies the identity. Unexported helpers are exempt
// too — their errors are wrapped (and prefixed) by the exported entry
// points that call them — as is package main, whose errors reach a log
// line rather than another package.
type ErrWrap struct{}

// Name implements Analyzer.
func (ErrWrap) Name() string { return "errwrap" }

// Doc implements Analyzer.
func (ErrWrap) Doc() string {
	return "flags errors.New/fmt.Errorf messages in exported APIs (and exported Err* sentinels) that do not " +
		"start with the package-name prefix; formats opening with a verb and package main are exempt"
}

// Run implements Analyzer.
func (w ErrWrap) Run(pass *Pass) {
	if pass.Pkg == nil || pass.Pkg.Name() == "main" {
		return
	}
	prefix := pass.Pkg.Name() + ": "
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				w.checkSentinels(pass, d, prefix)
			case *ast.FuncDecl:
				if d.Body == nil || !exportedAPI(d) {
					continue
				}
				ast.Inspect(d.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if lit, bad := unprefixedErrorText(pass, call, prefix); bad {
						pass.Reportf(lit.Pos(), "error text in exported %s does not start with %q; "+
							"prefix messages with the package name so cross-package failures stay attributable",
							d.Name.Name, prefix)
					}
					return true
				})
			}
		}
	}
}

// checkSentinels reports exported package-level Err* variables whose
// message lacks the package prefix. Sentinels are matched by name, not
// type: the convention is about what callers will see in logs.
func (ErrWrap) checkSentinels(pass *Pass, d *ast.GenDecl, prefix string) {
	for _, spec := range d.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			return // import or type decl; no other spec kinds follow
		}
		for i, name := range vs.Names {
			if !name.IsExported() || !strings.HasPrefix(name.Name, "Err") || i >= len(vs.Values) {
				continue
			}
			call, ok := unparen(vs.Values[i]).(*ast.CallExpr)
			if !ok {
				continue
			}
			if lit, bad := unprefixedErrorText(pass, call, prefix); bad {
				pass.Reportf(lit.Pos(), "sentinel %s does not start with %q; "+
					"prefix messages with the package name so cross-package failures stay attributable",
					name.Name, prefix)
			}
		}
	}
}

// unprefixedErrorText reports whether call constructs an error via
// errors.New or fmt.Errorf from a string literal that neither starts
// with the package prefix nor opens with a format verb.
func unprefixedErrorText(pass *Pass, call *ast.CallExpr, prefix string) (*ast.BasicLit, bool) {
	pkg, name, ok := pkgLevelCallee(pass, call)
	if !ok || len(call.Args) == 0 {
		return nil, false
	}
	if !(pkg == "errors" && name == "New") && !(pkg == "fmt" && name == "Errorf") {
		return nil, false
	}
	lit, ok := unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return nil, false // dynamic format; identity is the caller's problem
	}
	text, err := strconv.Unquote(lit.Value)
	if err != nil {
		return nil, false
	}
	if strings.HasPrefix(text, prefix) || strings.HasPrefix(text, "%") {
		return nil, false
	}
	return lit, true
}

// exportedAPI reports whether d is part of the package's exported
// surface: an exported function, or an exported method on an exported
// receiver type.
func exportedAPI(d *ast.FuncDecl) bool {
	if !d.Name.IsExported() {
		return false
	}
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	base := receiverBase(d.Recv.List[0].Type)
	return base != nil && base.IsExported()
}

// receiverBase digs the receiver's base type identifier out of pointer
// and type-parameter wrappers.
func receiverBase(t ast.Expr) *ast.Ident {
	for {
		switch e := t.(type) {
		case *ast.StarExpr:
			t = e.X
		case *ast.IndexExpr:
			t = e.X
		case *ast.IndexListExpr:
			t = e.X
		case *ast.ParenExpr:
			t = e.X
		case *ast.Ident:
			return e
		default:
			return nil
		}
	}
}
