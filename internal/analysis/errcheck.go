package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheck flags calls whose error result is silently dropped: a call
// returning an error used as a bare expression statement or spawned with
// `go`. Explicit discards (`_ = f()`) stay visible in the code and are
// allowed, as are `defer` cleanups (deferred Close-style errors are an
// accepted project-wide trade-off, documented in DESIGN.md).
//
// Mirroring the de-facto errcheck conventions, calls that cannot fail in
// practice are exempt:
//   - fmt.Print/Printf/Println (best-effort terminal output), and
//     fmt.Fprint* / io.WriteString when the sink is os.Stdout, os.Stderr,
//     or an infallible writer;
//   - methods on bytes.Buffer and strings.Builder, and writes to a
//     hash.Hash — all documented by the standard library to never return
//     a non-nil error.
type ErrCheck struct{}

// Name implements Analyzer.
func (ErrCheck) Name() string { return "errcheck" }

// Doc implements Analyzer.
func (ErrCheck) Doc() string {
	return "flags discarded error returns (expression and go statements); explicit `_ =` discards, defers, " +
		"terminal prints, and infallible writers (bytes.Buffer, strings.Builder, hash.Hash) are allowed"
}

// Run implements Analyzer.
func (e ErrCheck) Run(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = st.Call
			}
			if call == nil || !callReturnsError(pass, call) || isExemptCall(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(), "error returned by %s is discarded; handle it or assign to _ explicitly",
				types.ExprString(call.Fun))
			return true
		})
	}
}

// callReturnsError reports whether any result of the call has type error.
func callReturnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isExemptCall implements the exemptions documented on ErrCheck.
func isExemptCall(pass *Pass, call *ast.CallExpr) bool {
	// Methods on infallible writers: buf.WriteString(...), h.Write(...).
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if selection, ok := pass.Info.Selections[sel]; ok && isInfallibleSinkType(selection.Recv()) {
			return true
		}
	}
	// Package-level print/write helpers.
	pkg, name, ok := pkgLevelCallee(pass, call)
	if !ok {
		return false
	}
	switch {
	case pkg == "fmt" && (name == "Print" || name == "Printf" || name == "Println"):
		return true
	case (pkg == "fmt" && strings.HasPrefix(name, "Fprint")) || (pkg == "io" && name == "WriteString"):
		return len(call.Args) > 0 && isInfallibleSinkExpr(pass, call.Args[0])
	}
	return false
}

// isInfallibleSinkExpr reports whether e is os.Stdout/os.Stderr or has an
// infallible writer type.
func isInfallibleSinkExpr(pass *Pass, e ast.Expr) bool {
	if sel, ok := unparen(e).(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pkgName, ok := pass.Info.ObjectOf(id).(*types.PkgName); ok &&
				pkgName.Imported().Path() == "os" &&
				(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr") {
				return true
			}
		}
	}
	return isInfallibleSinkType(pass.TypeOf(e))
}

// isInfallibleSinkType recognizes bytes.Buffer, strings.Builder, and
// hash.Hash (whose Write is specified to never return an error),
// possibly behind a pointer.
func isInfallibleSinkType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	switch {
	case pkg == "bytes" && name == "Buffer",
		pkg == "strings" && name == "Builder",
		pkg == "hash" && (name == "Hash" || name == "Hash32" || name == "Hash64"):
		return true
	}
	return false
}
