package analysis_test

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// loadFixtureFacts loads one fixture package and builds facts over its
// module-internal import closure.
func loadFixtureFacts(t *testing.T, dir string) *analysis.Facts {
	t.Helper()
	loader, err := analysis.NewLoader(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.LoadDir(filepath.Join("testdata", "src", filepath.FromSlash(dir))); err != nil {
		t.Fatal(err)
	}
	return analysis.BuildFacts(loader.Fset, loader.ModulePath, loader.ModulePackages())
}

// TestFactsHotClosure pins the call-graph closure: lint:hot seeds are
// hot, their same-module callees are hot, and a callee invoked from
// inside a seed's loop is loop-hot. The cold function with an identical
// body stays outside both sets.
func TestFactsHotClosure(t *testing.T) {
	facts := loadFixtureFacts(t, "hotalloc")

	hot := facts.HotFuncNames()
	wantHot := []string{
		"fixture/hotalloc.Mine", "fixture/hotalloc.MineReused", "fixture/hotalloc.grow",
		"fixture/hotalloc.guarded", "fixture/hotalloc.helper",
	}
	if strings.Join(hot, ",") != strings.Join(wantHot, ",") {
		t.Errorf("hot closure = %v, want %v", hot, wantHot)
	}

	loopHot := facts.LoopHotFuncNames()
	wantLoopHot := []string{"fixture/hotalloc.grow", "fixture/hotalloc.guarded", "fixture/hotalloc.helper"}
	if strings.Join(loopHot, ",") != strings.Join(wantLoopHot, ",") {
		t.Errorf("loop-hot set = %v, want %v", loopHot, wantLoopHot)
	}
}

// TestFactsHotClosureTransitive builds a deeper chain out of the clean
// fixture (no lint:hot anywhere) and asserts both sets stay empty —
// hotness never appears without a seed.
func TestFactsHotClosureTransitive(t *testing.T) {
	facts := loadFixtureFacts(t, "clean")
	if got := facts.HotFuncNames(); len(got) != 0 {
		t.Errorf("hot closure without seeds = %v, want empty", got)
	}
	if got := facts.LoopHotFuncNames(); len(got) != 0 {
		t.Errorf("loop-hot set without seeds = %v, want empty", got)
	}
}

// TestFormatJSONDeterministic shuffles a diagnostic set and asserts both
// emitters produce canonical order regardless of input order — the
// contract CI diffs and golden files depend on across multi-analyzer,
// multi-package runs.
func TestFormatJSONDeterministic(t *testing.T) {
	base := []analysis.Diagnostic{
		{File: "a.go", Line: 3, Col: 1, Analyzer: "floatcmp", Message: "m1"},
		{File: "a.go", Line: 3, Col: 1, Analyzer: "hotalloc", Message: "m2"},
		{File: "a.go", Line: 10, Col: 2, Analyzer: "lint", Message: "m3"},
		{File: "b.go", Line: 1, Col: 9, Analyzer: "ctxflow", Message: "m4"},
		{File: "a.go", Line: 3, Col: 7, Analyzer: "atomicmix", Message: "m5"},
	}
	rng := rand.New(rand.NewSource(1))
	var want string
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]analysis.Diagnostic(nil), base...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		var json, text strings.Builder
		if err := analysis.FormatJSON(&json, shuffled); err != nil {
			t.Fatal(err)
		}
		if err := analysis.Format(&text, shuffled); err != nil {
			t.Fatal(err)
		}
		got := json.String() + "\n---\n" + text.String()
		if trial == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("emission depends on input order:\n--- got ---\n%s--- want ---\n%s", got, want)
		}
	}
	// The canonical order itself: file, then line, then column, then
	// analyzer.
	var text strings.Builder
	if err := analysis.Format(&text, base); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(text.String()), "\n")
	wantFirst := "a.go:3:1: [floatcmp] m1"
	if lines[0] != wantFirst {
		t.Errorf("first emitted line = %q, want %q", lines[0], wantFirst)
	}
	wantLast := "b.go:1:9: [ctxflow] m4"
	if lines[len(lines)-1] != wantLast {
		t.Errorf("last emitted line = %q, want %q", lines[len(lines)-1], wantLast)
	}
}
