package datagen

import "math/rand"

// AdultRows matches the |D| of Table 4 (adult after dropping missing
// values).
const AdultRows = 45222

// Adult generates the synthetic stand-in for the UCI adult (census
// income) dataset with the 11 attributes the paper uses: age, workclass,
// education, marital-status, occupation, relationship, race, sex,
// capital-gain, capital-loss and hours-per-week (discretized). Income
// above 50K is the positive class (≈ 25% of instances). The classifier
// output is calibrated to overall FPR ≈ 0.08 and FNR ≈ 0.38, with errors
// concentrated where the paper's Table 5 reports them: false positives
// among married professionals, false negatives among young unmarried
// low-hours workers.
func Adult(seed int64) *Generated {
	return adultSized(seed, AdultRows)
}

func adultSized(seed int64, n int) *Generated {
	rng := rand.New(rand.NewSource(seed))
	var (
		ageVals   = []string{"<=28", "29-37", "38-48", ">48"}
		workVals  = []string{"Private", "Self-emp", "Gov", "Other"}
		eduVals   = []string{"HS", "Some-college", "Bachelors", "Masters", "Doctorate", "Other"}
		statVals  = []string{"Married", "Unmarried", "Divorced", "Widowed"}
		occupVals = []string{"Prof", "Exec", "Sales", "Craft", "Service", "Other"}
		relVals   = []string{"Husband", "Wife", "Own-child", "Not-in-family", "Other"}
		raceVals  = []string{"White", "Black", "Asian", "Other"}
		sexVals   = []string{"Male", "Female"}
		gainVals  = []string{"0", ">0"}
		lossVals  = []string{"0", ">0"}
		hourVals  = []string{"<=40", ">40"}
	)
	cols := make([][]string, 11)
	for c := range cols {
		cols[c] = make([]string, n)
	}
	truthScore := make([]float64, n)
	predScore := make([]float64, n)

	for i := 0; i < n; i++ {
		a := categorical(rng, []float64{0.28, 0.26, 0.26, 0.20})
		s := categorical(rng, []float64{0.68, 0.32})

		// Marital status: older people are more often married; Own-child
		// relationships concentrate among the young and unmarried.
		statW := []float64{0.47, 0.33, 0.14, 0.06}
		if a == 0 {
			statW = []float64{0.22, 0.64, 0.11, 0.03}
		} else if a == 3 {
			statW = []float64{0.58, 0.14, 0.18, 0.10}
		}
		st := categorical(rng, statW)

		var rel int
		if st == 0 { // married
			if s == 0 {
				rel = categorical(rng, []float64{0.84, 0.02, 0.01, 0.05, 0.08})
			} else {
				rel = categorical(rng, []float64{0.02, 0.80, 0.02, 0.06, 0.10})
			}
		} else {
			if a == 0 {
				rel = categorical(rng, []float64{0, 0, 0.55, 0.33, 0.12})
			} else {
				rel = categorical(rng, []float64{0, 0, 0.08, 0.68, 0.24})
			}
		}

		e := categorical(rng, []float64{0.34, 0.26, 0.20, 0.08, 0.02, 0.10})
		// Occupation correlates with education.
		occW := []float64{0.12, 0.12, 0.12, 0.22, 0.20, 0.22}
		if e >= 2 && e <= 4 { // Bachelors+
			occW = []float64{0.34, 0.24, 0.12, 0.08, 0.06, 0.16}
		}
		o := categorical(rng, occW)

		w := categorical(rng, []float64{0.70, 0.10, 0.14, 0.06})
		rce := categorical(rng, []float64{0.85, 0.09, 0.03, 0.03})
		g := categorical(rng, []float64{0.92, 0.08})
		l := categorical(rng, []float64{0.95, 0.05})
		hrW := []float64{0.70, 0.30}
		if o == 1 || w == 1 { // executives and the self-employed work longer
			hrW = []float64{0.45, 0.55}
		}
		h := categorical(rng, hrW)

		cols[0][i] = ageVals[a]
		cols[1][i] = workVals[w]
		cols[2][i] = eduVals[e]
		cols[3][i] = statVals[st]
		cols[4][i] = occupVals[o]
		cols[5][i] = relVals[rel]
		cols[6][i] = raceVals[rce]
		cols[7][i] = sexVals[s]
		cols[8][i] = gainVals[g]
		cols[9][i] = lossVals[l]
		cols[10][i] = hourVals[h]

		// Ground-truth income model.
		tv := 0.0
		switch e {
		case 2:
			tv += 0.80
		case 3:
			tv += 1.30
		case 4:
			tv += 1.70
		case 1:
			tv += 0.25
		}
		switch o {
		case 0:
			tv += 0.60
		case 1:
			tv += 0.75
		case 4:
			tv -= 0.50
		}
		if st == 0 {
			tv += 1.00
		}
		switch a {
		case 0:
			tv -= 1.10
		case 2:
			tv += 0.35
		case 3:
			tv += 0.30
		}
		if g == 1 {
			tv += 1.60
		}
		if h == 1 {
			tv += 0.55
		}
		if s == 0 {
			tv += 0.30
		}
		truthScore[i] = tv

		// Classifier score: over-weights marriage and professional
		// occupation (⇒ Table 5's FP pattern), under-weights youth and
		// short hours (⇒ Table 5's FN pattern among young unmarried
		// low-hours workers, who score very low).
		uv := 0.0
		switch e {
		case 2:
			uv += 0.85
		case 3:
			uv += 1.15
		case 4:
			uv += 1.45
		case 1:
			uv += 0.20
		}
		switch o {
		case 0:
			uv += 1.15
		case 1:
			uv += 1.00
		case 4:
			uv -= 0.45
		}
		if st == 0 {
			uv += 1.60
		} else if st == 1 {
			uv -= 0.80
		}
		switch a {
		case 0:
			uv -= 1.30
		case 2:
			uv += 0.30
		case 3:
			uv += 0.25
		}
		if g == 1 {
			uv += 1.10
		}
		if h == 1 {
			uv += 0.45
		} else {
			uv -= 0.25
		}
		if rel == 2 { // Own-child
			uv -= 0.60
		}
		predScore[i] = uv
	}

	bTruth := calibrateIntercept(truthScore, 0.25)
	truth := drawBernoulli(rng, truthScore, bTruth)
	pred := predWithTargets(rng, truth, predScore, 0.08, 1-0.38)

	data := buildDataset(
		[]string{"age", "workclass", "edu", "status", "occup", "relation",
			"race", "sex", "gain", "loss", "hoursXW"},
		cols,
	)
	return &Generated{Name: "adult", Data: data, Truth: truth, Pred: pred}
}
