// Package datagen generates the synthetic stand-ins for the six datasets
// of the paper's Table 4. The original data (ProPublica COMPAS and the
// UCI adult/bank/german/heart datasets) is not available offline, so each
// generator reproduces the published cardinalities (rows, attribute
// counts, discretized domains), realistic marginals and correlations,
// and — where the paper reports them — calibrated headline statistics
// (e.g. COMPAS overall FPR 0.088 and FNR 0.698, Sec. 1). Ground truth and
// classifier outputs are drawn from logistic score models whose
// intercepts are fitted by bisection so the population rates match the
// targets in expectation. The bias structure of the score models follows
// the paper's findings, so divergence *shapes* (which patterns are on
// top, corrective items, global-divergence orderings) are preserved; see
// DESIGN.md §4.
//
// The artificial dataset of Sec. 4.4 is reproduced exactly as described:
// 50,000 instances, ten i.i.d. binary attributes, a classifier trained on
// the label a=b=c, and ground-truth flips for half the a=b=c instances.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// Generated bundles a synthetic dataset with its ground truth and
// classifier predictions, ready for divergence analysis.
type Generated struct {
	Name  string
	Data  *dataset.Dataset
	Truth []bool
	Pred  []bool
}

// Names lists the available generators in the order of Table 4.
func Names() []string {
	return []string{"adult", "bank", "COMPAS", "german", "heart", "artificial"}
}

// ByName dispatches to the generator for one of the Table 4 datasets.
func ByName(name string, seed int64) (*Generated, error) {
	switch name {
	case "adult":
		return Adult(seed), nil
	case "bank":
		return Bank(seed), nil
	case "COMPAS", "compas":
		return COMPAS(seed), nil
	case "german":
		return German(seed), nil
	case "heart":
		return Heart(seed), nil
	case "artificial":
		return Artificial(seed), nil
	default:
		return nil, fmt.Errorf("datagen: unknown dataset %q", name)
	}
}

// categorical samples an index from unnormalized weights.
func categorical(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// calibrateIntercept finds b such that mean_i sigmoid(b + scores[i]) is
// target, by bisection. Used to pin overall rates (FPR, FNR, positive
// rate) to the values the paper reports.
func calibrateIntercept(scores []float64, target float64) float64 {
	lo, hi := -25.0, 25.0
	meanAt := func(b float64) float64 {
		var s float64
		for _, sc := range scores {
			s += sigmoid(b + sc)
		}
		return s / float64(len(scores))
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if meanAt(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// drawBernoulli samples outcomes with per-instance probabilities
// sigmoid(b + score[i]).
func drawBernoulli(rng *rand.Rand, scores []float64, b float64) []bool {
	out := make([]bool, len(scores))
	for i, s := range scores {
		out[i] = rng.Float64() < sigmoid(b+s)
	}
	return out
}

// buildDataset assembles a dataset from column-major string data.
func buildDataset(names []string, cols [][]string) *dataset.Dataset {
	b := dataset.NewBuilder(names...)
	n := len(cols[0])
	rec := make([]string, len(names))
	for r := 0; r < n; r++ {
		for c := range cols {
			rec[c] = cols[c][r]
		}
		if err := b.Add(rec...); err != nil {
			// lint:ignore libprint invariant: generated records always fit the generated schema
			panic(fmt.Sprintf("datagen: internal error building dataset: %v", err))
		}
	}
	b.SortDomains()
	d, err := b.Dataset()
	if err != nil {
		// lint:ignore libprint invariant: generated records always fit the generated schema
		panic(fmt.Sprintf("datagen: internal error validating dataset: %v", err))
	}
	return d
}

// predWithTargets draws classifier outputs whose overall false positive
// rate and true positive rate match the given targets, with per-instance
// probabilities shaped by the score model: higher score ⇒ more likely to
// be predicted positive regardless of the true label. This mirrors a
// real classifier thresholding a learned score.
func predWithTargets(rng *rand.Rand, truth []bool, scores []float64, targetFPR, targetTPR float64) []bool {
	var negScores, posScores []float64
	for i, v := range truth {
		if v {
			posScores = append(posScores, scores[i])
		} else {
			negScores = append(negScores, scores[i])
		}
	}
	bNeg := calibrateIntercept(negScores, targetFPR)
	bPos := calibrateIntercept(posScores, targetTPR)
	out := make([]bool, len(truth))
	for i, v := range truth {
		b := bNeg
		if v {
			b = bPos
		}
		out[i] = rng.Float64() < sigmoid(b+scores[i])
	}
	return out
}
