package datagen

import (
	"math"
	"testing"

	"repro/internal/classifier"
)

func TestTable4Cardinalities(t *testing.T) {
	cases := []struct {
		name       string
		rows, cols int
	}{
		{"adult", AdultRows, 11},
		{"bank", BankRows, 15},
		{"COMPAS", COMPASRows, 6},
		{"german", GermanRows, 21},
		{"heart", HeartRows, 13},
		{"artificial", ArtificialRows, 10},
	}
	for _, c := range cases {
		g, err := ByName(c.name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if g.Data.NumRows() != c.rows {
			t.Errorf("%s rows = %d, want %d", c.name, g.Data.NumRows(), c.rows)
		}
		if g.Data.NumAttrs() != c.cols {
			t.Errorf("%s attrs = %d, want %d", c.name, g.Data.NumAttrs(), c.cols)
		}
		if len(g.Truth) != c.rows || len(g.Pred) != c.rows {
			t.Errorf("%s label slices sized %d/%d", c.name, len(g.Truth), len(g.Pred))
		}
		if err := g.Data.Validate(); err != nil {
			t.Errorf("%s invalid dataset: %v", c.name, err)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope", 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestNamesCoverAllGenerators(t *testing.T) {
	for _, n := range Names() {
		if _, err := ByName(n, 1); err != nil {
			t.Errorf("Names() lists %q but ByName fails: %v", n, err)
		}
	}
}

func TestCOMPASCalibration(t *testing.T) {
	g := COMPAS(7)
	fpr, fnr := classifier.ConfusionRates(g.Truth, g.Pred)
	if math.Abs(fpr-0.088) > 0.012 {
		t.Errorf("COMPAS overall FPR = %v, want ≈ 0.088", fpr)
	}
	if math.Abs(fnr-0.698) > 0.02 {
		t.Errorf("COMPAS overall FNR = %v, want ≈ 0.698", fnr)
	}
	// Recidivism base rate ≈ 0.45.
	pos := 0
	for _, v := range g.Truth {
		if v {
			pos++
		}
	}
	if rate := float64(pos) / float64(len(g.Truth)); math.Abs(rate-0.45) > 0.03 {
		t.Errorf("COMPAS recidivism rate = %v, want ≈ 0.45", rate)
	}
}

func TestCOMPASBiasStructure(t *testing.T) {
	g := COMPAS(7)
	d := g.Data
	raceIdx := d.AttrIndex("race")
	priorIdx := d.AttrIndex("prior")
	// FPR among African-American defendants with >3 priors must exceed
	// the overall FPR clearly (the paper's headline finding).
	var rows []int
	for r := range d.Rows {
		if d.Value(r, raceIdx) == "Afr-Am" && d.Value(r, priorIdx) == ">3" {
			rows = append(rows, r)
		}
	}
	if len(rows) < 100 {
		t.Fatalf("only %d rows in the target subgroup", len(rows))
	}
	subTruth := make([]bool, len(rows))
	subPred := make([]bool, len(rows))
	for i, r := range rows {
		subTruth[i] = g.Truth[r]
		subPred[i] = g.Pred[r]
	}
	subFPR, _ := classifier.ConfusionRates(subTruth, subPred)
	allFPR, _ := classifier.ConfusionRates(g.Truth, g.Pred)
	if subFPR < allFPR+0.05 {
		t.Errorf("subgroup FPR %v not clearly above overall %v", subFPR, allFPR)
	}
	// And FNR for older Caucasians must exceed the overall FNR.
	ageIdx := d.AttrIndex("age")
	rows = rows[:0]
	for r := range d.Rows {
		if d.Value(r, raceIdx) == "Cauc" && d.Value(r, ageIdx) == ">45" {
			rows = append(rows, r)
		}
	}
	subTruth = subTruth[:0]
	subPred = subPred[:0]
	for _, r := range rows {
		subTruth = append(subTruth, g.Truth[r])
		subPred = append(subPred, g.Pred[r])
	}
	_, subFNR := classifier.ConfusionRates(subTruth, subPred)
	_, allFNR := classifier.ConfusionRates(g.Truth, g.Pred)
	if subFNR < allFNR+0.03 {
		t.Errorf("older-Caucasian FNR %v not clearly above overall %v", subFNR, allFNR)
	}
}

func TestArtificialConstruction(t *testing.T) {
	g := artificialSized(3, 8000)
	d := g.Data
	// Predictions equal the rule u = (a=b=c).
	ai, bi, ci := d.AttrIndex("a"), d.AttrIndex("b"), d.AttrIndex("c")
	flipped, inGroup := 0, 0
	for r := range d.Rows {
		rule := d.Value(r, ai) == d.Value(r, bi) && d.Value(r, bi) == d.Value(r, ci)
		if g.Pred[r] != rule {
			t.Fatalf("row %d: prediction %v differs from rule %v", r, g.Pred[r], rule)
		}
		if rule {
			inGroup++
			if !g.Truth[r] {
				flipped++
			}
		} else if g.Truth[r] {
			t.Fatalf("row %d: truth flipped outside a=b=c", r)
		}
	}
	// Half the a=b=c instances are flipped.
	if math.Abs(float64(flipped)/float64(inGroup)-0.5) > 0.01 {
		t.Errorf("flipped fraction = %v, want 0.5", float64(flipped)/float64(inGroup))
	}
	// a=b=c covers ≈ 1/4 of the data.
	if frac := float64(inGroup) / float64(d.NumRows()); math.Abs(frac-0.25) > 0.03 {
		t.Errorf("a=b=c fraction = %v, want ≈ 0.25", frac)
	}
}

func TestAdultCalibration(t *testing.T) {
	g := adultSized(5, 12000)
	fpr, fnr := classifier.ConfusionRates(g.Truth, g.Pred)
	if math.Abs(fpr-0.08) > 0.015 {
		t.Errorf("adult FPR = %v, want ≈ 0.08", fpr)
	}
	if math.Abs(fnr-0.38) > 0.03 {
		t.Errorf("adult FNR = %v, want ≈ 0.38", fnr)
	}
	// FP concentration among married professionals (Table 5 shape).
	d := g.Data
	statIdx, occIdx := d.AttrIndex("status"), d.AttrIndex("occup")
	var st, sp []bool
	for r := range d.Rows {
		if d.Value(r, statIdx) == "Married" && d.Value(r, occIdx) == "Prof" {
			st = append(st, g.Truth[r])
			sp = append(sp, g.Pred[r])
		}
	}
	subFPR, _ := classifier.ConfusionRates(st, sp)
	if subFPR < fpr+0.1 {
		t.Errorf("married-professional FPR %v not clearly above overall %v", subFPR, fpr)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := COMPAS(11)
	b := COMPAS(11)
	for r := range a.Data.Rows {
		for c := range a.Data.Attrs {
			if a.Data.Value(r, c) != b.Data.Value(r, c) {
				t.Fatalf("row %d col %d differs between same-seed runs", r, c)
			}
		}
		if a.Truth[r] != b.Truth[r] || a.Pred[r] != b.Pred[r] {
			t.Fatalf("labels differ at row %d between same-seed runs", r)
		}
	}
	c := COMPAS(12)
	same := true
	for r := range a.Data.Rows {
		if a.Truth[r] != c.Truth[r] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical truth labels")
	}
}

func TestCalibrateIntercept(t *testing.T) {
	scores := make([]float64, 1000)
	for i := range scores {
		scores[i] = float64(i%7) - 3
	}
	for _, target := range []float64{0.1, 0.45, 0.9} {
		b := calibrateIntercept(scores, target)
		var mean float64
		for _, s := range scores {
			mean += sigmoid(b + s)
		}
		mean /= float64(len(scores))
		if math.Abs(mean-target) > 1e-6 {
			t.Errorf("target %v: calibrated mean %v", target, mean)
		}
	}
}

func TestRampAndUniform(t *testing.T) {
	w := ramp(3, 0.5)
	if w[0] != -0.5 || w[1] != 0 || w[2] != 0.5 {
		t.Errorf("ramp = %v", w)
	}
	if got := ramp(1, 2); got[0] != 0 {
		t.Errorf("ramp(1) = %v", got)
	}
	u := uniform(4)
	for _, x := range u {
		if x != 1 {
			t.Errorf("uniform = %v", u)
		}
	}
}

func TestCategoricalRespectsZeroWeights(t *testing.T) {
	g := Bank(1)
	// Spot check domains are fully used where weights are positive.
	for i := range g.Data.Attrs {
		if got := g.Data.Attrs[i].Cardinality(); got < 2 {
			t.Errorf("bank attr %s has degenerate domain (%d values)",
				g.Data.Attrs[i].Name, got)
		}
	}
}

func TestCOMPASWithPriorsConsistency(t *testing.T) {
	g, raw := COMPASWithPriors(9)
	if len(raw) != g.Data.NumRows() {
		t.Fatalf("raw priors length %d vs %d rows", len(raw), g.Data.NumRows())
	}
	idx := g.Data.AttrIndex("prior")
	over7 := 0
	for r, count := range raw {
		cat := g.Data.Value(r, idx)
		var want string
		switch {
		case count == 0:
			want = "0"
		case count <= 3:
			want = "[1,3]"
		default:
			want = ">3"
		}
		if cat != want {
			t.Fatalf("row %d: count %v categorized as %q, want %q", r, count, cat, want)
		}
		if count < 0 || count > 20 {
			t.Fatalf("row %d: count %v out of range", r, count)
		}
		if count > 7 {
			over7++
		}
	}
	// The >7 tail must be frequent enough for Figure 1's s=0.05 analysis.
	if frac := float64(over7) / float64(len(raw)); frac < 0.05 {
		t.Errorf("P(prior > 7) = %v, want >= 0.05 for Figure 1", frac)
	}
}
