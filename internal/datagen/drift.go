package datagen

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
)

// DriftConfig shapes a Drift stream: a synthetic sequence of classifier
// decision events whose false-positive rate shifts inside one planted
// subgroup at a chosen event index — the deterministic input for
// end-to-end change-detection tests and demos of the streaming monitor.
type DriftConfig struct {
	// Events is the stream length (required, >= 1).
	Events int
	// Attrs and Card shape the schema: Attrs categorical attributes named
	// "attr0".."attrN-1", each with Card uniform values "aI_v0".."aI_vC-1"
	// (defaults 3 and 3).
	Attrs int
	Card  int
	// StartMs and StepMs lay the events out in event time: event i gets
	// timestamp StartMs + i*StepMs (StepMs defaults to 10).
	StartMs int64
	StepMs  int64
	// PosRate is P(truth = positive) everywhere (default 0.5).
	PosRate float64
	// BaseFPR and BaseTPR are the classifier's rates outside the shift
	// (defaults 0.1 and 0.8).
	BaseFPR float64
	BaseTPR float64
	// Subgroup maps attribute name to value name for the planted
	// subgroup; an event belongs when every listed attribute matches
	// (default {"attr0": "a0_v0"}).
	Subgroup map[string]string
	// ShiftAt is the event index where the subgroup's FPR jumps from
	// BaseFPR to ShiftFPR (default 0.6). A ShiftAt at or past Events
	// yields a no-drift control stream with identical schema and
	// covariates.
	ShiftAt  int
	ShiftFPR float64
}

// DriftEvent is one decision event: an event-time timestamp, one value
// per attribute (stream order), and the (truth, pred) outcome pair.
type DriftEvent struct {
	T     int64
	Vals  []string
	Truth bool
	Pred  bool
}

// DriftStream is a generated event stream plus its schema.
type DriftStream struct {
	Name       string
	AttrNames  []string
	AttrValues [][]string // domain per attribute, generation order
	Events     []DriftEvent
}

// Drift generates a seeded drifting decision stream. The same seed and
// config always produce the same events, timestamps included.
func Drift(seed int64, cfg DriftConfig) (*DriftStream, error) {
	if cfg.Events < 1 {
		return nil, fmt.Errorf("datagen: drift needs events >= 1, got %d", cfg.Events)
	}
	if cfg.Attrs == 0 {
		cfg.Attrs = 3
	}
	if cfg.Card == 0 {
		cfg.Card = 3
	}
	if cfg.Attrs < 1 || cfg.Card < 2 {
		return nil, fmt.Errorf("datagen: bad drift shape (attrs %d, card %d)", cfg.Attrs, cfg.Card)
	}
	if cfg.StepMs == 0 {
		cfg.StepMs = 10
	}
	if cfg.StepMs < 0 || cfg.StartMs < 0 {
		return nil, fmt.Errorf("datagen: drift timestamps must be non-negative and increasing")
	}
	// lint:ignore floatcmp exact zero means "unset, take the default"
	if cfg.PosRate == 0 {
		cfg.PosRate = 0.5
	}
	// lint:ignore floatcmp exact zero means "unset, take the default"
	if cfg.BaseFPR == 0 {
		cfg.BaseFPR = 0.1
	}
	// lint:ignore floatcmp exact zero means "unset, take the default"
	if cfg.BaseTPR == 0 {
		cfg.BaseTPR = 0.8
	}
	// lint:ignore floatcmp exact zero means "unset, take the default"
	if cfg.ShiftFPR == 0 {
		cfg.ShiftFPR = 0.6
	}
	for _, p := range []float64{cfg.PosRate, cfg.BaseFPR, cfg.BaseTPR, cfg.ShiftFPR} {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("datagen: drift probability %v out of [0,1]", p)
		}
	}
	if cfg.Subgroup == nil {
		cfg.Subgroup = map[string]string{"attr0": "a0_v0"}
	}

	names := make([]string, cfg.Attrs)
	values := make([][]string, cfg.Attrs)
	for a := 0; a < cfg.Attrs; a++ {
		names[a] = "attr" + strconv.Itoa(a)
		values[a] = make([]string, cfg.Card)
		for v := 0; v < cfg.Card; v++ {
			values[a][v] = fmt.Sprintf("a%d_v%d", a, v)
		}
	}

	// Resolve the subgroup to (attribute index, value index) pairs.
	type member struct{ attr, val int }
	var members []member
	for _, name := range sortedKeys(cfg.Subgroup) {
		a := -1
		for i, n := range names {
			if n == name {
				a = i
				break
			}
		}
		if a < 0 {
			return nil, fmt.Errorf("datagen: drift subgroup names unknown attribute %q", name)
		}
		want := cfg.Subgroup[name]
		v := -1
		for i, val := range values[a] {
			if val == want {
				v = i
				break
			}
		}
		if v < 0 {
			return nil, fmt.Errorf("datagen: drift subgroup value %q not in attribute %q", want, name)
		}
		members = append(members, member{a, v})
	}

	rng := rand.New(rand.NewSource(seed))
	events := make([]DriftEvent, cfg.Events)
	for i := range events {
		vals := make([]string, cfg.Attrs)
		codes := make([]int, cfg.Attrs)
		for a := 0; a < cfg.Attrs; a++ {
			codes[a] = rng.Intn(cfg.Card)
			vals[a] = values[a][codes[a]]
		}
		in := true
		for _, m := range members {
			if codes[m.attr] != m.val {
				in = false
				break
			}
		}
		truth := rng.Float64() < cfg.PosRate
		var pred bool
		if truth {
			pred = rng.Float64() < cfg.BaseTPR
		} else {
			fpr := cfg.BaseFPR
			if in && i >= cfg.ShiftAt {
				fpr = cfg.ShiftFPR
			}
			pred = rng.Float64() < fpr
		}
		events[i] = DriftEvent{
			T:     cfg.StartMs + int64(i)*cfg.StepMs,
			Vals:  vals,
			Truth: truth,
			Pred:  pred,
		}
	}
	return &DriftStream{
		Name:       fmt.Sprintf("drift-%d", seed),
		AttrNames:  names,
		AttrValues: values,
		Events:     events,
	}, nil
}

// sortedKeys returns the map's keys in sorted order, so subgroup
// resolution (and its error messages) are deterministic.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// JSONLine renders event i in the monitor's wire format, one JSON object
// with t, attrs, truth and pred.
func (s *DriftStream) JSONLine(i int) []byte {
	return s.Events[i].appendJSON(nil, s.AttrNames)
}

// Body renders the half-open event range [from, to) as a JSON-lines
// ingest body.
func (s *DriftStream) Body(from, to int) []byte {
	var buf []byte
	for i := from; i < to; i++ {
		buf = s.Events[i].appendJSON(buf, s.AttrNames)
		buf = append(buf, '\n')
	}
	return buf
}

// appendJSON appends the event's wire JSON to buf. Attribute names and
// values are generator-produced identifiers, so they embed without
// escaping.
func (e *DriftEvent) appendJSON(buf []byte, names []string) []byte {
	buf = append(buf, `{"t":`...)
	buf = strconv.AppendInt(buf, e.T, 10)
	buf = append(buf, `,"attrs":{`...)
	for a, name := range names {
		if a > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, '"')
		buf = append(buf, name...)
		buf = append(buf, `":"`...)
		buf = append(buf, e.Vals[a]...)
		buf = append(buf, '"')
	}
	buf = append(buf, `},"truth":`...)
	buf = strconv.AppendBool(buf, e.Truth)
	buf = append(buf, `,"pred":`...)
	buf = strconv.AppendBool(buf, e.Pred)
	buf = append(buf, '}')
	return buf
}
