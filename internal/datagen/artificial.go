package datagen

import (
	"math/rand"

	"repro/internal/classifier"
	"repro/internal/dataset"
)

// ArtificialRows matches the |D| of Table 4 and Sec. 4.4.
const ArtificialRows = 50000

// Artificial reproduces the paper's artificial dataset (Sec. 4.4)
// exactly as described: 50,000 instances over ten binary attributes
// a..j drawn i.i.d. uniform; a decision tree is trained on the class
// label T iff a=b=c; then, to simulate classification errors, the ground
// truth of half the instances with a=b=c is flipped, without retraining.
// The classifier's predictions therefore concentrate false positives in
// the itemsets (a=0,b=0,c=0) and (a=1,b=1,c=1), which only global item
// divergence can attribute to a, b and c (Figure 4).
func Artificial(seed int64) *Generated {
	return artificialSized(seed, ArtificialRows)
}

// ArtificialSized is Artificial with a custom row count — smaller
// instances keep statistical-validity tests (planted-effect recovery
// under permutation testing) fast while preserving the construction.
func ArtificialSized(seed int64, n int) *Generated {
	return artificialSized(seed, n)
}

// artificialSized supports smaller instances for fast tests.
func artificialSized(seed int64, n int) *Generated {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	cols := make([][]string, len(names))
	for c := range cols {
		cols[c] = make([]string, n)
	}
	rows := make([][]int, n)
	for r := 0; r < n; r++ {
		rows[r] = make([]int, len(names))
		for c := range names {
			v := rng.Intn(2)
			rows[r][c] = v
			if v == 0 {
				cols[c][r] = "0"
			} else {
				cols[c][r] = "1"
			}
		}
	}
	data := buildDataset(names, cols)

	// Clean training label: T iff a = b = c.
	clean := make([]bool, n)
	for r := 0; r < n; r++ {
		clean[r] = rows[r][0] == rows[r][1] && rows[r][1] == rows[r][2]
	}
	pred := trainRulePredictor(data, clean)

	// Flip the ground truth of (approximately deterministic) half of the
	// a=b=c instances to simulate classification errors, as in Sec. 4.4.
	// Alternate flips within each of the two a=b=c cells so each cell has
	// exactly half its labels flipped (up to one instance), keeping the
	// two planted itemsets symmetric.
	truth := make([]bool, n)
	copy(truth, clean)
	var flip [2]bool
	for r := 0; r < n; r++ {
		if clean[r] {
			cell := rows[r][0]
			flip[cell] = !flip[cell]
			if flip[cell] {
				truth[r] = !truth[r]
			}
		}
	}
	return &Generated{Name: "artificial", Data: data, Truth: truth, Pred: pred}
}

// trainRulePredictor trains a decision tree on the clean labels and
// returns its predictions. Labels are a deterministic function of the
// attributes, so the tree reaches pure leaves and reproduces the rule
// exactly on the training instances; if it somehow did not, the exact
// rule is substituted to keep the construction faithful to the paper
// (where the trained classifier has no errors before the label flips).
func trainRulePredictor(data *dataset.Dataset, clean []bool) []bool {
	tree, err := classifier.TrainTree(data, clean, classifier.TreeConfig{})
	if err != nil {
		// lint:ignore libprint invariant: the synthetic dataset is constructed to be trainable
		panic("datagen: training artificial-rule tree: " + err.Error())
	}
	pred := classifier.PredictAll(tree, data)
	for i := range pred {
		if pred[i] != clean[i] {
			// Greedy induction failed to recover the deterministic rule;
			// fall back to the rule itself.
			out := make([]bool, len(clean))
			copy(out, clean)
			return out
		}
	}
	return pred
}
