package datagen

import (
	"fmt"
	"math/rand"
)

// RandomConfig shapes a Random draw. The zero value is not useful; every
// field must be positive.
type RandomConfig struct {
	Rows    int // number of instances
	Attrs   int // number of categorical attributes
	MaxCard int // per-attribute domain size is drawn from [2, MaxCard]
}

// Random generates a fully randomized labelled dataset for property and
// differential testing: Attrs independent categorical attributes with
// randomized cardinalities and non-uniform marginals, plus ground truth
// and predictions from randomized score models. Unlike the Table 4
// generators it reproduces no published statistics — its job is to cover
// the input space (skewed domains, rare values, unbalanced labels) so
// that miner-equivalence properties are exercised far from the shapes a
// benchmark dataset would give. The same seed always produces the same
// dataset.
func Random(seed int64, cfg RandomConfig) (*Generated, error) {
	if cfg.Rows < 1 || cfg.Attrs < 1 || cfg.MaxCard < 2 {
		return nil, fmt.Errorf("datagen: bad random config %+v (want rows, attrs >= 1 and maxCard >= 2)", cfg)
	}
	rng := rand.New(rand.NewSource(seed))
	specs := make([]attrSpec, cfg.Attrs)
	for a := range specs {
		card := 2 + rng.Intn(cfg.MaxCard-1)
		values := make([]string, card)
		weights := make([]float64, card)
		for v := range values {
			values[v] = fmt.Sprintf("a%d_v%d", a, v)
			// Exponentiated weights give occasionally very skewed
			// marginals, so some values are rare at any row count.
			weights[v] = rng.ExpFloat64() + 0.05
		}
		specs[a] = attrSpec{
			name:    fmt.Sprintf("attr%d", a),
			values:  values,
			weights: weights,
			truthW:  ramp(card, rng.Float64()*2),
			predW:   ramp(card, rng.Float64()*2),
		}
	}
	posRate := 0.1 + 0.8*rng.Float64()
	fpr := 0.05 + 0.4*rng.Float64()
	tpr := 0.5 + 0.45*rng.Float64()
	name := fmt.Sprintf("random-%d", seed)
	// Derive the sampling seed from the config too, so different shapes
	// under the same seed do not share row prefixes.
	sub := seed ^ int64(cfg.Rows)<<32 ^ int64(cfg.Attrs)<<16 ^ int64(cfg.MaxCard)
	return generateFromSpec(name, sub, cfg.Rows, specs, posRate, fpr, tpr), nil
}
