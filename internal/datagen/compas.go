package datagen

import (
	"math"
	"math/rand"
)

// COMPASRows matches the |D| of Table 4.
const COMPASRows = 6172

// COMPAS generates the synthetic stand-in for the ProPublica COMPAS
// dataset (Sec. 3.6): 6,172 defendants over six discretized attributes,
// ground-truth recidivism, and a COMPAS-like risk score whose overall
// FPR is calibrated to 0.088 and FNR to 0.698 (Sec. 1), with the bias
// structure the paper reports: the score over-predicts recidivism for
// young-to-middle-aged African-American men with many priors, and
// under-predicts it for older Caucasians with no priors, short jail
// stays, and misdemeanor charges.
func COMPAS(seed int64) *Generated {
	g, _ := COMPASWithPriors(seed)
	return g
}

// COMPASWithPriors additionally returns the raw (pre-discretization)
// number of prior offenses per defendant, which Figure 1 re-discretizes
// at two granularities. The dataset's "prior" attribute is the standard
// 3-interval discretization {0, [1,3], >3} of these counts, and the
// score models depend monotonically on the raw count, so finer
// discretizations expose strictly more divergence (Property 3.1).
func COMPASWithPriors(seed int64) (*Generated, []float64) {
	rng := rand.New(rand.NewSource(seed))
	n := COMPASRows

	var (
		ageVals    = []string{"<25", "25-45", ">45"}
		chargeVals = []string{"F", "M"}
		raceVals   = []string{"Afr-Am", "Cauc", "Hisp", "Other"}
		sexVals    = []string{"Male", "Female"}
		stayVals   = []string{"<week", "1w-3M", ">3M"}
	)
	age := make([]string, n)
	charge := make([]string, n)
	race := make([]string, n)
	sex := make([]string, n)
	prior := make([]string, n)
	stay := make([]string, n)
	rawPriors := make([]float64, n)
	truthScore := make([]float64, n)
	predScore := make([]float64, n)

	for i := 0; i < n; i++ {
		r := categorical(rng, []float64{0.51, 0.34, 0.08, 0.07})
		race[i] = raceVals[r]
		s := categorical(rng, []float64{0.81, 0.19})
		sex[i] = sexVals[s]

		// Age skews slightly younger for African-American defendants, as
		// in the source data.
		ageW := []float64{0.22, 0.57, 0.21}
		if r == 0 {
			ageW = []float64{0.27, 0.58, 0.15}
		}
		a := categorical(rng, ageW)
		age[i] = ageVals[a]

		// Prior-offense counts: a point mass at zero plus a geometric
		// tail, with the category weights shaped by age, race and sex as
		// in the source data (priors accumulate with age; the dataset's
		// African-American and male defendants have more recorded priors).
		priorW := []float64{0.49, 0.30, 0.21}
		if a == 0 {
			priorW = []float64{0.66, 0.26, 0.08}
		} else if a == 2 {
			priorW = []float64{0.40, 0.30, 0.30}
		}
		if r == 0 {
			priorW[2] *= 1.7
			priorW[0] *= 0.8
		}
		if s == 0 {
			priorW[2] *= 1.25
		}
		p := categorical(rng, priorW)
		count := 0
		switch p {
		case 1: // one to three priors, uniformly
			count = 1 + rng.Intn(3)
		case 2: // four or more: geometric tail capped at 20
			count = 4
			for count < 20 && rng.Float64() < 0.75 {
				count++
			}
		}
		rawPriors[i] = float64(count)
		switch {
		case count == 0:
			prior[i] = "0"
		case count <= 3:
			prior[i] = "[1,3]"
		default:
			prior[i] = ">3"
		}

		// Felony charges are more common with long criminal histories;
		// older defendants skew toward misdemeanors, as in the source
		// data.
		chargeW := []float64{0.64, 0.36}
		if p == 2 {
			chargeW = []float64{0.74, 0.26}
		}
		if a == 2 {
			chargeW[1] *= 1.45
		}
		c := categorical(rng, chargeW)
		charge[i] = chargeVals[c]

		// Jail stay correlates with charge severity and priors.
		stayW := []float64{0.58, 0.27, 0.15}
		if c == 0 && p == 2 {
			stayW = []float64{0.38, 0.33, 0.29}
		} else if c == 1 && p == 0 {
			stayW = []float64{0.74, 0.19, 0.07}
		}
		st := categorical(rng, stayW)
		stay[i] = stayVals[st]

		// Ground-truth recidivism model: criminal history and youth are
		// the dominant factors; race enters only weakly and directly
		// (standing in for unmodeled socioeconomic covariates), mostly
		// acting through its correlation with the other attributes.
		tv := 0.0
		if count > 0 {
			tv += math.Min(0.18*float64(count), 1.5)
		}
		switch a {
		case 0:
			tv += 0.60
		case 2:
			tv -= 0.60
		}
		if c == 0 {
			tv += 0.10
		}
		if s == 0 {
			tv += 0.20
		}
		if r == 0 {
			tv += 0.15
		}
		if st == 2 {
			tv += 0.30
		}
		truthScore[i] = tv

		// COMPAS-like score: similar signal, but with an explicit racial
		// skew and a stronger, monotone reliance on the prior count — the
		// bias structure the paper's divergence analysis uncovers.
		uv := 0.0
		if count == 0 {
			uv -= 0.90
		} else {
			uv += math.Min(0.26*float64(count-2), 2.2)
		}
		switch a {
		case 0:
			uv += 0.55
		case 1:
			uv += 0.25
		case 2:
			uv -= 0.75
		}
		switch r {
		case 0:
			uv += 0.55
		case 1:
			uv -= 0.35
		}
		if s == 0 {
			uv += 0.15
		}
		if c == 0 {
			uv += 0.20
		}
		switch st {
		case 0:
			uv -= 0.30
		case 2:
			uv += 0.40
		}
		predScore[i] = uv
	}

	// Calibrate and draw ground truth (overall recidivism ≈ 0.45) and the
	// score (overall FPR 0.088, TPR = 1 − 0.698 = 0.302).
	bTruth := calibrateIntercept(truthScore, 0.45)
	truth := drawBernoulli(rng, truthScore, bTruth)
	pred := predWithTargets(rng, truth, predScore, 0.088, 1-0.698)

	data := buildDataset(
		[]string{"age", "charge", "race", "sex", "prior", "stay"},
		[][]string{age, charge, race, sex, prior, stay},
	)
	return &Generated{Name: "COMPAS", Data: data, Truth: truth, Pred: pred}, rawPriors
}
