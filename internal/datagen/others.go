package datagen

// Row counts matching Table 4.
const (
	BankRows   = 11162
	GermanRows = 1000
	HeartRows  = 296
)

// Bank generates the synthetic stand-in for the UCI Bank Marketing
// dataset: 11,162 rows over 15 attributes (6 originally continuous,
// discretized; 9 categorical). The positive class — the client
// subscribed a term deposit — is roughly balanced in this version of the
// dataset, as in the paper's source.
func Bank(seed int64) *Generated {
	specs := []attrSpec{
		{name: "age", values: []string{"<30", "30-40", "41-50", ">50"},
			weights: []float64{0.20, 0.38, 0.24, 0.18}, truthW: ramp(4, 0.2), predW: ramp(4, 0.2)},
		{name: "job", values: []string{"admin", "blue-collar", "management", "technician", "services", "other"},
			weights: []float64{0.22, 0.20, 0.18, 0.16, 0.08, 0.16},
			truthW:  []float64{0, -0.3, 0.3, 0.1, -0.2, 0}, predW: []float64{0, -0.3, 0.35, 0.1, -0.2, 0}},
		{name: "marital", values: []string{"married", "single", "divorced"},
			weights: []float64{0.57, 0.32, 0.11}, truthW: []float64{-0.1, 0.2, 0}, predW: []float64{-0.1, 0.2, 0}},
		{name: "education", values: []string{"primary", "secondary", "tertiary", "unknown"},
			weights: []float64{0.13, 0.49, 0.33, 0.05}, truthW: ramp(4, 0.25), predW: ramp(4, 0.25)},
		{name: "default", values: []string{"no", "yes"},
			weights: []float64{0.98, 0.02}, truthW: []float64{0, -0.5}, predW: []float64{0, -0.5}},
		{name: "balance", values: []string{"low", "mid", "high"},
			weights: []float64{0.33, 0.34, 0.33}, truthW: ramp(3, 0.35), predW: ramp(3, 0.35)},
		{name: "housing", values: []string{"no", "yes"},
			weights: []float64{0.52, 0.48}, truthW: []float64{0.35, -0.35}, predW: []float64{0.4, -0.4}},
		{name: "loan", values: []string{"no", "yes"},
			weights: []float64{0.87, 0.13}, truthW: []float64{0.1, -0.4}, predW: []float64{0.1, -0.4}},
		{name: "contact", values: []string{"cellular", "telephone", "unknown"},
			weights: []float64{0.72, 0.07, 0.21}, truthW: []float64{0.2, 0, -0.5}, predW: []float64{0.2, 0, -0.5}},
		{name: "day", values: []string{"early", "mid", "late"},
			weights: uniform(3), truthW: nil, predW: nil},
		{name: "month", values: []string{"spring", "summer", "autumn", "winter"},
			weights: []float64{0.3, 0.35, 0.2, 0.15}, truthW: []float64{0.15, -0.1, 0.2, 0}, predW: []float64{0.15, -0.1, 0.2, 0}},
		{name: "duration", values: []string{"short", "medium", "long"},
			weights: []float64{0.4, 0.35, 0.25}, truthW: ramp(3, 1.3), predW: ramp(3, 1.5)},
		{name: "campaign", values: []string{"1", "2-3", ">3"},
			weights: []float64{0.45, 0.35, 0.20}, truthW: ramp(3, -0.4), predW: ramp(3, -0.4)},
		{name: "pdays", values: []string{"never", "recent", "old"},
			weights: []float64{0.75, 0.15, 0.10}, truthW: []float64{-0.2, 0.5, 0.1}, predW: []float64{-0.2, 0.5, 0.1}},
		{name: "poutcome", values: []string{"unknown", "failure", "success"},
			weights: []float64{0.75, 0.15, 0.10}, truthW: []float64{0, -0.2, 1.2}, predW: []float64{0, -0.2, 1.4}},
	}
	return generateFromSpec("bank", seed, BankRows, specs, 0.47, 0.13, 0.80)
}

// German generates the synthetic stand-in for the UCI German Credit
// dataset: 1,000 rows over 21 attributes (including the paper's derived
// "sex" and "civil_status"). The positive class is bad credit risk
// (30% of instances, as in the source data).
func German(seed int64) *Generated {
	specs := []attrSpec{
		{name: "checking", values: []string{"<0", "0-200", ">200", "none"},
			weights: []float64{0.27, 0.27, 0.06, 0.40}, truthW: []float64{0.8, 0.4, -0.2, -0.8}, predW: []float64{0.9, 0.4, -0.2, -0.9}},
		{name: "duration", values: []string{"<12m", "12-24m", ">24m"},
			weights: []float64{0.35, 0.40, 0.25}, truthW: ramp(3, 0.5), predW: ramp(3, 0.55)},
		{name: "history", values: []string{"none", "paid", "delay", "critical", "other"},
			weights: []float64{0.05, 0.53, 0.09, 0.29, 0.04},
			truthW:  []float64{0.6, 0, 0.4, -0.5, 0.1}, predW: []float64{0.6, 0, 0.4, -0.55, 0.1}},
		{name: "purpose", values: []string{"car", "furniture", "radio-tv", "business", "other"},
			weights: []float64{0.33, 0.18, 0.28, 0.10, 0.11}, truthW: []float64{0.1, 0, -0.1, 0.2, 0.1}, predW: []float64{0.1, 0, -0.1, 0.2, 0.1}},
		{name: "amount", values: []string{"low", "mid", "high"},
			weights: []float64{0.33, 0.34, 0.33}, truthW: ramp(3, 0.4), predW: ramp(3, 0.45)},
		{name: "savings", values: []string{"<100", "100-500", "500-1000", ">1000", "none"},
			weights: []float64{0.60, 0.10, 0.06, 0.05, 0.19},
			truthW:  []float64{0.4, 0.1, -0.1, -0.5, -0.2}, predW: []float64{0.45, 0.1, -0.1, -0.5, -0.2}},
		{name: "employment", values: []string{"unemployed", "<1y", "1-4y", "4-7y", ">7y"},
			weights: []float64{0.06, 0.17, 0.34, 0.17, 0.26}, truthW: ramp(5, -0.4), predW: ramp(5, -0.4)},
		{name: "installment", values: []string{"1", "2", "3", "4"},
			weights: []float64{0.14, 0.23, 0.16, 0.47}, truthW: ramp(4, 0.2), predW: ramp(4, 0.2)},
		{name: "sex", values: []string{"male", "female"},
			weights: []float64{0.69, 0.31}, truthW: []float64{-0.05, 0.05}, predW: []float64{-0.1, 0.1}},
		{name: "civil_status", values: []string{"single", "married", "div/sep"},
			weights: []float64{0.55, 0.33, 0.12}, truthW: []float64{0, -0.1, 0.2}, predW: []float64{0, -0.1, 0.2}},
		{name: "debtors", values: []string{"none", "co-applicant", "guarantor"},
			weights: []float64{0.91, 0.04, 0.05}, truthW: []float64{0, 0.3, -0.4}, predW: []float64{0, 0.3, -0.4}},
		{name: "residence", values: []string{"1", "2", "3", "4"},
			weights: []float64{0.13, 0.31, 0.15, 0.41}, truthW: nil, predW: nil},
		{name: "property", values: []string{"real-estate", "savings", "car", "none"},
			weights: []float64{0.28, 0.23, 0.33, 0.16}, truthW: []float64{-0.3, -0.1, 0.1, 0.5}, predW: []float64{-0.3, -0.1, 0.1, 0.55}},
		{name: "age", values: []string{"<30", "30-45", ">45"},
			weights: []float64{0.37, 0.41, 0.22}, truthW: []float64{0.3, -0.1, -0.2}, predW: []float64{0.35, -0.1, -0.2}},
		{name: "other_installment", values: []string{"bank", "stores", "none"},
			weights: []float64{0.14, 0.05, 0.81}, truthW: []float64{0.3, 0.3, -0.1}, predW: []float64{0.3, 0.3, -0.1}},
		{name: "housing", values: []string{"rent", "own", "free"},
			weights: []float64{0.18, 0.71, 0.11}, truthW: []float64{0.2, -0.2, 0.3}, predW: []float64{0.2, -0.2, 0.3}},
		{name: "existing_credits", values: []string{"1", "2", "3", "4+"},
			weights: []float64{0.63, 0.33, 0.03, 0.01}, truthW: ramp(4, 0.15), predW: ramp(4, 0.15)},
		{name: "job", values: []string{"unskilled", "skilled", "management", "unemployed"},
			weights: []float64{0.20, 0.63, 0.15, 0.02}, truthW: []float64{0.1, 0, -0.1, 0.3}, predW: []float64{0.1, 0, -0.1, 0.3}},
		{name: "liable", values: []string{"1", "2"},
			weights: []float64{0.85, 0.15}, truthW: []float64{0, 0.1}, predW: []float64{0, 0.1}},
		{name: "telephone", values: []string{"none", "yes"},
			weights: []float64{0.60, 0.40}, truthW: []float64{0.05, -0.05}, predW: []float64{0.05, -0.05}},
		{name: "foreign", values: []string{"yes", "no"},
			weights: []float64{0.96, 0.04}, truthW: []float64{0.05, -0.5}, predW: []float64{0.05, -0.5}},
	}
	return generateFromSpec("german", seed, GermanRows, specs, 0.30, 0.15, 0.65)
}

// Heart generates the synthetic stand-in for the UCI heart-disease
// dataset: 296 rows over 13 attributes (5 originally continuous,
// discretized). The positive class is presence of heart disease (≈ 46%).
func Heart(seed int64) *Generated {
	specs := []attrSpec{
		{name: "age", values: []string{"<45", "45-60", ">60"},
			weights: []float64{0.25, 0.50, 0.25}, truthW: ramp(3, 0.5), predW: ramp(3, 0.5)},
		{name: "sex", values: []string{"female", "male"},
			weights: []float64{0.32, 0.68}, truthW: []float64{-0.6, 0.3}, predW: []float64{-0.6, 0.3}},
		{name: "cp", values: []string{"typical", "atypical", "non-anginal", "asymptomatic"},
			weights: []float64{0.08, 0.17, 0.28, 0.47},
			truthW:  []float64{-0.6, -0.8, -0.4, 1.0}, predW: []float64{-0.6, -0.8, -0.4, 1.1}},
		{name: "trestbps", values: []string{"<120", "120-140", ">140"},
			weights: []float64{0.25, 0.45, 0.30}, truthW: ramp(3, 0.3), predW: ramp(3, 0.3)},
		{name: "chol", values: []string{"<200", "200-280", ">280"},
			weights: []float64{0.18, 0.55, 0.27}, truthW: ramp(3, 0.25), predW: ramp(3, 0.25)},
		{name: "fbs", values: []string{"false", "true"},
			weights: []float64{0.85, 0.15}, truthW: []float64{0, 0.1}, predW: []float64{0, 0.1}},
		{name: "restecg", values: []string{"normal", "st-t", "hypertrophy"},
			weights: []float64{0.50, 0.01, 0.49}, truthW: []float64{-0.2, 0.3, 0.2}, predW: []float64{-0.2, 0.3, 0.2}},
		{name: "thalach", values: []string{"<130", "130-160", ">160"},
			weights: []float64{0.25, 0.45, 0.30}, truthW: ramp(3, -0.6), predW: ramp(3, -0.6)},
		{name: "exang", values: []string{"no", "yes"},
			weights: []float64{0.67, 0.33}, truthW: []float64{-0.3, 0.7}, predW: []float64{-0.3, 0.75}},
		{name: "oldpeak", values: []string{"0", "0-2", ">2"},
			weights: []float64{0.33, 0.47, 0.20}, truthW: ramp(3, 0.6), predW: ramp(3, 0.6)},
		{name: "slope", values: []string{"up", "flat", "down"},
			weights: []float64{0.47, 0.46, 0.07}, truthW: []float64{-0.4, 0.4, 0.3}, predW: []float64{-0.4, 0.4, 0.3}},
		{name: "ca", values: []string{"0", "1", "2", "3"},
			weights: []float64{0.59, 0.22, 0.13, 0.06}, truthW: ramp(4, 0.8), predW: ramp(4, 0.85)},
		{name: "thal", values: []string{"normal", "fixed", "reversible"},
			weights: []float64{0.55, 0.06, 0.39}, truthW: []float64{-0.5, 0.3, 0.7}, predW: []float64{-0.5, 0.3, 0.75}},
	}
	return generateFromSpec("heart", seed, HeartRows, specs, 0.46, 0.15, 0.78)
}
