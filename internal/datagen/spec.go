package datagen

import "math/rand"

// attrSpec describes one independently sampled attribute: its domain,
// marginal sampling weights, and the per-value contributions to the
// ground-truth and classifier score models. Used by the bank, german and
// heart generators, which serve the performance experiments (Figures 6
// and 7) and need the right shape (rows, attribute counts, domain sizes)
// more than a bespoke correlation structure.
type attrSpec struct {
	name    string
	values  []string
	weights []float64
	truthW  []float64
	predW   []float64
}

// generateFromSpec samples n rows with independent attributes and draws
// ground truth (overall rate posRate) and predictions (overall FPR and
// TPR as given) from the spec's score models.
func generateFromSpec(name string, seed int64, n int, specs []attrSpec, posRate, fpr, tpr float64) *Generated {
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]string, len(specs))
	names := make([]string, len(specs))
	for c, s := range specs {
		cols[c] = make([]string, n)
		names[c] = s.name
	}
	truthScore := make([]float64, n)
	predScore := make([]float64, n)
	for i := 0; i < n; i++ {
		for c, s := range specs {
			v := categorical(rng, s.weights)
			cols[c][i] = s.values[v]
			if s.truthW != nil {
				truthScore[i] += s.truthW[v]
			}
			if s.predW != nil {
				predScore[i] += s.predW[v]
			}
		}
	}
	bTruth := calibrateIntercept(truthScore, posRate)
	truth := drawBernoulli(rng, truthScore, bTruth)
	pred := predWithTargets(rng, truth, predScore, fpr, tpr)
	return &Generated{
		Name:  name,
		Data:  buildDataset(names, cols),
		Truth: truth,
		Pred:  pred,
	}
}

// uniform returns k equal sampling weights.
func uniform(k int) []float64 {
	w := make([]float64, k)
	for i := range w {
		w[i] = 1
	}
	return w
}

// ramp returns k score weights increasing linearly from -scale to +scale,
// a convenient monotone effect over an ordered domain.
func ramp(k int, scale float64) []float64 {
	w := make([]float64, k)
	if k == 1 {
		return w
	}
	for i := range w {
		w[i] = scale * (2*float64(i)/float64(k-1) - 1)
	}
	return w
}
