package stats

// Shapley weighting factors. The local item contribution (Eq. 5) uses the
// classic coalition weight |J|!(|I|−|J|−1)!/|I|!, and the global item
// divergence (Eq. 8) uses |B|!(|A|−|B|−|I|)!/|A|! scaled by the product of
// attribute-domain sizes. Factorials are precomputed as float64; datasets
// have at most a few dozen attributes, far below the float64 factorial
// overflow point (170!).

const maxFactorial = 170

var factorials = func() [maxFactorial + 1]float64 {
	var f [maxFactorial + 1]float64
	f[0] = 1
	for i := 1; i <= maxFactorial; i++ {
		f[i] = f[i-1] * float64(i)
	}
	return f
}()

// Factorial returns n! as a float64. It panics for n < 0 or n > 170
// (beyond float64 range); itemset and attribute counts never get close.
func Factorial(n int) float64 {
	if n < 0 || n > maxFactorial {
		// lint:ignore libprint documented contract: panics on caller-side argument violation
		panic("stats: factorial argument out of range")
	}
	return factorials[n]
}

// ShapleyWeight returns the coalition weight |J|!(n−|J|−1)!/n! from Eq. 5,
// where n is the size of the full coalition (itemset length) and j = |J|
// is the size of the sub-coalition the item joins. Requires 0 ≤ j < n.
func ShapleyWeight(j, n int) float64 {
	if n <= 0 || j < 0 || j >= n {
		// lint:ignore libprint documented contract: panics on caller-side argument violation
		panic("stats: invalid Shapley weight arguments")
	}
	return Factorial(j) * Factorial(n-j-1) / Factorial(n)
}

// GlobalShapleyWeight returns the attribute-level weight
// |B|!(|A|−|B|−|I|)!/|A|! from Eq. 8, before division by the domain-size
// product. b = |B| is the number of attributes in the context itemset,
// total = |A| the number of attributes in the schema, and size = |I| the
// number of attributes (= items) in the itemset whose global divergence is
// being measured. Requires b ≥ 0, size ≥ 1, b+size ≤ total.
func GlobalShapleyWeight(b, size, total int) float64 {
	if b < 0 || size < 1 || b+size > total {
		// lint:ignore libprint documented contract: panics on caller-side argument violation
		panic("stats: invalid global Shapley weight arguments")
	}
	return Factorial(b) * Factorial(total-b-size) / Factorial(total)
}
