package stats

import "math"

// Error bounds for the sampled mining tier (DESIGN.md §14). Two
// complementary interval constructions back the anytime explorer's
// estimates:
//
//   - HoeffdingRadius bounds the support estimate of every pattern
//     simultaneously well: it depends only on the sample size, so the
//     same half-width annotates all patterns of one sampled mine.
//   - WilsonInterval bounds an outcome *rate* (a binomial proportion
//     conditioned on the pattern's covered, non-⊥ rows); unlike the
//     normal approximation it stays inside [0,1] and behaves at small
//     counts and extreme rates.
//
// Both assume the sample rows are drawn uniformly from the dataset.
// Sampling here is without replacement, for which Hoeffding's bound
// remains valid (Serfling's refinement is strictly tighter, so the
// reported intervals are conservative).

// NormalQuantile returns z such that a standard normal variable lies in
// [-z, z] with probability confidence — the two-sided critical value
// (e.g. ≈1.96 for 0.95). confidence must be in (0, 1).
func NormalQuantile(confidence float64) float64 {
	if confidence <= 0 || confidence >= 1 {
		return math.NaN()
	}
	return math.Sqrt2 * math.Erfinv(confidence)
}

// HoeffdingRadius returns the half-width ε of the two-sided Hoeffding
// confidence interval for a mean of n i.i.d. [0,1]-valued draws:
//
//	P(|p̂ − p| ≥ ε) ≤ 2·exp(−2nε²) = 1 − confidence
//	⇒ ε = sqrt(ln(2/(1−confidence)) / (2n))
//
// It is distribution-free: the same ε holds for every pattern's support
// estimated from the same n sampled rows, no matter how rare the
// pattern. NaN is returned for n < 1 or confidence outside (0, 1).
func HoeffdingRadius(n int, confidence float64) float64 {
	if n < 1 || confidence <= 0 || confidence >= 1 {
		return math.NaN()
	}
	return math.Sqrt(math.Log(2/(1-confidence)) / (2 * float64(n)))
}

// WilsonInterval returns the Wilson score interval [lo, hi] for a
// binomial proportion observed as k successes in n trials, at the given
// two-sided confidence level. The interval is asymmetric around k/n,
// always inside [0, 1], and well-behaved for k = 0 or k = n. For n = 0
// there is no information and the interval is the whole unit range.
func WilsonInterval(k, n int64, confidence float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	z := NormalQuantile(confidence)
	if math.IsNaN(z) {
		return math.NaN(), math.NaN()
	}
	nf := float64(n)
	p := float64(k) / nf
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
