package stats

import (
	"math"
	"testing"
)

// TestMaxEntIPFProductFixpoint: with only singleton constraints the
// maximum-entropy distribution is the independence model, so every
// fitted cell must equal the product of its marginals (and the all-ones
// cell the product of the raw marginals).
func TestMaxEntIPFProductFixpoint(t *testing.T) {
	cases := [][]float64{
		{0.5},
		{0.3, 0.7},
		{0.1, 0.25, 0.6},
		{0.42, 0.42, 0.42, 0.9},
	}
	for _, marg := range cases {
		cells, iters, err := MaxEntIPF(marg, 0, 0)
		if err != nil {
			t.Fatalf("%v: %v", marg, err)
		}
		if len(cells) != 1<<len(marg) {
			t.Fatalf("%v: %d cells", marg, len(cells))
		}
		sum := 0.0
		for cell, got := range cells {
			want := 1.0
			for j, p := range marg {
				if cell&(1<<j) != 0 {
					want *= p
				} else {
					want *= 1 - p
				}
			}
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("%v cell %b: %v want %v", marg, cell, got, want)
			}
			sum += got
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%v: cells sum to %v", marg, sum)
		}
		if iters < 1 {
			t.Errorf("%v: %d sweeps", marg, iters)
		}
	}
}

func TestMaxEntIPFErrors(t *testing.T) {
	if _, _, err := MaxEntIPF(nil, 0, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := MaxEntIPF(make([]float64, MaxEntIPFMaxVars+1), 0, 0); err == nil {
		t.Error("k over the cap accepted")
	}
	for _, bad := range []float64{0, 1, -0.1, 1.5, math.NaN()} {
		if _, _, err := MaxEntIPF([]float64{0.5, bad}, 0, 0); err == nil {
			t.Errorf("marginal %v accepted", bad)
		}
	}
}

// TestBinomialSurvivalMatchesSummation differentials the incomplete-beta
// route against direct PMF summation on small n.
func TestBinomialSurvivalMatchesSummation(t *testing.T) {
	binom := func(n, k int64) float64 {
		v := 1.0
		for i := int64(0); i < k; i++ {
			v *= float64(n-i) / float64(i+1)
		}
		return v
	}
	for _, n := range []int64{1, 5, 12, 30} {
		for _, p := range []float64{0.05, 0.3, 0.5, 0.92} {
			for k := int64(0); k <= n+1; k++ {
				want := 0.0
				for j := k; j <= n; j++ {
					want += binom(n, j) * math.Pow(p, float64(j)) * math.Pow(1-p, float64(n-j))
				}
				if k <= 0 {
					want = 1
				}
				got := BinomialSurvival(n, k, p)
				if math.Abs(got-want) > 1e-9 {
					t.Errorf("P(X>=%d | n=%d p=%v) = %v want %v", k, n, p, got, want)
				}
			}
		}
	}
}

func TestBinomialSurvivalEdges(t *testing.T) {
	if got := BinomialSurvival(10, -3, 0.4); got != 1 {
		t.Errorf("k<0: %v", got)
	}
	if got := BinomialSurvival(10, 11, 0.4); got != 0 {
		t.Errorf("k>n: %v", got)
	}
	if got := BinomialSurvival(10, 4, 0); got != 0 {
		t.Errorf("p=0: %v", got)
	}
	if got := BinomialSurvival(10, 4, 1); got != 1 {
		t.Errorf("p=1: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative n did not panic")
		}
	}()
	BinomialSurvival(-1, 0, 0.5)
}

func TestBinomialTwoSidedP(t *testing.T) {
	// Symmetric case: k at the mean of Binomial(10, 0.5) is maximally
	// unsurprising; the doubled tail clamps to 1.
	if got := BinomialTwoSidedP(10, 5, 0.5); got != 1 {
		t.Errorf("central k: %v want 1", got)
	}
	// Extreme observation: all successes under p=0.1 is doubly the upper
	// tail, 2 * 0.1^10.
	got := BinomialTwoSidedP(10, 10, 0.1)
	want := 2 * math.Pow(0.1, 10)
	if math.Abs(got-want) > 1e-18 {
		t.Errorf("extreme k: %v want %v", got, want)
	}
	// Symmetry of the construction: under p=0.5 the score of k and n-k
	// must agree.
	for k := int64(0); k <= 20; k++ {
		a, b := BinomialTwoSidedP(20, k, 0.5), BinomialTwoSidedP(20, 20-k, 0.5)
		if math.Abs(a-b) > 1e-12 {
			t.Errorf("asymmetry at k=%d: %v vs %v", k, a, b)
		}
	}
	// Bounds.
	for k := int64(0); k <= 15; k++ {
		p := BinomialTwoSidedP(15, k, 0.37)
		if p <= 0 || p > 1 {
			t.Errorf("k=%d: p=%v out of (0,1]", k, p)
		}
	}
}
