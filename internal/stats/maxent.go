package stats

import (
	"fmt"
	"math"
)

// Maximum-entropy itemset-significance baseline (DESIGN.md §15): the
// independence model over an itemset's items, fit by iterative
// proportional fitting (IPF) over the 2^k cells constrained to the
// singleton marginals, and a binomial tail probability for how far the
// itemset's observed support deviates from the model's expectation.
// With only singleton constraints the max-entropy distribution is the
// product of the marginals; IPF is used anyway so the machinery extends
// to richer constraint sets unchanged.

// MaxEntIPFMaxVars bounds the number of variables an IPF fit accepts:
// the cell table is dense with 2^k entries.
const MaxEntIPFMaxVars = 20

// MaxEntIPF fits the maximum-entropy distribution over k binary
// variables subject to P(X_j = 1) = marginals[j], by iterative
// proportional fitting over the 2^k joint cells (bit j of a cell index
// set means variable j is present). It returns the fitted cell
// probabilities and the number of sweeps used. tol <= 0 selects 1e-12;
// maxIter <= 0 selects 200. The fit fails only if some marginal lies
// outside (0, 1), k is out of range, or the sweeps fail to converge.
func MaxEntIPF(marginals []float64, tol float64, maxIter int) ([]float64, int, error) {
	k := len(marginals)
	if k < 1 || k > MaxEntIPFMaxVars {
		return nil, 0, fmt.Errorf("stats: IPF over %d variables (want 1..%d)", k, MaxEntIPFMaxVars)
	}
	for j, p := range marginals {
		if !(p > 0) || !(p < 1) {
			return nil, 0, fmt.Errorf("stats: IPF marginal %d = %v out of (0,1)", j, p)
		}
	}
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	cells := make([]float64, 1<<k)
	for i := range cells {
		cells[i] = 1 / float64(len(cells))
	}
	for iter := 1; iter <= maxIter; iter++ {
		worst := 0.0
		for j := 0; j < k; j++ {
			bit := 1 << j
			q := 0.0
			for i, c := range cells {
				if i&bit != 0 {
					q += c
				}
			}
			if d := math.Abs(q - marginals[j]); d > worst {
				worst = d
			}
			up := marginals[j] / q
			down := (1 - marginals[j]) / (1 - q)
			for i := range cells {
				if i&bit != 0 {
					cells[i] *= up
				} else {
					cells[i] *= down
				}
			}
		}
		if worst <= tol {
			return cells, iter, nil
		}
	}
	return nil, maxIter, fmt.Errorf("stats: IPF did not converge in %d sweeps", maxIter)
}

// BinomialSurvival returns P(X >= k) for X ~ Binomial(n, p), via the
// incomplete-beta identity P(X >= k) = I_p(k, n-k+1). Out-of-support k
// clamps to the trivial tails.
func BinomialSurvival(n, k int64, p float64) float64 {
	switch {
	case n < 0:
		// lint:ignore libprint documented contract: panics on caller-side argument violation
		panic("stats: negative binomial size")
	case k <= 0:
		return 1
	case k > n:
		return 0
	case p <= 0:
		return 0
	case p >= 1:
		return 1
	}
	return RegIncompleteBeta(float64(k), float64(n-k+1), p)
}

// BinomialTwoSidedP returns a two-sided tail p-value for observing k
// successes out of n under success probability p: twice the smaller of
// the lower and upper tails (both including k), capped at 1. This is
// the deviation score of the max-entropy baseline — small values mean
// the observed support is far from the independence model on either
// side.
func BinomialTwoSidedP(n, k int64, p float64) float64 {
	upper := BinomialSurvival(n, k, p)
	lower := 1 - BinomialSurvival(n, k+1, p)
	tail := math.Min(upper, lower)
	return math.Min(1, 2*tail)
}
