package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestBetaMeanVariance(t *testing.T) {
	tests := []struct {
		alpha, beta, wantMean, wantVar float64
	}{
		{1, 1, 0.5, 1.0 / 12},
		{2, 2, 0.5, 0.05},
		{1, 3, 0.25, 3.0 / (16 * 5)},
		{10, 30, 0.25, 10 * 30 / (40.0 * 40 * 41)},
	}
	for _, tc := range tests {
		if got := BetaMean(tc.alpha, tc.beta); !almostEqual(got, tc.wantMean, 1e-12) {
			t.Errorf("BetaMean(%v,%v) = %v, want %v", tc.alpha, tc.beta, got, tc.wantMean)
		}
		if got := BetaVariance(tc.alpha, tc.beta); !almostEqual(got, tc.wantVar, 1e-12) {
			t.Errorf("BetaVariance(%v,%v) = %v, want %v", tc.alpha, tc.beta, got, tc.wantVar)
		}
	}
}

func TestBetaPanicsOnInvalid(t *testing.T) {
	for _, params := range [][2]float64{{0, 1}, {1, 0}, {-1, 2}, {math.NaN(), 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BetaMean(%v,%v) did not panic", params[0], params[1])
				}
			}()
			BetaMean(params[0], params[1])
		}()
	}
}

func TestPosteriorRateMatchesPaperEq3(t *testing.T) {
	// k⁺ = 3, k⁻ = 7: mean = 4/12, var = 4*8/(12²·13).
	p := NewPosteriorRate(3, 7)
	if got, want := p.Mean(), 4.0/12; !almostEqual(got, want, 1e-12) {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got, want := p.Variance(), 4.0*8/(144*13); !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
}

func TestPosteriorRateZeroObservations(t *testing.T) {
	// The all-⊥ itemset case from Sec. 3.3: must stay numerically stable.
	p := NewPosteriorRate(0, 0)
	if got := p.Mean(); got != 0.5 {
		t.Errorf("Mean with no data = %v, want 0.5 (uniform prior)", got)
	}
	if got, want := p.Variance(), 1.0/12; !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance with no data = %v, want %v", got, want)
	}
}

func TestPosteriorRateNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPosteriorRate(-1, 0) did not panic")
		}
	}()
	NewPosteriorRate(-1, 0)
}

// Posterior mean approaches the empirical rate and the variance shrinks as
// O(1/n): the frequentist limit of the Bayesian treatment.
func TestPosteriorRateFrequentistLimit(t *testing.T) {
	f := func(pos, neg uint16) bool {
		kp, kn := float64(pos)+1000, float64(neg)+3000
		p := NewPosteriorRate(kp, kn)
		empirical := kp / (kp + kn)
		if !almostEqual(p.Mean(), empirical, 2e-3) {
			return false
		}
		return p.Variance() < 1.0/(kp+kn)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The posterior mean is monotone in k⁺ for fixed k⁻ and total ordering is
// preserved — a basic sanity invariant of Eq. 3.
func TestPosteriorRateMonotone(t *testing.T) {
	f := func(pos, neg uint8) bool {
		p := NewPosteriorRate(float64(pos), float64(neg))
		q := NewPosteriorRate(float64(pos)+1, float64(neg))
		return q.Mean() > p.Mean()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelchT(t *testing.T) {
	if got := WelchT(0.5, 0.01, 0.3, 0.03); !almostEqual(got, 0.2/0.2, 1e-12) {
		t.Errorf("WelchT = %v, want 1", got)
	}
	if got := WelchT(0.4, 0, 0.4, 0); got != 0 {
		t.Errorf("WelchT identical degenerate = %v, want 0", got)
	}
	if got := WelchT(0.4, 0, 0.5, 0); !math.IsInf(got, 1) {
		t.Errorf("WelchT distinct degenerate = %v, want +Inf", got)
	}
}

func TestWelchTSymmetricNonNegative(t *testing.T) {
	f := func(m1, m2 uint8, v1, v2 uint8) bool {
		a := float64(m1) / 255
		b := float64(m2) / 255
		va := float64(v1)/255 + 1e-6
		vb := float64(v2)/255 + 1e-6
		t1 := WelchT(a, va, b, vb)
		t2 := WelchT(b, vb, a, va)
		return t1 >= 0 && almostEqual(t1, t2, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelchTPosterior(t *testing.T) {
	a := NewPosteriorRate(50, 50)
	b := NewPosteriorRate(10, 90)
	got := WelchTPosterior(a, b)
	want := WelchT(a.Mean(), a.Variance(), b.Mean(), b.Variance())
	if got != want {
		t.Errorf("WelchTPosterior = %v, want %v", got, want)
	}
	if got <= 0 {
		t.Errorf("expected clearly significant difference, got t = %v", got)
	}
}
