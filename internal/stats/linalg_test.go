package stats

import (
	"math/rand"
	"testing"
)

func TestSolveLinearKnownSystem(t *testing.T) {
	a := [][]float64{
		{2, 1},
		{1, 3},
	}
	b := []float64{5, 10}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5, x + 3y = 10 -> x = 1, y = 3.
	if !almostEqual(x[0], 1, 1e-9) || !almostEqual(x[1], 3, 1e-9) {
		t.Errorf("solution = %v, want [1 3]", x)
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	a := [][]float64{
		{0, 1},
		{1, 0},
	}
	b := []float64{2, 3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 3, 1e-9) || !almostEqual(x[1], 2, 1e-9) {
		t.Errorf("solution = %v, want [3 2]", x)
	}
}

func TestSolveLinearErrors(t *testing.T) {
	if _, err := SolveLinear(nil, nil); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := SolveLinear([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("non-square system accepted")
	}
	if _, err := SolveLinear([][]float64{{1, 1}, {1, 1}}, []float64{1, 2}); err == nil {
		t.Error("singular system accepted")
	}
}

func TestSolveLinearRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(8)
		a := make([][]float64, n)
		orig := make([][]float64, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
			}
			a[i][i] += float64(n) // diagonally dominant: well conditioned
			orig[i] = append([]float64(nil), a[i]...)
		}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += orig[i][j] * want[j]
			}
		}
		got, err := SolveLinear(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !almostEqual(got[i], want[i], 1e-6) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestRidgeRecoversLinearModel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, d := 200, 3
	coef := []float64{2, -1, 0.5}
	intercept := 0.7
	xs := make([][]float64, n)
	ys := make([]float64, n)
	ws := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = make([]float64, d)
		y := intercept
		for j := 0; j < d; j++ {
			xs[i][j] = rng.NormFloat64()
			y += coef[j] * xs[i][j]
		}
		ys[i] = y
		ws[i] = 1
	}
	beta, err := RidgeRegression(xs, ys, ws, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for j, c := range coef {
		if !almostEqual(beta[j], c, 1e-3) {
			t.Errorf("beta[%d] = %v, want %v", j, beta[j], c)
		}
	}
	if !almostEqual(beta[d], intercept, 1e-3) {
		t.Errorf("intercept = %v, want %v", beta[d], intercept)
	}
}

func TestRidgeShrinksWithLambda(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}, {4}}
	ys := []float64{2, 4, 6, 8}
	ws := []float64{1, 1, 1, 1}
	small, err := RidgeRegression(xs, ys, ws, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RidgeRegression(xs, ys, ws, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !(abs(big[0]) < abs(small[0])) {
		t.Errorf("lambda=100 coefficient %v not smaller than %v", big[0], small[0])
	}
}

func TestRidgeWeightsMatter(t *testing.T) {
	// Two incompatible points; weights decide which the fit follows.
	xs := [][]float64{{1}, {1}}
	ys := []float64{0, 10}
	heavy0, err := RidgeRegression(xs, ys, []float64{100, 0.01}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	heavy1, err := RidgeRegression(xs, ys, []float64{0.01, 100}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	pred0 := heavy0[0] + heavy0[1]
	pred1 := heavy1[0] + heavy1[1]
	if !(pred0 < 1 && pred1 > 9) {
		t.Errorf("weighted fits = %v, %v; want ≈0 and ≈10", pred0, pred1)
	}
}

func TestRidgeErrors(t *testing.T) {
	if _, err := RidgeRegression(nil, nil, nil, 1); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := RidgeRegression([][]float64{{1}}, []float64{1, 2}, []float64{1}, 1); err == nil {
		t.Error("mismatched ys accepted")
	}
	if _, err := RidgeRegression([][]float64{{1}, {1, 2}}, []float64{1, 2}, []float64{1, 1}, 1); err == nil {
		t.Error("ragged xs accepted")
	}
}
