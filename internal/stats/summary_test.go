package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Variance(xs); !almostEqual(got, 1.25, 1e-12) {
		t.Errorf("Variance = %v, want 1.25", got)
	}
	if got := SampleVariance(xs); !almostEqual(got, 5.0/3, 1e-12) {
		t.Errorf("SampleVariance = %v, want 5/3", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := SampleVariance([]float64{7}); got != 0 {
		t.Errorf("SampleVariance(single) = %v, want 0", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantilePanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Quantile(empty) did not panic")
			}
		}()
		Quantile(nil, 0.5)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Quantile(q=2) did not panic")
			}
		}()
		Quantile([]float64{1}, 2)
	}()
}

func TestCohenD(t *testing.T) {
	a := []float64{1, 1, 1, 1, 0, 0}
	b := []float64{0, 0, 0, 0, 0, 1}
	d := CohenD(a, b)
	if d <= 0 {
		t.Errorf("CohenD = %v, want positive (a has higher mean)", d)
	}
	if got := CohenD(b, a); !almostEqual(got, -d, 1e-12) {
		t.Errorf("CohenD antisymmetry: %v vs %v", got, -d)
	}
	if got := CohenD([]float64{1, 1}, []float64{1, 1}); got != 0 {
		t.Errorf("CohenD identical constants = %v, want 0", got)
	}
	if got := CohenD([]float64{1, 1}, []float64{0, 0}); !math.IsInf(got, 1) {
		t.Errorf("CohenD distinct constants = %v, want +Inf", got)
	}
}

func TestTwoSampleWelchT(t *testing.T) {
	a := []float64{2, 4, 6, 8}
	b := []float64{1, 2, 3, 4}
	tt, df := TwoSampleWelchT(a, b)
	if tt <= 0 {
		t.Errorf("t = %v, want positive", tt)
	}
	if df <= 0 || df > 6 {
		t.Errorf("df = %v, want in (0, 6]", df)
	}
	// Degenerate: identical constant samples.
	tt, _ = TwoSampleWelchT([]float64{1, 1}, []float64{1, 1})
	if tt != 0 {
		t.Errorf("degenerate t = %v, want 0", tt)
	}
}

// Variance is translation invariant and scales quadratically.
func TestVarianceProperties(t *testing.T) {
	f := func(raw []uint8, shiftRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		shifted := make([]float64, len(raw))
		scaled := make([]float64, len(raw))
		shift := float64(shiftRaw)
		for i, r := range raw {
			xs[i] = float64(r)
			shifted[i] = xs[i] + shift
			scaled[i] = xs[i] * 3
		}
		v := Variance(xs)
		return almostEqual(Variance(shifted), v, 1e-6*(v+1)) &&
			almostEqual(Variance(scaled), 9*v, 1e-6*(9*v+1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
