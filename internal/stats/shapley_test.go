package stats

import (
	"testing"
	"testing/quick"
)

func TestFactorialSmall(t *testing.T) {
	want := []float64{1, 1, 2, 6, 24, 120, 720, 5040}
	for n, w := range want {
		if got := Factorial(n); got != w {
			t.Errorf("Factorial(%d) = %v, want %v", n, got, w)
		}
	}
}

func TestFactorialPanics(t *testing.T) {
	for _, n := range []int{-1, 171} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Factorial(%d) did not panic", n)
				}
			}()
			Factorial(n)
		}()
	}
}

// The Shapley weights over all coalition sizes, counted with multiplicity
// (number of sub-coalitions of each size), must sum to 1: every
// permutation contributes exactly once.
func TestShapleyWeightsSumToOne(t *testing.T) {
	for n := 1; n <= 12; n++ {
		var sum float64
		for j := 0; j < n; j++ {
			// C(n-1, j) coalitions of size j not containing the item.
			coalitions := Factorial(n-1) / (Factorial(j) * Factorial(n-1-j))
			sum += coalitions * ShapleyWeight(j, n)
		}
		if !almostEqual(sum, 1, 1e-12) {
			t.Errorf("n=%d: Shapley weights sum to %v, want 1", n, sum)
		}
	}
}

func TestShapleyWeightKnownValues(t *testing.T) {
	// n=3: weights are 1/3 (j=0), 1/6 (j=1), 1/3 (j=2).
	cases := []struct {
		j, n int
		want float64
	}{
		{0, 3, 1.0 / 3},
		{1, 3, 1.0 / 6},
		{2, 3, 1.0 / 3},
		{0, 1, 1},
		{0, 2, 0.5},
		{1, 2, 0.5},
	}
	for _, c := range cases {
		if got := ShapleyWeight(c.j, c.n); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("ShapleyWeight(%d,%d) = %v, want %v", c.j, c.n, got, c.want)
		}
	}
}

func TestShapleyWeightPanics(t *testing.T) {
	for _, c := range [][2]int{{-1, 3}, {3, 3}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ShapleyWeight(%d,%d) did not panic", c[0], c[1])
				}
			}()
			ShapleyWeight(c[0], c[1])
		}()
	}
}

// GlobalShapleyWeight generalizes ShapleyWeight: for size=1 the attribute
// level weight must coincide with the single-item Shapley weight over |A|
// players.
func TestGlobalShapleyWeightReducesToShapley(t *testing.T) {
	f := func(bRaw, totalRaw uint8) bool {
		total := int(totalRaw%14) + 2
		b := int(bRaw) % total // 0..total-1
		if b >= total {
			return true
		}
		return almostEqual(GlobalShapleyWeight(b, 1, total), ShapleyWeight(b, total), 1e-14)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGlobalShapleyWeightPanics(t *testing.T) {
	for _, c := range [][3]int{{-1, 1, 3}, {0, 0, 3}, {2, 2, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GlobalShapleyWeight(%v) did not panic", c)
				}
			}()
			GlobalShapleyWeight(c[0], c[1], c[2])
		}()
	}
}
