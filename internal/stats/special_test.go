package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegIncompleteBetaKnownValues(t *testing.T) {
	cases := []struct {
		a, b, x, want float64
	}{
		// I_x(1,1) = x (uniform CDF).
		{1, 1, 0.3, 0.3},
		{1, 1, 0.85, 0.85},
		// I_x(1,b) = 1-(1-x)^b.
		{1, 3, 0.5, 1 - 0.125},
		// I_x(a,1) = x^a.
		{4, 1, 0.5, 0.0625},
		// Symmetric case: I_0.5(a,a) = 0.5.
		{7.3, 7.3, 0.5, 0.5},
		// Binomial identity: I_0.5(3,3) = P(Bin(5,0.5) >= 3) = 0.5.
		{3, 3, 0.5, 0.5},
		// I_0.25(2,3) = P(Bin(4,0.25) >= 2) = 1 - 0.75^4 - 4*0.25*0.75^3.
		{2, 3, 0.25, 1 - math.Pow(0.75, 4) - 4*0.25*math.Pow(0.75, 3)},
	}
	for _, c := range cases {
		if got := RegIncompleteBeta(c.a, c.b, c.x); !almostEqual(got, c.want, 1e-10) {
			t.Errorf("I_%v(%v,%v) = %v, want %v", c.x, c.a, c.b, got, c.want)
		}
	}
}

func TestRegIncompleteBetaBoundsAndPanics(t *testing.T) {
	if got := RegIncompleteBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %v", got)
	}
	if got := RegIncompleteBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid parameters did not panic")
		}
	}()
	RegIncompleteBeta(0, 1, 0.5)
}

// Symmetry property: I_x(a,b) + I_{1-x}(b,a) = 1.
func TestRegIncompleteBetaSymmetryProperty(t *testing.T) {
	f := func(ar, br, xr uint16) bool {
		a := float64(ar%500)/10 + 0.1
		b := float64(br%500)/10 + 0.1
		x := float64(xr) / 65535
		lhs := RegIncompleteBeta(a, b, x) + RegIncompleteBeta(b, a, 1-x)
		return almostEqual(lhs, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Monotonicity in x.
func TestBetaCDFMonotone(t *testing.T) {
	prev := -1.0
	for x := 0.0; x <= 1.0; x += 0.01 {
		v := BetaCDF(2.5, 4.5, x)
		if v < prev-1e-12 {
			t.Fatalf("CDF not monotone at x=%v", x)
		}
		prev = v
	}
}

// The CDF matches a Monte Carlo estimate.
func TestBetaCDFMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := 3.0, 5.0
	n := 200000
	count := 0
	for i := 0; i < n; i++ {
		// Sample Beta(3,5) as order statistics of gamma pairs via the
		// ratio of sums of exponentials (integer shape).
		g1 := gammaInt(rng, int(a))
		g2 := gammaInt(rng, int(b))
		if g1/(g1+g2) <= 0.4 {
			count++
		}
	}
	mc := float64(count) / float64(n)
	if got := BetaCDF(a, b, 0.4); math.Abs(got-mc) > 0.01 {
		t.Errorf("BetaCDF(3,5,0.4) = %v, Monte Carlo %v", got, mc)
	}
}

func gammaInt(rng *rand.Rand, k int) float64 {
	s := 0.0
	for i := 0; i < k; i++ {
		s -= math.Log(rng.Float64())
	}
	return s
}

func TestBetaQuantileInvertsCDF(t *testing.T) {
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99} {
		x := BetaQuantile(4, 2, q)
		if got := BetaCDF(4, 2, x); !almostEqual(got, q, 1e-9) {
			t.Errorf("CDF(Quantile(%v)) = %v", q, got)
		}
	}
}

func TestCredibleInterval(t *testing.T) {
	p := NewPosteriorRate(30, 70)
	lo, hi := p.CredibleInterval(0.95)
	if !(lo < p.Mean() && p.Mean() < hi) {
		t.Errorf("interval [%v,%v] does not bracket the mean %v", lo, hi, p.Mean())
	}
	// Mass check: CDF(hi)-CDF(lo) = 0.95.
	mass := BetaCDF(31, 71, hi) - BetaCDF(31, 71, lo)
	if !almostEqual(mass, 0.95, 1e-6) {
		t.Errorf("interval mass = %v", mass)
	}
	// Wider level -> wider interval.
	lo99, hi99 := p.CredibleInterval(0.99)
	if lo99 > lo || hi99 < hi {
		t.Error("99% interval narrower than 95%")
	}
	defer func() {
		if recover() == nil {
			t.Error("level 1.5 did not panic")
		}
	}()
	p.CredibleInterval(1.5)
}

func TestTailProb(t *testing.T) {
	p := NewPosteriorRate(80, 20)
	if got := p.TailProb(0.5); got < 0.99 {
		t.Errorf("TailProb(0.5) = %v, want ~1 for an ~0.8 rate", got)
	}
	if got := p.TailProb(0.95); got > 0.01 {
		t.Errorf("TailProb(0.95) = %v, want ~0", got)
	}
	if p.TailProb(0) != 1 || p.TailProb(1) != 0 {
		t.Error("boundary tail probabilities wrong")
	}
}

func TestStudentTCDF(t *testing.T) {
	// Known values: t=0 -> 0.5; df=1 (Cauchy) at t=1 -> 0.75.
	if got := StudentTCDF(0, 7); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("T(0) = %v", got)
	}
	if got := StudentTCDF(1, 1); !almostEqual(got, 0.75, 1e-9) {
		t.Errorf("Cauchy CDF(1) = %v, want 0.75", got)
	}
	// Large df approaches the normal CDF.
	if got := StudentTCDF(1.96, 1e7); !almostEqual(got, stdNormalCDF(1.96), 1e-4) {
		t.Errorf("large-df t CDF = %v, normal = %v", got, stdNormalCDF(1.96))
	}
	// Symmetry.
	if got := StudentTCDF(-1.3, 5) + StudentTCDF(1.3, 5); !almostEqual(got, 1, 1e-10) {
		t.Errorf("t CDF symmetry violated: %v", got)
	}
	if StudentTCDF(math.Inf(1), 3) != 1 || StudentTCDF(math.Inf(-1), 3) != 0 {
		t.Error("infinite arguments wrong")
	}
}

func TestTwoSidedTPValue(t *testing.T) {
	// Normal limit: |t|=1.96 -> p ~ 0.05.
	if got := TwoSidedTPValue(1.96, 0); math.Abs(got-0.05) > 0.001 {
		t.Errorf("p(1.96, normal) = %v", got)
	}
	if got := TwoSidedTPValue(-1.96, 0); math.Abs(got-0.05) > 0.001 {
		t.Errorf("p(-1.96, normal) = %v", got)
	}
	// Finite df gives larger p than the normal limit.
	if TwoSidedTPValue(2, 5) <= TwoSidedTPValue(2, 0) {
		t.Error("t p-value not heavier-tailed than normal")
	}
}

func TestBenjaminiHochberg(t *testing.T) {
	pvals := []float64{0.001, 0.008, 0.039, 0.041, 0.042, 0.06, 0.074, 0.205, 0.212, 0.216}
	reject, adjusted := BenjaminiHochberg(pvals, 0.05)
	// Step-up thresholds are i·q/n = 0.005, 0.01, 0.015, …: the largest i
	// with p_(i) below its threshold is 2 (0.039 > 0.015), so exactly the
	// first two hypotheses are rejected.
	wantReject := []bool{true, true, false, false, false, false, false, false, false, false}
	for i, w := range wantReject {
		if reject[i] != w {
			t.Errorf("reject[%d] = %v, want %v (adj=%v)", i, reject[i], w, adjusted[i])
		}
	}
	// Adjusted p-values are monotone in the sorted order and >= raw.
	for i := range pvals {
		if adjusted[i] < pvals[i]-1e-15 {
			t.Errorf("adjusted[%d] = %v below raw %v", i, adjusted[i], pvals[i])
		}
		if adjusted[i] > 1 {
			t.Errorf("adjusted[%d] = %v above 1", i, adjusted[i])
		}
	}
	// Edge cases.
	r, a := BenjaminiHochberg(nil, 0.05)
	if len(r) != 0 || len(a) != 0 {
		t.Error("empty input mishandled")
	}
}

// Rejection set grows with q.
func TestBenjaminiHochbergMonotoneInQ(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		pv := make([]float64, len(raw))
		for i, r := range raw {
			pv[i] = float64(r) / 65535
		}
		r1, _ := BenjaminiHochberg(pv, 0.01)
		r2, _ := BenjaminiHochberg(pv, 0.1)
		for i := range r1 {
			if r1[i] && !r2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
