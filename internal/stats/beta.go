// Package stats provides the statistical primitives used throughout the
// DivExplorer reproduction: Beta-posterior moments for Bernoulli rates,
// Welch's t-statistic, Shapley weighting factors, and small numeric
// helpers. Everything is exact closed-form arithmetic on float64; no
// sampling is involved.
package stats

import "math"

// BetaMean returns the mean of a Beta(alpha, beta) distribution.
// It panics if either parameter is not strictly positive, since such a
// distribution is undefined.
func BetaMean(alpha, beta float64) float64 {
	checkBetaParams(alpha, beta)
	return alpha / (alpha + beta)
}

// BetaVariance returns the variance of a Beta(alpha, beta) distribution.
func BetaVariance(alpha, beta float64) float64 {
	checkBetaParams(alpha, beta)
	s := alpha + beta
	return alpha * beta / (s * s * (s + 1))
}

func checkBetaParams(alpha, beta float64) {
	if !(alpha > 0) || !(beta > 0) {
		// lint:ignore libprint documented contract: panics on caller-side argument violation
		panic("stats: Beta parameters must be positive")
	}
}

// PosteriorRate holds the Bayesian posterior over an unknown Bernoulli
// success rate after observing kPos successes and kNeg failures, starting
// from the uniform prior Beta(1, 1). This is the construction of Sec. 3.3
// of the paper: the posterior is Beta(kPos+1, kNeg+1), which remains well
// defined even when kPos+kNeg = 0 (all outcomes ⊥ on the itemset).
type PosteriorRate struct {
	KPos float64 // observed positive outcomes (k⁺)
	KNeg float64 // observed negative outcomes (k⁻)
}

// NewPosteriorRate builds the posterior for kPos positive and kNeg
// negative observations. Negative counts panic: they cannot arise from
// tallying and always indicate a caller bug.
func NewPosteriorRate(kPos, kNeg float64) PosteriorRate {
	if kPos < 0 || kNeg < 0 {
		// lint:ignore libprint documented contract: panics on caller-side argument violation
		panic("stats: negative observation counts")
	}
	return PosteriorRate{KPos: kPos, KNeg: kNeg}
}

// Mean returns the posterior mean (k⁺+1)/(k⁺+k⁻+2), Eq. 3 of the paper.
func (p PosteriorRate) Mean() float64 {
	return (p.KPos + 1) / (p.KPos + p.KNeg + 2)
}

// Variance returns the posterior variance
// (k⁺+1)(k⁻+1) / ((k⁺+k⁻+2)²(k⁺+k⁻+3)), Eq. 3 of the paper.
func (p PosteriorRate) Variance() float64 {
	n := p.KPos + p.KNeg
	return (p.KPos + 1) * (p.KNeg + 1) / ((n + 2) * (n + 2) * (n + 3))
}

// StdDev returns the posterior standard deviation.
func (p PosteriorRate) StdDev() float64 { return math.Sqrt(p.Variance()) }

// WelchT computes the Welch t-statistic |mu1−mu2| / sqrt(v1+v2) used by
// the paper to compare the positive rate on an itemset with the positive
// rate on the whole dataset. The result is always non-negative. If both
// variances are zero the statistic is 0 when the means agree and +Inf
// otherwise.
func WelchT(mu1, v1, mu2, v2 float64) float64 {
	if v1 < 0 || v2 < 0 {
		// lint:ignore libprint documented contract: panics on caller-side argument violation
		panic("stats: negative variance")
	}
	num := math.Abs(mu1 - mu2)
	den := math.Sqrt(v1 + v2)
	// lint:ignore floatcmp exact zero guard before division; exactness is the point
	if den == 0 {
		// lint:ignore floatcmp zero difference over zero variance is the exact degenerate case
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return num / den
}

// WelchTPosterior is a convenience wrapper computing the Welch t-statistic
// between two Bernoulli-rate posteriors.
func WelchTPosterior(a, b PosteriorRate) float64 {
	return WelchT(a.Mean(), a.Variance(), b.Mean(), b.Variance())
}
