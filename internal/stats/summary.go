package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n), or 0
// for slices with fewer than one element.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// SampleVariance returns the unbiased sample variance (dividing by n−1),
// or 0 for slices with fewer than two elements.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice or
// a q outside [0, 1]. The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		// lint:ignore libprint documented contract: panics on caller-side argument violation
		panic("stats: quantile of empty slice")
	}
	if q < 0 || q > 1 {
		// lint:ignore libprint documented contract: panics on caller-side argument violation
		panic("stats: quantile fraction out of range")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CohenD returns Cohen's d effect size between two samples: the difference
// of means divided by the pooled standard deviation. Slice Finder uses
// this form of effect size to decide whether a slice is "problematic".
// Returns 0 when the pooled deviation is zero and the means agree, and
// ±Inf when they differ.
func CohenD(a, b []float64) float64 {
	na, nb := float64(len(a)), float64(len(b))
	if na < 2 || nb < 2 {
		return 0
	}
	va, vb := SampleVariance(a), SampleVariance(b)
	pooled := math.Sqrt(((na-1)*va + (nb-1)*vb) / (na + nb - 2))
	diff := Mean(a) - Mean(b)
	// lint:ignore floatcmp exact zero guard before division; exactness is the point
	if pooled == 0 {
		// lint:ignore floatcmp zero difference over zero deviation is the exact degenerate case
		if diff == 0 {
			return 0
		}
		return math.Inf(1) * sign(diff)
	}
	return diff / pooled
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// TwoSampleWelchT returns Welch's t-statistic for two raw samples along
// with the Welch–Satterthwaite degrees of freedom. Used by the Slice
// Finder baseline for its significance test.
func TwoSampleWelchT(a, b []float64) (t, df float64) {
	na, nb := float64(len(a)), float64(len(b))
	if na < 2 || nb < 2 {
		return 0, 0
	}
	va, vb := SampleVariance(a)/na, SampleVariance(b)/nb
	den := math.Sqrt(va + vb)
	// lint:ignore floatcmp exact zero guard before division; exactness is the point
	if den == 0 {
		// lint:ignore floatcmp equal means over zero variance is the exact degenerate case
		if Mean(a) == Mean(b) {
			return 0, na + nb - 2
		}
		return math.Inf(1), na + nb - 2
	}
	t = (Mean(a) - Mean(b)) / den
	dfDen := va*va/(na-1) + vb*vb/(nb-1)
	// lint:ignore floatcmp exact zero guard before division; exactness is the point
	if dfDen == 0 {
		df = na + nb - 2
	} else {
		df = (va + vb) * (va + vb) / dfDen
	}
	return t, df
}
