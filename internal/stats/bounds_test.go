package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ conf, want float64 }{
		{0.90, 1.6449},
		{0.95, 1.9600},
		{0.99, 2.5758},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.conf); math.Abs(got-c.want) > 5e-4 {
			t.Errorf("NormalQuantile(%v) = %v, want ≈%v", c.conf, got, c.want)
		}
	}
	for _, bad := range []float64{0, 1, -0.5, 1.5} {
		if got := NormalQuantile(bad); !math.IsNaN(got) {
			t.Errorf("NormalQuantile(%v) = %v, want NaN", bad, got)
		}
	}
}

func TestHoeffdingRadius(t *testing.T) {
	// Known value: n=1000, conf=0.95 ⇒ sqrt(ln(40)/2000) ≈ 0.042944.
	if got := HoeffdingRadius(1000, 0.95); math.Abs(got-0.042944) > 1e-5 {
		t.Errorf("HoeffdingRadius(1000, 0.95) = %v", got)
	}
	// Monotone: more rows shrink the radius, higher confidence widens it.
	if HoeffdingRadius(100, 0.95) <= HoeffdingRadius(400, 0.95) {
		t.Error("radius did not shrink with sample size")
	}
	if HoeffdingRadius(100, 0.99) <= HoeffdingRadius(100, 0.9) {
		t.Error("radius did not widen with confidence")
	}
	if !math.IsNaN(HoeffdingRadius(0, 0.95)) || !math.IsNaN(HoeffdingRadius(100, 1)) {
		t.Error("degenerate inputs must return NaN")
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(50, 100, 0.95)
	if !(lo < 0.5 && 0.5 < hi) {
		t.Errorf("Wilson(50/100) = [%v, %v] does not contain 0.5", lo, hi)
	}
	if lo < 0.40 || hi > 0.60 {
		t.Errorf("Wilson(50/100) = [%v, %v] implausibly wide", lo, hi)
	}
	// Edge counts stay inside the unit interval and keep width.
	lo, hi = WilsonInterval(0, 20, 0.95)
	if lo != 0 || hi <= 0 || hi >= 0.4 {
		t.Errorf("Wilson(0/20) = [%v, %v]", lo, hi)
	}
	lo, hi = WilsonInterval(20, 20, 0.95)
	if hi != 1 || lo >= 1 || lo <= 0.6 {
		t.Errorf("Wilson(20/20) = [%v, %v]", lo, hi)
	}
	// No trials: no information.
	if lo, hi = WilsonInterval(0, 0, 0.95); lo != 0 || hi != 1 {
		t.Errorf("Wilson(0/0) = [%v, %v], want [0, 1]", lo, hi)
	}
}

// TestWilsonCoverageSimulation checks the interval's defining property
// empirically: across repeated binomial draws the true proportion lands
// inside the 95% interval at very nearly the nominal frequency.
func TestWilsonCoverageSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trials, covered := 0, 0
	for _, p := range []float64{0.05, 0.3, 0.5, 0.9} {
		for rep := 0; rep < 500; rep++ {
			const n = 60
			k := int64(0)
			for i := 0; i < n; i++ {
				if rng.Float64() < p {
					k++
				}
			}
			lo, hi := WilsonInterval(k, n, 0.95)
			trials++
			if lo <= p && p <= hi {
				covered++
			}
		}
	}
	if cov := float64(covered) / float64(trials); cov < 0.93 {
		t.Errorf("Wilson 95%% interval covered the truth only %.1f%% of the time", 100*cov)
	}
}
