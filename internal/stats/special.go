package stats

import "math"

// Special functions needed for exact tail probabilities: the regularized
// incomplete beta function (hence Beta and Student-t CDFs) implemented
// with the standard continued-fraction expansion (Lentz's algorithm), and
// Benjamini–Hochberg false-discovery-rate control for the many
// simultaneous itemset tests an exploration performs.

// RegIncompleteBeta returns I_x(a, b), the regularized incomplete beta
// function, for a, b > 0 and x in [0, 1]. Precision is ~1e-12 over the
// well-conditioned region; the symmetry relation I_x(a,b) = 1−I_{1−x}(b,a)
// keeps the continued fraction convergent.
func RegIncompleteBeta(a, b, x float64) float64 {
	switch {
	case !(a > 0) || !(b > 0):
		// lint:ignore libprint documented contract: panics on caller-side argument violation
		panic("stats: RegIncompleteBeta requires positive parameters")
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	// ln of the prefactor x^a (1-x)^b / (a B(a,b)).
	lbeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	front := math.Exp(a*math.Log(x) + b*math.Log(1-x) - lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - math.Exp(b*math.Log(1-x)+a*math.Log(x)-lbeta)*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 1e-14
		fpMin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpMin {
		d = fpMin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// BetaCDF returns P(X <= x) for X ~ Beta(alpha, beta).
func BetaCDF(alpha, beta, x float64) float64 {
	checkBetaParams(alpha, beta)
	return RegIncompleteBeta(alpha, beta, x)
}

// BetaQuantile returns the q-quantile of Beta(alpha, beta) by bisection
// on the CDF (monotone, so 80 iterations give ~1e-24 interval width —
// far below the CDF's own precision).
func BetaQuantile(alpha, beta, q float64) float64 {
	checkBetaParams(alpha, beta)
	if q < 0 || q > 1 {
		// lint:ignore libprint documented contract: panics on caller-side argument violation
		panic("stats: quantile fraction out of range")
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if BetaCDF(alpha, beta, mid) < q {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// CredibleInterval returns the equal-tailed Bayesian credible interval of
// the posterior rate at the given level (e.g. 0.95).
func (p PosteriorRate) CredibleInterval(level float64) (lo, hi float64) {
	if level <= 0 || level >= 1 {
		// lint:ignore libprint documented contract: panics on caller-side argument violation
		panic("stats: credible level out of (0,1)")
	}
	tail := (1 - level) / 2
	a, b := p.KPos+1, p.KNeg+1
	return BetaQuantile(a, b, tail), BetaQuantile(a, b, 1-tail)
}

// TailProb returns the posterior probability that the true rate exceeds
// r: P(Z > r | data).
func (p PosteriorRate) TailProb(r float64) float64 {
	if r <= 0 {
		return 1
	}
	if r >= 1 {
		return 0
	}
	return 1 - BetaCDF(p.KPos+1, p.KNeg+1, r)
}

// StudentTCDF returns P(T <= t) for a Student-t variable with df degrees
// of freedom, via the incomplete beta identity.
func StudentTCDF(t, df float64) float64 {
	if df <= 0 {
		// lint:ignore libprint documented contract: panics on caller-side argument violation
		panic("stats: non-positive degrees of freedom")
	}
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	x := df / (df + t*t)
	p := 0.5 * RegIncompleteBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// TwoSidedTPValue returns the two-sided p-value of a t-statistic with df
// degrees of freedom. Pass df <= 0 or +Inf to use the normal limit.
func TwoSidedTPValue(t, df float64) float64 {
	at := math.Abs(t)
	if df <= 0 || math.IsInf(df, 1) {
		return 2 * (1 - stdNormalCDF(at))
	}
	return 2 * (1 - StudentTCDF(at, df))
}

func stdNormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// BenjaminiHochberg applies FDR control at level q to a slice of
// p-values and returns a mask of rejected (significant) hypotheses plus
// the adjusted p-values (monotone step-up). The input is not modified.
func BenjaminiHochberg(pvals []float64, q float64) (reject []bool, adjusted []float64) {
	n := len(pvals)
	reject = make([]bool, n)
	adjusted = make([]float64, n)
	if n == 0 {
		return reject, adjusted
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Sort indexes by ascending p-value.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && pvals[idx[j]] < pvals[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	// Adjusted p-values: p_(i) * n / i, enforced monotone from the top.
	prev := 1.0
	for i := n - 1; i >= 0; i-- {
		rank := float64(i + 1)
		adj := pvals[idx[i]] * float64(n) / rank
		if adj > prev {
			adj = prev
		}
		prev = adj
		adjusted[idx[i]] = adj
	}
	// Step-up rejection: find the largest i with p_(i) <= q*i/n.
	cut := -1
	for i := 0; i < n; i++ {
		if pvals[idx[i]] <= q*float64(i+1)/float64(n) {
			cut = i
		}
	}
	for i := 0; i <= cut; i++ {
		reject[idx[i]] = true
	}
	return reject, adjusted
}
