package stats

import "fmt"

// SolveLinear solves the linear system A·x = b by Gaussian elimination
// with partial pivoting. A is given in row-major order and is modified in
// place, as is b; the solution is returned. Intended for the small dense
// systems of the LIME surrogate fit (tens of unknowns).
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("stats: system shape mismatch (%d equations, %d rhs)", n, len(b))
	}
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("stats: matrix row %d has %d columns, want %d", i, len(a[i]), n)
		}
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if abs(a[r][col]) > abs(a[pivot][col]) {
				pivot = r
			}
		}
		if abs(a[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("stats: singular system at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			// lint:ignore floatcmp exactly-zero factor makes the elimination row a no-op; skip is exact
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for c := i + 1; c < n; c++ {
			s -= a[i][c] * x[c]
		}
		x[i] = s / a[i][i]
	}
	return x, nil
}

// RidgeRegression fits weighted ridge regression: it returns the
// coefficient vector (including an intercept as the last entry)
// minimizing Σ_i w_i (y_i − x_i·β − β0)² + λ‖β‖² (the intercept is not
// penalized). xs is row-major with one feature vector per sample.
func RidgeRegression(xs [][]float64, ys, weights []float64, lambda float64) ([]float64, error) {
	n := len(xs)
	if n == 0 {
		return nil, fmt.Errorf("stats: no samples")
	}
	if len(ys) != n || len(weights) != n {
		return nil, fmt.Errorf("stats: sample count mismatch")
	}
	d := len(xs[0])
	m := d + 1 // + intercept
	ata := make([][]float64, m)
	for i := range ata {
		ata[i] = make([]float64, m)
	}
	atb := make([]float64, m)
	xi := make([]float64, m)
	for s := 0; s < n; s++ {
		if len(xs[s]) != d {
			return nil, fmt.Errorf("stats: ragged feature matrix at row %d", s)
		}
		copy(xi, xs[s])
		xi[d] = 1
		w := weights[s]
		for i := 0; i < m; i++ {
			// lint:ignore floatcmp skipping exactly-zero design entries cannot change the sum
			if xi[i] == 0 {
				continue
			}
			wxi := w * xi[i]
			for j := i; j < m; j++ {
				ata[i][j] += wxi * xi[j]
			}
			atb[i] += wxi * ys[s]
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < i; j++ {
			ata[i][j] = ata[j][i]
		}
	}
	for i := 0; i < d; i++ { // penalize all but the intercept
		ata[i][i] += lambda
	}
	return SolveLinear(ata, atb)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
