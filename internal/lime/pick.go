package lime

import (
	"math"
	"sort"
)

// SubmodularPick selects k explanations that together cover the most
// important features with minimal redundancy — the SP-LIME procedure of
// the original paper (Ribeiro et al., KDD'16, Sec. 3.4). Feature
// importance I_j is the square root of the summed absolute weights of
// feature j across all explanations; the greedy pick maximizes the
// coverage Σ_{j covered} I_j, which is monotone submodular, so the
// greedy solution is within (1−1/e) of optimal.
//
// Returned indexes refer to the input slice, in pick order. k larger
// than the input is truncated.
func SubmodularPick(explanations []Explanation, k int) []int {
	if k <= 0 || len(explanations) == 0 {
		return nil
	}
	if k > len(explanations) {
		k = len(explanations)
	}
	// Global feature importances.
	importance := map[string]float64{}
	for _, ex := range explanations {
		for _, f := range ex.Features {
			importance[f.Name] += math.Abs(f.Weight)
		}
	}
	for name, v := range importance {
		importance[name] = math.Sqrt(v)
	}
	// Features "used" by an explanation: nonzero-weight entries.
	features := make([][]string, len(explanations))
	for i, ex := range explanations {
		for _, f := range ex.Features {
			// lint:ignore floatcmp lasso zeros are exactly zero; this is a sparsity test, not a tolerance
			if f.Weight != 0 {
				features[i] = append(features[i], f.Name)
			}
		}
	}
	covered := map[string]bool{}
	picked := make([]int, 0, k)
	taken := make([]bool, len(explanations))
	for len(picked) < k {
		best, bestGain := -1, -1.0
		for i := range explanations {
			if taken[i] {
				continue
			}
			gain := 0.0
			for _, name := range features[i] {
				if !covered[name] {
					gain += importance[name]
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break
		}
		taken[best] = true
		picked = append(picked, best)
		for _, name := range features[best] {
			covered[name] = true
		}
	}
	return picked
}

// TopFeatures trims an explanation to its k strongest features (by
// absolute weight), the form SP-LIME presents to users.
func TopFeatures(ex Explanation, k int) []FeatureWeight {
	fs := append([]FeatureWeight(nil), ex.Features...)
	sort.Slice(fs, func(i, j int) bool {
		return math.Abs(fs[i].Weight) > math.Abs(fs[j].Weight)
	})
	if k < len(fs) {
		fs = fs[:k]
	}
	return fs
}
