// Package lime implements the LIME baseline (Ribeiro, Singh, Guestrin —
// KDD'16) used in the paper's user study (Sec. 6.6): local, model-
// agnostic explanations of individual predictions. For a tabular
// instance, LIME samples perturbations in an interpretable binary space
// (keep vs. resample each attribute), queries the black-box model on the
// perturbed instances, and fits a weighted ridge surrogate whose
// coefficients are the per-attribute explanation weights.
package lime

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// Config parameterizes the explainer. Zero values select the usual LIME
// defaults scaled for small categorical datasets.
type Config struct {
	// Samples is the number of perturbed instances per explanation
	// (default 1000).
	Samples int
	// KernelWidth is the exponential-kernel width over the normalized
	// Hamming distance (default 0.75, LIME's default scaling).
	KernelWidth float64
	// Lambda is the ridge penalty of the surrogate fit (default 1e-3).
	Lambda float64
	// Seed drives perturbation sampling.
	Seed int64
}

func (c *Config) setDefaults() {
	if c.Samples <= 0 {
		c.Samples = 1000
	}
	if c.KernelWidth <= 0 {
		c.KernelWidth = 0.75
	}
	if c.Lambda <= 0 {
		c.Lambda = 1e-3
	}
}

// FeatureWeight is one attribute's contribution to a prediction: positive
// weights push the model toward the positive class for this instance's
// value of the attribute.
type FeatureWeight struct {
	Attr   int
	Name   string // "attr=value" of the explained instance
	Weight float64
}

// Explanation is the ranked surrogate weights for one instance.
type Explanation struct {
	Features  []FeatureWeight // sorted by decreasing |Weight|
	Intercept float64
	Row       []int32
}

// Explainer explains predictions of a black-box probability function over
// a dataset's schema.
type Explainer struct {
	d       *dataset.Dataset
	proba   func(row []int32) float64
	cfg     Config
	rng     *rand.Rand
	domains [][]int32 // observed value codes per attribute (for resampling)
}

// New builds an explainer. proba must return the model's positive-class
// probability (or score in [0,1]) for a value-coded row.
func New(d *dataset.Dataset, proba func(row []int32) float64, cfg Config) (*Explainer, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if proba == nil {
		return nil, fmt.Errorf("lime: nil probability function")
	}
	cfg.setDefaults()
	e := &Explainer{
		d:       d,
		proba:   proba,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		domains: make([][]int32, d.NumAttrs()),
	}
	// Empirical marginals: resample from the actual column values so
	// perturbations stay on-distribution.
	for a := 0; a < d.NumAttrs(); a++ {
		e.domains[a] = d.ColumnCodes(a)
	}
	return e, nil
}

// Explain produces the LIME explanation for one value-coded row.
func (e *Explainer) Explain(row []int32) (Explanation, error) {
	nAttrs := e.d.NumAttrs()
	if len(row) != nAttrs {
		return Explanation{}, fmt.Errorf("lime: row has %d values, schema has %d", len(row), nAttrs)
	}
	xs := make([][]float64, e.cfg.Samples)
	ys := make([]float64, e.cfg.Samples)
	ws := make([]float64, e.cfg.Samples)
	perturbed := make([]int32, nAttrs)
	for s := 0; s < e.cfg.Samples; s++ {
		z := make([]float64, nAttrs)
		copy(perturbed, row)
		changed := 0
		if s == 0 {
			// Always include the unperturbed instance.
			for a := range z {
				z[a] = 1
			}
		} else {
			for a := 0; a < nAttrs; a++ {
				if e.rng.Intn(2) == 0 {
					z[a] = 1
					continue
				}
				// Resample this attribute from its empirical marginal; the
				// draw may coincide with the original value, which still
				// counts as "kept" in the interpretable representation.
				col := e.domains[a]
				v := col[e.rng.Intn(len(col))]
				perturbed[a] = v
				if v == row[a] {
					z[a] = 1
				} else {
					changed++
				}
			}
		}
		dist := float64(changed) / float64(nAttrs)
		ws[s] = math.Exp(-dist * dist / (e.cfg.KernelWidth * e.cfg.KernelWidth))
		xs[s] = z
		ys[s] = e.proba(perturbed)
		copy(perturbed, row)
	}
	beta, err := stats.RidgeRegression(xs, ys, ws, e.cfg.Lambda)
	if err != nil {
		return Explanation{}, fmt.Errorf("lime: surrogate fit: %w", err)
	}
	out := Explanation{
		Features:  make([]FeatureWeight, nAttrs),
		Intercept: beta[nAttrs],
		Row:       append([]int32(nil), row...),
	}
	for a := 0; a < nAttrs; a++ {
		out.Features[a] = FeatureWeight{
			Attr:   a,
			Name:   e.d.Attrs[a].Name + "=" + e.d.Attrs[a].Values[row[a]],
			Weight: beta[a],
		}
	}
	sort.Slice(out.Features, func(i, j int) bool {
		wi, wj := math.Abs(out.Features[i].Weight), math.Abs(out.Features[j].Weight)
		// lint:ignore floatcmp exact tie-break on computed sort keys keeps ordering deterministic
		if wi != wj {
			return wi > wj
		}
		return out.Features[i].Attr < out.Features[j].Attr
	})
	return out, nil
}

// AggregateWeights sums |weight| per feature name over many explanations
// — the way a user study participant scans a stack of LIME outputs for
// recurring influential attribute values. Returns names sorted by
// decreasing total weight.
func AggregateWeights(explanations []Explanation) []FeatureWeight {
	totals := map[string]float64{}
	attrs := map[string]int{}
	for _, ex := range explanations {
		for _, f := range ex.Features {
			totals[f.Name] += math.Abs(f.Weight)
			attrs[f.Name] = f.Attr
		}
	}
	out := make([]FeatureWeight, 0, len(totals))
	for name, w := range totals {
		out = append(out, FeatureWeight{Attr: attrs[name], Name: name, Weight: w})
	}
	sort.Slice(out, func(i, j int) bool {
		// lint:ignore floatcmp exact tie-break on computed sort keys keeps ordering deterministic
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Name < out[j].Name
	})
	return out
}
