package lime

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// buildData builds a dataset over three attributes where only "key"
// matters to the model under test.
func buildData(t testing.TB, n int, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := dataset.NewBuilder("key", "noise1", "noise2")
	for i := 0; i < n; i++ {
		if err := b.Add(
			fmt.Sprint(rng.Intn(2)),
			fmt.Sprint(rng.Intn(3)),
			fmt.Sprint(rng.Intn(4)),
		); err != nil {
			t.Fatal(err)
		}
	}
	d, err := b.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestExplainIdentifiesDecisiveFeature(t *testing.T) {
	d := buildData(t, 300, 1)
	keyIdx := d.AttrIndex("key")
	oneCode := int32(d.Attrs[keyIdx].ValueCode("1"))
	model := func(row []int32) float64 {
		if row[keyIdx] == oneCode {
			return 0.95
		}
		return 0.05
	}
	e, err := New(d, model, Config{Samples: 600, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Explain an instance with key=1: the key feature must dominate with
	// a positive weight.
	var row []int32
	for r := range d.Rows {
		if d.Rows[r][keyIdx] == oneCode {
			row = d.Rows[r]
			break
		}
	}
	ex, err := e.Explain(row)
	if err != nil {
		t.Fatal(err)
	}
	if got := ex.Features[0].Name; got != "key=1" {
		t.Errorf("top feature = %s, want key=1 (weights %v)", got, ex.Features)
	}
	if ex.Features[0].Weight <= 0 {
		t.Errorf("key=1 weight = %v, want positive", ex.Features[0].Weight)
	}
	// Noise features carry much smaller weight.
	if math.Abs(ex.Features[1].Weight) > 0.3*ex.Features[0].Weight {
		t.Errorf("noise weight %v too close to key weight %v",
			ex.Features[1].Weight, ex.Features[0].Weight)
	}
}

func TestExplainNegativeDirection(t *testing.T) {
	d := buildData(t, 300, 2)
	keyIdx := d.AttrIndex("key")
	zeroCode := int32(d.Attrs[keyIdx].ValueCode("0"))
	model := func(row []int32) float64 {
		if row[keyIdx] == zeroCode {
			return 0.9
		}
		return 0.1
	}
	e, err := New(d, model, Config{Samples: 600, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Explain an instance with key=1 under a model that rewards key=0:
	// weight for key=1 must be negative.
	var row []int32
	for r := range d.Rows {
		if d.Rows[r][keyIdx] != zeroCode {
			row = d.Rows[r]
			break
		}
	}
	ex, err := e.Explain(row)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Features[0].Name != "key=1" || ex.Features[0].Weight >= 0 {
		t.Errorf("expected dominant negative weight for key=1, got %v", ex.Features[0])
	}
}

func TestExplainerValidation(t *testing.T) {
	d := buildData(t, 10, 3)
	if _, err := New(d, nil, Config{}); err == nil {
		t.Error("nil model accepted")
	}
	e, err := New(d, func([]int32) float64 { return 0.5 }, Config{Samples: 50})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Explain([]int32{0}); err == nil {
		t.Error("short row accepted")
	}
}

func TestExplainDeterministicGivenSeed(t *testing.T) {
	d := buildData(t, 100, 4)
	model := func(row []int32) float64 { return float64(row[0]) }
	run := func() Explanation {
		e, err := New(d, model, Config{Samples: 200, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		ex, err := e.Explain(d.Rows[0])
		if err != nil {
			t.Fatal(err)
		}
		return ex
	}
	a, b := run(), run()
	for i := range a.Features {
		if a.Features[i] != b.Features[i] {
			t.Fatalf("same-seed explanations differ at %d", i)
		}
	}
}

func TestAggregateWeights(t *testing.T) {
	exps := []Explanation{
		{Features: []FeatureWeight{{Attr: 0, Name: "x=1", Weight: 0.5}, {Attr: 1, Name: "y=0", Weight: -0.2}}},
		{Features: []FeatureWeight{{Attr: 0, Name: "x=1", Weight: 0.4}, {Attr: 1, Name: "y=1", Weight: 0.1}}},
	}
	agg := AggregateWeights(exps)
	if agg[0].Name != "x=1" || !almost(agg[0].Weight, 0.9) {
		t.Errorf("top aggregate = %v, want x=1 with 0.9", agg[0])
	}
	// Absolute values are summed.
	for _, f := range agg {
		if f.Name == "y=0" && !almost(f.Weight, 0.2) {
			t.Errorf("y=0 aggregate = %v, want 0.2", f.Weight)
		}
	}
	if got := AggregateWeights(nil); len(got) != 0 {
		t.Errorf("empty aggregate = %v", got)
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
