package lime

import "testing"

func mkExp(weights map[string]float64) Explanation {
	var ex Explanation
	attr := 0
	for name, w := range weights {
		ex.Features = append(ex.Features, FeatureWeight{Attr: attr, Name: name, Weight: w})
		attr++
	}
	return ex
}

func TestSubmodularPickPrefersCoverage(t *testing.T) {
	exps := []Explanation{
		mkExp(map[string]float64{"a=1": 0.9}),              // 0: covers a only
		mkExp(map[string]float64{"a=1": 0.8, "b=1": 0.7}),  // 1: covers a and b
		mkExp(map[string]float64{"a=1": 0.85, "b=1": 0.6}), // 2: redundant with 1
		mkExp(map[string]float64{"c=1": 0.2}),              // 3: covers c only
	}
	picked := SubmodularPick(exps, 2)
	if len(picked) != 2 {
		t.Fatalf("picked %d, want 2", len(picked))
	}
	// First pick: the widest coverage (explanation 1).
	if picked[0] != 1 {
		t.Errorf("first pick = %d, want 1", picked[0])
	}
	// Second pick: c is the only uncovered feature, so explanation 3
	// beats the redundant 0 and 2 despite their larger weights.
	if picked[1] != 3 {
		t.Errorf("second pick = %d, want 3 (novel coverage)", picked[1])
	}
}

func TestSubmodularPickEdges(t *testing.T) {
	if got := SubmodularPick(nil, 3); got != nil {
		t.Errorf("pick on empty = %v", got)
	}
	exps := []Explanation{mkExp(map[string]float64{"a=1": 1})}
	if got := SubmodularPick(exps, 0); got != nil {
		t.Errorf("k=0 = %v", got)
	}
	got := SubmodularPick(exps, 5)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("k>n = %v", got)
	}
	// No duplicates for larger k.
	exps = append(exps, mkExp(map[string]float64{"b=1": 1}), mkExp(map[string]float64{"c=1": 1}))
	got = SubmodularPick(exps, 3)
	seen := map[int]bool{}
	for _, i := range got {
		if seen[i] {
			t.Fatal("duplicate pick")
		}
		seen[i] = true
	}
}

func TestTopFeatures(t *testing.T) {
	ex := mkExp(map[string]float64{"a=1": 0.1, "b=1": -0.9, "c=1": 0.5})
	top := TopFeatures(ex, 2)
	if len(top) != 2 || top[0].Name != "b=1" || top[1].Name != "c=1" {
		t.Errorf("TopFeatures = %v", top)
	}
	// Input order preserved in the original explanation.
	if len(ex.Features) != 3 {
		t.Error("TopFeatures mutated the explanation")
	}
	all := TopFeatures(ex, 10)
	if len(all) != 3 {
		t.Errorf("k>len = %d features", len(all))
	}
}
