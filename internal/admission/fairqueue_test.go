package admission

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func drain(q *FairQueue[string], n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		v, ok := q.Pop()
		if !ok {
			break
		}
		out = append(out, v)
	}
	return out
}

func TestFairQueueFIFOWithinTenant(t *testing.T) {
	q := NewFairQueue[string](16, nil)
	for i := 0; i < 4; i++ {
		if !q.Push("a", fmt.Sprintf("a%d", i)) {
			t.Fatalf("push %d refused", i)
		}
	}
	got := drain(q, 4)
	if fmt.Sprint(got) != "[a0 a1 a2 a3]" {
		t.Fatalf("single-tenant order = %v", got)
	}
}

func TestFairQueueInterleavesEqualWeights(t *testing.T) {
	q := NewFairQueue[string](16, nil)
	// a bursts 4 items, then b pushes 2: b must not wait behind the
	// whole burst.
	for i := 0; i < 4; i++ {
		q.Push("a", fmt.Sprintf("a%d", i))
	}
	q.Push("b", "b0")
	q.Push("b", "b1")
	got := drain(q, 6)
	// With equal weights, b's items interleave ahead of a's backlog tail.
	var posB1 int
	for i, v := range got {
		if v == "b1" {
			posB1 = i
		}
	}
	if posB1 >= 4 {
		t.Fatalf("b1 served at position %d of %v — burst starved the other tenant", posB1, got)
	}
	// Per-tenant FIFO holds inside the interleave.
	seenA := -1
	for _, v := range got {
		if v[0] == 'a' {
			n := int(v[1] - '0')
			if n <= seenA {
				t.Fatalf("a's items reordered: %v", got)
			}
			seenA = n
		}
	}
}

func TestFairQueueRespectsWeights(t *testing.T) {
	weights := map[string]float64{"heavy": 3, "light": 1}
	q := NewFairQueue[string](64, func(tenant string) float64 { return weights[tenant] })
	for i := 0; i < 12; i++ {
		q.Push("heavy", fmt.Sprintf("h%d", i))
		q.Push("light", fmt.Sprintf("l%d", i))
	}
	first8 := drain(q, 8)
	heavy := 0
	for _, v := range first8 {
		if v[0] == 'h' {
			heavy++
		}
	}
	// A 3:1 weight split should give heavy ~6 of the first 8 slots.
	if heavy < 5 {
		t.Fatalf("heavy got %d of first 8 slots (%v), want >= 5 at weight 3:1", heavy, first8)
	}
}

func TestFairQueueCapacityBound(t *testing.T) {
	q := NewFairQueue[int](2, nil)
	if !q.Push("a", 1) || !q.Push("b", 2) {
		t.Fatalf("pushes under capacity refused")
	}
	if q.Push("c", 3) {
		t.Fatalf("push over capacity accepted")
	}
	if q.Len() != 2 || q.Cap() != 2 {
		t.Fatalf("Len/Cap = %d/%d", q.Len(), q.Cap())
	}
}

func TestFairQueueCloseDrainsThenStops(t *testing.T) {
	q := NewFairQueue[int](8, nil)
	q.Push("a", 1)
	q.Push("a", 2)
	q.Close()
	if q.Push("a", 3) {
		t.Fatalf("push after close accepted")
	}
	if v, ok := q.Pop(); !ok || v != 1 {
		t.Fatalf("first pop after close = %v,%v", v, ok)
	}
	if v, ok := q.Pop(); !ok || v != 2 {
		t.Fatalf("second pop after close = %v,%v", v, ok)
	}
	if _, ok := q.Pop(); ok {
		t.Fatalf("pop past the drained backlog reported ok")
	}
}

func TestFairQueueBlockingPop(t *testing.T) {
	q := NewFairQueue[int](8, nil)
	got := make(chan int, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, ok := q.Pop()
		if ok {
			got <- v
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the popper block
	q.Push("a", 42)
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("blocked pop got %d", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("blocked pop never woke")
	}
	wg.Wait()
}

func TestFairQueueConcurrentPushPop(t *testing.T) {
	q := NewFairQueue[int](1024, nil)
	const perTenant = 100
	var pushers sync.WaitGroup
	for _, tenant := range []string{"a", "b", "c", "d"} {
		pushers.Add(1)
		go func(tenant string) {
			defer pushers.Done()
			for i := 0; i < perTenant; i++ {
				for !q.Push(tenant, i) {
					time.Sleep(time.Microsecond)
				}
			}
		}(tenant)
	}
	done := make(chan int)
	go func() {
		n := 0
		for {
			if _, ok := q.Pop(); !ok {
				done <- n
				return
			}
			n++
		}
	}()
	pushers.Wait()
	for q.Len() > 0 {
		time.Sleep(time.Millisecond)
	}
	q.Close()
	if n := <-done; n != 4*perTenant {
		t.Fatalf("popped %d items, want %d", n, 4*perTenant)
	}
}
