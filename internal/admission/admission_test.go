package admission

import (
	"errors"
	"testing"
	"time"
)

// tick is a controllable clock for the token bucket.
type tick struct{ now time.Time }

func (t *tick) Now() time.Time { return t.now }

func TestAdmitRateLimitAndRefill(t *testing.T) {
	clk := &tick{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
	c := NewController(Limits{JobsPerSec: 2, Burst: 2}, nil, clk.Now)

	if err := c.Admit("alpha", 0); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	if err := c.Admit("alpha", 0); err != nil {
		t.Fatalf("second admit (burst): %v", err)
	}
	err := c.Admit("alpha", 0)
	var d *Denied
	if !errors.As(err, &d) {
		t.Fatalf("third admit over rate: err = %v, want *Denied", err)
	}
	if d.Reason != "rate" || d.RetryAfter < time.Second {
		t.Fatalf("denial = %+v, want rate with >= 1s Retry-After", d)
	}
	// Half a second refills one token at 2/s.
	clk.now = clk.now.Add(500 * time.Millisecond)
	if err := c.Admit("alpha", 0); err != nil {
		t.Fatalf("admit after refill: %v", err)
	}
	// Other tenants have their own buckets.
	if err := c.Admit("beta", 0); err != nil {
		t.Fatalf("independent tenant throttled: %v", err)
	}
}

func TestAdmitActiveJobQuotaAndRelease(t *testing.T) {
	c := NewController(Limits{MaxActive: 1}, nil, nil)
	if err := c.Admit("alpha", 0); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	err := c.Admit("alpha", 0)
	var d *Denied
	if !errors.As(err, &d) || d.Reason != "active-jobs" {
		t.Fatalf("second admit: err = %v, want active-jobs denial", err)
	}
	c.Release("alpha", 0)
	if err := c.Admit("alpha", 0); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
}

func TestAdmitByteQuota(t *testing.T) {
	c := NewController(Limits{MaxBytes: 100}, nil, nil)
	if err := c.Admit("alpha", 80); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	err := c.Admit("alpha", 30)
	var d *Denied
	if !errors.As(err, &d) || d.Reason != "bytes" {
		t.Fatalf("over-quota admit: err = %v, want bytes denial", err)
	}
	c.Release("alpha", 80)
	if err := c.Admit("alpha", 30); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
}

func TestPerTenantOverridesAndWeight(t *testing.T) {
	c := NewController(Limits{Weight: 1, MaxActive: 1},
		map[string]Limits{"gold": {Weight: 4}}, nil)
	if got := c.Weight("gold"); got != 4 {
		t.Fatalf("Weight(gold) = %v, want 4", got)
	}
	if got := c.Weight("unseen"); got != 1 {
		t.Fatalf("Weight(unseen) = %v, want default 1", got)
	}
	// gold has no MaxActive override → unlimited.
	for i := 0; i < 5; i++ {
		if err := c.Admit("gold", 0); err != nil {
			t.Fatalf("gold admit %d: %v", i, err)
		}
	}
	if err := c.Admit("iron", 0); err != nil {
		t.Fatalf("iron first admit: %v", err)
	}
	if err := c.Admit("iron", 0); err == nil {
		t.Fatalf("iron got past the default MaxActive=1")
	}
}

func TestStatsSortedByTenant(t *testing.T) {
	c := NewController(Limits{}, nil, nil)
	for _, tenant := range []string{"zeta", "alpha", "mid"} {
		if err := c.Admit(tenant, 10); err != nil {
			t.Fatalf("admit %s: %v", tenant, err)
		}
	}
	st := c.Stats()
	if len(st) != 3 || st[0].Tenant != "alpha" || st[1].Tenant != "mid" || st[2].Tenant != "zeta" {
		t.Fatalf("stats not sorted by tenant: %+v", st)
	}
	if st[0].Admitted != 1 || st[0].ActiveBytes != 10 {
		t.Fatalf("alpha stats wrong: %+v", st[0])
	}
}

func TestEmptyTenantMapsToDefault(t *testing.T) {
	c := NewController(Limits{MaxActive: 1}, nil, nil)
	if err := c.Admit("", 0); err != nil {
		t.Fatalf("admit: %v", err)
	}
	if err := c.Admit(DefaultTenant, 0); err == nil {
		t.Fatalf("anonymous and %q tenants have separate budgets", DefaultTenant)
	}
	st := c.Stats()
	if len(st) != 1 || st[0].Tenant != DefaultTenant {
		t.Fatalf("stats = %+v, want single %q row", st, DefaultTenant)
	}
}

func TestParseLimits(t *testing.T) {
	defaults, per, err := ParseLimits("*:rate=10;alpha:weight=3,rate=50,burst=100;beta:jobs=2,bytes=1048576")
	if err != nil {
		t.Fatalf("ParseLimits: %v", err)
	}
	if defaults.JobsPerSec != 10 {
		t.Fatalf("defaults = %+v", defaults)
	}
	if a := per["alpha"]; a.Weight != 3 || a.JobsPerSec != 50 || a.Burst != 100 {
		t.Fatalf("alpha = %+v", a)
	}
	if b := per["beta"]; b.MaxActive != 2 || b.MaxBytes != 1<<20 {
		t.Fatalf("beta = %+v", b)
	}
	if _, _, err := ParseLimits("noseparator"); err == nil {
		t.Fatalf("malformed clause accepted")
	}
	if _, _, err := ParseLimits("alpha:bogus=1"); err == nil {
		t.Fatalf("unknown key accepted")
	}
	if d, per, err := ParseLimits(""); err != nil || d != (Limits{}) || len(per) != 0 {
		t.Fatalf("empty flag: %+v %+v %v", d, per, err)
	}
}
