// Package admission is the multi-tenant admission-control layer: it
// decides, per tenant, whether a job submission may enter the engine at
// all (token-bucket rate limits, active-job and byte quotas) and in
// what order admitted work is served (weighted fair queueing). The
// serving layer consults a Controller before enqueueing and surfaces a
// denial as HTTP 429 with a Retry-After hint; the FairQueue replaces
// the engine's FIFO so one tenant's burst cannot starve the others.
//
// The package is self-contained — no imports from the jobs or server
// layers — so its tests and the chaos harness can exercise admission
// policy in isolation.
package admission

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DefaultTenant is the tenant bucket for requests that carry no tenant
// identity.
const DefaultTenant = "default"

// Limits is one tenant's admission policy. Zero-valued fields are
// unlimited (rate, jobs, bytes) or defaulted (weight 1).
type Limits struct {
	// Weight is the tenant's fair-queue share; tenants drain the queue in
	// proportion to their weights. Defaults to 1 when <= 0.
	Weight float64 `json:"weight,omitempty"`
	// JobsPerSec is the token-bucket refill rate for submissions;
	// <= 0 means unlimited.
	JobsPerSec float64 `json:"jobs_per_sec,omitempty"`
	// Burst is the bucket capacity; defaults to max(1, JobsPerSec).
	Burst float64 `json:"burst,omitempty"`
	// MaxActive bounds the tenant's concurrently admitted (queued or
	// running) jobs; <= 0 means unlimited.
	MaxActive int `json:"max_active,omitempty"`
	// MaxBytes bounds the total dataset bytes the tenant may have
	// admitted at once; <= 0 means unlimited.
	MaxBytes int64 `json:"max_bytes,omitempty"`
}

// Denied is the admission refusal: which tenant, why, and how long to
// back off. The serving layer maps it to 429 with a Retry-After header.
type Denied struct {
	Tenant     string
	Reason     string // "rate" | "active-jobs" | "bytes"
	RetryAfter time.Duration
}

func (d *Denied) Error() string {
	return fmt.Sprintf("admission: tenant %q denied (%s), retry after %s", d.Tenant, d.Reason, d.RetryAfter)
}

// TenantStats is one tenant's row in /statsz, sorted by Tenant in
// Controller.Stats — part of the statsz determinism contract.
type TenantStats struct {
	Tenant        string  `json:"tenant"`
	Weight        float64 `json:"weight"`
	ActiveJobs    int     `json:"active_jobs"`
	ActiveBytes   int64   `json:"active_bytes"`
	Admitted      int64   `json:"admitted"`
	DeniedRate    int64   `json:"denied_rate"`
	DeniedJobs    int64   `json:"denied_jobs"`
	DeniedBytes   int64   `json:"denied_bytes"`
	TokensPending float64 `json:"tokens_pending"`
}

// tenantState is the mutable half of one tenant's bucket.
type tenantState struct {
	limits Limits

	tokens     float64
	lastRefill time.Time

	activeJobs  int
	activeBytes int64

	admitted    int64
	deniedRate  int64
	deniedJobs  int64
	deniedBytes int64
}

// Controller applies per-tenant admission policy. All methods are safe
// for concurrent use.
type Controller struct {
	defaults Limits
	now      func() time.Time

	mu      sync.Mutex
	tenants map[string]*tenantState
}

// NewController builds a controller with a default policy and optional
// per-tenant overrides. A nil now uses the real clock.
func NewController(defaults Limits, perTenant map[string]Limits, now func() time.Time) *Controller {
	if now == nil {
		now = time.Now
	}
	c := &Controller{defaults: defaults, now: now, tenants: make(map[string]*tenantState)}
	for tenant, lim := range perTenant {
		c.tenants[tenant] = c.newState(lim)
	}
	return c
}

func (c *Controller) newState(lim Limits) *tenantState {
	if lim.Weight <= 0 {
		lim.Weight = 1
	}
	if lim.JobsPerSec > 0 && lim.Burst <= 0 {
		lim.Burst = math.Max(1, lim.JobsPerSec)
	}
	return &tenantState{limits: lim, tokens: lim.Burst, lastRefill: c.now()}
}

// state returns (creating on first sight) the tenant's bucket. Caller
// holds c.mu.
func (c *Controller) state(tenant string) *tenantState {
	ts, ok := c.tenants[tenant]
	if !ok {
		ts = c.newState(c.defaults)
		c.tenants[tenant] = ts
	}
	return ts
}

// refill tops up the token bucket for elapsed time. Caller holds c.mu.
func (ts *tenantState) refill(now time.Time) {
	if ts.limits.JobsPerSec <= 0 {
		return
	}
	elapsed := now.Sub(ts.lastRefill).Seconds()
	if elapsed <= 0 {
		return
	}
	ts.tokens = math.Min(ts.limits.Burst, ts.tokens+elapsed*ts.limits.JobsPerSec)
	ts.lastRefill = now
}

// Admit charges one job of size bytes against tenant's budget. On
// success the job occupies one active slot and bytes quota until
// Release. On refusal it returns a *Denied with a Retry-After hint and
// charges nothing.
func (c *Controller) Admit(tenant string, bytes int64) error {
	if tenant == "" {
		tenant = DefaultTenant
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ts := c.state(tenant)
	now := c.now()
	ts.refill(now)

	if lim := ts.limits; lim.MaxActive > 0 && ts.activeJobs >= lim.MaxActive {
		ts.deniedJobs++
		return &Denied{Tenant: tenant, Reason: "active-jobs", RetryAfter: time.Second}
	}
	if lim := ts.limits; lim.MaxBytes > 0 && ts.activeBytes+bytes > lim.MaxBytes {
		ts.deniedBytes++
		return &Denied{Tenant: tenant, Reason: "bytes", RetryAfter: time.Second}
	}
	if lim := ts.limits; lim.JobsPerSec > 0 && ts.tokens < 1 {
		ts.deniedRate++
		wait := time.Duration((1 - ts.tokens) / lim.JobsPerSec * float64(time.Second))
		if wait < time.Second {
			wait = time.Second // Retry-After has whole-second resolution
		}
		return &Denied{Tenant: tenant, Reason: "rate", RetryAfter: wait}
	}
	if ts.limits.JobsPerSec > 0 {
		ts.tokens--
	}
	ts.activeJobs++
	ts.activeBytes += bytes
	ts.admitted++
	return nil
}

// Release returns a previously admitted job's slot and bytes. The
// serving layer calls it when the job reaches a terminal state (or when
// the enqueue that followed admission failed).
func (c *Controller) Release(tenant string, bytes int64) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ts := c.state(tenant)
	if ts.activeJobs > 0 {
		ts.activeJobs--
	}
	ts.activeBytes -= bytes
	if ts.activeBytes < 0 {
		ts.activeBytes = 0
	}
}

// Weight returns the tenant's fair-queue weight (the default policy's
// weight for tenants never seen).
func (c *Controller) Weight(tenant string) float64 {
	if tenant == "" {
		tenant = DefaultTenant
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ts, ok := c.tenants[tenant]; ok {
		return ts.limits.Weight
	}
	if c.defaults.Weight > 0 {
		return c.defaults.Weight
	}
	return 1
}

// Stats snapshots every tenant bucket, sorted by tenant name.
func (c *Controller) Stats() []TenantStats {
	c.mu.Lock()
	out := make([]TenantStats, 0, len(c.tenants))
	now := c.now()
	for tenant, ts := range c.tenants {
		ts.refill(now)
		out = append(out, TenantStats{
			Tenant:        tenant,
			Weight:        ts.limits.Weight,
			ActiveJobs:    ts.activeJobs,
			ActiveBytes:   ts.activeBytes,
			Admitted:      ts.admitted,
			DeniedRate:    ts.deniedRate,
			DeniedJobs:    ts.deniedJobs,
			DeniedBytes:   ts.deniedBytes,
			TokensPending: ts.tokens,
		})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// ParseLimits parses the -tenant-quotas flag value: semicolon-separated
// tenant clauses, each "tenant:key=value,key=value" with keys weight,
// rate, burst, jobs, bytes. The tenant "*" sets the default policy for
// tenants not listed. Example:
//
//	*:rate=10;alpha:weight=3,rate=50,burst=100;beta:jobs=2,bytes=1048576
func ParseLimits(s string) (defaults Limits, perTenant map[string]Limits, err error) {
	perTenant = make(map[string]Limits)
	if strings.TrimSpace(s) == "" {
		return defaults, perTenant, nil
	}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		tenant, spec, ok := strings.Cut(clause, ":")
		if !ok || strings.TrimSpace(tenant) == "" {
			return defaults, nil, fmt.Errorf("admission: malformed quota clause %q (want tenant:key=value,...)", clause)
		}
		tenant = strings.TrimSpace(tenant)
		var lim Limits
		for _, kv := range strings.Split(spec, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return defaults, nil, fmt.Errorf("admission: malformed quota entry %q in clause %q", kv, clause)
			}
			switch strings.TrimSpace(k) {
			case "weight":
				lim.Weight, err = strconv.ParseFloat(v, 64)
			case "rate":
				lim.JobsPerSec, err = strconv.ParseFloat(v, 64)
			case "burst":
				lim.Burst, err = strconv.ParseFloat(v, 64)
			case "jobs":
				lim.MaxActive, err = strconv.Atoi(v)
			case "bytes":
				lim.MaxBytes, err = strconv.ParseInt(v, 10, 64)
			default:
				return defaults, nil, fmt.Errorf("admission: unknown quota key %q in clause %q", k, clause)
			}
			if err != nil {
				return defaults, nil, fmt.Errorf("admission: quota entry %q: %w", kv, err)
			}
		}
		if tenant == "*" {
			defaults = lim
		} else {
			perTenant[tenant] = lim
		}
	}
	return defaults, perTenant, nil
}
