package admission

import (
	"container/heap"
	"sync"
)

// FairQueue is a weighted fair queue: items are tagged with a tenant at
// Push, and Pop serves tenants in proportion to their weights using
// virtual-time scheduling (each item of a weight-w tenant advances that
// tenant's virtual clock by 1/w; the tenant with the smallest head
// finish time drains next). A burst from one tenant therefore queues
// behind its own earlier work instead of starving everyone else, while
// a lone tenant still gets the full capacity.
//
// The queue is bounded: Push refuses beyond cap items. Pop blocks until
// an item arrives or Close is called; after Close, Pop drains the
// backlog and then reports false. All methods are safe for concurrent
// use.
type FairQueue[T any] struct {
	capacity int
	weightOf func(tenant string) float64

	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
	size   int
	vtime  float64 // global virtual time: finish tag of the last item served

	tenants map[string]*tenantQueue[T]
	active  tenantHeap[T] // tenants with a non-empty backlog, by head finish tag
}

// tenantQueue is one tenant's FIFO backlog plus its virtual-time state.
type tenantQueue[T any] struct {
	tenant string
	items  []fairItem[T]
	// lastFinish is the finish tag of the tenant's most recently tagged
	// item; a newly arriving item starts at max(vtime, lastFinish).
	lastFinish float64
	heapIndex  int // position in the active heap, -1 when idle
}

type fairItem[T any] struct {
	value  T
	finish float64
}

// NewFairQueue builds a queue bounded to capacity items. weightOf maps
// a tenant to its weight (values <= 0 are treated as 1); nil gives every
// tenant weight 1.
func NewFairQueue[T any](capacity int, weightOf func(tenant string) float64) *FairQueue[T] {
	if capacity <= 0 {
		capacity = 64
	}
	if weightOf == nil {
		weightOf = func(string) float64 { return 1 }
	}
	q := &FairQueue[T]{
		capacity: capacity,
		weightOf: weightOf,
		tenants:  make(map[string]*tenantQueue[T]),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues item for tenant. It never blocks: false means the queue
// is at capacity (or closed) and the caller should shed load.
func (q *FairQueue[T]) Push(tenant string, item T) bool {
	if tenant == "" {
		tenant = DefaultTenant
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.size >= q.capacity {
		return false
	}
	tq, ok := q.tenants[tenant]
	if !ok {
		tq = &tenantQueue[T]{tenant: tenant, heapIndex: -1}
		q.tenants[tenant] = tq
	}
	w := q.weightOf(tenant)
	if w <= 0 {
		w = 1
	}
	start := q.vtime
	if tq.lastFinish > start {
		start = tq.lastFinish
	}
	tq.lastFinish = start + 1/w
	tq.items = append(tq.items, fairItem[T]{value: item, finish: tq.lastFinish})
	if tq.heapIndex < 0 {
		heap.Push(&q.active, tq)
	}
	q.size++
	q.cond.Signal()
	return true
}

// Pop removes and returns the next item in weighted fair order,
// blocking while the queue is empty. It reports false only after Close
// once the backlog is drained.
func (q *FairQueue[T]) Pop() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.cond.Wait()
	}
	var zero T
	if q.size == 0 {
		return zero, false
	}
	tq := q.active[0]
	it := tq.items[0]
	tq.items[0] = fairItem[T]{} // release the reference
	tq.items = tq.items[1:]
	q.size--
	q.vtime = it.finish
	if len(tq.items) == 0 {
		heap.Pop(&q.active)
		// Reclaim the drained backlog's array; the tenant record itself
		// stays so lastFinish carries over.
		tq.items = nil
	} else {
		heap.Fix(&q.active, 0)
	}
	return it.value, true
}

// Len returns the number of queued items.
func (q *FairQueue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// Cap returns the queue capacity.
func (q *FairQueue[T]) Cap() int { return q.capacity }

// Close stops accepting pushes and wakes every blocked Pop. Idempotent.
func (q *FairQueue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// tenantHeap orders active tenants by their head item's finish tag;
// ties break by tenant name so the drain order is deterministic.
type tenantHeap[T any] []*tenantQueue[T]

func (h tenantHeap[T]) Len() int { return len(h) }
func (h tenantHeap[T]) Less(i, j int) bool {
	fi, fj := h[i].items[0].finish, h[j].items[0].finish
	// lint:ignore floatcmp finish tags are ordering keys, not measurements; exact inequality is the heap order and ties fall through to the tenant-name tiebreak
	if fi != fj {
		return fi < fj
	}
	return h[i].tenant < h[j].tenant
}
func (h tenantHeap[T]) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIndex = i
	h[j].heapIndex = j
}
func (h *tenantHeap[T]) Push(x any) {
	tq := x.(*tenantQueue[T])
	tq.heapIndex = len(*h)
	*h = append(*h, tq)
}
func (h *tenantHeap[T]) Pop() any {
	old := *h
	n := len(old)
	tq := old[n-1]
	old[n-1] = nil
	tq.heapIndex = -1
	*h = old[:n-1]
	return tq
}
