package server

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/jobs"
	"repro/internal/registry"
)

// spillSeed keeps the fault-injection e2e arms deterministic while the
// fault-injection verify tier varies them via DIVEX_FAULT_SEED.
func spillSeed(t *testing.T) int64 {
	t.Helper()
	s := os.Getenv("DIVEX_FAULT_SEED")
	if s == "" {
		return 1
	}
	var seed int64
	for _, c := range s {
		if c < '0' || c > '9' {
			t.Fatalf("DIVEX_FAULT_SEED=%q is not a positive integer", s)
		}
		seed = seed*10 + int64(c-'0')
	}
	return seed
}

// durableSpillServer wires the full -store-dir + -spill-dir stack: a
// memory-budgeted sharded registry whose evictions spill to spillDir
// through fsys, and a durable engine recovering the WAL in walDir.
func durableSpillServer(t *testing.T, walDir, spillDir string, memBudget int64, fsys faultfs.FS) http.Handler {
	t.Helper()
	reg := registry.NewSharded(memBudget, 4)
	sp, err := registry.OpenSpill(spillDir, 0, fsys)
	if err != nil {
		t.Fatal(err)
	}
	reg.AttachSpill(sp, CSVOptions())
	engine, err := jobs.New(jobs.Config{Registry: reg, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Recover(walDir); err != nil {
		t.Fatal(err)
	}
	return newTestServer(t, Options{Registry: reg, Engine: engine}).Handler()
}

// fillerCSV is a parseable upload bulky enough that a handful of them
// overflow a small registry budget and force evictions.
func fillerCSV(i int) string {
	return fmt.Sprintf("a,b\nf%d,%s\n", i, strings.Repeat("z", 2048))
}

// evictUnderPressure uploads filler datasets until hash's spill file
// appears — the memory-pressure eviction of the acceptance scenario.
func evictUnderPressure(t *testing.T, h http.Handler, spillDir, hash string) {
	t.Helper()
	for i := 0; i < 16; i++ {
		if w := do(t, h, http.MethodPost, "/datasets", fillerCSV(i)); w.Code != http.StatusOK {
			t.Fatalf("filler upload = %d: %s", w.Code, w.Body.String())
		}
		if _, err := os.Stat(filepath.Join(spillDir, registry.SpillFileName(registry.Hash(hash)))); err == nil {
			return
		}
	}
	t.Fatalf("dataset %s never spilled under memory pressure", hash)
}

// runJobToDone registers sampleCSV, submits a job over it, waits for
// completion and returns (dataset hash, job id, result bytes).
func runJobToDone(t *testing.T, h http.Handler) (string, string, []byte) {
	t.Helper()
	w := do(t, h, http.MethodPost, "/datasets", sampleCSV)
	if w.Code != http.StatusOK {
		t.Fatalf("POST /datasets = %d: %s", w.Code, w.Body.String())
	}
	hash := decode[datasetJSON](t, w).Hash
	w = do(t, h, http.MethodPost, "/jobs?dataset="+hash+"&support=0.05&metric=FPR,FNR&eps=0.01&alpha=0.1", "")
	if w.Code != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d: %s", w.Code, w.Body.String())
	}
	id := decode[jobJSON](t, w).ID
	if st := pollJob(t, h, id); st.State != "done" {
		t.Fatalf("job: %+v", st)
	}
	w = do(t, h, http.MethodGet, "/jobs/"+id+"/result", "")
	if w.Code != http.StatusOK {
		t.Fatalf("pre-crash GET result = %d: %s", w.Code, w.Body.String())
	}
	return hash, id, append([]byte(nil), w.Body.Bytes()...)
}

// TestSpillRestartServesByteIdenticalResult is the acceptance scenario
// for the disk tier, end to end over HTTP with faultfs active: the
// dataset is evicted under memory pressure (with a transient disk fault
// injected mid-spill), the server crashes, and the restarted server —
// with NOBODY re-uploading anything — serves GET /jobs/{id}/result
// byte-identical to the pre-crash response by re-mining from the
// checksummed spill file.
func TestSpillRestartServesByteIdenticalResult(t *testing.T) {
	walDir, spillDir := t.TempDir(), t.TempDir()
	inj := faultfs.NewInjector(faultfs.OS(), spillSeed(t))
	// One transient fault mid-spill: the retry loop must absorb it.
	inj.Inject(faultfs.Fault{Op: faultfs.OpWrite, Path: ".tmp-", Err: syscall.EINTR, Short: 9})
	h1 := durableSpillServer(t, walDir, spillDir, 4096, inj)

	hash, id, before := runJobToDone(t, h1)
	evictUnderPressure(t, h1, spillDir, hash)

	// Crash: the restarted process sees the synced WAL and the spill dir.
	h2 := durableSpillServer(t, snapshotWAL(t, walDir), spillDir, 4096,
		faultfs.NewInjector(faultfs.OS(), spillSeed(t)))

	w := do(t, h2, http.MethodGet, "/jobs/"+id+"/result", "")
	if w.Code != http.StatusOK {
		t.Fatalf("post-restart GET result = %d: %s", w.Code, w.Body.String())
	}
	if !bytes.Equal(w.Body.Bytes(), before) {
		t.Errorf("post-restart result differs from pre-crash bytes:\npre:  %s\npost: %s",
			before, w.Body.Bytes())
	}
	if decode[degradedJSON](t, w).Degraded {
		t.Error("spill-backed result carries a degraded marker")
	}
	stats := decode[statszJSON](t, do(t, h2, http.MethodGet, "/statsz", ""))
	if stats.Ladder.DiskLoads == 0 {
		t.Errorf("statsz ladder = %+v, want at least one disk load", stats.Ladder)
	}
	if stats.Jobs.Rehydrated != 1 {
		t.Errorf("statsz jobs.rehydrated = %d, want 1", stats.Jobs.Rehydrated)
	}
	if stats.Ladder.Degraded != 0 || stats.Ladder.Gone != 0 {
		t.Errorf("full-result serve moved degraded/gone counters: %+v", stats.Ladder)
	}
}

// TestSpillCorruptionDegradesExplicitly is the other acceptance arm:
// same crash/restart, but the spill file is corrupted on disk. The
// result endpoint must serve the durable summary with "degraded": true
// — never the corrupt bytes — and the quarantine counter must move.
func TestSpillCorruptionDegradesExplicitly(t *testing.T) {
	walDir, spillDir := t.TempDir(), t.TempDir()
	h1 := durableSpillServer(t, walDir, spillDir, 4096, faultfs.NewInjector(faultfs.OS(), spillSeed(t)))
	hash, id, _ := runJobToDone(t, h1)
	evictUnderPressure(t, h1, spillDir, hash)

	spillPath := filepath.Join(spillDir, registry.SpillFileName(registry.Hash(hash)))
	if err := os.WriteFile(spillPath, []byte("group,region,truth,pred\nX,x,1,0\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	h2 := durableSpillServer(t, snapshotWAL(t, walDir), spillDir, 4096,
		faultfs.NewInjector(faultfs.OS(), spillSeed(t)))
	w := do(t, h2, http.MethodGet, "/jobs/"+id+"/result", "")
	if w.Code != http.StatusOK {
		t.Fatalf("GET result over corrupt spill = %d, want 200 (degraded summary): %s",
			w.Code, w.Body.String())
	}
	deg := decode[degradedJSON](t, w)
	if !deg.Degraded || deg.Reason == "" {
		t.Fatalf("payload = %+v, want an explicit degraded marker with a reason", deg)
	}
	if deg.Rows != 14 {
		t.Errorf("degraded payload lost the summary: %+v", deg)
	}
	stats := decode[statszJSON](t, do(t, h2, http.MethodGet, "/statsz", ""))
	if stats.Ladder.Quarantined != 1 {
		t.Errorf("statsz ladder.quarantined_spills = %d, want 1", stats.Ladder.Quarantined)
	}
	if stats.Ladder.Degraded != 1 {
		t.Errorf("statsz ladder.degraded_results = %d, want 1", stats.Ladder.Degraded)
	}
	qpath := filepath.Join(spillDir, registry.QuarantineDir, registry.SpillFileName(registry.Hash(hash)))
	if _, err := os.Stat(qpath); err != nil {
		t.Errorf("corrupt spill file not quarantined: %v", err)
	}
}

// TestDeleteDatasetPurgesSpill: DELETE /datasets/{hash} is total — it
// removes the spill file too, so a post-delete result fetch degrades to
// the durable summary instead of resurrecting the dataset from disk.
func TestDeleteDatasetPurgesSpill(t *testing.T) {
	walDir, spillDir := t.TempDir(), t.TempDir()
	h1 := durableSpillServer(t, walDir, spillDir, 4096, nil)
	hash, id, _ := runJobToDone(t, h1)
	evictUnderPressure(t, h1, spillDir, hash)

	h2 := durableSpillServer(t, snapshotWAL(t, walDir), spillDir, 4096, nil)
	if w := do(t, h2, http.MethodDelete, "/datasets/"+hash, ""); w.Code != http.StatusOK {
		t.Fatalf("DELETE /datasets = %d: %s", w.Code, w.Body.String())
	}
	if _, err := os.Stat(filepath.Join(spillDir, registry.SpillFileName(registry.Hash(hash)))); err == nil {
		t.Fatal("spill file survives DELETE /datasets")
	}

	// The rehydrate path must NOT find stale disk data: summary only.
	w := do(t, h2, http.MethodGet, "/jobs/"+id+"/result", "")
	if w.Code != http.StatusOK {
		t.Fatalf("post-delete GET result = %d: %s", w.Code, w.Body.String())
	}
	deg := decode[degradedJSON](t, w)
	if !deg.Degraded {
		t.Fatalf("post-delete result not degraded — served from where? %s", w.Body.String())
	}
	// Delete is also idempotently final across the quarantine tier.
	if w := do(t, h2, http.MethodDelete, "/datasets/"+hash, ""); w.Code != http.StatusNotFound {
		t.Errorf("double delete = %d, want 404", w.Code)
	}
}
