package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

const sampleCSV = `group,region,truth,pred
A,n,0,1
A,n,0,1
A,n,0,1
A,n,0,0
A,s,0,1
A,s,0,0
A,s,0,0
B,n,0,0
B,n,0,0
B,n,0,1
B,s,1,1
B,s,1,0
B,s,1,1
B,s,1,0
`

func doRequest(t *testing.T, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	method := http.MethodPost
	if body == "" {
		method = http.MethodGet
	}
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	Handler().ServeHTTP(w, req)
	return w
}

func TestHealthz(t *testing.T) {
	w := doRequest(t, "/healthz", "")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "ok") {
		t.Fatalf("healthz = %d %q", w.Code, w.Body.String())
	}
}

func TestIndex(t *testing.T) {
	w := doRequest(t, "/", "")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "DivExplorer") {
		t.Fatalf("index = %d", w.Code)
	}
	if w := doRequest(t, "/nope", ""); w.Code != http.StatusNotFound {
		t.Fatalf("unknown path = %d, want 404", w.Code)
	}
}

func TestAnalyzeJSON(t *testing.T) {
	w := doRequest(t, "/analyze?support=0.05&metric=FPR", sampleCSV)
	if w.Code != http.StatusOK {
		t.Fatalf("analyze = %d: %s", w.Code, w.Body.String())
	}
	var resp responseJSON
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Rows != 14 || resp.Attrs != 2 {
		t.Errorf("rows=%d attrs=%d", resp.Rows, resp.Attrs)
	}
	if len(resp.Metrics) != 1 || resp.Metrics[0].Metric != "FPR" {
		t.Fatalf("metrics = %+v", resp.Metrics)
	}
	if len(resp.Metrics[0].Top) == 0 {
		t.Fatal("no top patterns")
	}
	// The divergent group A must surface.
	found := false
	for _, p := range resp.Metrics[0].Top {
		for _, it := range p.Itemset {
			if it == "group=A" {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("group=A missing from top patterns: %+v", resp.Metrics[0].Top)
	}
}

func TestAnalyzeHTML(t *testing.T) {
	w := doRequest(t, "/analyze?format=html&eps=0.02&alpha=0.1", sampleCSV)
	if w.Code != http.StatusOK {
		t.Fatalf("analyze html = %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("content type = %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{"<!DOCTYPE html>", "Metric FPR", "group=A"} {
		if !strings.Contains(body, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
}

func TestAnalyzeCSV(t *testing.T) {
	w := doRequest(t, "/analyze?format=csv&metric=FPR", sampleCSV)
	if w.Code != http.StatusOK {
		t.Fatalf("analyze csv = %d", w.Code)
	}
	if !strings.HasPrefix(w.Body.String(), "itemset,") {
		t.Errorf("CSV body = %q", w.Body.String()[:40])
	}
}

func TestAnalyzeCustomColumns(t *testing.T) {
	csv := strings.ReplaceAll(sampleCSV, "truth,pred", "y,yhat")
	w := doRequest(t, "/analyze?truth=y&pred=yhat", csv)
	if w.Code != http.StatusOK {
		t.Fatalf("custom columns = %d: %s", w.Code, w.Body.String())
	}
}

func TestAnalyzeErrors(t *testing.T) {
	cases := []struct {
		name, path, body string
	}{
		{"bad support", "/analyze?support=2", sampleCSV},
		{"bad topk", "/analyze?topk=0", sampleCSV},
		{"bad eps", "/analyze?eps=-1", sampleCSV},
		{"bad alpha", "/analyze?alpha=2", sampleCSV},
		{"bad metric", "/analyze?metric=XYZ", sampleCSV},
		{"bad format", "/analyze?format=xml", sampleCSV},
		{"missing truth column", "/analyze?truth=ghost", sampleCSV},
		{"non-boolean labels", "/analyze?truth=group", sampleCSV},
		{"empty body", "/analyze", ""},
		{"garbage csv", "/analyze", "a,b\nonly-one-field\n"},
	}
	for _, c := range cases {
		req := httptest.NewRequest(http.MethodPost, c.path, strings.NewReader(c.body))
		w := httptest.NewRecorder()
		Handler().ServeHTTP(w, req)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, w.Code, w.Body.String())
		}
	}
}

func TestAnalyzeMethodNotAllowed(t *testing.T) {
	req := httptest.NewRequest(http.MethodGet, "/analyze", nil)
	w := httptest.NewRecorder()
	Handler().ServeHTTP(w, req)
	if w.Code == http.StatusOK {
		t.Errorf("GET /analyze succeeded, want method error")
	}
}
