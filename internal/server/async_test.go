package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/jobs"
	"repro/internal/registry"
)

// newTestServer builds a server over a fresh registry/engine and tears
// the engine down with the test.
func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return s
}

func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decode[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding %q: %v", w.Body.String(), err)
	}
	return v
}

// pollJob polls GET /jobs/{id} until the job is terminal.
func pollJob(t *testing.T, h http.Handler, id string) jobJSON {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		w := do(t, h, http.MethodGet, "/jobs/"+id, "")
		if w.Code != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d: %s", id, w.Code, w.Body.String())
		}
		st := decode[jobJSON](t, w)
		switch st.State {
		case "done", "failed", "canceled":
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not terminate", id)
	return jobJSON{}
}

func TestDatasetRegisterAndGet(t *testing.T) {
	h := newTestServer(t, Options{}).Handler()
	w := do(t, h, http.MethodPost, "/datasets", sampleCSV)
	if w.Code != http.StatusOK {
		t.Fatalf("POST /datasets = %d: %s", w.Code, w.Body.String())
	}
	d := decode[datasetJSON](t, w)
	if d.Rows != 14 || d.Attributes != 4 || d.Cached {
		t.Errorf("dataset meta = %+v", d)
	}
	if d.Hash != string(registry.HashBytes([]byte(sampleCSV))) {
		t.Errorf("hash mismatch: %s", d.Hash)
	}
	// Same bytes → cached; different line endings → same hash.
	w = do(t, h, http.MethodPost, "/datasets", strings.ReplaceAll(sampleCSV, "\n", "\r\n"))
	if d2 := decode[datasetJSON](t, w); !d2.Cached || d2.Hash != d.Hash {
		t.Errorf("re-register = %+v, want cached with same hash", d2)
	}
	w = do(t, h, http.MethodGet, "/datasets/"+d.Hash, "")
	if w.Code != http.StatusOK {
		t.Errorf("GET /datasets/{hash} = %d", w.Code)
	}
	if w := do(t, h, http.MethodGet, "/datasets/none", ""); w.Code != http.StatusNotFound {
		t.Errorf("GET unknown dataset = %d, want 404", w.Code)
	}
	if w := do(t, h, http.MethodPost, "/datasets", "a,b\nbad\n"); w.Code != http.StatusBadRequest {
		t.Errorf("malformed dataset = %d, want 400", w.Code)
	}
}

// TestJobEndToEndCacheHit is the acceptance scenario: the same dataset
// submitted twice via POST /jobs — the second run is a cache hit
// (asserted via /statsz counters) and returns byte-identical results.
func TestJobEndToEndCacheHit(t *testing.T) {
	h := newTestServer(t, Options{}).Handler()

	w := do(t, h, http.MethodPost, "/jobs?support=0.05&metric=FPR", sampleCSV)
	if w.Code != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d: %s", w.Code, w.Body.String())
	}
	j1 := decode[jobJSON](t, w)
	if j1.State != "queued" && j1.State != "running" {
		t.Errorf("initial state = %s", j1.State)
	}
	st1 := pollJob(t, h, j1.ID)
	if st1.State != "done" || st1.CacheHit {
		t.Fatalf("first job: %+v, want done without cache hit", st1)
	}
	if st1.ResultURL == "" || st1.FinishedAt == "" {
		t.Errorf("done job missing result_url/finished_at: %+v", st1)
	}
	r1 := do(t, h, http.MethodGet, "/jobs/"+j1.ID+"/result", "")
	if r1.Code != http.StatusOK {
		t.Fatalf("GET result = %d: %s", r1.Code, r1.Body.String())
	}

	// Second submission of the same dataset and parameters.
	w = do(t, h, http.MethodPost, "/jobs?support=0.05&metric=FPR", sampleCSV)
	if w.Code != http.StatusAccepted {
		t.Fatalf("second POST /jobs = %d", w.Code)
	}
	j2 := decode[jobJSON](t, w)
	if j2.Dataset != j1.Dataset {
		t.Errorf("content addressing broken: %s vs %s", j2.Dataset, j1.Dataset)
	}
	st2 := pollJob(t, h, j2.ID)
	if st2.State != "done" || !st2.CacheHit {
		t.Fatalf("second job: %+v, want done via cache", st2)
	}
	r2 := do(t, h, http.MethodGet, "/jobs/"+j2.ID+"/result", "")
	if !bytes.Equal(r1.Body.Bytes(), r2.Body.Bytes()) {
		t.Error("cached result is not byte-identical")
	}

	// The counters must show the dataset dedup and the result-cache hit.
	stats := decode[statszJSON](t, do(t, h, http.MethodGet, "/statsz", ""))
	if stats.Jobs.ResultCache.Hits < 1 {
		t.Errorf("result cache hits = %d, want >= 1", stats.Jobs.ResultCache.Hits)
	}
	if stats.Datasets.Hits < 1 {
		t.Errorf("dataset registry hits = %d, want >= 1", stats.Datasets.Hits)
	}
	// memory_hits counts results served from the in-memory job result —
	// exactly the two GET .../result calls above, not the registry's
	// lookup traffic (which the Datasets.Hits assertion shows is moving
	// on its own schedule).
	if stats.Ladder.MemoryHits != 2 {
		t.Errorf("ladder memory_hits = %d, want 2 (one per result serve)", stats.Ladder.MemoryHits)
	}
	if stats.Jobs.Completed != 2 {
		t.Errorf("completed = %d, want 2", stats.Jobs.Completed)
	}

	// Other render formats work off the stored result too.
	if w := do(t, h, http.MethodGet, "/jobs/"+j1.ID+"/result?format=csv", ""); w.Code != http.StatusOK ||
		!strings.HasPrefix(w.Body.String(), "itemset,") {
		t.Errorf("csv result = %d %q", w.Code, w.Body.String()[:min(40, w.Body.Len())])
	}
	if w := do(t, h, http.MethodGet, "/jobs/"+j1.ID+"/result?format=bogus", ""); w.Code != http.StatusBadRequest {
		t.Errorf("bogus format = %d, want 400", w.Code)
	}
}

func TestJobSubmitByDatasetHash(t *testing.T) {
	h := newTestServer(t, Options{}).Handler()
	d := decode[datasetJSON](t, do(t, h, http.MethodPost, "/datasets", sampleCSV))
	w := do(t, h, http.MethodPost, "/jobs?dataset="+d.Hash+"&metric=FPR", "")
	if w.Code != http.StatusAccepted {
		t.Fatalf("POST /jobs?dataset= %d: %s", w.Code, w.Body.String())
	}
	st := pollJob(t, h, decode[jobJSON](t, w).ID)
	if st.State != "done" {
		t.Fatalf("job = %+v", st)
	}
	if w := do(t, h, http.MethodPost, "/jobs?dataset=unknownhash", ""); w.Code != http.StatusNotFound {
		t.Errorf("unknown hash submit = %d, want 404", w.Code)
	}
}

// TestJobQueueFull is the backpressure acceptance path: filling the
// queue past its bound yields HTTP 429, not blocking.
func TestJobQueueFull(t *testing.T) {
	reg := registry.New(0)
	started := make(chan struct{}, 4)
	engine, err := jobs.New(jobs.Config{
		Registry:   reg,
		Workers:    1,
		QueueDepth: 1,
		Analyze: func(ctx context.Context, _ *dataset.Dataset, _ jobs.Spec, _ *jobs.Tracker) (*core.Result, error) {
			started <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Options{Registry: reg, Engine: engine})
	h := s.Handler()

	// First job occupies the single worker, second fills the queue;
	// distinct supports keep their cache keys distinct.
	var accepted []string
	w := do(t, h, http.MethodPost, "/jobs?support=0.1", sampleCSV)
	if w.Code != http.StatusAccepted {
		t.Fatalf("first submit = %d", w.Code)
	}
	accepted = append(accepted, decode[jobJSON](t, w).ID)
	<-started
	w = do(t, h, http.MethodPost, "/jobs?support=0.2", sampleCSV)
	if w.Code != http.StatusAccepted {
		t.Fatalf("second submit = %d", w.Code)
	}
	accepted = append(accepted, decode[jobJSON](t, w).ID)
	w = do(t, h, http.MethodPost, "/jobs?support=0.3", sampleCSV)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-bound submit = %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if e := decode[map[string]string](t, w); !strings.Contains(e["error"], "queue full") {
		t.Errorf("429 body = %q", w.Body.String())
	}
	stats := decode[statszJSON](t, do(t, h, http.MethodGet, "/statsz", ""))
	if stats.Jobs.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", stats.Jobs.Rejected)
	}
	// Unblock so Close drains promptly: cancel everything via the API.
	for _, id := range accepted {
		if w := do(t, h, http.MethodDelete, "/jobs/"+id, ""); w.Code != http.StatusOK {
			t.Errorf("cancel %s = %d", id, w.Code)
		}
	}
}

// TestJobCancelMidFlight: a canceled job stops mining (the worker
// observes the context) and reports canceled, not done.
func TestJobCancelMidFlight(t *testing.T) {
	reg := registry.New(0)
	started := make(chan struct{}, 1)
	observed := make(chan struct{})
	engine, err := jobs.New(jobs.Config{
		Registry: reg,
		Workers:  1,
		Analyze: func(ctx context.Context, _ *dataset.Dataset, _ jobs.Spec, _ *jobs.Tracker) (*core.Result, error) {
			started <- struct{}{}
			<-ctx.Done()
			close(observed)
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Options{Registry: reg, Engine: engine})
	h := s.Handler()

	w := do(t, h, http.MethodPost, "/jobs", sampleCSV)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", w.Code)
	}
	id := decode[jobJSON](t, w).ID
	<-started

	if w := do(t, h, http.MethodDelete, "/jobs/"+id, ""); w.Code != http.StatusOK {
		t.Fatalf("DELETE = %d: %s", w.Code, w.Body.String())
	}
	select {
	case <-observed:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never observed cancellation")
	}
	st := pollJob(t, h, id)
	if st.State != "canceled" {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	// The result endpoint refuses with 409 and names the state.
	if w := do(t, h, http.MethodGet, "/jobs/"+id+"/result", ""); w.Code != http.StatusConflict {
		t.Errorf("result of canceled job = %d, want 409", w.Code)
	}
	if w := do(t, h, http.MethodDelete, "/jobs/nope", ""); w.Code != http.StatusNotFound {
		t.Errorf("cancel unknown = %d, want 404", w.Code)
	}
}

func TestAnalyzeServedThroughCache(t *testing.T) {
	s := newTestServer(t, Options{})
	h := s.Handler()
	w1 := do(t, h, http.MethodPost, "/analyze?metric=FPR", sampleCSV)
	if w1.Code != http.StatusOK {
		t.Fatalf("analyze = %d: %s", w1.Code, w1.Body.String())
	}
	w2 := do(t, h, http.MethodPost, "/analyze?metric=FPR", sampleCSV)
	if !bytes.Equal(w1.Body.Bytes(), w2.Body.Bytes()) {
		t.Error("repeat analyze differs")
	}
	stats := decode[statszJSON](t, do(t, h, http.MethodGet, "/statsz", ""))
	if stats.Jobs.ResultCache.Hits < 1 || stats.Datasets.Hits < 1 {
		t.Errorf("sync path bypassed the caches: %+v", stats)
	}
}

func TestOversizedBody413(t *testing.T) {
	s := newTestServer(t, Options{MaxBodyBytes: 64})
	h := s.Handler()
	big := sampleCSV + strings.Repeat("A,n,0,1\n", 100)
	for _, path := range []string{"/analyze", "/datasets", "/jobs"} {
		w := do(t, h, http.MethodPost, path, big)
		if w.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversized = %d, want 413", path, w.Code)
			continue
		}
		e := decode[map[string]string](t, w)
		if !strings.Contains(e["error"], "64-byte limit") {
			t.Errorf("%s 413 body = %q", path, w.Body.String())
		}
	}
}

func TestJobSubmitErrorPaths(t *testing.T) {
	h := newTestServer(t, Options{}).Handler()
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"unknown metric", "/jobs?metric=XYZ", sampleCSV, http.StatusBadRequest},
		{"bad support", "/jobs?support=7", sampleCSV, http.StatusBadRequest},
		{"malformed csv", "/jobs", "a,b\nonly-one\n", http.StatusBadRequest},
		{"unknown job status", "", "", http.StatusNotFound},
	}
	for _, c := range cases {
		var w *httptest.ResponseRecorder
		if c.name == "unknown job status" {
			w = do(t, h, http.MethodGet, "/jobs/doesnotexist", "")
		} else {
			w = do(t, h, http.MethodPost, c.path, c.body)
		}
		if w.Code != c.want {
			t.Errorf("%s: status = %d, want %d (%s)", c.name, w.Code, c.want, w.Body.String())
		}
	}
	// A job that fails during analysis (unknown truth column at run time)
	// reports failed with the error message, and its result gives 409.
	w := do(t, h, http.MethodPost, "/jobs?truth=ghost", sampleCSV)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", w.Code)
	}
	st := pollJob(t, h, decode[jobJSON](t, w).ID)
	if st.State != "failed" || !strings.Contains(st.Error, "ghost") {
		t.Errorf("job = %+v, want failed mentioning the column", st)
	}
	if w := do(t, h, http.MethodGet, "/jobs/"+st.ID+"/result", ""); w.Code != http.StatusConflict {
		t.Errorf("failed job result = %d, want 409", w.Code)
	}
}

func TestStatszShape(t *testing.T) {
	h := newTestServer(t, Options{}).Handler()
	w := do(t, h, http.MethodGet, "/statsz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("statsz = %d", w.Code)
	}
	stats := decode[statszJSON](t, w)
	if stats.Jobs.Workers < 1 || stats.Jobs.QueueCap < 1 {
		t.Errorf("stats missing pool dimensions: %+v", stats.Jobs)
	}
}
