package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/jobs"
	"repro/internal/registry"
)

// POST /explore is the anytime exploration endpoint (DESIGN.md §14).
// Unlike /analyze it takes a JSON body, always addresses a registered
// dataset by hash, and answers interactively: budgets (budget_ms,
// max_patterns) bound the mine, sample_rows trades exactness for speed
// with explicit confidence intervals, and an "expand" object navigates
// the lattice from a named pattern without mining at all. "async": true
// routes the exploration through the job engine instead; progress then
// streams via the usual /jobs/{id}/partial and /jobs/{id}/events.

// exploreBody is the wire shape of a POST /explore request.
type exploreBody struct {
	Dataset     string  `json:"dataset"`
	Truth       string  `json:"truth"`
	Pred        string  `json:"pred"`
	Support     float64 `json:"support"`
	Metric      string  `json:"metric"`
	TopK        int     `json:"topk"`
	BudgetMS    int64   `json:"budget_ms"`
	MaxPatterns int64   `json:"max_patterns"`
	SampleRows  int     `json:"sample_rows"`
	SampleSeed  int64   `json:"sample_seed"`
	Confidence  float64 `json:"confidence"`
	Async       bool    `json:"async"`
	// Expand, when present, turns the request into a navigation step:
	// the frequent refinements of Pattern (the root when empty),
	// restricted to one attribute when Attr is set. Budgets and sampling
	// do not apply — navigation is exact and never mines.
	Expand *expandBody `json:"expand"`
}

type expandBody struct {
	Pattern []string `json:"pattern"`
	Attr    string   `json:"attr"`
}

// exploreRequest is the parsed form: exactly one of spec (mine) or
// expand (navigate) is acted on; async only applies to the mine path.
type exploreRequest struct {
	spec   jobs.ExploreSpec
	expand *jobs.ExpandSpec
	async  bool
}

// parseExploreBody decodes and validates a POST /explore body. It is
// deliberately a pure []byte -> request function so the fuzz target can
// drive it directly. Range checks that the engine also performs are
// duplicated here where cheap, so malformed requests die before touching
// any engine state; defaults (metric, topk, confidence) are left to the
// engine so the two entry points cannot drift.
func parseExploreBody(body []byte) (exploreRequest, error) {
	var req exploreRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var b exploreBody
	if err := dec.Decode(&b); err != nil {
		return req, fmt.Errorf("bad explore body: %w", err)
	}
	// A trailing second JSON value is a malformed request, not extra data
	// to silently ignore.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return req, errors.New("bad explore body: trailing data after the JSON object")
	}
	if b.Dataset == "" {
		return req, errors.New("missing dataset hash (register the CSV via POST /datasets first)")
	}
	if b.Support < 0 || b.Support > 1 {
		return req, fmt.Errorf("bad support %v (want [0,1])", b.Support)
	}
	if b.TopK < 0 {
		return req, fmt.Errorf("bad topk %d", b.TopK)
	}
	if b.BudgetMS < 0 || b.MaxPatterns < 0 || b.SampleRows < 0 {
		return req, errors.New("budgets and sample_rows must be non-negative")
	}
	if b.Confidence < 0 || b.Confidence >= 1 {
		return req, fmt.Errorf("bad confidence %v (want [0,1); 0 selects the default)", b.Confidence)
	}
	truth := orDefault(b.Truth, "truth")
	pred := orDefault(b.Pred, "pred")
	support := b.Support
	// lint:ignore floatcmp the zero value is the explicit "use the default" sentinel
	if support == 0 {
		support = 0.05
	}
	if b.Expand != nil {
		if b.Async {
			return req, errors.New("expand is synchronous; drop \"async\"")
		}
		if b.BudgetMS != 0 || b.MaxPatterns != 0 || b.SampleRows != 0 {
			return req, errors.New("expand is exact; budgets and sampling do not apply")
		}
		for _, it := range b.Expand.Pattern {
			if it == "" {
				return req, errors.New("empty item name in expand pattern")
			}
		}
		req.expand = &jobs.ExpandSpec{
			Dataset:  registry.Hash(b.Dataset),
			TruthCol: truth,
			PredCol:  pred,
			Support:  support,
			Metric:   b.Metric,
			Pattern:  b.Expand.Pattern,
			Attr:     b.Expand.Attr,
		}
		return req, nil
	}
	req.spec = jobs.ExploreSpec{
		Dataset:     registry.Hash(b.Dataset),
		TruthCol:    truth,
		PredCol:     pred,
		Support:     support,
		Metric:      b.Metric,
		TopK:        b.TopK,
		BudgetMS:    b.BudgetMS,
		MaxPatterns: b.MaxPatterns,
		SampleRows:  b.SampleRows,
		SampleSeed:  b.SampleSeed,
		Confidence:  b.Confidence,
	}
	req.async = b.Async
	return req, nil
}

// handleExplore implements POST /explore.
func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	req, err := parseExploreBody(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ds := req.spec.Dataset
	if req.expand != nil {
		ds = req.expand.Dataset
	}
	if _, ok := s.reg.Get(ds); !ok {
		writeError(w, http.StatusNotFound, "dataset "+string(ds)+" not registered")
		return
	}

	if req.expand != nil {
		out, err := s.engine.Expand(*req.expand)
		if err != nil {
			s.writeExploreError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	if req.async {
		job, err := s.engine.SubmitExplore(req.spec)
		switch {
		case errors.Is(err, jobs.ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, jobs.ErrShuttingDown):
			writeError(w, http.StatusServiceUnavailable, err.Error())
		case err != nil:
			s.writeExploreError(w, r, err)
		default:
			writeJSON(w, http.StatusAccepted, jobToJSON(job.Snapshot()))
		}
		return
	}
	out, err := s.engine.Explore(r.Context(), req.spec)
	if err != nil {
		s.writeExploreError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// writeExploreError maps explore/expand failures to HTTP statuses. The
// dataset existing at the registry pre-check but being evicted before
// the engine pinned it is a 404, not a 400 — the client's request was
// well-formed.
func (s *Server) writeExploreError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, jobs.ErrDatasetGone):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, jobs.ErrBadInput):
		writeError(w, http.StatusBadRequest, err.Error())
	case r.Context().Err() != nil:
		writeError(w, 499, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}
