package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/jobs"
)

// exploreEnv is a persistent server instance: unlike doRequest (which
// builds a fresh Handler per call) the registry, engine and counters
// survive across requests, which is what the explore tests are about.
type exploreEnv struct {
	srv *Server
	h   http.Handler
}

func newExploreEnv(t *testing.T) *exploreEnv {
	t.Helper()
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close(context.Background()) })
	return &exploreEnv{srv: s, h: s.Handler()}
}

func (e *exploreEnv) do(t *testing.T, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	e.h.ServeHTTP(w, req)
	return w
}

// register uploads a CSV through POST /datasets and returns its hash.
func (e *exploreEnv) register(t *testing.T, csv string) string {
	t.Helper()
	w := e.do(t, http.MethodPost, "/datasets", csv)
	if w.Code != http.StatusOK {
		t.Fatalf("register = %d: %s", w.Code, w.Body.String())
	}
	var ds datasetJSON
	if err := json.Unmarshal(w.Body.Bytes(), &ds); err != nil {
		t.Fatal(err)
	}
	return ds.Hash
}

// explore POSTs a JSON body to /explore and decodes the outcome.
func (e *exploreEnv) explore(t *testing.T, body string) (*httptest.ResponseRecorder, jobs.ExploreOutcome) {
	t.Helper()
	w := e.do(t, http.MethodPost, "/explore", body)
	var out jobs.ExploreOutcome
	if w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
			t.Fatalf("decoding outcome: %v (%s)", err, w.Body.String())
		}
	}
	return w, out
}

// statsz fetches and decodes GET /statsz.
func (e *exploreEnv) statsz(t *testing.T) statszJSON {
	t.Helper()
	w := e.do(t, http.MethodGet, "/statsz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("statsz = %d", w.Code)
	}
	var st statszJSON
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func b01(v bool) string {
	if v {
		return "1"
	}
	return "0"
}

// datagenCSV renders a seeded random dataset as the CSV the upload
// endpoints expect, truth/pred as the last two columns.
func datagenCSV(t testing.TB, seed int64, rows, attrs, maxCard int) string {
	t.Helper()
	g, err := datagen.Random(seed, datagen.RandomConfig{Rows: rows, Attrs: attrs, MaxCard: maxCard})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for a := 0; a < g.Data.NumAttrs(); a++ {
		sb.WriteString(g.Data.Attrs[a].Name)
		sb.WriteByte(',')
	}
	sb.WriteString("truth,pred\n")
	for r := 0; r < g.Data.NumRows(); r++ {
		for a := 0; a < g.Data.NumAttrs(); a++ {
			sb.WriteString(g.Data.Value(r, a))
			sb.WriteByte(',')
		}
		sb.WriteString(b01(g.Truth[r]))
		sb.WriteByte(',')
		sb.WriteString(b01(g.Pred[r]))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestExploreEndpoint(t *testing.T) {
	env := newExploreEnv(t)
	hash := env.register(t, sampleCSV)

	w, out := env.explore(t, fmt.Sprintf(`{"dataset":%q,"support":0.05,"metric":"FPR","topk":5}`, hash))
	if w.Code != http.StatusOK {
		t.Fatalf("explore = %d: %s", w.Code, w.Body.String())
	}
	if out.Reason != "exhausted" || out.Partial || out.CacheHit || out.Sampled {
		t.Fatalf("outcome: %+v", out)
	}
	if out.Metric != "FPR" || len(out.Top) == 0 || len(out.Top) > 5 {
		t.Fatalf("outcome: %+v", out)
	}
	for _, p := range out.Top {
		if p.SupportLo != p.Support || p.SupportHi != p.Support ||
			p.DivergenceLo != p.Divergence || p.DivergenceHi != p.Divergence {
			t.Fatalf("exact run has non-degenerate bounds: %+v", p)
		}
	}
	// The divergent group A must surface, as on /analyze.
	found := false
	for _, p := range out.Top {
		for _, it := range p.Items {
			if it == "group=A" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("group=A missing from explore top: %+v", out.Top)
	}
}

// TestExploreDeadlineE2E is the end-to-end deadline guarantee: on a
// dataset far too large to mine exhaustively at low support, a
// budget_ms=200 explore answers HTTP 200 well under 500ms of wall clock
// with partial=true and a non-empty leaderboard — and an unbudgeted
// follow-up of a completed question is served from the outcome cache
// without re-mining.
func TestExploreDeadlineE2E(t *testing.T) {
	env := newExploreEnv(t)
	// 24 binary attributes at 3000 rows: the frequent-itemset count at
	// support 0.002 is astronomically beyond any 200ms budget.
	hash := env.register(t, datagenCSV(t, 42, 3000, 24, 2))

	body := fmt.Sprintf(`{"dataset":%q,"support":0.002,"budget_ms":200,"topk":10}`, hash)
	start := time.Now()
	w, out := env.explore(t, body)
	elapsed := time.Since(start)
	if w.Code != http.StatusOK {
		t.Fatalf("budgeted explore = %d: %s", w.Code, w.Body.String())
	}
	if elapsed >= 500*time.Millisecond {
		t.Fatalf("budget_ms=200 took %v, want < 500ms", elapsed)
	}
	if !out.Partial || out.Reason != "deadline" {
		t.Fatalf("budgeted outcome: reason=%q partial=%v", out.Reason, out.Partial)
	}
	if len(out.Top) == 0 || out.Visited == 0 {
		t.Fatalf("budgeted outcome is empty: %+v", out)
	}

	// Partial outcomes are never cached: the same budgeted ask mines
	// again.
	if _, again := env.explore(t, body); again.CacheHit {
		t.Fatal("a partial outcome was served from the cache")
	}

	// A completed (high-support) question is cached, and the repeat does
	// not mine: the mine counter in /statsz stays flat.
	complete := fmt.Sprintf(`{"dataset":%q,"support":0.3,"topk":10}`, hash)
	if w, out := env.explore(t, complete); w.Code != http.StatusOK || out.Partial {
		t.Fatalf("unbudgeted explore = %d, partial=%v", w.Code, out.Partial)
	}
	mines := env.statsz(t).Jobs.Explore.Mines
	w2, out2 := env.explore(t, complete)
	if w2.Code != http.StatusOK || !out2.CacheHit || out2.Partial || out2.Reason != "exhausted" {
		t.Fatalf("cached follow-up: code=%d %+v", w2.Code, out2)
	}
	if got := env.statsz(t).Jobs.Explore.Mines; got != mines {
		t.Fatalf("cache hit ran a mine: %d -> %d", mines, got)
	}
}

// TestExploreSampledE2E: sample_rows mines an n-row subsample and every
// pattern carries non-degenerate confidence intervals.
func TestExploreSampledE2E(t *testing.T) {
	env := newExploreEnv(t)
	hash := env.register(t, datagenCSV(t, 7, 1200, 6, 3))
	w, out := env.explore(t, fmt.Sprintf(
		`{"dataset":%q,"support":0.1,"sample_rows":400,"sample_seed":5,"confidence":0.95}`, hash))
	if w.Code != http.StatusOK {
		t.Fatalf("sampled explore = %d: %s", w.Code, w.Body.String())
	}
	if !out.Sampled || out.SampleSize != 400 || out.Confidence != 0.95 || out.SupportEps <= 0 {
		t.Fatalf("sampled outcome: %+v", out)
	}
	for _, p := range out.Top {
		if p.SupportLo > p.Support || p.SupportHi < p.Support {
			t.Fatalf("support interval excludes the estimate: %+v", p)
		}
		if p.SupportLo == p.SupportHi {
			t.Fatalf("sampled run has degenerate support bounds: %+v", p)
		}
		if p.DivergenceLo > p.Divergence || p.DivergenceHi < p.Divergence {
			t.Fatalf("divergence interval excludes the estimate: %+v", p)
		}
	}
}

// TestExploreExpandNoRemine asserts over the public API what the jobs
// layer asserts internally: navigation moves only the expand counters in
// /statsz — the mine counter stays flat.
func TestExploreExpandNoRemine(t *testing.T) {
	env := newExploreEnv(t)
	hash := env.register(t, sampleCSV)
	if w, _ := env.explore(t, fmt.Sprintf(`{"dataset":%q}`, hash)); w.Code != http.StatusOK {
		t.Fatalf("explore = %d", w.Code)
	}
	mines := env.statsz(t).Jobs.Explore.Mines

	w := env.do(t, http.MethodPost, "/explore", fmt.Sprintf(`{"dataset":%q,"expand":{}}`, hash))
	if w.Code != http.StatusOK {
		t.Fatalf("root expand = %d: %s", w.Code, w.Body.String())
	}
	var root jobs.ExpandOutcome
	if err := json.Unmarshal(w.Body.Bytes(), &root); err != nil {
		t.Fatal(err)
	}
	if len(root.Parent) != 0 || len(root.Refinements) == 0 {
		t.Fatalf("root expand: %+v", root)
	}

	w = env.do(t, http.MethodPost, "/explore", fmt.Sprintf(
		`{"dataset":%q,"expand":{"pattern":[%q],"attr":"region"}}`, hash, root.Refinements[0].Items[0]))
	if w.Code != http.StatusOK {
		t.Fatalf("drill = %d: %s", w.Code, w.Body.String())
	}
	var drill jobs.ExpandOutcome
	if err := json.Unmarshal(w.Body.Bytes(), &drill); err != nil {
		t.Fatal(err)
	}
	for _, r := range drill.Refinements {
		if len(r.Items) != 2 {
			t.Fatalf("drill refinement %v is not parent+1", r.Items)
		}
	}

	st := env.statsz(t).Jobs.Explore
	if st.Mines != mines {
		t.Fatalf("navigation ran a mine: %d -> %d", mines, st.Mines)
	}
	if st.Expands != 2 || st.Navigation.RowsScanned == 0 {
		t.Fatalf("navigation counters: %+v", st)
	}
}

// TestExploreAsync: "async": true runs the exploration through the job
// lifecycle; the final partial snapshot and the result endpoint carry
// the outcome.
func TestExploreAsync(t *testing.T) {
	env := newExploreEnv(t)
	hash := env.register(t, sampleCSV)
	w := env.do(t, http.MethodPost, "/explore", fmt.Sprintf(`{"dataset":%q,"async":true}`, hash))
	if w.Code != http.StatusAccepted {
		t.Fatalf("async explore = %d: %s", w.Code, w.Body.String())
	}
	var job jobJSON
	if err := json.Unmarshal(w.Body.Bytes(), &job); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		w := env.do(t, http.MethodGet, "/jobs/"+job.ID, "")
		if err := json.Unmarshal(w.Body.Bytes(), &job); err != nil {
			t.Fatal(err)
		}
		if job.State == "done" {
			break
		}
		if job.State == "failed" || time.Now().After(deadline) {
			t.Fatalf("async explore job: %+v", job)
		}
		time.Sleep(5 * time.Millisecond)
	}

	w = env.do(t, http.MethodGet, "/jobs/"+job.ID+"/partial", "")
	if w.Code != http.StatusOK {
		t.Fatalf("partial = %d", w.Code)
	}
	var snap jobs.Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Reason != "exhausted" || len(snap.Top) == 0 {
		t.Fatalf("final snapshot: %+v", snap)
	}

	w = env.do(t, http.MethodGet, "/jobs/"+job.ID+"/result", "")
	if w.Code != http.StatusOK {
		t.Fatalf("explore job result = %d: %s", w.Code, w.Body.String())
	}
	var out jobs.ExploreOutcome
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Reason != "exhausted" || len(out.Top) == 0 {
		t.Fatalf("result outcome: %+v", out)
	}
}

func TestExploreHTTPValidation(t *testing.T) {
	env := newExploreEnv(t)
	hash := env.register(t, sampleCSV)
	cases := map[string]struct {
		body string
		code int
	}{
		"not json":        {"nope", http.StatusBadRequest},
		"trailing data":   {`{"dataset":"x"} {"dataset":"y"}`, http.StatusBadRequest},
		"unknown field":   {`{"dataset":"x","budget":1}`, http.StatusBadRequest},
		"missing dataset": {`{"support":0.1}`, http.StatusBadRequest},
		"bad support":     {fmt.Sprintf(`{"dataset":%q,"support":1.5}`, hash), http.StatusBadRequest},
		"bad metric":      {fmt.Sprintf(`{"dataset":%q,"metric":"nope"}`, hash), http.StatusBadRequest},
		"negative budget": {fmt.Sprintf(`{"dataset":%q,"budget_ms":-1}`, hash), http.StatusBadRequest},
		"bad confidence":  {fmt.Sprintf(`{"dataset":%q,"confidence":1}`, hash), http.StatusBadRequest},
		"async expand":    {fmt.Sprintf(`{"dataset":%q,"async":true,"expand":{}}`, hash), http.StatusBadRequest},
		"budgeted expand": {fmt.Sprintf(`{"dataset":%q,"budget_ms":5,"expand":{}}`, hash), http.StatusBadRequest},
		"ghost dataset":   {`{"dataset":"feedfacefeedface"}`, http.StatusNotFound},
		"ghost column":    {fmt.Sprintf(`{"dataset":%q,"truth":"ghost"}`, hash), http.StatusBadRequest},
		"ghost attr":      {fmt.Sprintf(`{"dataset":%q,"expand":{"attr":"ghost"}}`, hash), http.StatusBadRequest},
	}
	for name, tc := range cases {
		if w := env.do(t, http.MethodPost, "/explore", tc.body); w.Code != tc.code {
			t.Errorf("%s: code %d, want %d (%s)", name, w.Code, tc.code, w.Body.String())
		}
	}
}

// FuzzExploreRequest drives the /explore body parser with arbitrary
// bytes: it must never panic, must be deterministic, and every accepted
// request must satisfy the invariants the engine relies on.
func FuzzExploreRequest(f *testing.F) {
	seeds := []string{
		`{"dataset":"abc123","support":0.05,"metric":"FPR","topk":5}`,
		`{"dataset":"abc123","budget_ms":200,"max_patterns":1000}`,
		`{"dataset":"abc123","sample_rows":400,"sample_seed":7,"confidence":0.99}`,
		`{"dataset":"abc123","expand":{"pattern":["group=A"],"attr":"region"}}`,
		`{"dataset":"abc123","expand":{}}`,
		`{"dataset":"abc123","async":true}`,
		`{"dataset":"abc123","truth":"y","pred":"yhat","support":1}`,
		`{}`,
		``,
		`null`,
		`[]`,
		`{"dataset":"x","support":"0.05"}`,
		`{"dataset":"x","unknown_field":1}`,
		`{"dataset":"x"} trailing`,
		`{"dataset":"x","support":-0.1}`,
		`{"dataset":"x","budget_ms":-9223372036854775808}`,
		`{"dataset":"x","confidence":0.999999,"topk":2147483647}`,
		`{"dataset":" ","expand":{"pattern":[""]}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := parseExploreBody(body)
		req2, err2 := parseExploreBody(body)
		if (err == nil) != (err2 == nil) || !reflect.DeepEqual(req, req2) {
			t.Fatalf("parse is not deterministic on %q", body)
		}
		if err != nil {
			return
		}
		spec, ds := req.spec, req.spec.Dataset
		if req.expand != nil {
			ds = req.expand.Dataset
			if req.async {
				t.Fatalf("accepted async expand: %q", body)
			}
			if spec.BudgetMS != 0 || spec.MaxPatterns != 0 || spec.SampleRows != 0 {
				t.Fatalf("accepted budgeted expand: %q", body)
			}
			if req.expand.TruthCol == "" || req.expand.PredCol == "" {
				t.Fatalf("expand without label columns: %q", body)
			}
			if req.expand.Support <= 0 || req.expand.Support > 1 {
				t.Fatalf("expand support %v out of (0,1]: %q", req.expand.Support, body)
			}
		} else {
			if spec.TruthCol == "" || spec.PredCol == "" {
				t.Fatalf("spec without label columns: %q", body)
			}
			if spec.Support <= 0 || spec.Support > 1 {
				t.Fatalf("support %v out of (0,1]: %q", spec.Support, body)
			}
			if spec.BudgetMS < 0 || spec.MaxPatterns < 0 || spec.SampleRows < 0 || spec.TopK < 0 {
				t.Fatalf("negative budget accepted: %q", body)
			}
			if spec.Confidence < 0 || spec.Confidence >= 1 {
				t.Fatalf("confidence %v out of [0,1): %q", spec.Confidence, body)
			}
		}
		if ds == "" {
			t.Fatalf("accepted empty dataset: %q", body)
		}
	})
}

func TestParseExploreBodyDefaults(t *testing.T) {
	req, err := parseExploreBody([]byte(`{"dataset":"abc"}`))
	if err != nil {
		t.Fatal(err)
	}
	s := req.spec
	if s.TruthCol != "truth" || s.PredCol != "pred" || s.Support != 0.05 {
		t.Fatalf("defaults: %+v", s)
	}
	if req.async || req.expand != nil {
		t.Fatalf("defaults: %+v", req)
	}
}
