package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"testing"

	"repro/internal/jobs"
)

// significance POSTs a JSON body to /significance and decodes the
// outcome on 200.
func (e *exploreEnv) significance(t *testing.T, body string) (int, jobs.SignificanceOutcome, string) {
	t.Helper()
	w := e.do(t, http.MethodPost, "/significance", body)
	var out jobs.SignificanceOutcome
	if w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
			t.Fatalf("decoding outcome: %v (%s)", err, w.Body.String())
		}
	}
	return w.Code, out, w.Body.String()
}

func TestParseSignificanceBody(t *testing.T) {
	cases := []struct {
		name string
		body string
		ok   bool
	}{
		{"minimal", `{"dataset":"abc"}`, true},
		{"full wy", `{"dataset":"abc","truth":"t","pred":"p","support":0.1,"metric":"FPR","method":"wy","alpha":0.01,"permutations":500,"seed":3,"topk":5,"baseline":true}`, true},
		{"perm-fdr", `{"dataset":"abc","method":"perm-fdr","permutations":100}`, true},
		{"bh", `{"dataset":"abc","method":"bh"}`, true},
		{"exhaustive", `{"dataset":"abc","exhaustive":true}`, true},
		{"async", `{"dataset":"abc","async":true}`, true},
		{"empty body", ``, false},
		{"not an object", `[]`, false},
		{"missing dataset", `{"support":0.1}`, false},
		{"unknown field", `{"dataset":"abc","bogus":1}`, false},
		{"trailing data", `{"dataset":"abc"} {}`, false},
		{"support over 1", `{"dataset":"abc","support":1.2}`, false},
		{"alpha at 1", `{"dataset":"abc","alpha":1}`, false},
		{"negative permutations", `{"dataset":"abc","permutations":-5}`, false},
		{"negative topk", `{"dataset":"abc","topk":-1}`, false},
		{"unknown method", `{"dataset":"abc","method":"holm"}`, false},
		{"exhaustive with B", `{"dataset":"abc","exhaustive":true,"permutations":100}`, false},
		{"bh with permutations", `{"dataset":"abc","method":"bh","permutations":10}`, false},
		{"bh with seed", `{"dataset":"abc","method":"bh","seed":1}`, false},
		{"bh exhaustive", `{"dataset":"abc","method":"bh","exhaustive":true}`, false},
	}
	for _, c := range cases {
		req, err := parseSignificanceBody([]byte(c.body))
		if (err == nil) != c.ok {
			t.Errorf("%s: err=%v ok=%v", c.name, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if req.spec.TruthCol == "" || req.spec.PredCol == "" {
			t.Errorf("%s: label columns not defaulted: %+v", c.name, req.spec)
		}
		if req.spec.Support <= 0 || req.spec.Support > 1 {
			t.Errorf("%s: support %v not normalized", c.name, req.spec.Support)
		}
	}
	// Defaults pin: truth/pred columns and support fill in, the rest is
	// left for the engine.
	req, err := parseSignificanceBody([]byte(`{"dataset":"abc"}`))
	if err != nil {
		t.Fatal(err)
	}
	if req.spec.TruthCol != "truth" || req.spec.PredCol != "pred" || req.spec.Support != 0.05 {
		t.Fatalf("defaults: %+v", req.spec)
	}
	if req.async || req.spec.Method != "" || req.spec.Alpha != 0 {
		t.Fatalf("over-eager defaults: %+v", req)
	}
}

func TestSignificanceEndpointSync(t *testing.T) {
	env := newExploreEnv(t)
	hash := env.register(t, datagenCSV(t, 91, 300, 4, 3))
	code, out, body := env.significance(t,
		fmt.Sprintf(`{"dataset":"%s","support":0.1,"metric":"FPR","alpha":0.2,"permutations":200,"seed":4,"baseline":true}`, hash))
	if code != http.StatusOK {
		t.Fatalf("significance = %d: %s", code, body)
	}
	if out.Method != jobs.MethodWY || out.Metric != "FPR" || out.Permutations != 200 {
		t.Fatalf("outcome: %+v", out)
	}
	if out.Hypotheses == 0 {
		t.Fatal("no hypotheses tested")
	}
	for _, p := range out.Top {
		if p.AdjP < p.P-1e-15 {
			t.Errorf("pattern %v: adj %v below raw %v", p.Items, p.AdjP, p.P)
		}
	}
	// Identical request: served from the outcome cache.
	code, out2, _ := env.significance(t,
		fmt.Sprintf(`{"dataset":"%s","support":0.1,"metric":"FPR","alpha":0.2,"permutations":200,"seed":4,"baseline":true}`, hash))
	if code != http.StatusOK || !out2.CacheHit {
		t.Fatalf("repeat query: code=%d cache_hit=%v", code, out2.CacheHit)
	}
	// /statsz carries the significance counters.
	st := env.statsz(t)
	if st.Jobs.Significance.Queries != 2 || st.Jobs.Significance.Runs != 1 {
		t.Errorf("statsz significance: %+v", st.Jobs.Significance)
	}
}

func TestSignificanceEndpointErrors(t *testing.T) {
	env := newExploreEnv(t)
	hash := env.register(t, datagenCSV(t, 92, 100, 3, 2))
	cases := []struct {
		name, body string
		code       int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"unknown dataset", `{"dataset":"sha256:ffff"}`, http.StatusNotFound},
		{"bad method", fmt.Sprintf(`{"dataset":"%s","method":"holm"}`, hash), http.StatusBadRequest},
		{"bad truth column", fmt.Sprintf(`{"dataset":"%s","truth":"missing","permutations":50}`, hash), http.StatusBadRequest},
		{"exhaustive too large", fmt.Sprintf(`{"dataset":"%s","exhaustive":true}`, hash), http.StatusBadRequest},
	}
	for _, c := range cases {
		code, _, body := env.significance(t, c.body)
		if code != c.code {
			t.Errorf("%s: code %d want %d (%s)", c.name, code, c.code, body)
		}
	}
	if w := env.do(t, http.MethodGet, "/significance", ""); w.Code == http.StatusOK {
		t.Errorf("GET /significance succeeded, want method error")
	}
}

func TestSignificanceEndpointAsync(t *testing.T) {
	env := newExploreEnv(t)
	hash := env.register(t, datagenCSV(t, 93, 200, 3, 2))
	w := env.do(t, http.MethodPost, "/significance",
		fmt.Sprintf(`{"dataset":"%s","support":0.1,"permutations":100,"seed":2,"async":true}`, hash))
	if w.Code != http.StatusAccepted {
		t.Fatalf("async submit = %d: %s", w.Code, w.Body.String())
	}
	var j jobJSON
	if err := json.Unmarshal(w.Body.Bytes(), &j); err != nil {
		t.Fatal(err)
	}
	st := pollJob(t, env.h, j.ID)
	if st.State != "done" {
		t.Fatalf("job state %s (%s)", st.State, st.Error)
	}
	// The job's result endpoint serves the significance outcome.
	rw := env.do(t, http.MethodGet, "/jobs/"+j.ID+"/result", "")
	if rw.Code != http.StatusOK {
		t.Fatalf("result = %d: %s", rw.Code, rw.Body.String())
	}
	var out jobs.SignificanceOutcome
	if err := json.Unmarshal(rw.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Method != jobs.MethodWY || out.Permutations != 100 || out.Hypotheses == 0 {
		t.Fatalf("async outcome: %+v", out)
	}
	// The final partial snapshot marks completion.
	pw := env.do(t, http.MethodGet, "/jobs/"+j.ID+"/partial", "")
	if pw.Code != http.StatusOK {
		t.Fatalf("partial = %d", pw.Code)
	}
	var snap struct {
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(pw.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Reason != "complete" {
		t.Errorf("final snapshot reason %q", snap.Reason)
	}
}

// FuzzSignificanceRequest drives the /significance body parser with
// arbitrary bytes: never panic, parse deterministically, and every
// accepted request must satisfy the invariants handleSignificance and
// the engine rely on.
func FuzzSignificanceRequest(f *testing.F) {
	seeds := []string{
		`{"dataset":"abc123","support":0.05,"metric":"FPR","topk":5}`,
		`{"dataset":"abc123","method":"wy","permutations":1000,"seed":42,"alpha":0.05}`,
		`{"dataset":"abc123","method":"perm-fdr","permutations":100,"baseline":true}`,
		`{"dataset":"abc123","method":"bh","alpha":0.1}`,
		`{"dataset":"abc123","exhaustive":true,"async":true}`,
		`{"dataset":"abc123","truth":"y","pred":"yhat","support":1}`,
		`{}`,
		``,
		`null`,
		`[]`,
		`{"dataset":"x","support":"0.05"}`,
		`{"dataset":"x","unknown_field":1}`,
		`{"dataset":"x"} trailing`,
		`{"dataset":"x","alpha":0.9999999}`,
		`{"dataset":"x","permutations":-9223372036854775808}`,
		`{"dataset":"x","exhaustive":true,"permutations":1}`,
		`{"dataset":"x","method":"bh","seed":-1}`,
		`{"dataset":" ","topk":2147483647}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := parseSignificanceBody(body)
		req2, err2 := parseSignificanceBody(body)
		if (err == nil) != (err2 == nil) || !reflect.DeepEqual(req, req2) {
			t.Fatalf("parse is not deterministic on %q", body)
		}
		if err != nil {
			return
		}
		spec := req.spec
		if spec.Dataset == "" {
			t.Fatalf("accepted empty dataset: %q", body)
		}
		if spec.TruthCol == "" || spec.PredCol == "" {
			t.Fatalf("spec without label columns: %q", body)
		}
		if spec.Support <= 0 || spec.Support > 1 {
			t.Fatalf("support %v out of (0,1]: %q", spec.Support, body)
		}
		if spec.Alpha < 0 || spec.Alpha >= 1 {
			t.Fatalf("alpha %v out of [0,1): %q", spec.Alpha, body)
		}
		if spec.Permutations < 0 || spec.TopK < 0 {
			t.Fatalf("negative knob accepted: %q", body)
		}
		switch spec.Method {
		case "", jobs.MethodWY, jobs.MethodPermFDR:
			if spec.Exhaustive && spec.Permutations != 0 {
				t.Fatalf("exhaustive with explicit B accepted: %q", body)
			}
		case jobs.MethodBH:
			if spec.Permutations != 0 || spec.Exhaustive || spec.Seed != 0 {
				t.Fatalf("bh with permutation knobs accepted: %q", body)
			}
		default:
			t.Fatalf("unknown method %q accepted: %q", spec.Method, body)
		}
	})
}
