// Server-level cluster integration: full servers (registry + engine +
// admission) wired over the cluster package's deterministic in-memory
// network, plus one end-to-end pass over the real HTTP transport and
// the /internal/* peer endpoints.

package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/jobs"
	"repro/internal/registry"
)

// ackJSON is the 202 body for a job that landed on a remote owner.
type ackJSON struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Node  string `json:"node"`
}

// envConfig tailors a clusterEnv; the zero value gives three plain
// nodes with replication 2, fast forward timeouts, and gossip off
// (tests Tick themselves unless heartbeat is set).
type envConfig struct {
	replication int
	heartbeat   time.Duration // > 0 starts each node's gossip loop
	hedgeAfter  time.Duration
	analyze     jobs.AnalyzeFunc
	admission   func(id cluster.NodeID) *admission.Controller
	clock       func(id cluster.NodeID) cluster.Clock
}

// clusterEnv is an in-process multi-node cluster of full servers.
type clusterEnv struct {
	net      *cluster.MemNetwork
	ids      []cluster.NodeID
	servers  map[cluster.NodeID]*Server
	nodes    map[cluster.NodeID]*cluster.Node
	handlers map[cluster.NodeID]http.Handler
}

func newClusterEnv(t *testing.T, seed int64, cfg envConfig, ids ...cluster.NodeID) *clusterEnv {
	t.Helper()
	if cfg.replication <= 0 {
		cfg.replication = 2
	}
	if cfg.hedgeAfter <= 0 {
		cfg.hedgeAfter = 25 * time.Millisecond
	}
	env := &clusterEnv{
		net:      cluster.NewMemNetwork(seed),
		ids:      ids,
		servers:  make(map[cluster.NodeID]*Server, len(ids)),
		nodes:    make(map[cluster.NodeID]*cluster.Node, len(ids)),
		handlers: make(map[cluster.NodeID]http.Handler, len(ids)),
	}
	for i, id := range ids {
		peers := make([]cluster.NodeID, 0, len(ids)-1)
		for _, p := range ids {
			if p != id {
				peers = append(peers, p)
			}
		}
		reg := registry.New(0)
		engine, err := jobs.New(jobs.Config{Registry: reg, Workers: 2, Analyze: cfg.analyze})
		if err != nil {
			t.Fatalf("engine(%s): %v", id, err)
		}
		var ctrl *admission.Controller
		if cfg.admission != nil {
			ctrl = cfg.admission(id)
		}
		s := newTestServer(t, Options{Registry: reg, Engine: engine, Admission: ctrl})
		var clk cluster.Clock
		if cfg.clock != nil {
			clk = cfg.clock(id)
		}
		node, err := cluster.NewNode(cluster.Options{
			Self:              id,
			Peers:             peers,
			ReplicationFactor: cfg.replication,
			HeartbeatEvery:    cfg.heartbeat,
			AttemptTimeout:    500 * time.Millisecond,
			MaxAttempts:       2,
			BackoffBase:       time.Millisecond,
			BackoffCap:        4 * time.Millisecond,
			HedgeAfter:        cfg.hedgeAfter,
			ChunkSize:         256,
			Transport:         env.net.Transport(id),
			Local:             s.ClusterLocal(),
			Clock:             clk,
			Seed:              seed + int64(i) + 1,
		})
		if err != nil {
			t.Fatalf("NewNode(%s): %v", id, err)
		}
		env.net.Attach(id, node)
		s.AttachCluster(node)
		if cfg.heartbeat > 0 {
			node.Start()
			t.Cleanup(node.Close)
		}
		env.servers[id] = s
		env.nodes[id] = node
		env.handlers[id] = s.Handler()
	}
	return env
}

// owners returns the owner list for a dataset hash (identical on every
// node — placement is deterministic).
func (e *clusterEnv) owners(hash string) []cluster.NodeID {
	return e.nodes[e.ids[0]].Owners(hash)
}

// nonOwner returns a member that does not own hash.
func (e *clusterEnv) nonOwner(t *testing.T, hash string) cluster.NodeID {
	t.Helper()
	owners := e.owners(hash)
	for _, id := range e.ids {
		if !slices.Contains(owners, id) {
			return id
		}
	}
	t.Fatalf("every node owns %s (replication >= members)", hash)
	return ""
}

func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// doTenant is do with an X-Tenant header.
func doTenant(t *testing.T, h http.Handler, method, path, body, tenant string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// gatedAnalyze blocks every analysis until release is closed, then
// runs the real pipeline — the "mid-mine" fixture for chaos tests.
func gatedAnalyze(release <-chan struct{}) jobs.AnalyzeFunc {
	return func(ctx context.Context, data *dataset.Dataset, spec jobs.Spec, tr *jobs.Tracker) (*core.Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return jobs.RunAnalysis(ctx, data, spec, tr)
	}
}

func sampleHash() string { return string(registry.HashBytes([]byte(sampleCSV))) }

// TestClusterForwardToOwner: a submit on a non-owner is forwarded to
// the dataset's primary owner, the inline CSV travels with it, and the
// accepted record reaches the second owner's handoff table.
func TestClusterForwardToOwner(t *testing.T) {
	env := newClusterEnv(t, 11, envConfig{}, "n1", "n2", "n3")
	hash := sampleHash()
	owners := env.owners(hash)
	ingress := env.nonOwner(t, hash)

	w := do(t, env.handlers[ingress], http.MethodPost, "/jobs?metric=FPR", sampleCSV)
	if w.Code != http.StatusAccepted {
		t.Fatalf("forwarded submit = %d: %s", w.Code, w.Body.String())
	}
	ack := decode[ackJSON](t, w)
	if ack.ID == "" || ack.Node == "" {
		t.Fatalf("ack = %+v, want id and node", ack)
	}
	if !slices.Contains(owners, cluster.NodeID(ack.Node)) {
		t.Fatalf("acked by %s, want one of the owners %v", ack.Node, owners)
	}
	st := pollJob(t, env.handlers[cluster.NodeID(ack.Node)], ack.ID)
	if st.State != "done" {
		t.Fatalf("job on owner = %+v", st)
	}
	// The inline CSV was registered on the owner under its content hash.
	if _, ok := env.servers[cluster.NodeID(ack.Node)].reg.Get(registry.Hash(hash)); !ok {
		t.Errorf("dataset %s not resident on the owner that ran the job", hash)
	}
	// No read proxying: the ingress holds no state for the job.
	if w := do(t, env.handlers[ingress], http.MethodGet, "/jobs/"+ack.ID, ""); w.Code != http.StatusNotFound {
		t.Errorf("GET on ingress = %d, want 404", w.Code)
	}
	if s := env.nodes[ingress].Stats(); s.ForwardsOut != 1 {
		t.Errorf("ingress forwards_out = %d, want 1", s.ForwardsOut)
	}
	// Submit-time and terminal records both fan out to the other owner.
	for _, id := range owners {
		if id == cluster.NodeID(ack.Node) {
			continue
		}
		waitUntil(t, 5*time.Second, "handoff record on the second owner", func() bool {
			return env.nodes[id].Stats().HandoffRecords >= 1
		})
	}
}

// TestClusterOwnerRunsLocally: a submit on an owner short-circuits the
// transport entirely and answers with the full job document.
func TestClusterOwnerRunsLocally(t *testing.T) {
	env := newClusterEnv(t, 12, envConfig{}, "n1", "n2", "n3")
	owner := env.owners(sampleHash())[0]

	w := do(t, env.handlers[owner], http.MethodPost, "/jobs?metric=FPR", sampleCSV)
	if w.Code != http.StatusAccepted {
		t.Fatalf("local submit = %d: %s", w.Code, w.Body.String())
	}
	j := decode[jobJSON](t, w)
	if j.CreatedAt == "" {
		t.Fatalf("local submit returned %q, want the full job document", w.Body.String())
	}
	if st := pollJob(t, env.handlers[owner], j.ID); st.State != "done" {
		t.Fatalf("job = %+v", st)
	}
	if s := env.nodes[owner].Stats(); s.ForwardsOut != 0 {
		t.Errorf("owner forwards_out = %d, want 0", s.ForwardsOut)
	}
}

// TestClusterDatasetReplicatedToOwners: POST /datasets pushes the
// canonical bytes to the hash's owners, so a later submit-by-hash mines
// on an owner without re-uploading.
func TestClusterDatasetReplicatedToOwners(t *testing.T) {
	env := newClusterEnv(t, 13, envConfig{}, "n1", "n2", "n3")
	hash := sampleHash()
	ingress := env.nonOwner(t, hash)

	if w := do(t, env.handlers[ingress], http.MethodPost, "/datasets", sampleCSV); w.Code != http.StatusOK {
		t.Fatalf("register = %d: %s", w.Code, w.Body.String())
	}
	for _, id := range env.owners(hash) {
		id := id
		waitUntil(t, 5*time.Second, "spill replica on owner "+string(id), func() bool {
			_, ok := env.servers[id].reg.Get(registry.Hash(hash))
			return ok
		})
	}
	w := do(t, env.handlers[ingress], http.MethodPost, "/jobs?dataset="+hash+"&metric=FPR", "")
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit by hash = %d: %s", w.Code, w.Body.String())
	}
	ack := decode[ackJSON](t, w)
	if st := pollJob(t, env.handlers[cluster.NodeID(ack.Node)], ack.ID); st.State != "done" {
		t.Fatalf("job mined from replicated dataset = %+v", st)
	}
}

// TestClusterForwardAdmissionDenied: an owner's quota denial surfaces
// at the ingress as 429 with Retry-After, is not hedged into another
// replica, and other tenants keep flowing; the grant is released when
// the running job terminates.
func TestClusterForwardAdmissionDenied(t *testing.T) {
	release := make(chan struct{})
	env := newClusterEnv(t, 14, envConfig{
		analyze: gatedAnalyze(release),
		admission: func(cluster.NodeID) *admission.Controller {
			return admission.NewController(admission.Limits{},
				map[string]admission.Limits{"greedy": {MaxActive: 1}}, nil)
		},
	}, "n1", "n2", "n3")
	hash := sampleHash()
	ingress := env.nonOwner(t, hash)
	h := env.handlers[ingress]

	w := doTenant(t, h, http.MethodPost, "/jobs?support=0.1", sampleCSV, "greedy")
	if w.Code != http.StatusAccepted {
		t.Fatalf("first greedy submit = %d: %s", w.Code, w.Body.String())
	}
	first := decode[ackJSON](t, w)

	w = doTenant(t, h, http.MethodPost, "/jobs?support=0.2", sampleCSV, "greedy")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit = %d: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("denied forward without Retry-After")
	}
	w = doTenant(t, h, http.MethodPost, "/jobs?support=0.3", sampleCSV, "polite")
	if w.Code != http.StatusAccepted {
		t.Fatalf("other tenant = %d: %s", w.Code, w.Body.String())
	}
	polite := decode[ackJSON](t, w)

	close(release)
	if st := pollJob(t, env.handlers[cluster.NodeID(first.Node)], first.ID); st.State != "done" {
		t.Fatalf("greedy job = %+v", st)
	}
	if st := pollJob(t, env.handlers[cluster.NodeID(polite.Node)], polite.ID); st.State != "done" {
		t.Fatalf("polite job = %+v", st)
	}
	// Terminal release: the slot frees and greedy is admitted again.
	waitUntil(t, 5*time.Second, "quota slot released at terminal", func() bool {
		return doTenant(t, h, http.MethodPost, "/jobs?support=0.4", sampleCSV, "greedy").Code == http.StatusAccepted
	})
}

// TestClusterHTTPTransportEndToEnd drives two full servers over real
// HTTP: gossip, dataset replication, and a hedged forward all travel
// through the /internal/* endpoints and the HTTPTransport error
// mapping.
func TestClusterHTTPTransportEndToEnd(t *testing.T) {
	ids := []cluster.NodeID{"n1", "n2"}
	servers := make(map[cluster.NodeID]*Server, 2)
	nodes := make(map[cluster.NodeID]*cluster.Node, 2)
	urls := make(map[cluster.NodeID]string, 2)
	for _, id := range ids {
		s := newTestServer(t, Options{})
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			s.Handler().ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		servers[id] = s
		urls[id] = ts.URL
	}
	for i, id := range ids {
		peer := ids[1-i]
		node, err := cluster.NewNode(cluster.Options{
			Self:              id,
			Peers:             []cluster.NodeID{peer},
			ReplicationFactor: 1,
			AttemptTimeout:    2 * time.Second,
			MaxAttempts:       2,
			BackoffBase:       time.Millisecond,
			BackoffCap:        4 * time.Millisecond,
			HedgeAfter:        200 * time.Millisecond,
			ChunkSize:         128,
			Transport:         cluster.NewHTTPTransport(urls, nil),
			Local:             servers[id].ClusterLocal(),
			Seed:              int64(i) + 1,
		})
		if err != nil {
			t.Fatalf("NewNode(%s): %v", id, err)
		}
		servers[id].AttachCluster(node)
		nodes[id] = node
	}
	hash := sampleHash()
	owner := nodes[ids[0]].Owners(hash)[0] // replication 1: a single owner
	ingress := ids[0]
	if ingress == owner {
		ingress = ids[1]
	}

	// Dataset replication over POST /internal/replicate.
	if w := do(t, servers[ingress].Handler(), http.MethodPost, "/datasets", sampleCSV); w.Code != http.StatusOK {
		t.Fatalf("register = %d: %s", w.Code, w.Body.String())
	}
	waitUntil(t, 5*time.Second, "spill replica on the owner over HTTP", func() bool {
		return do(t, servers[owner].Handler(), http.MethodGet, "/datasets/"+hash, "").Code == http.StatusOK
	})

	// Forward over POST /internal/jobs.
	w := do(t, servers[ingress].Handler(), http.MethodPost, "/jobs?dataset="+hash+"&metric=FPR", "")
	if w.Code != http.StatusAccepted {
		t.Fatalf("forwarded submit = %d: %s", w.Code, w.Body.String())
	}
	ack := decode[ackJSON](t, w)
	if ack.Node != string(owner) {
		t.Fatalf("acked by %s, want %s", ack.Node, owner)
	}
	if st := pollJob(t, servers[owner].Handler(), ack.ID); st.State != "done" {
		t.Fatalf("job = %+v", st)
	}

	// Gossip over POST /internal/gossip.
	nodes[ingress].Tick()
	waitUntil(t, 5*time.Second, "heartbeat received over HTTP", func() bool {
		return nodes[owner].Stats().HeartbeatsRecv >= 1
	})
}

// frozenClock pins a cluster node's clock so health rows (phi, last
// heartbeat) render identically across consecutive snapshots.
type frozenClock struct{ at time.Time }

func (c frozenClock) Now() time.Time                       { return c.at }
func (c frozenClock) After(time.Duration) <-chan time.Time { return nil }

// TestStatszDeterministic: with the clock pinned, two consecutive GET
// /statsz bodies are byte-identical, and the cluster and admission
// sections list peers and tenants in sorted order.
func TestStatszDeterministic(t *testing.T) {
	frozen := frozenClock{at: time.Unix(1700000000, 0).UTC()}
	env := newClusterEnv(t, 15, envConfig{
		admission: func(id cluster.NodeID) *admission.Controller {
			if id != "n1" {
				return nil
			}
			return admission.NewController(admission.Limits{}, map[string]admission.Limits{
				"beta":  {MaxActive: 3},
				"alpha": {Weight: 2},
			}, nil)
		},
		clock: func(id cluster.NodeID) cluster.Clock {
			if id == "n1" {
				return frozen
			}
			return nil
		},
	}, "n1", "n2", "n3")

	// Populate the peers section: both peers heartbeat n1 once.
	env.nodes["n2"].Tick()
	env.nodes["n3"].Tick()
	waitUntil(t, 5*time.Second, "heartbeats folded into n1", func() bool {
		return env.nodes["n1"].Stats().HeartbeatsRecv >= 2
	})

	h := env.handlers["n1"]
	w1 := do(t, h, http.MethodGet, "/statsz", "")
	w2 := do(t, h, http.MethodGet, "/statsz", "")
	if w1.Code != http.StatusOK || w2.Code != http.StatusOK {
		t.Fatalf("statsz = %d / %d", w1.Code, w2.Code)
	}
	if w1.Body.String() != w2.Body.String() {
		t.Fatalf("consecutive statsz bodies differ:\n%s\n---\n%s", w1.Body.String(), w2.Body.String())
	}
	body := w1.Body.String()
	for _, want := range []string{`"cluster"`, `"admission"`, `"self": "n1"`} {
		if !strings.Contains(body, want) {
			t.Errorf("statsz missing %s: %s", want, body)
		}
	}
	// Sorted-key contract: tenants by name, peers by node ID.
	if a, b := strings.Index(body, `"alpha"`), strings.Index(body, `"beta"`); a < 0 || b < 0 || a > b {
		t.Errorf("tenant rows not sorted (alpha@%d, beta@%d)", a, b)
	}
	if a, b := strings.Index(body, `"node": "n2"`), strings.Index(body, `"node": "n3"`); a < 0 || b < 0 || a > b {
		t.Errorf("peer rows not sorted (n2@%d, n3@%d)", a, b)
	}

	stats := decode[statszJSON](t, w1)
	if stats.Cluster == nil || stats.Cluster.Members != 3 {
		t.Fatalf("cluster section = %+v", stats.Cluster)
	}
	if len(stats.Admission) != 2 || stats.Admission[0].Tenant != "alpha" || stats.Admission[0].Weight != 2 {
		t.Fatalf("admission section = %+v", stats.Admission)
	}
}
