package server

import (
	"errors"
	"net/http"
	"time"

	"repro/internal/monitor"
)

// Wire shape for monitor responses: the monitor snapshot plus the
// derived endpoint URLs.
type monitorJSON struct {
	monitor.Snapshot
	IngestURL string `json:"ingest_url"`
	EventsURL string `json:"events_url"`
}

func monitorToJSON(snap monitor.Snapshot) monitorJSON {
	return monitorJSON{
		Snapshot:  snap,
		IngestURL: "/monitors/" + snap.ID + "/events",
		EventsURL: "/monitors/" + snap.ID + "/events",
	}
}

// handleMonitorCreate implements POST /monitors: validate the JSON spec,
// persist it (when the manager is durable), start the monitor.
func (s *Server) handleMonitorCreate(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	spec, err := monitor.ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	m, err := s.monitors.Create(spec)
	switch {
	case errors.Is(err, monitor.ErrTooManyMonitors):
		// The same backpressure contract as the job queue: explicit 429,
		// never silent queuing. Capacity frees on DELETE.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, monitor.ErrManagerClosed):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, monitorToJSON(m.Snapshot()))
}

// handleMonitorList implements GET /monitors.
func (s *Server) handleMonitorList(w http.ResponseWriter, _ *http.Request) {
	live := s.monitors.List()
	out := make([]monitorJSON, 0, len(live))
	for _, m := range live {
		out = append(out, monitorToJSON(m.Snapshot()))
	}
	writeJSON(w, http.StatusOK, map[string]any{"monitors": out})
}

// handleMonitorGet implements GET /monitors/{id}: the current top-K
// divergent subgroups with their alert states, window position, and
// counters.
func (s *Server) handleMonitorGet(w http.ResponseWriter, r *http.Request) {
	m, ok := s.monitors.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown monitor "+r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, monitorToJSON(m.Snapshot()))
}

// handleMonitorDelete implements DELETE /monitors/{id}.
func (s *Server) handleMonitorDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	err := s.monitors.Delete(id)
	switch {
	case errors.Is(err, monitor.ErrNotFound):
		writeError(w, http.StatusNotFound, "unknown monitor "+id)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// handleMonitorIngest implements POST /monitors/{id}/events: a JSON-lines
// batch of decision events. Invalid lines are counted and skipped; a full
// ingest buffer rejects the batch with 429 (explicit backpressure).
func (s *Server) handleMonitorIngest(w http.ResponseWriter, r *http.Request) {
	m, ok := s.monitors.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown monitor "+r.PathValue("id"))
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	res, err := m.Ingest(body)
	switch {
	case errors.Is(err, monitor.ErrIngestBackpressure):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, monitor.ErrMonitorStopped):
		writeError(w, http.StatusGone, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, res)
}

// handleMonitorEvents implements GET /monitors/{id}/events: a Server-Sent
// Events stream of alert state transitions. The stream opens with a
// "snapshot" event (the full monitor view), then emits one "alert" event
// per transition, and closes with a "deleted" event if the monitor is
// removed. Transitions are seq-stamped, so a reconnecting client sees
// every transition still in the ring exactly once per connection.
func (s *Server) handleMonitorEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	m, ok := s.monitors.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown monitor "+id)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	writeSSE(w, "snapshot", monitorToJSON(m.Snapshot()))
	flusher.Flush()

	ticker := time.NewTicker(eventsPollInterval)
	defer ticker.Stop()

	var lastSeq int64
	for {
		for _, tr := range m.TransitionsSince(lastSeq) {
			lastSeq = tr.Seq
			writeSSE(w, "alert", tr)
		}
		flusher.Flush()
		if _, live := s.monitors.Get(id); !live {
			writeSSE(w, "deleted", map[string]string{"id": id})
			flusher.Flush()
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}
