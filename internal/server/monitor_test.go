package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/monitor"
)

// driftMonitorSpec is the wire spec matching datagen.Drift's default
// schema. Tumbling windows give the CUSUM detector the independent
// samples it assumes; max_len 1 matches the single-attribute plant.
const driftMonitorSpec = `{
	"name": "e2e-drift",
	"attributes": [
		{"name": "attr0", "values": ["a0_v0", "a0_v1", "a0_v2"]},
		{"name": "attr1", "values": ["a1_v0", "a1_v1", "a1_v2"]},
		{"name": "attr2", "values": ["a2_v0", "a2_v1", "a2_v2"]}
	],
	"metric": "FPR",
	"max_len": 1,
	"min_support": 0.05,
	"window": {"bucket_ms": 500, "buckets": 8, "tumbling": true},
	"detection": {"min_samples": 10, "h": 8}
}`

// createMonitor POSTs a spec and returns the created monitor's id.
func createMonitor(t *testing.T, h http.Handler, spec string) string {
	t.Helper()
	w := do(t, h, http.MethodPost, "/monitors", spec)
	if w.Code != http.StatusCreated {
		t.Fatalf("create monitor = %d: %s", w.Code, w.Body.String())
	}
	id := decode[monitorJSON](t, w).ID
	if !strings.HasPrefix(id, "mon-") {
		t.Fatalf("monitor id = %q", id)
	}
	return id
}

// ingestDrift streams s to the monitor in per-bucket batches over HTTP,
// honoring 429 backpressure, and waits until the worker has folded in
// every accepted event.
func ingestDrift(t *testing.T, h http.Handler, id string, s *datagen.DriftStream) {
	t.Helper()
	const batch = 50 // StepMs 10 × 50 = one 500ms bucket per body
	accepted := 0
	for from := 0; from < len(s.Events); from += batch {
		to := from + batch
		if to > len(s.Events) {
			to = len(s.Events)
		}
		body := string(s.Body(from, to))
		for {
			w := do(t, h, http.MethodPost, "/monitors/"+id+"/events", body)
			if w.Code == http.StatusTooManyRequests {
				time.Sleep(time.Millisecond)
				continue
			}
			if w.Code != http.StatusAccepted {
				t.Fatalf("ingest = %d: %s", w.Code, w.Body.String())
			}
			res := decode[monitor.IngestResult](t, w)
			if res.Invalid != 0 {
				t.Fatalf("generated events rejected: %+v", res)
			}
			accepted += res.Accepted
			break
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		snap := decode[monitorJSON](t, do(t, h, http.MethodGet, "/monitors/"+id, ""))
		if snap.Counters.Events >= int64(accepted) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("monitor %s never drained %d events", id, accepted)
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	name string
	data string
}

func parseSSE(t *testing.T, body string) []sseEvent {
	t.Helper()
	var out []sseEvent
	for _, frame := range strings.Split(body, "\n\n") {
		frame = strings.TrimSpace(frame)
		if frame == "" {
			continue
		}
		lines := strings.SplitN(frame, "\n", 2)
		if len(lines) != 2 || !strings.HasPrefix(lines[0], "event: ") || !strings.HasPrefix(lines[1], "data: ") {
			t.Fatalf("malformed SSE frame: %q", frame)
		}
		out = append(out, sseEvent{
			name: strings.TrimPrefix(lines[0], "event: "),
			data: strings.TrimPrefix(lines[1], "data: "),
		})
	}
	return out
}

// TestMonitorDriftToSSEAlert is the subsystem's end-to-end acceptance
// test: create a monitor over HTTP, stream a seeded drifting decision
// stream at it, and watch the planted subgroup's alert arrive over SSE —
// while an identical no-drift control stream stays silent.
func TestMonitorDriftToSSEAlert(t *testing.T) {
	s := newTestServer(t, Options{})
	h := s.Handler()
	const events = 12000

	gen := func(shiftAt int) *datagen.DriftStream {
		ds, err := datagen.Drift(42, datagen.DriftConfig{Events: events, ShiftAt: shiftAt})
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}

	drifted := createMonitor(t, h, driftMonitorSpec)
	control := createMonitor(t, h, driftMonitorSpec)

	// Subscribe to the drifted monitor's SSE stream before ingesting, so
	// the test sees every transition live. The handler returns after the
	// monitor is deleted.
	streamed := make(chan string, 1)
	go func() {
		req := httptest.NewRequest(http.MethodGet, "/monitors/"+drifted+"/events", nil)
		ctx, cancel := context.WithTimeout(req.Context(), 30*time.Second)
		defer cancel()
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req.WithContext(ctx))
		streamed <- w.Body.String()
	}()

	ingestDrift(t, h, drifted, gen(events/2))
	ingestDrift(t, h, control, gen(events)) // ShiftAt == Events: no drift

	// Deleting the monitor closes the SSE stream with a "deleted" event.
	if w := do(t, h, http.MethodDelete, "/monitors/"+drifted, ""); w.Code != http.StatusOK {
		t.Fatalf("delete = %d: %s", w.Code, w.Body.String())
	}
	frames := parseSSE(t, <-streamed)

	if len(frames) == 0 || frames[0].name != "snapshot" {
		t.Fatalf("stream did not open with a snapshot: %+v", frames)
	}
	if frames[len(frames)-1].name != "deleted" {
		t.Fatalf("stream did not close with a deleted event: %+v", frames[len(frames)-1])
	}

	// The planted subgroup must fire, and — hysteresis — from the warning
	// state, never straight from ok.
	fired := false
	var lastSeq int64
	for _, f := range frames {
		if f.name != "alert" {
			continue
		}
		var tr monitor.Transition
		if err := json.Unmarshal([]byte(f.data), &tr); err != nil {
			t.Fatalf("decoding alert %q: %v", f.data, err)
		}
		if tr.Seq <= lastSeq {
			t.Fatalf("SSE transitions out of order: seq %d after %d", tr.Seq, lastSeq)
		}
		lastSeq = tr.Seq
		if tr.To == "firing" && len(tr.Itemset) == 1 && tr.Itemset[0] == "attr0=a0_v0" {
			fired = true
			if tr.From != "warning" {
				t.Errorf("alert fired from %q, want the warning rung of the hysteresis ladder", tr.From)
			}
			if tr.Divergence <= 0 {
				t.Errorf("firing transition carries divergence %v, want > 0", tr.Divergence)
			}
			if tr.Metric != "FPR" {
				t.Errorf("firing transition metric = %q", tr.Metric)
			}
		}
	}
	if !fired {
		t.Fatalf("no firing alert for attr0=a0_v0 on the SSE stream; frames: %+v", frames)
	}

	// The control monitor must be silent: no alerts fired, ever.
	snap := decode[monitorJSON](t, do(t, h, http.MethodGet, "/monitors/"+control, ""))
	if snap.Counters.AlertsFired != 0 {
		t.Fatalf("control stream fired %d alerts", snap.Counters.AlertsFired)
	}
}

func TestMonitorCRUDAndErrors(t *testing.T) {
	s := newTestServer(t, Options{})
	h := s.Handler()

	if w := do(t, h, http.MethodPost, "/monitors", `{"attributes": []}`); w.Code != http.StatusBadRequest {
		t.Errorf("empty spec = %d, want 400", w.Code)
	}
	if w := do(t, h, http.MethodPost, "/monitors", `not json`); w.Code != http.StatusBadRequest {
		t.Errorf("bad json = %d, want 400", w.Code)
	}
	if w := do(t, h, http.MethodGet, "/monitors/nope", ""); w.Code != http.StatusNotFound {
		t.Errorf("unknown get = %d, want 404", w.Code)
	}
	if w := do(t, h, http.MethodDelete, "/monitors/nope", ""); w.Code != http.StatusNotFound {
		t.Errorf("unknown delete = %d, want 404", w.Code)
	}
	if w := do(t, h, http.MethodPost, "/monitors/nope/events", `{}`); w.Code != http.StatusNotFound {
		t.Errorf("unknown ingest = %d, want 404", w.Code)
	}
	if w := do(t, h, http.MethodGet, "/monitors/nope/events", ""); w.Code != http.StatusNotFound {
		t.Errorf("unknown events = %d, want 404", w.Code)
	}

	id := createMonitor(t, h, driftMonitorSpec)
	list := do(t, h, http.MethodGet, "/monitors", "")
	if list.Code != http.StatusOK || !strings.Contains(list.Body.String(), id) {
		t.Fatalf("list = %d: %s", list.Code, list.Body.String())
	}

	// Ingest with one invalid line: 202 with per-line accounting.
	body := `{"t":0,"attrs":{"attr0":"a0_v0","attr1":"a1_v0","attr2":"a2_v0"},"truth":1,"pred":1}` + "\nnot json\n"
	w := do(t, h, http.MethodPost, "/monitors/"+id+"/events", body)
	if w.Code != http.StatusAccepted {
		t.Fatalf("ingest = %d: %s", w.Code, w.Body.String())
	}
	res := decode[monitor.IngestResult](t, w)
	if res.Accepted != 1 || res.Invalid != 1 || res.Error == "" {
		t.Fatalf("ingest result %+v", res)
	}

	if w := do(t, h, http.MethodDelete, "/monitors/"+id, ""); w.Code != http.StatusOK {
		t.Fatalf("delete = %d", w.Code)
	}
	if w := do(t, h, http.MethodGet, "/monitors/"+id, ""); w.Code != http.StatusNotFound {
		t.Errorf("get after delete = %d, want 404", w.Code)
	}
}

func TestMonitorCreateLimit(t *testing.T) {
	mgr := monitor.NewManager(monitor.Config{MaxMonitors: 1})
	s := newTestServer(t, Options{Monitors: mgr})
	h := s.Handler()
	createMonitor(t, h, driftMonitorSpec)
	w := do(t, h, http.MethodPost, "/monitors", driftMonitorSpec)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-limit create = %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestStatszMonitorsUnderLoad hammers /statsz while monitors are being
// created, fed, and deleted concurrently: the monitors section must stay
// well-formed, and lifetime counters must be monotonic (deleted monitors
// fold into the totals rather than vanishing from them).
func TestStatszMonitorsUnderLoad(t *testing.T) {
	s := newTestServer(t, Options{})
	h := s.Handler()

	ds, err := datagen.Drift(3, datagen.DriftConfig{Events: 2000})
	if err != nil {
		t.Fatal(err)
	}
	ids := make(chan string, 4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for round := 0; round < 4; round++ {
			id := createMonitor(t, h, driftMonitorSpec)
			ids <- id
			for from := 0; from < len(ds.Events); from += 100 {
				w := do(t, h, http.MethodPost, "/monitors/"+id+"/events", string(ds.Body(from, from+100)))
				if w.Code == http.StatusTooManyRequests {
					time.Sleep(time.Millisecond)
					continue
				}
			}
			if round%2 == 1 {
				do(t, h, http.MethodDelete, "/monitors/"+id, "")
			}
		}
	}()

	var lastEvents, lastCreated int64
	sample := func() {
		t.Helper()
		w := do(t, h, http.MethodGet, "/statsz", "")
		if w.Code != http.StatusOK {
			t.Fatalf("statsz = %d", w.Code)
		}
		stats := decode[statszJSON](t, w)
		m := stats.Monitors
		if m.Active < 0 || m.Created < m.Deleted {
			t.Fatalf("implausible monitor stats: %+v", m)
		}
		if m.Events < lastEvents {
			t.Fatalf("events_ingested went backwards: %d -> %d", lastEvents, m.Events)
		}
		if m.Created < lastCreated {
			t.Fatalf("created went backwards: %d -> %d", lastCreated, m.Created)
		}
		lastEvents, lastCreated = m.Events, m.Created
	}
	for {
		select {
		case <-done:
			sample()
			if lastCreated != 4 {
				t.Fatalf("final created = %d, want 4", lastCreated)
			}
			if lastEvents == 0 {
				t.Fatal("statsz never saw ingested events")
			}
			// Drain the id channel so nothing leaks into other tests.
			for len(ids) > 0 {
				<-ids
			}
			return
		default:
			sample()
			time.Sleep(time.Millisecond)
		}
	}
}
