package server

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/jobs"
	"repro/internal/registry"
)

// steppedEngine builds an engine whose analyze publishes `steps` partial
// snapshots, pausing at a gate after each so tests can sample the HTTP
// surface between updates deterministically.
func steppedEngine(t *testing.T, reg *registry.Registry, steps int) (*jobs.Engine, chan struct{}, chan struct{}) {
	t.Helper()
	emitted := make(chan struct{})
	release := make(chan struct{})
	engine, err := jobs.New(jobs.Config{
		Registry: reg,
		Workers:  1,
		Analyze: func(ctx context.Context, _ *dataset.Dataset, _ jobs.Spec, tr *jobs.Tracker) (*core.Result, error) {
			for i := 1; i <= steps; i++ {
				tr.Partial(jobs.Snapshot{Done: i, Total: steps, Patterns: int64(i)})
				tr.Progress(i, steps)
				select {
				case emitted <- struct{}{}:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				select {
				case <-release:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return nil, fmt.Errorf("%w: stepped analyze carries no result", jobs.ErrBadInput)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return engine, emitted, release
}

func TestJobPartialEndpoint(t *testing.T) {
	reg := registry.New(0)
	engine, emitted, release := steppedEngine(t, reg, 3)
	s := newTestServer(t, Options{Registry: reg, Engine: engine})
	h := s.Handler()

	if w := do(t, h, http.MethodGet, "/jobs/nope/partial", ""); w.Code != http.StatusNotFound {
		t.Errorf("partial of unknown job = %d, want 404", w.Code)
	}

	w := do(t, h, http.MethodPost, "/jobs", sampleCSV)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", w.Code, w.Body.String())
	}
	id := decode[jobJSON](t, w).ID

	// Sample /partial after each emitted snapshot: seq and done must grow
	// monotonically exactly in step.
	var lastSeq int64
	for i := 1; i <= 3; i++ {
		<-emitted
		w := do(t, h, http.MethodGet, "/jobs/"+id+"/partial", "")
		if w.Code != http.StatusOK {
			t.Fatalf("step %d: GET partial = %d: %s", i, w.Code, w.Body.String())
		}
		snap := decode[jobs.Snapshot](t, w)
		if snap.Done != i || snap.Total != 3 {
			t.Errorf("step %d: partial = %+v", i, snap)
		}
		if snap.Seq <= lastSeq {
			t.Errorf("step %d: seq %d did not grow past %d", i, snap.Seq, lastSeq)
		}
		lastSeq = snap.Seq
		release <- struct{}{}
	}
	st := pollJob(t, h, id)
	if st.State != "failed" { // the stepped analyze ends in a failure by design
		t.Fatalf("final state = %s", st.State)
	}
	// The last snapshot stays readable after the job is terminal.
	if w := do(t, h, http.MethodGet, "/jobs/"+id+"/partial", ""); w.Code != http.StatusOK {
		t.Errorf("partial after terminal = %d, want 200", w.Code)
	}
}

func TestJobPartialNoContentBeforeFirstSnapshot(t *testing.T) {
	reg := registry.New(0)
	started := make(chan struct{}, 1)
	engine, err := jobs.New(jobs.Config{
		Registry: reg,
		Workers:  1,
		Analyze: func(ctx context.Context, _ *dataset.Dataset, _ jobs.Spec, _ *jobs.Tracker) (*core.Result, error) {
			started <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Options{Registry: reg, Engine: engine})
	h := s.Handler()
	w := do(t, h, http.MethodPost, "/jobs", sampleCSV)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", w.Code)
	}
	id := decode[jobJSON](t, w).ID
	<-started
	if w := do(t, h, http.MethodGet, "/jobs/"+id+"/partial", ""); w.Code != http.StatusNoContent {
		t.Errorf("partial before first snapshot = %d, want 204", w.Code)
	}
	if w := do(t, h, http.MethodDelete, "/jobs/"+id, ""); w.Code != http.StatusOK {
		t.Fatal("cancel failed")
	}
}

func TestJobEventsStream(t *testing.T) {
	s := newTestServer(t, Options{})
	h := s.Handler()

	if w := do(t, h, http.MethodGet, "/jobs/nope/events", ""); w.Code != http.StatusNotFound {
		t.Errorf("events of unknown job = %d, want 404", w.Code)
	}

	w := do(t, h, http.MethodPost, "/jobs?metric=FPR", sampleCSV)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", w.Code, w.Body.String())
	}
	id := decode[jobJSON](t, w).ID

	// The handler runs the stream to completion before returning, so a
	// plain recorder captures the whole event sequence.
	ev := do(t, h, http.MethodGet, "/jobs/"+id+"/events", "")
	if ev.Code != http.StatusOK {
		t.Fatalf("GET events = %d: %s", ev.Code, ev.Body.String())
	}
	if ct := ev.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("events content type = %q", ct)
	}
	body := ev.Body.String()
	if !strings.Contains(body, "event: state") {
		t.Errorf("stream carries no state events:\n%s", body)
	}
	// The stream must end with the terminal state delivered.
	if !strings.Contains(body, `"state": "done"`) && !strings.Contains(body, `"state":"done"`) {
		t.Errorf("stream never delivered the done state:\n%s", body)
	}
	// Every event is a well-formed SSE frame: event line, data line, blank.
	for _, frame := range strings.Split(strings.TrimSuffix(body, "\n\n"), "\n\n") {
		lines := strings.SplitN(frame, "\n", 2)
		if len(lines) != 2 || !strings.HasPrefix(lines[0], "event: ") || !strings.HasPrefix(lines[1], "data: ") {
			t.Errorf("malformed SSE frame: %q", frame)
		}
	}
}

func TestJobEventsStreamDeliversPartials(t *testing.T) {
	reg := registry.New(0)
	engine, emitted, release := steppedEngine(t, reg, 2)
	s := newTestServer(t, Options{Registry: reg, Engine: engine})
	h := s.Handler()
	w := do(t, h, http.MethodPost, "/jobs", sampleCSV)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", w.Code)
	}
	id := decode[jobJSON](t, w).ID

	// Drive the job while the stream is being consumed concurrently.
	done := make(chan string, 1)
	go func() {
		ev := do(t, h, http.MethodGet, "/jobs/"+id+"/events", "")
		done <- ev.Body.String()
	}()
	for i := 0; i < 2; i++ {
		<-emitted
		release <- struct{}{}
	}
	select {
	case body := <-done:
		if !strings.Contains(body, "event: partial") {
			t.Errorf("stream carries no partial events:\n%s", body)
		}
		if !strings.Contains(body, `"state": "failed"`) && !strings.Contains(body, `"state":"failed"`) {
			t.Errorf("stream never delivered the terminal state:\n%s", body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("events stream never terminated")
	}
}

// TestStatszUnderConcurrentLoad hammers submission, cancellation and
// /statsz reads concurrently; with -race this doubles as the counter
// synchronization audit, and afterwards the counters must reconcile.
func TestStatszUnderConcurrentLoad(t *testing.T) {
	reg := registry.New(0)
	engine, err := jobs.New(jobs.Config{Registry: reg, Workers: 2, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Options{Registry: reg, Engine: engine})
	h := s.Handler()

	const submitters, perSubmitter = 4, 10
	var mu sync.Mutex
	var accepted []string
	var rejected int64
	stop := make(chan struct{})

	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if w := do(t, h, http.MethodGet, "/statsz", ""); w.Code != http.StatusOK {
					t.Errorf("statsz = %d", w.Code)
					return
				}
			}
		}()
	}

	var writers sync.WaitGroup
	for g := 0; g < submitters; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < perSubmitter; i++ {
				// Distinct supports spread the cache keys; collisions are
				// fine and exercise the cache-hit counters instead.
				support := fmt.Sprintf("0.%02d", (g*perSubmitter+i)%99+1)
				w := do(t, h, http.MethodPost, "/jobs?support="+support+"&metric=FPR", sampleCSV)
				switch w.Code {
				case http.StatusAccepted:
					id := decode[jobJSON](t, w).ID
					mu.Lock()
					accepted = append(accepted, id)
					mu.Unlock()
					if i%3 == 0 { // cancel a share of them mid-flight
						do(t, h, http.MethodDelete, "/jobs/"+id, "")
					}
				case http.StatusTooManyRequests:
					mu.Lock()
					rejected++
					mu.Unlock()
				default:
					t.Errorf("submit = %d: %s", w.Code, w.Body.String())
				}
			}
		}(g)
	}
	writers.Wait()
	for _, id := range accepted {
		pollJob(t, h, id)
	}
	close(stop)
	readers.Wait()

	stats := decode[statszJSON](t, do(t, h, http.MethodGet, "/statsz", ""))
	if stats.Jobs.Submitted != int64(len(accepted)) {
		t.Errorf("submitted = %d, want %d", stats.Jobs.Submitted, len(accepted))
	}
	if got := stats.Jobs.Completed + stats.Jobs.Failed + stats.Jobs.Canceled; got != int64(len(accepted)) {
		t.Errorf("terminal counters sum to %d, want %d (%+v)", got, len(accepted), stats.Jobs)
	}
	if stats.Jobs.Rejected != rejected {
		t.Errorf("rejected = %d, want %d", stats.Jobs.Rejected, rejected)
	}
	if stats.Jobs.Busy != 0 || stats.Jobs.QueueLen != 0 {
		t.Errorf("idle engine reports busy=%d queue=%d", stats.Jobs.Busy, stats.Jobs.QueueLen)
	}
}
