// Cluster integration: the serving-layer half of internal/cluster.
//
// The cluster layer owns placement (consistent-hash ring), failure
// detection (phi-accrual gossip), forwarding (hedged retries) and
// replica streaming; this file supplies everything those mechanisms
// need from a concrete node — running a forwarded job on the local
// engine, storing verified replica payloads in the registry, adopting a
// dead peer's jobs — plus the HTTP endpoints peers deliver into and the
// admission bookkeeping shared by the single-node and clustered submit
// paths.

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/registry"
)

// TenantHeader names the request header carrying the submitting tenant
// for admission control. Absent or empty means the default tenant.
const TenantHeader = "X-Tenant"

// replicateTimeout bounds one background replication fan-out (spill or
// job record). Replication is an availability optimization; a slow or
// dead peer must not pin goroutines forever.
const replicateTimeout = 30 * time.Second

func tenantOf(r *http.Request) string {
	return strings.TrimSpace(r.Header.Get(TenantHeader))
}

// AttachCluster wires a cluster node into the server: handleJobSubmit
// starts routing by dataset ownership, Handler mounts the /internal/*
// peer endpoints, and terminal jobs replicate their records to the
// dataset's other owners. Call it after cluster.NewNode (whose Local
// side is ClusterLocal) and before Handler.
func (s *Server) AttachCluster(n *cluster.Node) { s.cluster = n }

// Cluster returns the attached cluster node, or nil when single-node.
func (s *Server) Cluster() *cluster.Node { return s.cluster }

// ClusterLocal returns the cluster.Local implementation over this
// server, for cluster.Options.Local.
func (s *Server) ClusterLocal() cluster.Local { return clusterLocal{s} }

// clusterLocal implements cluster.Local over a Server.
type clusterLocal struct{ s *Server }

// RunJob is the terminal hop of a forward (or a local submission routed
// through the cluster layer): register the carried CSV if any, admit
// the tenant, and enqueue under the forwarder-minted ID. Idempotent in
// req.ID — hedged duplicates are acknowledged with the existing job.
func (cl clusterLocal) RunJob(ctx context.Context, req cluster.JobRequest) (cluster.JobAck, error) {
	s := cl.s
	if req.ID == "" {
		return cluster.JobAck{}, fmt.Errorf("%w: forwarded job without an id", cluster.ErrPeerRejected)
	}
	if job, ok := s.engine.Get(req.ID); ok {
		return s.ackOf(job), nil
	}
	var spec jobs.Spec
	if err := json.Unmarshal(req.SpecJSON, &spec); err != nil {
		return cluster.JobAck{}, fmt.Errorf("%w: bad forwarded spec: %v", cluster.ErrPeerRejected, err)
	}
	if spec.Dataset == "" {
		spec.Dataset = registry.Hash(req.Dataset)
	}
	spec.Tenant = req.Tenant
	var bytes int64
	if len(req.CSV) > 0 {
		entry, existed, err := s.reg.Register(req.CSV, csvOptions())
		if err != nil {
			return cluster.JobAck{}, fmt.Errorf("%w: registering forwarded csv: %v", cluster.ErrPeerRejected, err)
		}
		if string(entry.Hash) != req.Dataset {
			return cluster.JobAck{}, fmt.Errorf("%w: forwarded csv hashes to %s, not %s",
				cluster.ErrPeerRejected, entry.Hash, req.Dataset)
		}
		if !existed {
			// Push the bytes to the hash's other owners now, so a
			// replica that later adopts this job can actually re-mine it.
			s.replicateSpill(entry.Hash, registry.Canonicalize(req.CSV))
		}
		bytes = entry.Bytes
	} else if entry, ok := s.reg.Get(spec.Dataset); ok {
		bytes = entry.Bytes
	}
	job, err := s.submitLocal(req.ID, spec, bytes)
	if err != nil {
		if isRejection(err) {
			// Definitive refusal: the forwarder must not hedge one
			// tenant's quota denial into a cluster-wide retry storm.
			return cluster.JobAck{}, fmt.Errorf("%w: %w", cluster.ErrPeerRejected, err)
		}
		return cluster.JobAck{}, err
	}
	// Hand the accepted record to the dataset's other owners so one of
	// them can adopt the job if this node dies mid-mine.
	s.replicateJobRecord(job)
	return s.ackOf(job), nil
}

// StoreReplica accepts a verified replica payload from a peer. Spill
// payloads (canonicalized CSV bytes, checksummed by the cluster layer)
// are registered so the dataset is resident for failover re-mines; job
// records live in the cluster layer's handoff table and need nothing
// engine-side until the origin dies.
func (cl clusterLocal) StoreReplica(origin cluster.NodeID, kind, key string, data []byte) error {
	s := cl.s
	if kind != cluster.ReplicaSpill {
		return nil
	}
	entry, _, err := s.reg.Register(data, csvOptions())
	if err != nil {
		return fmt.Errorf("server: storing spill replica %s from %s: %w", key, origin, err)
	}
	if string(entry.Hash) != key {
		// The chunk checksum already matched, so the sender keyed the
		// payload by something other than its content hash.
		s.reg.Remove(entry.Hash)
		return fmt.Errorf("server: spill replica keyed %s but hashes to %s", key, entry.Hash)
	}
	return nil
}

// jobReplicaPayload is the serving-layer payload inside a replicated
// cluster.JobRecord: the spec to (re-)run, the terminal state when the
// record marks completion, and the durable summary for done jobs.
type jobReplicaPayload struct {
	Spec    jobs.Spec           `json:"spec"`
	State   string              `json:"state,omitempty"`
	Summary *jobs.ResultSummary `json:"summary,omitempty"`
}

// AdoptJob re-homes one job record from a dead peer. In-flight records
// re-run the job here under its original ID; done records install the
// durable summary with the full result re-mining lazily through the
// rehydrate path; failed and canceled records need nothing — the job
// finished, there is just nothing left to serve.
func (cl clusterLocal) AdoptJob(origin cluster.NodeID, record []byte) error {
	s := cl.s
	var rec cluster.JobRecord
	if err := json.Unmarshal(record, &rec); err != nil {
		return fmt.Errorf("server: bad adopted record from %s: %w", origin, err)
	}
	var pl jobReplicaPayload
	if err := json.Unmarshal(rec.Payload, &pl); err != nil {
		return fmt.Errorf("server: bad adopted payload for job %s: %w", rec.ID, err)
	}
	if pl.Spec.Dataset == "" {
		pl.Spec.Dataset = registry.Hash(rec.Dataset)
	}
	switch {
	case !rec.Done:
		// Adoption bypasses admission: the origin already admitted the
		// tenant, and failover must not re-reject accepted work.
		_, err := s.engine.SubmitAdopted(rec.ID, pl.Spec)
		return err
	case pl.State == jobs.StateDone.String() && pl.Summary != nil:
		_, err := s.engine.AdoptDone(rec.ID, pl.Spec, pl.Summary)
		return err
	default:
		return nil
	}
}

// ackOf snapshots a job as the cluster acknowledgement shape.
func (s *Server) ackOf(j *jobs.Job) cluster.JobAck {
	ack := cluster.JobAck{ID: j.ID(), State: j.Snapshot().State.String()}
	if n := s.cluster; n != nil {
		ack.Node = n.Self()
	}
	return ack
}

// submitLocal is the shared local submission path: admit the tenant,
// then enqueue under a pre-minted ID so hedged duplicates merge. The
// grant is released on enqueue failure and otherwise at terminal time
// (jobTerminal).
func (s *Server) submitLocal(id string, spec jobs.Spec, bytes int64) (*jobs.Job, error) {
	if err := s.admitJob(id, spec.Tenant, bytes); err != nil {
		return nil, err
	}
	job, err := s.engine.SubmitAdopted(id, spec)
	if err != nil {
		s.releaseJob(id)
		return nil, err
	}
	return job, nil
}

// admittedJob records one admission grant for release at terminal time.
type admittedJob struct {
	tenant string
	bytes  int64
}

// admitJob charges (tenant, bytes) against the admission controller and
// records the grant under the job ID. Duplicate IDs (hedged forwards)
// are admitted once. No controller means everything is admitted.
func (s *Server) admitJob(id, tenant string, bytes int64) error {
	if s.admission == nil {
		return nil
	}
	s.admMu.Lock()
	if _, dup := s.admitted[id]; dup {
		s.admMu.Unlock()
		return nil
	}
	s.admMu.Unlock()
	if err := s.admission.Admit(tenant, bytes); err != nil {
		return err
	}
	s.admMu.Lock()
	if _, dup := s.admitted[id]; dup {
		// A concurrent duplicate won the race; fold this grant back.
		s.admMu.Unlock()
		s.admission.Release(tenant, bytes)
		return nil
	}
	s.admitted[id] = admittedJob{tenant: tenant, bytes: bytes}
	s.admMu.Unlock()
	return nil
}

// releaseJob returns the job's admission grant, if one was recorded.
func (s *Server) releaseJob(id string) {
	if s.admission == nil {
		return
	}
	s.admMu.Lock()
	grant, ok := s.admitted[id]
	delete(s.admitted, id)
	s.admMu.Unlock()
	if ok {
		s.admission.Release(grant.tenant, grant.bytes)
	}
}

// jobTerminal is the engine's OnTerminal hook: release the admission
// grant and replicate the terminal record to the dataset's other
// owners, so an adopter knows the job needs no re-run (done records
// additionally carry the summary and the re-mine recipe).
func (s *Server) jobTerminal(j *jobs.Job) {
	s.releaseJob(j.ID())
	s.replicateTerminalRecord(j)
}

// replicateJobRecord pushes a freshly accepted job's record to the
// dataset's other owners, in the background — replication is an
// availability optimization and must not sit on the submit path.
func (s *Server) replicateJobRecord(j *jobs.Job) {
	n := s.cluster
	if n == nil {
		return
	}
	spec := j.Spec()
	payload, err := json.Marshal(jobReplicaPayload{Spec: spec})
	if err != nil {
		return
	}
	s.replicateRecord(n, cluster.JobRecord{ID: j.ID(), Dataset: string(spec.Dataset), Payload: payload})
}

// replicateTerminalRecord pushes a terminal job record to the dataset's
// other owners. Done jobs carry the durable summary (immediately
// servable on the adopter) and the spec (the lazy re-mine recipe);
// failed and canceled jobs replicate a bare terminal marker so replicas
// do not resurrect them after this node dies.
func (s *Server) replicateTerminalRecord(j *jobs.Job) {
	n := s.cluster
	if n == nil {
		return
	}
	st := j.Snapshot()
	pl := jobReplicaPayload{Spec: st.Spec, State: st.State.String()}
	if st.State == jobs.StateDone {
		pl.Summary = j.Summary()
	}
	payload, err := json.Marshal(pl)
	if err != nil {
		return
	}
	s.replicateRecord(n, cluster.JobRecord{ID: j.ID(), Dataset: string(st.Spec.Dataset), Done: true, Payload: payload})
}

// lint:ignore ctxflow replication outlives the request that triggered it; the fan-out is bounded by its own timeout, not the caller's
func (s *Server) replicateRecord(n *cluster.Node, rec cluster.JobRecord) {
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), replicateTimeout)
		defer cancel()
		n.ReplicateJobRecord(ctx, rec)
	}()
}

// replicateSpill pushes a dataset's canonical bytes to the other owners
// of its hash, in the background.
// lint:ignore ctxflow replication outlives the upload request; bounded by its own timeout
func (s *Server) replicateSpill(hash registry.Hash, canonical []byte) {
	n := s.cluster
	if n == nil {
		return
	}
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), replicateTimeout)
		defer cancel()
		n.ReplicateSpill(ctx, string(hash), canonical)
	}()
}

// isRejection reports whether a submit failure is a definitive refusal
// (quota, rate, queue capacity) as opposed to a transient fault.
func isRejection(err error) bool {
	var denied *admission.Denied
	return errors.As(err, &denied) || errors.Is(err, jobs.ErrQueueFull)
}

// retryAfterSeconds renders a Retry-After header value, at least 1s.
func retryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// writeSubmitError maps job-submission failures — local or forwarded —
// to HTTP statuses: admission denials and full queues are 429 with
// Retry-After (the explicit backpressure contract), a draining engine
// is 503, a definitive peer rejection surfaces as 429 so clients back
// off, and an unreachable replica set is 502.
func writeSubmitError(w http.ResponseWriter, err error) {
	var denied *admission.Denied
	switch {
	case errors.As(err, &denied):
		w.Header().Set("Retry-After", retryAfterSeconds(denied.RetryAfter))
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, jobs.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, jobs.ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, cluster.ErrPeerRejected):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, cluster.ErrPeerUnreachable):
		writeError(w, http.StatusBadGateway, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// decodeInternal reads and decodes one peer-to-peer request body.
func (s *Server) decodeInternal(w http.ResponseWriter, r *http.Request, v any) bool {
	body, ok := s.readBody(w, r)
	if !ok {
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeError(w, http.StatusBadRequest, "decoding cluster request: "+err.Error())
		return false
	}
	return true
}

// handleGossip implements POST /internal/gossip: fold a peer's
// heartbeat (and its piggybacked liveness view) into the detector.
func (s *Server) handleGossip(w http.ResponseWriter, r *http.Request) {
	var hb cluster.Heartbeat
	if !s.decodeInternal(w, r, &hb) {
		return
	}
	s.cluster.HandleHeartbeat(hb)
	writeJSON(w, http.StatusOK, struct{}{})
}

// handleForwardedJob implements POST /internal/jobs — the receiving end
// of a peer's hedged forward. Definitive refusals answer 4xx (the
// transport maps them to ErrPeerRejected, stopping the hedge), and
// transient faults answer 5xx (mapped to ErrPeerUnreachable, letting
// the forwarder try the next replica).
func (s *Server) handleForwardedJob(w http.ResponseWriter, r *http.Request) {
	var req cluster.JobRequest
	if !s.decodeInternal(w, r, &req) {
		return
	}
	ack, err := s.cluster.HandleForwardJob(r.Context(), req)
	if err != nil {
		var denied *admission.Denied
		switch {
		case errors.As(err, &denied):
			w.Header().Set("Retry-After", retryAfterSeconds(denied.RetryAfter))
			writeError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, jobs.ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, jobs.ErrShuttingDown):
			writeError(w, http.StatusServiceUnavailable, err.Error())
		case errors.Is(err, cluster.ErrPeerRejected):
			writeError(w, http.StatusBadRequest, err.Error())
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, ack)
}

// handleReplicate implements POST /internal/replicate: one chunk of a
// streaming replica payload. Resume acks (offset mismatch) are 200 with
// the receiver's high-water mark; verification failures are definitive
// 4xx rejections.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	var chunk cluster.ReplicaChunk
	if !s.decodeInternal(w, r, &chunk) {
		return
	}
	ack, err := s.cluster.HandleReplicate(chunk)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ack)
}

// NewFairJobQueue builds a jobs.Queue that drains tenants by weighted
// fair queueing (internal/admission) instead of global FIFO, so one
// tenant's burst cannot starve the others. Weights come from ctrl's
// per-tenant limits; a nil ctrl gives every tenant weight 1. Install it
// via jobs.Config.Queue.
func NewFairJobQueue(capacity int, ctrl *admission.Controller) jobs.Queue {
	var weightOf func(string) float64
	if ctrl != nil {
		weightOf = ctrl.Weight
	}
	return fairJobQueue{q: admission.NewFairQueue[*jobs.Job](capacity, weightOf)}
}

// fairJobQueue adapts admission.FairQueue to the engine's Queue seam.
type fairJobQueue struct{ q *admission.FairQueue[*jobs.Job] }

func (f fairJobQueue) Push(j *jobs.Job) bool  { return f.q.Push(j.Spec().Tenant, j) }
func (f fairJobQueue) Pop() (*jobs.Job, bool) { return f.q.Pop() }
func (f fairJobQueue) Len() int               { return f.q.Len() }
func (f fairJobQueue) Cap() int               { return f.q.Cap() }
func (f fairJobQueue) Close()                 { f.q.Close() }
