package server

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/jobs"
	"repro/internal/registry"
)

// degradedJSON mirrors the degraded-result payload for decoding.
type degradedJSON struct {
	Degraded bool                 `json:"degraded"`
	Reason   string               `json:"degraded_reason"`
	Rows     int                  `json:"rows"`
	Metrics  []jobs.MetricSummary `json:"metrics"`
}

// durableServer builds a server whose engine recovers (and then writes
// through to) the job store rooted at dir — the wiring of
// divexplorer-server -store-dir. It returns the handler and the number
// of jobs recovered.
func durableServer(t *testing.T, dir string, reg *registry.Registry) (http.Handler, int) {
	t.Helper()
	engine, err := jobs.New(jobs.Config{Registry: reg, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	n, err := engine.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Options{Registry: reg, Engine: engine})
	return s.Handler(), n
}

// snapshotWAL copies the live store log into a fresh directory — the
// crash simulation. Terminal records are fsynced before the client hears
// about them, so a copy taken while the first server is still running is
// exactly the disk state a crash would leave behind.
func snapshotWAL(t *testing.T, src string) string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(src, jobs.WALName))
	if err != nil {
		t.Fatal(err)
	}
	dst := t.TempDir()
	if err := os.WriteFile(filepath.Join(dst, jobs.WALName), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestRestartServesFullResult is the acceptance scenario for full-result
// durability, end to end over HTTP: submit a job, crash (copy the WAL
// out from under the server), restart with the dataset re-registered,
// and GET /jobs/{id}/result — the response must be byte-identical to the
// pre-crash one, with /statsz accounting for exactly one rehydration.
func TestRestartServesFullResult(t *testing.T) {
	dir := t.TempDir()
	h1, n := durableServer(t, dir, registry.New(0))
	if n != 0 {
		t.Fatalf("fresh store recovered %d jobs", n)
	}

	w := do(t, h1, http.MethodPost, "/datasets", sampleCSV)
	if w.Code != http.StatusOK {
		t.Fatalf("POST /datasets = %d: %s", w.Code, w.Body.String())
	}
	hash := decode[datasetJSON](t, w).Hash

	w = do(t, h1, http.MethodPost, "/jobs?dataset="+hash+"&support=0.05&metric=FPR,FNR&eps=0.01&alpha=0.1", "")
	if w.Code != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d: %s", w.Code, w.Body.String())
	}
	id := decode[jobJSON](t, w).ID
	if st := pollJob(t, h1, id); st.State != "done" {
		t.Fatalf("job: %+v", st)
	}
	w = do(t, h1, http.MethodGet, "/jobs/"+id+"/result", "")
	if w.Code != http.StatusOK {
		t.Fatalf("pre-crash GET result = %d: %s", w.Code, w.Body.String())
	}
	before := append([]byte(nil), w.Body.Bytes()...)

	// Crash: the new process sees only what hit the disk.
	dir2 := snapshotWAL(t, dir)

	// The restarted server's registry is fresh; the client re-uploads the
	// dataset (same canonical bytes → same content hash).
	reg2 := registry.New(0)
	h2, n := durableServer(t, dir2, reg2)
	if n != 1 {
		t.Fatalf("recovered %d jobs, want 1", n)
	}
	w = do(t, h2, http.MethodPost, "/datasets", sampleCSV)
	if got := decode[datasetJSON](t, w).Hash; got != hash {
		t.Fatalf("re-uploaded dataset hashed to %s, want %s", got, hash)
	}

	w = do(t, h2, http.MethodGet, "/jobs/"+id, "")
	if st := decode[jobJSON](t, w); st.State != "done" || !st.Recovered || st.ResultURL == "" {
		t.Fatalf("recovered job status = %+v, want done+recovered with a result URL", st)
	}

	w = do(t, h2, http.MethodGet, "/jobs/"+id+"/result", "")
	if w.Code != http.StatusOK {
		t.Fatalf("post-restart GET result = %d: %s", w.Code, w.Body.String())
	}
	if !bytes.Equal(w.Body.Bytes(), before) {
		t.Errorf("post-restart result differs from the pre-crash bytes:\npre:  %s\npost: %s",
			before, w.Body.Bytes())
	}
	if decode[degradedJSON](t, w).Degraded {
		t.Error("full rehydrated result carries a degraded marker")
	}

	// A second fetch serves the pinned result; the rehydration count stays 1.
	w = do(t, h2, http.MethodGet, "/jobs/"+id+"/result", "")
	if !bytes.Equal(w.Body.Bytes(), before) {
		t.Error("second post-restart fetch differs")
	}
	stats := decode[statszJSON](t, do(t, h2, http.MethodGet, "/statsz", ""))
	if stats.Jobs.Rehydrated != 1 {
		t.Errorf("statsz jobs.rehydrated = %d, want 1", stats.Jobs.Rehydrated)
	}
}

// TestRestartWithoutDatasetDegradesExplicitly covers the other arm of
// the fallback chain: the dataset did not survive the restart and nobody
// re-uploaded it, so the result endpoint serves the durable summary with
// an explicit degraded marker instead of failing.
func TestRestartWithoutDatasetDegradesExplicitly(t *testing.T) {
	dir := t.TempDir()
	h1, _ := durableServer(t, dir, registry.New(0))
	w := do(t, h1, http.MethodPost, "/jobs?support=0.05&metric=FPR", sampleCSV)
	if w.Code != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d: %s", w.Code, w.Body.String())
	}
	id := decode[jobJSON](t, w).ID
	if st := pollJob(t, h1, id); st.State != "done" {
		t.Fatalf("job: %+v", st)
	}
	dir2 := snapshotWAL(t, dir)

	h2, _ := durableServer(t, dir2, registry.New(0))
	w = do(t, h2, http.MethodGet, "/jobs/"+id+"/result", "")
	if w.Code != http.StatusOK {
		t.Fatalf("degraded GET result = %d, want 200: %s", w.Code, w.Body.String())
	}
	deg := decode[degradedJSON](t, w)
	if !deg.Degraded || deg.Reason == "" {
		t.Errorf("degraded payload = %+v, want an explicit marker with a reason", deg)
	}
	if deg.Rows != 14 || len(deg.Metrics) != 1 {
		t.Errorf("degraded payload lost the summary: %+v", deg)
	}
	stats := decode[statszJSON](t, do(t, h2, http.MethodGet, "/statsz", ""))
	if stats.Jobs.Rehydrated != 0 {
		t.Errorf("statsz jobs.rehydrated = %d for a degraded serve, want 0", stats.Jobs.Rehydrated)
	}
}

// TestDatasetDelete exercises DELETE /datasets/{hash} and its interaction
// with job submission.
func TestDatasetDelete(t *testing.T) {
	h := newTestServer(t, Options{}).Handler()
	w := do(t, h, http.MethodPost, "/datasets", sampleCSV)
	hash := decode[datasetJSON](t, w).Hash

	w = do(t, h, http.MethodDelete, "/datasets/"+hash, "")
	if w.Code != http.StatusOK {
		t.Fatalf("DELETE /datasets = %d: %s", w.Code, w.Body.String())
	}
	if got := decode[map[string]string](t, w)["deleted"]; got != hash {
		t.Errorf("delete response = %q, want the hash", got)
	}
	if w := do(t, h, http.MethodGet, "/datasets/"+hash, ""); w.Code != http.StatusNotFound {
		t.Errorf("GET after delete = %d, want 404", w.Code)
	}
	if w := do(t, h, http.MethodDelete, "/datasets/"+hash, ""); w.Code != http.StatusNotFound {
		t.Errorf("double delete = %d, want 404", w.Code)
	}
	// Submitting by the deleted hash now 404s; inline upload re-registers.
	if w := do(t, h, http.MethodPost, "/jobs?dataset="+hash, ""); w.Code != http.StatusNotFound {
		t.Errorf("submit by deleted hash = %d, want 404", w.Code)
	}
	if w := do(t, h, http.MethodPost, "/jobs", sampleCSV); w.Code != http.StatusAccepted {
		t.Errorf("inline resubmit = %d, want 202", w.Code)
	}
}
