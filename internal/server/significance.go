package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/jobs"
	"repro/internal/registry"
)

// POST /significance is the permutation-grounded significance endpoint
// (DESIGN.md §15). It addresses a registered dataset by hash and runs
// multiple-testing control over every mined pattern: Westfall–Young
// max-T permutation FWER control ("wy", the default), permutation FDR
// ("perm-fdr"), or the analytic Benjamini–Hochberg pass ("bh").
// "async": true routes the query through the job engine; permutation
// progress then streams via /jobs/{id} and the final leaderboard via
// /jobs/{id}/partial and /jobs/{id}/result.

// significanceBody is the wire shape of a POST /significance request.
type significanceBody struct {
	Dataset      string  `json:"dataset"`
	Truth        string  `json:"truth"`
	Pred         string  `json:"pred"`
	Support      float64 `json:"support"`
	Metric       string  `json:"metric"`
	Method       string  `json:"method"`
	Alpha        float64 `json:"alpha"`
	Permutations int     `json:"permutations"`
	Seed         int64   `json:"seed"`
	Exhaustive   bool    `json:"exhaustive"`
	TopK         int     `json:"topk"`
	Baseline     bool    `json:"baseline"`
	Async        bool    `json:"async"`
}

// significanceRequest is the parsed form of a POST /significance body.
type significanceRequest struct {
	spec  jobs.SignificanceSpec
	async bool
}

// parseSignificanceBody decodes and validates a POST /significance
// body. It is deliberately a pure []byte -> request function so the
// fuzz target can drive it directly. Range checks the engine also
// performs are duplicated here where cheap; defaults (metric, method,
// alpha, permutations, topk) are left to the engine so the two entry
// points cannot drift.
func parseSignificanceBody(body []byte) (significanceRequest, error) {
	var req significanceRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var b significanceBody
	if err := dec.Decode(&b); err != nil {
		return req, fmt.Errorf("bad significance body: %w", err)
	}
	// A trailing second JSON value is a malformed request, not extra data
	// to silently ignore.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return req, errors.New("bad significance body: trailing data after the JSON object")
	}
	if b.Dataset == "" {
		return req, errors.New("missing dataset hash (register the CSV via POST /datasets first)")
	}
	if b.Support < 0 || b.Support > 1 {
		return req, fmt.Errorf("bad support %v (want [0,1])", b.Support)
	}
	if b.Alpha < 0 || b.Alpha >= 1 {
		return req, fmt.Errorf("bad alpha %v (want (0,1); 0 selects the default)", b.Alpha)
	}
	if b.Permutations < 0 {
		return req, fmt.Errorf("bad permutations %d", b.Permutations)
	}
	if b.TopK < 0 {
		return req, fmt.Errorf("bad topk %d", b.TopK)
	}
	switch b.Method {
	case "", jobs.MethodWY, jobs.MethodPermFDR:
		if b.Exhaustive && b.Permutations != 0 {
			return req, errors.New("exhaustive enumerates all orderings; drop \"permutations\"")
		}
	case jobs.MethodBH:
		if b.Permutations != 0 || b.Exhaustive || b.Seed != 0 {
			return req, errors.New("method \"bh\" is analytic; permutation knobs do not apply")
		}
	default:
		return req, fmt.Errorf("bad method %q (want %q, %q or %q)",
			b.Method, jobs.MethodWY, jobs.MethodPermFDR, jobs.MethodBH)
	}
	support := b.Support
	// lint:ignore floatcmp the zero value is the explicit "use the default" sentinel
	if support == 0 {
		support = 0.05
	}
	req.spec = jobs.SignificanceSpec{
		Dataset:      registry.Hash(b.Dataset),
		TruthCol:     orDefault(b.Truth, "truth"),
		PredCol:      orDefault(b.Pred, "pred"),
		Support:      support,
		Metric:       b.Metric,
		Method:       b.Method,
		Alpha:        b.Alpha,
		Permutations: b.Permutations,
		Seed:         b.Seed,
		Exhaustive:   b.Exhaustive,
		TopK:         b.TopK,
		Baseline:     b.Baseline,
	}
	req.async = b.Async
	return req, nil
}

// handleSignificance implements POST /significance.
func (s *Server) handleSignificance(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	req, err := parseSignificanceBody(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if _, ok := s.reg.Get(req.spec.Dataset); !ok {
		writeError(w, http.StatusNotFound, "dataset "+string(req.spec.Dataset)+" not registered")
		return
	}

	if req.async {
		job, err := s.engine.SubmitSignificance(req.spec)
		switch {
		case errors.Is(err, jobs.ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, jobs.ErrShuttingDown):
			writeError(w, http.StatusServiceUnavailable, err.Error())
		case err != nil:
			s.writeExploreError(w, r, err)
		default:
			writeJSON(w, http.StatusAccepted, jobToJSON(job.Snapshot()))
		}
		return
	}
	out, err := s.engine.Significance(r.Context(), req.spec)
	if err != nil {
		s.writeExploreError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}
