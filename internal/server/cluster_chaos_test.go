// Seeded fault-injection chaos tests over the full server stack: node
// kill mid-mine with replica adoption, slow-walked owners triggering
// hedges, and partition failover with post-heal resurrection. The
// acceptance property throughout: no job is lost and none completes on
// more than one live node.

package server

import (
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/registry"
)

// TestClusterChaosKillOwnerMidMine is the headline failover scenario:
// R=2, five jobs blocked mid-mine on the primary owner, the primary is
// killed, and the surviving replica adopts every handed-off record and
// runs each job to done exactly once among the live nodes.
func TestClusterChaosKillOwnerMidMine(t *testing.T) {
	release := make(chan struct{})
	env := newClusterEnv(t, 42, envConfig{
		analyze:   gatedAnalyze(release),
		heartbeat: 10 * time.Millisecond,
		// Effectively disable hedging so every job deterministically
		// lands on the primary before the kill.
		hedgeAfter: 2 * time.Second,
	}, "n1", "n2", "n3")
	hash := sampleHash()
	owners := env.owners(hash)
	primary, secondary := owners[0], owners[1]
	ingress := env.nonOwner(t, hash)

	const jobsN = 5
	ids := make([]string, 0, jobsN)
	for i := 0; i < jobsN; i++ {
		w := do(t, env.handlers[ingress], http.MethodPost,
			fmt.Sprintf("/jobs?support=0.%02d", i+1), sampleCSV)
		if w.Code != http.StatusAccepted {
			t.Fatalf("submit %d = %d: %s", i, w.Code, w.Body.String())
		}
		ack := decode[ackJSON](t, w)
		if ack.Node != string(primary) {
			t.Fatalf("job %d acked by %s, want primary %s", i, ack.Node, primary)
		}
		ids = append(ids, ack.ID)
	}
	// Every accepted record — and the dataset itself — must reach the
	// replica before the kill, or there is nothing to adopt (or no bytes
	// to re-mine from).
	waitUntil(t, 10*time.Second, "handoff records on the replica", func() bool {
		return env.nodes[secondary].Stats().HandoffRecords >= jobsN
	})
	waitUntil(t, 10*time.Second, "spill replica on the replica", func() bool {
		_, ok := env.servers[secondary].reg.Get(registry.Hash(hash))
		return ok
	})

	env.net.Kill(primary)
	waitUntil(t, 15*time.Second, "death detection and adoption", func() bool {
		return env.nodes[secondary].Stats().Adoptions >= jobsN
	})
	close(release)

	// No job lost: every ID reaches done on the adopter.
	for _, id := range ids {
		if st := pollJob(t, env.handlers[secondary], id); st.State != "done" {
			t.Fatalf("adopted job %s = %s, want done", id, st.State)
		}
	}
	// No duplicate completion: exactly one live node holds each job.
	for _, id := range ids {
		holders := 0
		for _, nid := range []cluster.NodeID{secondary, ingress} {
			if do(t, env.handlers[nid], http.MethodGet, "/jobs/"+id, "").Code == http.StatusOK {
				holders++
			}
		}
		if holders != 1 {
			t.Errorf("job %s visible on %d live nodes, want exactly 1", id, holders)
		}
	}
	if d := env.nodes[secondary].Stats().Deaths; d < 1 {
		t.Errorf("replica deaths = %d, want >= 1", d)
	}
}

// TestClusterChaosSlowOwnerHedges: a slow-walked primary trips the
// hedge timer and the job completes on the next replica instead of
// stalling behind the slow peer.
func TestClusterChaosSlowOwnerHedges(t *testing.T) {
	env := newClusterEnv(t, 9, envConfig{hedgeAfter: 20 * time.Millisecond}, "n1", "n2", "n3")
	hash := sampleHash()
	owners := env.owners(hash)
	ingress := env.nonOwner(t, hash)

	env.net.SlowWalk(owners[0], 300*time.Millisecond)

	start := time.Now()
	w := do(t, env.handlers[ingress], http.MethodPost, "/jobs?metric=FPR", sampleCSV)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", w.Code, w.Body.String())
	}
	ack := decode[ackJSON](t, w)
	if ack.Node != string(owners[1]) {
		t.Fatalf("acked by %s, want the hedged replica %s", ack.Node, owners[1])
	}
	if took := time.Since(start); took >= 300*time.Millisecond {
		t.Errorf("submit took %s, hedging should beat the %s slow-walk", took, 300*time.Millisecond)
	}
	if h := env.nodes[ingress].Stats().Hedges; h < 1 {
		t.Errorf("ingress hedges = %d, want >= 1", h)
	}
	if st := pollJob(t, env.handlers[cluster.NodeID(ack.Node)], ack.ID); st.State != "done" {
		t.Fatalf("hedged job = %+v", st)
	}
}

// TestClusterChaosPartitionFailover: with the primary partitioned away,
// submits fail over to the surviving replica; after the partition
// heals, the primary is resurrected and takes traffic again.
func TestClusterChaosPartitionFailover(t *testing.T) {
	env := newClusterEnv(t, 21, envConfig{
		heartbeat:  10 * time.Millisecond,
		hedgeAfter: 20 * time.Millisecond,
	}, "n1", "n2", "n3")
	hash := sampleHash()
	owners := env.owners(hash)
	primary, secondary := owners[0], owners[1]
	ingress := env.nonOwner(t, hash)

	env.net.Partition([]cluster.NodeID{primary}, []cluster.NodeID{secondary, ingress})

	w := do(t, env.handlers[ingress], http.MethodPost, "/jobs?metric=FPR", sampleCSV)
	if w.Code != http.StatusAccepted {
		t.Fatalf("partitioned submit = %d: %s", w.Code, w.Body.String())
	}
	ack := decode[ackJSON](t, w)
	if ack.Node != string(secondary) {
		t.Fatalf("acked by %s, want failover to %s", ack.Node, secondary)
	}
	if st := pollJob(t, env.handlers[secondary], ack.ID); st.State != "done" {
		t.Fatalf("failover job = %+v", st)
	}
	waitUntil(t, 15*time.Second, "partitioned primary declared dead", func() bool {
		return env.nodes[ingress].Stats().Deaths >= 1
	})

	env.net.HealPartition()
	waitUntil(t, 15*time.Second, "primary resurrected after heal", func() bool {
		return env.nodes[ingress].Stats().Resurrections >= 1
	})
	// The healed primary serves again: a fresh job routes back to it.
	w = do(t, env.handlers[ingress], http.MethodPost, "/jobs?support=0.2", sampleCSV)
	if w.Code != http.StatusAccepted {
		t.Fatalf("post-heal submit = %d: %s", w.Code, w.Body.String())
	}
	ack = decode[ackJSON](t, w)
	if ack.Node != string(primary) {
		t.Fatalf("post-heal ack = %s, want the healed primary %s", ack.Node, primary)
	}
	if st := pollJob(t, env.handlers[primary], ack.ID); st.State != "done" {
		t.Fatalf("post-heal job = %+v", st)
	}
}
