// Multi-tenant admission control over the HTTP API: quota and rate
// denials as 429-with-Retry-After, grant release at terminal time, and
// weighted fair queueing keeping a quiet tenant's latency flat while a
// noisy tenant floods the queue.

package server

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/jobs"
	"repro/internal/registry"
)

// TestAdmissionTenantQuota429: a tenant at its active-job cap gets 429
// with Retry-After while other tenants keep flowing, and the slot frees
// when the running job terminates.
func TestAdmissionTenantQuota429(t *testing.T) {
	reg := registry.New(0)
	release := make(chan struct{})
	engine, err := jobs.New(jobs.Config{Registry: reg, Workers: 4, Analyze: gatedAnalyze(release)})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := admission.NewController(admission.Limits{},
		map[string]admission.Limits{"greedy": {MaxActive: 2}}, nil)
	h := newTestServer(t, Options{Registry: reg, Engine: engine, Admission: ctrl}).Handler()

	var ids []string
	for i, tenant := range []string{"greedy", "greedy", "polite"} {
		w := doTenant(t, h, http.MethodPost, fmt.Sprintf("/jobs?support=0.%02d", i+1), sampleCSV, tenant)
		if w.Code != http.StatusAccepted {
			t.Fatalf("submit %d (%s) = %d: %s", i, tenant, w.Code, w.Body.String())
		}
		ids = append(ids, decode[jobJSON](t, w).ID)
	}
	// Third greedy job: over the cap.
	w := doTenant(t, h, http.MethodPost, "/jobs?support=0.04", sampleCSV, "greedy")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit = %d: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// The default tenant has no cap: an untagged submit still lands.
	if w := do(t, h, http.MethodPost, "/jobs?support=0.05", sampleCSV); w.Code != http.StatusAccepted {
		t.Fatalf("default-tenant submit = %d: %s", w.Code, w.Body.String())
	}

	close(release)
	for _, id := range ids {
		if st := pollJob(t, h, id); st.State != "done" {
			t.Fatalf("job %s = %s", id, st.State)
		}
	}
	// Terminal release: greedy admits again once its jobs finish.
	waitUntil(t, 5*time.Second, "quota slots released at terminal", func() bool {
		return doTenant(t, h, http.MethodPost, "/jobs?support=0.06", sampleCSV, "greedy").Code == http.StatusAccepted
	})
	// The denial shows up in the tenant's statsz row.
	stats := decode[statszJSON](t, do(t, h, http.MethodGet, "/statsz", ""))
	var greedy *admission.TenantStats
	for i := range stats.Admission {
		if stats.Admission[i].Tenant == "greedy" {
			greedy = &stats.Admission[i]
		}
	}
	if greedy == nil || greedy.DeniedJobs < 1 || greedy.Admitted < 3 {
		t.Errorf("greedy statsz row = %+v, want >=1 denial and >=3 admissions", greedy)
	}
}

// TestAdmissionRateLimit429: a token-bucket rate limit denies the
// burst-exceeding submit with a Retry-After matching the refill time.
func TestAdmissionRateLimit429(t *testing.T) {
	ctrl := admission.NewController(admission.Limits{},
		map[string]admission.Limits{"bursty": {JobsPerSec: 0.5, Burst: 1}}, nil)
	h := newTestServer(t, Options{Admission: ctrl}).Handler()

	w := doTenant(t, h, http.MethodPost, "/jobs?support=0.1", sampleCSV, "bursty")
	if w.Code != http.StatusAccepted {
		t.Fatalf("first submit = %d: %s", w.Code, w.Body.String())
	}
	w = doTenant(t, h, http.MethodPost, "/jobs?support=0.2", sampleCSV, "bursty")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("burst-exceeding submit = %d: %s", w.Code, w.Body.String())
	}
	// 1 token at 0.5 tokens/s refills in 2s.
	if ra := w.Header().Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
}

// latencyOf returns a job's created→finished latency from its
// timestamps.
func latencyOf(t *testing.T, st jobJSON) time.Duration {
	t.Helper()
	created, err := time.Parse(time.RFC3339Nano, st.CreatedAt)
	if err != nil {
		t.Fatalf("created_at %q: %v", st.CreatedAt, err)
	}
	finished, err := time.Parse(time.RFC3339Nano, st.FinishedAt)
	if err != nil {
		t.Fatalf("finished_at %q: %v", st.FinishedAt, err)
	}
	return finished.Sub(created)
}

func p50(ds []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// TestAdmissionFairQueueIsolation is the multi-tenant fairness
// acceptance check: with one worker and a noisy tenant flooding the
// queue, a quiet tenant's jobs interleave via weighted fair queueing —
// its p50 stays within 2x the unloaded baseline (plus scheduling
// slack), and all its jobs finish before the noisy backlog drains,
// which FIFO would invert.
func TestAdmissionFairQueueIsolation(t *testing.T) {
	const jobDelay = 5 * time.Millisecond
	reg := registry.New(0)
	ctrl := admission.NewController(admission.Limits{}, nil, nil)
	engine, err := jobs.New(jobs.Config{
		Registry: reg,
		Workers:  1,
		Queue:    NewFairJobQueue(128, ctrl),
		Analyze: func(ctx context.Context, data *dataset.Dataset, spec jobs.Spec, tr *jobs.Tracker) (*core.Result, error) {
			select {
			case <-time.After(jobDelay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return jobs.RunAnalysis(ctx, data, spec, tr)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := newTestServer(t, Options{Registry: reg, Engine: engine, Admission: ctrl}).Handler()
	hash := decode[datasetJSON](t, do(t, h, http.MethodPost, "/datasets", sampleCSV)).Hash

	// Distinct supports keep every job's cache key distinct, so each one
	// really runs the delayed analysis.
	submit := func(tenant string, support int) string {
		w := doTenant(t, h, http.MethodPost,
			fmt.Sprintf("/jobs?dataset=%s&support=0.%03d", hash, support), "", tenant)
		if w.Code != http.StatusAccepted {
			t.Fatalf("submit %s/%d = %d: %s", tenant, support, w.Code, w.Body.String())
		}
		return decode[jobJSON](t, w).ID
	}

	// Unloaded baseline: the quiet tenant alone.
	const quietN, noisyN = 6, 30
	var base []time.Duration
	for i := 0; i < quietN; i++ {
		id := submit("quiet", 100+i)
		base = append(base, latencyOf(t, pollJob(t, h, id)))
	}
	baseP50 := p50(base)

	// Loaded run: flood from the noisy tenant first, then the quiet jobs.
	noisyIDs := make([]string, 0, noisyN)
	for i := 0; i < noisyN; i++ {
		noisyIDs = append(noisyIDs, submit("noisy", 200+i))
	}
	quietIDs := make([]string, 0, quietN)
	for i := 0; i < quietN; i++ {
		quietIDs = append(quietIDs, submit("quiet", 300+i))
	}
	var loaded []time.Duration
	var lastQuiet, lastNoisy time.Time
	for _, id := range quietIDs {
		st := pollJob(t, h, id)
		loaded = append(loaded, latencyOf(t, st))
		if fin, err := time.Parse(time.RFC3339Nano, st.FinishedAt); err == nil && fin.After(lastQuiet) {
			lastQuiet = fin
		}
	}
	for _, id := range noisyIDs {
		st := pollJob(t, h, id)
		if fin, err := time.Parse(time.RFC3339Nano, st.FinishedAt); err == nil && fin.After(lastNoisy) {
			lastNoisy = fin
		}
	}

	loadedP50 := p50(loaded)
	if limit := 2*baseP50 + 250*time.Millisecond; loadedP50 > limit {
		t.Errorf("quiet p50 under load = %s, want <= %s (baseline %s)", loadedP50, limit, baseP50)
	}
	// The WFQ signature: the quiet tenant drains while the noisy backlog
	// is still being served. FIFO would finish every noisy job first.
	if !lastQuiet.Before(lastNoisy) {
		t.Errorf("last quiet job finished at %s, after the noisy backlog drained at %s — queue is not fair",
			lastQuiet.Format(time.RFC3339Nano), lastNoisy.Format(time.RFC3339Nano))
	}
}
