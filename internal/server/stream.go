package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/jobs"
)

// eventsPollInterval is how often the SSE handler re-samples a job's
// state and partial snapshot. It bounds event latency, not event rate:
// unchanged samples emit nothing.
const eventsPollInterval = 100 * time.Millisecond

// handleJobPartial implements GET /jobs/{id}/partial: the latest
// partial-result snapshot of a running (or finished) mine — the top-K
// itemsets by |divergence| over everything mined so far, plus progress
// counters. Pollers compare the seq field across reads to detect
// growth. 204 until the first snapshot exists.
func (s *Server) handleJobPartial(w http.ResponseWriter, r *http.Request) {
	job, ok := s.engine.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
		return
	}
	snap := job.Partial()
	if snap == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleJobEvents implements GET /jobs/{id}/events: a Server-Sent
// Events stream of the job's life. Each new partial snapshot arrives as
// a "partial" event, each lifecycle transition as a "state" event; the
// stream ends after the terminal state is delivered. Clients that
// reconnect simply get the current state again — events carry full
// snapshots, not deltas, so the stream is safe to resume.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.engine.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ticker := time.NewTicker(eventsPollInterval)
	defer ticker.Stop()

	var lastSeq int64
	var lastState jobs.State = -1
	for {
		st := job.Snapshot()
		if snap := job.Partial(); snap != nil && snap.Seq > lastSeq {
			lastSeq = snap.Seq
			writeSSE(w, "partial", snap)
		}
		if st.State != lastState {
			lastState = st.State
			writeSSE(w, "state", jobToJSON(st))
		}
		flusher.Flush()
		if st.State.Terminal() {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

// writeSSE emits one Server-Sent Event with a JSON data payload.
func writeSSE(w http.ResponseWriter, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Snapshots and statuses are always marshalable; defensive only.
		data = []byte(`{"error":"encoding event"}`)
	}
	_, _ = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data) // nothing to do if the client went away
}
