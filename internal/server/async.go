package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/jobs"
	"repro/internal/monitor"
	"repro/internal/registry"
)

// csvOptions is the single parsing configuration for every upload path,
// so the content hash always addresses identically-parsed data.
func csvOptions() dataset.CSVOptions { return dataset.CSVOptions{TrimSpace: true} }

// CSVOptions exposes the server's upload parsing configuration. A disk
// spill tier must re-parse promoted datasets with exactly these options
// (registry.AttachSpill), or a dataset would round-trip through disk
// parsed differently than it was uploaded.
func CSVOptions() dataset.CSVOptions { return csvOptions() }

// Wire shapes for the dataset and job endpoints.

type datasetJSON struct {
	Hash       string `json:"hash"`
	Rows       int    `json:"rows"`
	Attributes int    `json:"attributes"`
	Bytes      int64  `json:"bytes"`
	// Cached is true when the upload was already registered and no
	// re-parse happened.
	Cached bool `json:"cached"`
}

type progressJSON struct {
	Done  int64 `json:"done"`
	Total int64 `json:"total"`
}

type jobJSON struct {
	ID         string        `json:"id"`
	State      string        `json:"state"`
	Dataset    string        `json:"dataset"`
	Error      string        `json:"error,omitempty"`
	CacheHit   bool          `json:"cache_hit"`
	Recovered  bool          `json:"recovered,omitempty"`
	CreatedAt  string        `json:"created_at"`
	StartedAt  string        `json:"started_at,omitempty"`
	FinishedAt string        `json:"finished_at,omitempty"`
	Progress   *progressJSON `json:"progress,omitempty"`
	ResultURL  string        `json:"result_url,omitempty"`
	PartialURL string        `json:"partial_url,omitempty"`
	EventsURL  string        `json:"events_url,omitempty"`
}

func jobToJSON(st jobs.Status) jobJSON {
	j := jobJSON{
		ID:        st.ID,
		State:     st.State.String(),
		Dataset:   string(st.Spec.Dataset),
		Error:     st.Err,
		CacheHit:  st.CacheHit,
		Recovered: st.Recovered,
		CreatedAt: st.Created.UTC().Format(time.RFC3339Nano),
	}
	if !st.Started.IsZero() {
		j.StartedAt = st.Started.UTC().Format(time.RFC3339Nano)
	}
	if !st.Finished.IsZero() {
		j.FinishedAt = st.Finished.UTC().Format(time.RFC3339Nano)
	}
	if st.ProgressTotal > 0 {
		j.Progress = &progressJSON{Done: st.ProgressDone, Total: st.ProgressTotal}
	}
	if st.State == jobs.StateDone {
		j.ResultURL = "/jobs/" + st.ID + "/result"
	}
	if !st.State.Terminal() {
		j.EventsURL = "/jobs/" + st.ID + "/events"
	}
	if st.State == jobs.StateRunning || st.State == jobs.StateDone {
		j.PartialURL = "/jobs/" + st.ID + "/partial"
	}
	return j
}

// handleDatasetRegister implements POST /datasets: content-address the
// uploaded CSV and parse it once.
func (s *Server) handleDatasetRegister(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	entry, existed, err := s.reg.Register(body, csvOptions())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if !existed {
		// Replicate the dataset to the other owners of its hash, so a
		// forwarded or failed-over job finds it resident there.
		s.replicateSpill(entry.Hash, registry.Canonicalize(body))
	}
	writeJSON(w, http.StatusOK, datasetJSON{
		Hash:       string(entry.Hash),
		Rows:       entry.Data.NumRows(),
		Attributes: entry.Data.NumAttrs(),
		Bytes:      entry.Bytes,
		Cached:     existed,
	})
}

// handleDatasetGet implements GET /datasets/{hash}.
func (s *Server) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	h := registry.Hash(r.PathValue("hash"))
	entry, ok := s.reg.Get(h)
	if !ok {
		writeError(w, http.StatusNotFound, "dataset "+string(h)+" not registered")
		return
	}
	writeJSON(w, http.StatusOK, datasetJSON{
		Hash:       string(entry.Hash),
		Rows:       entry.Data.NumRows(),
		Attributes: entry.Data.NumAttrs(),
		Bytes:      entry.Bytes,
		Cached:     true,
	})
}

// handleDatasetDelete implements DELETE /datasets/{hash}: drop a
// dataset from every tier — the in-memory registry, its disk-spill
// file, and any quarantined copy. Deletion is total: a later result
// rehydration for the hash degrades to the durable summary instead of
// resurrecting the dataset from disk. Jobs already holding the parsed
// entry keep working (entries are immutable); new submissions for the
// hash get 404.
func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	h := registry.Hash(r.PathValue("hash"))
	if !s.reg.Remove(h) {
		writeError(w, http.StatusNotFound, "dataset "+string(h)+" not registered")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": string(h)})
}

// handleJobSubmit implements POST /jobs: submit by registered dataset
// hash (?dataset=...) or by inline CSV body. A full queue (or an
// admission denial) answers 429 — the explicit backpressure contract —
// rather than blocking the client. With a cluster node attached the
// submission routes to the dataset's owners: locally when this node is
// one, otherwise forwarded with hedged retries; inline uploads travel
// with the forward so the owner can register them.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := parseRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var hash registry.Hash
	var csv []byte // canonical upload bytes, carried on cross-node forwards
	var bytes int64
	if h := r.URL.Query().Get("dataset"); h != "" {
		entry, ok := s.reg.Get(registry.Hash(h))
		if !ok && s.cluster == nil {
			// Clustered, the dataset may be resident on its owner even
			// when this node has never seen it; single-node it is a 404.
			writeError(w, http.StatusNotFound, "dataset "+h+" not registered")
			return
		}
		hash = registry.Hash(h)
		if ok {
			bytes = entry.Bytes
		}
	} else {
		body, ok := s.readBody(w, r)
		if !ok {
			return
		}
		entry, _, err := s.reg.Register(body, csvOptions())
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		hash = entry.Hash
		bytes = entry.Bytes
		if s.cluster != nil {
			csv = registry.Canonicalize(body)
		}
	}
	spec := req.spec(hash)
	spec.Tenant = tenantOf(r)
	id, err := jobs.NewID()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if n := s.cluster; n != nil {
		specJSON, err := json.Marshal(spec)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		ack, err := n.SubmitJob(r.Context(), cluster.JobRequest{
			ID: id, SpecJSON: specJSON, Dataset: string(hash), Tenant: spec.Tenant, CSV: csv,
		})
		if err != nil {
			writeSubmitError(w, err)
			return
		}
		if job, ok := s.engine.Get(ack.ID); ok && ack.Node == n.Self() {
			writeJSON(w, http.StatusAccepted, jobToJSON(job.Snapshot()))
			return
		}
		// The job landed on a peer; the ack names the owning node.
		writeJSON(w, http.StatusAccepted, ack)
		return
	}
	job, err := s.submitLocal(id, spec, bytes)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, jobToJSON(job.Snapshot()))
}

// handleJobStatus implements GET /jobs/{id}.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.engine.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, jobToJSON(job.Snapshot()))
}

// handleJobResult implements GET /jobs/{id}/result, rendering the mined
// result with the formatters the synchronous path uses. The format query
// parameter may override the one given at submission.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.engine.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
		return
	}
	st := job.Snapshot()
	if st.State != jobs.StateDone {
		msg := "job is " + st.State.String()
		if st.Err != "" {
			msg += ": " + st.Err
		}
		writeError(w, http.StatusConflict, msg)
		return
	}
	// An explore or significance job's outcome is its result; neither has
	// the full analysis payload the ladder below serves.
	if out, xerr := job.Explore(); xerr == nil {
		writeJSON(w, http.StatusOK, out)
		return
	}
	if out, serr := job.Significance(); serr == nil {
		writeJSON(w, http.StatusOK, out)
		return
	}
	res, err := job.Result()
	fromMemory := err == nil
	switch {
	case errors.Is(err, jobs.ErrNoResult):
		// The job was recovered from the store, so the full in-memory
		// result did not survive the restart. Fallback chain: re-mine the
		// full result from the re-pinned dataset, then the durable summary
		// marked degraded, then 410 Gone.
		res, err = s.engine.Rehydrate(r.Context(), job)
		if err != nil {
			if sum := job.Summary(); sum != nil {
				s.degraded.Add(1)
				writeJSON(w, http.StatusOK, degradedResultJSON{
					Degraded:      true,
					Reason:        err.Error(),
					ResultSummary: sum,
				})
				return
			}
			s.gone.Add(1)
			writeError(w, http.StatusGone, err.Error())
			return
		}
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	req, err := renderRequest(st.Spec, r.URL.Query().Get("format"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if fromMemory {
		// The full result never left memory — the ladder's top rung.
		// Counted at render time so a bad format override is not a serve.
		s.memoryHits.Add(1)
	}
	s.render(w, res, req)
}

// degradedResultJSON is the summary-only fallback served from the result
// endpoint when a recovered job's full result cannot be re-mined (v1 log
// format, or the dataset is no longer resident). The summary fields are
// inlined; the explicit degraded marker tells clients they are looking
// at the durable digest, not the full per-itemset payload.
type degradedResultJSON struct {
	Degraded bool   `json:"degraded"`
	Reason   string `json:"degraded_reason,omitempty"`
	*jobs.ResultSummary
}

// renderRequest rebuilds rendering parameters from a job spec. Metric
// names were validated at submission, so resolution cannot fail for
// stored specs; the error path covers format overrides only.
func renderRequest(spec jobs.Spec, format string) (analysisRequest, error) {
	req := analysisRequest{
		truthCol: spec.TruthCol,
		predCol:  spec.PredCol,
		support:  spec.Support,
		topK:     spec.TopK,
		eps:      spec.Epsilon,
		alpha:    spec.Alpha,
		format:   orDefault(format, "json"),
	}
	switch req.format {
	case "json", "html", "csv":
	default:
		return req, errors.New("bad format " + req.format + " (want json, html or csv)")
	}
	for _, n := range spec.Metrics {
		m, err := core.MetricByName(n)
		if err != nil {
			return req, err
		}
		req.metrics = append(req.metrics, m)
	}
	return req, nil
}

// handleJobCancel implements DELETE /jobs/{id}.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.engine.Cancel(r.PathValue("id"))
	if errors.Is(err, jobs.ErrUnknownJob) {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, jobToJSON(st))
}

// statszJSON is the /statsz payload: job-engine and dataset-registry
// statistics side by side, plus the degradation-ladder counters.
type statszJSON struct {
	Jobs     jobs.Stats     `json:"jobs"`
	Datasets registry.Stats `json:"datasets"`
	Ladder   ladderJSON     `json:"result_ladder"`
	Monitors monitor.Stats  `json:"monitors"`
	// Cluster is present when a cluster node is attached; its peer list
	// is sorted by node ID. Admission is present when a controller is
	// attached; rows are sorted by tenant. Both orderings are part of the
	// statsz determinism contract — the whole payload is struct-shaped
	// with sorted slices, so byte-for-byte diffs between snapshots are
	// meaningful.
	Cluster   *cluster.Stats          `json:"cluster,omitempty"`
	Admission []admission.TenantStats `json:"admission,omitempty"`
}

// ladderJSON counts how often each rung of the graceful-degradation
// ladder actually served: memory hits are results served straight from
// the in-memory job result (a dedicated server counter — the registry's
// hit counter moves on every dataset lookup and is not comparable to
// the rungs below), disk loads come from the registry's spill tier,
// rehydrations re-mined a full result after a restart, degraded served
// the durable summary only, and gone is the bottom — HTTP 410, nothing
// survived.
type ladderJSON struct {
	MemoryHits  int64 `json:"memory_hits"`
	DiskLoads   int64 `json:"disk_loads"`
	Rehydrated  int64 `json:"rehydrated_results"`
	Degraded    int64 `json:"degraded_results"`
	Gone        int64 `json:"gone_results"`
	Quarantined int64 `json:"quarantined_spills"`
}

// handleStatsz implements GET /statsz.
func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	js, ds := s.engine.Stats(), s.reg.Stats()
	ladder := ladderJSON{
		MemoryHits: s.memoryHits.Load(),
		Rehydrated: js.Rehydrated,
		Degraded:   s.degraded.Load(),
		Gone:       s.gone.Load(),
	}
	if ds.Spill != nil {
		ladder.DiskLoads = ds.Spill.Loads
		ladder.Quarantined = ds.Spill.Quarantined
	}
	out := statszJSON{Jobs: js, Datasets: ds, Ladder: ladder, Monitors: s.monitors.Stats()}
	if s.cluster != nil {
		cs := s.cluster.Stats()
		out.Cluster = &cs
	}
	if s.admission != nil {
		out.Admission = s.admission.Stats()
	}
	writeJSON(w, http.StatusOK, out)
}
