// Package server exposes DivExplorer over HTTP. The synchronous path —
// POST a CSV to /analyze — still works exactly as before, but analysis
// now runs through a content-addressed dataset registry and a shared
// result cache, so repeated uploads of the same data are near-free. For
// long-running explorations an asynchronous job API mines off the
// request goroutine on a bounded worker pool (internal/jobs).
//
// Endpoints:
//
//	GET    /               an HTML form for interactive use
//	GET    /healthz        liveness probe
//	GET    /statsz         queue, worker and cache statistics (JSON)
//	POST   /analyze        synchronous analysis; body: the CSV
//	POST   /datasets       register a dataset, returns its content hash
//	GET    /datasets/{hash} dataset metadata
//	DELETE /datasets/{hash} drop a dataset from the registry
//	POST   /jobs           submit an analysis job (inline CSV body, or
//	                       ?dataset=<hash> for a registered dataset)
//	GET    /jobs/{id}        job status and progress
//	GET    /jobs/{id}/result completed job result (json, csv or html)
//	GET    /jobs/{id}/partial latest partial-result snapshot (top-K by
//	                       |divergence| mined so far); 204 before the first
//	GET    /jobs/{id}/events Server-Sent Events stream of partial
//	                       snapshots and state transitions
//	DELETE /jobs/{id}        cancel a queued or running job
//	POST   /explore        anytime exploration of a registered dataset
//	                       (JSON body): budgeted top-K by |divergence|,
//	                       sampled mining with confidence intervals, and
//	                       lattice navigation ("expand") from a named
//	                       pattern; "async": true submits it as a job
//	POST   /significance   permutation-grounded significance over every
//	                       mined pattern of a registered dataset (JSON
//	                       body): Westfall–Young FWER control ("wy"),
//	                       permutation FDR ("perm-fdr") or analytic BH
//	                       ("bh"), optional max-entropy support baseline;
//	                       "async": true submits it as a job
//	POST   /monitors         create a streaming divergence monitor (JSON spec)
//	GET    /monitors         list live monitors
//	GET    /monitors/{id}    monitor snapshot: top-K divergent subgroups,
//	                       alert states, window position, counters
//	POST   /monitors/{id}/events ingest a JSON-lines batch of decision
//	                       events (429 on a full ingest buffer)
//	GET    /monitors/{id}/events Server-Sent Events stream of alert
//	                       state transitions
//	DELETE /monitors/{id}    delete a monitor
//	POST   /internal/gossip     (clustered) peer heartbeat + liveness view
//	POST   /internal/jobs       (clustered) forwarded job submission
//	POST   /internal/replicate  (clustered) one replica payload chunk
//
// With a cluster node attached (AttachCluster; divexplorer-server
// -peers) POST /jobs routes by dataset ownership on a consistent-hash
// ring: an owner runs the job locally, any other node forwards it to
// the highest-priority live owner with hedged retries. Accepted and
// completed job records replicate to the dataset's other owners, which
// adopt them if the owner dies. With an admission controller attached
// (Options.Admission; -tenant-quotas) POST /jobs is gated per tenant
// (X-Tenant header): quota or rate denials answer 429 with Retry-After,
// and queued jobs drain by weighted fair queueing instead of FIFO.
//
// With a job store attached (divexplorer-server -store-dir) every job
// lifecycle transition is written through to disk and replayed on boot,
// so completed results outlive a restart. With a spill tier attached
// too (-spill-dir), datasets evicted from the in-memory registry are
// written to checksummed disk files instead of being lost, so a
// recovered job can usually re-mine its full result without anyone
// re-uploading anything. GET /jobs/{id}/result walks an explicit
// graceful-degradation ladder, best rung first:
//
//  1. memory — the full result (or its dataset) is resident: full payload;
//  2. disk spill — the dataset is reloaded from its verified spill file
//     and the result re-mined, byte-identical to the pre-restart response;
//  3. durable summary — served with "degraded": true when the dataset is
//     gone from both tiers (or its spill file failed verification);
//  4. 410 Gone — not even the summary survived.
//
// Each rung's serve count is exposed under result_ladder in /statsz.
//
// Query parameters shared by /analyze and /jobs:
//
//	truth    ground-truth column name (default "truth")
//	pred     prediction column name (default "pred")
//	support  minimum support threshold (default 0.05)
//	metric   comma-separated metric names (default "FPR,FNR")
//	topk     patterns per metric (default 10)
//	eps      redundancy-pruning threshold (optional)
//	alpha    FDR level for the significance section (optional)
//	format   "json" (default), "html" or "csv"
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fpm"
	"repro/internal/htmlreport"
	"repro/internal/jobs"
	"repro/internal/monitor"
	"repro/internal/registry"
)

// DefaultMaxBodyBytes bounds uploaded CSV size unless overridden via
// Options.MaxBodyBytes (32 MiB).
const DefaultMaxBodyBytes = 32 << 20

// DefaultDatasetCacheBytes is the registry budget when Options supplies
// no registry (256 MiB).
const DefaultDatasetCacheBytes = 256 << 20

// Options configures a Server. Zero values select defaults.
type Options struct {
	// MaxBodyBytes bounds uploaded request bodies; DefaultMaxBodyBytes
	// when <= 0. Oversized uploads get HTTP 413 with a JSON error body.
	MaxBodyBytes int64
	// Registry stores parsed datasets by content hash; a fresh registry
	// with DefaultDatasetCacheBytes is created when nil.
	Registry *registry.Registry
	// Engine runs analysis jobs; a default engine over Registry is
	// created when nil.
	Engine *jobs.Engine
	// Monitors manages streaming divergence monitors; a default manager
	// (sharing the engine's WAL store when one is attached) is created
	// when nil.
	Monitors *monitor.Manager
	// Admission enforces per-tenant quotas and rate limits on job
	// submissions (X-Tenant header); nil admits everything. The server
	// claims the engine's OnTerminal hook to release grants (and to
	// replicate terminal records when a cluster node is attached).
	Admission *admission.Controller
}

// Server ties the dataset registry and the job engine to HTTP handlers.
type Server struct {
	maxBody  int64
	reg      *registry.Registry
	engine   *jobs.Engine
	monitors *monitor.Manager

	// cluster, when non-nil (AttachCluster), routes job submissions by
	// dataset ownership and mounts the /internal/* peer endpoints.
	cluster *cluster.Node

	// admission, when non-nil, gates POST /jobs per tenant; admitted
	// maps live job IDs to their grants for release at terminal time.
	admission *admission.Controller
	admMu     sync.Mutex
	admitted  map[string]admittedJob

	// Degradation-ladder counters for /statsz: results served straight
	// from the in-memory job result (the top rung), results served as a
	// durable summary only, and results answered 410 Gone. All three
	// count /jobs/{id}/result serves specifically — the registry's own
	// hit counter moves on every dataset lookup (uploads, GET /datasets,
	// submissions) and would not be comparable to the other rungs.
	memoryHits atomic.Int64
	degraded   atomic.Int64
	gone       atomic.Int64
}

// New builds a server, creating a default registry and engine for any
// not supplied in opts.
func New(opts Options) (*Server, error) {
	maxBody := opts.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	reg := opts.Registry
	if reg == nil {
		reg = registry.New(DefaultDatasetCacheBytes)
	}
	engine := opts.Engine
	if engine == nil {
		var err error
		engine, err = jobs.New(jobs.Config{Registry: reg})
		if err != nil {
			return nil, err
		}
	}
	monitors := opts.Monitors
	if monitors == nil {
		monitors = monitor.NewManager(monitor.Config{Store: engine.Store()})
	}
	s := &Server{
		maxBody:   maxBody,
		reg:       reg,
		engine:    engine,
		monitors:  monitors,
		admission: opts.Admission,
		admitted:  make(map[string]admittedJob),
	}
	// The server owns the terminal hook: admission release plus cluster
	// replication (both no-ops until the corresponding piece is wired).
	engine.SetOnTerminal(s.jobTerminal)
	return s, nil
}

// Engine returns the server's job engine (for shutdown wiring).
func (s *Server) Engine() *jobs.Engine { return s.engine }

// Monitors returns the server's monitor manager (for recovery wiring).
func (s *Server) Monitors() *monitor.Manager { return s.monitors }

// Close stops the monitor workers and drains the job engine.
func (s *Server) Close(ctx context.Context) error {
	s.monitors.Close()
	return s.engine.Shutdown(ctx)
}

// Handler returns the http.Handler serving the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = fmt.Fprintln(w, "ok") // nothing to do if the client went away
	})
	mux.HandleFunc("GET /", handleIndex)
	mux.HandleFunc("POST /analyze", s.handleAnalyze)
	mux.HandleFunc("POST /datasets", s.handleDatasetRegister)
	mux.HandleFunc("GET /datasets/{hash}", s.handleDatasetGet)
	mux.HandleFunc("DELETE /datasets/{hash}", s.handleDatasetDelete)
	mux.HandleFunc("POST /jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /jobs/{id}/partial", s.handleJobPartial)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("POST /explore", s.handleExplore)
	mux.HandleFunc("POST /significance", s.handleSignificance)
	mux.HandleFunc("POST /monitors", s.handleMonitorCreate)
	mux.HandleFunc("GET /monitors", s.handleMonitorList)
	mux.HandleFunc("GET /monitors/{id}", s.handleMonitorGet)
	mux.HandleFunc("DELETE /monitors/{id}", s.handleMonitorDelete)
	mux.HandleFunc("POST /monitors/{id}/events", s.handleMonitorIngest)
	mux.HandleFunc("GET /monitors/{id}/events", s.handleMonitorEvents)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	if s.cluster != nil {
		// Peer-to-peer verbs, mounted only when clustered: gossip
		// heartbeats, forwarded job submissions, replica streaming.
		mux.HandleFunc("POST "+cluster.GossipPath, s.handleGossip)
		mux.HandleFunc("POST "+cluster.ForwardPath, s.handleForwardedJob)
		mux.HandleFunc("POST "+cluster.ReplicatePath, s.handleReplicate)
	}
	return mux
}

// Handler returns a handler over a default server — the stateless entry
// point existing callers use. The default configuration cannot fail; the
// error branch is defensive.
func Handler() http.Handler {
	s, err := New(Options{})
	if err != nil {
		return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			writeError(w, http.StatusInternalServerError, err.Error())
		})
	}
	return s.Handler()
}

func handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = io.WriteString(w, indexHTML) // nothing to do if the client went away
}

const indexHTML = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>DivExplorer</title></head>
<body style="font-family: system-ui; max-width: 40rem; margin: 3rem auto">
<h1>DivExplorer</h1>
<p>POST a CSV to <code>/analyze?truth=&lt;col&gt;&amp;pred=&lt;col&gt;&amp;support=0.05&amp;format=html</code>,
or submit an asynchronous job via <code>POST /jobs</code> and poll <code>GET /jobs/{id}</code>.</p>
<pre>curl --data-binary @data.csv 'http://HOST/analyze?truth=label&amp;pred=predicted&amp;format=html'</pre>
</body></html>
`

// writeError emits a JSON error body with the given status.
func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg}) // nothing to do if the client went away
}

// writeJSON emits v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // nothing to do if the client went away
}

// readBody reads the request body under the configured size limit,
// answering 413 (with a JSON error body) when it is exceeded.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds the %d-byte limit", mbe.Limit))
		} else {
			writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		}
		return nil, false
	}
	return body, true
}

// analysisRequest carries the parsed query parameters.
type analysisRequest struct {
	truthCol, predCol string
	support           float64
	metrics           []core.Metric
	topK              int
	eps               float64
	alpha             float64
	format            string
}

func parseRequest(r *http.Request) (analysisRequest, error) {
	q := r.URL.Query()
	req := analysisRequest{
		truthCol: orDefault(q.Get("truth"), "truth"),
		predCol:  orDefault(q.Get("pred"), "pred"),
		support:  0.05,
		topK:     10,
		format:   orDefault(q.Get("format"), "json"),
	}
	if s := q.Get("support"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v < 0 || v > 1 {
			return req, fmt.Errorf("bad support %q", s)
		}
		req.support = v
	}
	if s := q.Get("topk"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			return req, fmt.Errorf("bad topk %q", s)
		}
		req.topK = v
	}
	if s := q.Get("eps"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v < 0 {
			return req, fmt.Errorf("bad eps %q", s)
		}
		req.eps = v
	}
	if s := q.Get("alpha"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 || v >= 1 {
			return req, fmt.Errorf("bad alpha %q", s)
		}
		req.alpha = v
	}
	names := orDefault(q.Get("metric"), "FPR,FNR")
	for _, n := range strings.Split(names, ",") {
		m, err := core.MetricByName(strings.TrimSpace(n))
		if err != nil {
			return req, err
		}
		req.metrics = append(req.metrics, m)
	}
	switch req.format {
	case "json", "html", "csv":
	default:
		return req, fmt.Errorf("bad format %q (want json, html or csv)", req.format)
	}
	return req, nil
}

// spec converts the parsed request into a job spec for dataset h.
func (req analysisRequest) spec(h registry.Hash) jobs.Spec {
	names := make([]string, len(req.metrics))
	for i, m := range req.metrics {
		names[i] = m.Name
	}
	return jobs.Spec{
		Dataset:  h,
		TruthCol: req.truthCol,
		PredCol:  req.predCol,
		Support:  req.support,
		Metrics:  names,
		Epsilon:  req.eps,
		TopK:     req.topK,
		Alpha:    req.alpha,
	}
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// JSON response shapes.

type patternJSON struct {
	Itemset    []string `json:"itemset"`
	Support    float64  `json:"support"`
	Rate       float64  `json:"rate"`
	Divergence float64  `json:"divergence"`
	T          float64  `json:"t"`
	PValue     float64  `json:"p_value"`
}

type itemJSON struct {
	Item       string  `json:"item"`
	Global     float64 `json:"global_divergence"`
	Individual float64 `json:"individual_divergence"`
}

type correctiveJSON struct {
	Base   []string `json:"base"`
	Item   string   `json:"item"`
	Factor float64  `json:"factor"`
	T      float64  `json:"t"`
}

type metricJSON struct {
	Metric      string           `json:"metric"`
	OverallRate float64          `json:"overall_rate"`
	Top         []patternJSON    `json:"top_divergent"`
	Pruned      []patternJSON    `json:"pruned_top,omitempty"`
	Significant []patternJSON    `json:"significant,omitempty"`
	Items       []itemJSON       `json:"items"`
	Corrective  []correctiveJSON `json:"corrective"`
}

type responseJSON struct {
	Rows     int          `json:"rows"`
	Attrs    int          `json:"attributes"`
	Patterns int          `json:"frequent_itemsets"`
	Support  float64      `json:"min_support"`
	Metrics  []metricJSON `json:"metrics"`
}

// handleAnalyze is the synchronous path. The upload is registered in the
// content-addressed registry and the exploration runs through the shared
// result cache, so a repeated upload skips both parsing and mining. The
// request context cancels the mine when the client disconnects.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	req, err := parseRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	entry, _, err := s.reg.Register(body, csvOptions())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	res, err := s.engine.Analyze(r.Context(), req.spec(entry.Hash))
	if err != nil {
		s.writeAnalysisError(w, r, err)
		return
	}
	s.render(w, res, req)
}

// writeAnalysisError maps analysis failures to HTTP statuses.
func (s *Server) writeAnalysisError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, jobs.ErrBadInput):
		writeError(w, http.StatusBadRequest, err.Error())
	case r.Context().Err() != nil:
		// Client went away mid-mine; the status is for the log only.
		writeError(w, 499, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// render writes the result in the requested format.
func (s *Server) render(w http.ResponseWriter, res *core.Result, req analysisRequest) {
	switch req.format {
	case "html":
		out, err := htmlreport.Render(res, htmlreport.Config{
			Metrics:  req.metrics,
			TopK:     req.topK,
			Epsilon:  req.eps,
			FDRLevel: req.alpha,
		})
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write(out) // nothing to do if the client went away
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		if err := res.WriteCSV(w, req.metrics[0], core.ByDivergence); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
		}
	default:
		writeJSON(w, http.StatusOK, buildJSON(res, req))
	}
}

func buildJSON(res *core.Result, req analysisRequest) responseJSON {
	resp := responseJSON{
		Rows:     res.DB.NumRows(),
		Attrs:    res.DB.Catalog.NumAttrs(),
		Patterns: res.NumPatterns(),
		Support:  res.MinSup,
	}
	for _, m := range req.metrics {
		mj := metricJSON{Metric: m.Name, OverallRate: res.GlobalRate(m)}
		toJSON := func(rk core.Ranked) patternJSON {
			return patternJSON{
				Itemset:    itemNames(res, rk.Items),
				Support:    rk.Support,
				Rate:       rk.Rate,
				Divergence: rk.Divergence,
				T:          rk.T,
				PValue:     res.PValue(rk.Tally, m),
			}
		}
		for _, rk := range res.TopK(m, req.topK, core.ByAbsDivergence) {
			mj.Top = append(mj.Top, toJSON(rk))
		}
		if req.eps > 0 {
			for _, rk := range res.TopKPruned(m, req.eps, req.topK, core.ByAbsDivergence) {
				mj.Pruned = append(mj.Pruned, toJSON(rk))
			}
		}
		if req.alpha > 0 {
			sig := res.SignificantPatterns(m, req.alpha, core.ByAbsDivergence)
			for i, s := range sig {
				if i == req.topK {
					break
				}
				mj.Significant = append(mj.Significant, toJSON(s.Ranked))
			}
		}
		for _, c := range res.CompareItemDivergence(m) {
			ind := c.Individual
			if math.IsNaN(ind) {
				ind = 0
			}
			mj.Items = append(mj.Items, itemJSON{
				Item:       res.DB.Catalog.Name(c.Item),
				Global:     c.Global,
				Individual: ind,
			})
		}
		for _, c := range res.TopCorrective(m, 5, 2.0) {
			mj.Corrective = append(mj.Corrective, correctiveJSON{
				Base:   itemNames(res, c.Base),
				Item:   res.DB.Catalog.Name(c.Item),
				Factor: c.Factor,
				T:      c.T,
			})
		}
		resp.Metrics = append(resp.Metrics, mj)
	}
	return resp
}

func itemNames(res *core.Result, is fpm.Itemset) []string {
	out := make([]string, len(is))
	for i, it := range is {
		out[i] = res.DB.Catalog.Name(it)
	}
	return out
}
