// Package server exposes DivExplorer over HTTP: clients POST a CSV with
// ground-truth and prediction columns and receive the divergence
// analysis as JSON, CSV or a self-contained HTML report. The server is
// stateless — every request carries its own data — and is built entirely
// on net/http.
//
// Endpoints:
//
//	GET  /            an HTML form for interactive use
//	GET  /healthz     liveness probe
//	POST /analyze     body: the CSV; query parameters:
//	    truth    ground-truth column name (default "truth")
//	    pred     prediction column name (default "pred")
//	    support  minimum support threshold (default 0.05)
//	    metric   comma-separated metric names (default "FPR,FNR")
//	    topk     patterns per metric (default 10)
//	    eps      redundancy-pruning threshold (optional)
//	    alpha    FDR level for the significance section (optional)
//	    format   "json" (default), "html" or "csv"
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fpm"
	"repro/internal/htmlreport"
)

// MaxBodyBytes bounds uploaded CSV size (32 MiB).
const MaxBodyBytes = 32 << 20

// Handler returns the http.Handler serving the API.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = fmt.Fprintln(w, "ok") // nothing to do if the client went away
	})
	mux.HandleFunc("GET /", handleIndex)
	mux.HandleFunc("POST /analyze", handleAnalyze)
	return mux
}

func handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = io.WriteString(w, indexHTML) // nothing to do if the client went away
}

const indexHTML = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>DivExplorer</title></head>
<body style="font-family: system-ui; max-width: 40rem; margin: 3rem auto">
<h1>DivExplorer</h1>
<p>POST a CSV to <code>/analyze?truth=&lt;col&gt;&amp;pred=&lt;col&gt;&amp;support=0.05&amp;format=html</code>.</p>
<pre>curl --data-binary @data.csv 'http://HOST/analyze?truth=label&amp;pred=predicted&amp;format=html'</pre>
</body></html>
`

// analysisRequest carries the parsed query parameters.
type analysisRequest struct {
	truthCol, predCol string
	support           float64
	metrics           []core.Metric
	topK              int
	eps               float64
	alpha             float64
	format            string
}

func parseRequest(r *http.Request) (analysisRequest, error) {
	q := r.URL.Query()
	req := analysisRequest{
		truthCol: orDefault(q.Get("truth"), "truth"),
		predCol:  orDefault(q.Get("pred"), "pred"),
		support:  0.05,
		topK:     10,
		format:   orDefault(q.Get("format"), "json"),
	}
	if s := q.Get("support"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v < 0 || v > 1 {
			return req, fmt.Errorf("bad support %q", s)
		}
		req.support = v
	}
	if s := q.Get("topk"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			return req, fmt.Errorf("bad topk %q", s)
		}
		req.topK = v
	}
	if s := q.Get("eps"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v < 0 {
			return req, fmt.Errorf("bad eps %q", s)
		}
		req.eps = v
	}
	if s := q.Get("alpha"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 || v >= 1 {
			return req, fmt.Errorf("bad alpha %q", s)
		}
		req.alpha = v
	}
	names := orDefault(q.Get("metric"), "FPR,FNR")
	for _, n := range strings.Split(names, ",") {
		m, err := core.MetricByName(strings.TrimSpace(n))
		if err != nil {
			return req, err
		}
		req.metrics = append(req.metrics, m)
	}
	switch req.format {
	case "json", "html", "csv":
	default:
		return req, fmt.Errorf("bad format %q (want json, html or csv)", req.format)
	}
	return req, nil
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// JSON response shapes.

type patternJSON struct {
	Itemset    []string `json:"itemset"`
	Support    float64  `json:"support"`
	Rate       float64  `json:"rate"`
	Divergence float64  `json:"divergence"`
	T          float64  `json:"t"`
	PValue     float64  `json:"p_value"`
}

type itemJSON struct {
	Item       string  `json:"item"`
	Global     float64 `json:"global_divergence"`
	Individual float64 `json:"individual_divergence"`
}

type correctiveJSON struct {
	Base   []string `json:"base"`
	Item   string   `json:"item"`
	Factor float64  `json:"factor"`
	T      float64  `json:"t"`
}

type metricJSON struct {
	Metric      string           `json:"metric"`
	OverallRate float64          `json:"overall_rate"`
	Top         []patternJSON    `json:"top_divergent"`
	Pruned      []patternJSON    `json:"pruned_top,omitempty"`
	Significant []patternJSON    `json:"significant,omitempty"`
	Items       []itemJSON       `json:"items"`
	Corrective  []correctiveJSON `json:"corrective"`
}

type responseJSON struct {
	Rows     int          `json:"rows"`
	Attrs    int          `json:"attributes"`
	Patterns int          `json:"frequent_itemsets"`
	Support  float64      `json:"min_support"`
	Metrics  []metricJSON `json:"metrics"`
}

func handleAnalyze(w http.ResponseWriter, r *http.Request) {
	req, err := parseRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	body := http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	data, err := dataset.ReadCSV(body, dataset.CSVOptions{TrimSpace: true})
	if err != nil {
		http.Error(w, "parsing CSV: "+err.Error(), http.StatusBadRequest)
		return
	}
	truth, pred, data, err := extractLabels(data, req.truthCol, req.predCol)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	classes, err := core.ConfusionClasses(truth, pred)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	db, err := fpm.NewTxDB(data, classes, core.NumConfusionClasses)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res, err := core.Explore(db, req.support, core.Options{})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	switch req.format {
	case "html":
		out, err := htmlreport.Render(res, htmlreport.Config{
			Metrics:  req.metrics,
			TopK:     req.topK,
			Epsilon:  req.eps,
			FDRLevel: req.alpha,
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write(out) // nothing to do if the client went away
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		if err := res.WriteCSV(w, req.metrics[0], core.ByDivergence); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	default:
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(buildJSON(res, req)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}

// extractLabels pulls and removes the Boolean label columns.
func extractLabels(d *dataset.Dataset, truthCol, predCol string) (truth, pred []bool, out *dataset.Dataset, err error) {
	parse := func(col string) ([]bool, error) {
		idx := d.AttrIndex(col)
		if idx < 0 {
			return nil, fmt.Errorf("unknown column %q", col)
		}
		vals := make([]bool, d.NumRows())
		for r := range d.Rows {
			switch strings.ToLower(d.Value(r, idx)) {
			case "1", "true", "t", "yes", "y":
				vals[r] = true
			case "0", "false", "f", "no", "n":
				vals[r] = false
			default:
				return nil, fmt.Errorf("row %d: column %q value %q is not Boolean",
					r, col, d.Value(r, idx))
			}
		}
		return vals, nil
	}
	if truth, err = parse(truthCol); err != nil {
		return nil, nil, nil, err
	}
	if pred, err = parse(predCol); err != nil {
		return nil, nil, nil, err
	}
	out, err = d.DropAttrs(truthCol, predCol)
	return truth, pred, out, err
}

func buildJSON(res *core.Result, req analysisRequest) responseJSON {
	resp := responseJSON{
		Rows:     res.DB.NumRows(),
		Attrs:    res.DB.Catalog.NumAttrs(),
		Patterns: res.NumPatterns(),
		Support:  res.MinSup,
	}
	for _, m := range req.metrics {
		mj := metricJSON{Metric: m.Name, OverallRate: res.GlobalRate(m)}
		toJSON := func(rk core.Ranked) patternJSON {
			return patternJSON{
				Itemset:    itemNames(res, rk.Items),
				Support:    rk.Support,
				Rate:       rk.Rate,
				Divergence: rk.Divergence,
				T:          rk.T,
				PValue:     res.PValue(rk.Tally, m),
			}
		}
		for _, rk := range res.TopK(m, req.topK, core.ByAbsDivergence) {
			mj.Top = append(mj.Top, toJSON(rk))
		}
		if req.eps > 0 {
			for _, rk := range res.TopKPruned(m, req.eps, req.topK, core.ByAbsDivergence) {
				mj.Pruned = append(mj.Pruned, toJSON(rk))
			}
		}
		if req.alpha > 0 {
			sig := res.SignificantPatterns(m, req.alpha, core.ByAbsDivergence)
			for i, s := range sig {
				if i == req.topK {
					break
				}
				mj.Significant = append(mj.Significant, toJSON(s.Ranked))
			}
		}
		for _, c := range res.CompareItemDivergence(m) {
			ind := c.Individual
			if math.IsNaN(ind) {
				ind = 0
			}
			mj.Items = append(mj.Items, itemJSON{
				Item:       res.DB.Catalog.Name(c.Item),
				Global:     c.Global,
				Individual: ind,
			})
		}
		for _, c := range res.TopCorrective(m, 5, 2.0) {
			mj.Corrective = append(mj.Corrective, correctiveJSON{
				Base:   itemNames(res, c.Base),
				Item:   res.DB.Catalog.Name(c.Item),
				Factor: c.Factor,
				T:      c.T,
			})
		}
		resp.Metrics = append(resp.Metrics, mj)
	}
	return resp
}

func itemNames(res *core.Result, is fpm.Itemset) []string {
	out := make([]string, len(is))
	for i, it := range is {
		out[i] = res.DB.Catalog.Name(it)
	}
	return out
}
